package netsim

import (
	"fmt"

	"srv6bpf/internal/netem"
)

// Iface is one end of a point-to-point link.
type Iface struct {
	Name string
	Node *Node
	peer *Iface
	q    *netem.Qdisc

	// down marks the link as failed. Both ends of a link fail and
	// recover together (a cut cable, not an administrative shutdown of
	// one side).
	down bool
	// failEpoch counts failures seen by this link end. A packet
	// records the epoch at transmission; if the link fails while the
	// packet is on the wire the epochs differ at delivery time and the
	// packet is lost, even if the link was restored in between.
	failEpoch uint64

	// Tap, when set, observes every packet accepted for transmission
	// (tests and tcpdump-style tracing).
	Tap func(raw []byte)

	// OnStateChange, when set, is invoked whenever the link state
	// flips (after the flip; up reports the new state). Both ends'
	// callbacks fire.
	OnStateChange func(i *Iface, up bool)

	TxPackets uint64
	TxBytes   uint64
	TxDrops   uint64
	// DownDrops counts packets lost to link failure: transmissions
	// attempted while down (also counted in TxDrops) plus packets
	// that were in flight when the link went down (already counted in
	// TxPackets — they left this end but never arrived).
	DownDrops uint64
}

// Peer returns the interface at the other end.
func (i *Iface) Peer() *Iface { return i.peer }

// Qdisc exposes the shaping discipline (the TWD daemon adjusts
// ExtraDelayNs through it).
func (i *Iface) Qdisc() *netem.Qdisc { return i.q }

// Up reports whether the link is up.
func (i *Iface) Up() bool { return !i.down }

// Fail takes the link down: both ends flip, every packet currently on
// the wire (in either direction) is lost, and further transmissions
// drop until Restore. Failing an already-down link is a no-op.
func (i *Iface) Fail() { i.setLinkState(false) }

// Restore brings the link back up. Packets that were in flight during
// the outage stay lost; new transmissions flow again.
func (i *Iface) Restore() { i.setLinkState(true) }

// setLinkState flips both ends of the link.
func (i *Iface) setLinkState(up bool) {
	for _, end := range [2]*Iface{i, i.peer} {
		if end == nil || end.down == !up {
			continue
		}
		end.down = !up
		if !up {
			end.failEpoch++
			end.Node.Count("link_down")
		} else {
			end.Node.Count("link_up")
		}
		if end.OnStateChange != nil {
			end.OnStateChange(end, up)
		}
	}
}

// Transmit serialises raw onto the link; the peer node receives it
// after serialisation, delay and jitter. Drops (queue overflow, loss,
// link down) are counted on the interface.
func (i *Iface) Transmit(raw []byte) {
	if i.down {
		i.TxDrops++
		i.DownDrops++
		return
	}
	sim := i.Node.Sim
	deliverAt, ok := i.q.Admit(sim.Now(), len(raw), sim.Rand())
	if !ok {
		i.TxDrops++
		return
	}
	i.TxPackets++
	i.TxBytes += uint64(len(raw))
	if i.Tap != nil {
		i.Tap(raw)
	}
	peer := i.peer
	epoch := i.failEpoch
	sim.Schedule(deliverAt, func() {
		// A failure between transmission and delivery cuts the wire
		// under the packet: it is lost even if the link has since been
		// restored.
		if i.failEpoch != epoch {
			i.DownDrops++
			return
		}
		peer.Node.deliver(raw, peer)
	})
}

func (i *Iface) String() string {
	return fmt.Sprintf("%s/%s", i.Node.Name, i.Name)
}

// Connect joins two nodes with a bidirectional link; each direction
// gets its own qdisc built from its config. It returns a's and b's
// interfaces.
func Connect(a, b *Node, ab, ba netem.Config) (*Iface, *Iface) {
	ia := &Iface{
		Name: fmt.Sprintf("eth%d", len(a.ifaces)),
		Node: a,
		q:    netem.New(ab),
	}
	ib := &Iface{
		Name: fmt.Sprintf("eth%d", len(b.ifaces)),
		Node: b,
		q:    netem.New(ba),
	}
	ia.peer, ib.peer = ib, ia
	a.ifaces = append(a.ifaces, ia)
	b.ifaces = append(b.ifaces, ib)
	return ia, ib
}

// ConnectSymmetric joins two nodes with the same shaping in both
// directions.
func ConnectSymmetric(a, b *Node, cfg netem.Config) (*Iface, *Iface) {
	return Connect(a, b, cfg, cfg)
}
