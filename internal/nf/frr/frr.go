// Package frr implements fast reroute with in-band failure
// detection, the follow-up use case to the paper ("Flexible failure
// detection and fast reroute using eBPF and SRv6", Xhonneux &
// Bonaventure): the protecting router continuously probes each
// neighbour across the protected link with SRv6 liveness probes, an
// End.BPF tracker records per-neighbour last-seen timestamps in a
// hash map, and once K consecutive probes are missed the detector
// flips a state map that an LWT steering program reads per packet —
// traffic is then encapsulated onto a precomputed backup segment
// list (TI-LFA-style local protection) instead of the primary path.
//
// The data plane is pure eBPF (internal/nf/progs: frr_probe,
// frr_track, frr_steer); this package is the user-space half — map
// setup, route installation, the probe scheduler and the miss
// detector. Recovery time is bounded by roughly
//
//	K × probe interval + one probe RTT
//
// when the failure hits just before a probe transmission, and by
// (K+1) × interval in the worst phase (a failure immediately after a
// probe returned wastes most of one interval before the first miss).
// internal/experiments.FRRRecovery measures this trade-off the way
// the paper's figures are reproduced. With Config.Damping the up
// transition additionally passes a hold-down with hysteresis (see
// Config); the down path is untouched, so the bound above survives
// damping, and internal/experiments.FRRFlapStorm measures the churn
// reduction under a flapping link.
//
// Counter note: consumed probes surface as drop_seg6local on the
// protecting router — the tracker returns BPF_DROP on purpose, like
// a BFD session absorbing its control packets.
package frr

import (
	"fmt"
	"net/netip"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/maps"
	"srv6bpf/internal/core"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/nf/progs"
	"srv6bpf/internal/packet"
)

// probePort is the UDP port carried inside liveness probes (the BFD
// single-hop port; the probe never reaches a listener — the tracker
// consumes it — but packets should look like what they model).
const probePort = 3784

// Config parameterises one protecting router.
type Config struct {
	// TrackSID is the local End.BPF SID that consumes returning
	// probes. It must be routable back to this node from every
	// monitored neighbour.
	TrackSID netip.Addr
	// ProbeInterval is the virtual time between liveness probes.
	ProbeInterval int64
	// Misses is K: consecutive missed probes before a neighbour is
	// declared down. At least 1.
	Misses int
	// JIT selects the execution engine for all FRR programs.
	JIT bool

	// Damping enables flap damping on the UP transition: once a
	// neighbour has been declared down, re-converging to the primary
	// path additionally requires (a) an exponentially-growing hold-down
	// timer to expire and (b) DampingGoodRounds consecutive healthy
	// probe rounds (hysteresis). The DOWN transition path is untouched,
	// so the clean single-failure recovery bound
	// K × interval + probe RTT still holds with damping enabled; what
	// damping bounds is route churn under a flapping link — the
	// detector converges to the backup path and stays there while the
	// flapping persists, instead of oscillating at the flap frequency.
	Damping bool
	// DampingMinHold is the first hold-down after a down transition;
	// each further down transition doubles the hold up to
	// DampingMaxHold. A neighbour that then stays up for at least
	// 2 × DampingMaxHold forgets its accumulated penalty. Defaults:
	// 4 × ProbeInterval and 16 × DampingMinHold.
	DampingMinHold int64
	DampingMaxHold int64
	// DampingGoodRounds is the hysteresis: consecutive healthy probe
	// rounds required, on top of hold expiry, before the neighbour is
	// declared up again. Default 2.
	DampingGoodRounds int
}

// Neighbor describes one monitored adjacency.
type Neighbor struct {
	// ID keys the neighbour in the lastseen/state maps.
	ID uint32
	// ProbeAddr is the probe trigger address: a /128 the protecting
	// router does NOT own, whose route carries the frr_probe LWT
	// program. Locally-generated packets to it become probes.
	ProbeAddr netip.Addr
	// SID is the neighbour's End SID, reachable only across the
	// protected link (so a returning probe proves that link alive).
	SID netip.Addr
	// Iface is the protected egress; probes are pinned to it.
	Iface *netsim.Iface
}

// Protection binds a traffic prefix to a neighbour's liveness and a
// backup segment list.
type Protection struct {
	// Prefix is the protected destination prefix.
	Prefix netip.Prefix
	// NeighborID names whose liveness gates the primary path.
	NeighborID uint32
	// PrimarySID is the decap SID across the primary link; healthy
	// traffic is encapsulated [PrimarySID].
	PrimarySID netip.Addr
	// Backup is the precomputed backup segment list in travel order
	// (1 or 2 segments); the last one must decapsulate.
	Backup []netip.Addr
}

// Transition records one up/down decision of the detector.
type Transition struct {
	NeighborID uint32
	Up         bool
	At         int64 // virtual time of the decision
}

// neighborState is the detector's view of one adjacency.
type neighborState struct {
	nb       Neighbor
	probe    []byte // prebuilt trigger packet
	lastSend int64  // virtual time of the most recent probe
	missed   int    // consecutive probes without a reply
	down     bool

	// Damping state (all zero while Config.Damping is off).
	holdNs     int64 // current hold-down length (exponential backoff)
	holdUntil  int64 // virtual time before which up transitions are held
	goodStreak int   // consecutive healthy rounds while down
	lastDownAt int64 // virtual time of the most recent down transition
}

// FRR is one protecting router's fast-reroute instance.
type FRR struct {
	node *netsim.Node
	cfg  Config

	// LastSeen (frr_lastseen) and NHState (frr_nh_state) are the
	// shared detection maps, exposed for tests and tooling.
	LastSeen *maps.Map
	NHState  *maps.Map

	track     *core.EndBPF
	neighbors []*neighborState
	stopped   bool

	// ProbesSent counts probe transmissions attempted (including ones
	// lost to a dead link).
	ProbesSent uint64
	// Transitions is the ordered log of detector decisions.
	Transitions []Transition
	// OnTransition, when set, observes each decision as it happens.
	OnTransition func(Transition)
}

// New loads the tracker program, creates the shared maps and installs
// the tracker SID on node.
func New(node *netsim.Node, cfg Config) (*FRR, error) {
	if cfg.Misses < 1 {
		cfg.Misses = 1
	}
	if cfg.ProbeInterval <= 0 {
		return nil, fmt.Errorf("frr: probe interval must be positive")
	}
	if cfg.Damping {
		if cfg.DampingMinHold <= 0 {
			cfg.DampingMinHold = 4 * cfg.ProbeInterval
		}
		if cfg.DampingMaxHold <= 0 {
			cfg.DampingMaxHold = 16 * cfg.DampingMinHold
		}
		if cfg.DampingGoodRounds <= 0 {
			cfg.DampingGoodRounds = 2
		}
	}
	lastSeen, err := maps.New(maps.Spec{
		Name: progs.FRRLastSeenMap, Type: maps.Hash,
		KeySize: 4, ValueSize: 8, MaxEntries: 256,
	})
	if err != nil {
		return nil, err
	}
	nhState, err := maps.New(maps.Spec{
		Name: progs.FRRNHStateMap, Type: maps.Hash,
		KeySize: 4, ValueSize: 4, MaxEntries: 256,
	})
	if err != nil {
		return nil, err
	}
	avail := map[string]*maps.Map{progs.FRRLastSeenMap: lastSeen}
	trackProg, err := bpf.LoadProgram(progs.FRRTrackSpec(), core.Seg6LocalHook(), avail, bpf.LoadOptions{JIT: &cfg.JIT})
	if err != nil {
		return nil, fmt.Errorf("frr: loading tracker: %w", err)
	}
	track, err := core.AttachEndBPF(trackProg)
	if err != nil {
		return nil, err
	}
	node.AddRoute(&netsim.Route{
		Prefix:    netip.PrefixFrom(cfg.TrackSID, 128),
		Kind:      netsim.RouteSeg6Local,
		Behaviour: track.Behaviour(),
	})
	f := &FRR{
		node:     node,
		cfg:      cfg,
		LastSeen: lastSeen,
		NHState:  nhState,
		track:    track,
	}
	// The probe/check loop and the tracker program mutate this state
	// from events on node's shard; registering it makes the detector
	// and its maps part of the node's checkpoints, so the optimistic
	// simulation engine rolls FRR back together with the data plane.
	node.RegisterState(f)
	return f, nil
}

// neighborSnap is one adjacency's detector state inside a checkpoint.
type neighborSnap struct {
	lastSend   int64
	missed     int
	down       bool
	holdNs     int64
	holdUntil  int64
	goodStreak int
	lastDownAt int64
}

// frrSnap is the FRR instance's checkpointable state.
type frrSnap struct {
	probesSent  uint64
	transitions int
	stopped     bool
	neighbors   []neighborSnap
	lastSeen    maps.Snapshot
	nhState     maps.Snapshot
}

// SnapshotState implements netsim.ShardState. The per-neighbour conf
// maps are written only at setup and need no snapshot.
func (f *FRR) SnapshotState() any {
	s := frrSnap{
		probesSent:  f.ProbesSent,
		transitions: len(f.Transitions),
		stopped:     f.stopped,
		neighbors:   make([]neighborSnap, len(f.neighbors)),
		lastSeen:    f.LastSeen.Snapshot(),
		nhState:     f.NHState.Snapshot(),
	}
	for i, st := range f.neighbors {
		s.neighbors[i] = neighborSnap{
			lastSend: st.lastSend, missed: st.missed, down: st.down,
			holdNs: st.holdNs, holdUntil: st.holdUntil,
			goodStreak: st.goodStreak, lastDownAt: st.lastDownAt,
		}
	}
	return s
}

// RestoreState implements netsim.ShardState. OnTransition callbacks
// fired by rolled-back speculation are not un-called; observers that
// need committed-only views should read Transitions after the run.
func (f *FRR) RestoreState(v any) {
	s := v.(frrSnap)
	f.ProbesSent = s.probesSent
	f.Transitions = f.Transitions[:s.transitions]
	f.stopped = s.stopped
	// Drop adjacencies added after the snapshot (an AddNeighbor inside
	// rolled-back speculation); re-execution re-adds them.
	f.neighbors = f.neighbors[:len(s.neighbors)]
	for i, ns := range s.neighbors {
		st := f.neighbors[i]
		st.lastSend, st.missed, st.down = ns.lastSend, ns.missed, ns.down
		st.holdNs, st.holdUntil = ns.holdNs, ns.holdUntil
		st.goodStreak, st.lastDownAt = ns.goodStreak, ns.lastDownAt
	}
	f.LastSeen.Restore(s.lastSeen)
	f.NHState.Restore(s.nhState)
}

// AddNeighbor starts monitoring one adjacency: it loads a probe
// program configured for the neighbour and installs the trigger
// route pinned to the protected interface.
func (f *FRR) AddNeighbor(nb Neighbor) error {
	conf, err := maps.New(maps.Spec{
		Name: progs.FRRProbeConfMap, Type: maps.Array,
		KeySize: 4, ValueSize: progs.FRRProbeConfSize, MaxEntries: 1,
	})
	if err != nil {
		return err
	}
	v := make([]byte, progs.FRRProbeConfSize)
	putUint32At(v, 0, nb.ID)
	putAddrAt(v, 8, nb.SID)
	putAddrAt(v, 24, f.cfg.TrackSID)
	if err := conf.Update(bpf.PutUint32(0), v, maps.UpdateAny); err != nil {
		return err
	}
	avail := map[string]*maps.Map{progs.FRRProbeConfMap: conf}
	prog, err := bpf.LoadProgram(progs.FRRProbeSpec(), core.LWTOutHook(), avail, bpf.LoadOptions{JIT: &f.cfg.JIT})
	if err != nil {
		return fmt.Errorf("frr: loading probe program for neighbour %d: %w", nb.ID, err)
	}
	lwt, err := core.AttachLWT(prog)
	if err != nil {
		return err
	}
	f.node.AddRoute(&netsim.Route{
		Prefix:   netip.PrefixFrom(nb.ProbeAddr, 128),
		Kind:     netsim.RouteLWTBPF,
		BPF:      lwt,
		Nexthops: []netsim.Nexthop{{Iface: nb.Iface}},
	})
	probe, err := packet.BuildPacket(f.node.PrimaryAddress(), nb.ProbeAddr,
		packet.WithUDP(probePort, probePort),
		packet.WithPayload([]byte("frr-probe")))
	if err != nil {
		return err
	}
	f.neighbors = append(f.neighbors, &neighborState{nb: nb, probe: probe})
	return nil
}

// Protect installs the steering program on the protected prefix: a
// route with no pinned nexthops, so the encapsulated packet follows
// its first segment through the FIB — primary SID while the
// neighbour is alive, backup segment list once it is declared down.
func (f *FRR) Protect(p Protection) error {
	if len(p.Backup) < 1 || len(p.Backup) > 2 {
		return fmt.Errorf("frr: backup segment list must have 1 or 2 segments, got %d", len(p.Backup))
	}
	conf, err := maps.New(maps.Spec{
		Name: progs.FRRSteerConfMap, Type: maps.Array,
		KeySize: 4, ValueSize: progs.FRRSteerConfSize, MaxEntries: 1,
	})
	if err != nil {
		return err
	}
	v := make([]byte, progs.FRRSteerConfSize)
	putUint32At(v, 0, p.NeighborID)
	putUint32At(v, 4, uint32(len(p.Backup)))
	putAddrAt(v, 8, p.PrimarySID)
	// Wire order: segments[0] is the LAST travel hop.
	putAddrAt(v, 24, p.Backup[len(p.Backup)-1])
	if len(p.Backup) == 2 {
		putAddrAt(v, 40, p.Backup[0])
	}
	if err := conf.Update(bpf.PutUint32(0), v, maps.UpdateAny); err != nil {
		return err
	}
	avail := map[string]*maps.Map{
		progs.FRRSteerConfMap: conf,
		progs.FRRNHStateMap:   f.NHState,
	}
	prog, err := bpf.LoadProgram(progs.FRRSteerSpec(), core.LWTOutHook(), avail, bpf.LoadOptions{JIT: &f.cfg.JIT})
	if err != nil {
		return fmt.Errorf("frr: loading steer program for %v: %w", p.Prefix, err)
	}
	lwt, err := core.AttachLWT(prog)
	if err != nil {
		return err
	}
	f.node.AddRoute(&netsim.Route{
		Prefix: p.Prefix,
		Kind:   netsim.RouteLWTBPF,
		BPF:    lwt,
	})
	return nil
}

// Start seeds the detector (every neighbour assumed up, as a BFD
// session starts) and begins the probe/check loop. A stopped
// instance can be started again.
func (f *FRR) Start() {
	f.stopped = false
	now := f.node.Now()
	for _, st := range f.neighbors {
		st.missed = 0
		st.down = false
		st.lastSend = now
		_ = f.NHState.Update(bpf.PutUint32(st.nb.ID), bpf.PutUint32(0), maps.UpdateAny)
		_ = f.LastSeen.Update(bpf.PutUint32(st.nb.ID), bpf.PutUint64(uint64(now)), maps.UpdateAny)
	}
	f.tick()
}

// Stop halts the control loop (the steering state keeps its last
// value).
func (f *FRR) Stop() { f.stopped = true }

// CrashReset implements netsim.CrashResettable: a node crash wipes
// the daemon's runtime state — detection maps, miss counters and
// damping penalties come back empty, every neighbour assumed up, as a
// freshly exec'd daemon would — while configuration (neighbours,
// protections, probe/steer programs) survives with the node's FIB.
// The transition log and ProbesSent belong to the observer, not the
// daemon, and are preserved.
func (f *FRR) CrashReset() {
	now := f.node.Now()
	for _, st := range f.neighbors {
		st.missed = 0
		st.down = false
		st.lastSend = now
		st.holdNs = 0
		st.holdUntil = 0
		st.goodStreak = 0
		st.lastDownAt = 0
		_ = f.NHState.Update(bpf.PutUint32(st.nb.ID), bpf.PutUint32(0), maps.UpdateAny)
		_ = f.LastSeen.Update(bpf.PutUint32(st.nb.ID), bpf.PutUint64(uint64(now)), maps.UpdateAny)
	}
}

// tick runs once per probe interval: first judge the previous round's
// probes, then send the next round.
func (f *FRR) tick() {
	if f.stopped {
		return
	}
	now := f.node.Now()
	for _, st := range f.neighbors {
		f.check(st, now)
		f.node.Output(st.probe)
		f.ProbesSent++
		st.lastSend = now
	}
	f.node.After(f.cfg.ProbeInterval, f.tick)
}

// check compares the tracker map against the previous probe send
// time: a reply newer than the last send clears the miss counter and
// (if needed) re-converges; silence increments it and declares the
// neighbour down at K.
func (f *FRR) check(st *neighborState, now int64) {
	if now == st.lastSend {
		return // first tick: nothing has been probed yet
	}
	lastSeen, err := f.LastSeen.LookupUint64(bpf.PutUint32(st.nb.ID))
	if err == nil && int64(lastSeen) >= st.lastSend {
		st.missed = 0
		if st.down {
			if f.cfg.Damping {
				// Hysteresis plus hold-down: one healthy round is not
				// trust. The neighbour stays on backup until the hold
				// expires AND DampingGoodRounds rounds passed cleanly.
				st.goodStreak++
				if st.goodStreak < f.cfg.DampingGoodRounds || now < st.holdUntil {
					return
				}
			}
			st.down = false
			st.goodStreak = 0
			_ = f.NHState.Update(bpf.PutUint32(st.nb.ID), bpf.PutUint32(0), maps.UpdateAny)
			f.transition(Transition{NeighborID: st.nb.ID, Up: true, At: now})
		}
		return
	}
	st.missed++
	st.goodStreak = 0
	if !st.down && st.missed >= f.cfg.Misses {
		st.down = true
		if f.cfg.Damping {
			f.escalateHold(st, now)
		}
		_ = f.NHState.Update(bpf.PutUint32(st.nb.ID), bpf.PutUint32(1), maps.UpdateAny)
		f.transition(Transition{NeighborID: st.nb.ID, Up: false, At: now})
	}
}

// escalateHold charges the flap-damping penalty at a down transition:
// the hold doubles per flap (exponential backoff, capped), and a
// neighbour that stayed up for at least 2 × DampingMaxHold since its
// previous down transition starts over at the minimum hold.
func (f *FRR) escalateHold(st *neighborState, now int64) {
	if st.lastDownAt != 0 && now-st.lastDownAt >= 2*f.cfg.DampingMaxHold {
		st.holdNs = 0
	}
	st.lastDownAt = now
	if st.holdNs == 0 {
		st.holdNs = f.cfg.DampingMinHold
	} else {
		st.holdNs *= 2
		if st.holdNs > f.cfg.DampingMaxHold {
			st.holdNs = f.cfg.DampingMaxHold
		}
	}
	st.holdUntil = now + st.holdNs
}

func (f *FRR) transition(tr Transition) {
	f.Transitions = append(f.Transitions, tr)
	if f.OnTransition != nil {
		f.OnTransition(tr)
	}
}

// Down reports the detector's current view of a neighbour.
func (f *FRR) Down(id uint32) bool {
	for _, st := range f.neighbors {
		if st.nb.ID == id {
			return st.down
		}
	}
	return false
}

func putUint32At(b []byte, off int, v uint32) {
	b[off] = byte(v)
	b[off+1] = byte(v >> 8)
	b[off+2] = byte(v >> 16)
	b[off+3] = byte(v >> 24)
}

func putAddrAt(b []byte, off int, a netip.Addr) {
	raw := a.As16()
	copy(b[off:off+16], raw[:])
}
