package seg6

// Golden packet-vector conformance suite for the registry-driven
// behaviour set: every registered behaviour gets at least one vector
// asserting the verdict and the on-the-wire shape of the result, the
// RFC 8986 flavor modifiers are exercised on the End family, the
// upper-layer check of the decap family (drop while SegmentsLeft > 0
// unless USD) is pinned as a regression, and the registry dispatch is
// compared differentially against a verbatim copy of the legacy
// ApplyStatic switch it replaced.

import (
	"bytes"
	"errors"
	"fmt"
	"net/netip"
	"testing"

	"srv6bpf/internal/packet"
)

var (
	v4a = netip.MustParseAddr("10.1.0.1")
	v4b = netip.MustParseAddr("10.2.0.1")
)

// innerV6 builds a plain IPv6 UDP packet.
func innerV6(t *testing.T) []byte {
	t.Helper()
	raw, err := packet.BuildPacket(hostA, hostB, packet.WithUDP(10, 20), packet.WithPayload([]byte("inner-payload")))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// innerV4 builds a plain IPv4 UDP packet.
func innerV4(t *testing.T) []byte {
	t.Helper()
	raw, err := packet.BuildIPv4UDP(v4a, v4b, 10, 20, []byte("inner-payload"), 64)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// innerL2 builds an Ethernet frame carrying the v6 inner packet.
func innerL2(t *testing.T) []byte {
	t.Helper()
	return packet.BuildEthernet([6]byte{2, 0, 0, 0, 0, 2}, [6]byte{2, 0, 0, 0, 0, 1}, 0x86dd, innerV6(t))
}

// encapAt wraps inner in an outer IPv6+SRH whose SegmentsLeft is sl
// (segments lists the SRH path in travel order; sl must be reachable).
func encapAt(t *testing.T, inner []byte, sl uint8, segs ...netip.Addr) []byte {
	t.Helper()
	srh := packet.NewSRH(segs)
	out, err := Encap(inner, hostA, srh)
	if err != nil {
		t.Fatal(err)
	}
	info, err := packet.ParseInfo(out)
	if err != nil {
		t.Fatal(err)
	}
	if sl > info.SegmentsLeft {
		t.Fatalf("encapAt: sl %d unreachable (built %d)", sl, info.SegmentsLeft)
	}
	out[info.SRHOff+packet.SRHOffSegmentsLeft] = sl
	return out
}

// encapL2At is encapAt for Ethernet payloads.
func encapL2At(t *testing.T, frame []byte, sl uint8, segs ...netip.Addr) []byte {
	t.Helper()
	out, err := EncapL2(frame, hostA, packet.NewSRH(segs))
	if err != nil {
		t.Fatal(err)
	}
	info, err := packet.ParseInfo(out)
	if err != nil {
		t.Fatal(err)
	}
	out[info.SRHOff+packet.SRHOffSegmentsLeft] = sl
	return out
}

// TestGoldenVectors is the per-behaviour conformance table: input
// wire bytes in, verdict and output wire shape out.
func TestGoldenVectors(t *testing.T) {
	oif := &struct{ name string }{"dummy-iface"}
	vectors := []struct {
		name  string
		b     *Behaviour
		build func(t *testing.T) []byte
		check func(t *testing.T, res Result, err error)
	}{
		{
			name:  "End/advance",
			b:     &Behaviour{Action: ActionEnd},
			build: mkSRPacket,
			check: func(t *testing.T, res Result, err error) {
				if err != nil || res.Verdict != VerdictForward {
					t.Fatalf("res=%+v err=%v", res, err)
				}
				p, _ := packet.Parse(res.Pkt)
				if p.IPv6.Dst != sid2 || p.SRH.SegmentsLeft != 1 {
					t.Errorf("dst=%v sl=%d", p.IPv6.Dst, p.SRH.SegmentsLeft)
				}
			},
		},
		{
			name:  "End.X/advance-to-nexthop",
			b:     &Behaviour{Action: ActionEndX, Nexthop: nh1},
			build: mkSRPacket,
			check: func(t *testing.T, res Result, err error) {
				if err != nil || res.Verdict != VerdictForwardNexthop || res.Nexthop != nh1 {
					t.Fatalf("res=%+v err=%v", res, err)
				}
			},
		},
		{
			name:  "End.T/advance-to-table",
			b:     &Behaviour{Action: ActionEndT, Table: 42},
			build: mkSRPacket,
			check: func(t *testing.T, res Result, err error) {
				if err != nil || res.Verdict != VerdictForwardTable || res.Table != 42 {
					t.Fatalf("res=%+v err=%v", res, err)
				}
			},
		},
		{
			name: "End.DX2/deliver",
			b:    &Behaviour{Action: ActionEndDX2},
			build: func(t *testing.T) []byte {
				return encapL2At(t, innerL2(t), 0, sid1)
			},
			check: func(t *testing.T, res Result, err error) {
				if err != nil || res.Verdict != VerdictDeliverL2 {
					t.Fatalf("res=%+v err=%v", res, err)
				}
				eth, err := packet.DecodeEthernet(res.Pkt)
				if err != nil || eth.EtherType != 0x86dd {
					t.Errorf("inner frame: %+v %v", eth, err)
				}
			},
		},
		{
			name: "End.DX2/oif",
			b:    &Behaviour{Action: ActionEndDX2, OIF: oif},
			build: func(t *testing.T) []byte {
				return encapL2At(t, innerL2(t), 0, sid1)
			},
			check: func(t *testing.T, res Result, err error) {
				if err != nil || res.Verdict != VerdictForwardOIF {
					t.Fatalf("res=%+v err=%v", res, err)
				}
			},
		},
		{
			name: "End.DX6/decap",
			b:    &Behaviour{Action: ActionEndDX6, Nexthop: nh1},
			build: func(t *testing.T) []byte {
				return encapAt(t, innerV6(t), 0, sid1)
			},
			check: func(t *testing.T, res Result, err error) {
				if err != nil || res.Verdict != VerdictForwardNexthop || res.Nexthop != nh1 {
					t.Fatalf("res=%+v err=%v", res, err)
				}
				p, _ := packet.Parse(res.Pkt)
				if p == nil || p.IPv6.Dst != hostB {
					t.Error("inner packet mangled")
				}
			},
		},
		{
			name: "End.DX4/decap",
			b:    &Behaviour{Action: ActionEndDX4, Nexthop: nh1},
			build: func(t *testing.T) []byte {
				return encapAt(t, innerV4(t), 0, sid1)
			},
			check: func(t *testing.T, res Result, err error) {
				if err != nil || res.Verdict != VerdictForwardNexthop {
					t.Fatalf("res=%+v err=%v", res, err)
				}
				h, err := packet.DecodeIPv4(res.Pkt)
				if err != nil || h.Dst != v4b {
					t.Errorf("inner v4: %+v %v", h, err)
				}
			},
		},
		{
			name: "End.DT6/decap-to-table",
			b:    &Behaviour{Action: ActionEndDT6, Table: 7},
			build: func(t *testing.T) []byte {
				return encapAt(t, innerV6(t), 0, sid1)
			},
			check: func(t *testing.T, res Result, err error) {
				if err != nil || res.Verdict != VerdictForwardTable || res.Table != 7 {
					t.Fatalf("res=%+v err=%v", res, err)
				}
			},
		},
		{
			name: "End.DT4/decap-to-table",
			b:    &Behaviour{Action: ActionEndDT4, Table: 7},
			build: func(t *testing.T) []byte {
				return encapAt(t, innerV4(t), 0, sid1)
			},
			check: func(t *testing.T, res Result, err error) {
				if err != nil || res.Verdict != VerdictForwardTable || res.Table != 7 {
					t.Fatalf("res=%+v err=%v", res, err)
				}
				if packet.IPVersion(res.Pkt) != 4 {
					t.Error("inner is not IPv4")
				}
			},
		},
		{
			name: "End.DT46/decap-v4",
			b:    &Behaviour{Action: ActionEndDT46, Table: 7},
			build: func(t *testing.T) []byte {
				return encapAt(t, innerV4(t), 0, sid1)
			},
			check: func(t *testing.T, res Result, err error) {
				if err != nil || res.Verdict != VerdictForwardTable || packet.IPVersion(res.Pkt) != 4 {
					t.Fatalf("res=%+v err=%v", res, err)
				}
			},
		},
		{
			name: "End.DT46/decap-v6",
			b:    &Behaviour{Action: ActionEndDT46, Table: 7},
			build: func(t *testing.T) []byte {
				return encapAt(t, innerV6(t), 0, sid1)
			},
			check: func(t *testing.T, res Result, err error) {
				if err != nil || res.Verdict != VerdictForwardTable || packet.IPVersion(res.Pkt) != 6 {
					t.Fatalf("res=%+v err=%v", res, err)
				}
			},
		},
		{
			name: "End.DX4/wrong-inner-drops",
			b:    &Behaviour{Action: ActionEndDX4, Nexthop: nh1},
			build: func(t *testing.T) []byte {
				return encapAt(t, innerV6(t), 0, sid1) // v6 inner into DX4
			},
			check: func(t *testing.T, res Result, err error) {
				if res.Verdict != VerdictDrop || !errors.Is(err, ErrNotEncapsulated) {
					t.Fatalf("res=%+v err=%v", res, err)
				}
			},
		},
		{
			name:  "End.B6/insert",
			b:     &Behaviour{Action: ActionEndB6, SRH: packet.NewSRH([]netip.Addr{sid2, sid1})},
			build: mkSRPacket,
			check: func(t *testing.T, res Result, err error) {
				if err != nil || res.Verdict != VerdictForward {
					t.Fatalf("res=%+v err=%v", res, err)
				}
				p, _ := packet.Parse(res.Pkt)
				if p.IPv6.Dst != sid2 || p.L4Proto != packet.ProtoUDP {
					t.Errorf("outer: %s", p.Summary())
				}
			},
		},
		{
			name:  "End.B6.Encaps/push-policy",
			b:     &Behaviour{Action: ActionEndB6Encap, SRH: packet.NewSRH([]netip.Addr{sid2}), Src: sid1},
			build: mkSRPacket,
			check: func(t *testing.T, res Result, err error) {
				if err != nil || res.Verdict != VerdictForward {
					t.Fatalf("res=%+v err=%v", res, err)
				}
				p, _ := packet.Parse(res.Pkt)
				if p.IPv6.Dst != sid2 || p.L4Proto != packet.ProtoIPv6 {
					t.Fatalf("outer: %s", p.Summary())
				}
			},
		},
		{
			name:  "End.B6.Encaps.Red/single-seg-no-srh",
			b:     &Behaviour{Action: ActionEndB6Encap, SRH: packet.NewSRH([]netip.Addr{sid2}), Src: sid1, Reduced: true},
			build: mkSRPacket,
			check: func(t *testing.T, res Result, err error) {
				if err != nil || res.Verdict != VerdictForward {
					t.Fatalf("res=%+v err=%v", res, err)
				}
				p, _ := packet.Parse(res.Pkt)
				// Reduced single-segment policy: plain IPv6-in-IPv6,
				// first segment only in the outer destination.
				if p.IPv6.Dst != sid2 || p.SRH != nil || p.L4Proto != packet.ProtoIPv6 {
					t.Fatalf("outer: %s", p.Summary())
				}
			},
		},
		{
			name: "End.AS/outbound-decap",
			b:    &Behaviour{Action: ActionEndAS, SRH: packet.NewSRH([]netip.Addr{sid2}), Src: sid1, OIF: oif},
			build: func(t *testing.T) []byte {
				// Mid-chain: SegmentsLeft is still 2 — the proxy decaps anyway.
				return encapAt(t, innerV6(t), 2, sid1, sid2, hostB)
			},
			check: func(t *testing.T, res Result, err error) {
				if err != nil || res.Verdict != VerdictForwardOIF {
					t.Fatalf("res=%+v err=%v", res, err)
				}
				p, _ := packet.Parse(res.Pkt)
				if p == nil || p.SRH != nil || p.IPv6.Dst != hostB {
					t.Error("VNF-side packet still carries SR state")
				}
			},
		},
		{
			name: "End.AM/outbound-masquerade",
			b:    &Behaviour{Action: ActionEndAM, OIF: oif},
			build: func(t *testing.T) []byte {
				return encapAt(t, innerV6(t), 1, sid1, sid2)
			},
			check: func(t *testing.T, res Result, err error) {
				if err != nil || res.Verdict != VerdictForwardOIF {
					t.Fatalf("res=%+v err=%v", res, err)
				}
				p, _ := packet.Parse(res.Pkt)
				// Masqueraded: DA is the final destination (wire
				// Segments[0]), SRH kept with SL consumed.
				if p.IPv6.Dst != sid2 || p.SRH == nil || p.SRH.SegmentsLeft != 0 {
					t.Errorf("masqueraded: %s", p.Summary())
				}
			},
		},
	}
	for _, v := range vectors {
		t.Run(v.name, func(t *testing.T) {
			raw := v.build(t)
			res, err := Apply(v.b, raw)
			v.check(t, res, err)
		})
	}
}

// TestEndFlavors pins the PSP/USP/USD modifiers of the End family.
func TestEndFlavors(t *testing.T) {
	t.Run("PSP-pops-on-last-advance", func(t *testing.T) {
		raw := encapAt(t, innerV6(t), 1, sid1, sid2)
		res, err := Apply(&Behaviour{Action: ActionEnd, Flavors: FlavorPSP}, raw)
		if err != nil || res.Verdict != VerdictForward {
			t.Fatalf("res=%+v err=%v", res, err)
		}
		p, _ := packet.Parse(res.Pkt)
		if p.SRH != nil || p.IPv6.Dst != sid2 || p.L4Proto != packet.ProtoIPv6 {
			t.Errorf("after PSP: %s", p.Summary())
		}
	})
	t.Run("PSP-keeps-srh-mid-path", func(t *testing.T) {
		raw := mkSRPacket(t) // SL 2 -> 1, not last
		res, err := Apply(&Behaviour{Action: ActionEnd, Flavors: FlavorPSP}, raw)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := packet.Parse(res.Pkt)
		if p.SRH == nil || p.SRH.SegmentsLeft != 1 {
			t.Errorf("mid-path PSP: %s", p.Summary())
		}
	})
	t.Run("USP-pops-exhausted-srh", func(t *testing.T) {
		raw := encapAt(t, innerV6(t), 0, sid1, sid2)
		res, err := Apply(&Behaviour{Action: ActionEnd, Flavors: FlavorUSP}, raw)
		if err != nil {
			t.Fatal(err)
		}
		p, _ := packet.Parse(res.Pkt)
		// USP strips only the SRH; the outer IPv6 header stays.
		if p.SRH != nil || p.L4Proto != packet.ProtoIPv6 {
			t.Errorf("after USP: %s", p.Summary())
		}
	})
	t.Run("USD-decapsulates", func(t *testing.T) {
		inner := innerV6(t)
		raw := encapAt(t, inner, 0, sid1, sid2)
		res, err := Apply(&Behaviour{Action: ActionEnd, Flavors: FlavorUSD}, raw)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Pkt, inner) {
			t.Error("USD result differs from the original inner packet")
		}
	})
	t.Run("unflavored-drops-exhausted", func(t *testing.T) {
		raw := encapAt(t, innerV6(t), 0, sid1, sid2)
		res, err := Apply(&Behaviour{Action: ActionEnd}, raw)
		if res.Verdict != VerdictDrop || !errors.Is(err, ErrZeroSegsLeft) {
			t.Fatalf("res=%+v err=%v", res, err)
		}
	})
	t.Run("flavor-validation", func(t *testing.T) {
		// The decap family accepts USD only.
		if err := Validate(&Behaviour{Action: ActionEndDT6, Flavors: FlavorPSP}); !errors.Is(err, ErrBadBehaviour) {
			t.Errorf("DT6+PSP: %v", err)
		}
		if err := Validate(&Behaviour{Action: ActionEndDT6, Flavors: FlavorUSD}); err != nil {
			t.Errorf("DT6+USD: %v", err)
		}
		if err := Validate(&Behaviour{Action: ActionEnd, Flavors: FlavorPSP | FlavorUSD}); err != nil {
			t.Errorf("End+PSP+USD: %v", err)
		}
	})
}

// TestDecapDropsSegmentsLeft is the regression for the RFC 8986
// upper-layer check this PR fixes: a decap behaviour reached while
// the SRH still has segments to visit (SegmentsLeft > 0) must drop
// the packet, not decapsulate it mid-path; only the USD flavor opts
// into early decapsulation.
func TestDecapDropsSegmentsLeft(t *testing.T) {
	cases := []struct {
		action Action
		b      Behaviour
		build  func(t *testing.T) []byte
	}{
		{ActionEndDX2, Behaviour{Action: ActionEndDX2}, func(t *testing.T) []byte {
			return encapL2At(t, innerL2(t), 1, sid1, sid2)
		}},
		{ActionEndDX6, Behaviour{Action: ActionEndDX6, Nexthop: nh1}, func(t *testing.T) []byte {
			return encapAt(t, innerV6(t), 1, sid1, sid2)
		}},
		{ActionEndDX4, Behaviour{Action: ActionEndDX4, Nexthop: nh1}, func(t *testing.T) []byte {
			return encapAt(t, innerV4(t), 1, sid1, sid2)
		}},
		{ActionEndDT6, Behaviour{Action: ActionEndDT6}, func(t *testing.T) []byte {
			return encapAt(t, innerV6(t), 1, sid1, sid2)
		}},
		{ActionEndDT4, Behaviour{Action: ActionEndDT4}, func(t *testing.T) []byte {
			return encapAt(t, innerV4(t), 1, sid1, sid2)
		}},
		{ActionEndDT46, Behaviour{Action: ActionEndDT46}, func(t *testing.T) []byte {
			return encapAt(t, innerV6(t), 1, sid1, sid2)
		}},
	}
	for _, c := range cases {
		t.Run(c.action.String(), func(t *testing.T) {
			res, err := Apply(&c.b, c.build(t))
			if res.Verdict != VerdictDrop || !errors.Is(err, ErrSegmentsLeft) {
				t.Fatalf("SL>0 decap: res=%+v err=%v", res, err)
			}
			// USD opts into decap-with-segments-left.
			usd := c.b
			usd.Flavors = FlavorUSD
			res, err = Apply(&usd, c.build(t))
			if err != nil || res.Verdict == VerdictDrop {
				t.Fatalf("USD decap: res=%+v err=%v", res, err)
			}
		})
	}
}

// legacyApplyStatic is a verbatim copy of the switch-based dispatch
// the registry replaced, kept as the differential oracle. Note the
// decap cases call DecapInner unconditionally — the SegmentsLeft bug
// the registry's decapInnerFor fixes.
func legacyApplyStatic(b *Behaviour, raw []byte) (Result, error) {
	legacyEnd := func(raw []byte, v Verdict, nh netip.Addr, table int) (Result, error) {
		if err := Advance(raw); err != nil {
			return drop(), err
		}
		return Result{Verdict: v, Pkt: raw, Nexthop: nh, Table: table}, nil
	}
	switch b.Action {
	case ActionEnd:
		return legacyEnd(raw, VerdictForward, netip.Addr{}, 0)
	case ActionEndX:
		if !b.Nexthop.IsValid() {
			return drop(), fmt.Errorf("%w: End.X needs a nexthop", ErrBadBehaviour)
		}
		return legacyEnd(raw, VerdictForwardNexthop, b.Nexthop, 0)
	case ActionEndT:
		return legacyEnd(raw, VerdictForwardTable, netip.Addr{}, b.Table)
	case ActionEndDX6:
		inner, err := DecapInner(raw)
		if err != nil {
			return drop(), err
		}
		if !b.Nexthop.IsValid() {
			return drop(), fmt.Errorf("%w: End.DX6 needs a nexthop", ErrBadBehaviour)
		}
		return Result{Verdict: VerdictForwardNexthop, Pkt: inner, Nexthop: b.Nexthop}, nil
	case ActionEndDT6:
		inner, err := DecapInner(raw)
		if err != nil {
			return drop(), err
		}
		return Result{Verdict: VerdictForwardTable, Pkt: inner, Table: b.Table}, nil
	case ActionEndB6:
		if b.SRH == nil {
			return drop(), fmt.Errorf("%w: End.B6 needs an SRH", ErrBadBehaviour)
		}
		out, err := InsertSRH(raw, b.SRH)
		if err != nil {
			return drop(), err
		}
		return Result{Verdict: VerdictForward, Pkt: out}, nil
	case ActionEndB6Encap:
		if b.SRH == nil || !b.Src.IsValid() {
			return drop(), fmt.Errorf("%w: End.B6.Encaps needs an SRH and source", ErrBadBehaviour)
		}
		work := packet.Clone(raw)
		if err := Advance(work); err != nil {
			return drop(), err
		}
		out, err := Encap(work, b.Src, b.SRH)
		if err != nil {
			return drop(), err
		}
		return Result{Verdict: VerdictForward, Pkt: out}, nil
	case ActionEndBPF:
		return drop(), fmt.Errorf("%w: End.BPF is handled by the hook layer", ErrBadBehaviour)
	default:
		return drop(), fmt.Errorf("%w: %v", ErrBadBehaviour, b.Action)
	}
}

// TestDifferentialLegacy replays a corpus of (behaviour, packet)
// pairs through both the legacy switch and the registry and demands
// identical results everywhere the legacy semantics were correct —
// and exactly the documented divergence (the SegmentsLeft fix) where
// they were not.
func TestDifferentialLegacy(t *testing.T) {
	behaviours := []*Behaviour{
		{Action: ActionEnd},
		{Action: ActionEndX, Nexthop: nh1},
		{Action: ActionEndX}, // misconfigured
		{Action: ActionEndT, Table: 9},
		{Action: ActionEndDX6, Nexthop: nh1},
		{Action: ActionEndDT6, Table: 3},
		{Action: ActionEndB6, SRH: packet.NewSRH([]netip.Addr{sid2, sid1})},
		{Action: ActionEndB6Encap, SRH: packet.NewSRH([]netip.Addr{sid2}), Src: sid1},
		{Action: ActionEndBPF},
	}
	packets := []struct {
		name  string
		build func(t *testing.T) []byte
	}{
		{"srh-sl2", mkSRPacket},
		{"plain-udp", innerV6},
		{"v6-in-v6-sl0", func(t *testing.T) []byte { return encapAt(t, innerV6(t), 0, sid1) }},
		{"v6-in-v6-sl1", func(t *testing.T) []byte { return encapAt(t, innerV6(t), 1, sid1, sid2) }},
	}
	for _, b := range behaviours {
		for _, pk := range packets {
			name := fmt.Sprintf("%v/%s", b.Action, pk.name)
			t.Run(name, func(t *testing.T) {
				oldRes, oldErr := legacyApplyStatic(b, pk.build(t))
				newRes, newErr := Apply(b, pk.build(t))

				decap := b.Action == ActionEndDX6 || b.Action == ActionEndDT6
				if decap && pk.name == "v6-in-v6-sl1" {
					// The documented divergence: legacy decapsulated
					// mid-path, the registry drops.
					if oldErr != nil {
						t.Fatalf("legacy was expected to (wrongly) accept: %v", oldErr)
					}
					if newRes.Verdict != VerdictDrop || !errors.Is(newErr, ErrSegmentsLeft) {
						t.Fatalf("fix regressed: res=%+v err=%v", newRes, newErr)
					}
					return
				}

				if (oldErr == nil) != (newErr == nil) {
					t.Fatalf("error divergence: legacy=%v registry=%v", oldErr, newErr)
				}
				if oldRes.Verdict != newRes.Verdict || oldRes.Nexthop != newRes.Nexthop || oldRes.Table != newRes.Table {
					t.Fatalf("result divergence: legacy=%+v registry=%+v", oldRes, newRes)
				}
				if oldErr == nil && !bytes.Equal(oldRes.Pkt, newRes.Pkt) {
					t.Fatal("packet bytes diverge")
				}
			})
		}
	}
}

// TestEncapHopLimits pins the tunnel TTL contract of the encap
// helpers themselves: the outer header copies the inner hop limit
// (kernel ip6_tnl_xmit inherit), and the inner bytes are embedded
// unmodified. The tunnel-ingress decrement happens in the forwarding
// engine before Encap is called, never inside it.
func TestEncapHopLimits(t *testing.T) {
	inner := innerV6(t)
	const hl = 37
	if err := packet.SetHopLimit(inner, hl); err != nil {
		t.Fatal(err)
	}
	for _, red := range []bool{false, true} {
		encap := Encap
		if red {
			encap = EncapRed
		}
		out, err := encap(inner, hostA, packet.NewSRH([]netip.Addr{sid1, sid2}))
		if err != nil {
			t.Fatal(err)
		}
		got, err := packet.HopLimit(out)
		if err != nil || got != hl {
			t.Errorf("red=%v: outer hop limit %d, want %d (%v)", red, got, hl, err)
		}
		if !bytes.Contains(out, inner) {
			t.Errorf("red=%v: inner packet not embedded unmodified", red)
		}
	}
	// IPv4 inner: the outer inherits the TTL.
	v4 := innerV4(t)
	out, err := Encap(v4, hostA, packet.NewSRH([]netip.Addr{sid1}))
	if err != nil {
		t.Fatal(err)
	}
	h, _ := packet.DecodeIPv4(v4)
	got, _ := packet.HopLimit(out)
	if got != h.TTL {
		t.Errorf("v4 inner: outer hop limit %d, want TTL %d", got, h.TTL)
	}
}

// TestEncapRedWireShape pins the reduced-encap wire format (RFC 8986
// §5.2): the first segment appears only in the outer destination, the
// SRH carries one fewer segment with SegmentsLeft == LastEntry+1.
func TestEncapRedWireShape(t *testing.T) {
	out, err := EncapRed(innerV6(t), hostA, packet.NewSRH([]netip.Addr{sid1, sid2, hostB}))
	if err != nil {
		t.Fatal(err)
	}
	p, err := packet.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if p.IPv6.Dst != sid1 {
		t.Errorf("outer dst = %v, want first segment %v", p.IPv6.Dst, sid1)
	}
	if p.SRH == nil || len(p.SRH.Segments) != 2 || p.SRH.SegmentsLeft != 2 || p.SRH.LastEntry != 1 {
		t.Fatalf("reduced SRH: %s", p.Summary())
	}
	// The dropped entry is the first segment; the rest keep their
	// wire order (final destination first).
	if p.SRH.Segments[0] != hostB || p.SRH.Segments[1] != sid2 {
		t.Errorf("segments = %v", p.SRH.Segments)
	}
}

// TestRegistryContract checks the dispatch-table wiring: every
// behaviour the netsim engine relies on is registered, names match
// Action.String, and unknown actions fail closed.
func TestRegistryContract(t *testing.T) {
	want := map[Action]string{
		ActionEnd:        "End",
		ActionEndX:       "End.X",
		ActionEndT:       "End.T",
		ActionEndDX2:     "End.DX2",
		ActionEndDX6:     "End.DX6",
		ActionEndDX4:     "End.DX4",
		ActionEndDT6:     "End.DT6",
		ActionEndDT4:     "End.DT4",
		ActionEndDT46:    "End.DT46",
		ActionEndB6:      "End.B6",
		ActionEndB6Encap: "End.B6.Encaps",
		ActionEndAS:      "End.AS",
		ActionEndAM:      "End.AM",
		ActionEndBPF:     "End.BPF",
	}
	if got := len(Specs()); got != len(want) {
		t.Errorf("%d specs registered, want %d", got, len(want))
	}
	for a, name := range want {
		sp := Lookup(a)
		if sp == nil {
			t.Errorf("%s not registered", name)
			continue
		}
		if sp.Name != name || a.String() != name {
			t.Errorf("action %d: name %q, String %q, want %q", int(a), sp.Name, a.String(), name)
		}
	}
	if Lookup(Action(999)) != nil {
		t.Error("out-of-range lookup must be nil")
	}
	if err := Validate(&Behaviour{Action: Action(11)}); !errors.Is(err, ErrBadBehaviour) {
		t.Errorf("unregistered action: %v", err)
	}
	if _, err := Apply(&Behaviour{Action: Action(12)}, mkSRPacket(t)); !errors.Is(err, ErrBadBehaviour) {
		t.Errorf("unregistered apply: %v", err)
	}
}

// TestProxyRoundTrip drives a packet through the full End.AS and
// End.AM proxy cycles at the seg6 layer (outbound Apply, then the
// Inbound return-path half) and checks the SR state is restored.
func TestProxyRoundTrip(t *testing.T) {
	t.Run("End.AS", func(t *testing.T) {
		oif := &struct{}{}
		b := &Behaviour{
			Action: ActionEndAS,
			SRH:    packet.NewSRH([]netip.Addr{sid2, hostB}),
			Src:    sid1,
			OIF:    oif,
		}
		wire := encapAt(t, innerV6(t), 2, sid1, sid2, hostB)
		out, err := Apply(b, wire)
		if err != nil || out.Verdict != VerdictForwardOIF {
			t.Fatalf("outbound: %+v %v", out, err)
		}
		back, err := Lookup(ActionEndAS).Inbound(b, out.Pkt)
		if err != nil || back.Verdict != VerdictForward {
			t.Fatalf("inbound: %+v %v", back, err)
		}
		p, _ := packet.Parse(back.Pkt)
		if p.IPv6.Src != sid1 || p.IPv6.Dst != sid2 || p.SRH == nil || p.SRH.SegmentsLeft != 1 {
			t.Errorf("restored: %s", p.Summary())
		}
	})
	t.Run("End.AM", func(t *testing.T) {
		b := &Behaviour{Action: ActionEndAM, OIF: &struct{}{}}
		wire := encapAt(t, innerV6(t), 1, sid1, sid2)
		out, err := Apply(b, wire)
		if err != nil || out.Verdict != VerdictForwardOIF {
			t.Fatalf("outbound: %+v %v", out, err)
		}
		back, err := Lookup(ActionEndAM).Inbound(b, out.Pkt)
		if err != nil || back.Verdict != VerdictForward {
			t.Fatalf("inbound: %+v %v", back, err)
		}
		p, _ := packet.Parse(back.Pkt)
		// De-masqueraded: DA restored to the active segment.
		if p.IPv6.Dst != sid2 || p.SRH.SegmentsLeft != 0 {
			t.Errorf("restored: %s", p.Summary())
		}
	})
}

// TestEncapL2 pins H.Encaps.L2: the Ethernet frame rides behind the
// SRH with next-header 143 and survives the round trip through
// End.DX2.
func TestEncapL2(t *testing.T) {
	frame := innerL2(t)
	out, err := EncapL2(frame, hostA, packet.NewSRH([]netip.Addr{sid1}))
	if err != nil {
		t.Fatal(err)
	}
	p, err := packet.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if p.L4Proto != packet.ProtoEthernet {
		t.Fatalf("next header = %d, want %d", p.L4Proto, packet.ProtoEthernet)
	}
	res, err := Apply(&Behaviour{Action: ActionEndDX2}, out)
	if err != nil || res.Verdict != VerdictDeliverL2 {
		t.Fatalf("DX2: %+v %v", res, err)
	}
	if !bytes.Equal(res.Pkt, frame) {
		t.Error("frame mangled in L2 round trip")
	}
	// No SRH is a config error for H.Encaps.L2.
	if _, err := EncapL2(frame, hostA, nil); !errors.Is(err, ErrBadBehaviour) {
		t.Errorf("nil SRH: %v", err)
	}
}
