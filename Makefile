# Tier-1 verification and benchmark entry points.
#
#   make check   — build + vet + full test suite + sharded-engine
#                  race smoke + equivalence-fuzz smoke + native
#                  parser-fuzz smoke (the tier-1 gate)
#   make fuzz-native [FUZZTIME=5s] — coverage-guided fuzzing of the
#                  wire parsers (FuzzParseInfo, FuzzValidateSRH)
#   make chaos-smoke — chaos-injection determinism gate: chaos unit
#                  tests, crash/impairment tests, chaos-heavy
#                  equivalence slice (the CI chaos job)
#   make obs-smoke — observability gate: obs package tests, the
#                  netsim recorder tests, and a headless serve run
#                  writing the three artifacts (Prometheus text, JSON
#                  snapshot, trace_event dump) to OBS_DUMP_DIR on the
#                  2-shard optimistic engine
#   make race    — full test suite under the race detector (CI job;
#                  the parallel simulation engine must be race-clean)
#   make fuzz-deep — full-depth randomized equivalence fuzzing of the
#                  conservative and optimistic shard engines (the
#                  scheduled CI job). FUZZ_SCENARIOS is the single
#                  depth knob for fuzz-deep and fuzz-deep-race: the
#                  Makefile translates it to the SRV6BPF_FUZZ_SCENARIOS
#                  environment variable the test reads — set the make
#                  variable, not the env var.
#   make fuzz-deep-race — the same fuzzing under the race detector
#                  (shallower FUZZ_SCENARIOS recommended; ~10x slower)
#   make matrix-smoke — behaviour-matrix engine-equivalence gate: the
#                  committed L3VPN / SFC-proxy / TI-LFA scenarios run
#                  under the sequential, conservative and optimistic
#                  engines and must produce bit-identical fingerprints
#   make pdr-smoke — SRPerf-style PDR saturation harness, smoke
#                  depth: a 2-step binary search of the End behavior
#                  only, proving the offered-load generator, the
#                  drop-rate accounting and the bisection converge
#                  (the full per-behavior scan runs under bench-json)
#   make bench   — wall-clock datapath + figure benchmarks (-benchmem)
#   make bench-json [BENCH_JSON=path] — machine-readable perf report
#                  including the full PDR scan and the SimUDP
#                  burst=1/burst=N datapath pair (BURST sets N)
#   make bench-ci — regenerate the perf report as BENCH_PR999.json and
#                  diff it (plus every committed BENCH_PR*.json)
#                  through TestBenchTrajectory: schema, row
#                  continuity, zero-alloc datapath rows, the
#                  speculation-overhead budget, the burst-pair
#                  speedup floor and the PDR row contract (the CI
#                  bench job)
#   make bench-multicore [MULTICORE_JSON=path MULTICORE_WINDOW=20ms] —
#                  the multi-core shard-scaling matrix (both engines,
#                  1/2/4/8 shards, contiguous vs min-cut on the seeded
#                  256-node Waxman) at the current GOMAXPROCS; writes
#                  the report JSON and fails if min-cut does not cut
#                  cross-shard Messages >= 30% at 4 shards, or (on a
#                  >= 4-core machine) if no multi-shard min-cut row
#                  beats the 1-shard baseline (the CI bench-multicore
#                  job)
#   make fmt     — gofmt the tree

GO ?= go
BENCH_JSON ?= BENCH.json
BENCH_WINDOW ?= 50ms
FUZZ_SCENARIOS ?= 150
FUZZ_RACE_SCENARIOS ?= 60
FUZZTIME ?= 5s
BENCH_CI_JSON ?= BENCH_PR999.json
OBS_DUMP_DIR ?= obs-artifacts
BURST ?= 32
MULTICORE_JSON ?= MULTICORE.json
MULTICORE_WINDOW ?= 20ms

.PHONY: check build vet test race race-smoke fuzz-smoke fuzz-native fuzz-deep fuzz-deep-race chaos-smoke obs-smoke pdr-smoke matrix-smoke bench bench-json bench-ci bench-multicore fmt

check: build vet test race-smoke fuzz-smoke fuzz-native obs-smoke pdr-smoke matrix-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The quick 2-shard sequential-vs-parallel equivalence gate, run under
# the race detector: determinism and race-cleanliness of the sharded
# engine in one short pass.
race-smoke:
	$(GO) test -race -run 'TestShardEquivalenceSmoke|TestCrossShardInFlightFailure' ./internal/netsim

# A second pass of the randomized sequential/conservative/optimistic
# equivalence fuzzer at smoke depth: -count 2 re-runs the same seeds
# and catches nondeterminism across process runs.
fuzz-smoke:
	$(GO) test -run 'TestShardEquivalenceFuzz' -count 2 ./internal/netsim

# Coverage-guided mutation of the wire parsers (native go fuzzing),
# bounded by FUZZTIME per target — the smoke setting keeps `make
# check` fast; the nightly CI job runs the same targets longer.
fuzz-native:
	$(GO) test ./internal/packet -run '^$$' -fuzz FuzzParseInfo -fuzztime $(FUZZTIME)
	$(GO) test ./internal/packet -run '^$$' -fuzz FuzzValidateSRH -fuzztime $(FUZZTIME)

# Chaos determinism gate: the chaos package's own tests plus the
# crash/impairment tests and a chaos-heavy slice of the equivalence
# fuzzer (roughly half the derived scenarios carry a fault campaign).
chaos-smoke:
	$(GO) test -count 1 ./internal/netsim/chaos
	$(GO) test -count 1 -run 'TestNodeCrash|TestCrash|TestCorruption|TestDuplication|TestReorder' ./internal/netsim
	SRV6BPF_FUZZ_SCENARIOS=16 $(GO) test -count 1 -run 'TestShardEquivalenceFuzz' ./internal/netsim

# Observability gate: the obs package's own tests, the simulator-side
# recorder tests (rollback equivalence, alloc parity), and a headless
# serve run on the 2-shard optimistic engine that must produce the
# three non-empty artifacts (the CI bench job uploads them).
obs-smoke:
	$(GO) test -count 1 ./internal/obs
	$(GO) test -count 1 -run 'TestObs|TestProgStats' ./internal/netsim ./internal/core
	rm -rf $(OBS_DUMP_DIR)
	$(GO) run ./cmd/srv6sim -scenario serve -engine optimistic -shards 2 -obs-dump $(OBS_DUMP_DIR)
	test -s $(OBS_DUMP_DIR)/metrics.prom
	test -s $(OBS_DUMP_DIR)/stats.json
	test -s $(OBS_DUMP_DIR)/trace.json

race:
	$(GO) test -race ./...

fuzz-deep:
	SRV6BPF_FUZZ_SCENARIOS=$(FUZZ_SCENARIOS) $(GO) test -run 'TestShardEquivalenceFuzz' -timeout 30m -v ./internal/netsim

fuzz-deep-race:
	SRV6BPF_FUZZ_SCENARIOS=$(FUZZ_RACE_SCENARIOS) $(GO) test -race -run 'TestShardEquivalenceFuzz' -timeout 30m ./internal/netsim

# PDR harness smoke: a coarse (2-probe) saturation search of the End
# behavior. Converging at all exercises the whole harness — generator,
# full-drain drop accounting, bisection invariants — in under a second.
pdr-smoke:
	$(GO) run ./cmd/srv6bench -pdr-smoke

# Behaviour-matrix gate: the three committed scenarios (multi-tenant
# L3VPN over a fat-tree, SFC through End.AS/End.AM proxies, TI-LFA
# protection behind a binding SID) must be bit-identical under the
# sequential, conservative and optimistic engines.
matrix-smoke:
	$(GO) run ./cmd/srv6bench -matrix

bench:
	$(GO) test -run '^$$' -bench BenchmarkDatapath -benchmem .

bench-json:
	$(GO) run ./cmd/srv6bench -bench-json $(BENCH_JSON) -duration $(BENCH_WINDOW) -burst $(BURST)

# The CI perf gate: write a fresh report under a PR number sorting
# after every committed one, then let TestBenchTrajectory diff the
# whole series (the fresh report included).
bench-ci:
	$(GO) run ./cmd/srv6bench -bench-json $(BENCH_CI_JSON) -duration $(BENCH_WINDOW) -burst $(BURST)
	$(GO) test -count 1 -run 'TestBenchTrajectory' -v .

# The multi-core scaling matrix: both engines, 1/2/4/8 shards,
# contiguous vs min-cut on the seeded 256-node Waxman scenario, at
# whatever GOMAXPROCS the machine grants. srv6bench itself enforces
# the partition gates (Messages cut >= 30% at 4 shards; with >= 4
# cores, speedup_vs_1shard > 1 on some multi-shard min-cut row).
bench-multicore:
	$(GO) run ./cmd/srv6bench -multicore-json $(MULTICORE_JSON) -shard-duration $(MULTICORE_WINDOW)

fmt:
	gofmt -w .
