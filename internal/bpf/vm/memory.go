package vm

import (
	"encoding/binary"
	"fmt"
)

// Segment is one addressable memory region.
type Segment struct {
	// Data is the backing storage. A segment with nil Data is an
	// opaque handle (e.g. a map object) that cannot be dereferenced.
	// The hook layer rebinds Data in place on the per-packet fast
	// path instead of installing a fresh Segment.
	Data []byte
	// Writable permits stores.
	Writable bool
	// Object carries an opaque value for handle segments; helpers
	// type-assert it (for example to *maps.Map).
	Object any
}

// Memory is the address space of one program execution. The
// well-known regions (stack, ctx, packet) live in a fixed array and
// dynamic regions (map arenas, handles) in a slice, so resolving a
// tagged pointer is two compares and an index — no map hashing on
// the per-instruction load/store path.
type Memory struct {
	fixed [RegionDynamicBase]*Segment
	dyn   []*Segment
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{}
}

// SetSegment installs seg at a fixed well-known region.
func (m *Memory) SetSegment(id RegionID, seg *Segment) {
	if id == RegionScalar || id >= RegionDynamicBase {
		panic(fmt.Sprintf("vm: SetSegment(%d) outside well-known region range", id))
	}
	m.fixed[id] = seg
}

// AddSegment installs seg at a fresh dynamic region and returns its ID.
func (m *Memory) AddSegment(seg *Segment) RegionID {
	m.dyn = append(m.dyn, seg)
	return RegionDynamicBase + RegionID(len(m.dyn)-1)
}

// Segment returns the segment for id, or nil.
func (m *Memory) Segment(id RegionID) *Segment {
	if id < RegionDynamicBase {
		if id == RegionScalar {
			return nil
		}
		return m.fixed[id]
	}
	if i := int(id - RegionDynamicBase); i < len(m.dyn) {
		return m.dyn[i]
	}
	return nil
}

// Fault describes an invalid memory access.
type Fault struct {
	Addr  uint64
	Size  int
	Write bool
	Cause string
}

func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("vm: invalid %d-byte %s at region %d offset %#x: %s",
		f.Size, kind, Region(f.Addr), Offset(f.Addr), f.Cause)
}

// fault builds the descriptive error for an access that failed the
// fast-path checks. It re-derives the cause; keeping this out of line
// keeps Load/Store small enough to stay fast.
func (m *Memory) fault(addr uint64, size int, write bool) error {
	r := Region(addr)
	if r == RegionScalar {
		return &Fault{Addr: addr, Size: size, Write: write, Cause: "not a pointer (NULL dereference?)"}
	}
	seg := m.Segment(r)
	switch {
	case seg == nil:
		return &Fault{Addr: addr, Size: size, Write: write, Cause: "no such region"}
	case seg.Data == nil:
		return &Fault{Addr: addr, Size: size, Write: write, Cause: "opaque handle region"}
	case write && !seg.Writable:
		return &Fault{Addr: addr, Size: size, Write: write, Cause: "region is read-only"}
	case size <= 0:
		return &Fault{Addr: addr, Size: size, Write: write, Cause: "bad access size"}
	case Offset(addr)+uint64(size) > uint64(len(seg.Data)):
		// Checked before the width so an oversized helper buffer read
		// (Bytes/ReadBytes take arbitrary sizes) reports the real
		// problem, not a width complaint.
		return &Fault{Addr: addr, Size: size, Write: write, Cause: "out of bounds"}
	default:
		return &Fault{Addr: addr, Size: size, Write: write, Cause: "bad access size"}
	}
}

// resolve maps a tagged pointer to its segment, or nil. The scalar
// region resolves to nil because fixed[0] is never installed.
func (m *Memory) resolve(addr uint64) *Segment {
	r := RegionID(addr >> regionShift)
	if r < RegionDynamicBase {
		return m.fixed[r]
	}
	if i := int(r - RegionDynamicBase); i < len(m.dyn) {
		return m.dyn[i]
	}
	return nil
}

// bytesAt resolves addr to size bytes of backing storage, enforcing
// region validity, bounds and writability.
func (m *Memory) bytesAt(addr uint64, size int, write bool) ([]byte, error) {
	seg := m.resolve(addr)
	if seg == nil || seg.Data == nil || (write && !seg.Writable) || size <= 0 {
		return nil, m.fault(addr, size, write)
	}
	off := addr & offsetMask
	end := off + uint64(size)
	if end > uint64(len(seg.Data)) {
		return nil, m.fault(addr, size, write)
	}
	return seg.Data[off:end], nil
}

// Load reads size bytes (1, 2, 4 or 8) at addr, little-endian, and
// zero-extends to 64 bits.
func (m *Memory) Load(addr uint64, size int) (uint64, error) {
	seg := m.resolve(addr)
	if seg == nil || seg.Data == nil {
		return 0, m.fault(addr, size, false)
	}
	off := addr & offsetMask
	if off+uint64(size) > uint64(len(seg.Data)) {
		return 0, m.fault(addr, size, false)
	}
	b := seg.Data[off:]
	switch size {
	case 1:
		return uint64(b[0]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(b)), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(b)), nil
	case 8:
		return binary.LittleEndian.Uint64(b), nil
	default:
		return 0, m.fault(addr, size, false)
	}
}

// Store writes the low size bytes of val at addr, little-endian.
func (m *Memory) Store(addr uint64, size int, val uint64) error {
	seg := m.resolve(addr)
	if seg == nil || seg.Data == nil || !seg.Writable {
		return m.fault(addr, size, true)
	}
	off := addr & offsetMask
	if off+uint64(size) > uint64(len(seg.Data)) {
		return m.fault(addr, size, true)
	}
	b := seg.Data[off:]
	switch size {
	case 1:
		b[0] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(val))
	case 8:
		binary.LittleEndian.PutUint64(b, val)
	default:
		return m.fault(addr, size, true)
	}
	return nil
}

// Bytes resolves addr to n bytes of backing storage without copying.
// Helpers use it for arguments they only read during the call; the
// slice aliases program memory and must not be retained.
func (m *Memory) Bytes(addr uint64, n int) ([]byte, error) {
	return m.bytesAt(addr, n, false)
}

// ReadBytes copies n bytes starting at addr. Helpers use it to pull
// buffers (keys, values, headers) out of program memory when the
// bytes outlive the call.
func (m *Memory) ReadBytes(addr uint64, n int) ([]byte, error) {
	b, err := m.bytesAt(addr, n, false)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, b)
	return out, nil
}

// WriteBytes copies buf into program memory at addr.
func (m *Memory) WriteBytes(addr uint64, buf []byte) error {
	b, err := m.bytesAt(addr, len(buf), true)
	if err != nil {
		return err
	}
	copy(b, buf)
	return nil
}
