// Quickstart: author an SRv6 eBPF network function, attach it to a
// router as an End.BPF action, and watch it rewrite packets — using
// only the public srv6bpf API.
//
// The function stamps the SRH tag field with 0xbeef through
// bpf_lwt_seg6_store_bytes, the indirect-write discipline of the
// paper's §3.1 (programs never write the packet directly).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"net/netip"

	"srv6bpf"
)

var (
	src = netip.MustParseAddr("2001:db8:1::1")
	dst = netip.MustParseAddr("2001:db8:2::1")
	sid = netip.MustParseAddr("fc00:10::42") // the function's segment
)

func main() {
	// --- 1. Write the network function in the eBPF dialect. ---
	// Offset 46 is the SRH tag (40-byte IPv6 header + tag at SRH+6).
	spec := &srv6bpf.ProgramSpec{
		Name: "stamp_tag",
		Instructions: srv6bpf.Instructions{
			srv6bpf.Mov64Reg(srv6bpf.R6, srv6bpf.R1), // save ctx
			// u16 tag = htons(0xbeef) on the stack
			srv6bpf.StoreImm(srv6bpf.RFP, -2, 0xbe, srv6bpf.Byte),
			srv6bpf.StoreImm(srv6bpf.RFP, -1, 0xef, srv6bpf.Byte),
			// bpf_lwt_seg6_store_bytes(ctx, 46, fp-2, 2)
			srv6bpf.Mov64Reg(srv6bpf.R1, srv6bpf.R6),
			srv6bpf.Mov64Imm(srv6bpf.R2, 46),
			srv6bpf.Mov64Reg(srv6bpf.R3, srv6bpf.RFP),
			srv6bpf.ALU64Imm(srv6bpf.Add, srv6bpf.R3, -2),
			srv6bpf.Mov64Imm(srv6bpf.R4, 2),
			srv6bpf.CallHelper(srv6bpf.HelperLWTSeg6StoreByte),
			srv6bpf.JumpImm(srv6bpf.JNE, srv6bpf.R0, 0, "drop"),
			srv6bpf.Mov64Imm(srv6bpf.R0, srv6bpf.BPFOK),
			srv6bpf.Return(),
			srv6bpf.Mov64Imm(srv6bpf.R0, srv6bpf.BPFDrop).WithSymbol("drop"),
			srv6bpf.Return(),
		},
		License: "Dual MIT/GPL",
	}

	// --- 2. Load it: assemble, verify, prepare for the hook. ---
	prog, err := srv6bpf.LoadProgram(spec, srv6bpf.Seg6LocalHook(), nil, srv6bpf.LoadOptions{})
	if err != nil {
		log.Fatal(err)
	}
	endBPF, err := srv6bpf.AttachEndBPF(prog)
	if err != nil {
		log.Fatal(err)
	}

	// --- 3. Build a three-node lab: sender -- router -- receiver. ---
	sim := srv6bpf.NewSim(1)
	snd := sim.AddNode("sender", srv6bpf.HostCostModel())
	rtr := sim.AddNode("router", srv6bpf.ServerCostModel())
	rcv := sim.AddNode("receiver", srv6bpf.HostCostModel())
	snd.AddAddress(src)
	rtr.AddAddress(netip.MustParseAddr("2001:db8:10::1"))
	rcv.AddAddress(dst)

	link := srv6bpf.LinkConfig{RateBps: 10_000_000_000, DelayNs: 10 * srv6bpf.Microsecond}
	sndIf, rtrInIf := srv6bpf.ConnectSymmetric(snd, rtr, link)
	rtrOutIf, rcvIf := srv6bpf.ConnectSymmetric(rtr, rcv, link)

	snd.AddRoute(&srv6bpf.Route{Prefix: netip.MustParsePrefix("::/0"), Kind: srv6bpf.RouteForward, Nexthops: []srv6bpf.Nexthop{{Iface: sndIf}}})
	rcv.AddRoute(&srv6bpf.Route{Prefix: netip.MustParsePrefix("::/0"), Kind: srv6bpf.RouteForward, Nexthops: []srv6bpf.Nexthop{{Iface: rcvIf}}})
	rtr.AddRoute(&srv6bpf.Route{Prefix: netip.MustParsePrefix("2001:db8:1::/48"), Kind: srv6bpf.RouteForward, Nexthops: []srv6bpf.Nexthop{{Iface: rtrInIf}}})
	rtr.AddRoute(&srv6bpf.Route{Prefix: netip.MustParsePrefix("2001:db8:2::/48"), Kind: srv6bpf.RouteForward, Nexthops: []srv6bpf.Nexthop{{Iface: rtrOutIf}}})

	// --- 4. Bind the program to a segment (a seg6local route). ---
	rtr.AddRoute(&srv6bpf.Route{
		Prefix:    netip.PrefixFrom(sid, 128),
		Kind:      srv6bpf.RouteSeg6Local,
		Behaviour: endBPF.Behaviour(),
	})

	// --- 5. Send one SRv6 packet through the function. ---
	got := make(chan string, 1)
	rcv.HandleUDP(7777, func(node *srv6bpf.Node, p *srv6bpf.ParsedPacket, meta *srv6bpf.PacketMeta) {
		select {
		case got <- p.Summary():
		default:
		}
	})

	srh := srv6bpf.NewSRH([]netip.Addr{sid, dst})
	raw, err := srv6bpf.BuildPacket(src, sid,
		srv6bpf.WithSRH(srh),
		srv6bpf.WithUDP(1000, 7777),
		srv6bpf.WithPayload([]byte("hello SRv6")))
	if err != nil {
		log.Fatal(err)
	}
	before, _ := srv6bpf.ParsePacket(raw)
	fmt.Println("sent:    ", before.Summary())

	snd.Output(raw)
	sim.Run()

	fmt.Println("received:", <-got)
	fmt.Println("\nThe router executed the verified eBPF function at the")
	fmt.Println("segment fc00:10::42: it advanced the SRH and the program")
	fmt.Println("stamped tag=0xbeef (48879) through the checked helper.")
}
