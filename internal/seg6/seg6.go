// Package seg6 implements the SRv6 data-plane operations of the Linux
// kernel's seg6 and seg6local lightweight tunnels: advancing the SRH,
// IPv6-in-IPv6 encapsulation and decapsulation, inline SRH insertion,
// and the static endpoint behaviours (End, End.X, End.T, End.DX6,
// End.DT6, End.B6, End.B6.Encaps) that the paper's Figure 2 uses as
// baselines for the eBPF variants.
//
// All operations work on raw packet bytes, exactly as the kernel does
// on skbs; the routing decision that follows a behaviour is expressed
// as a Verdict for the caller (the simulator's forwarding engine) to
// act on, keeping this package independent of FIB internals.
package seg6

import (
	"errors"
	"fmt"
	"net/netip"

	"srv6bpf/internal/packet"
)

// Action enumerates seg6local behaviours. Values match the kernel's
// SEG6_LOCAL_ACTION_* UAPI numbering, which the bpf_lwt_seg6_action
// helper also uses.
type Action int

// seg6local actions.
const (
	ActionUnspec     Action = 0
	ActionEnd        Action = 1
	ActionEndX       Action = 2
	ActionEndT       Action = 3
	ActionEndDX6     Action = 5
	ActionEndDT6     Action = 7
	ActionEndB6      Action = 9
	ActionEndB6Encap Action = 10
	ActionEndBPF     Action = 15
)

func (a Action) String() string {
	switch a {
	case ActionEnd:
		return "End"
	case ActionEndX:
		return "End.X"
	case ActionEndT:
		return "End.T"
	case ActionEndDX6:
		return "End.DX6"
	case ActionEndDT6:
		return "End.DT6"
	case ActionEndB6:
		return "End.B6"
	case ActionEndB6Encap:
		return "End.B6.Encaps"
	case ActionEndBPF:
		return "End.BPF"
	default:
		return fmt.Sprintf("seg6local(%d)", int(a))
	}
}

// Verdict tells the forwarding engine what to do after a behaviour.
type Verdict int

// Verdicts.
const (
	// VerdictForward re-runs the FIB lookup on the (possibly updated)
	// destination address in the main table.
	VerdictForward Verdict = iota
	// VerdictForwardNexthop forwards to Result.Nexthop directly.
	VerdictForwardNexthop
	// VerdictForwardTable looks the destination up in Result.Table.
	VerdictForwardTable
	// VerdictDrop discards the packet.
	VerdictDrop
)

func (v Verdict) String() string {
	switch v {
	case VerdictForward:
		return "forward"
	case VerdictForwardNexthop:
		return "forward-nexthop"
	case VerdictForwardTable:
		return "forward-table"
	case VerdictDrop:
		return "drop"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Behaviour is one configured seg6local entry: an action plus its
// parameters (kernel: "End.X requires an IPv6 nexthop, End.T a table",
// and so on). BPF carries the loaded program for End.BPF; it is typed
// any so this package does not depend on the hook layer.
type Behaviour struct {
	Action  Action
	Nexthop netip.Addr  // End.X, End.DX6
	Table   int         // End.T, End.DT6
	SRH     *packet.SRH // End.B6, End.B6.Encaps
	BPF     any         // End.BPF: managed by internal/core
	// Src is the outer source address for behaviours that encapsulate
	// (End.B6.Encaps).
	Src netip.Addr
}

// Result of applying a behaviour.
type Result struct {
	Verdict Verdict
	// Pkt is the packet after the behaviour (it may be a new slice
	// after encap/decap/insert).
	Pkt     []byte
	Nexthop netip.Addr
	Table   int
}

// Errors.
var (
	ErrNoSRH           = errors.New("seg6: packet has no SRH")
	ErrZeroSegsLeft    = errors.New("seg6: segments_left is zero")
	ErrNotEncapsulated = errors.New("seg6: no inner IPv6 packet to decapsulate")
	ErrBadBehaviour    = errors.New("seg6: invalid behaviour parameters")
)

// drop returns a drop result (the kernel frees the skb and counts the
// error; we surface the cause to the caller's statistics).
func drop() Result { return Result{Verdict: VerdictDrop} }

// Advance implements the core endpoint step shared by End-style
// behaviours: decrement SegmentsLeft and rewrite the IPv6 destination
// to the new active segment, in place. It allocates nothing.
func Advance(raw []byte) error {
	info, err := packet.ParseInfo(raw)
	if err != nil {
		return err
	}
	if !info.HasSRH() {
		return ErrNoSRH
	}
	return AdvanceAt(raw, info.SRHOff)
}

// AdvanceAt is Advance for a caller that already knows the SRH byte
// offset (the End.BPF hot path, which walked the packet once). The
// SRH structure is revalidated against the packet bounds before any
// write; like Advance, it allocates nothing.
func AdvanceAt(raw []byte, srhOff int) error {
	if srhOff < packet.IPv6HeaderLen || srhOff+packet.SRHFixedLen > len(raw) {
		return packet.ErrTruncated
	}
	srh := raw[srhOff:]
	total := (int(srh[packet.SRHOffHdrExtLen]) + 1) * 8
	if total > len(srh) {
		return packet.ErrTruncated
	}
	sl := srh[packet.SRHOffSegmentsLeft]
	if sl == 0 {
		return ErrZeroSegsLeft
	}
	sl--
	segOff := packet.SRHOffSegments + 16*int(sl)
	if segOff+16 > total {
		return packet.ErrBadSRH
	}
	srh[packet.SRHOffSegmentsLeft] = sl
	copy(raw[24:40], srh[segOff:segOff+16]) // IPv6 destination = new active segment
	return nil
}

// DecapInner strips the outer IPv6 header and all its extension
// headers, returning the inner IPv6 packet (End.DT6 / End.DX6 /
// "SRv6 decapsulation is natively performed by the kernel", §4.2).
func DecapInner(raw []byte) ([]byte, error) {
	p, err := packet.Parse(raw)
	if err != nil {
		return nil, err
	}
	if p.L4Proto != packet.ProtoIPv6 || p.InnerOff == 0 {
		return nil, ErrNotEncapsulated
	}
	inner := packet.Clone(raw[p.InnerOff:])
	if _, err := packet.DecodeIPv6(inner); err != nil {
		return nil, err
	}
	return inner, nil
}

// InsertSRH splices an SRH between the IPv6 header and the rest of
// the packet (the seg6 "inline" transit behaviour and End.B6). The
// IPv6 destination is rewritten to the SRH's active segment and the
// payload length fixed up.
func InsertSRH(raw []byte, srh *packet.SRH) ([]byte, error) {
	if len(raw) < packet.IPv6HeaderLen {
		return nil, packet.ErrTruncated
	}
	h, err := packet.DecodeIPv6(raw)
	if err != nil {
		return nil, err
	}
	s := *srh
	s.NextHeader = h.NextHeader
	enc, err := s.Encode(nil)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(raw)+len(enc))
	out = append(out, raw[:packet.IPv6HeaderLen]...)
	out = append(out, enc...)
	out = append(out, raw[packet.IPv6HeaderLen:]...)
	out[6] = packet.ProtoRouting // outer next header
	if err := packet.SetIPv6PayloadLen(out, len(out)-packet.IPv6HeaderLen); err != nil {
		return nil, err
	}
	active, err := s.ActiveSegment()
	if err != nil {
		return nil, err
	}
	if err := packet.SetIPv6Dst(out, active); err != nil {
		return nil, err
	}
	return out, nil
}

// Encap wraps raw in a new outer IPv6 header carrying srh (the seg6
// "encap" transit behaviour, T.Encaps). The outer destination is the
// SRH's active segment; hop limit is copied from the inner packet as
// the kernel does.
func Encap(raw []byte, outerSrc netip.Addr, srh *packet.SRH) ([]byte, error) {
	inner, err := packet.DecodeIPv6(raw)
	if err != nil {
		return nil, err
	}
	active, err := srh.ActiveSegment()
	if err != nil {
		return nil, err
	}
	return packet.BuildPacket(outerSrc, active,
		packet.WithSRH(srh),
		packet.WithInnerPacket(raw),
		packet.WithHopLimit(inner.HopLimit),
		packet.WithFlowLabel(inner.FlowLabel),
	)
}

// ApplyStatic executes a non-BPF behaviour on raw. End.BPF must be
// handled by the hook layer (internal/core); passing it here returns
// an error.
func ApplyStatic(b *Behaviour, raw []byte) (Result, error) {
	switch b.Action {
	case ActionEnd:
		return applyEnd(raw, VerdictForward, netip.Addr{}, 0)
	case ActionEndX:
		if !b.Nexthop.IsValid() {
			return drop(), fmt.Errorf("%w: End.X needs a nexthop", ErrBadBehaviour)
		}
		return applyEnd(raw, VerdictForwardNexthop, b.Nexthop, 0)
	case ActionEndT:
		return applyEnd(raw, VerdictForwardTable, netip.Addr{}, b.Table)

	case ActionEndDX6:
		inner, err := DecapInner(raw)
		if err != nil {
			return drop(), err
		}
		if !b.Nexthop.IsValid() {
			return drop(), fmt.Errorf("%w: End.DX6 needs a nexthop", ErrBadBehaviour)
		}
		return Result{Verdict: VerdictForwardNexthop, Pkt: inner, Nexthop: b.Nexthop}, nil

	case ActionEndDT6:
		inner, err := DecapInner(raw)
		if err != nil {
			return drop(), err
		}
		return Result{Verdict: VerdictForwardTable, Pkt: inner, Table: b.Table}, nil

	case ActionEndB6:
		if b.SRH == nil {
			return drop(), fmt.Errorf("%w: End.B6 needs an SRH", ErrBadBehaviour)
		}
		// End.B6 inserts a new SRH on top of the existing one without
		// consuming a segment of the original.
		out, err := InsertSRH(raw, b.SRH)
		if err != nil {
			return drop(), err
		}
		return Result{Verdict: VerdictForward, Pkt: out}, nil

	case ActionEndB6Encap:
		if b.SRH == nil || !b.Src.IsValid() {
			return drop(), fmt.Errorf("%w: End.B6.Encaps needs an SRH and source", ErrBadBehaviour)
		}
		// Advance the inner SRH first, then encapsulate.
		work := packet.Clone(raw)
		if err := Advance(work); err != nil {
			return drop(), err
		}
		out, err := Encap(work, b.Src, b.SRH)
		if err != nil {
			return drop(), err
		}
		return Result{Verdict: VerdictForward, Pkt: out}, nil

	case ActionEndBPF:
		return drop(), fmt.Errorf("%w: End.BPF is handled by the hook layer", ErrBadBehaviour)

	default:
		return drop(), fmt.Errorf("%w: %v", ErrBadBehaviour, b.Action)
	}
}

// applyEnd advances the SRH and emits the requested verdict. Packets
// whose SRH is exhausted (SegmentsLeft == 0) are dropped, as the
// kernel's End behaviours do.
func applyEnd(raw []byte, v Verdict, nh netip.Addr, table int) (Result, error) {
	if err := Advance(raw); err != nil {
		return drop(), err
	}
	return Result{Verdict: v, Pkt: raw, Nexthop: nh, Table: table}, nil
}
