package srv6bpf

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (run with `go test -bench=. -benchmem`):
//
//	BenchmarkFig2        — §3.2 Figure 2 (endpoint function overhead)
//	BenchmarkFig3        — §4.1 Figure 3 (delay monitoring overhead)
//	BenchmarkFig4        — §4.2 Figure 4 (hybrid access UDP goodput)
//	BenchmarkTCPHybrid   — §4.2 TCP results (collapse & compensation)
//	BenchmarkJITFactor   — §3.2 JIT-off throughput factor (×1.8)
//	BenchmarkDatapath    — wall-clock ns/packet of this library's own
//	                       End.BPF datapath (real, not simulated, time)
//
// Simulation benches report their figures through b.ReportMetric
// (kpps, normalized ratio, Mbps); ns/op is the wall-clock cost of
// regenerating the figure and is not itself a result of the paper.

import (
	"net/netip"
	"testing"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/core"
	"srv6bpf/internal/experiments"
	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/nf/progs"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
)

// simWindow is the measured virtual-time window per figure run.
const simWindow = 50 * netsim.Millisecond

func BenchmarkFig2(b *testing.B) {
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure2(simWindow)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		r := r
		b.Run(r.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
			}
			b.ReportMetric(r.KPPS, "kpps")
			b.ReportMetric(r.Normalized, "normalized")
		})
	}
}

func BenchmarkFig3(b *testing.B) {
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Figure3(simWindow)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		r := r
		b.Run(r.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
			}
			b.ReportMetric(r.KPPS, "kpps")
			b.ReportMetric(r.Normalized, "normalized")
		})
	}
}

func BenchmarkFig4(b *testing.B) {
	var pts []experiments.Fig4Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Figure4(simWindow)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range pts {
		p := p
		b.Run(p.Config+"/"+itoa(p.Payload), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
			}
			b.ReportMetric(p.GoodputMbps, "Mbps")
		})
	}
}

func BenchmarkTCPHybrid(b *testing.B) {
	var res []experiments.TCPResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.TCPHybrid(20 * netsim.Second)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range res {
		r := r
		b.Run(r.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
			}
			b.ReportMetric(r.GoodputMbps, "Mbps")
		})
	}
}

func BenchmarkJITFactor(b *testing.B) {
	var f float64
	for i := 0; i < b.N; i++ {
		var err error
		f, err = experiments.JITFactor(simWindow)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(f, "jit-factor")
}

// BenchmarkDatapath measures the real (wall-clock) per-packet cost of
// this library's datapath — the engineering numbers behind the
// simulator's cost model, reported honestly as ns/op: the static End
// behaviour in native Go versus the End.BPF hook running the empty
// program, Tag++ and Add TLV, each with JIT and interpreter.
func BenchmarkDatapath(b *testing.B) {
	sid := netip.MustParseAddr("fc00:1::b")
	dst := netip.MustParseAddr("2001:db8:2::1")
	src := netip.MustParseAddr("2001:db8:1::1")

	mkPacket := func() []byte {
		srh := packet.NewSRH([]netip.Addr{sid, dst})
		raw, err := packet.BuildPacket(src, sid, packet.WithSRH(srh),
			packet.WithUDP(1, 2), packet.WithPayload(make([]byte, 64)))
		if err != nil {
			b.Fatal(err)
		}
		return raw
	}

	sim := netsim.New(1)
	node := sim.AddNode("R", netsim.ServerCostModel())
	peer := sim.AddNode("P", netsim.HostCostModel())
	peer.AddAddress(dst)
	netsim.ConnectSymmetric(node, peer, netem.Config{RateBps: 1e12})

	b.Run("End-static-go", func(b *testing.B) {
		tmpl := mkPacket()
		work := packet.Clone(tmpl)
		behaviour := &seg6.Behaviour{Action: seg6.ActionEnd}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(work, tmpl)
			if _, err := seg6.ApplyStatic(behaviour, work); err != nil {
				b.Fatal(err)
			}
		}
	})

	type benchProg struct {
		name string
		spec *bpf.ProgramSpec
		jit  bool
	}
	for _, bp := range []benchProg{
		{"EndBPF-jit", progs.EndSpec(), true},
		{"EndBPF-interp", progs.EndSpec(), false},
		{"TagInc-jit", progs.TagIncrementSpec(), true},
		{"TagInc-interp", progs.TagIncrementSpec(), false},
		{"AddTLV-jit", progs.AddTLVSpec(), true},
		{"AddTLV-interp", progs.AddTLVSpec(), false},
	} {
		bp := bp
		b.Run(bp.name, func(b *testing.B) {
			prog, err := bpf.LoadProgram(bp.spec, core.Seg6LocalHook(), nil, bpf.LoadOptions{JIT: &bp.jit})
			if err != nil {
				b.Fatal(err)
			}
			end, err := core.AttachEndBPF(prog)
			if err != nil {
				b.Fatal(err)
			}
			tmpl := mkPacket()
			work := packet.Clone(tmpl)
			meta := &netsim.PacketMeta{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(work, tmpl)
				work = work[:len(tmpl)]
				res, _, err := end.RunSeg6Local(node, work, meta)
				if err != nil {
					b.Fatal(err)
				}
				if res.Verdict == seg6.VerdictDrop {
					b.Fatal("unexpected drop")
				}
				// Add TLV grows the packet: recover the template size.
				if len(res.Pkt) != len(tmpl) {
					work = packet.Clone(tmpl)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
