package srv6bpf

// Regression locks for the zero-allocation End.BPF datapath. The
// numbers behind BenchmarkDatapath are an acceptance surface, not
// just telemetry: the steady-state End.BPF path (ParseInfo walk,
// in-place SRH advance, pooled execEnv, rebound packet segment,
// pre-decoded VM dispatch) must stay allocation-free. Timing is
// machine-dependent and is not asserted; allocation counts are exact
// and are.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"testing"

	"srv6bpf/internal/experiments"
	"srv6bpf/internal/netsim"
)

// TestDatapathAllocRegression runs the canonical datapath benchmark
// (the same experiments.DatapathBench that srv6bench -bench-json
// publishes, measured via testing.Benchmark — the -benchmem figures)
// and requires 0 allocs/op on every row that must be allocation-free
// in the steady state. Add TLV legitimately allocates: the program
// grows the packet, which cannot be done in place.
func TestDatapathAllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed regression test skipped in -short mode")
	}
	rows, err := experiments.DatapathBench(32)
	if err != nil {
		t.Fatal(err)
	}
	zeroAlloc := map[string]bool{
		"End-static-go":  true,
		"EndBPF-jit":     true,
		"EndBPF-interp":  true,
		"TagInc-jit":     true,
		"TagInc-interp":  true,
		"SimUDP-burst1":  true,
		"SimUDP-burst32": true,
	}
	seen := 0
	for _, r := range rows {
		t.Logf("%-15s %6.0f ns/op  %d allocs/op  %d B/op", r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		if !zeroAlloc[r.Name] {
			continue
		}
		seen++
		if r.AllocsPerOp != 0 {
			t.Errorf("%s: %d allocs/op (%d B/op), want 0", r.Name, r.AllocsPerOp, r.BytesPerOp)
		}
	}
	if seen != len(zeroAlloc) {
		t.Fatalf("datapath bench reported %d of %d zero-alloc rows", seen, len(zeroAlloc))
	}
}

// benchFile is the slice of a BENCH_PR*.json report the trajectory
// check cares about.
type benchFile struct {
	name                   string
	pr                     int
	Schema                 string                        `json:"schema"`
	Host                   *benchHostFile                `json:"host"`
	Datapath               []experiments.DatapathRow     `json:"datapath"`
	ShardScaling           []experiments.ShardScalingRow `json:"shard_scaling"`
	ShardScalingOptimistic []experiments.ShardScalingRow `json:"shard_scaling_optimistic"`
	PDR                    []experiments.PDRRow          `json:"pdr"`
}

// benchHostFile mirrors the report's host record. Reports up to PR 6
// predate it; they are exempt from every wall-clock comparison.
type benchHostFile struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Burst      int    `json:"burst"`
	Partition  string `json:"partition"`
	PR         int    `json:"pr"`
}

// fingerprint identifies the machine/toolchain and the measurement
// configuration, ignoring the PR stamp: timings are only comparable
// between reports with equal fingerprints. The burst knob is part of
// it — numbers taken under different burst settings measure different
// datapaths (reports predating the knob carry b0 and are never
// wall-clock-compared against batched ones). The shard partition is
// part of it too: together with GOMAXPROCS it keeps the single-core
// trajectory reports and the multi-core min-cut scaling reports in
// separate timing lineages (reports predating the partitioner ran
// contiguous and say so implicitly).
func (h *benchHostFile) fingerprint() string {
	part := h.Partition
	if part == "" {
		part = "contiguous"
	}
	return h.GOOS + "/" + h.GOARCH + "/" + h.GoVersion + "/p" +
		strconv.Itoa(h.GOMAXPROCS) + "/c" + strconv.Itoa(h.NumCPU) +
		"/b" + strconv.Itoa(h.Burst) + "/" + part
}

// TestBenchTrajectory diffs the committed BENCH_PR*.json trajectory:
// every report must parse against the current schema, later PRs must
// keep publishing every datapath row an earlier PR published (a
// silently dropped benchmark is how a regression hides), and the rows
// the zero-allocation datapath promise covers must report 0 allocs/op
// in every report from the moment they first appear. Wall-clock
// timings are machine-dependent and are only diffed between
// consecutive reports whose host fingerprints match (the tracing-off
// overhead gate, from PR 7 on); across differing hosts they are
// deliberately not compared.
func TestBenchTrajectory(t *testing.T) {
	paths, err := filepath.Glob("BENCH_PR*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Skipf("need at least two BENCH_PR*.json reports, found %d", len(paths))
	}
	// Order by PR number, not lexicographically: BENCH_PR10.json must
	// follow BENCH_PR9.json.
	prNum := func(p string) int {
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(p, "BENCH_PR"), ".json"))
		if err != nil {
			t.Fatalf("unparseable bench report name %q: %v", p, err)
		}
		return n
	}
	sort.Slice(paths, func(i, j int) bool { return prNum(paths[i]) < prNum(paths[j]) })
	var files []benchFile
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		f := benchFile{name: p, pr: prNum(p)}
		if err := json.Unmarshal(raw, &f); err != nil {
			t.Fatalf("%s does not parse: %v", p, err)
		}
		if f.Schema != "srv6bpf-bench/1" {
			t.Errorf("%s: schema %q, want srv6bpf-bench/1", p, f.Schema)
		}
		if len(f.Datapath) == 0 {
			t.Errorf("%s: no datapath rows", p)
		}
		files = append(files, f)
	}
	zeroAlloc := map[string]bool{
		"End-static-go": true,
		"EndBPF-jit":    true,
		"EndBPF-interp": true,
		"TagInc-jit":    true,
		"TagInc-interp": true,
	}
	for i, f := range files {
		rows := make(map[string]experiments.DatapathRow, len(f.Datapath))
		for _, r := range f.Datapath {
			rows[r.Name] = r
			if zeroAlloc[r.Name] && r.AllocsPerOp != 0 {
				t.Errorf("%s: %s reports %d allocs/op; the zero-allocation datapath regressed",
					f.name, r.Name, r.AllocsPerOp)
			}
		}
		// Speculation-overhead gate, effective from PR 5 (incremental
		// checkpoints + adaptive horizon): on topologies both engines
		// run, the optimistic engine must stay within speculationMaxX
		// of the conservative events/s at the same shard count. The
		// bound is looser than the ~1.25x engineering target because
		// wall-clock rates on shared CI runners are noisy; it exists
		// to catch the pathological regressions (PR 4 shipped at ~2x).
		if f.pr >= 5 {
			checkSpeculationOverhead(t, f)
		}
		// Observability gates, effective from PR 7 (the PR that added
		// the plane): the report must fingerprint its host and publish
		// the sim-level datapath pair, and the full recorder must stay
		// cheap and allocation-free relative to the obs-off run.
		if f.pr >= 7 {
			if f.Host == nil {
				t.Errorf("%s: PR %d report lacks the host record", f.name, f.pr)
			}
			checkObsRows(t, f, rows)
		}
		// Batched-datapath and PDR gates, effective from PR 8 (the PR
		// that added both): the report must publish the SimUDP burst
		// pair (allocation-free, batching visibly faster) and a PDR
		// saturation row per behavior.
		if f.pr >= 8 {
			checkBurstRows(t, f, rows)
			checkPDRRows(t, f)
		}
		// Partition-aware gate, effective from PR 10 (the PR that added
		// the topology-aware partitioner): the report must name the shard
		// placement in its host record — the partition joins GOMAXPROCS
		// in the fingerprint, so a single-core contiguous trajectory
		// report and a multi-core min-cut report never timing-compare —
		// and every scaling row must say which placement produced its
		// cross-shard message count.
		if f.pr >= 10 {
			if f.Host != nil && f.Host.Partition == "" {
				t.Errorf("%s: PR %d report does not name its shard partition", f.name, f.pr)
			}
			for _, rs := range [][]experiments.ShardScalingRow{f.ShardScaling, f.ShardScalingOptimistic} {
				for _, r := range rs {
					if r.Partition == "" {
						t.Errorf("%s: shard-scaling row (engine %s, %d shards) does not name its partition",
							f.name, r.Engine, r.Shards)
					}
				}
			}
		}
		if i == 0 {
			continue
		}
		for _, prev := range files[i-1].Datapath {
			if _, ok := rows[prev.Name]; !ok {
				t.Errorf("%s: datapath row %q published by %s disappeared",
					f.name, prev.Name, files[i-1].name)
			}
		}
		checkTracingOffOverhead(t, files[i-1], f)
	}
}

// Tracing-off overhead gate: with the observability plane compiled in
// but disabled, the datapath must not get slower. Between consecutive
// reports from the *same* host fingerprint, each zero-alloc row (and
// the sim-level obs-off row once both reports publish it) may grow by
// obsTracingOffMaxX plus a noise allowance. The engineering target is
// ≤3%, but the enforced bound is looser for the same reason
// speculationMaxX is looser than its 1.25x target: on the shared
// 1-core runner, identical code drifts up to ±25% (±55 ns/op) on the
// sub-µs rows and ~5% on the µs-scale sim rows between consecutive
// reports, so the gate only attributes regressions clearly above that
// envelope (a lost nil-check fast path — a per-hop ParseInfo across
// three nodes — costs several hundred ns on the SimUDP rows and fails
// cleanly).
const (
	obsTracingOffMaxX = 1.03
	obsNoiseFloorNs   = 100.0 // absolute allowance: sub-100ns deltas are scheduler noise
	obsNoiseFloorX    = 0.12  // relative allowance for the µs-scale rows
	// The full flight recorder (every flow sampled) may cost at most
	// this factor over the obs-off sim datapath, within one report.
	obsTracingOnMaxX = 1.5
)

func checkTracingOffOverhead(t *testing.T, prev, cur benchFile) {
	if prev.Host == nil || cur.Host == nil ||
		prev.Host.fingerprint() != cur.Host.fingerprint() {
		return
	}
	gated := map[string]bool{
		"End-static-go": true, "EndBPF-jit": true, "EndBPF-interp": true,
		"TagInc-jit": true, "TagInc-interp": true, "SimUDP-obs-off": true,
		"SimUDP-burst1": true, "SimUDP-burst32": true,
	}
	base := make(map[string]float64, len(prev.Datapath))
	for _, r := range prev.Datapath {
		if gated[r.Name] && r.NsPerOp > 0 {
			base[r.Name] = r.NsPerOp
		}
	}
	for _, r := range cur.Datapath {
		b, ok := base[r.Name]
		if !ok {
			continue
		}
		noise := obsNoiseFloorNs
		if rel := b * obsNoiseFloorX; rel > noise {
			noise = rel
		}
		if allow := b*obsTracingOffMaxX + noise; r.NsPerOp > allow {
			t.Errorf("%s: %s runs at %.0f ns/op vs %.0f in %s (+%.1f%%); budget %.0f%% + %.0f ns same-host noise allowance",
				cur.name, r.Name, r.NsPerOp, b, prev.name,
				(r.NsPerOp/b-1)*100, (obsTracingOffMaxX-1)*100, noise)
		}
	}
}

// checkObsRows enforces the within-report observability contract: both
// sim-level rows exist, turning the recorder on allocates nothing
// extra per packet, and costs at most obsTracingOnMaxX.
func checkObsRows(t *testing.T, f benchFile, rows map[string]experiments.DatapathRow) {
	off, okOff := rows["SimUDP-obs-off"]
	on, okOn := rows["SimUDP-obs-on"]
	if !okOff || !okOn {
		t.Errorf("%s: missing sim-level datapath rows (obs-off %v, obs-on %v)", f.name, okOff, okOn)
		return
	}
	if on.AllocsPerOp != off.AllocsPerOp {
		t.Errorf("%s: flight recorder allocates: %d allocs/op with tracing on vs %d off",
			f.name, on.AllocsPerOp, off.AllocsPerOp)
	}
	if off.NsPerOp > 0 && on.NsPerOp > off.NsPerOp*obsTracingOnMaxX {
		t.Errorf("%s: full recorder costs %.2fx over obs-off (%.0f vs %.0f ns/op), budget %.2fx",
			f.name, on.NsPerOp/off.NsPerOp, on.NsPerOp, off.NsPerOp, obsTracingOnMaxX)
	}
}

// burstMinSpeedupX is the trajectory floor on the batched datapath:
// the burst=N SimUDP row must beat the burst=1 row by at least this
// factor in every committed report. The engineering target at
// generation time is 1.25x; the enforced floor is looser because the
// two rows are measured seconds apart on a shared runner and their
// ratio wobbles several percent between identical runs.
const burstMinSpeedupX = 1.05

// checkBurstRows enforces the batched-datapath contract within one
// report: the burst=1 baseline and a burst>1 row both exist, both are
// allocation-free (the whole batch, not just one packet), and batching
// actually pays.
func checkBurstRows(t *testing.T, f benchFile, rows map[string]experiments.DatapathRow) {
	base, okBase := rows["SimUDP-burst1"]
	var batched []experiments.DatapathRow
	for _, r := range f.Datapath {
		if r.Burst > 1 {
			batched = append(batched, r)
		}
	}
	if !okBase || len(batched) == 0 {
		t.Errorf("%s: missing SimUDP burst pair (burst1 %v, batched rows %d)", f.name, okBase, len(batched))
		return
	}
	if base.AllocsPerOp != 0 {
		t.Errorf("%s: SimUDP-burst1 allocates (%d allocs/op), want 0", f.name, base.AllocsPerOp)
	}
	for _, r := range batched {
		if r.AllocsPerOp != 0 {
			t.Errorf("%s: %s allocates (%d allocs/op), want 0", f.name, r.Name, r.AllocsPerOp)
		}
		if base.NsPerOp > 0 && r.NsPerOp > 0 {
			if x := base.NsPerOp / r.NsPerOp; x < burstMinSpeedupX {
				t.Errorf("%s: %s runs at %.2fx the burst=1 events/s (%.0f vs %.0f ns/op), floor %.2fx",
					f.name, r.Name, x, r.NsPerOp, base.NsPerOp, burstMinSpeedupX)
			}
		}
	}
}

// pdrRequired lists the behaviors every report from PR 8 on must
// publish a PDR saturation row for — the SRPerf measurement matrix.
var pdrRequired = []string{"End", "End.BPF-interp", "End.BPF-jit", "T.Encaps", "FRR-steer"}

// pdrRequiredPR9 extends the matrix from PR 9 on (the PR that added
// the registry-dispatched behaviors): the cross-connect and the
// router-side decap join the scan.
var pdrRequiredPR9 = []string{"End.X", "End.DT6"}

// checkPDRRows enforces the PDR contract: one converged saturation row
// per required behavior, with a sane bracket and a drop rate at or
// under the threshold it claims.
func checkPDRRows(t *testing.T, f benchFile) {
	byName := make(map[string]experiments.PDRRow, len(f.PDR))
	for _, r := range f.PDR {
		byName[r.Name] = r
	}
	required := pdrRequired
	if f.pr >= 9 {
		required = append(append([]string{}, pdrRequired...), pdrRequiredPR9...)
	}
	for _, name := range required {
		r, ok := byName[name]
		if !ok {
			t.Errorf("%s: no PDR row for %s", f.name, name)
			continue
		}
		if r.PDRKPPS <= 0 {
			t.Errorf("%s: PDR(%s) = %.1f kpps, want > 0 (search never passed its lower bracket)", f.name, name, r.PDRKPPS)
		}
		if r.DropRate > r.Threshold {
			t.Errorf("%s: PDR(%s) reports drop rate %.4f above its own threshold %.4f", f.name, name, r.DropRate, r.Threshold)
		}
	}
}

// speculationMaxX bounds conservative/optimistic events-per-second at
// equal shard counts in committed bench reports from PR 5 on.
const speculationMaxX = 1.6

func checkSpeculationOverhead(t *testing.T, f benchFile) {
	cons := make(map[int]float64, len(f.ShardScaling))
	for _, r := range f.ShardScaling {
		if r.Shards > 1 {
			cons[r.Shards] = r.EventsPerSec
		}
	}
	checked := 0
	for _, r := range f.ShardScalingOptimistic {
		base, ok := cons[r.Shards]
		if !ok || base <= 0 || r.EventsPerSec <= 0 {
			continue
		}
		checked++
		if x := base / r.EventsPerSec; x > speculationMaxX {
			t.Errorf("%s: optimistic engine at %d shards runs %.2fx slower than conservative (%.0f vs %.0f events/s), budget %.2fx",
				f.name, r.Shards, x, r.EventsPerSec, base, speculationMaxX)
		}
	}
	if checked == 0 {
		t.Errorf("%s: no comparable conservative/optimistic shard-scaling rows; the speculation-overhead gate has nothing to bite on", f.name)
	}
}

// TestSimSteadyStateAllocs guards the netsim-side pooling: scheduling
// and draining events must not allocate per event beyond the commit
// closure itself (heap entries are stored by value and reused).
func TestSimSteadyStateAllocs(t *testing.T) {
	sim := netsim.New(7)
	sim.AddNode("solo", netsim.HostCostModel())

	// Warm the event heap so slice growth is done.
	for i := 0; i < 64; i++ {
		sim.After(int64(i), func() {})
	}
	sim.Run()

	allocs := testing.AllocsPerRun(1000, func() {
		sim.After(10, func() {})
		sim.Run()
	})
	// One closure per After is expected; the event itself must not be
	// a second heap object (container/heap boxed one per push).
	if allocs > 1 {
		t.Fatalf("sim schedule/drain allocates %.1f objects per event, want <= 1 (the closure)", allocs)
	}
}
