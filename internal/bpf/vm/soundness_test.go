package vm_test

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"srv6bpf/internal/bpf/asm"
	"srv6bpf/internal/bpf/verifier"
	"srv6bpf/internal/bpf/vm"
)

// TestVerifierSoundnessSmoke generates random programs; every program
// the verifier ACCEPTS must execute on both engines without a memory
// fault or invalid opcode (budget exhaustion cannot happen: the
// verifier rejects loops). This ties the two halves of the safety
// story together.
func TestVerifierSoundnessSmoke(t *testing.T) {
	cfg := verifier.Config{CtxSize: 64}

	gen := func(r *rand.Rand) asm.Instructions {
		var p asm.Instructions
		// Random init of a few registers.
		for reg := asm.R0; reg <= asm.R5; reg++ {
			p = append(p, asm.LoadImm64(reg, int64(r.Uint64())))
		}
		n := 5 + r.Intn(30)
		aluOps := []asm.ALUOp{asm.Add, asm.Sub, asm.Mul, asm.Div, asm.Or,
			asm.And, asm.LSh, asm.RSh, asm.Mod, asm.Xor, asm.Mov, asm.ArSh}
		for i := 0; i < n; i++ {
			dst := asm.Register(r.Intn(6))
			src := asm.Register(r.Intn(6))
			switch r.Intn(8) {
			case 0, 1, 2:
				p = append(p, asm.ALU64Reg(aluOps[r.Intn(len(aluOps))], dst, src))
			case 3:
				p = append(p, asm.ALU32Imm(aluOps[r.Intn(len(aluOps))], dst, int32(r.Uint32())))
			case 4:
				// Stack traffic, mostly valid, occasionally wild — the
				// verifier decides acceptance either way.
				off := int16(-8 * (1 + r.Intn(64)))
				if r.Intn(10) == 0 {
					off = int16(r.Intn(1040)) - 520
				}
				p = append(p, asm.StoreMem(asm.RFP, off, src, asm.DWord))
			case 5:
				off := int16(-8 * (1 + r.Intn(64)))
				if r.Intn(10) == 0 {
					off = int16(r.Intn(1040)) - 520
				}
				p = append(p, asm.LoadMem(dst, asm.RFP, off, asm.Byte))
			case 6:
				// Ctx access, mostly in bounds, occasionally beyond.
				off := int16(4 * r.Intn(15))
				if r.Intn(10) == 0 {
					off = int16(r.Intn(96)) - 8
				}
				p = append(p, asm.LoadMem(dst, asm.R1, off, asm.Word))
			case 7:
				p = append(p, asm.Instruction{
					OpCode: asm.MkJump(asm.ClassJump, asm.JGT, asm.ImmSource),
					Dst:    dst, Constant: int64(int32(r.Uint32())), Offset: 1,
				}, asm.ALU64Imm(asm.Add, src, 1))
			}
		}
		p = append(p, asm.Mov64Imm(asm.R0, 0), asm.Return())
		return p
	}

	accepted, rejected := 0, 0
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prog := gen(r)
		// R1 holds the ctx on entry; the generator may clobber it with
		// LoadImm64 — skip the R1 init to keep ctx usable.
		prog = append(prog[:1], prog[2:]...)

		if err := verifier.Verify(prog, cfg); err != nil {
			rejected++
			return true // rejection is fine
		}
		accepted++
		for _, jit := range []bool{false, true} {
			ex, err := vm.NewExecutable(prog, nil, jit)
			if err != nil {
				return false
			}
			mem := vm.NewMemory()
			mem.SetSegment(vm.RegionCtx, &vm.Segment{Data: make([]byte, 64)})
			m := vm.NewMachine(mem, nil)
			if _, err := m.Run(ex, vm.Pointer(vm.RegionCtx, 0)); err != nil {
				var fault *vm.Fault
				if errors.As(err, &fault) {
					t.Logf("verified program faulted (jit=%v): %v\n%s", jit, err, prog)
					return false
				}
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
	if accepted == 0 {
		t.Fatal("generator produced no verifier-accepted programs; test is vacuous")
	}
	t.Logf("accepted=%d rejected=%d", accepted, rejected)
}
