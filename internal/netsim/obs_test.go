package netsim

// Tests of the simulator side of the observability plane: the flight
// recorder must replay committed spans bit-identically under the
// optimistic engine (rollbacks truncate the speculative tail), and
// enabling it must not add per-packet allocations to the datapath.
// The full cross-engine matrix (chaos campaigns included) is locked by
// the spans arm of the equivalence fuzzer in fuzz_equiv_test.go.

import (
	"reflect"
	"strings"
	"testing"

	"srv6bpf/internal/netem"
	"srv6bpf/internal/packet"
)

// TestObsTraceRollbackEquivalence replays the forced-straggler
// scenario with the recorder on: the 2-shard optimistic run must
// roll back (else the test tests nothing) and still commit exactly
// the spans the sequential run records.
func TestObsTraceRollbackEquivalence(t *testing.T) {
	run := func(shards int) ([]string, EngineStats) {
		s := New(1)
		a, b, _ := twoHosts(s, netem.Config{RateBps: 1e10})
		s.EnableObs(ObsOptions{Trace: true})
		if shards > 1 {
			if err := s.SetShards(shards, EngineOptimistic); err != nil {
				t.Fatal(err)
			}
		}
		pingPong(t, a, b, 50, 3*Microsecond)
		keepBusy(b, Microsecond, 200*Microsecond)
		s.Run()
		var lines []string
		for _, tb := range s.TraceBufs() {
			lines = append(lines, tb.Node()+"|"+strings.Join(tb.Lines(), ";"))
		}
		return lines, s.EngineStats()
	}
	seq, _ := run(1)
	par, st := run(2)
	if st.Rollbacks == 0 {
		t.Fatal("adversarial schedule produced no rollbacks — the recorder's rewind path went untested")
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("committed spans diverged after %d rollbacks:\n  seq: %v\n  par: %v",
			st.Rollbacks, seq, par)
	}
	if len(seq) == 0 || !strings.Contains(strings.Join(seq, "\n"), ":") {
		t.Fatalf("recorder captured nothing: %v", seq)
	}
}

// TestObsDatapathAllocParity pins the recorder's hot-path cost in
// allocations: a packet traversing the simulated datapath must
// allocate exactly as much with the full recorder on (every flow
// sampled) as with observability off.
func TestObsDatapathAllocParity(t *testing.T) {
	run := func(on bool) float64 {
		s := New(1)
		a, b, _ := twoHosts(s, netem.Config{RateBps: 1e10})
		b.HandleUDP(7, func(*Node, *packet.Packet, *PacketMeta) {})
		if on {
			s.EnableObs(ObsOptions{Trace: true, SampleShift: 0})
		}
		bufs := s.TraceBufs()
		raw := udpTo(t, bAddr, 7, "ping")
		work := make([]byte, len(raw))
		send := func() {
			copy(work, raw)
			a.Output(work)
			s.Run()
			// Truncate the journals between packets so the ring cannot
			// grow (growth would amortise to extra allocations).
			for _, tb := range bufs {
				tb.RestoreState(0)
			}
		}
		for i := 0; i < 64; i++ {
			send()
		}
		return testing.AllocsPerRun(500, send)
	}
	off := run(false)
	on := run(true)
	if on > off {
		t.Fatalf("recorder-on datapath allocates %.2f objects/packet vs %.2f with observability off", on, off)
	}
	t.Logf("allocs/packet: obs-off %.2f, recorder-on %.2f", off, on)
}
