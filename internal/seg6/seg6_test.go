package seg6

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"

	"srv6bpf/internal/packet"
)

var (
	hostA = netip.MustParseAddr("2001:db8::a")
	hostB = netip.MustParseAddr("2001:db8::b")
	sid1  = netip.MustParseAddr("fc00:1::1")
	sid2  = netip.MustParseAddr("fc00:2::1")
	nh1   = netip.MustParseAddr("fe80::1")
)

// mkSRPacket builds a UDP packet with an SRH path [sid1, sid2, hostB]
// addressed to the first segment.
func mkSRPacket(t *testing.T) []byte {
	t.Helper()
	srh := packet.NewSRH([]netip.Addr{sid1, sid2, hostB})
	raw, err := packet.BuildPacket(hostA, sid1, packet.WithSRH(srh),
		packet.WithUDP(7, 8), packet.WithPayload(bytes.Repeat([]byte{0xaa}, 64)))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestAdvance(t *testing.T) {
	raw := mkSRPacket(t)
	if err := Advance(raw); err != nil {
		t.Fatal(err)
	}
	p, err := packet.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.IPv6.Dst != sid2 {
		t.Errorf("dst = %v, want %v", p.IPv6.Dst, sid2)
	}
	if p.SRH.SegmentsLeft != 1 {
		t.Errorf("segments_left = %d, want 1", p.SRH.SegmentsLeft)
	}
	// Advance twice more: second lands on hostB, third errors.
	if err := Advance(raw); err != nil {
		t.Fatal(err)
	}
	p, _ = packet.Parse(raw)
	if p.IPv6.Dst != hostB || p.SRH.SegmentsLeft != 0 {
		t.Errorf("after second advance: dst=%v sl=%d", p.IPv6.Dst, p.SRH.SegmentsLeft)
	}
	if err := Advance(raw); !errors.Is(err, ErrZeroSegsLeft) {
		t.Errorf("third advance: %v", err)
	}
}

func TestAdvanceWithoutSRH(t *testing.T) {
	raw, _ := packet.BuildPacket(hostA, hostB, packet.WithUDP(1, 2))
	if err := Advance(raw); !errors.Is(err, ErrNoSRH) {
		t.Errorf("err = %v", err)
	}
}

func TestEndBehaviour(t *testing.T) {
	raw := mkSRPacket(t)
	res, err := ApplyStatic(&Behaviour{Action: ActionEnd}, raw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictForward {
		t.Errorf("verdict = %v", res.Verdict)
	}
	p, _ := packet.Parse(res.Pkt)
	if p.IPv6.Dst != sid2 {
		t.Errorf("dst = %v", p.IPv6.Dst)
	}
}

func TestEndDropsExhaustedSRH(t *testing.T) {
	srh := packet.NewSRH([]netip.Addr{hostB})
	srh.SegmentsLeft = 0
	raw, err := packet.BuildPacket(hostA, hostB, packet.WithSRH(srh), packet.WithUDP(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ApplyStatic(&Behaviour{Action: ActionEnd}, raw)
	if res.Verdict != VerdictDrop {
		t.Errorf("verdict = %v, err = %v", res.Verdict, err)
	}
}

func TestEndX(t *testing.T) {
	raw := mkSRPacket(t)
	res, err := ApplyStatic(&Behaviour{Action: ActionEndX, Nexthop: nh1}, raw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictForwardNexthop || res.Nexthop != nh1 {
		t.Errorf("res = %+v", res)
	}
	// Missing nexthop is a config error.
	raw2 := mkSRPacket(t)
	if _, err := ApplyStatic(&Behaviour{Action: ActionEndX}, raw2); !errors.Is(err, ErrBadBehaviour) {
		t.Errorf("err = %v", err)
	}
}

func TestEndT(t *testing.T) {
	raw := mkSRPacket(t)
	res, err := ApplyStatic(&Behaviour{Action: ActionEndT, Table: 7}, raw)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictForwardTable || res.Table != 7 {
		t.Errorf("res = %+v", res)
	}
}

func TestEncapAndDT6(t *testing.T) {
	inner, err := packet.BuildPacket(hostA, hostB, packet.WithUDP(10, 20), packet.WithPayload([]byte("data")))
	if err != nil {
		t.Fatal(err)
	}
	srh := packet.NewSRH([]netip.Addr{sid1, sid2})
	outer, err := Encap(inner, hostA, srh)
	if err != nil {
		t.Fatal(err)
	}
	p, err := packet.Parse(outer)
	if err != nil {
		t.Fatal(err)
	}
	if p.IPv6.Dst != sid1 || p.SRH == nil || p.L4Proto != packet.ProtoIPv6 {
		t.Fatalf("outer: %s", p.Summary())
	}

	// Walk to the last segment, then End.DT6 decapsulates.
	if err := Advance(outer); err != nil {
		t.Fatal(err)
	}
	res, err := ApplyStatic(&Behaviour{Action: ActionEndDT6, Table: 0}, outer)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictForwardTable {
		t.Errorf("verdict = %v", res.Verdict)
	}
	if !bytes.Equal(res.Pkt, inner) {
		t.Error("decapsulated packet differs from original inner packet")
	}
}

func TestDX6RequiresEncap(t *testing.T) {
	raw := mkSRPacket(t) // UDP inside, not IPv6-in-IPv6
	res, err := ApplyStatic(&Behaviour{Action: ActionEndDX6, Nexthop: nh1}, raw)
	if res.Verdict != VerdictDrop || !errors.Is(err, ErrNotEncapsulated) {
		t.Errorf("res = %+v, err = %v", res, err)
	}
}

func TestInsertSRH(t *testing.T) {
	plain, err := packet.BuildPacket(hostA, hostB, packet.WithUDP(10, 20), packet.WithPayload([]byte("pay")))
	if err != nil {
		t.Fatal(err)
	}
	origLen := len(plain)
	srh := packet.NewSRH([]netip.Addr{sid1, hostB})
	out, err := InsertSRH(plain, srh)
	if err != nil {
		t.Fatal(err)
	}
	p, err := packet.Parse(out)
	if err != nil {
		t.Fatal(err)
	}
	if p.SRH == nil {
		t.Fatal("no SRH after insert")
	}
	if p.IPv6.Dst != sid1 {
		t.Errorf("dst = %v", p.IPv6.Dst)
	}
	if p.SRH.NextHeader != packet.ProtoUDP {
		t.Errorf("SRH next header = %d", p.SRH.NextHeader)
	}
	if len(out) != origLen+p.SRH.WireLen() {
		t.Errorf("length %d, want %d + %d", len(out), origLen, p.SRH.WireLen())
	}
	// UDP payload intact.
	udp, err := packet.DecodeUDP(out[p.L4Off:])
	if err != nil || udp.DstPort != 20 {
		t.Errorf("udp after insert: %+v, %v", udp, err)
	}
}

func TestEndB6(t *testing.T) {
	raw := mkSRPacket(t)
	newSRH := packet.NewSRH([]netip.Addr{sid2, sid1})
	res, err := ApplyStatic(&Behaviour{Action: ActionEndB6, SRH: newSRH}, raw)
	if err != nil {
		t.Fatal(err)
	}
	p, err := packet.Parse(res.Pkt)
	if err != nil {
		t.Fatal(err)
	}
	// The new SRH is outermost; the original is behind it.
	if p.SRH == nil || p.SRH.Segments[1] != sid2 {
		t.Fatalf("outer SRH: %s", p.Summary())
	}
	if p.IPv6.Dst != sid2 {
		t.Errorf("dst = %v", p.IPv6.Dst)
	}
	// Parse walks both routing headers; the L4 proto must survive.
	if p.L4Proto != packet.ProtoUDP {
		t.Errorf("l4 = %d", p.L4Proto)
	}
}

func TestEndB6Encaps(t *testing.T) {
	raw := mkSRPacket(t)
	newSRH := packet.NewSRH([]netip.Addr{sid2})
	res, err := ApplyStatic(&Behaviour{Action: ActionEndB6Encap, SRH: newSRH, Src: sid1}, raw)
	if err != nil {
		t.Fatal(err)
	}
	p, err := packet.Parse(res.Pkt)
	if err != nil {
		t.Fatal(err)
	}
	if p.IPv6.Dst != sid2 || p.L4Proto != packet.ProtoIPv6 {
		t.Fatalf("outer: %s", p.Summary())
	}
	// Inner packet was advanced before encap: its dst is sid2 (next
	// segment of the original SRH).
	ip, err := packet.Parse(res.Pkt[p.InnerOff:])
	if err != nil {
		t.Fatal(err)
	}
	if ip.SRH.SegmentsLeft != 1 {
		t.Errorf("inner segments_left = %d", ip.SRH.SegmentsLeft)
	}
}

func TestEndBPFNotHandledHere(t *testing.T) {
	raw := mkSRPacket(t)
	if _, err := ApplyStatic(&Behaviour{Action: ActionEndBPF}, raw); !errors.Is(err, ErrBadBehaviour) {
		t.Errorf("err = %v", err)
	}
}

func TestActionStrings(t *testing.T) {
	if ActionEnd.String() != "End" || ActionEndBPF.String() != "End.BPF" {
		t.Error("action strings")
	}
	if VerdictDrop.String() != "drop" {
		t.Error("verdict strings")
	}
}
