package frr

import (
	"fmt"
	"net/netip"
	"testing"

	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
)

var (
	srcAddr  = netip.MustParseAddr("2001:db8:1::1")
	pAddr    = netip.MustParseAddr("2001:db8:10::1")
	dAddr    = netip.MustParseAddr("2001:db8:20::1")
	bAddr    = netip.MustParseAddr("2001:db8:30::1")
	dstAddr  = netip.MustParseAddr("2001:db8:2::1")
	nbrSID   = netip.MustParseAddr("fc00:20::ee") // D's End SID (probe bounce)
	primSID  = netip.MustParseAddr("fc00:20::d6") // decap over the primary link
	detourS  = netip.MustParseAddr("fc00:30::e")  // B's End SID
	bkDecap  = netip.MustParseAddr("fc00:21::d6") // decap reachable via B
	trackSID = netip.MustParseAddr("fc00:10::7a") // P's tracker
	probeTo  = netip.MustParseAddr("fc00:f0::1")  // trigger address
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// testbed is the protection triangle:
//
//	S --- P ===(primary)=== D --- T(dst)
//	       \               /
//	        B ------------+   (backup detour)
type testbed struct {
	sim           *netsim.Sim
	s, p, d, b, t *netsim.Node
	pdIf          *netsim.Iface // the protected link, P side
	frr           *FRR
	delivered     []int64 // arrival times at the sink
}

func newTestbed(t *testing.T, interval int64, misses int) *testbed {
	return newTestbedCfg(t, Config{ProbeInterval: interval, Misses: misses})
}

// newTestbedCfg builds the triangle with an explicit detector config
// (TrackSID and JIT are filled in).
func newTestbedCfg(t *testing.T, cfg Config) *testbed {
	sim := netsim.New(42)
	tb := &testbed{
		sim: sim,
		s:   sim.AddNode("S", netsim.HostCostModel()),
		p:   sim.AddNode("P", netsim.ServerCostModel()),
		d:   sim.AddNode("D", netsim.ServerCostModel()),
		b:   sim.AddNode("B", netsim.ServerCostModel()),
	}
	tb.t = sim.AddNode("T", netsim.HostCostModel())
	tb.s.AddAddress(srcAddr)
	tb.p.AddAddress(pAddr)
	tb.d.AddAddress(dAddr)
	tb.b.AddAddress(bAddr)
	tb.t.AddAddress(dstAddr)

	edge := netem.Config{RateBps: 1e10, DelayNs: 10 * netsim.Microsecond}
	core := netem.Config{RateBps: 1e10, DelayNs: 100 * netsim.Microsecond}
	detour := netem.Config{RateBps: 1e10, DelayNs: 60 * netsim.Microsecond}

	sIf, psIf := netsim.ConnectSymmetric(tb.s, tb.p, edge)
	pdIf, dpIf := netsim.ConnectSymmetric(tb.p, tb.d, core)
	pbIf, bpIf := netsim.ConnectSymmetric(tb.p, tb.b, detour)
	bdIf, dbIf := netsim.ConnectSymmetric(tb.b, tb.d, detour)
	dtIf, tIf := netsim.ConnectSymmetric(tb.d, tb.t, edge)
	_, _, _ = bpIf, dbIf, psIf
	tb.pdIf = pdIf

	tb.s.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: sIf}}})
	tb.t.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tIf}}})

	// P: SID routing. Primary decap + neighbour SIDs over the
	// protected link, detour + backup decap over B.
	tb.p.AddRoute(&netsim.Route{Prefix: pfx("fc00:20::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: pdIf}}})
	tb.p.AddRoute(&netsim.Route{Prefix: pfx("fc00:30::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: pbIf}}})
	tb.p.AddRoute(&netsim.Route{Prefix: pfx("fc00:21::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: pbIf}}})
	tb.p.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:1::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: psIf}}})

	// B: detour End SID, backup decap prefix onward to D.
	tb.b.AddRoute(&netsim.Route{
		Prefix:    netip.PrefixFrom(detourS, 128),
		Kind:      netsim.RouteSeg6Local,
		Behaviour: &seg6.Behaviour{Action: seg6.ActionEnd},
	})
	tb.b.AddRoute(&netsim.Route{Prefix: pfx("fc00:21::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: bdIf}}})

	// D: neighbour End SID (probe bounce), both decap SIDs, tracker
	// prefix back towards P, traffic onward to T.
	tb.d.AddRoute(&netsim.Route{
		Prefix:    netip.PrefixFrom(nbrSID, 128),
		Kind:      netsim.RouteSeg6Local,
		Behaviour: &seg6.Behaviour{Action: seg6.ActionEnd},
	})
	for _, sid := range []netip.Addr{primSID, bkDecap} {
		tb.d.AddRoute(&netsim.Route{
			Prefix:    netip.PrefixFrom(sid, 128),
			Kind:      netsim.RouteSeg6Local,
			Behaviour: &seg6.Behaviour{Action: seg6.ActionEndDT6, Table: netsim.MainTable},
		})
	}
	tb.d.AddRoute(&netsim.Route{Prefix: pfx("fc00:10::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: dpIf}}})
	tb.d.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:2::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: dtIf}}})

	cfg.TrackSID = trackSID
	cfg.JIT = true
	frr, err := New(tb.p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := frr.AddNeighbor(Neighbor{ID: 1, ProbeAddr: probeTo, SID: nbrSID, Iface: pdIf}); err != nil {
		t.Fatal(err)
	}
	if err := frr.Protect(Protection{
		Prefix:     pfx("2001:db8:2::/48"),
		NeighborID: 1,
		PrimarySID: primSID,
		Backup:     []netip.Addr{detourS, bkDecap},
	}); err != nil {
		t.Fatal(err)
	}
	tb.frr = frr

	tb.t.HandleUDP(9999, func(n *netsim.Node, p *packet.Packet, meta *netsim.PacketMeta) {
		tb.delivered = append(tb.delivered, meta.RxTimestamp)
	})
	return tb
}

func (tb *testbed) send(t *testing.T, seq int) {
	raw, err := packet.BuildPacket(srcAddr, dstAddr,
		packet.WithUDP(5000, 9999),
		packet.WithPayload([]byte(fmt.Sprintf("%06d", seq))))
	if err != nil {
		t.Fatal(err)
	}
	tb.s.Output(raw)
}

// TestProbesKeepNeighborUp: with a healthy link the detector never
// flips, probes are consumed by the tracker, and the lastseen map
// keeps advancing.
func TestProbesKeepNeighborUp(t *testing.T) {
	interval := netsim.Millisecond
	tb := newTestbed(t, interval, 3)
	tb.frr.Start()
	tb.sim.RunUntil(20 * interval)
	tb.frr.Stop()
	tb.sim.Run()

	if len(tb.frr.Transitions) != 0 {
		t.Fatalf("spurious transitions on a healthy link: %+v", tb.frr.Transitions)
	}
	if tb.frr.Down(1) {
		t.Fatal("neighbour marked down on a healthy link")
	}
	// Probes are consumed by the tracker's BPF_DROP.
	consumed := tb.p.Counters()["drop_seg6local"]
	if consumed < 15 {
		t.Errorf("tracker consumed %d probes, want ≈20", consumed)
	}
}

// TestTrafficViaPrimaryWhenHealthy: steered traffic reaches the sink
// through the primary decap SID.
func TestTrafficViaPrimaryWhenHealthy(t *testing.T) {
	tb := newTestbed(t, netsim.Millisecond, 3)
	tb.frr.Start()
	var viaPrimary int
	tb.pdIf.Tap = func(raw []byte) {
		if p, err := packet.Parse(raw); err == nil && p.IPv6.Dst == primSID {
			viaPrimary++
		}
	}
	for i := 0; i < 10; i++ {
		seq := i
		tb.sim.Schedule(int64(i)*100*netsim.Microsecond, func() { tb.send(t, seq) })
	}
	tb.sim.RunUntil(5 * netsim.Millisecond)
	tb.frr.Stop()
	tb.sim.Run()
	if len(tb.delivered) != 10 {
		t.Fatalf("delivered %d/10 (P=%v D=%v)", len(tb.delivered), tb.p.Counters(), tb.d.Counters())
	}
	if viaPrimary != 10 {
		t.Errorf("%d/10 packets rode the primary SID", viaPrimary)
	}
}

// TestFailoverOntoBackup is the core scenario: cut the primary link
// under constant traffic, verify the detector declares the neighbour
// down after K missed probes, traffic converges onto the backup
// segment list, and the sink's blackout stays within the
// K·interval + RTT budget. Then restore and verify re-convergence.
func TestFailoverOntoBackup(t *testing.T) {
	const k = 3
	interval := netsim.Millisecond
	tb := newTestbed(t, interval, k)
	tb.frr.Start()

	// 50 kpps of steered traffic for 40 ms.
	gap := 20 * netsim.Microsecond
	n := int(40 * netsim.Millisecond / gap)
	for i := 0; i < n; i++ {
		seq := i
		tb.sim.Schedule(int64(i)*gap, func() { tb.send(t, seq) })
	}

	// Fail just before the probe at 10 ms; probes then silently die.
	failAt := 10*netsim.Millisecond - 50*netsim.Microsecond
	tb.sim.FailLink(failAt, tb.pdIf)
	restoreAt := 25 * netsim.Millisecond
	tb.sim.RestoreLink(restoreAt, tb.pdIf)

	tb.sim.RunUntil(40 * netsim.Millisecond)
	tb.frr.Stop()
	tb.sim.Run()

	if len(tb.frr.Transitions) != 2 {
		t.Fatalf("transitions = %+v, want down then up", tb.frr.Transitions)
	}
	down, up := tb.frr.Transitions[0], tb.frr.Transitions[1]
	if down.Up || !up.Up {
		t.Fatalf("transition order wrong: %+v", tb.frr.Transitions)
	}

	// Detection: the probe at 10 ms was the first lost one; K misses
	// are complete at the (10 + K) ms tick.
	wantDetect := 10*netsim.Millisecond + int64(k)*interval
	if down.At != wantDetect {
		t.Errorf("down at %d, want %d", down.At, wantDetect)
	}

	// Blackout at the sink: gap from failure to the first packet
	// arriving via the backup, bounded by K·I + one probe RTT.
	var firstAfter int64 = -1
	for _, at := range tb.delivered {
		if at > failAt {
			firstAfter = at
			break
		}
	}
	if firstAfter < 0 {
		t.Fatal("no packet ever arrived after the failure")
	}
	recovery := firstAfter - failAt
	rtt := 2 * (100*netsim.Microsecond + 20*netsim.Microsecond) // propagation + slack
	budget := int64(k)*interval + rtt
	if recovery >= budget {
		t.Errorf("recovery %.3f ms, budget %.3f ms", float64(recovery)/1e6, float64(budget)/1e6)
	}
	t.Logf("recovery = %.3f ms (budget %.3f ms), lost = %d",
		float64(recovery)/1e6, float64(budget)/1e6, n-len(tb.delivered))

	// Losses are confined to the blackout window.
	lost := n - len(tb.delivered)
	maxLost := int(budget/gap) + 2
	if lost == 0 || lost > maxLost {
		t.Errorf("lost %d packets, want 1..%d", lost, maxLost)
	}

	// After the restore the detector must have re-converged and sent
	// traffic back over the primary.
	if !up.Up || up.At <= restoreAt {
		t.Errorf("up transition at %d, want after restore %d", up.At, restoreAt)
	}
	if tb.frr.Down(1) {
		t.Error("neighbour still marked down at the end")
	}
}

// TestStopStartRestarts: a stopped instance must resume probing and
// detecting when started again.
func TestStopStartRestarts(t *testing.T) {
	interval := netsim.Millisecond
	tb := newTestbed(t, interval, 2)
	tb.frr.Start()
	tb.sim.RunUntil(3 * interval)
	tb.frr.Stop()
	tb.sim.RunUntil(6 * interval)
	sentBefore := tb.frr.ProbesSent
	tb.sim.Schedule(tb.sim.Now(), tb.frr.Start)
	tb.sim.RunUntil(12 * interval)
	if tb.frr.ProbesSent <= sentBefore {
		t.Fatalf("no probes after restart (sent=%d, before=%d)", tb.frr.ProbesSent, sentBefore)
	}
	// Detection still works after the restart.
	tb.sim.FailLink(tb.sim.Now(), tb.pdIf)
	tb.sim.RunUntil(tb.sim.Now() + 4*interval)
	if !tb.frr.Down(1) {
		t.Fatal("failure not detected after Stop/Start cycle")
	}
	tb.frr.Stop()
	tb.sim.Run()
}

// TestSingleSegmentBackup exercises the 1-segment backup branch of
// the steer program.
func TestSingleSegmentBackup(t *testing.T) {
	tb := newTestbed(t, netsim.Millisecond, 2)
	// Re-protect with a direct 1-segment backup (B forwards the decap
	// prefix without a detour End SID).
	if err := tb.frr.Protect(Protection{
		Prefix:     pfx("2001:db8:2::/48"),
		NeighborID: 1,
		PrimarySID: primSID,
		Backup:     []netip.Addr{bkDecap},
	}); err != nil {
		t.Fatal(err)
	}
	tb.frr.Start()
	tb.sim.FailLink(5*netsim.Millisecond-50*netsim.Microsecond, tb.pdIf)
	gap := 50 * netsim.Microsecond
	n := int(15 * netsim.Millisecond / gap)
	for i := 0; i < n; i++ {
		seq := i
		tb.sim.Schedule(int64(i)*gap, func() { tb.send(t, seq) })
	}
	tb.sim.RunUntil(15 * netsim.Millisecond)
	tb.frr.Stop()
	tb.sim.Run()

	if len(tb.delivered) == 0 {
		t.Fatal("nothing delivered")
	}
	var afterFail int
	for _, at := range tb.delivered {
		if at > 8*netsim.Millisecond {
			afterFail++
		}
	}
	if afterFail == 0 {
		t.Fatalf("no traffic recovered over the 1-segment backup (P=%v)", tb.p.Counters())
	}
}

// TestProbeWireFormat decodes a probe off the wire: correct segment
// list in travel order and a well-formed FRR TLV.
func TestProbeWireFormat(t *testing.T) {
	tb := newTestbed(t, netsim.Millisecond, 3)
	var captured []byte
	tb.pdIf.Tap = func(raw []byte) {
		if captured == nil {
			captured = append([]byte(nil), raw...)
		}
	}
	tb.frr.Start()
	tb.sim.RunUntil(100 * netsim.Microsecond)
	tb.frr.Stop()
	tb.sim.Run()

	if captured == nil {
		t.Fatal("no probe captured on the protected link")
	}
	p, err := packet.Parse(captured)
	if err != nil {
		t.Fatalf("probe does not parse: %v", err)
	}
	if p.SRH == nil {
		t.Fatal("probe has no SRH")
	}
	if p.IPv6.Dst != nbrSID {
		t.Errorf("probe dst = %v, want neighbour SID %v", p.IPv6.Dst, nbrSID)
	}
	if p.SRH.SegmentsLeft != 2 || len(p.SRH.Segments) != 3 {
		t.Errorf("SL=%d segments=%d, want 2/3", p.SRH.SegmentsLeft, len(p.SRH.Segments))
	}
	if p.SRH.Segments[1] != trackSID {
		t.Errorf("segments[1] = %v, want tracker %v", p.SRH.Segments[1], trackSID)
	}
	var tlv *packet.FRRProbeTLV
	for _, v := range p.SRH.TLVs {
		if f, ok := v.(packet.FRRProbeTLV); ok {
			tlv = &f
		}
	}
	if tlv == nil || tlv.NeighborID != 1 {
		t.Fatalf("FRR TLV = %+v, want neighbour id 1 (TLVs: %v)", tlv, p.SRH.TLVs)
	}
}

// TestInterpreterEngine runs the failover scenario with the
// interpreter instead of the JIT (both engines must agree).
func TestInterpreterEngine(t *testing.T) {
	interval := netsim.Millisecond
	sim := netsim.New(7)
	// Minimal two-node check: P --- D, tracker + probe only.
	p := sim.AddNode("P", netsim.ServerCostModel())
	d := sim.AddNode("D", netsim.ServerCostModel())
	p.AddAddress(pAddr)
	d.AddAddress(dAddr)
	core := netem.Config{RateBps: 1e10, DelayNs: 50 * netsim.Microsecond}
	pdIf, dpIf := netsim.ConnectSymmetric(p, d, core)
	d.AddRoute(&netsim.Route{
		Prefix:    netip.PrefixFrom(nbrSID, 128),
		Kind:      netsim.RouteSeg6Local,
		Behaviour: &seg6.Behaviour{Action: seg6.ActionEnd},
	})
	d.AddRoute(&netsim.Route{Prefix: pfx("fc00:10::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: dpIf}}})

	frr, err := New(p, Config{TrackSID: trackSID, ProbeInterval: interval, Misses: 2, JIT: false})
	if err != nil {
		t.Fatal(err)
	}
	if err := frr.AddNeighbor(Neighbor{ID: 9, ProbeAddr: probeTo, SID: nbrSID, Iface: pdIf}); err != nil {
		t.Fatal(err)
	}
	frr.Start()
	sim.RunUntil(5 * interval)
	if frr.Down(9) {
		t.Fatal("healthy neighbour down under the interpreter")
	}
	sim.FailLink(sim.Now(), pdIf)
	sim.RunUntil(sim.Now() + 4*interval)
	if !frr.Down(9) {
		t.Fatal("failure not detected under the interpreter")
	}
	frr.Stop()
	sim.Run()
}
