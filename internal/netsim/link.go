package netsim

import (
	"fmt"
	"math/rand"

	"srv6bpf/internal/netem"
)

// Iface is one end of a point-to-point link.
type Iface struct {
	Name string
	Node *Node
	peer *Iface
	q    *netem.Qdisc

	// down marks the link as failed. Both ends of a link fail and
	// recover together (a cut cable, not an administrative shutdown of
	// one side); in a sharded run each end flips in its own shard at
	// the same virtual instant.
	down bool
	// failEpoch counts failures seen by this link end. A packet
	// records the sender end's epoch at transmission; the delivery
	// event compares it against the receiving end's epoch — the two
	// ends advance in virtual lockstep, so a mismatch means the wire
	// was cut under the packet, even if the link was restored in
	// between. Checking the receiving end keeps the delivery event
	// inside its own shard's state.
	failEpoch uint64

	// Tap, when set, observes every packet accepted for transmission
	// (tests and tcpdump-style tracing). It runs on the transmitting
	// node's shard.
	Tap func(raw []byte)

	// OnStateChange, when set, is invoked whenever the link state
	// flips (after the flip; up reports the new state). Both ends'
	// callbacks fire, each on its own node's shard.
	OnStateChange func(i *Iface, up bool)

	TxPackets uint64
	TxBytes   uint64
	TxDrops   uint64
	// downTxDrops counts transmissions attempted while this end was
	// down (also counted in TxDrops). Owned by the transmitting
	// node's shard.
	downTxDrops uint64
	// inFlightKills counts packets that died on the wire towards this
	// end: the peer transmitted them, then a failure cut the link
	// before delivery. The receiving shard detects the loss, so the
	// counter lives on the receiving end — each shard mutates only
	// its own state (no atomics) and optimistic rollback restores it
	// with this end's node. DownDrops sums both views.
	inFlightKills uint64
}

// Peer returns the interface at the other end.
func (i *Iface) Peer() *Iface { return i.peer }

// DownDrops reports packets lost to link failure on this transmitting
// end: transmissions attempted while down plus packets that were in
// flight towards the peer when the link went down (already counted in
// TxPackets — they left this end but never arrived). Read it only
// while the sim is quiescent.
func (i *Iface) DownDrops() uint64 {
	d := i.downTxDrops
	if i.peer != nil {
		d += i.peer.inFlightKills
	}
	return d
}

// Qdisc exposes the shaping discipline (the TWD daemon adjusts
// ExtraDelayNs through it). The qdisc belongs to the transmitting
// node: adjust it only from that node's shard (or while quiescent).
func (i *Iface) Qdisc() *netem.Qdisc { return i.q }

// Up reports whether the link is up.
func (i *Iface) Up() bool { return !i.down }

// Fail takes the link down: both ends flip, every packet currently on
// the wire (in either direction) is lost, and further transmissions
// drop until Restore. Failing an already-down link is a no-op.
//
// Fail flips both ends synchronously, so during a sharded run it may
// only be called for links whose two ends share a shard (or from
// quiescent driver code); use Sim.FailLink to cut a cross-shard link
// at a scheduled instant.
func (i *Iface) Fail() { i.setLinkState(false) }

// Restore brings the link back up. Packets that were in flight during
// the outage stay lost; new transmissions flow again.
func (i *Iface) Restore() { i.setLinkState(true) }

// setLinkState flips both ends of the link.
func (i *Iface) setLinkState(up bool) {
	if s := i.Node.Sim; s.running && i.peer != nil && i.peer.Node.shard != i.Node.shard {
		panic("netsim: Iface.Fail/Restore on a cross-shard link inside a parallel run; use Sim.FailLink/RestoreLink")
	}
	for _, end := range [2]*Iface{i, i.peer} {
		if end != nil {
			end.setOneEnd(up)
		}
	}
}

// setOneEnd flips one end of the link: the per-shard half of a
// failure or restore. No-op when the end is already in the target
// state.
func (i *Iface) setOneEnd(up bool) {
	if i.down == !up {
		return
	}
	i.Node.dirty = true
	i.down = !up
	if !up {
		i.failEpoch++
		i.Node.Count("link_down")
	} else {
		i.Node.Count("link_up")
	}
	if i.OnStateChange != nil {
		i.OnStateChange(i, up)
	}
}

// xmsg is a cross-shard packet delivery in data form: everything
// needed to rebuild the delivery event at the destination. Keeping
// cross-shard messages as data rather than closures lets the
// optimistic engine compare a rolled-back shard's re-emissions
// against the originals (lazy cancellation) — identical re-sends
// leave the receiver untouched instead of churning anti-messages.
type xmsg struct {
	at, schedAt int64
	src         int32
	k           uint64
	peer        *Iface // receiving link end
	epoch       uint64 // sender's fail epoch at transmission
	raw         []byte
}

func (m *xmsg) key() msgKey { return msgKey{m.at, m.schedAt, m.src, m.k} }

// same reports behavioural identity: delivering either message has
// exactly the same effect.
func (m *xmsg) same(o *xmsg) bool {
	return m.at == o.at && m.schedAt == o.schedAt && m.src == o.src && m.k == o.k &&
		m.peer == o.peer && m.epoch == o.epoch && string(m.raw) == string(o.raw)
}

// event builds the delivery event for a cross-shard message: the
// packet bytes are shared with the optimistic engine's input log, so
// the receiver must treat them as immutable. A failure between
// transmission and delivery cuts the wire under the packet: it is
// lost even if the link has since been restored. Both ends' epochs
// advance at the same virtual instants, so the receiving end's epoch
// stands in for the sender's, keeping the delivery event inside its
// own shard's state. The event is pure data (evDeliver) — no closure
// allocation on the packet hot path.
func (m *xmsg) event() event {
	return event{
		at: m.at, schedAt: m.schedAt, src: m.src, k: m.k,
		kind: evDeliver, peer: m.peer, epoch: m.epoch, raw: m.raw,
		cross: true,
	}
}

// eventLocal builds the delivery event for a same-shard transmission,
// stamping the shard's current checkpoint count so the receive path
// can tell whether any retained checkpoint could share the bytes.
func (m *xmsg) eventLocal(ckptSeq uint64) event {
	return event{
		at: m.at, schedAt: m.schedAt, src: m.src, k: m.k,
		kind: evDeliver, peer: m.peer, epoch: m.epoch, raw: m.raw,
		ckptSeq: ckptSeq,
	}
}

// Transmit serialises raw onto the link; the peer node receives it
// after serialisation and delay. Drops (queue overflow, loss, link
// down) are counted on the interface. Transmit runs on the sending
// node's shard; the delivery event is routed to the shard owning the
// peer, carrying the deterministic key the sequential schedule would
// have assigned it.
func (i *Iface) Transmit(raw []byte) {
	if i.down {
		i.TxDrops++
		i.downTxDrops++
		return
	}
	n := i.Node
	now := n.Now()
	deliverAt, ok := i.q.Admit(now, len(raw), n.rng)
	if !ok {
		i.TxDrops++
		return
	}
	i.TxPackets++
	i.TxBytes += uint64(len(raw))
	if i.Tap != nil {
		// The tap sees the packet as transmitted; wire-level corruption
		// below happens after the sender's tcpdump point.
		i.Tap(raw)
	}
	// Chaos-layer impairments. All draws come from the transmitting
	// node's stream in a fixed order (corrupt, then duplicate) and only
	// when the knob is set, so impairment-free runs consume an
	// identical random stream with or without the chaos layer.
	era := n.pktEra
	if i.q.DrawCorrupt(n.rng) {
		// Damage a private copy: the original bytes may be shared with
		// checkpoint state or a pending commit closure. The copy is
		// private as of now, so it carries the current era stamp.
		raw = corruptCopy(raw, n.rng)
		era = n.shard.ckptSeq
		n.Count("tx_corrupted")
	}
	dup := i.q.DrawDuplicate(n.rng)
	i.send(raw, deliverAt, now, era)
	if dup {
		// tc-netem duplication: the copy is re-admitted as if enqueued
		// a second time, serialising and jittering independently. It
		// owns fresh bytes — receivers mutate packets in place, so two
		// deliveries must never share a buffer.
		if dupAt, ok := i.q.Admit(now, len(raw), n.rng); ok {
			n.Count("tx_duplicated")
			i.send(append([]byte(nil), raw...), dupAt, now, n.shard.ckptSeq)
		} else {
			i.TxDrops++
		}
	}
}

// send routes one admitted packet delivery to the peer, carrying the
// deterministic event key and the era in which the buffer last became
// private (see Transmit for why the era matters under speculation).
func (i *Iface) send(raw []byte, deliverAt, now int64, era uint64) {
	n := i.Node
	n.schedK++
	m := xmsg{
		at: deliverAt, schedAt: now, src: n.idx, k: n.schedK,
		peer: i.peer, epoch: i.failEpoch, raw: raw,
	}
	if i.peer.Node.shard == n.shard {
		// Stamp the era in which this packet's buffer last became
		// private (set at drain/Output), NOT the current one: a
		// checkpoint taken while the packet waited in the pending
		// commit closure has captured the buffer via the heap copy,
		// and the older stamp is what forces the receiving drain to
		// copy before mutating it.
		n.shard.heap.push(m.eventLocal(era))
		return
	}
	if n.Sim.engine == EngineOptimistic {
		// The message must own its bytes: if this delivery survives a
		// sender rollback (lazy cancellation), the sender's
		// re-execution re-writes its own buffer concurrently with the
		// receiver reading the delivered packet.
		m.raw = append([]byte(nil), raw...)
	}
	n.shard.sendCross(m)
}

// corruptCopy returns a copy of raw with a burst of flipped bits at a
// random offset — tc-netem "corrupt" introduces a single-bit error;
// we flip one random bit in one random byte, which is enough to break
// any header field it lands on.
func corruptCopy(raw []byte, rng *rand.Rand) []byte {
	out := append([]byte(nil), raw...)
	if len(out) == 0 {
		return out
	}
	pos := rng.Intn(len(out))
	bit := byte(1) << uint(rng.Intn(8))
	out[pos] ^= bit
	return out
}

func (i *Iface) String() string {
	return fmt.Sprintf("%s/%s", i.Node.Name, i.Name)
}

// Connect joins two nodes with a bidirectional link; each direction
// gets its own qdisc built from its config. It returns a's and b's
// interfaces.
func Connect(a, b *Node, ab, ba netem.Config) (*Iface, *Iface) {
	ia := &Iface{
		Name: fmt.Sprintf("eth%d", len(a.ifaces)),
		Node: a,
		q:    netem.New(ab),
	}
	ib := &Iface{
		Name: fmt.Sprintf("eth%d", len(b.ifaces)),
		Node: b,
		q:    netem.New(ba),
	}
	ia.peer, ib.peer = ib, ia
	a.ifaces = append(a.ifaces, ia)
	b.ifaces = append(b.ifaces, ib)
	return ia, ib
}

// ConnectSymmetric joins two nodes with the same shaping in both
// directions.
func ConnectSymmetric(a, b *Node, cfg netem.Config) (*Iface, *Iface) {
	return Connect(a, b, cfg, cfg)
}
