// Package experiments regenerates every table and figure of the
// paper's evaluation. Each function builds the corresponding lab
// setup in the simulator, runs the workload, and returns the same
// rows/series the paper reports. bench_test.go and cmd/srv6bench are
// thin wrappers around this package; EXPERIMENTS.md records the
// outputs next to the paper's numbers.
package experiments

import (
	"fmt"
	"net/netip"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/core"
	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/nf/progs"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
	"srv6bpf/internal/trafgen"
)

// Lab addresses (setup 1 of Figure 1: S1 -- R -- S2).
var (
	s1Addr = netip.MustParseAddr("2001:db8:1::1")
	rAddr  = netip.MustParseAddr("2001:db8:10::1")
	s2Addr = netip.MustParseAddr("2001:db8:2::1")
	rSID   = netip.MustParseAddr("fc00:10::f1")
	dmSID  = netip.MustParseAddr("fc00:2::dd")
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// lab1 is the §3.2 measurement lab: 10 Gbps links, the router R
// limited by its single core, a generator and a sink.
type lab1 struct {
	sim       *netsim.Sim
	s1, r, s2 *netsim.Node
	rToS2     *netsim.Iface
	sink      *trafgen.Sink
}

func newLab1(seed int64) *lab1 {
	sim := netsim.New(seed)
	l := &lab1{
		sim: sim,
		s1:  sim.AddNode("S1", netsim.HostCostModel()),
		r:   sim.AddNode("R", netsim.ServerCostModel()),
		s2:  sim.AddNode("S2", netsim.HostCostModel()),
	}
	l.s1.AddAddress(s1Addr)
	l.r.AddAddress(rAddr)
	l.s2.AddAddress(s2Addr)

	tenG := netem.Config{RateBps: 10_000_000_000, DelayNs: 5 * netsim.Microsecond}
	s1If, rs1If := netsim.ConnectSymmetric(l.s1, l.r, tenG)
	rs2If, s2If := netsim.ConnectSymmetric(l.r, l.s2, tenG)
	l.rToS2 = rs2If

	l.s1.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: s1If}}})
	l.s2.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: s2If}}})
	l.r.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:1::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: rs1If}}})
	l.r.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:2::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: rs2If}}})
	l.r.AddRoute(&netsim.Route{Prefix: pfx("fc00:2::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: rs2If}}})

	l.sink = trafgen.NewSink(l.s2, 9999)
	return l
}

// offer runs the §3.2 workload: 64-byte UDP payloads inside a
// 2-segment SRH, offered at 3 Mpps ("the source sent 3 million
// packets per second"), for the given duration. dst selects the first
// segment (R's SID for endpoint tests, S2 for raw forwarding).
func (l *lab1) offer(firstSeg netip.Addr, durationNs int64) float64 {
	srh := packet.NewSRH([]netip.Addr{firstSeg, s2Addr})
	gen := &trafgen.UDPGen{
		Node: l.s1, Src: s1Addr, Dst: firstSeg,
		SrcPort: 1000, DstPort: 9999,
		PayloadLen: 64,
		SRH:        srh,
		RatePPS:    3_000_000,
	}
	if err := gen.Start(l.sim.Now() + durationNs); err != nil {
		panic(err)
	}
	// Warm up 10% of the window, then measure.
	l.sim.RunUntil(l.sim.Now() + durationNs/10)
	l.sink.Reset()
	l.sim.RunUntil(l.sim.Now() + durationNs)
	gen.Stop()
	return l.sink.RatePPS()
}

// Row is one bar/point of a reproduced figure.
type Row struct {
	Name       string  `json:"name"`
	KPPS       float64 `json:"kpps"`       // delivered rate
	Normalized float64 `json:"normalized"` // relative to the raw-forwarding baseline
}

// Figure2Config selects the endpoint function variants of Figure 2.
type fig2Variant struct {
	name   string
	static *seg6.Behaviour
	spec   *bpf.ProgramSpec
	jit    bool
}

// Figure2 reproduces §3.2 Figure 2: forwarding rate of the static and
// eBPF endpoint functions, normalized to raw IPv6 forwarding
// (610 kpps in the paper's lab, calibrated identically here).
func Figure2(durationNs int64) ([]Row, error) {
	variants := []fig2Variant{
		{name: "End static", static: &seg6.Behaviour{Action: seg6.ActionEnd}},
		{name: "End BPF", spec: progs.EndSpec(), jit: true},
		{name: "End.T static", static: &seg6.Behaviour{Action: seg6.ActionEndT, Table: 7}},
		{name: "End.T BPF", spec: progs.EndTSpec(7), jit: true},
		{name: "Tag++ BPF", spec: progs.TagIncrementSpec(), jit: true},
		{name: "Add TLV BPF", spec: progs.AddTLVSpec(), jit: true},
		{name: "Add TLV no JIT", spec: progs.AddTLVSpec(), jit: false},
	}

	// Baseline: raw IPv6 forwarding of the same packets.
	base := newLab1(1)
	baseline := base.offer(s2Addr, durationNs)

	rows := []Row{{Name: "IPv6 forward", KPPS: baseline / 1e3, Normalized: 1.0}}
	for _, v := range variants {
		l := newLab1(1)
		// Table 7 (End.T) forwards S2's prefix like main.
		l.r.Table(7).Add(&netsim.Route{
			Prefix: pfx("2001:db8:2::/48"), Kind: netsim.RouteForward,
			Nexthops: []netsim.Nexthop{{Iface: l.rToS2}},
		})
		route := &netsim.Route{Prefix: netip.PrefixFrom(rSID, 128), Kind: netsim.RouteSeg6Local}
		if v.static != nil {
			route.Behaviour = v.static
		} else {
			prog, err := bpf.LoadProgram(v.spec, core.Seg6LocalHook(), nil, bpf.LoadOptions{JIT: &v.jit})
			if err != nil {
				return nil, fmt.Errorf("experiments: %s: %w", v.name, err)
			}
			end, err := core.AttachEndBPF(prog)
			if err != nil {
				return nil, err
			}
			route.Behaviour = end.Behaviour()
		}
		l.r.AddRoute(route)
		rate := l.offer(rSID, durationNs)
		rows = append(rows, Row{Name: v.name, KPPS: rate / 1e3, Normalized: rate / baseline})
	}
	return rows, nil
}

// offerPlain measures forwarding of SRH-less IPv6 traffic (the
// pktgen workload of §4.1).
func (l *lab1) offerPlain(durationNs int64) float64 {
	gen := &trafgen.UDPGen{
		Node: l.s1, Src: s1Addr, Dst: s2Addr,
		SrcPort: 1000, DstPort: 9999, PayloadLen: 64,
		RatePPS: 3_000_000,
	}
	if err := gen.Start(l.sim.Now() + durationNs); err != nil {
		panic(err)
	}
	l.sim.RunUntil(l.sim.Now() + durationNs/10)
	l.sink.Reset()
	l.sim.RunUntil(l.sim.Now() + durationNs)
	gen.Stop()
	return l.sink.RatePPS()
}

// Figure3 reproduces §4.1 Figure 3: the impact of the delay
// monitoring programs on forwarding, for probing ratios 1:10000 and
// 1:100. "Encap" runs the transit encapsulation program on every
// packet; "End.DM" processes a traffic mix where one packet in
// <ratio> is a DM probe that must be reported and decapsulated.
// The baseline is plain (SRH-less) IPv6 forwarding, matching the
// pktgen workload the programs see.
func Figure3(durationNs int64) ([]Row, error) {
	baselineLab := newLab1(2)
	baseline := baselineLab.offerPlain(durationNs)
	rows := []Row{{Name: "IPv6 forward", KPPS: baseline / 1e3, Normalized: 1.0}}

	for _, ratio := range []uint32{10000, 100} {
		// (a) Transit encapsulation on R for all traffic towards S2.
		l := newLab1(2)
		conf := mustDMConf(ratio)
		events := mustDMEvents()
		avail := mapsOf(conf, events)
		encapProg, err := bpf.LoadProgram(progs.DMEncapSpec(), core.LWTOutHook(), avail, bpf.LoadOptions{})
		if err != nil {
			return nil, err
		}
		lwt, err := core.AttachLWT(encapProg)
		if err != nil {
			return nil, err
		}
		l.r.AddRoute(&netsim.Route{
			Prefix: pfx("2001:db8:2::/48"), Kind: netsim.RouteLWTBPF, BPF: lwt,
			Nexthops: []netsim.Nexthop{{Iface: l.rToS2}},
		})
		// S2 hosts the End.DM SID so sampled probes still reach the sink.
		dmProg, err := bpf.LoadProgram(progs.EndDMSpec(), core.Seg6LocalHook(), avail, bpf.LoadOptions{})
		if err != nil {
			return nil, err
		}
		endDM, err := core.AttachEndBPF(dmProg)
		if err != nil {
			return nil, err
		}
		l.s2.AddRoute(&netsim.Route{Prefix: netip.PrefixFrom(dmSID, 128), Kind: netsim.RouteSeg6Local, Behaviour: endDM.Behaviour()})

		gen := &trafgen.UDPGen{
			Node: l.s1, Src: s1Addr, Dst: s2Addr,
			SrcPort: 1000, DstPort: 9999, PayloadLen: 64,
			RatePPS: 3_000_000,
		}
		if err := gen.Start(l.sim.Now() + durationNs); err != nil {
			return nil, err
		}
		l.sim.RunUntil(l.sim.Now() + durationNs/10)
		l.sink.Reset()
		l.sim.RunUntil(l.sim.Now() + durationNs)
		gen.Stop()
		rate := l.sink.RatePPS()
		rows = append(rows, Row{
			Name: fmt.Sprintf("Encap 1:%d", ratio), KPPS: rate / 1e3, Normalized: rate / baseline,
		})

		// (b) End.DM on R: a mix of plain packets and DM probes.
		l2 := newLab1(3)
		events2 := mustDMEvents()
		dmProg2, err := bpf.LoadProgram(progs.EndDMSpec(), core.Seg6LocalHook(), mapsOf(nil, events2), bpf.LoadOptions{})
		if err != nil {
			return nil, err
		}
		endDM2, err := core.AttachEndBPF(dmProg2)
		if err != nil {
			return nil, err
		}
		rDMSID := netip.MustParseAddr("fc00:10::dd")
		l2.r.AddRoute(&netsim.Route{Prefix: netip.PrefixFrom(rDMSID, 128), Kind: netsim.RouteSeg6Local, Behaviour: endDM2.Behaviour()})

		plainRate := 3_000_000.0 * (1.0 - 1.0/float64(ratio))
		probeRate := 3_000_000.0 / float64(ratio)
		plain := &trafgen.UDPGen{
			Node: l2.s1, Src: s1Addr, Dst: s2Addr,
			SrcPort: 1000, DstPort: 9999, PayloadLen: 64,
			RatePPS: plainRate,
		}
		probe := &trafgen.RawGen{Node: l2.s1, Template: dmProbe(rDMSID), RatePPS: probeRate}
		if err := plain.Start(l2.sim.Now() + durationNs); err != nil {
			return nil, err
		}
		probe.Start(l2.sim.Now() + durationNs)
		l2.sim.RunUntil(l2.sim.Now() + durationNs/10)
		l2.sink.Reset()
		l2.sim.RunUntil(l2.sim.Now() + durationNs)
		plain.Stop()
		probe.Stop()
		rate2 := l2.sink.RatePPS()
		rows = append(rows, Row{
			Name: fmt.Sprintf("End.DM 1:%d", ratio), KPPS: rate2 / 1e3, Normalized: rate2 / baseline,
		})
	}
	return rows, nil
}

// dmProbe builds a pre-encapsulated delay-measurement probe addressed
// to sid, carrying an inner UDP packet for the sink.
func dmProbe(sid netip.Addr) []byte {
	inner, err := packet.BuildPacket(s1Addr, s2Addr,
		packet.WithUDP(1000, 9999), packet.WithPayload(make([]byte, 64)))
	if err != nil {
		panic(err)
	}
	srh := packet.NewSRH(
		[]netip.Addr{sid, s2Addr},
		packet.DMTLV{TxTimestampNS: 1},
		packet.ControllerTLV{Addr: rAddr, Port: 7788},
	)
	outer, err := packet.BuildPacket(s1Addr, sid,
		packet.WithSRH(srh), packet.WithInnerPacket(inner))
	if err != nil {
		panic(err)
	}
	return outer
}
