package srv6bpf

import (
	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/asm"
	"srv6bpf/internal/core"
)

// This file re-exports the assembler vocabulary so downstream users
// can author eBPF network functions against the public API alone, in
// the same style as the bundled programs (internal/nf/progs).

// Registers.
const (
	R0  = asm.R0
	R1  = asm.R1
	R2  = asm.R2
	R3  = asm.R3
	R4  = asm.R4
	R5  = asm.R5
	R6  = asm.R6
	R7  = asm.R7
	R8  = asm.R8
	R9  = asm.R9
	RFP = asm.RFP
)

// Memory access widths.
const (
	Byte  = asm.Byte
	Half  = asm.Half
	Word  = asm.Word
	DWord = asm.DWord
)

// ALU operations.
const (
	Add  = asm.Add
	Sub  = asm.Sub
	Mul  = asm.Mul
	Div  = asm.Div
	Or   = asm.Or
	And  = asm.And
	LSh  = asm.LSh
	RSh  = asm.RSh
	Mod  = asm.Mod
	Xor  = asm.Xor
	Mov  = asm.Mov
	ArSh = asm.ArSh
)

// Jump conditions.
const (
	JEq  = asm.JEq
	JNE  = asm.JNE
	JGT  = asm.JGT
	JGE  = asm.JGE
	JLT  = asm.JLT
	JLE  = asm.JLE
	JSet = asm.JSet
	JSGT = asm.JSGT
	JSGE = asm.JSGE
	JSLT = asm.JSLT
	JSLE = asm.JSLE
)

// Instruction constructors (see internal/bpf/asm for semantics).
var (
	Mov64Imm   = asm.Mov64Imm
	Mov64Reg   = asm.Mov64Reg
	Mov32Imm   = asm.Mov32Imm
	Mov32Reg   = asm.Mov32Reg
	ALU64Imm   = asm.ALU64Imm
	ALU64Reg   = asm.ALU64Reg
	ALU32Imm   = asm.ALU32Imm
	ALU32Reg   = asm.ALU32Reg
	Neg64      = asm.Neg64
	HostToBE   = asm.HostToBE
	HostToLE   = asm.HostToLE
	LoadImm64  = asm.LoadImm64
	LoadMapPtr = asm.LoadMapPtr
	LoadMem    = asm.LoadMem
	StoreMem   = asm.StoreMem
	StoreImm   = asm.StoreImm
	AtomicAdd  = asm.AtomicAdd
	JumpTo     = asm.JumpTo
	JumpImm    = asm.JumpImm
	JumpReg    = asm.JumpReg
	CallHelper = asm.CallHelper
	Return     = asm.Return
)

// Helper IDs callable from programs (Linux UAPI numbering where the
// kernel defines them; see internal/bpf for signatures).
const (
	HelperMapLookupElem    = bpf.HelperMapLookupElem
	HelperMapUpdateElem    = bpf.HelperMapUpdateElem
	HelperMapDeleteElem    = bpf.HelperMapDeleteElem
	HelperKtimeGetNS       = bpf.HelperKtimeGetNS
	HelperTracePrintk      = bpf.HelperTracePrintk
	HelperGetPrandomU32    = bpf.HelperGetPrandomU32
	HelperPerfEventOutput  = bpf.HelperPerfEventOutput
	HelperSkbLoadBytes     = bpf.HelperSkbLoadBytes
	HelperLWTPushEncap     = bpf.HelperLWTPushEncap
	HelperLWTSeg6StoreByte = bpf.HelperLWTSeg6StoreByte
	HelperLWTSeg6AdjustSRH = bpf.HelperLWTSeg6AdjustSRH
	HelperLWTSeg6Action    = bpf.HelperLWTSeg6Action
	HelperHWTimestamp      = bpf.HelperHWTimestamp
	HelperSeg6ECMPNexthops = bpf.HelperSeg6ECMPNexthops
)

// Context field offsets for programs (the simulator's __sk_buff).
const (
	CtxOffLen     = core.CtxOffLen
	CtxOffData    = core.CtxOffData
	CtxOffDataEnd = core.CtxOffDataEnd
)
