package packet

import "fmt"

// Info is an offset-based view of a packet's header chain: everything
// Parse discovers that the forwarding fast path needs, without
// materialising netip.Addr segment lists or TLV structs. ParseInfo
// allocates nothing, which is what keeps the End.BPF datapath
// allocation-free per packet.
type Info struct {
	FlowLabel  uint32
	HopLimit   uint8
	NextHeader uint8

	// SRHOff is the byte offset of the SRH Parse would report (the
	// routing header closest to the payload), or -1 when the packet
	// carries none. SRHLen is its wire length.
	SRHOff int
	SRHLen int
	// SegmentsLeft and LastEntry mirror the SRH fields (valid only
	// when SRHOff >= 0).
	SegmentsLeft uint8
	LastEntry    uint8

	L4Proto uint8
	L4Off   int
	// InnerOff is the offset of an inner IPv6 header (IPv6-in-IPv6),
	// 0 when absent.
	InnerOff int
}

// HasSRH reports whether the walk found a segment routing header.
func (i *Info) HasSRH() bool { return i.SRHOff >= 0 }

// ParseInfo walks the header chain of an IPv6 packet like Parse, but
// into a value-typed Info and without decoding segment addresses or
// TLVs — zero allocations. Structural SRH validation matches
// DecodeSRH (routing type, length bounds, segments_left vs
// last_entry), so a packet accepted here is accepted by Parse too.
func ParseInfo(raw []byte) (Info, error) {
	info := Info{SRHOff: -1}
	if len(raw) < IPv6HeaderLen {
		return info, fmt.Errorf("%w: IPv6 header needs 40 bytes, have %d", ErrTruncated, len(raw))
	}
	if raw[0]>>4 != 6 {
		return info, fmt.Errorf("%w: version %d", ErrBadVersion, raw[0]>>4)
	}
	info.FlowLabel = uint32(raw[1]&0x0f)<<16 | uint32(raw[2])<<8 | uint32(raw[3])
	info.NextHeader = raw[6]
	info.HopLimit = raw[7]

	off := IPv6HeaderLen
	proto := info.NextHeader
	for {
		switch proto {
		case ProtoRouting:
			n, err := walkSRH(raw, off, &info)
			if err != nil {
				return info, err
			}
			proto = raw[off+SRHOffNextHeader]
			off += n
		case ProtoIPv6, ProtoIPv4:
			info.InnerOff = off
			info.L4Proto = proto
			info.L4Off = off
			return info, nil
		default:
			info.L4Proto = proto
			info.L4Off = off
			return info, nil
		}
	}
}

// walkSRH validates the SRH at off (via the structural checker and
// the validate-only TLV walk shared with DecodeSRH) and records it in
// info, returning the wire length.
func walkSRH(raw []byte, off int, info *Info) (int, error) {
	total, segsLeft, lastEntry, err := srhStructure(raw[off:])
	if err != nil {
		return 0, err
	}
	// The TLV area must be walkable too — Parse rejects a malformed
	// TLV chain, and the accept sets of the two parsers are one
	// contract. validateTLVs allocates nothing.
	if err := validateTLVs(raw[off+SRHFixedLen+16*(int(lastEntry)+1) : off+total]); err != nil {
		return 0, err
	}
	// Like Parse, a later routing header in the chain overwrites an
	// earlier one: the recorded SRH is the one closest to the payload.
	info.SRHOff = off
	info.SRHLen = total
	info.SegmentsLeft = segsLeft
	info.LastEntry = lastEntry
	return total, nil
}
