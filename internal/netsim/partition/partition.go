// Package partition computes deterministic node→shard assignments
// for netsim's parallel engines.
//
// netsim's historical partition is the contiguous creation-order
// block: shard i owns nodes [i·n/k, (i+1)·n/k). Generators that lay
// out locality-heavy regions contiguously (fat-tree pods, ring arcs)
// shard well under it, but a Waxman random graph does not — creation
// order carries no locality, so roughly (k−1)/k of all links cross
// shards and every crossing packet is a cross-shard message
// (EngineStats.Messages) paid for at the barrier under both engines.
//
// MinCut replaces the block partition with a topology-aware one: it
// builds a node-affinity graph whose edge weights favour keeping
// short-delay (tightly coupled, high expected-traffic) links
// shard-internal, coarsens it by heavy-edge matching, partitions the
// coarsest graph by greedy region growth and refines the projection
// back up the hierarchy with KL/FM-style boundary moves under a
// balance bound. Everything is deterministic in (graph, k, seed):
// the same topology and seed always produce the same assignment, so
// the engines' bit-identical replay guarantee — and the equivalence
// fuzzer that locks it — holds under either partitioner.
package partition

import (
	"fmt"
	"math"
	"math/rand"

	"srv6bpf/internal/netsim"
)

// Assignment maps node creation index → shard id.
type Assignment []int

// Contiguous reproduces netsim's creation-order block partition:
// shard i owns node range [i·n/k, (i+1)·n/k).
func Contiguous(n, k int) Assignment {
	a := make(Assignment, n)
	for i := range a {
		a[i] = i * k / n
	}
	return a
}

// edge is one weighted adjacency entry.
type edge struct {
	to int
	w  int64
}

// Graph is the node-affinity graph MinCut partitions: one vertex per
// simulation node, one weighted undirected edge per link (multi-links
// merge by weight sum).
type Graph struct {
	adj [][]edge
	// vw is the vertex weight (constituent fine-node count on
	// coarsened graphs; all ones on the original).
	vw []int64
}

// Len returns the vertex count.
func (g *Graph) Len() int { return len(g.adj) }

// maxAffinity is the edge weight of a zero-delay link: effectively
// infinite coupling. Cutting one would also force the conservative
// engine to reject the partition, so they must never look cheap.
const maxAffinity = int64(1) << 40

// linkAffinity converts a link's propagation delay into an edge
// weight. Affinity decays with delay: a short link means tightly
// coupled event streams (and, under the conservative engine, a
// smaller lookahead if cut — more barriers), so keeping it internal
// pays twice. The expected-traffic component is implicit: shortest-
// path routing concentrates traffic on low-delay links.
func linkAffinity(delayNs int64) int64 {
	if delayNs <= 0 {
		return maxAffinity
	}
	// 1e9/delay, clamped: 1 µs → 1e6, 25 µs → 40000, 1 ms → 1000.
	w := int64(1_000_000_000) / delayNs
	if w < 1 {
		w = 1
	}
	return w
}

// FromSim builds the affinity graph of sim's current topology. Vertex
// order is node creation order — the same order Assignment indexes.
func FromSim(sim *netsim.Sim) *Graph {
	nodes := sim.Nodes()
	index := make(map[*netsim.Node]int, len(nodes))
	for i, n := range nodes {
		index[n] = i
	}
	g := &Graph{
		adj: make([][]edge, len(nodes)),
		vw:  make([]int64, len(nodes)),
	}
	for i := range g.vw {
		g.vw[i] = 1
	}
	// Accumulate per neighbour: both ends enumerate the link, so add
	// each direction from its own end (weights stay symmetric because
	// ConnectSymmetric mirrors the config; asymmetric Connect links
	// average out through the two directed contributions).
	for i, n := range nodes {
		sum := make(map[int]int64)
		for _, ifc := range n.Ifaces() {
			p := ifc.Peer()
			if p == nil {
				continue
			}
			j, ok := index[p.Node]
			if !ok || j == i {
				continue
			}
			sum[j] += linkAffinity(ifc.Qdisc().Config().DelayNs)
		}
		// Deterministic adjacency order: ascending neighbour index.
		for j := 0; j < len(nodes); j++ {
			if w, ok := sum[j]; ok {
				g.adj[i] = append(g.adj[i], edge{to: j, w: w})
			}
		}
	}
	return g
}

// CutLinks counts the unordered node pairs joined by at least one
// link whose ends land in different shards — the cross-shard link
// count srv6bench prints next to EngineStats.Messages.
func CutLinks(g *Graph, a Assignment) int {
	cut := 0
	for v, es := range g.adj {
		for _, e := range es {
			if e.to > v && a[e.to] != a[v] {
				cut++
			}
		}
	}
	return cut
}

// cutWeight is the summed weight of cut edges (the refinement
// objective).
func cutWeight(g *Graph, a Assignment) int64 {
	var w int64
	for v, es := range g.adj {
		for _, e := range es {
			if e.to > v && a[e.to] != a[v] {
				w += e.w
			}
		}
	}
	return w
}

// balance is the band a level's shard weights must stay inside:
// avg/slackX .. avg·slackX with slackX = 1.08. Rounding goes inward
// (ceil on lo, floor on hi) so the band never widens past the slack —
// keeping the final (unit-weight) level's max/min size ratio ≤ ~1.17,
// inside the 1.2 bound the partition tests enforce — but is clamped
// to [floor(avg), ceil(avg)] so k shards can always sum to total.
const slackX = 1.08

func balanceBand(total int64, k int) (lo, hi int64) {
	avg := float64(total) / float64(k)
	lo = int64(math.Ceil(avg / slackX))
	if f := int64(math.Floor(avg)); lo > f {
		lo = f
	}
	hi = int64(math.Floor(avg * slackX))
	if c := int64(math.Ceil(avg)); hi < c {
		hi = c
	}
	if lo < 1 {
		lo = 1
	}
	return lo, hi
}

// MinCut partitions g into k shards, minimising the weighted edge cut
// under the balance band. The result is deterministic in (g, k,
// seed); seed only perturbs refinement visit order (any seed yields a
// valid partition — fix one per scenario for replayable shardings).
func MinCut(g *Graph, k int, seed int64) (Assignment, error) {
	n := g.Len()
	switch {
	case k < 1:
		return nil, fmt.Errorf("partition: k %d < 1", k)
	case k == 1:
		return make(Assignment, n), nil
	case k > n:
		return nil, fmt.Errorf("partition: %d shards for %d nodes", k, n)
	case k == n:
		a := make(Assignment, n)
		for i := range a {
			a[i] = i
		}
		return a, nil
	}

	// Multi-level V-cycle: coarsen while it pays, partition the
	// coarsest level, refine on the way back up.
	levels := []*Graph{g}
	maps := [][]int{} // maps[l][fine] = coarse vertex in levels[l+1]
	coarsestTarget := 8 * k
	if coarsestTarget < 32 {
		coarsestTarget = 32
	}
	for levels[len(levels)-1].Len() > coarsestTarget {
		cur := levels[len(levels)-1]
		next, m := coarsen(cur)
		if next.Len() >= cur.Len() {
			break // no more matchable edges
		}
		levels = append(levels, next)
		maps = append(maps, m)
	}

	rng := rand.New(rand.NewSource(seed ^ 0x6d696e63)) // "minc"
	coarsest := levels[len(levels)-1]
	assign := initialPartition(coarsest, k)
	refine(coarsest, assign, k, rng)

	// Project back down, refining at every level.
	for l := len(maps) - 1; l >= 0; l-- {
		fine := levels[l]
		proj := make(Assignment, fine.Len())
		for v := range proj {
			proj[v] = assign[maps[l][v]]
		}
		assign = proj
		refine(fine, assign, k, rng)
	}
	repairBalance(g, assign, k)
	return assign, nil
}

// coarsen contracts a heavy-edge matching: every vertex, visited in
// index order, merges with its heaviest unmatched neighbour
// (ties: lowest index). Returns the coarse graph and the fine→coarse
// vertex map.
func coarsen(g *Graph) (*Graph, []int) {
	n := g.Len()
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	for v := 0; v < n; v++ {
		if match[v] >= 0 {
			continue
		}
		best, bestW := -1, int64(-1)
		for _, e := range g.adj[v] {
			if match[e.to] < 0 && e.to != v && e.w > bestW {
				best, bestW = e.to, e.w
			}
		}
		if best >= 0 {
			match[v], match[best] = best, v
		} else {
			match[v] = v // stays solo
		}
	}
	cmap := make([]int, n)
	for i := range cmap {
		cmap[i] = -1
	}
	nc := 0
	for v := 0; v < n; v++ {
		if cmap[v] >= 0 {
			continue
		}
		cmap[v] = nc
		if m := match[v]; m != v && cmap[m] < 0 {
			cmap[m] = nc
		}
		nc++
	}
	coarse := &Graph{adj: make([][]edge, nc), vw: make([]int64, nc)}
	for v := 0; v < n; v++ {
		coarse.vw[cmap[v]] += g.vw[v]
	}
	sums := make([]map[int]int64, nc)
	for v := 0; v < n; v++ {
		cv := cmap[v]
		for _, e := range g.adj[v] {
			ct := cmap[e.to]
			if ct == cv {
				continue
			}
			if sums[cv] == nil {
				sums[cv] = make(map[int]int64)
			}
			sums[cv][ct] += e.w
		}
	}
	for cv := 0; cv < nc; cv++ {
		for ct := 0; ct < nc; ct++ {
			if w, ok := sums[cv][ct]; ok {
				coarse.adj[cv] = append(coarse.adj[cv], edge{to: ct, w: w})
			}
		}
	}
	return coarse, cmap
}

// initialPartition grows k regions on the coarsest graph: each shard
// seeds on the heaviest unassigned vertex and greedily absorbs the
// unassigned vertex with the strongest connection to it until the
// shard reaches the average weight.
func initialPartition(g *Graph, k int) Assignment {
	n := g.Len()
	assign := make(Assignment, n)
	for i := range assign {
		assign[i] = -1
	}
	var total int64
	for _, w := range g.vw {
		total += w
	}
	// conn[v] = summed edge weight from v into the growing shard.
	conn := make([]int64, n)
	for s := 0; s < k; s++ {
		target := total / int64(k-s)
		// Seed: heaviest unassigned vertex (ties: lowest index).
		seed := -1
		for v := 0; v < n; v++ {
			if assign[v] < 0 && (seed < 0 || g.vw[v] > g.vw[seed]) {
				seed = v
			}
		}
		if seed < 0 {
			break
		}
		for i := range conn {
			conn[i] = 0
		}
		grow := func(v int) {
			assign[v] = s
			total -= g.vw[v]
			for _, e := range g.adj[v] {
				if assign[e.to] < 0 {
					conn[e.to] += e.w
				}
			}
		}
		weight := g.vw[seed]
		grow(seed)
		for weight < target {
			best := -1
			for v := 0; v < n; v++ {
				if assign[v] >= 0 || conn[v] == 0 {
					continue
				}
				if best < 0 || conn[v] > conn[best] {
					best = v
				}
			}
			if best < 0 {
				// Region is a whole component: restart from the next
				// heaviest unassigned vertex.
				next := -1
				for v := 0; v < n; v++ {
					if assign[v] < 0 && (next < 0 || g.vw[v] > g.vw[next]) {
						next = v
					}
				}
				if next < 0 {
					break
				}
				best = next
			}
			weight += g.vw[best]
			grow(best)
		}
	}
	// Leftovers (the last region's growth stopped at target): last
	// shard takes them.
	for v := range assign {
		if assign[v] < 0 {
			assign[v] = k - 1
		}
	}
	return assign
}

// refine runs KL/FM-style greedy passes: each pass visits every
// vertex in a seeded order and applies the best cut-reducing
// (or balance-improving, cut-neutral) move that keeps both shards
// inside the balance band. Passes repeat until a pass moves nothing
// (or the pass cap, a safety net, is hit).
func refine(g *Graph, assign Assignment, k int, rng *rand.Rand) {
	n := g.Len()
	var total int64
	sizeW := make([]int64, k)
	for v, s := range assign {
		sizeW[s] += g.vw[v]
		total += g.vw[v]
	}
	lo, hi := balanceBand(total, k)
	order := rng.Perm(n)
	ext := make([]int64, k) // per-shard connectivity of the vertex at hand
	const maxPasses = 12
	for pass := 0; pass < maxPasses; pass++ {
		moved := 0
		for _, v := range order {
			from := assign[v]
			if len(g.adj[v]) == 0 {
				continue
			}
			for s := range ext {
				ext[s] = 0
			}
			for _, e := range g.adj[v] {
				ext[assign[e.to]] += e.w
			}
			best, bestGain := -1, int64(0)
			for s := 0; s < k; s++ {
				if s == from {
					continue
				}
				if sizeW[from]-g.vw[v] < lo || sizeW[s]+g.vw[v] > hi {
					continue
				}
				gain := ext[s] - ext[from]
				if gain > bestGain ||
					(gain == 0 && best < 0 && sizeW[from] > sizeW[s]+g.vw[v]) {
					best, bestGain = s, gain
				}
			}
			if best >= 0 {
				sizeW[from] -= g.vw[v]
				sizeW[best] += g.vw[v]
				assign[v] = best
				moved++
			}
		}
		if moved == 0 {
			break
		}
	}
}

// repairBalance enforces the balance band on the finest level, where
// every vertex weighs 1 and a fix is always possible: while a shard
// sits outside the band, move the cheapest boundary-adjacent vertex
// from the largest shard to the smallest.
func repairBalance(g *Graph, assign Assignment, k int) {
	sizes := make([]int64, k)
	var total int64
	for _, s := range assign {
		sizes[s]++
		total++
	}
	lo, hi := balanceBand(total, k)
	for {
		maxS, minS := 0, 0
		for s := 1; s < k; s++ {
			if sizes[s] > sizes[maxS] {
				maxS = s
			}
			if sizes[s] < sizes[minS] {
				minS = s
			}
		}
		if sizes[maxS] <= hi && sizes[minS] >= lo {
			return
		}
		// Cheapest vertex of the largest shard to hand to the
		// smallest: maximise (connectivity to minS − connectivity to
		// maxS); ties break on lowest index.
		best, bestGain := -1, int64(math.MinInt64)
		for v, s := range assign {
			if s != maxS {
				continue
			}
			var toMin, toMax int64
			for _, e := range g.adj[v] {
				switch assign[e.to] {
				case minS:
					toMin += e.w
				case maxS:
					toMax += e.w
				}
			}
			if gain := toMin - toMax; gain > bestGain {
				best, bestGain = v, gain
			}
		}
		if best < 0 {
			return // maxS empty: nothing movable (cannot happen with k ≤ n)
		}
		assign[best] = minS
		sizes[maxS]--
		sizes[minS]++
	}
}
