package core

import (
	"errors"
	"fmt"
	"net/netip"

	"srv6bpf/internal/netsim"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
)

// execEnv is the per-invocation environment behind the helpers: the
// node executing the program, the packet being processed, and the
// SRv6 state the kernel keeps in seg6_bpf_srh_state.
type execEnv struct {
	node *netsim.Node
	meta *netsim.PacketMeta

	// pkt is the working packet. Helpers may replace it (push_encap,
	// seg6_action End.B6/DT6); setPacket keeps the VM's packet region
	// and the ctx in sync.
	pkt []byte

	// srhOff is the byte offset of the outermost SRH, or -1.
	srhOff int

	// srhModified is set by store_bytes/adjust_srh: the SRH must be
	// revalidated after the program returns (§3.1).
	srhModified bool

	// pending is the verdict prepared by bpf_lwt_seg6_action for
	// BPF_REDIRECT ("the default endpoint lookup must not be
	// performed, and the packet must be forwarded to the destination
	// already set in the packet metadata").
	pending *seg6.Result

	// refreshRegions re-installs packet memory after pkt replacement.
	// It is bound once at attach time; beginRun preserves it.
	refreshRegions func(env *execEnv)

	// printkPrefix tags trace output with the program name. Set once
	// at attach time.
	printkPrefix string
}

// beginRun resets the reusable environment for one program
// invocation. The attachment owns exactly one execEnv (nodes are
// single-threaded), so the per-packet path allocates nothing.
func (e *execEnv) beginRun(node *netsim.Node, meta *netsim.PacketMeta, pkt []byte, srhOff int) {
	e.node = node
	e.meta = meta
	e.pkt = pkt
	e.srhOff = srhOff
	e.srhModified = false
	e.pending = nil
}

// Now implements bpf.ExecContext against virtual time (the executing
// node's shard clock, exact under sharded runs).
func (e *execEnv) Now() int64 { return e.node.Now() }

// Random implements bpf.ExecContext with the node's seeded private
// stream, so program draws are deterministic per node regardless of
// shard layout or other nodes' activity.
func (e *execEnv) Random() uint32 { return e.node.Rand().Uint32() }

// Printk implements bpf.ExecContext.
func (e *execEnv) Printk(msg string) {
	if e.node.Trace != nil {
		e.node.Trace("%s: bpf_trace_printk: %s", e.printkPrefix, msg)
	}
}

// setPacket replaces the working packet and refreshes derived state.
func (e *execEnv) setPacket(pkt []byte) error {
	e.pkt = pkt
	e.srhOff = -1
	if info, err := packet.ParseInfo(pkt); err == nil && info.HasSRH() {
		e.srhOff = info.SRHOff
	}
	if e.refreshRegions != nil {
		e.refreshRegions(e)
	}
	return nil
}

// srhBounds returns the SRH byte range within the packet.
func (e *execEnv) srhBounds() (start, end int, err error) {
	if e.srhOff < 0 {
		return 0, 0, seg6.ErrNoSRH
	}
	start = e.srhOff
	if start+packet.SRHFixedLen > len(e.pkt) {
		return 0, 0, packet.ErrTruncated
	}
	end = start + (int(e.pkt[start+packet.SRHOffHdrExtLen])+1)*8
	if end > len(e.pkt) {
		return 0, 0, packet.ErrTruncated
	}
	return start, end, nil
}

// tlvAreaStart returns the first byte after the segment list.
func (e *execEnv) tlvAreaStart() (int, error) {
	start, end, err := e.srhBounds()
	if err != nil {
		return 0, err
	}
	nSegs := int(e.pkt[start+packet.SRHOffLastEntry]) + 1
	tlv := start + packet.SRHFixedLen + 16*nSegs
	if tlv > end {
		return 0, packet.ErrBadSRH
	}
	return tlv, nil
}

// errWritableRange rejects store_bytes outside the fields §3.1
// permits: "the flags, the tag, and the TLVs".
var errWritableRange = errors.New("core: seg6_store_bytes outside flags/tag/TLV area")

// checkWritable validates a [off, off+n) write range against the
// permitted SRH fields.
func (e *execEnv) checkWritable(off, n int) error {
	if n <= 0 {
		return fmt.Errorf("core: non-positive store length %d", n)
	}
	start, end, err := e.srhBounds()
	if err != nil {
		return err
	}
	tlv, err := e.tlvAreaStart()
	if err != nil {
		return err
	}
	lo, hi := off, off+n
	flagsOff := start + packet.SRHOffFlags
	tagOff := start + packet.SRHOffTag
	switch {
	case lo >= flagsOff && hi <= tagOff+2:
		// flags (1 byte) and tag (2 bytes) are contiguous: [5,8).
		return nil
	case lo >= tlv && hi <= end:
		return nil
	default:
		return fmt.Errorf("%w: [%d,%d) (flags/tag [%d,%d), TLVs [%d,%d))",
			errWritableRange, lo, hi, flagsOff, tagOff+2, tlv, end)
	}
}

// resolveECMPNexthops performs the FIB query of the paper's custom
// helper (§4.3): the ECMP nexthop addresses for dst on this node.
func (e *execEnv) resolveECMPNexthops(dst netip.Addr, max int) []netip.Addr {
	r := e.node.Lookup(dst, netsim.MainTable)
	if r == nil {
		return nil
	}
	var out []netip.Addr
	for _, nh := range r.Nexthops {
		if len(out) >= max {
			break
		}
		addr := nh.Gateway
		if !addr.IsValid() && nh.Iface != nil && nh.Iface.Peer() != nil {
			addr = nh.Iface.Peer().Node.PrimaryAddress()
		}
		if addr.IsValid() {
			out = append(out, addr)
		}
	}
	return out
}
