package chaos

import (
	"fmt"
	"sort"

	"srv6bpf/internal/obs"
)

// PublishObs registers a collector exposing the engine's fault plan by
// kind, so a dashboard can correlate traffic dips with injected
// faults.
func (e *Engine) PublishObs(reg *obs.Registry) {
	reg.Collect(func(em *obs.Emitter) {
		counts := make(map[string]int)
		for _, f := range e.Plan() {
			counts[f.Kind.String()]++
		}
		kinds := make([]string, 0, len(counts))
		for k := range counts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for _, k := range kinds {
			em.Gauge("srv6sim_chaos_faults_planned", fmt.Sprintf("kind=%q", k), float64(counts[k]))
		}
	})
}
