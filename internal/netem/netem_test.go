package netem

import (
	"math"
	"math/rand"
	"testing"

	"srv6bpf/internal/stats"
)

func TestSerializationRate(t *testing.T) {
	// 50 Mbps, 1250-byte packets -> 200 µs each.
	q := New(Config{RateBps: 50_000_000})
	if got := q.SerializationNs(1250); got != 200_000 {
		t.Errorf("serialization = %d ns, want 200000", got)
	}
	// Unlimited rate serialises instantly.
	q2 := New(Config{})
	if got := q2.SerializationNs(1500); got != 0 {
		t.Errorf("unlimited serialization = %d", got)
	}
}

func TestBackToBackPacketsQueueBehindEachOther(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	q := New(Config{RateBps: 8_000_000, DelayNs: 1_000_000}) // 1 µs/byte
	d1, ok1 := q.Admit(0, 1000, rng)
	d2, ok2 := q.Admit(0, 1000, rng)
	if !ok1 || !ok2 {
		t.Fatal("admission failed")
	}
	// First: 1 ms serialization + 1 ms delay. Second starts after the
	// first finishes serialising.
	if d1 != 2_000_000 {
		t.Errorf("d1 = %d", d1)
	}
	if d2 != 3_000_000 {
		t.Errorf("d2 = %d (must queue behind first)", d2)
	}
}

func TestThroughputMatchesRate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const rate = 30_000_000 // 30 Mbps
	q := New(Config{RateBps: rate, QueueLimit: 1 << 20})
	const pkt = 1250
	const n = 3000
	var last int64
	for i := 0; i < n; i++ {
		d, ok := q.Admit(0, pkt, rng)
		if !ok {
			t.Fatal("drop")
		}
		last = d
	}
	gotBps := stats.BitsPerSecond(uint64(n*pkt), last)
	if math.Abs(gotBps-rate)/rate > 0.01 {
		t.Errorf("achieved %.0f bps, want ~%d", gotBps, rate)
	}
}

func TestQueueLimitTailDrop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := New(Config{RateBps: 1_000_000, QueueLimit: 10})
	drops := 0
	for i := 0; i < 100; i++ {
		if _, ok := q.Admit(0, 1000, rng); !ok {
			drops++
		}
	}
	if drops != 90 {
		t.Errorf("drops = %d, want 90", drops)
	}
	if q.Dropped != 90 || q.Admitted != 10 {
		t.Errorf("counters: admitted=%d dropped=%d", q.Admitted, q.Dropped)
	}
	// After the queue drains, admission resumes.
	if _, ok := q.Admit(1e12, 1000, rng); !ok {
		t.Error("admission did not resume after drain")
	}
}

func TestJitterDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const mean = 30_000_000 // 30 ms
	const std = 5_000_000   // 5 ms
	q := New(Config{DelayNs: mean, JitterNs: std, QueueLimit: 1 << 20})
	var w stats.Welford
	// Space arrivals far apart so FIFO clamping doesn't bias samples.
	for i := 0; i < 4000; i++ {
		now := int64(i) * 100_000_000
		d, ok := q.Admit(now, 100, rng)
		if !ok {
			t.Fatal("drop")
		}
		w.Add(float64(d - now))
	}
	if math.Abs(w.Mean()-mean)/mean > 0.02 {
		t.Errorf("mean delay = %.0f, want ~%d", w.Mean(), mean)
	}
	if math.Abs(w.Stddev()-std)/std > 0.10 {
		t.Errorf("stddev = %.0f, want ~%d", w.Stddev(), std)
	}
}

func TestFIFOOrderPreservedDespiteJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := New(Config{DelayNs: 10_000_000, JitterNs: 8_000_000, QueueLimit: 1 << 20})
	var prev int64
	for i := 0; i < 2000; i++ {
		now := int64(i) * 10_000 // closely spaced
		d, ok := q.Admit(now, 100, rng)
		if !ok {
			t.Fatal("drop")
		}
		if d < prev {
			t.Fatalf("reorder within one direction: %d after %d", d, prev)
		}
		prev = d
	}
}

func TestLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := New(Config{Loss: 0.25, QueueLimit: 1 << 20})
	lost := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if _, ok := q.Admit(int64(i)*1000, 100, rng); !ok {
			lost++
		}
	}
	rate := float64(lost) / n
	if math.Abs(rate-0.25) > 0.02 {
		t.Errorf("loss rate = %.3f, want ~0.25", rate)
	}
	if q.LossDrops != uint64(lost) {
		t.Errorf("LossDrops = %d, lost = %d", q.LossDrops, lost)
	}
}

func TestExtraDelayKnob(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := New(Config{DelayNs: 5_000_000})
	d1, _ := q.Admit(0, 100, rng)
	q.ExtraDelayNs = 25_000_000 // the TWD daemon's compensation
	d2, _ := q.Admit(0, 100, rng)
	if d2-d1 != 25_000_000 {
		t.Errorf("extra delay shifted delivery by %d", d2-d1)
	}
	q.SetDelay(1_000_000)
	q.SetRate(1000)
	if q.Config().DelayNs != 1_000_000 || q.Config().RateBps != 1000 {
		t.Error("runtime setters")
	}
}

func TestQueueDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	q := New(Config{RateBps: 8_000, QueueLimit: 100}) // 1 ms/byte: slow
	for i := 0; i < 5; i++ {
		q.Admit(0, 1000, rng)
	}
	if d := q.QueueDepth(0); d != 5 {
		t.Errorf("depth = %d", d)
	}
	// After everything serialised, the queue is empty.
	if d := q.QueueDepth(1e15); d != 0 {
		t.Errorf("depth after drain = %d", d)
	}
}
