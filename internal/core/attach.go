package core

import (
	"errors"
	"fmt"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/vm"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
)

// Attachment errors.
var (
	ErrWrongHook      = errors.New("core: program was loaded for a different hook")
	ErrNoSRH          = errors.New("core: End.BPF requires an SRv6 packet with segments left")
	ErrBadReturn      = errors.New("core: program returned an unknown code")
	ErrNoPendingState = errors.New("core: BPF_REDIRECT without a prior bpf_lwt_seg6_action")
	ErrSRHIntegrity   = errors.New("core: SRH failed revalidation after program writes")
)

// EndBPF is a loaded End.BPF attachment: bind it to a SID with a
// RouteSeg6Local whose Behaviour is seg6.ActionEndBPF and BPF set to
// this value. Instances are single-threaded, like one softirq context
// per simulated node.
type EndBPF struct {
	inst *bpf.Instance
	name string
	ctx  [CtxSize]byte
}

// AttachEndBPF instantiates prog (loaded against Seg6LocalHook) as a
// seg6local End.BPF action.
func AttachEndBPF(prog *bpf.Program) (*EndBPF, error) {
	if prog.Hook().Name != "lwt_seg6local" {
		return nil, fmt.Errorf("%w: %q is for hook %q", ErrWrongHook, prog.Name(), prog.Hook().Name)
	}
	inst, err := prog.NewInstance()
	if err != nil {
		return nil, err
	}
	return &EndBPF{inst: inst, name: prog.Name()}, nil
}

// Behaviour builds the seg6local behaviour entry for this attachment.
func (e *EndBPF) Behaviour() *seg6.Behaviour {
	return &seg6.Behaviour{Action: seg6.ActionEndBPF, BPF: e}
}

// refresh re-installs the packet region and fixes the ctx len and
// data_end after helpers replaced the packet.
func (e *EndBPF) refresh(env *execEnv) {
	installPacket(e.inst, e.ctx[:], env.pkt)
}

func installPacket(inst *bpf.Instance, ctx []byte, pkt []byte) {
	inst.Memory().SetSegment(vm.RegionPacket, &vm.Segment{Data: pkt, Writable: false})
	// Keep ctx len/data_end coherent with the new packet.
	fillCtxLen(ctx, len(pkt))
}

func fillCtxLen(ctx []byte, pktLen int) {
	ctx[CtxOffLen] = byte(pktLen)
	ctx[CtxOffLen+1] = byte(pktLen >> 8)
	ctx[CtxOffLen+2] = byte(pktLen >> 16)
	ctx[CtxOffLen+3] = byte(pktLen >> 24)
	end := vm.Pointer(vm.RegionPacket, uint64(pktLen))
	for i := 0; i < 8; i++ {
		ctx[CtxOffDataEnd+i] = byte(end >> (8 * i))
	}
}

// RunSeg6Local implements netsim.Seg6LocalProgram: the End.BPF
// datapath of §3.
func (e *EndBPF) RunSeg6Local(n *netsim.Node, raw []byte, meta *netsim.PacketMeta) (seg6.Result, int64, error) {
	// End.BPF behaves as an endpoint: it only accepts SRv6 packets
	// with a current segment, and advances the SRH before the program
	// runs (§3).
	p, err := packet.Parse(raw)
	if err != nil {
		return seg6.Result{Verdict: seg6.VerdictDrop}, 0, err
	}
	if p.SRH == nil || p.SRH.SegmentsLeft == 0 {
		return seg6.Result{Verdict: seg6.VerdictDrop}, 0, ErrNoSRH
	}
	if err := seg6.Advance(raw); err != nil {
		return seg6.Result{Verdict: seg6.VerdictDrop}, 0, err
	}

	env := &execEnv{
		node:         n,
		meta:         meta,
		pkt:          raw,
		srhOff:       p.SRHOff,
		printkPrefix: e.name,
	}
	env.refreshRegions = func(ev *execEnv) { e.refresh(ev) }

	machine := e.inst.Machine()
	machine.HelperContext = env
	fillCtx(e.ctx[:], len(raw), p.IPv6.FlowLabel)
	e.inst.Memory().SetSegment(vm.RegionCtx, &vm.Segment{Data: e.ctx[:], Writable: false})
	installPacket(e.inst, e.ctx[:], raw)

	startInsns, startHelpers := machine.Executed, machine.HelperCalls
	ret, runErr := e.inst.Run(vm.Pointer(vm.RegionCtx, 0))
	cost := n.Cost.BPFCost(machine.Executed-startInsns, machine.HelperCalls-startHelpers, e.inst.JIT())

	if runErr != nil {
		// A faulting program drops the packet, like a kernel-side
		// bpf program error path.
		return seg6.Result{Verdict: seg6.VerdictDrop}, cost, runErr
	}

	// §3.1: if the SRH was altered, a quick verification ensures it
	// is still valid; otherwise the packet is dropped.
	if env.srhModified {
		if err := e.validateSRH(env); err != nil {
			return seg6.Result{Verdict: seg6.VerdictDrop}, cost, err
		}
	}

	switch ret {
	case BPFOK:
		return seg6.Result{Verdict: seg6.VerdictForward, Pkt: env.pkt}, cost, nil
	case BPFDrop:
		return seg6.Result{Verdict: seg6.VerdictDrop}, cost, nil
	case BPFRedirect:
		if env.pending == nil {
			return seg6.Result{Verdict: seg6.VerdictDrop}, cost, ErrNoPendingState
		}
		res := *env.pending
		res.Pkt = env.pkt
		return res, cost, nil
	default:
		return seg6.Result{Verdict: seg6.VerdictDrop}, cost, fmt.Errorf("%w: %d", ErrBadReturn, ret)
	}
}

func (e *EndBPF) validateSRH(env *execEnv) error {
	start, end, err := env.srhBounds()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSRHIntegrity, err)
	}
	if err := packet.ValidateSRHBytes(env.pkt[start:end]); err != nil {
		return fmt.Errorf("%w: %v", ErrSRHIntegrity, err)
	}
	return nil
}

// LWT is a loaded transit attachment (BPF LWT out hook): bind it to a
// route with Kind RouteLWTBPF.
type LWT struct {
	inst *bpf.Instance
	name string
	ctx  [CtxSize]byte
}

// AttachLWT instantiates prog (loaded against LWTOutHook) as a
// transit program.
func AttachLWT(prog *bpf.Program) (*LWT, error) {
	if prog.Hook().Name != "lwt_out" {
		return nil, fmt.Errorf("%w: %q is for hook %q", ErrWrongHook, prog.Name(), prog.Hook().Name)
	}
	inst, err := prog.NewInstance()
	if err != nil {
		return nil, err
	}
	return &LWT{inst: inst, name: prog.Name()}, nil
}

// RunLWTOut implements netsim.LWTProgram.
func (l *LWT) RunLWTOut(n *netsim.Node, raw []byte, meta *netsim.PacketMeta) ([]byte, netsim.LWTVerdict, int64, error) {
	env := &execEnv{
		node:         n,
		meta:         meta,
		pkt:          raw,
		srhOff:       -1,
		printkPrefix: l.name,
	}
	if p, err := packet.Parse(raw); err == nil && p.SRH != nil {
		env.srhOff = p.SRHOff
	}
	env.refreshRegions = func(ev *execEnv) {
		installPacket(l.inst, l.ctx[:], ev.pkt)
	}

	machine := l.inst.Machine()
	machine.HelperContext = env
	var flowHash uint32
	if h, err := packet.DecodeIPv6(raw); err == nil {
		flowHash = h.FlowLabel
	}
	fillCtx(l.ctx[:], len(raw), flowHash)
	l.inst.Memory().SetSegment(vm.RegionCtx, &vm.Segment{Data: l.ctx[:], Writable: false})
	installPacket(l.inst, l.ctx[:], raw)

	startInsns, startHelpers := machine.Executed, machine.HelperCalls
	ret, runErr := l.inst.Run(vm.Pointer(vm.RegionCtx, 0))
	cost := n.Cost.BPFCost(machine.Executed-startInsns, machine.HelperCalls-startHelpers, l.inst.JIT())

	if runErr != nil {
		return nil, netsim.LWTDrop, cost, runErr
	}
	switch ret {
	case BPFOK:
		return env.pkt, netsim.LWTOK, cost, nil
	case BPFDrop:
		return nil, netsim.LWTDrop, cost, nil
	default:
		return nil, netsim.LWTDrop, cost, fmt.Errorf("%w: %d", ErrBadReturn, ret)
	}
}
