package netsim

// White-box tests of the Time-Warp machinery: checkpoint/restore
// round-trips, anti-message annihilation, GVT bounds and forced
// straggler recovery. The black-box acceptance surface (bit-identical
// equivalence against sequential execution on full topologies) lives
// in equivalence_test.go and fuzz_equiv_test.go.

import (
	"fmt"
	"net/netip"
	"reflect"
	"strings"
	"testing"

	"srv6bpf/internal/netem"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
)

// optimisticPair builds A --- B with the link config, a default route
// each way, and a 2-shard optimistic split.
func optimisticPair(t *testing.T, cfg netem.Config) (*Sim, *Node, *Node, *Iface) {
	t.Helper()
	s := New(1)
	a, b, aIf := twoHosts(s, cfg)
	if err := s.SetShards(2, EngineOptimistic); err != nil {
		t.Fatal(err)
	}
	return s, a, b, aIf
}

// pingPong wires a request/reply exchange recorded in rollback-aware
// counters: every packet B receives is answered immediately, so
// cross-shard traffic flows both ways inside every window.
func pingPong(t *testing.T, a, b *Node, rounds int, gap int64) {
	t.Helper()
	b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) {
		reply, err := packet.BuildPacket(bAddr, aAddr, packet.WithUDP(7, 8), packet.WithPayload([]byte("pong")))
		if err != nil {
			panic(err)
		}
		n.Output(reply)
	})
	a.HandleUDP(8, func(n *Node, p *packet.Packet, meta *PacketMeta) {})
	for i := 0; i < rounds; i++ {
		at := int64(i) * gap
		a.Schedule(at, func() { a.Output(udpTo(t, bAddr, 7, "ping")) })
	}
}

// keepBusy gives a node dense local work (a self-rescheduling timer
// chain), so its shard's execution frontier races deep into every
// speculation window — the adversarial condition that turns
// cross-shard arrivals into stragglers.
func keepBusy(n *Node, period, until int64) {
	busy := n.CounterHandle("busy_ticks")
	var tick func()
	tick = func() {
		busy.Inc()
		if n.Now() < until {
			n.After(period, tick)
		}
	}
	n.Schedule(0, tick)
}

// TestCheckpointRestoreRoundTrip locks the snapshot surface: node,
// qdisc, FIB cursor, counter and RNG state must restore exactly, and
// the snapshot must survive further mutation untouched.
func TestCheckpointRestoreRoundTrip(t *testing.T) {
	s := New(1)
	a, b, aIf := twoHosts(s, netem.Config{RateBps: 1e8, DelayNs: Millisecond, JitterNs: 50 * Microsecond, Loss: 0.05})
	b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) {})
	// Exercise every snapshotted subsystem: traffic (counters, qdisc
	// serialiser state, RNG draws for loss/jitter), a failure epoch,
	// and a round-robin route cursor.
	a.AddRoute(&Route{Prefix: pfx("2001:db8:b::/48"), Kind: RouteForward, PerPacketRR: true,
		Nexthops: []Nexthop{{Iface: aIf}, {Iface: aIf}}})
	for i := 0; i < 20; i++ {
		a.Output(udpTo(t, bAddr, 7, "x"))
	}
	s.RunUntil(2 * Millisecond)
	aIf.Fail()
	aIf.Restore()

	snapA, snapB := a.snapshot(), b.snapshot()

	// Mutate everything.
	for i := 0; i < 30; i++ {
		a.Output(udpTo(t, bAddr, 7, "y"))
	}
	s.RunUntil(5 * Millisecond)
	aIf.Fail()
	a.Count("scratch_counter")
	a.rng.Float64()

	a.restore(snapA)
	b.restore(snapB)
	againA, againB := a.snapshot(), b.snapshot()
	if !reflect.DeepEqual(snapA, againA) {
		t.Errorf("node A state did not round-trip:\n  want %+v\n  got  %+v", snapA, againA)
	}
	if !reflect.DeepEqual(snapB, againB) {
		t.Errorf("node B state did not round-trip:\n  want %+v\n  got  %+v", snapB, againB)
	}
	if _, ok := a.counters["scratch_counter"]; ok {
		t.Error("counter interned during speculation survived the restore")
	}
}

// TestRNGSnapshotRestore: restoring the single-word splitmix state
// replays the exact draw sequence.
func TestRNGSnapshotRestore(t *testing.T) {
	s := New(42)
	n := s.AddNode("rng", HostCostModel())
	n.rng.Float64()
	n.rng.NormFloat64()
	state := n.rngSrc.state
	want := []float64{n.rng.Float64(), n.rng.NormFloat64(), float64(n.rng.Uint32())}
	n.rngSrc.state = state
	got := []float64{n.rng.Float64(), n.rng.NormFloat64(), float64(n.rng.Uint32())}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("draws after restore differ: %v vs %v", want, got)
	}
}

// TestJournalRollback: journal appends rewind with RestoreState and
// the registration snapshot unwinds appends made before registration
// was rolled past.
func TestJournalRollback(t *testing.T) {
	s := New(1)
	n := s.AddNode("j", HostCostModel())
	j := NewJournal(n)
	j.Add("committed")
	mark := j.SnapshotState()
	j.Add("speculative-1")
	j.Addf("speculative-%d", 2)
	j.RestoreState(mark)
	if got := j.Lines(); len(got) != 1 || got[0] != "committed" {
		t.Fatalf("journal after rollback = %v", got)
	}
}

// TestHeapRemoveKey: annihilation's heap surgery preserves the heap
// property and removes exactly the named event.
func TestHeapRemoveKey(t *testing.T) {
	var h eventHeap
	for i := 0; i < 50; i++ {
		h.push(event{at: int64((i * 37) % 60), schedAt: int64(i), src: 1, k: uint64(i), fn: func() {}})
	}
	if !h.removeKey(msgKey{at: int64((25 * 37) % 60), schedAt: 25, src: 1, k: 25}) {
		t.Fatal("key not found")
	}
	if h.removeKey(msgKey{at: 0, schedAt: 999, src: 9, k: 9}) {
		t.Fatal("removed a key that was never pushed")
	}
	var prev event
	for i := 0; len(h) > 0; i++ {
		e := h.pop()
		if i > 0 && e.before(&prev) {
			t.Fatalf("heap order violated after removeKey at pop %d", i)
		}
		if e.src == 1 && e.k == 25 {
			t.Fatal("removed event still popped")
		}
		prev = e
	}
}

// TestForcedStragglerRecovery drives a zero-delay cross-shard
// request/reply workload — every window ends with messages below the
// peer's frontier, an adversarial schedule for speculation — and
// requires (a) rollbacks actually happened and (b) the committed
// state is bit-identical to the sequential run.
func TestForcedStragglerRecovery(t *testing.T) {
	run := func(shards int) (string, EngineStats) {
		s := New(1)
		a, b, _ := twoHosts(s, netem.Config{RateBps: 1e10}) // zero propagation delay
		if shards > 1 {
			if err := s.SetShards(shards, EngineOptimistic); err != nil {
				t.Fatal(err)
			}
		}
		pingPong(t, a, b, 50, 3*Microsecond)
		// Dense local work on B: its frontier races ahead of A's
		// zero-delay arrivals every window.
		keepBusy(b, Microsecond, 200*Microsecond)
		s.Run()
		fp := fmt.Sprintf("aC=%v bC=%v", a.Counters(), b.Counters())
		return fp, s.EngineStats()
	}
	seq, _ := run(1)
	par, st := run(2)
	if par != seq {
		t.Fatalf("optimistic zero-delay run diverged:\n  seq: %s\n  par: %s", seq, par)
	}
	if st.Rollbacks == 0 {
		t.Error("zero-delay adversarial schedule produced no rollbacks — straggler path untested")
	}
	if st.Checkpoints == 0 {
		t.Error("no checkpoints taken")
	}
	t.Logf("events=%d rollbacks=%d antis=%d ckpts=%d", st.Events, st.Rollbacks, st.AntiMessages, st.Checkpoints)
}

// TestAntiMessageAnnihilation: when re-execution disowns a delivered
// message, the engine must emit anti-messages and still converge to
// the sequential state. The restrictive serialisation rate makes
// B's reply departure times depend on queueing, so a straggler ping
// inserted by rollback shifts the re-emitted replies — the stale
// originals must annihilate rather than survive as duplicates.
func TestAntiMessageAnnihilation(t *testing.T) {
	s, a, b, _ := optimisticPair(t, netem.Config{RateBps: 2e8}) // zero delay, ~2.6µs per packet on the wire
	pingPong(t, a, b, 200, 2*Microsecond)
	keepBusy(a, Microsecond, 500*Microsecond)
	keepBusy(b, Microsecond, 500*Microsecond)
	s.Run()
	st := s.EngineStats()
	if st.Rollbacks == 0 {
		t.Fatalf("adversarial workload exercised no speculation repair: %+v", st)
	}
	if st.AntiMessages == 0 {
		t.Fatalf("no delivery was ever disowned — annihilation path untested: %+v", st)
	}
	if got := b.Counters()["udp_delivered"]; got != 200 {
		t.Fatalf("pings delivered = %d, want 200", got)
	}
	if got := a.Counters()["udp_delivered"]; got != 200 {
		t.Fatalf("pongs delivered = %d, want 200", got)
	}
	// Every tentative message must have been reconciled.
	for _, sh := range s.shards {
		if len(sh.tentative) != 0 {
			t.Fatalf("shard %d left %d unacked tentative messages", sh.id, len(sh.tentative))
		}
	}
	t.Logf("events=%d rollbacks=%d antis=%d", st.Events, st.Rollbacks, st.AntiMessages)
}

// TestGVTBound: after every barrier, GVT must not exceed the minimum
// pending event time nor the timestamp of any unacknowledged
// (tentative) cross-shard message, and every shard's oldest retained
// checkpoint must sit at or below it (rollback reachability). GVT
// may transiently regress when a rollback replays committed-identical
// history — the replayed emissions are suppressed, so committed state
// is unaffected; monotone commitment is asserted by the equivalence
// suites, not here.
func TestGVTBound(t *testing.T) {
	s, a, b, _ := optimisticPair(t, netem.Config{RateBps: 1e10, DelayNs: 10 * Microsecond})
	pingPong(t, a, b, 100, 5*Microsecond)
	keepBusy(a, 2*Microsecond, 400*Microsecond)
	keepBusy(b, 2*Microsecond, 400*Microsecond)
	barriers := 0
	s.onBarrier = func(gvt int64) {
		barriers++
		minNext := s.minNextAt()
		if gvt > minNext {
			t.Fatalf("GVT %d exceeds min pending event %d", gvt, minNext)
		}
		for _, sh := range s.shards {
			for _, tm := range sh.tentative {
				if gvt > tm.m.at {
					t.Fatalf("GVT %d exceeds unacked cross-shard message at %d", gvt, tm.m.at)
				}
				if gvt > tm.m.schedAt {
					t.Fatalf("GVT %d exceeds unacked send's emission time %d", gvt, tm.m.schedAt)
				}
			}
		}
	}
	s.Run()
	if barriers == 0 {
		t.Fatal("no barriers observed")
	}
	// After every barrier's trim, rollback reachability must hold:
	// verified continuously by the engine itself (rollbackShard panics
	// below the oldest retained checkpoint), and the run must end
	// fully reconciled.
	for _, sh := range s.shards {
		if len(sh.ckpts) != 0 || len(sh.tentative) != 0 {
			t.Fatalf("shard %d retained history after drain: %d ckpts, %d tentative",
				sh.id, len(sh.ckpts), len(sh.tentative))
		}
	}
}

// TestOptimisticZeroDelayCrossShard: the configuration the
// conservative engine rejects outright must run — and match the
// sequential schedule — under the optimistic engine.
func TestOptimisticZeroDelayCrossShard(t *testing.T) {
	run := func(optimistic bool) (int, uint64) {
		s := New(1)
		a, b, aIf := twoHosts(s, netem.Config{RateBps: 1e10})
		got := 0
		b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) { got++ })
		if optimistic {
			if err := s.SetShards(2); err == nil {
				t.Fatal("conservative engine accepted a zero-delay cross-shard link")
			}
			if err := s.SetShards(2, EngineOptimistic); err != nil {
				t.Fatalf("optimistic engine rejected a zero-delay cross-shard link: %v", err)
			}
		}
		for i := 0; i < 40; i++ {
			at := int64(i) * 50 * Microsecond
			a.Schedule(at, func() { a.Output(udpTo(t, bAddr, 7, "zd")) })
		}
		s.Run()
		return got, aIf.TxPackets
	}
	seqGot, seqTx := run(false)
	parGot, parTx := run(true)
	if seqGot != 40 || parGot != seqGot || parTx != seqTx {
		t.Fatalf("zero-delay optimistic run diverged: got=%d tx=%d, want %d/%d", parGot, parTx, seqGot, seqTx)
	}
}

// TestOptimisticJitteredCrossShard: jittered cross-shard links —
// also rejected conservatively — run bit-identically under the
// optimistic engine because jitter draws come from the snapshotted
// per-node streams.
func TestOptimisticJitteredCrossShard(t *testing.T) {
	run := func(shards int) string {
		s := New(5)
		a, b, _ := twoHosts(s, netem.Config{RateBps: 1e9, DelayNs: 20 * Microsecond, JitterNs: 15 * Microsecond})
		pingPong(t, a, b, 60, 4*Microsecond)
		keepBusy(a, 2*Microsecond, 400*Microsecond)
		keepBusy(b, 2*Microsecond, 400*Microsecond)
		if shards > 1 {
			if err := s.SetShards(shards); err == nil {
				t.Fatal("conservative engine accepted a jittered cross-shard link")
			}
			if err := s.SetShards(shards, EngineOptimistic); err != nil {
				t.Fatal(err)
			}
		}
		s.Run()
		return fmt.Sprintf("aC=%v bC=%v", a.Counters(), b.Counters())
	}
	seq := run(1)
	if par := run(2); par != seq {
		t.Fatalf("jittered optimistic run diverged:\n  seq: %s\n  par: %s", seq, par)
	}
}

// TestRuntimeDelayBelowLookaheadRunsOptimistic ports the conservative
// engine's TestRuntimeDelayBelowLookaheadPanics expectations: the
// same runtime delay cut that forces the conservative engine to
// panic is just another straggler source for the optimistic engine —
// the run completes and matches the sequential schedule.
func TestRuntimeDelayBelowLookaheadRunsOptimistic(t *testing.T) {
	run := func(shards int) (int, EngineStats) {
		s := New(1)
		a, b, aIf := twoHosts(s, netem.Config{RateBps: 1e10, DelayNs: Millisecond})
		got := 0
		b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) { got++ })
		if shards > 1 {
			if err := s.SetShards(shards, EngineOptimistic); err != nil {
				t.Fatal(err)
			}
		}
		aIf.Qdisc().SetDelay(Microsecond) // undercut the validated lookahead
		for i := 0; i < 20; i++ {
			at := int64(i) * 100 * Microsecond
			a.Schedule(at, func() { a.Output(udpTo(t, bAddr, 7, "x")) })
		}
		s.Run()
		return got, s.EngineStats()
	}
	seqGot, _ := run(1)
	parGot, st := run(2)
	if parGot != seqGot {
		t.Fatalf("optimistic run after runtime delay cut diverged: %d vs %d", parGot, seqGot)
	}
	if seqGot != 20 {
		t.Fatalf("scenario delivered %d of 20", seqGot)
	}
	t.Logf("rollbacks=%d antis=%d", st.Rollbacks, st.AntiMessages)
}

// TestOptimisticMultiRunBoundary: a run boundary commits history.
// Work scheduled at the committed instant — whose zero-delay
// cross-shard deliveries land at that same timestamp, below the
// previous run's execution frontier — must execute in the next run
// exactly as a sequential driver loop would, not panic as an
// unreachable straggler.
func TestOptimisticMultiRunBoundary(t *testing.T) {
	run := func(shards int) (uint64, uint64) {
		s := New(1)
		a, b, _ := twoHosts(s, netem.Config{RateBps: 1e10}) // zero delay
		b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) {})
		if shards > 1 {
			if err := s.SetShards(shards, EngineOptimistic); err != nil {
				t.Fatal(err)
			}
		}
		// Run 1: B executes local work up to t=1ms.
		keepBusy(b, 100*Microsecond, Millisecond)
		s.RunUntil(Millisecond)
		// Run 2: A emits at the committed instant; the delivery lands
		// at B's frontier over the zero-delay link.
		a.Schedule(s.Now(), func() { a.Output(udpTo(t, bAddr, 7, "boundary")) })
		s.Run()
		// Run 3: and again, after a draining Run.
		a.Schedule(s.Now(), func() { a.Output(udpTo(t, bAddr, 7, "again")) })
		s.Run()
		return b.Counters()["udp_delivered"], b.Counters()["busy_ticks"]
	}
	seqGot, seqTicks := run(1)
	parGot, parTicks := run(2)
	if seqGot != 2 {
		t.Fatalf("sequential boundary runs delivered %d, want 2", seqGot)
	}
	if parGot != seqGot || parTicks != seqTicks {
		t.Fatalf("optimistic multi-run diverged: delivered=%d ticks=%d, want %d/%d",
			parGot, parTicks, seqGot, seqTicks)
	}
}

// TestOptimisticStateHookRegistrationRollback: a ShardState hook
// registered inside a speculated event that later rolls back must be
// unhooked and its component rewound to the pre-registration state.
type probeState struct{ val int }

func (p *probeState) SnapshotState() any { return p.val }
func (p *probeState) RestoreState(v any) { p.val = v.(int) }

func TestOptimisticStateHookRegistrationRollback(t *testing.T) {
	s := New(1)
	n := s.AddNode("h", HostCostModel())
	p := &probeState{val: 1}
	snap := n.snapshot() // before registration
	n.RegisterState(p)
	p.val = 99
	n.restore(snap)
	if len(n.stateHooks) != 0 {
		t.Fatalf("hook registered during speculation survived rollback: %d hooks", len(n.stateHooks))
	}
	if p.val != 1 {
		t.Fatalf("component state after registration rollback = %d, want 1", p.val)
	}
	// Re-registration after the rollback starts from the rewound state.
	n.RegisterState(p)
	p.val = 7
	snap2 := n.snapshot()
	p.val = 8
	n.restore(snap2)
	if p.val != 7 {
		t.Fatalf("registered hook state = %d, want 7", p.val)
	}
}

// TestOptimisticSameShardSRHMutation is the regression lock for the
// per-hop packet-copy elision. The chain R -> E lives on one shard:
// R forwards SRv6 traffic to E's End SID, so R's pending commit
// closure (captured by a round-start checkpoint) references the same
// buffer E later advances in place at drain time — a read-modify-
// write, unlike the idempotent hop-limit rewrite plain forwarding
// does. If the copy-elision stamps the delivery with the era at
// transmit time instead of the era the buffer became private,
// rollback replays the captured commit with an already-advanced SRH
// and the schedule diverges from sequential.
func TestOptimisticSameShardSRHMutation(t *testing.T) {
	sid := netip.MustParseAddr("fc00:e::1")
	eAddr := netip.MustParseAddr("2001:db8:e::1")
	run := func(shards int) string {
		s := New(9)
		// Creation order pins the partition: {E, R} | {A, B}.
		e := s.AddNode("E", ServerCostModel())
		r := s.AddNode("R", ServerCostModel())
		a := s.AddNode("A", HostCostModel())
		b := s.AddNode("B", HostCostModel())
		a.AddAddress(aAddr)
		e.AddAddress(eAddr)
		b.AddAddress(bAddr)
		fast := netem.Config{RateBps: 1e10} // zero propagation delay everywhere
		reIf, erIf := ConnectSymmetric(r, e, fast)
		aIf, raIf := ConnectSymmetric(a, r, fast)
		ebIf, bIf := ConnectSymmetric(e, b, fast)
		a.AddRoute(&Route{Prefix: pfx("::/0"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: aIf}}})
		b.AddRoute(&Route{Prefix: pfx("::/0"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: bIf}}})
		r.AddRoute(&Route{Prefix: netip.PrefixFrom(sid, 128), Kind: RouteForward, Nexthops: []Nexthop{{Iface: reIf}}})
		r.AddRoute(&Route{Prefix: pfx("2001:db8:a::/48"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: raIf}}})
		e.AddRoute(&Route{Prefix: netip.PrefixFrom(sid, 128), Kind: RouteSeg6Local,
			Behaviour: &seg6.Behaviour{Action: seg6.ActionEnd}})
		e.AddRoute(&Route{Prefix: pfx("2001:db8:b::/48"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: ebIf}}})
		e.AddRoute(&Route{Prefix: pfx("2001:db8:a::/48"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: erIf}}})
		if shards > 1 {
			if err := s.SetShards(shards, EngineOptimistic); err != nil {
				t.Fatal(err)
			}
			// Pin the horizon near the per-packet CPU cost so commit
			// closures regularly straddle round boundaries — the
			// window in which a checkpoint captures a pending commit
			// and the copy-elision decision matters. (Verified to
			// fail against a transmit-time era stamp.)
			s.SetHorizon(3 * Microsecond)
			if e.shard != r.shard || a.shard != b.shard || e.shard == a.shard {
				t.Fatal("partition did not split {E,R} | {A,B}")
			}
		}
		// B journals every delivery with its hop limit: a replayed
		// commit transmitting an already-advanced packet still reaches
		// B (the rewritten destination routes as plain forwarding) but
		// burns one extra hop-limit decrement — the only trace the
		// corruption leaves. B also echoes every delivery straight
		// back over zero-delay links: stragglers into both shards.
		j := NewJournal(b)
		b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) {
			j.Addf("%d:hl%d", meta.RxTimestamp, p.IPv6.HopLimit)
			reply, err := packet.BuildPacket(bAddr, aAddr, packet.WithUDP(7, 8), packet.WithPayload([]byte("pong")))
			if err != nil {
				panic(err)
			}
			n.Output(reply)
		})
		a.HandleUDP(8, func(n *Node, p *packet.Packet, meta *PacketMeta) {})
		a.HandleUDP(9, func(n *Node, p *packet.Packet, meta *PacketMeta) {})
		// R also emits its own probe traffic (an FRR-style detector
		// would): each Output interleaves between other packets'
		// drains and deferred commits, so the transmit-time era stamp
		// must be the forwarded packet's own, not whatever the last
		// Output left behind.
		var probe func()
		probe = func() {
			raw, err := packet.BuildPacket(netip.MustParseAddr("2001:db8:e::2"), aAddr,
				packet.WithUDP(500, 9), packet.WithPayload([]byte("p")))
			if err != nil {
				panic(err)
			}
			r.Output(raw)
			if r.Now() < 450*Microsecond {
				r.After(700, probe)
			}
		}
		r.Schedule(0, probe)
		for i := 0; i < 400; i++ {
			at := int64(i) * Microsecond
			a.Schedule(at, func() {
				srh := packet.NewSRH([]netip.Addr{sid, bAddr})
				raw, err := packet.BuildPacket(aAddr, sid, packet.WithSRH(srh),
					packet.WithUDP(1000, 7), packet.WithPayload([]byte("x")))
				if err != nil {
					panic(err)
				}
				a.Output(raw)
			})
		}
		keepBusy(e, Microsecond, 500*Microsecond)
		keepBusy(r, Microsecond, 500*Microsecond)
		s.Run()
		return fmt.Sprintf("aC=%v rC=%v eC=%v bC=%v trace=%s", a.Counters(), r.Counters(), e.Counters(), b.Counters(), strings.Join(j.Lines(), ","))
	}
	seq := run(1)
	if !strings.Contains(seq, "udp_delivered:400") {
		t.Fatalf("sequential run did not deliver all 400 pings: %s", seq)
	}
	par := run(2)
	if par != seq {
		t.Fatalf("same-shard SRH mutation diverged under speculation:\n  seq: %s\n  par: %s", seq, par)
	}
}
