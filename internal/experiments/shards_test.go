package experiments

import (
	"testing"

	"srv6bpf/internal/netsim"
)

// TestWaxmanMinCutReducesMessages is the acceptance gate for the
// topology-aware partitioner: on the seeded 256-node Waxman scenario
// at 4 shards, min-cut must cut the cross-shard message bill by at
// least 30% versus the contiguous block partition — while producing
// bit-identical per-node counters (same schedule, different placement).
func TestWaxmanMinCutReducesMessages(t *testing.T) {
	spec := ShardScalingSpec{
		Engine:     netsim.EngineConservative,
		Topology:   "waxman",
		DurationNs: 2 * netsim.Millisecond,
	}
	spec.Partition = "contiguous"
	cont, fpC, err := shardScalingRun(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	spec.Partition = "mincut"
	minc, fpM, err := shardScalingRun(spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("contiguous: cut=%d msgs=%d lookahead=%dns", cont.CutLinks, cont.Messages, cont.LookaheadNs)
	t.Logf("mincut:     cut=%d msgs=%d lookahead=%dns", minc.CutLinks, minc.Messages, minc.LookaheadNs)
	if fpC != fpM {
		t.Fatalf("partitions disagree on per-node counters (determinism violation)")
	}
	if cont.Messages == 0 {
		t.Fatalf("contiguous run saw no cross-shard messages: %+v", cont)
	}
	if minc.CutLinks >= cont.CutLinks {
		t.Errorf("min-cut did not reduce the static cut: %d vs %d", minc.CutLinks, cont.CutLinks)
	}
	// The ISSUE acceptance bound: >= 30% fewer cross-shard messages.
	if 10*minc.Messages > 7*cont.Messages {
		t.Errorf("min-cut reduced Messages only %d -> %d (< 30%%)", cont.Messages, minc.Messages)
	}
}

// TestWaxmanShardScalingOptimistic drives the optimistic engine over
// the Waxman scenario with the min-cut partition: the sweep's built-in
// fingerprint check verifies Time-Warp under a non-contiguous
// placement still replays the exact sequential schedule.
func TestWaxmanShardScalingOptimistic(t *testing.T) {
	rows, err := ShardScalingRun(ShardScalingSpec{
		Engine:     netsim.EngineOptimistic,
		Shards:     []int{1, 2},
		Topology:   "waxman",
		Partition:  "mincut",
		DurationNs: netsim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("engine=%s shards=%d partition=%s cut=%d msgs=%d delivered=%d rollbacks=%d",
			r.Engine, r.Shards, r.Partition, r.CutLinks, r.Messages, r.Delivered, r.Rollbacks)
		if r.Delivered == 0 {
			t.Errorf("empty measurement: %+v", r)
		}
	}
	if rows[0].Delivered != rows[1].Delivered {
		t.Errorf("shard counts disagree on deliveries: %+v", rows)
	}
}
