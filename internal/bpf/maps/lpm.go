package maps

import "encoding/binary"

// LPM trie implementation. Keys have the kernel's bpf_lpm_trie_key
// layout: a 4-byte little-endian prefix length (in bits) followed by
// the key data. Lookup finds the entry with the longest prefix that
// matches the query key (whose prefix length field is ignored, as in
// the kernel where lookups pass the full data length).

// trieNode is a binary trie over key bits.
type trieNode struct {
	children [2]*trieNode
	// slot >= 0 when a prefix terminates here.
	slot    int
	present bool
}

// lpmPrefixLen extracts the prefix length field.
func lpmPrefixLen(key []byte) uint32 {
	return binary.LittleEndian.Uint32(key[:4])
}

// lpmData extracts the key data following the prefix length.
func lpmData(key []byte) []byte { return key[4:] }

// bitAt returns bit i of data, most significant bit of byte 0 first
// (network order, as needed for IP prefixes).
func bitAt(data []byte, i uint32) int {
	return int(data[i/8]>>(7-i%8)) & 1
}

func (m *Map) lpmCheckKey(key []byte) error {
	if uint32(len(key)) != m.spec.KeySize {
		return ErrKeySize
	}
	maxBits := (m.spec.KeySize - 4) * 8
	if lpmPrefixLen(key) > maxBits {
		return ErrBadPrefixLen
	}
	return nil
}

func (m *Map) lpmUpdateLocked(key, value []byte, flags uint64) error {
	if err := m.lpmCheckKey(key); err != nil {
		return err
	}
	plen := lpmPrefixLen(key)
	data := lpmData(key)

	// Canonical key: zero bits beyond the prefix so that equivalent
	// prefixes collide in the index.
	canon := canonicalLPMKey(plen, data, int(m.spec.KeySize))

	slot, exists := m.index[string(canon)]
	switch {
	case exists && flags == UpdateNoExist:
		return ErrKeyExist
	case !exists && flags == UpdateExist:
		return ErrKeyNotExist
	}
	if !exists {
		var err error
		slot, err = m.allocSlotLocked()
		if err != nil {
			return err
		}
		m.index[string(canon)] = slot
		m.keys[slot] = string(canon)
		// Insert into trie.
		n := m.trie
		for i := uint32(0); i < plen; i++ {
			b := bitAt(data, i)
			if n.children[b] == nil {
				n.children[b] = &trieNode{}
			}
			n = n.children[b]
		}
		n.slot = slot
		n.present = true
	}
	copy(m.slotBytes(slot), value)
	return nil
}

func (m *Map) lpmDeleteLocked(key []byte) error {
	if err := m.lpmCheckKey(key); err != nil {
		return err
	}
	plen := lpmPrefixLen(key)
	data := lpmData(key)
	canon := canonicalLPMKey(plen, data, int(m.spec.KeySize))
	slot, ok := m.index[string(canon)]
	if !ok {
		return ErrKeyNotExist
	}
	delete(m.index, string(canon))
	m.keys[slot] = ""
	m.free = append(m.free, slot)
	clearBytes(m.slotBytes(slot))

	// Unmark in the trie; prune empty branches.
	m.lpmPrune(m.trie, data, plen, 0)
	return nil
}

// lpmPrune clears the terminal flag for the prefix and removes nodes
// that no longer carry entries or children. Returns whether the node
// became empty.
func (m *Map) lpmPrune(n *trieNode, data []byte, plen, depth uint32) bool {
	if n == nil {
		return true
	}
	if depth == plen {
		n.present = false
	} else {
		b := bitAt(data, depth)
		if m.lpmPrune(n.children[b], data, plen, depth+1) {
			n.children[b] = nil
		}
	}
	return !n.present && n.children[0] == nil && n.children[1] == nil && depth > 0
}

// lpmLookupLocked finds the longest matching prefix for the query.
func (m *Map) lpmLookupLocked(key []byte) (int, bool) {
	if uint32(len(key)) != m.spec.KeySize {
		return 0, false
	}
	data := lpmData(key)
	maxBits := (m.spec.KeySize - 4) * 8

	best, found := 0, false
	n := m.trie
	for i := uint32(0); ; i++ {
		if n.present {
			best, found = n.slot, true
		}
		if i >= maxBits {
			break
		}
		next := n.children[bitAt(data, i)]
		if next == nil {
			break
		}
		n = next
	}
	return best, found
}

// canonicalLPMKey rebuilds the key with bits past the prefix zeroed.
func canonicalLPMKey(plen uint32, data []byte, keySize int) []byte {
	out := make([]byte, keySize)
	binary.LittleEndian.PutUint32(out[:4], plen)
	fullBytes := int(plen / 8)
	copy(out[4:4+fullBytes], data[:fullBytes])
	if rem := plen % 8; rem != 0 {
		mask := byte(0xff) << (8 - rem)
		out[4+fullBytes] = data[fullBytes] & mask
	}
	return out
}
