package netsim

import "math"

// horizon.go is the adaptive speculation-window controller for the
// optimistic (Time-Warp) engine.
//
// The horizon — how far past GVT shards speculate each round — trades
// barrier/checkpoint frequency against rollback depth. The right
// value depends on the workload: a topology whose cross-shard traffic
// always arrives one lookahead later wants the horizon pinned at the
// lookahead (no event ever arrives below a frontier, so speculation
// is free), while a sparse workload with rare cross-shard messages
// wants a wide horizon so hundreds of rounds collapse into one. No
// fixed value serves both, so the controller drives the horizon from
// the engine's own accounting: every barrier reports how many
// rollbacks and anti-messages the repair pass cost, and the
// controller widens the window while speculation is clean and
// contracts it on thrash.
//
// The loop is multiplicative-decrease with hysteresis on the
// increase: every shrink doubles the number of consecutive clean
// periods required before the next growth probe (capped), so an
// oscillation between a clean level and a thrashy one decays
// exponentially instead of repeating every other period. All inputs
// (rollback and anti-message counts per round) are deterministic
// functions of the schedule, so the horizon trajectory — and with it
// the whole run — remains bit-reproducible; and since correctness is
// horizon-independent, the controller can only affect performance,
// never results (locked by the fuzz arm that runs scenarios under
// both adaptive and randomly fixed horizons).
//
// An explicit Sim.SetHorizon(ns > 0) disables the controller and
// pins the window; SetHorizon(0) re-enables adaptation.

const (
	// hcPeriod is the number of barrier rounds folded into one
	// control decision: long enough to smooth single-round noise,
	// short enough to react within tens of rounds.
	hcPeriod = 4
	// hcMaxGrowDelay caps the growth hysteresis (in clean periods).
	hcMaxGrowDelay = 64
	// hcShrink is the denominator of the thrash threshold: shrink
	// when rollbacks >= rounds/hcShrink (i.e. >= 0.5 per round).
	hcShrink = 2
	// hcGrow is the denominator of the clean threshold: a period is
	// clean when rollbacks <= rounds/hcGrow (i.e. <= 0.125 per round).
	hcGrow = 8
	// hcAntiPerRound is the anti-message volume (per round) beyond
	// which a period counts as thrash even with few rollbacks: mass
	// cancellation means deep mis-speculation.
	hcAntiPerRound = 64
	// hcMaxCkptEvery caps the checkpoint stride: at most this many
	// rounds may pass between two checkpoints of one shard, bounding
	// how much re-execution a single straggler can force.
	hcMaxCkptEvery = 64
)

// horizonCtl adapts the optimistic speculation window from the
// observed rollback rate. It runs on the quiescent coordinator
// (between rounds), so it needs no synchronisation.
type horizonCtl struct {
	base     int64 // derived starting horizon
	min, max int64 // clamp bounds
	cur      int64 // current horizon

	// Accumulated since the last decision.
	rounds    uint64
	rollbacks uint64
	antis     uint64
	msgs      uint64

	// clean counts consecutive clean periods; growDelay is how many
	// are required before the next widening (doubled on every thrashy
	// period, capped — the hysteresis that damps oscillation).
	clean     uint64
	growDelay uint64

	// ckptEvery is the checkpoint stride in rounds. The horizon often
	// cannot grow past the lookahead without manufacturing stragglers
	// (cross-shard arrivals land inside the wider window), but the
	// checkpoint stride can: skipping a checkpoint changes no
	// schedule, it only deepens the rollback a straggler would cost.
	// So while speculation is clean the stride doubles (checkpoints
	// become nearly free) and any thrashy period resets it to 1.
	ckptEvery uint64

	// adjusts counts horizon changes actually applied.
	adjusts uint64
}

// newHorizonCtl builds a controller starting from the derived
// horizon, clamped to [base/8 (floor 1µs), base*64].
func newHorizonCtl(base int64) *horizonCtl {
	hc := &horizonCtl{base: base, cur: base, growDelay: 1, ckptEvery: 1}
	hc.min = base / 8
	if hc.min < Microsecond {
		hc.min = Microsecond
	}
	if base > math.MaxInt64/64 {
		hc.max = math.MaxInt64 / 2
	} else {
		hc.max = base * 64
	}
	return hc
}

// observe feeds one barrier's repair outcome (rollbacks,
// anti-messages and cross-shard messages exchanged in that round)
// into the controller and returns the horizon the next round should
// speculate with.
func (hc *horizonCtl) observe(rollbacks, antis, msgs uint64) int64 {
	hc.rounds++
	hc.rollbacks += rollbacks
	hc.antis += antis
	hc.msgs += msgs
	if hc.rounds < hcPeriod {
		return hc.cur
	}
	thrash := hc.rollbacks*hcShrink >= hc.rounds || hc.antis >= hcAntiPerRound*hc.rounds
	cleanPeriod := hc.rollbacks*hcGrow <= hc.rounds && hc.antis < hcAntiPerRound*hc.rounds
	// Widening pays off only when barriers are mostly idle: with dense
	// cross-shard traffic (≥ 1 message per round) every arrival past
	// the lookahead lands inside a wider window as a straggler, so a
	// clean dense regime means the horizon is already right — probing
	// up would only buy expensive rollbacks. The checkpoint stride has
	// no such limit: skipping checkpoints changes no schedule.
	sparse := hc.msgs < hc.rounds
	hc.rounds, hc.rollbacks, hc.antis, hc.msgs = 0, 0, 0, 0

	switch {
	case thrash:
		hc.clean = 0
		hc.ckptEvery = 1
		if hc.growDelay < hcMaxGrowDelay {
			hc.growDelay *= 2
		}
		if hc.cur > hc.min {
			hc.cur /= 2
			if hc.cur < hc.min {
				hc.cur = hc.min
			}
			hc.adjusts++
		}
	case cleanPeriod:
		hc.clean++
		if hc.ckptEvery < hcMaxCkptEvery {
			hc.ckptEvery *= 2
		}
		if sparse && hc.clean >= hc.growDelay && hc.cur < hc.max {
			hc.clean = 0
			hc.cur *= 2
			if hc.cur > hc.max || hc.cur < 0 {
				hc.cur = hc.max
			}
			hc.adjusts++
		}
	default:
		// Between the thresholds: neither confident enough to widen
		// nor hurting enough to shrink. Reset the clean streak (and
		// stop stretching the checkpoint stride) so a borderline
		// regime does not drift wider.
		hc.clean = 0
	}
	return hc.cur
}

// stride reports how many rounds may pass between checkpoints.
func (hc *horizonCtl) stride() uint64 { return hc.ckptEvery }

// Horizon reports the controller's current window (tests).
func (hc *horizonCtl) horizon() int64 { return hc.cur }
