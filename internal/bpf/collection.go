package bpf

import (
	"fmt"
	"sort"

	"srv6bpf/internal/bpf/maps"
)

// CollectionSpec bundles map and program definitions that belong
// together, mirroring an ELF object produced by clang in real eBPF
// workflows.
type CollectionSpec struct {
	Maps     map[string]maps.Spec
	Programs map[string]*ProgramSpec
	// Hooks assigns a hook to each program by name.
	Hooks map[string]*Hook
}

// Collection is the loaded form: created maps and loaded programs.
type Collection struct {
	Maps     map[string]*maps.Map
	Programs map[string]*Program
}

// NewCollection creates every map, then loads every program against
// its hook with all collection maps visible.
func NewCollection(spec *CollectionSpec, opts LoadOptions) (*Collection, error) {
	coll := &Collection{
		Maps:     make(map[string]*maps.Map, len(spec.Maps)),
		Programs: make(map[string]*Program, len(spec.Programs)),
	}

	// Deterministic creation order for reproducible failures.
	mapNames := make([]string, 0, len(spec.Maps))
	for name := range spec.Maps {
		mapNames = append(mapNames, name)
	}
	sort.Strings(mapNames)
	for _, name := range mapNames {
		ms := spec.Maps[name]
		if ms.Name == "" {
			ms.Name = name
		}
		m, err := maps.New(ms)
		if err != nil {
			return nil, fmt.Errorf("bpf: creating map %q: %w", name, err)
		}
		coll.Maps[name] = m
	}

	progNames := make([]string, 0, len(spec.Programs))
	for name := range spec.Programs {
		progNames = append(progNames, name)
	}
	sort.Strings(progNames)
	for _, name := range progNames {
		ps := spec.Programs[name]
		if ps.Name == "" {
			ps.Name = name
		}
		hook := spec.Hooks[name]
		if hook == nil {
			return nil, fmt.Errorf("bpf: program %q: %w", name, ErrNoHook)
		}
		p, err := LoadProgram(ps, hook, coll.Maps, opts)
		if err != nil {
			return nil, err
		}
		coll.Programs[name] = p
	}
	return coll, nil
}
