// Package netsim is the discrete-event network simulator that stands
// in for the paper's physical lab (three Xeon servers with 10 Gbps
// NICs, a Turris Omnia CPE, and tc-netem-shaped links; Figure 1 of
// the paper).
//
// Everything runs in virtual time: links serialise and delay packets
// through netem qdiscs, and each node charges per-packet CPU time
// from a calibrated cost model, reproducing the receive-limited
// behaviour the paper measures (a single core pinned to the NIC
// interrupt, 610 kpps of raw IPv6 forwarding). Determinism is total:
// the same seed yields the same packet-by-packet schedule.
package netsim

import (
	"container/heap"
	"math/rand"
)

// Event is one scheduled callback.
type event struct {
	at  int64
	seq uint64 // tie-breaker preserving schedule order
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is the simulation kernel: a virtual clock, an event queue and a
// seeded random source shared by every stochastic component (jitter,
// loss, sampling, ECMP tie-breaking in tests).
type Sim struct {
	now  int64
	heap eventHeap
	seq  uint64
	rng  *rand.Rand

	nodes []*Node
}

// New creates a simulation with the given random seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in nanoseconds.
func (s *Sim) Now() int64 { return s.now }

// Rand returns the simulation's random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Schedule runs fn at absolute virtual time at (clamped to now).
func (s *Sim) Schedule(at int64, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	heap.Push(&s.heap, &event{at: at, seq: s.seq, fn: fn})
}

// After runs fn d nanoseconds from now.
func (s *Sim) After(d int64, fn func()) { s.Schedule(s.now+d, fn) }

// Step executes the next event; it reports false when none remain.
func (s *Sim) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := heap.Pop(&s.heap).(*event)
	s.now = e.at
	e.fn()
	return true
}

// Run executes events until the queue drains.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the
// clock to t.
func (s *Sim) RunUntil(t int64) {
	for len(s.heap) > 0 && s.heap[0].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Nodes returns all nodes added to the simulation.
func (s *Sim) Nodes() []*Node { return s.nodes }

// Millisecond and friends make topology code readable.
const (
	Microsecond int64 = 1_000
	Millisecond int64 = 1_000_000
	Second      int64 = 1_000_000_000
)
