package vm

import (
	"fmt"

	"srv6bpf/internal/bpf/asm"
)

// The JIT engine pre-compiles every wire slot into a closure that
// performs the operation directly and returns the next pc. It starts
// from the same pre-decoded micro-ops the interpreter executes
// (operands sign-extended, jump targets absolute), so compilation is
// a straight translation; execution is a tight trampoline loop over
// closures that share the interpreter's array-backed memory fast
// path through Memory.Load/Store.
//
// Sentinel pcs returned by compiled ops:
//
//	pcExit — clean program exit, result in r0
//	pcTrap — runtime fault, error in m.trap

const (
	pcExit = -1
	pcTrap = -2
)

type compiledOp func(m *Machine) int

// compile translates decoded slots into closures. It validates static
// jump targets so the trampoline never range-checks.
func compile(slots []slot) ([]compiledOp, error) {
	code := make([]compiledOp, len(slots))

	checkTarget := func(pc, target int) error {
		if target < 0 || target >= len(slots) {
			return fmt.Errorf("vm: jit: jump from %d to %d out of range", pc, target)
		}
		if slots[target].kind == uPad {
			return fmt.Errorf("vm: jit: jump from %d into lddw pad at %d", pc, target)
		}
		return nil
	}

	for pc := range slots {
		s := &slots[pc]
		next := pc + 1

		switch s.kind {
		case uPad:
			// Never executed; trap defensively if reached.
			code[pc] = func(m *Machine) int {
				m.trap = ErrBadJumpTarget
				return pcTrap
			}

		case uALU64Reg, uALU64Imm, uALU32Reg, uALU32Imm, uNeg64, uNeg32, uSwap:
			c, err := compileALU(s, next)
			if err != nil {
				return nil, fmt.Errorf("vm: jit: pc %d: %w", pc, err)
			}
			code[pc] = c

		case uExit, uCall, uJa, uJmpReg, uJmpImm, uJmp32Reg, uJmp32Imm:
			c, err := compileJump(s, pc, next, checkTarget)
			if err != nil {
				return nil, fmt.Errorf("vm: jit: pc %d: %w", pc, err)
			}
			code[pc] = c

		case uLoad:
			dst, src, off := s.dst, s.src, int64(s.off)
			size := int(s.size)
			code[pc] = func(m *Machine) int {
				v, err := m.Mem.Load(m.Regs[src]+uint64(off), size)
				if err != nil {
					m.trap = err
					return pcTrap
				}
				m.Regs[dst] = v
				return next
			}

		case uStoreReg:
			dst, src, off := s.dst, s.src, int64(s.off)
			size := int(s.size)
			code[pc] = func(m *Machine) int {
				if err := m.Mem.Store(m.Regs[dst]+uint64(off), size, m.Regs[src]); err != nil {
					m.trap = err
					return pcTrap
				}
				return next
			}

		case uXadd:
			dst, src, off := s.dst, s.src, int64(s.off)
			size := int(s.size)
			if size != 4 && size != 8 {
				return nil, fmt.Errorf("vm: jit: pc %d: atomic add size %d", pc, size)
			}
			code[pc] = func(m *Machine) int {
				addr := m.Regs[dst] + uint64(off)
				cur, err := m.Mem.Load(addr, size)
				if err != nil {
					m.trap = err
					return pcTrap
				}
				if err := m.Mem.Store(addr, size, cur+m.Regs[src]); err != nil {
					m.trap = err
					return pcTrap
				}
				return next
			}

		case uStoreImm:
			dst, off := s.dst, int64(s.off)
			size := int(s.size)
			val := s.operand
			code[pc] = func(m *Machine) int {
				if err := m.Mem.Store(m.Regs[dst]+uint64(off), size, val); err != nil {
					m.trap = err
					return pcTrap
				}
				return next
			}

		case uLdImm64:
			dst, imm := s.dst, uint64(s.imm)
			skip := int(s.target)
			code[pc] = func(m *Machine) int {
				m.Regs[dst] = imm
				return skip
			}

		default: // uBad
			return nil, fmt.Errorf("vm: jit: pc %d: %w: %#02x", pc, ErrBadOpcode, uint8(s.op))
		}
	}
	return code, nil
}

func compileALU(s *slot, next int) (compiledOp, error) {
	dst := s.dst

	switch s.kind {
	case uNeg64:
		return func(m *Machine) int { m.Regs[dst] = -m.Regs[dst]; return next }, nil
	case uNeg32:
		return func(m *Machine) int { m.Regs[dst] = uint64(-uint32(m.Regs[dst])); return next }, nil
	case uSwap:
		bits := s.imm
		if bits != 16 && bits != 32 && bits != 64 {
			return nil, fmt.Errorf("swap width %d", bits)
		}
		toBE := s.src != 0
		return func(m *Machine) int {
			m.Regs[dst] = swapBytes(m.Regs[dst], bits, toBE)
			return next
		}, nil
	}

	aop := s.aluop
	switch aop {
	case asm.Mov:
		// Mov is the most common op; specialize fully.
		switch s.kind {
		case uALU64Reg:
			src := s.src
			return func(m *Machine) int { m.Regs[dst] = m.Regs[src]; return next }, nil
		case uALU32Reg:
			src := s.src
			return func(m *Machine) int { m.Regs[dst] = uint64(uint32(m.Regs[src])); return next }, nil
		case uALU64Imm:
			imm := s.operand
			return func(m *Machine) int { m.Regs[dst] = imm; return next }, nil
		default:
			imm := uint64(uint32(s.operand))
			return func(m *Machine) int { m.Regs[dst] = imm; return next }, nil
		}

	case asm.Add:
		switch s.kind {
		case uALU64Reg:
			src := s.src
			return func(m *Machine) int { m.Regs[dst] += m.Regs[src]; return next }, nil
		case uALU32Reg:
			src := s.src
			return func(m *Machine) int {
				m.Regs[dst] = uint64(uint32(m.Regs[dst]) + uint32(m.Regs[src]))
				return next
			}, nil
		case uALU64Imm:
			imm := s.operand
			return func(m *Machine) int { m.Regs[dst] += imm; return next }, nil
		default:
			imm := uint32(s.operand)
			return func(m *Machine) int {
				m.Regs[dst] = uint64(uint32(m.Regs[dst]) + imm)
				return next
			}, nil
		}

	case asm.Sub, asm.Mul, asm.Div, asm.Or, asm.And, asm.LSh, asm.RSh, asm.Mod, asm.Xor, asm.ArSh:
		// Remaining ops share the pre-selected operation function.
	default:
		return nil, fmt.Errorf("%w: alu op %v", ErrBadOpcode, aop)
	}

	switch s.kind {
	case uALU64Reg:
		src := s.src
		return func(m *Machine) int {
			m.Regs[dst] = alu64(aop, m.Regs[dst], m.Regs[src])
			return next
		}, nil
	case uALU32Reg:
		src := s.src
		return func(m *Machine) int {
			m.Regs[dst] = alu32(aop, m.Regs[dst], m.Regs[src])
			return next
		}, nil
	case uALU64Imm:
		imm := s.operand
		return func(m *Machine) int {
			m.Regs[dst] = alu64(aop, m.Regs[dst], imm)
			return next
		}, nil
	default:
		imm := s.operand
		return func(m *Machine) int {
			m.Regs[dst] = alu32(aop, m.Regs[dst], imm)
			return next
		}, nil
	}
}

func compileJump(s *slot, pc, next int, checkTarget func(int, int) error) (compiledOp, error) {
	switch s.kind {
	case uExit:
		return func(m *Machine) int { return pcExit }, nil

	case uCall:
		id := s.imm
		return func(m *Machine) int {
			if err := m.callHelper(id); err != nil {
				m.trap = err
				return pcTrap
			}
			return next
		}, nil

	case uJa:
		target := int(s.target)
		if err := checkTarget(pc, target); err != nil {
			return nil, err
		}
		return func(m *Machine) int { return target }, nil
	}

	target := int(s.target)
	if err := checkTarget(pc, target); err != nil {
		return nil, err
	}
	wide := s.kind == uJmpReg || s.kind == uJmpImm
	dst := s.dst
	jop := s.jumpop

	switch jop {
	case asm.JEq, asm.JNE, asm.JGT, asm.JGE, asm.JLT, asm.JLE,
		asm.JSet, asm.JSGT, asm.JSGE, asm.JSLT, asm.JSLE:
	default:
		return nil, fmt.Errorf("%w: jump op %v", ErrBadOpcode, jop)
	}

	if s.kind == uJmpReg || s.kind == uJmp32Reg {
		src := s.src
		// Specialize the hottest comparison.
		if jop == asm.JEq && wide {
			return func(m *Machine) int {
				if m.Regs[dst] == m.Regs[src] {
					return target
				}
				return next
			}, nil
		}
		return func(m *Machine) int {
			if jumpTaken(jop, m.Regs[dst], m.Regs[src], wide) {
				return target
			}
			return next
		}, nil
	}

	imm := s.operand
	if jop == asm.JEq && wide {
		return func(m *Machine) int {
			if m.Regs[dst] == imm {
				return target
			}
			return next
		}, nil
	}
	return func(m *Machine) int {
		if jumpTaken(jop, m.Regs[dst], imm, wide) {
			return target
		}
		return next
	}, nil
}

// runJIT drives the compiled code through a trampoline loop.
func (m *Machine) runJIT(ex *Executable) (uint64, error) {
	code := ex.code
	budget := m.budget()
	var steps uint64
	pc := 0
	for {
		steps++
		if steps > budget {
			m.Executed += steps
			return 0, ErrMaxInstructions
		}
		pc = code[pc](m)
		if pc < 0 {
			m.Executed += steps
			if pc == pcExit {
				return m.Regs[0], nil
			}
			err := m.trap
			m.trap = nil
			return 0, err
		}
	}
}
