// Package maps implements the eBPF map types the paper's network
// functions rely on: arrays, hash maps, LRU hash maps, longest-prefix
// match tries, per-CPU arrays and perf event arrays.
//
// Maps are the only persistent state shared between BPF program
// invocations and between a program and user space (§2.1 of the
// paper). Every map is backed by a contiguous arena of value slots so
// that programs can hold stable pointers into map memory, mirroring
// how the kernel hands out pointers to map values.
package maps

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Type enumerates the supported map types.
type Type int

// Supported map types. The numeric values match the kernel's
// bpf_map_type enum for the types we implement.
const (
	Unspecified    Type = 0
	Hash           Type = 1
	Array          Type = 2
	PerfEventArray Type = 4
	PerCPUArray    Type = 6
	LRUHash        Type = 9
	LPMTrie        Type = 11
)

func (t Type) String() string {
	switch t {
	case Hash:
		return "hash"
	case Array:
		return "array"
	case PerfEventArray:
		return "perf_event_array"
	case PerCPUArray:
		return "percpu_array"
	case LRUHash:
		return "lru_hash"
	case LPMTrie:
		return "lpm_trie"
	default:
		return fmt.Sprintf("map_type(%d)", int(t))
	}
}

// Update flags, matching the kernel's BPF_ANY / BPF_NOEXIST /
// BPF_EXIST.
const (
	UpdateAny     uint64 = 0
	UpdateNoExist uint64 = 1
	UpdateExist   uint64 = 2
)

// Errors returned by map operations.
var (
	ErrKeyNotExist   = errors.New("maps: key does not exist")
	ErrKeyExist      = errors.New("maps: key already exists")
	ErrFull          = errors.New("maps: map is full")
	ErrKeySize       = errors.New("maps: wrong key size")
	ErrValueSize     = errors.New("maps: wrong value size")
	ErrNotSupported  = errors.New("maps: operation not supported for this map type")
	ErrBadFlags      = errors.New("maps: invalid update flags")
	ErrBadSpec       = errors.New("maps: invalid map spec")
	ErrBadPrefixLen  = errors.New("maps: LPM prefix length exceeds key size")
	ErrZeroMaxEntr   = errors.New("maps: max_entries must be positive")
	errSlotExhausted = errors.New("maps: internal slot exhaustion")
)

// Spec describes a map before creation, in the style of
// cilium/ebpf's MapSpec.
type Spec struct {
	Name       string
	Type       Type
	KeySize    uint32 // bytes; LPMTrie keys start with a 4-byte prefix length
	ValueSize  uint32 // bytes
	MaxEntries uint32
}

func (s Spec) validate() error {
	if s.MaxEntries == 0 {
		return fmt.Errorf("%w (map %q)", ErrZeroMaxEntr, s.Name)
	}
	switch s.Type {
	case Array, PerCPUArray:
		if s.KeySize != 4 {
			return fmt.Errorf("%w: %s requires 4-byte keys", ErrBadSpec, s.Type)
		}
	case Hash, LRUHash:
		if s.KeySize == 0 {
			return fmt.Errorf("%w: hash maps need a key", ErrBadSpec)
		}
	case LPMTrie:
		if s.KeySize < 5 {
			return fmt.Errorf("%w: LPM keys need 4 prefix bytes plus data", ErrBadSpec)
		}
	case PerfEventArray:
		// Key/value sizes are ignored; the ring stores raw samples.
	default:
		return fmt.Errorf("%w: unknown type %v", ErrBadSpec, s.Type)
	}
	if s.Type != PerfEventArray && s.ValueSize == 0 {
		return fmt.Errorf("%w: zero value size", ErrBadSpec)
	}
	return nil
}

// Map is a created map. All operations are safe for concurrent use.
type Map struct {
	spec Spec

	mu sync.RWMutex
	// arena backs all value slots contiguously:
	// slot i occupies arena[i*stride : i*stride+ValueSize].
	arena  []byte
	stride int

	// Hash/LRU state.
	index map[string]int // key bytes -> slot
	keys  []string       // slot -> key ("" when free)
	free  []int          // free slot indices
	lru   *lruList       // LRUHash access order

	// LPM state.
	trie *trieNode

	// Perf state.
	rings       []*perfRing
	subscribers []chan struct{}
}

// New creates a map from spec.
func New(spec Spec) (*Map, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	m := &Map{spec: spec}
	switch spec.Type {
	case Array, PerCPUArray:
		m.stride = int(spec.ValueSize)
		m.arena = make([]byte, int(spec.MaxEntries)*m.stride)
	case Hash, LRUHash:
		m.stride = int(spec.ValueSize)
		m.arena = make([]byte, int(spec.MaxEntries)*m.stride)
		m.index = make(map[string]int, spec.MaxEntries)
		m.keys = make([]string, spec.MaxEntries)
		m.free = make([]int, 0, spec.MaxEntries)
		for i := int(spec.MaxEntries) - 1; i >= 0; i-- {
			m.free = append(m.free, i)
		}
		if spec.Type == LRUHash {
			m.lru = newLRUList(int(spec.MaxEntries))
		}
	case LPMTrie:
		m.stride = int(spec.ValueSize)
		m.arena = make([]byte, int(spec.MaxEntries)*m.stride)
		m.index = make(map[string]int, spec.MaxEntries)
		m.keys = make([]string, spec.MaxEntries)
		m.free = make([]int, 0, spec.MaxEntries)
		for i := int(spec.MaxEntries) - 1; i >= 0; i-- {
			m.free = append(m.free, i)
		}
		m.trie = &trieNode{}
	case PerfEventArray:
		m.rings = make([]*perfRing, spec.MaxEntries)
		for i := range m.rings {
			m.rings[i] = newPerfRing(defaultRingCapacity)
		}
	}
	return m, nil
}

// MustNew is New for tests and static configuration; it panics on error.
func MustNew(spec Spec) *Map {
	m, err := New(spec)
	if err != nil {
		panic(err)
	}
	return m
}

// Spec returns the creation spec.
func (m *Map) Spec() Spec { return m.spec }

// Name returns the map name.
func (m *Map) Name() string { return m.spec.Name }

// Arena exposes the value backing store. The VM maps it as a memory
// region so programs can dereference pointers returned by
// map_lookup_elem. Callers must not resize it.
func (m *Map) Arena() []byte { return m.arena }

// LookupSlot returns the arena offset of the value for key, or
// ok=false. This is the program-facing lookup: the returned offset is
// stable for the lifetime of the entry.
func (m *Map) LookupSlot(key []byte) (offset int, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	slot, ok := m.lookupLocked(key)
	if !ok {
		return 0, false
	}
	if m.spec.Type == LRUHash {
		m.lru.touch(slot)
	}
	return slot * m.stride, true
}

// Lookup copies the value for key into a fresh slice. This is the
// user-space API.
func (m *Map) Lookup(key []byte) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	slot, ok := m.lookupLocked(key)
	if !ok {
		return nil, ErrKeyNotExist
	}
	if m.spec.Type == LRUHash {
		m.lru.touch(slot)
	}
	out := make([]byte, m.spec.ValueSize)
	copy(out, m.slotBytes(slot))
	return out, nil
}

// LookupUint64 reads the value for key as a little-endian uint64.
// The value size must be exactly 8 bytes.
func (m *Map) LookupUint64(key []byte) (uint64, error) {
	if m.spec.ValueSize != 8 {
		return 0, ErrValueSize
	}
	v, err := m.Lookup(key)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(v), nil
}

func (m *Map) lookupLocked(key []byte) (slot int, ok bool) {
	switch m.spec.Type {
	case Array, PerCPUArray:
		if len(key) != 4 {
			return 0, false
		}
		idx := binary.LittleEndian.Uint32(key)
		if idx >= m.spec.MaxEntries {
			return 0, false
		}
		return int(idx), true
	case Hash, LRUHash:
		if uint32(len(key)) != m.spec.KeySize {
			return 0, false
		}
		slot, ok = m.index[string(key)]
		return slot, ok
	case LPMTrie:
		return m.lpmLookupLocked(key)
	default:
		return 0, false
	}
}

// Update inserts or replaces the value for key subject to flags.
func (m *Map) Update(key, value []byte, flags uint64) error {
	if m.spec.Type == PerfEventArray {
		return ErrNotSupported
	}
	if uint32(len(value)) != m.spec.ValueSize {
		return ErrValueSize
	}
	if flags > UpdateExist {
		return ErrBadFlags
	}
	m.mu.Lock()
	defer m.mu.Unlock()

	switch m.spec.Type {
	case Array, PerCPUArray:
		if len(key) != 4 {
			return ErrKeySize
		}
		idx := binary.LittleEndian.Uint32(key)
		if idx >= m.spec.MaxEntries {
			return ErrKeyNotExist
		}
		if flags == UpdateNoExist {
			// Array elements always exist.
			return ErrKeyExist
		}
		copy(m.slotBytes(int(idx)), value)
		return nil

	case Hash, LRUHash:
		if uint32(len(key)) != m.spec.KeySize {
			return ErrKeySize
		}
		ks := string(key)
		slot, exists := m.index[ks]
		switch {
		case exists && flags == UpdateNoExist:
			return ErrKeyExist
		case !exists && flags == UpdateExist:
			return ErrKeyNotExist
		}
		if !exists {
			var err error
			slot, err = m.allocSlotLocked()
			if err != nil {
				return err
			}
			m.index[ks] = slot
			m.keys[slot] = ks
			if m.lru != nil {
				m.lru.push(slot)
			}
		} else if m.lru != nil {
			m.lru.touch(slot)
		}
		copy(m.slotBytes(slot), value)
		return nil

	case LPMTrie:
		return m.lpmUpdateLocked(key, value, flags)
	}
	return ErrNotSupported
}

// allocSlotLocked pops a free slot, evicting the least recently used
// entry for LRU maps when full.
func (m *Map) allocSlotLocked() (int, error) {
	if len(m.free) == 0 {
		if m.lru == nil {
			return 0, ErrFull
		}
		victim, ok := m.lru.evict()
		if !ok {
			return 0, errSlotExhausted
		}
		delete(m.index, m.keys[victim])
		m.keys[victim] = ""
		return victim, nil
	}
	slot := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	return slot, nil
}

// Delete removes key.
func (m *Map) Delete(key []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch m.spec.Type {
	case Array, PerCPUArray:
		return ErrNotSupported
	case Hash, LRUHash:
		if uint32(len(key)) != m.spec.KeySize {
			return ErrKeySize
		}
		ks := string(key)
		slot, ok := m.index[ks]
		if !ok {
			return ErrKeyNotExist
		}
		delete(m.index, ks)
		m.keys[slot] = ""
		m.free = append(m.free, slot)
		if m.lru != nil {
			m.lru.remove(slot)
		}
		clearBytes(m.slotBytes(slot))
		return nil
	case LPMTrie:
		return m.lpmDeleteLocked(key)
	default:
		return ErrNotSupported
	}
}

// Len returns the number of live entries.
func (m *Map) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	switch m.spec.Type {
	case Array, PerCPUArray:
		return int(m.spec.MaxEntries)
	case Hash, LRUHash, LPMTrie:
		return len(m.index)
	default:
		return 0
	}
}

// Iterate calls fn for each key/value pair. fn receives copies.
// Iteration order is unspecified. Returning false stops early.
func (m *Map) Iterate(fn func(key, value []byte) bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	switch m.spec.Type {
	case Array, PerCPUArray:
		var key [4]byte
		for i := uint32(0); i < m.spec.MaxEntries; i++ {
			binary.LittleEndian.PutUint32(key[:], i)
			v := make([]byte, m.spec.ValueSize)
			copy(v, m.slotBytes(int(i)))
			if !fn(append([]byte(nil), key[:]...), v) {
				return
			}
		}
	case Hash, LRUHash, LPMTrie:
		for ks, slot := range m.index {
			v := make([]byte, m.spec.ValueSize)
			copy(v, m.slotBytes(slot))
			if !fn([]byte(ks), v) {
				return
			}
		}
	}
}

// Snapshot is a value copy of a map's contents and internal layout,
// taken by rollback-aware components (internal/nf state hooks) at
// simulation checkpoints. Slot assignments are preserved exactly, so
// arena offsets handed to programs via LookupSlot stay valid across
// a Restore.
type Snapshot struct {
	arena    []byte
	index    map[string]int
	keys     []string
	free     []int
	lruOrder []int // most recently used first; nil unless LRUHash
}

// Snapshot captures the map state. Not supported for PerfEventArray
// maps (ring contents are a stream to user space, not program state).
func (m *Map) Snapshot() Snapshot {
	if m.spec.Type == PerfEventArray {
		panic("maps: Snapshot is not supported for perf event arrays")
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	s := Snapshot{arena: append([]byte(nil), m.arena...)}
	if m.index != nil {
		s.index = make(map[string]int, len(m.index))
		for k, v := range m.index {
			s.index[k] = v
		}
		s.keys = append([]string(nil), m.keys...)
		s.free = append([]int(nil), m.free...)
	}
	if m.lru != nil {
		for slot := m.lru.head; slot >= 0; slot = m.lru.next[slot] {
			s.lruOrder = append(s.lruOrder, slot)
		}
	}
	return s
}

// Restore rewinds the map to a previously captured snapshot. The
// snapshot stays valid and may be restored again.
func (m *Map) Restore(s Snapshot) {
	if m.spec.Type == PerfEventArray {
		panic("maps: Restore is not supported for perf event arrays")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	copy(m.arena, s.arena)
	if m.index != nil {
		for k := range m.index {
			delete(m.index, k)
		}
		for k, v := range s.index {
			m.index[k] = v
		}
		copy(m.keys, s.keys)
		m.free = append(m.free[:0], s.free...)
	}
	if m.lru != nil {
		m.lru = newLRUList(len(m.keys))
		for i := len(s.lruOrder) - 1; i >= 0; i-- {
			m.lru.push(s.lruOrder[i])
		}
	}
	if m.trie != nil {
		m.trie = &trieNode{}
		for ks, slot := range m.index {
			key := []byte(ks)
			plen := lpmPrefixLen(key)
			data := lpmData(key)
			n := m.trie
			for i := uint32(0); i < plen; i++ {
				b := bitAt(data, i)
				if n.children[b] == nil {
					n.children[b] = &trieNode{}
				}
				n = n.children[b]
			}
			n.slot = slot
			n.present = true
		}
	}
}

func (m *Map) slotBytes(slot int) []byte {
	return m.arena[slot*m.stride : slot*m.stride+int(m.spec.ValueSize)]
}

func clearBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// lruList tracks access order over slot numbers with an intrusive
// doubly-linked list; index -1 terminates.
type lruList struct {
	next, prev []int
	head, tail int // head = most recent
	present    []bool
}

func newLRUList(n int) *lruList {
	l := &lruList{
		next:    make([]int, n),
		prev:    make([]int, n),
		present: make([]bool, n),
		head:    -1,
		tail:    -1,
	}
	for i := range l.next {
		l.next[i], l.prev[i] = -1, -1
	}
	return l
}

func (l *lruList) push(slot int) {
	l.present[slot] = true
	l.prev[slot] = -1
	l.next[slot] = l.head
	if l.head >= 0 {
		l.prev[l.head] = slot
	}
	l.head = slot
	if l.tail < 0 {
		l.tail = slot
	}
}

func (l *lruList) remove(slot int) {
	if !l.present[slot] {
		return
	}
	l.present[slot] = false
	if l.prev[slot] >= 0 {
		l.next[l.prev[slot]] = l.next[slot]
	} else {
		l.head = l.next[slot]
	}
	if l.next[slot] >= 0 {
		l.prev[l.next[slot]] = l.prev[slot]
	} else {
		l.tail = l.prev[slot]
	}
	l.next[slot], l.prev[slot] = -1, -1
}

func (l *lruList) touch(slot int) {
	if !l.present[slot] {
		return
	}
	l.remove(slot)
	l.push(slot)
}

// evict removes and returns the least recently used slot.
func (l *lruList) evict() (int, bool) {
	if l.tail < 0 {
		return 0, false
	}
	v := l.tail
	l.remove(v)
	return v, true
}

// Equal reports whether two keys compare equal byte-wise. Exposed for
// tests that model map behaviour.
func Equal(a, b []byte) bool { return bytes.Equal(a, b) }
