package packet

import (
	"net/netip"
	"reflect"
	"testing"
)

// Native go fuzz targets for the two parsers sitting directly on the
// simulated wire. `go test` runs them over the seed corpus; the
// Makefile's fuzz-native target lets the mutation engine loose on them
// for a bounded -fuzztime (and CI's nightly job for longer). The
// quick.Check tests in fuzz_test.go stay as the fast deterministic
// sweep; these add coverage-guided mutation on top.

// fuzzSeedPackets builds a handful of structurally interesting valid
// packets to seed the corpus: plain UDP, SRH with 1 and 3 segments,
// SRH with TLVs, IPv6-in-IPv6, and a chained routing header.
func fuzzSeedPackets(tb testing.TB) [][]byte {
	tb.Helper()
	src := netip.MustParseAddr("2001:db8::1")
	dst := netip.MustParseAddr("fc00::1")
	segs3 := []netip.Addr{
		netip.MustParseAddr("fc00::1"),
		netip.MustParseAddr("fc00::2"),
		netip.MustParseAddr("fc00::3"),
	}
	var out [][]byte
	add := func(raw []byte, err error) {
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, raw)
	}
	add(BuildPacket(src, dst, WithUDP(1000, 53), WithPayload([]byte("payload"))))
	add(BuildPacket(src, dst, WithSRH(NewSRH(segs3[:1])), WithUDP(1, 2)))
	add(BuildPacket(src, dst, WithSRH(NewSRH(segs3)), WithUDP(1, 2), WithPayload([]byte("xyz"))))
	add(BuildPacket(src, dst,
		WithSRH(NewSRH(segs3[:2],
			DMTLV{TxTimestampNS: 42},
			ControllerTLV{Addr: netip.MustParseAddr("fc00::c"), Port: 6653})),
		WithUDP(7, 7)))
	inner, err := BuildPacket(src, dst, WithUDP(9, 9), WithPayload([]byte("in")))
	if err != nil {
		tb.Fatal(err)
	}
	add(BuildPacket(src, dst, WithSRH(NewSRH(segs3[:1])), WithInnerPacket(inner)))
	// The mid-path decap shape: an inner packet behind an SRH whose
	// SegmentsLeft is still > 0 — the input the decap behaviours must
	// refuse (RFC 8986 upper-layer check) — plus IPv4 and Ethernet
	// payloads behind the SRH.
	add(BuildPacket(src, dst, WithSRH(NewSRH(segs3)), WithInnerPacket(inner)))
	v4, err := BuildIPv4UDP(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"),
		9, 9, []byte("in4"), 64)
	if err != nil {
		tb.Fatal(err)
	}
	add(BuildPacket(src, dst, WithSRH(NewSRH(segs3[:2])), WithInnerPacket(v4)))
	add(BuildPacket(src, dst, WithSRH(NewSRH(segs3[:1])),
		WithInnerL2(BuildEthernet([6]byte{2, 0, 0, 0, 0, 2}, [6]byte{2, 0, 0, 0, 0, 1}, 0x86dd, inner))))
	return out
}

// FuzzParseInfo cross-checks the allocation-free offset walk against
// the allocating parser on arbitrary bytes: both must survive, agree
// on accept/reject, and agree on the offsets that drive the End.BPF
// datapath.
func FuzzParseInfo(f *testing.F) {
	for _, raw := range fuzzSeedPackets(f) {
		f.Add(raw)
		// Truncations of valid packets probe every length check.
		f.Add(raw[:len(raw)/2])
		f.Add(raw[:IPv6HeaderLen])
	}
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		info, infoErr := ParseInfo(raw)
		pkt, parseErr := Parse(raw)
		if (infoErr == nil) != (parseErr == nil) {
			t.Fatalf("ParseInfo err=%v, Parse err=%v — parsers disagree", infoErr, parseErr)
		}
		if infoErr != nil {
			return
		}
		if info.L4Off < IPv6HeaderLen || info.L4Off > len(raw) {
			t.Fatalf("L4Off %d out of bounds (len %d)", info.L4Off, len(raw))
		}
		if pkt.L4Off != info.L4Off || pkt.L4Proto != info.L4Proto {
			t.Fatalf("L4 disagreement: info(%d,%d) pkt(%d,%d)",
				info.L4Off, info.L4Proto, pkt.L4Off, pkt.L4Proto)
		}
		if info.HasSRH() {
			if info.SRHOff < IPv6HeaderLen || info.SRHOff+info.SRHLen > len(raw) {
				t.Fatalf("SRH window [%d,%d) out of bounds (len %d)",
					info.SRHOff, info.SRHOff+info.SRHLen, len(raw))
			}
			// The window ParseInfo accepted must satisfy the validator
			// used after program writes.
			if err := ValidateSRHBytes(raw[info.SRHOff : info.SRHOff+info.SRHLen]); err != nil {
				t.Fatalf("accepted SRH fails revalidation: %v", err)
			}
			if pkt.SRH == nil {
				t.Fatalf("ParseInfo found an SRH at %d, Parse did not", info.SRHOff)
			}
		} else if pkt.SRH != nil {
			t.Fatalf("Parse found an SRH, ParseInfo did not")
		}
	})
}

// FuzzValidateSRH feeds arbitrary windows to the post-write SRH
// validator and cross-checks it against the decoder: whatever the
// validator accepts, DecodeSRH must decode and re-encode to the same
// bytes.
func FuzzValidateSRH(f *testing.F) {
	for _, raw := range fuzzSeedPackets(f) {
		info, err := ParseInfo(raw)
		if err != nil || !info.HasSRH() {
			continue
		}
		srh := raw[info.SRHOff : info.SRHOff+info.SRHLen]
		f.Add(srh)
		f.Add(srh[:len(srh)-1])
	}
	f.Add([]byte{0, 0, SRHRoutingType, 0})
	f.Fuzz(func(t *testing.T, b []byte) {
		if err := ValidateSRHBytes(b); err != nil {
			return
		}
		srh, n, err := DecodeSRH(b)
		if err != nil {
			t.Fatalf("validator accepted what DecodeSRH rejects: %v", err)
		}
		enc, err := srh.Encode(nil)
		if err != nil {
			t.Fatalf("re-encode of accepted SRH failed: %v", err)
		}
		if len(enc) != n {
			t.Fatalf("re-encode changed the wire length: %d -> %d", n, len(enc))
		}
		// Byte identity is too strict (PadN re-encodes its padding as
		// zeros), but the re-encoding must validate and decode back to
		// the same SRH — a semantic fixpoint.
		if err := ValidateSRHBytes(enc); err != nil {
			t.Fatalf("re-encoded SRH fails validation: %v", err)
		}
		srh2, _, err := DecodeSRH(enc)
		if err != nil {
			t.Fatalf("re-encoded SRH fails decoding: %v", err)
		}
		if !reflect.DeepEqual(srh, srh2) {
			t.Fatalf("decode/encode/decode not a fixpoint:\n in  %+v\n out %+v", srh, srh2)
		}
	})
}
