package core

import (
	"fmt"
	"sort"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/vm"
	"srv6bpf/internal/netsim"
)

// Verdict indices for progCounters.verdicts. "error" covers VM faults
// and post-run integrity failures; the clean BPF return codes map to
// the first three.
const (
	verdictOK = iota
	verdictDrop
	verdictRedirect
	verdictError
	verdictCount
)

var verdictNames = [verdictCount]string{"ok", "drop", "redirect", "error"}

// progCounters is an attachment's bpftool-style run statistics:
// run_cnt, retired instructions, helper invocations (aggregate and
// per helper ID) and a verdict breakdown. Like progFaults it
// registers with the node's checkpoint machinery on first run, so
// counts observed after commit are committed-exact under the
// optimistic engine — speculative runs that roll back are uncounted,
// matching the kernel's view where a run either happened or didn't.
type progCounters struct {
	runCnt    uint64
	insns     uint64
	helpers   uint64
	verdicts  [verdictCount]uint64
	helperCnt [vm.MaxHelperID]uint64
}

// SnapshotState implements netsim.ShardState by value copy.
func (p *progCounters) SnapshotState() any { return *p }

// RestoreState implements netsim.ShardState.
func (p *progCounters) RestoreState(v any) { *p = v.(progCounters) }

// record accounts one program run.
func (p *progCounters) record(insns, helpers uint64, verdict int) {
	p.runCnt++
	p.insns += insns
	p.helpers += helpers
	p.verdicts[verdict]++
}

// ProgStats is the exported per-attachment statistics snapshot, the
// simulator's analogue of `bpftool prog show` plus the fault state of
// the quarantine machinery.
type ProgStats struct {
	// Name is the program name, Hook the attachment hook
	// ("lwt_seg6local" or "lwt_out").
	Name string `json:"name"`
	Hook string `json:"hook"`
	// Insns is the static (assembled) instruction count; JIT reports
	// whether the instance was compiled.
	Insns int  `json:"insns"`
	JIT   bool `json:"jit"`
	// RunCnt / InsnExecuted / HelperCalls mirror the kernel's
	// BPF_ENABLE_STATS counters.
	RunCnt       uint64 `json:"run_cnt"`
	InsnExecuted uint64 `json:"insn_executed"`
	HelperCalls  uint64 `json:"helper_calls"`
	// Helpers breaks HelperCalls down by helper name.
	Helpers map[string]uint64 `json:"helpers,omitempty"`
	// Verdicts counts runs by outcome: ok, drop, redirect, error.
	Verdicts map[string]uint64 `json:"verdicts,omitempty"`
	// Faults / Quarantined expose the quarantine state.
	Faults      int  `json:"faults"`
	Quarantined bool `json:"quarantined"`
}

// MeanInsns returns the average retired instructions per run.
func (s ProgStats) MeanInsns() float64 {
	if s.RunCnt == 0 {
		return 0
	}
	return float64(s.InsnExecuted) / float64(s.RunCnt)
}

// HelperNames lists the observed helper names sorted by descending
// count (name-ascending on ties), for stable listings.
func (s ProgStats) HelperNames() []string {
	names := make([]string, 0, len(s.Helpers))
	for name := range s.Helpers {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if s.Helpers[names[i]] != s.Helpers[names[j]] {
			return s.Helpers[names[i]] > s.Helpers[names[j]]
		}
		return names[i] < names[j]
	})
	return names
}

// helperNames maps the helper IDs installed by this repository's
// hooks to their UAPI names (see bpf.GenericHelperSigs and the hook
// constructors in core.go).
var helperNames = map[int]string{
	bpf.HelperMapLookupElem:    "map_lookup_elem",
	bpf.HelperMapUpdateElem:    "map_update_elem",
	bpf.HelperMapDeleteElem:    "map_delete_elem",
	bpf.HelperKtimeGetNS:       "ktime_get_ns",
	bpf.HelperTracePrintk:      "trace_printk",
	bpf.HelperGetPrandomU32:    "get_prandom_u32",
	bpf.HelperPerfEventOutput:  "perf_event_output",
	bpf.HelperSkbLoadBytes:     "skb_load_bytes",
	bpf.HelperLWTPushEncap:     "lwt_push_encap",
	bpf.HelperLWTSeg6StoreByte: "lwt_seg6_store_bytes",
	bpf.HelperLWTSeg6AdjustSRH: "lwt_seg6_adjust_srh",
	bpf.HelperLWTSeg6Action:    "lwt_seg6_action",
	bpf.HelperHWTimestamp:      "hw_timestamp",
	bpf.HelperSeg6ECMPNexthops: "seg6_ecmp_nexthops",
}

// HelperName resolves a helper ID to its UAPI name, falling back to
// "helper_<id>" for IDs outside the installed set.
func HelperName(id int) string {
	if name, ok := helperNames[id]; ok {
		return name
	}
	return fmt.Sprintf("helper_%d", id)
}

// buildProgStats assembles the exported snapshot from an attachment's
// counters and fault state.
func buildProgStats(inst *bpf.Instance, name, hook string, c *progCounters, f *progFaults) ProgStats {
	s := ProgStats{
		Name:         name,
		Hook:         hook,
		Insns:        len(inst.Program().Instructions()),
		JIT:          inst.JIT(),
		RunCnt:       c.runCnt,
		InsnExecuted: c.insns,
		HelperCalls:  c.helpers,
		Faults:       f.faults,
		Quarantined:  f.quarantined,
	}
	for id, n := range c.helperCnt {
		if n == 0 {
			continue
		}
		if s.Helpers == nil {
			s.Helpers = make(map[string]uint64)
		}
		s.Helpers[HelperName(id)] = n
	}
	for i, n := range c.verdicts {
		if n == 0 {
			continue
		}
		if s.Verdicts == nil {
			s.Verdicts = make(map[string]uint64)
		}
		s.Verdicts[verdictNames[i]] = n
	}
	return s
}

// ProgStats returns the attachment's current statistics snapshot.
func (e *EndBPF) ProgStats() ProgStats {
	return buildProgStats(e.inst, e.name, "lwt_seg6local", &e.stats, &e.faults)
}

// ProgStats returns the attachment's current statistics snapshot.
func (l *LWT) ProgStats() ProgStats {
	return buildProgStats(l.inst, l.name, "lwt_out", &l.stats, &l.faults)
}

// StatsState exposes the run counters as the netsim.ShardState the
// datapath registers with the node, mirroring FaultState.
func (e *EndBPF) StatsState() netsim.ShardState { return &e.stats }

// StatsState exposes the run counters as the netsim.ShardState the
// datapath registers with the node, mirroring FaultState.
func (l *LWT) StatsState() netsim.ShardState { return &l.stats }
