package vm

import (
	"errors"
	"fmt"

	"srv6bpf/internal/bpf/asm"
)

// StackSize is the per-execution stack, matching the kernel's
// MAX_BPF_STACK of 512 bytes.
const StackSize = 512

// DefaultMaxInstructions caps a single execution as a runtime safety
// net behind the verifier's static loop rejection.
const DefaultMaxInstructions = 1 << 20

// Execution errors.
var (
	ErrMaxInstructions = errors.New("vm: instruction budget exhausted")
	ErrBadJumpTarget   = errors.New("vm: jump into the middle of an lddw")
	ErrUnknownHelper   = errors.New("vm: call to unknown helper")
	ErrBadOpcode       = errors.New("vm: invalid opcode")
	ErrFellOff         = errors.New("vm: execution fell off the end of the program")
)

// HelperFunc implements one kernel helper. Arguments arrive in
// r1..r5; the return value is placed in r0. Helpers may inspect and
// modify machine memory through m.Mem.
type HelperFunc func(m *Machine, r1, r2, r3, r4, r5 uint64) (uint64, error)

// MaxHelperID bounds the dense helper dispatch table.
const MaxHelperID = 256

// maxHelperID is kept as an internal alias for the dispatch tables.
const maxHelperID = MaxHelperID

// HelperTable maps helper IDs to implementations.
type HelperTable [maxHelperID]HelperFunc

// Micro-op kinds. expand resolves every wire slot into one of these
// so the interpreter dispatches on a single byte instead of re-
// deriving Class/ALUOp/JumpOp/Size/Source from the opcode each step.
const (
	uPad      uint8 = iota // lddw second slot; executing it is an error
	uALU64Reg              // regs[dst] = alu64(aluop, regs[dst], regs[src])
	uALU64Imm              // regs[dst] = alu64(aluop, regs[dst], operand)
	uALU32Reg
	uALU32Imm
	uNeg64
	uNeg32
	uSwap   // byte swap; imm holds the width, src 1 means to-BE
	uJa     // pc = target
	uExit   // return regs[0]
	uCall   // helper call, id in imm
	uJmpReg // 64-bit conditional, reg operand
	uJmpImm // 64-bit conditional, pre-extended imm operand
	uJmp32Reg
	uJmp32Imm
	uLoad     // regs[dst] = mem[regs[src]+off], size bytes
	uStoreReg // mem[regs[dst]+off] = regs[src]
	uStoreImm // mem[regs[dst]+off] = operand
	uXadd     // mem[regs[dst]+off] += regs[src], size 4 or 8
	uLdImm64  // regs[dst] = imm (full 64 bits); pc = target (skips pad)
	uBad      // invalid opcode: fault at execution time, like hardware
)

// slot is one decoded wire slot, pre-decoded into a flat micro-op:
// the kind byte selects the operation, aluop/jumpop/size are resolved
// once, immediate operands are sign-extended once, and jump targets
// are absolute slot indices.
type slot struct {
	kind    uint8
	dst     uint8
	src     uint8
	size    uint8      // access width in bytes for uLoad/uStore*/uXadd
	aluop   asm.ALUOp  // for uALU*
	jumpop  asm.JumpOp // for uJmp*
	op      asm.OpCode // original opcode, kept for error reporting
	off     int16      // original wire offset (memory ops, errors)
	target  int32      // absolute taken-branch target (uJa/uJmp*/uLdImm64)
	imm     int64      // full 64-bit constant for lddw; helper id for call
	operand uint64     // pre-sign-extended immediate operand
}

// MapResolver turns the map name of an LD_IMM64 pseudo-load into the
// 64-bit handle value the program receives (a tagged pointer to the
// map's handle region).
type MapResolver func(name string) (uint64, error)

// Executable is a program prepared for execution: decoded into wire
// slots and, when JIT is enabled, compiled to closures.
type Executable struct {
	slots []slot
	code  []compiledOp // nil when interpreting
	jit   bool
}

// NewExecutable prepares assembled instructions for execution.
// Symbolic jump references must already be resolved (asm.Assemble);
// map pseudo-loads are resolved through resolve, which may be nil if
// the program contains none.
func NewExecutable(insns asm.Instructions, resolve MapResolver, jit bool) (*Executable, error) {
	slots, err := expand(insns, resolve)
	if err != nil {
		return nil, err
	}
	ex := &Executable{slots: slots, jit: jit}
	if jit {
		ex.code, err = compile(slots)
		if err != nil {
			return nil, err
		}
	}
	return ex, nil
}

// JIT reports whether the executable was compiled.
func (ex *Executable) JIT() bool { return ex.jit }

// Len returns the wire slot count.
func (ex *Executable) Len() int { return len(ex.slots) }

func expand(insns asm.Instructions, resolve MapResolver) ([]slot, error) {
	out := make([]slot, 0, len(insns)+4)
	for i, ins := range insns {
		if ins.Reference != "" {
			return nil, fmt.Errorf("vm: instruction %d has unresolved reference %q", i, ins.Reference)
		}
		s := slot{
			op:  ins.OpCode,
			dst: uint8(ins.Dst),
			src: uint8(ins.Src),
			off: ins.Offset,
			imm: ins.Constant,
		}
		if ins.IsLoadFromMap() {
			if resolve == nil {
				return nil, fmt.Errorf("vm: instruction %d loads map %q but no resolver given", i, ins.MapName)
			}
			handle, err := resolve(ins.MapName)
			if err != nil {
				return nil, fmt.Errorf("vm: instruction %d: %w", i, err)
			}
			s.imm = int64(handle)
			s.src = 0 // consumed; the engine sees a plain lddw
		}
		decode(&s, len(out))
		out = append(out, s)
		if ins.OpCode == asm.LoadImm64(0, 0).OpCode {
			out = append(out, slot{kind: uPad})
		}
	}
	return out, nil
}

// decode resolves the opcode of s (at slot index pc) into a micro-op.
// Invalid encodings become uBad and fault at execution time, matching
// the interpreter's historical behaviour.
func decode(s *slot, pc int) {
	op := s.op
	s.operand = uint64(int64(int32(s.imm))) // sign-extend once
	s.target = int32(pc + 1 + int(s.off))

	switch class := op.Class(); class {
	case asm.ClassALU64, asm.ClassALU:
		wide := class == asm.ClassALU64
		s.aluop = op.ALUOp()
		switch s.aluop {
		case asm.Neg:
			if wide {
				s.kind = uNeg64
			} else {
				s.kind = uNeg32
			}
		case asm.Swap:
			s.kind = uSwap
			s.src = 0
			if op.Source() == asm.RegSource {
				s.src = 1 // to big-endian
			}
		default:
			switch {
			case wide && op.Source() == asm.RegSource:
				s.kind = uALU64Reg
			case wide:
				s.kind = uALU64Imm
			case op.Source() == asm.RegSource:
				s.kind = uALU32Reg
			default:
				s.kind = uALU32Imm
			}
		}

	case asm.ClassJump, asm.ClassJump32:
		wide := class == asm.ClassJump
		s.jumpop = op.JumpOp()
		switch s.jumpop {
		case asm.Exit:
			s.kind = uExit
		case asm.Call:
			s.kind = uCall
		case asm.Ja:
			s.kind = uJa
		default:
			switch {
			case wide && op.Source() == asm.RegSource:
				s.kind = uJmpReg
			case wide:
				s.kind = uJmpImm
			case op.Source() == asm.RegSource:
				s.kind = uJmp32Reg
			default:
				s.kind = uJmp32Imm
			}
		}

	case asm.ClassLdX:
		s.kind = uLoad
		s.size = uint8(op.Size().Bytes())

	case asm.ClassStX:
		s.size = uint8(op.Size().Bytes())
		if op.Mode() == asm.ModeXadd {
			s.kind = uXadd
		} else {
			s.kind = uStoreReg
		}

	case asm.ClassSt:
		s.kind = uStoreImm
		s.size = uint8(op.Size().Bytes())

	case asm.ClassLd:
		if op == asm.LoadImm64(0, 0).OpCode {
			s.kind = uLdImm64
			s.target = int32(pc + 2) // skip the pad slot
		} else {
			s.kind = uBad
		}

	default:
		s.kind = uBad
	}
}

// Machine is the mutable state of one or more executions. It is not
// safe for concurrent use; create one machine per goroutine.
type Machine struct {
	// Regs is the architectural register file.
	Regs [11]uint64
	// Mem is the address space. The stack segment is installed by
	// NewMachine; callers install ctx/packet segments per run.
	Mem *Memory
	// Helpers dispatches call instructions.
	Helpers *HelperTable
	// Executed counts instructions retired across runs; the
	// simulator's cost model reads it. Reset it at will.
	Executed uint64
	// HelperCalls counts helper invocations across runs (helpers run
	// native code, so the cost model charges them separately).
	HelperCalls uint64
	// MaxInstructions bounds one Run; 0 means DefaultMaxInstructions.
	MaxInstructions uint64
	// HelperContext carries the execution environment helpers need
	// (the packet being processed, the owning node, etc.). Typed as
	// any to keep the VM independent of upper layers.
	HelperContext any
	// HelperCounts, when non-nil, receives a per-helper-ID invocation
	// count alongside the aggregate HelperCalls counter. Attachments
	// point this at their own table to build helper histograms.
	HelperCounts *[MaxHelperID]uint64

	stack []byte
	trap  error // fault raised inside compiled code
}

// NewMachine builds a machine with a fresh stack segment installed
// into mem.
func NewMachine(mem *Memory, helpers *HelperTable) *Machine {
	m := &Machine{
		Mem:     mem,
		Helpers: helpers,
		stack:   make([]byte, StackSize),
	}
	mem.SetSegment(RegionStack, &Segment{Data: m.stack, Writable: true})
	return m
}

// Stack exposes the stack buffer (tests use it).
func (m *Machine) Stack() []byte { return m.stack }

// resetForRun prepares registers for a fresh execution. R1 (the
// context argument) must be set by the caller after this.
func (m *Machine) resetForRun() {
	for i := range m.Regs {
		m.Regs[i] = 0
	}
	for i := range m.stack {
		m.stack[i] = 0
	}
	m.Regs[10] = Pointer(RegionStack, StackSize)
}

// Run executes ex with ctx in R1 and returns R0.
func (m *Machine) Run(ex *Executable, ctx uint64) (uint64, error) {
	m.resetForRun()
	m.Regs[1] = ctx
	if ex.jit {
		return m.runJIT(ex)
	}
	return m.runInterp(ex)
}

func (m *Machine) budget() uint64 {
	if m.MaxInstructions != 0 {
		return m.MaxInstructions
	}
	return DefaultMaxInstructions
}

// callHelper dispatches a helper call and applies the kernel's
// register clobbering rules: r1-r5 become scratch, r0 receives the
// result.
func (m *Machine) callHelper(id int64) error {
	if id < 0 || id >= maxHelperID || m.Helpers == nil || m.Helpers[id] == nil {
		return fmt.Errorf("%w: id %d", ErrUnknownHelper, id)
	}
	m.HelperCalls++
	if m.HelperCounts != nil {
		m.HelperCounts[id]++
	}
	ret, err := m.Helpers[id](m, m.Regs[1], m.Regs[2], m.Regs[3], m.Regs[4], m.Regs[5])
	if err != nil {
		return fmt.Errorf("vm: helper %d: %w", id, err)
	}
	m.Regs[0] = ret
	m.Regs[1], m.Regs[2], m.Regs[3], m.Regs[4], m.Regs[5] = 0, 0, 0, 0, 0
	return nil
}

// ALU semantics shared by both engines.

func swapBytes(v uint64, bits int64, toBE bool) uint64 {
	switch bits {
	case 16:
		x := uint16(v)
		if toBE {
			x = x<<8 | x>>8
		}
		return uint64(x)
	case 32:
		x := uint32(v)
		if toBE {
			x = x<<24 | x<<8&0x00ff0000 | x>>8&0x0000ff00 | x>>24
		}
		return uint64(x)
	case 64:
		if !toBE {
			return v
		}
		return v<<56 | v<<40&(0xff<<48) | v<<24&(0xff<<40) | v<<8&(0xff<<32) |
			v>>8&(0xff<<24) | v>>24&(0xff<<16) | v>>40&(0xff<<8) | v>>56
	default:
		return v
	}
}

// alu64 applies a 64-bit ALU op. Division and modulo by zero follow
// kernel semantics: DIV yields 0, MOD leaves dst unchanged.
func alu64(op asm.ALUOp, dst, src uint64) uint64 {
	switch op {
	case asm.Add:
		return dst + src
	case asm.Sub:
		return dst - src
	case asm.Mul:
		return dst * src
	case asm.Div:
		if src == 0 {
			return 0
		}
		return dst / src
	case asm.Or:
		return dst | src
	case asm.And:
		return dst & src
	case asm.LSh:
		return dst << (src & 63)
	case asm.RSh:
		return dst >> (src & 63)
	case asm.Mod:
		if src == 0 {
			return dst
		}
		return dst % src
	case asm.Xor:
		return dst ^ src
	case asm.Mov:
		return src
	case asm.ArSh:
		return uint64(int64(dst) >> (src & 63))
	default:
		return dst
	}
}

// alu32 applies a 32-bit ALU op with zero extension of the result.
func alu32(op asm.ALUOp, dst, src uint64) uint64 {
	d, s := uint32(dst), uint32(src)
	switch op {
	case asm.Add:
		return uint64(d + s)
	case asm.Sub:
		return uint64(d - s)
	case asm.Mul:
		return uint64(d * s)
	case asm.Div:
		if s == 0 {
			return 0
		}
		return uint64(d / s)
	case asm.Or:
		return uint64(d | s)
	case asm.And:
		return uint64(d & s)
	case asm.LSh:
		return uint64(d << (s & 31))
	case asm.RSh:
		return uint64(d >> (s & 31))
	case asm.Mod:
		if s == 0 {
			return uint64(d)
		}
		return uint64(d % s)
	case asm.Xor:
		return uint64(d ^ s)
	case asm.Mov:
		return uint64(s)
	case asm.ArSh:
		return uint64(uint32(int32(d) >> (s & 31)))
	default:
		return uint64(d)
	}
}

// jumpTaken evaluates a conditional jump predicate.
func jumpTaken(op asm.JumpOp, dst, src uint64, wide bool) bool {
	if !wide {
		dst, src = uint64(uint32(dst)), uint64(uint32(src))
	}
	switch op {
	case asm.JEq:
		return dst == src
	case asm.JNE:
		return dst != src
	case asm.JGT:
		return dst > src
	case asm.JGE:
		return dst >= src
	case asm.JLT:
		return dst < src
	case asm.JLE:
		return dst <= src
	case asm.JSet:
		return dst&src != 0
	case asm.JSGT, asm.JSGE, asm.JSLT, asm.JSLE:
		var a, b int64
		if wide {
			a, b = int64(dst), int64(src)
		} else {
			a, b = int64(int32(uint32(dst))), int64(int32(uint32(src)))
		}
		switch op {
		case asm.JSGT:
			return a > b
		case asm.JSGE:
			return a >= b
		case asm.JSLT:
			return a < b
		default:
			return a <= b
		}
	default:
		return false
	}
}
