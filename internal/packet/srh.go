package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strings"
)

// SRH wire layout (draft-ietf-6man-segment-routing-header, the format
// the paper's kernel implements):
//
//	 0                   1                   2                   3
//	 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//	+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//	| Next Header   |  Hdr Ext Len  | Routing Type  | Segments Left |
//	+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//	|  Last Entry   |     Flags     |              Tag              |
//	+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//	|            Segment List[0..n] (128 bits each)                 |
//	+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//	//                     Optional TLVs                           //
//	+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+

// SRHRoutingType is the routing header type for segment routing.
const SRHRoutingType = 4

// SRHFixedLen is the SRH size before segments and TLVs.
const SRHFixedLen = 8

// Byte offsets of SRH fields relative to the SRH start. The eBPF
// network functions address fields with these.
const (
	SRHOffNextHeader   = 0
	SRHOffHdrExtLen    = 1
	SRHOffRoutingType  = 2
	SRHOffSegmentsLeft = 3
	SRHOffLastEntry    = 4
	SRHOffFlags        = 5
	SRHOffTag          = 6
	SRHOffSegments     = 8
)

// SRH is a decoded segment routing header.
type SRH struct {
	NextHeader   uint8
	SegmentsLeft uint8
	LastEntry    uint8
	Flags        uint8
	Tag          uint16
	// Segments in wire order: Segments[0] is the LAST segment of the
	// path (segments are reversed on the wire).
	Segments []netip.Addr
	// TLVs follow the segment list.
	TLVs []TLV
}

// WireLen returns the encoded size in bytes.
func (s *SRH) WireLen() int {
	n := SRHFixedLen + 16*len(s.Segments)
	for _, t := range s.TLVs {
		n += t.wireLen()
	}
	return n
}

// HdrExtLen computes the length field: 8-byte units beyond the first 8.
func (s *SRH) HdrExtLen() (uint8, error) {
	n := s.WireLen()
	if n%8 != 0 {
		return 0, fmt.Errorf("%w: length %d not a multiple of 8 (pad TLVs)", ErrBadSRH, n)
	}
	units := n/8 - 1
	if units > 255 {
		return 0, fmt.Errorf("%w: too long", ErrBadSRH)
	}
	return uint8(units), nil
}

// ActiveSegment returns the segment the packet should be routed to
// next: Segments[SegmentsLeft].
func (s *SRH) ActiveSegment() (netip.Addr, error) {
	if int(s.SegmentsLeft) >= len(s.Segments) {
		return netip.Addr{}, fmt.Errorf("%w: segments_left %d of %d", ErrBadSRH, s.SegmentsLeft, len(s.Segments))
	}
	return s.Segments[s.SegmentsLeft], nil
}

// Encode appends the SRH to dst.
func (s *SRH) Encode(dst []byte) ([]byte, error) {
	hel, err := s.HdrExtLen()
	if err != nil {
		return nil, err
	}
	var fixed [SRHFixedLen]byte
	fixed[SRHOffNextHeader] = s.NextHeader
	fixed[SRHOffHdrExtLen] = hel
	fixed[SRHOffRoutingType] = SRHRoutingType
	fixed[SRHOffSegmentsLeft] = s.SegmentsLeft
	fixed[SRHOffLastEntry] = s.LastEntry
	fixed[SRHOffFlags] = s.Flags
	binary.BigEndian.PutUint16(fixed[SRHOffTag:], s.Tag)
	dst = append(dst, fixed[:]...)
	for _, seg := range s.Segments {
		a := seg.As16()
		dst = append(dst, a[:]...)
	}
	for _, t := range s.TLVs {
		dst = t.encode(dst)
	}
	return dst, nil
}

// srhStructure applies the structural checks every SRH consumer
// agrees on — fixed-header presence, routing type, HdrExtLen bound,
// segment list within the header, segments_left within the list —
// and returns the wire length and the two list fields. DecodeSRH,
// ValidateSRHBytes and ParseInfo all go through it, so the datapath's
// entry walk, the post-program revalidation and the full decoder
// cannot drift apart. It allocates nothing.
func srhStructure(b []byte) (total int, segsLeft, lastEntry uint8, err error) {
	if len(b) < SRHFixedLen {
		return 0, 0, 0, fmt.Errorf("%w: SRH fixed header", ErrTruncated)
	}
	if b[SRHOffRoutingType] != SRHRoutingType {
		return 0, 0, 0, fmt.Errorf("%w: routing type %d", ErrBadSRH, b[SRHOffRoutingType])
	}
	total = (int(b[SRHOffHdrExtLen]) + 1) * 8
	if len(b) < total {
		return 0, 0, 0, fmt.Errorf("%w: SRH says %d bytes, have %d", ErrTruncated, total, len(b))
	}
	segsLeft, lastEntry = b[SRHOffSegmentsLeft], b[SRHOffLastEntry]
	nSegs := int(lastEntry) + 1
	if SRHFixedLen+16*nSegs > total {
		return 0, 0, 0, fmt.Errorf("%w: %d segments exceed header length", ErrBadSRH, nSegs)
	}
	// segments_left == last_entry + 1 is the reduced encapsulation of
	// RFC 8986 §5.2 (H.Encaps.Red / End.B6.Encaps.Red): the first
	// segment rides in the destination address only and is omitted
	// from the list, so the active index points one past it. Linux's
	// seg6_validate_srh accepts the same transient shape.
	if int(segsLeft) > int(lastEntry)+1 {
		return 0, 0, 0, fmt.Errorf("%w: segments_left %d > last_entry %d + 1", ErrBadSRH, segsLeft, lastEntry)
	}
	return total, segsLeft, lastEntry, nil
}

// DecodeSRH parses an SRH at the start of b, returning it and its
// wire length.
func DecodeSRH(b []byte) (SRH, int, error) {
	var s SRH
	n, err := decodeSRHInto(&s, b)
	return s, n, err
}

// decodeSRHInto is DecodeSRH into caller-owned storage: s is reset
// and refilled, reusing its Segments and TLVs backing arrays. It is
// the allocation-free decode behind packet.ParseInto.
func decodeSRHInto(s *SRH, b []byte) (int, error) {
	total, segsLeft, lastEntry, err := srhStructure(b)
	if err != nil {
		return 0, err
	}
	s.NextHeader = b[SRHOffNextHeader]
	s.SegmentsLeft = segsLeft
	s.LastEntry = lastEntry
	s.Flags = b[SRHOffFlags]
	s.Tag = binary.BigEndian.Uint16(b[SRHOffTag:])

	nSegs := int(lastEntry) + 1
	segBytes := 16 * nSegs
	s.Segments = s.Segments[:0]
	for i := 0; i < nSegs; i++ {
		off := SRHFixedLen + 16*i
		s.Segments = append(s.Segments, netip.AddrFrom16([16]byte(b[off:off+16])))
	}
	tlvs, err := decodeTLVsInto(s.TLVs[:0], b[SRHFixedLen+segBytes:total])
	if err != nil {
		return 0, err
	}
	s.TLVs = tlvs
	return total, nil
}

// Summary renders the SRH compactly.
func (s *SRH) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SRH[sl=%d", s.SegmentsLeft)
	for i := len(s.Segments) - 1; i >= 0; i-- {
		sep := " "
		if i == len(s.Segments)-1 {
			sep = " path="
		}
		fmt.Fprintf(&b, "%s%s", sep, s.Segments[i])
	}
	if s.Tag != 0 {
		fmt.Fprintf(&b, " tag=%d", s.Tag)
	}
	for _, t := range s.TLVs {
		fmt.Fprintf(&b, " %s", t.summary())
	}
	b.WriteString("]")
	return b.String()
}

// ValidateSRHBytes checks that the byte range holds a structurally
// valid SRH. The End.BPF hook calls this after a program used
// seg6_store_bytes / seg6_adjust_srh, implementing §3.1: "If the SRH
// has been altered by the BPF program, a quick verification is
// performed to ensure that it is still valid ... otherwise it is
// dropped."
// The checks are those of DecodeSRH (shared via srhStructure and a
// validate-only TLV walk), applied without building the decoded form,
// so revalidation does not allocate on the datapath.
func ValidateSRHBytes(b []byte) error {
	total, _, lastEntry, err := srhStructure(b)
	if err != nil {
		return err
	}
	return validateTLVs(b[SRHFixedLen+16*(int(lastEntry)+1) : total])
}
