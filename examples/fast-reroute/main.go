// Fast reroute with eBPF failure detection (the follow-up use case to
// the paper: "Flexible failure detection and fast reroute using eBPF
// and SRv6"). A protecting router P continuously probes its
// neighbour D across the primary link with SRv6 liveness probes; an
// End.BPF tracker refreshes a last-seen hash map for every returning
// probe, and after K consecutive misses the detector flips a state
// map read per packet by an LWT steering program — which then pushes
// the precomputed backup segment list [B's End SID, backup decap SID]
// with bpf_lwt_push_encap, detouring traffic around the cut.
//
//	src --- P ====(primary, CUT AT t=50ms)==== D --- dst
//	         \                                /
//	          +----------- B ---------------+   (backup detour)
//
// The run is fully deterministic: same seed, same packet-by-packet
// timeline.
//
// Run with: go run ./examples/fast-reroute
package main

import (
	"fmt"
	"log"
	"net/netip"

	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/nf/frr"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
)

var (
	srcAddr  = netip.MustParseAddr("2001:db8:1::1")
	pAddr    = netip.MustParseAddr("2001:db8:10::1")
	dAddr    = netip.MustParseAddr("2001:db8:20::1")
	bAddr    = netip.MustParseAddr("2001:db8:30::1")
	dstAddr  = netip.MustParseAddr("2001:db8:2::1")
	nbrSID   = netip.MustParseAddr("fc00:20::ee") // D's End SID (probe bounce)
	primSID  = netip.MustParseAddr("fc00:20::d6") // decap SID over the primary
	detourS  = netip.MustParseAddr("fc00:30::e")  // B's End SID
	bkDecap  = netip.MustParseAddr("fc00:21::d6") // decap SID reachable via B
	trackSID = netip.MustParseAddr("fc00:10::7a") // P's probe tracker
	probeTo  = netip.MustParseAddr("fc00:f0::1")  // probe trigger address
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

const (
	probeInterval = 5 * netsim.Millisecond
	misses        = 3
	failAt        = 50*netsim.Millisecond - 25*netsim.Microsecond
	restoreAt     = 120 * netsim.Millisecond
	trafficGap    = 25 * netsim.Microsecond // 40 kpps
	runFor        = 180 * netsim.Millisecond
	binNs         = 10 * netsim.Millisecond
)

func main() {
	sim := netsim.New(2024)
	src := sim.AddNode("src", netsim.HostCostModel())
	p := sim.AddNode("P", netsim.ServerCostModel())
	d := sim.AddNode("D", netsim.ServerCostModel())
	b := sim.AddNode("B", netsim.ServerCostModel())
	dst := sim.AddNode("dst", netsim.HostCostModel())
	src.AddAddress(srcAddr)
	p.AddAddress(pAddr)
	d.AddAddress(dAddr)
	b.AddAddress(bAddr)
	dst.AddAddress(dstAddr)

	edge := netem.Config{RateBps: 1e10, DelayNs: 10 * netsim.Microsecond}
	primary := netem.Config{RateBps: 1e10, DelayNs: 100 * netsim.Microsecond}
	detour := netem.Config{RateBps: 1e10, DelayNs: 60 * netsim.Microsecond}

	srcIf, psIf := netsim.ConnectSymmetric(src, p, edge)
	pdIf, dpIf := netsim.ConnectSymmetric(p, d, primary)
	pbIf, _ := netsim.ConnectSymmetric(p, b, detour)
	bdIf, _ := netsim.ConnectSymmetric(b, d, detour)
	dtIf, dstIf := netsim.ConnectSymmetric(d, dst, edge)

	src.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: srcIf}}})
	dst.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: dstIf}}})
	p.AddRoute(&netsim.Route{Prefix: pfx("fc00:20::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: pdIf}}})
	p.AddRoute(&netsim.Route{Prefix: pfx("fc00:30::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: pbIf}}})
	p.AddRoute(&netsim.Route{Prefix: pfx("fc00:21::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: pbIf}}})
	p.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:1::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: psIf}}})
	b.AddRoute(&netsim.Route{Prefix: netip.PrefixFrom(detourS, 128), Kind: netsim.RouteSeg6Local,
		Behaviour: &seg6.Behaviour{Action: seg6.ActionEnd}})
	b.AddRoute(&netsim.Route{Prefix: pfx("fc00:21::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: bdIf}}})
	d.AddRoute(&netsim.Route{Prefix: netip.PrefixFrom(nbrSID, 128), Kind: netsim.RouteSeg6Local,
		Behaviour: &seg6.Behaviour{Action: seg6.ActionEnd}})
	for _, sid := range []netip.Addr{primSID, bkDecap} {
		d.AddRoute(&netsim.Route{Prefix: netip.PrefixFrom(sid, 128), Kind: netsim.RouteSeg6Local,
			Behaviour: &seg6.Behaviour{Action: seg6.ActionEndDT6, Table: netsim.MainTable}})
	}
	d.AddRoute(&netsim.Route{Prefix: pfx("fc00:10::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: dpIf}}})
	d.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:2::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: dtIf}}})

	// The fast-reroute network function on P.
	f, err := frr.New(p, frr.Config{
		TrackSID:      trackSID,
		ProbeInterval: probeInterval,
		Misses:        misses,
		JIT:           true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := f.AddNeighbor(frr.Neighbor{ID: 1, ProbeAddr: probeTo, SID: nbrSID, Iface: pdIf}); err != nil {
		log.Fatal(err)
	}
	if err := f.Protect(frr.Protection{
		Prefix:     pfx("2001:db8:2::/48"),
		NeighborID: 1,
		PrimarySID: primSID,
		Backup:     []netip.Addr{detourS, bkDecap},
	}); err != nil {
		log.Fatal(err)
	}
	f.OnTransition = func(tr frr.Transition) {
		state := "DOWN -> steering onto backup [fc00:30::e, fc00:21::d6]"
		if tr.Up {
			state = "UP   -> back on the primary SID fc00:20::d6"
		}
		fmt.Printf("t=%6.1f ms  detector: neighbour %d %s\n", float64(tr.At)/1e6, tr.NeighborID, state)
	}
	f.Start()

	// Which path does each delivered packet take? Tap both of P's
	// candidate egresses. The first transmission on the backup egress
	// marks the moment protection engaged: recovery is measured
	// against deliveries from that instant on, so a pre-failure packet
	// still in flight on the primary cannot fake an instant recovery.
	viaPrimary, viaBackup := 0, 0
	var firstBackupTx int64 = -1
	pdIf.Tap = func(raw []byte) {
		if pkt, err := packet.Parse(raw); err == nil && pkt.IPv6.Dst == primSID {
			viaPrimary++
		}
	}
	pbIf.Tap = func(raw []byte) {
		if pkt, err := packet.Parse(raw); err == nil && pkt.IPv6.Dst == detourS {
			viaBackup++
			if firstBackupTx < 0 {
				firstBackupTx = sim.Now()
			}
		}
	}

	// Constant traffic and a per-10ms delivery histogram.
	bins := make([]int, int(runFor/binNs))
	var delivered, firstViaBackup int64
	firstViaBackup = -1
	dst.HandleUDP(9999, func(n *netsim.Node, pkt *packet.Packet, meta *netsim.PacketMeta) {
		delivered++
		if firstViaBackup < 0 && firstBackupTx >= 0 && meta.RxTimestamp >= firstBackupTx {
			firstViaBackup = meta.RxTimestamp
		}
		if bin := int(meta.RxTimestamp / binNs); bin < len(bins) {
			bins[bin]++
		}
	})
	offered := 0
	for at := int64(0); at < runFor; at += trafficGap {
		at := at
		sim.Schedule(at, func() {
			raw, err := packet.BuildPacket(srcAddr, dstAddr,
				packet.WithUDP(5000, 9999), packet.WithPayload(make([]byte, 64)))
			if err != nil {
				log.Fatal(err)
			}
			src.Output(raw)
		})
		offered++
	}

	sim.FailLink(failAt, pdIf)
	sim.RestoreLink(restoreAt, pdIf)
	fmt.Printf("t=%6.1f ms  PRIMARY LINK CUT (scheduled)\n", float64(failAt)/1e6)
	fmt.Printf("t=%6.1f ms  primary link restore (scheduled)\n\n", float64(restoreAt)/1e6)

	sim.RunUntil(runFor)
	f.Stop()
	sim.Run()

	fmt.Println("delivered per 10 ms bin (40 kpps offered -> 400/bin when healthy):")
	for i, n := range bins {
		marker := ""
		switch {
		case int64(i)*binNs <= failAt && failAt < int64(i+1)*binNs:
			marker = "  <- link cut"
		case int64(i)*binNs <= restoreAt && restoreAt < int64(i+1)*binNs:
			marker = "  <- link restored"
		}
		fmt.Printf("  %3d-%3d ms %5d%s\n", i*10, (i+1)*10, n, marker)
	}

	recovery := float64(firstViaBackup-failAt) / 1e6
	budget := float64(int64(misses)*probeInterval+2*(100*netsim.Microsecond+20*netsim.Microsecond)) / 1e6
	fmt.Printf("\noffered %d, delivered %d, lost %d\n", offered, delivered, int64(offered)-delivered)
	fmt.Printf("probe interval %.0f ms, K=%d misses\n", float64(probeInterval)/1e6, misses)
	fmt.Printf("recovery (failure -> first packet via backup): %.3f ms\n", recovery)
	fmt.Printf("bound (K x interval + probe RTT):              %.3f ms\n", budget)
	fmt.Printf("path split at P: %d packets via primary SID, %d via backup segment list\n", viaPrimary, viaBackup)
}
