// Package vm executes verified eBPF programs.
//
// Two engines are provided: a fetch-decode interpreter and a "JIT"
// that pre-compiles every instruction into a directly-threaded chain
// of Go closures. The JIT models the kernel's eBPF JIT compiler: both
// engines implement identical semantics (a property test asserts
// this), but the JIT avoids per-step decode work and is measurably
// faster — the performance gap that §3.2 of the paper quantifies as a
// factor of 1.8 on whole-router throughput.
//
// Memory safety follows the kernel model: programs only ever hold
// region-tagged pointers (stack, context, packet, map values), and
// every access is bounds-checked against its region. The verifier
// enforces structural properties before execution; the VM's runtime
// checks are the second line of defence.
package vm

// Pointers are 64-bit values with a region ID in the top 16 bits and
// a byte offset in the low 48. Region 0 is reserved: values with a
// zero region are plain scalars, so NULL (0) is naturally a scalar.
const (
	regionShift = 48
	offsetMask  = (uint64(1) << regionShift) - 1
)

// RegionID identifies a memory region within a Machine.
type RegionID uint16

// Well-known regions. Dynamic regions (map arenas, helper-provided
// buffers) are allocated from RegionDynamicBase upward.
const (
	RegionScalar RegionID = 0 // not a memory region
	RegionStack  RegionID = 1
	RegionCtx    RegionID = 2
	RegionPacket RegionID = 3

	RegionDynamicBase RegionID = 8
)

// Pointer builds a tagged pointer into region r at offset off.
func Pointer(r RegionID, off uint64) uint64 {
	return uint64(r)<<regionShift | (off & offsetMask)
}

// Region extracts the region ID of a value. Zero means the value is
// a scalar.
func Region(v uint64) RegionID { return RegionID(v >> regionShift) }

// Offset extracts the in-region byte offset of a pointer.
func Offset(v uint64) uint64 { return v & offsetMask }

// IsPointer reports whether v carries a region tag.
func IsPointer(v uint64) bool { return Region(v) != RegionScalar }
