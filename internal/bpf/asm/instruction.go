package asm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// InstructionSize is the wire size of one instruction in bytes.
// LD_IMM64 occupies two consecutive slots.
const InstructionSize = 8

// PseudoMapFD marks the source register field of an LD_IMM64
// instruction as holding a map reference rather than a plain
// immediate, exactly as the kernel's BPF_PSEUDO_MAP_FD does.
const PseudoMapFD = Register(1)

// Instruction is a single eBPF instruction.
//
// Jumps may carry a symbolic target in Reference instead of a resolved
// Offset; map loads carry the map's name in MapName. Both are resolved
// when the program is assembled (see Instructions.Assemble) or loaded.
type Instruction struct {
	OpCode OpCode
	Dst    Register
	Src    Register
	Offset int16
	// Constant is the immediate operand. Only LD_IMM64 uses more than
	// the low 32 bits.
	Constant int64

	// Symbol names this instruction as a jump target.
	Symbol string
	// Reference is the symbol this jump targets. Mutually exclusive
	// with a resolved Offset.
	Reference string
	// MapName is the map referenced by an LD_IMM64 map pseudo-load.
	MapName string
}

// WithSymbol returns ins marked as a jump target named sym.
func (ins Instruction) WithSymbol(sym string) Instruction {
	ins.Symbol = sym
	return ins
}

// IsLoadFromMap reports whether the instruction is an LD_IMM64 map
// pseudo-load.
func (ins Instruction) IsLoadFromMap() bool {
	return ins.OpCode == opLdImm64 && ins.Src == PseudoMapFD
}

// isLdImm64 reports whether the instruction occupies two wire slots.
func (ins Instruction) isLdImm64() bool { return ins.OpCode == opLdImm64 }

// Append serializes the instruction to w in wire format,
// little-endian, as the kernel consumes it.
func (ins Instruction) Append(w io.Writer) error {
	if ins.Reference != "" {
		return fmt.Errorf("unresolved reference %q", ins.Reference)
	}
	var buf [InstructionSize]byte
	buf[0] = byte(ins.OpCode)
	buf[1] = byte(ins.Dst&0x0f) | byte(ins.Src&0x0f)<<4
	binary.LittleEndian.PutUint16(buf[2:4], uint16(ins.Offset))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(int32(ins.Constant)))
	if _, err := w.Write(buf[:]); err != nil {
		return err
	}
	if !ins.isLdImm64() {
		return nil
	}
	// Second slot: opcode zero, upper 32 bits of the constant.
	var buf2 [InstructionSize]byte
	binary.LittleEndian.PutUint32(buf2[4:8], uint32(uint64(ins.Constant)>>32))
	_, err := w.Write(buf2[:])
	return err
}

// Instructions is an eBPF program as a sequence of instructions.
type Instructions []Instruction

// Marshal serializes the program to wire format.
func (insns Instructions) Marshal(w io.Writer) error {
	for i, ins := range insns {
		if err := ins.Append(w); err != nil {
			return fmt.Errorf("instruction %d: %w", i, err)
		}
	}
	return nil
}

// Bytes returns the wire-format encoding of the program.
func (insns Instructions) Bytes() ([]byte, error) {
	var buf sliceWriter
	if err := insns.Marshal(&buf); err != nil {
		return nil, err
	}
	return buf, nil
}

type sliceWriter []byte

func (s *sliceWriter) Write(p []byte) (int, error) {
	*s = append(*s, p...)
	return len(p), nil
}

// WireLen returns the number of 8-byte wire slots the program
// occupies. LD_IMM64 instructions count twice.
func (insns Instructions) WireLen() int {
	n := 0
	for _, ins := range insns {
		n++
		if ins.isLdImm64() {
			n++
		}
	}
	return n
}

var errShortRead = errors.New("asm: truncated instruction stream")

// Disassemble decodes a wire-format program. LD_IMM64 pairs are fused
// back into single Instruction values.
func Disassemble(b []byte) (Instructions, error) {
	if len(b)%InstructionSize != 0 {
		return nil, errShortRead
	}
	var out Instructions
	for off := 0; off < len(b); off += InstructionSize {
		raw := b[off : off+InstructionSize]
		ins := Instruction{
			OpCode:   OpCode(raw[0]),
			Dst:      Register(raw[1] & 0x0f),
			Src:      Register(raw[1] >> 4),
			Offset:   int16(binary.LittleEndian.Uint16(raw[2:4])),
			Constant: int64(int32(binary.LittleEndian.Uint32(raw[4:8]))),
		}
		if ins.isLdImm64() {
			off += InstructionSize
			if off >= len(b) {
				return nil, errShortRead
			}
			hi := binary.LittleEndian.Uint32(b[off+4 : off+8])
			ins.Constant = int64(uint64(uint32(ins.Constant)) | uint64(hi)<<32)
		}
		out = append(out, ins)
	}
	return out, nil
}

// Assemble resolves symbolic jump references to PC-relative offsets
// and validates basic structural properties. It returns a copy;
// the receiver is not modified.
//
// Offsets are measured in wire slots, so LD_IMM64 instructions count
// as two, matching kernel semantics.
func (insns Instructions) Assemble() (Instructions, error) {
	// First pass: record the wire offset of every symbol.
	symbols := make(map[string]int)
	wire := 0
	for i, ins := range insns {
		if ins.Symbol != "" {
			if _, dup := symbols[ins.Symbol]; dup {
				return nil, fmt.Errorf("asm: duplicate symbol %q at instruction %d", ins.Symbol, i)
			}
			symbols[ins.Symbol] = wire
		}
		wire++
		if ins.isLdImm64() {
			wire++
		}
	}

	out := make(Instructions, len(insns))
	copy(out, insns)

	wire = 0
	for i := range out {
		ins := &out[i]
		cur := wire
		wire++
		if ins.isLdImm64() {
			wire++
		}
		if ins.Reference == "" {
			continue
		}
		if !ins.OpCode.Class().isJump() || ins.OpCode.JumpOp() == Exit || ins.OpCode.JumpOp() == Call {
			return nil, fmt.Errorf("asm: instruction %d (%v) cannot carry reference %q", i, ins.OpCode, ins.Reference)
		}
		target, ok := symbols[ins.Reference]
		if !ok {
			return nil, fmt.Errorf("asm: undefined symbol %q at instruction %d", ins.Reference, i)
		}
		delta := target - cur - 1
		if delta < math.MinInt16 || delta > math.MaxInt16 {
			return nil, fmt.Errorf("asm: jump to %q out of int16 range at instruction %d", ins.Reference, i)
		}
		ins.Offset = int16(delta)
		ins.Reference = ""
	}
	return out, nil
}

// String renders a readable disassembly listing.
func (insns Instructions) String() string {
	var buf sliceWriter
	wire := 0
	for _, ins := range insns {
		if ins.Symbol != "" {
			fmt.Fprintf(&buf, "%s:\n", ins.Symbol)
		}
		fmt.Fprintf(&buf, "%4d: %s\n", wire, ins.format())
		wire++
		if ins.isLdImm64() {
			wire++
		}
	}
	return string(buf)
}

func (ins Instruction) String() string { return ins.format() }

func (ins Instruction) format() string {
	op := ins.OpCode
	class := op.Class()
	switch {
	case ins.isLdImm64():
		if ins.IsLoadFromMap() {
			name := ins.MapName
			if name == "" {
				name = fmt.Sprintf("#%d", ins.Constant)
			}
			return fmt.Sprintf("%v = map[%s]", ins.Dst, name)
		}
		return fmt.Sprintf("%v = %#x ll", ins.Dst, uint64(ins.Constant))
	case class.isALU():
		if op.ALUOp() == Swap {
			dir := "le"
			if op.Source() == RegSource {
				dir = "be"
			}
			return fmt.Sprintf("%v = %s%d %v", ins.Dst, dir, ins.Constant, ins.Dst)
		}
		suffix := ""
		if class == ClassALU {
			suffix = " (u32)"
		}
		if op.ALUOp() == Neg {
			return fmt.Sprintf("%v = -%v%s", ins.Dst, ins.Dst, suffix)
		}
		if op.Source() == RegSource {
			return fmt.Sprintf("%v %s= %v%s", ins.Dst, aluSym(op.ALUOp()), ins.Src, suffix)
		}
		return fmt.Sprintf("%v %s= %d%s", ins.Dst, aluSym(op.ALUOp()), int32(ins.Constant), suffix)
	case class.isJump():
		switch op.JumpOp() {
		case Exit:
			return "exit"
		case Call:
			return fmt.Sprintf("call #%d", ins.Constant)
		case Ja:
			return fmt.Sprintf("goto %s", ins.target())
		default:
			operand := fmt.Sprintf("%d", int32(ins.Constant))
			if op.Source() == RegSource {
				operand = ins.Src.String()
			}
			return fmt.Sprintf("if %v %s %s goto %s", ins.Dst, jumpSym(op.JumpOp()), operand, ins.target())
		}
	case class == ClassLdX:
		return fmt.Sprintf("%v = *(%s *)(%v %+d)", ins.Dst, op.Size(), ins.Src, ins.Offset)
	case class == ClassSt:
		return fmt.Sprintf("*(%s *)(%v %+d) = %d", op.Size(), ins.Dst, ins.Offset, int32(ins.Constant))
	case class == ClassStX:
		if op.Mode() == ModeXadd {
			return fmt.Sprintf("lock *(%s *)(%v %+d) += %v", op.Size(), ins.Dst, ins.Offset, ins.Src)
		}
		return fmt.Sprintf("*(%s *)(%v %+d) = %v", op.Size(), ins.Dst, ins.Offset, ins.Src)
	default:
		return fmt.Sprintf("raw op=%#02x dst=%v src=%v off=%d imm=%d", uint8(op), ins.Dst, ins.Src, ins.Offset, ins.Constant)
	}
}

func (ins Instruction) target() string {
	if ins.Reference != "" {
		return ins.Reference
	}
	return fmt.Sprintf("%+d", ins.Offset)
}

func aluSym(op ALUOp) string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	case Or:
		return "|"
	case And:
		return "&"
	case LSh:
		return "<<"
	case RSh:
		return ">>"
	case Mod:
		return "%"
	case Xor:
		return "^"
	case Mov:
		return ""
	case ArSh:
		return "s>>"
	default:
		return "?"
	}
}

func jumpSym(op JumpOp) string {
	switch op {
	case JEq:
		return "=="
	case JGT:
		return ">"
	case JGE:
		return ">="
	case JSet:
		return "&"
	case JNE:
		return "!="
	case JSGT:
		return "s>"
	case JSGE:
		return "s>="
	case JLT:
		return "<"
	case JLE:
		return "<="
	case JSLT:
		return "s<"
	case JSLE:
		return "s<="
	default:
		return "?"
	}
}
