package oamp

import (
	"net/netip"
	"strings"
	"testing"

	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
)

var (
	probAddr = netip.MustParseAddr("2001:db8:0::1")
	r1Addr   = netip.MustParseAddr("2001:db8:101::1")
	r2aAddr  = netip.MustParseAddr("2001:db8:102::1")
	r2bAddr  = netip.MustParseAddr("2001:db8:103::1")
	tgtAddr  = netip.MustParseAddr("2001:db8:fff::1")

	r1SID = netip.MustParseAddr("fc00:101::aa")
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// diamond builds P -- R1 ==(ECMP: R2a | R2b)== T. R1 runs End.OAMP.
func diamond(t *testing.T) (*netsim.Sim, *netsim.Node, map[netip.Addr]netip.Addr) {
	t.Helper()
	s := netsim.New(9)
	p := s.AddNode("P", netsim.HostCostModel())
	r1 := s.AddNode("R1", netsim.ServerCostModel())
	r2a := s.AddNode("R2a", netsim.ServerCostModel())
	r2b := s.AddNode("R2b", netsim.ServerCostModel())
	tgt := s.AddNode("T", netsim.HostCostModel())

	p.AddAddress(probAddr)
	r1.AddAddress(r1Addr)
	r2a.AddAddress(r2aAddr)
	r2b.AddAddress(r2bAddr)
	tgt.AddAddress(tgtAddr)

	fast := netem.Config{RateBps: 10_000_000_000, DelayNs: 100 * netsim.Microsecond}
	pIf, r1pIf := netsim.ConnectSymmetric(p, r1, fast)
	r1aIf, r2ar1 := netsim.ConnectSymmetric(r1, r2a, fast)
	r1bIf, r2br1 := netsim.ConnectSymmetric(r1, r2b, fast)
	r2aT, tAIf := netsim.ConnectSymmetric(r2a, tgt, fast)
	r2bT, tBIf := netsim.ConnectSymmetric(r2b, tgt, fast)

	p.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: pIf}}})
	tgt.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tAIf}, {Iface: tBIf}}})

	// R1: ECMP towards the target over both R2s.
	r1.AddRoute(&netsim.Route{
		Prefix: pfx("2001:db8:fff::/48"), Kind: netsim.RouteForward,
		Nexthops: []netsim.Nexthop{{Iface: r1aIf}, {Iface: r1bIf}},
	})
	r1.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:0::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: r1pIf}}})

	for _, pair := range []struct {
		n      *netsim.Node
		upIf   *netsim.Iface
		downIf *netsim.Iface
	}{{r2a, r2ar1, r2aT}, {r2b, r2br1, r2bT}} {
		pair.n.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:fff::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: pair.downIf}}})
		pair.n.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: pair.upIf}}})
	}

	if err := Deploy(r1, r1SID, true); err != nil {
		t.Fatal(err)
	}
	sids := map[netip.Addr]netip.Addr{r1Addr: r1SID}
	return s, p, sids
}

func TestTracerouteECMPDiscovery(t *testing.T) {
	sim, prober, sids := diamond(t)

	var result []Hop
	Trace(prober, tgtAddr, Options{SIDs: sids, FlowLabel: 7}, func(h []Hop) { result = h })
	sim.RunUntil(10 * netsim.Second)

	if result == nil {
		t.Fatal("trace did not complete")
	}
	if len(result) < 3 {
		t.Fatalf("hops: %+v", result)
	}

	// Hop 1: R1 via OAMP with both ECMP nexthops.
	h1 := result[0]
	if h1.Addr != r1Addr || !h1.ViaOAMP {
		t.Fatalf("hop1 = %+v", h1)
	}
	if len(h1.Nexthops) != 2 {
		t.Fatalf("hop1 nexthops = %v, want 2 (ECMP fan-out)", h1.Nexthops)
	}
	found := map[netip.Addr]bool{}
	for _, nh := range h1.Nexthops {
		found[nh] = true
	}
	if !found[r2aAddr] || !found[r2bAddr] {
		t.Errorf("nexthops = %v, want both R2a and R2b", h1.Nexthops)
	}

	// Hop 2: one of the R2s, via legacy ICMP (no SID published).
	h2 := result[1]
	if h2.ViaOAMP || (h2.Addr != r2aAddr && h2.Addr != r2bAddr) {
		t.Errorf("hop2 = %+v", h2)
	}

	// Final hop: destination reached.
	last := result[len(result)-1]
	if !last.Reached || last.Addr != tgtAddr {
		t.Errorf("last hop = %+v", last)
	}

	s := Format(result)
	for _, want := range []string{"OAMP ecmp=2", "[icmp]", "(destination)"} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted output missing %q:\n%s", want, s)
		}
	}
}

// TestParisStyleFlowPinning: the same flow label always discovers the
// same R2, different labels can discover the other branch.
func TestParisStyleFlowPinning(t *testing.T) {
	seen := map[netip.Addr]bool{}
	for fl := uint32(0); fl < 8; fl++ {
		sim, prober, sids := diamond(t)
		var result []Hop
		Trace(prober, tgtAddr, Options{SIDs: sids, FlowLabel: fl}, func(h []Hop) { result = h })
		sim.RunUntil(10 * netsim.Second)
		if result == nil || len(result) < 2 {
			t.Fatalf("fl=%d: no result", fl)
		}
		seen[result[1].Addr] = true
	}
	if !seen[r2aAddr] || !seen[r2bAddr] {
		t.Errorf("varying flow labels explored only %v", seen)
	}
}

func TestTracerouteWithoutOAMPFallsBack(t *testing.T) {
	sim, prober, _ := diamond(t)
	var result []Hop
	// No SIDs published: every hop must use ICMP.
	Trace(prober, tgtAddr, Options{FlowLabel: 3}, func(h []Hop) { result = h })
	sim.RunUntil(10 * netsim.Second)
	if result == nil {
		t.Fatal("trace did not complete")
	}
	for _, h := range result {
		if h.ViaOAMP {
			t.Errorf("hop %d used OAMP without a published SID", h.TTL)
		}
	}
	if !result[len(result)-1].Reached {
		t.Errorf("destination not reached: %+v", result)
	}
}

func TestTracerouteTimeout(t *testing.T) {
	// Target behind a black hole: R1 has no route -> unreachable; use
	// an address outside every prefix so probes die quietly...
	// Instead, point at a prefix R2s route upstream forever? Simplest:
	// trace a bogus target with a tiny TTL budget and expect ICMP
	// unreachable or timeouts rather than a hang.
	sim, prober, sids := diamond(t)
	var result []Hop
	Trace(prober, netip.MustParseAddr("2001:db8:dead::1"), Options{SIDs: sids, MaxTTL: 3}, func(h []Hop) { result = h })
	sim.RunUntil(10 * netsim.Second)
	if result == nil {
		t.Fatal("trace did not complete")
	}
	// R1 generates "no route" unreachable (code 0), which the tracer
	// ignores; the hops should be timeouts, and the trace must end.
	if len(result) != 3 {
		t.Fatalf("hops = %+v", result)
	}
	for _, h := range result {
		if !h.Timeout {
			t.Errorf("expected timeout hop, got %+v", h)
		}
	}
}
