package verifier

import (
	"errors"
	"strings"
	"testing"

	"srv6bpf/internal/bpf/asm"
)

// testConfig mimics a hook with a 32-byte readable context and two
// helpers: 1 = map_lookup_elem, 5 = ktime.
func testConfig() Config {
	return Config{
		CtxSize: 32,
		Helpers: map[int32]HelperSig{
			1: {Name: "map_lookup_elem", Args: []ArgKind{ArgMapHandle, ArgPtr}, Ret: RetMapValueOrNull},
			5: {Name: "ktime_get_ns", Ret: RetScalar},
		},
	}
}

func verify(t *testing.T, insns asm.Instructions) error {
	t.Helper()
	asmd, err := insns.Assemble()
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return Verify(asmd, testConfig())
}

func wantOK(t *testing.T, insns asm.Instructions) {
	t.Helper()
	if err := verify(t, insns); err != nil {
		t.Fatalf("verification failed: %v", err)
	}
}

func wantErr(t *testing.T, insns asm.Instructions, substr string) {
	t.Helper()
	err := verify(t, insns)
	if err == nil {
		t.Fatal("verification unexpectedly succeeded")
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err, substr)
	}
}

func TestAcceptMinimal(t *testing.T) {
	wantOK(t, asm.Instructions{
		asm.Mov64Imm(asm.R0, 0),
		asm.Return(),
	})
}

func TestRejectEmpty(t *testing.T) {
	if err := Verify(nil, testConfig()); err == nil {
		t.Fatal("empty program accepted")
	}
}

func TestRejectUninitR0AtExit(t *testing.T) {
	wantErr(t, asm.Instructions{asm.Return()}, "R0 is not initialised")
}

func TestRejectUninitRead(t *testing.T) {
	wantErr(t, asm.Instructions{
		asm.Mov64Reg(asm.R0, asm.R3),
		asm.Return(),
	}, "uninitialised")
}

func TestRejectFallOffEnd(t *testing.T) {
	wantErr(t, asm.Instructions{
		asm.Mov64Imm(asm.R0, 0),
	}, "fall off")
}

func TestRejectLoop(t *testing.T) {
	err := verify(t, asm.Instructions{
		asm.Mov64Imm(asm.R0, 10).WithSymbol("top"),
		asm.ALU64Imm(asm.Sub, asm.R0, 1),
		asm.JumpImm(asm.JNE, asm.R0, 0, "top"),
		asm.Return(),
	})
	if !errors.Is(err, ErrLoop) {
		t.Fatalf("want ErrLoop, got %v", err)
	}
}

func TestRejectSelfLoop(t *testing.T) {
	err := verify(t, asm.Instructions{
		asm.Mov64Imm(asm.R0, 0),
		asm.JumpTo("self").WithSymbol("self"),
		asm.Return(),
	})
	if !errors.Is(err, ErrLoop) {
		t.Fatalf("want ErrLoop, got %v", err)
	}
}

func TestRejectUnreachable(t *testing.T) {
	wantErr(t, asm.Instructions{
		asm.Mov64Imm(asm.R0, 0),
		asm.JumpTo("out"),
		asm.Mov64Imm(asm.R1, 1), // unreachable
		asm.Return().WithSymbol("out"),
	}, "unreachable")
}

func TestRejectTooLarge(t *testing.T) {
	var prog asm.Instructions
	for i := 0; i < DefaultMaxInstructions; i++ {
		prog = append(prog, asm.Mov64Imm(asm.R0, 0))
	}
	prog = append(prog, asm.Return())
	asmd, _ := prog.Assemble()
	if err := Verify(asmd, testConfig()); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestRejectWriteToR10(t *testing.T) {
	wantErr(t, asm.Instructions{
		asm.Mov64Imm(asm.R10, 0),
		asm.Mov64Imm(asm.R0, 0),
		asm.Return(),
	}, "frame pointer")
}

func TestStackBounds(t *testing.T) {
	wantOK(t, asm.Instructions{
		asm.StoreImm(asm.RFP, -8, 1, asm.DWord),
		asm.LoadMem(asm.R0, asm.RFP, -512, asm.Byte),
		asm.Return(),
	})
	wantErr(t, asm.Instructions{
		asm.StoreImm(asm.RFP, -513, 1, asm.Byte),
		asm.Mov64Imm(asm.R0, 0),
		asm.Return(),
	}, "stack access")
	wantErr(t, asm.Instructions{
		asm.StoreImm(asm.RFP, 0, 1, asm.Byte), // [0,1) is above the frame
		asm.Mov64Imm(asm.R0, 0),
		asm.Return(),
	}, "stack access")
	wantErr(t, asm.Instructions{
		asm.LoadMem(asm.R0, asm.RFP, -4, asm.DWord), // [-4,4) straddles the top
		asm.Return(),
	}, "stack access")
}

func TestCtxAccess(t *testing.T) {
	wantOK(t, asm.Instructions{
		asm.LoadMem(asm.R0, asm.R1, 4, asm.Word),
		asm.Return(),
	})
	wantErr(t, asm.Instructions{
		asm.LoadMem(asm.R0, asm.R1, 32, asm.Word), // [32,36) beyond 32-byte ctx
		asm.Return(),
	}, "context access")
	wantErr(t, asm.Instructions{
		asm.StoreImm(asm.R1, 0, 1, asm.Word), // ctx read-only by default
		asm.Mov64Imm(asm.R0, 0),
		asm.Return(),
	}, "read-only")
}

func TestCtxWritable(t *testing.T) {
	cfg := testConfig()
	cfg.CtxWritable = true
	prog, _ := asm.Instructions{
		asm.StoreImm(asm.R1, 8, 1, asm.Word),
		asm.Mov64Imm(asm.R0, 0),
		asm.Return(),
	}.Assemble()
	if err := Verify(prog, cfg); err != nil {
		t.Fatalf("writable ctx store rejected: %v", err)
	}
}

func TestRejectScalarDeref(t *testing.T) {
	wantErr(t, asm.Instructions{
		asm.Mov64Imm(asm.R2, 1234),
		asm.LoadMem(asm.R0, asm.R2, 0, asm.Word),
		asm.Return(),
	}, "dereference of scalar")
}

func TestPointerArithmetic(t *testing.T) {
	// fp + scalar then load: fine.
	wantOK(t, asm.Instructions{
		asm.Mov64Reg(asm.R2, asm.RFP),
		asm.ALU64Imm(asm.Add, asm.R2, -16),
		asm.StoreImm(asm.R2, 0, 7, asm.DWord),
		asm.LoadMem(asm.R0, asm.R2, 0, asm.DWord),
		asm.Return(),
	})
	// ptr * 2 destroys the pointer.
	wantErr(t, asm.Instructions{
		asm.Mov64Reg(asm.R2, asm.RFP),
		asm.ALU64Imm(asm.Mul, asm.R2, 2),
		asm.Mov64Imm(asm.R0, 0),
		asm.Return(),
	}, "mul on fp pointer")
	// ptr + ptr rejected.
	wantErr(t, asm.Instructions{
		asm.Mov64Reg(asm.R2, asm.RFP),
		asm.ALU64Reg(asm.Add, asm.R2, asm.RFP),
		asm.Mov64Imm(asm.R0, 0),
		asm.Return(),
	}, "pointer")
	// 32-bit arithmetic on a pointer rejected.
	wantErr(t, asm.Instructions{
		asm.Mov64Reg(asm.R2, asm.RFP),
		asm.ALU32Imm(asm.Add, asm.R2, 4),
		asm.Mov64Imm(asm.R0, 0),
		asm.Return(),
	}, "32-bit arithmetic")
}

// mapLookup is the canonical lookup sequence: key on stack, call,
// null check.
func mapLookup(afterNullCheck ...asm.Instruction) asm.Instructions {
	prog := asm.Instructions{
		asm.StoreImm(asm.RFP, -4, 0, asm.Word),
		asm.LoadMapPtr(asm.R1, "m"),
		asm.Mov64Reg(asm.R2, asm.RFP),
		asm.ALU64Imm(asm.Add, asm.R2, -4),
		asm.CallHelper(1),
		asm.JumpImm(asm.JEq, asm.R0, 0, "out"),
	}
	prog = append(prog, afterNullCheck...)
	prog = append(prog,
		asm.Mov64Imm(asm.R0, 0).WithSymbol("out"),
		asm.Return(),
	)
	return prog
}

func TestMapLookupNullCheck(t *testing.T) {
	// Dereference after the null check: accepted.
	wantOK(t, mapLookup(
		asm.LoadMem(asm.R3, asm.R0, 0, asm.DWord),
	))
	// Dereference without a null check: rejected.
	wantErr(t, asm.Instructions{
		asm.StoreImm(asm.RFP, -4, 0, asm.Word),
		asm.LoadMapPtr(asm.R1, "m"),
		asm.Mov64Reg(asm.R2, asm.RFP),
		asm.ALU64Imm(asm.Add, asm.R2, -4),
		asm.CallHelper(1),
		asm.LoadMem(asm.R3, asm.R0, 0, asm.DWord),
		asm.Mov64Imm(asm.R0, 0),
		asm.Return(),
	}, "possibly-null")
}

func TestHelperWhitelist(t *testing.T) {
	wantErr(t, asm.Instructions{
		asm.CallHelper(99),
		asm.Return(),
	}, "not allowed")
}

func TestHelperArgChecking(t *testing.T) {
	// map_lookup_elem with a scalar instead of a map handle.
	wantErr(t, asm.Instructions{
		asm.Mov64Imm(asm.R1, 7),
		asm.Mov64Reg(asm.R2, asm.RFP),
		asm.CallHelper(1),
		asm.Mov64Imm(asm.R0, 0),
		asm.Return(),
	}, "must be a map handle")
	// ...and with a scalar instead of a key pointer.
	wantErr(t, asm.Instructions{
		asm.LoadMapPtr(asm.R1, "m"),
		asm.Mov64Imm(asm.R2, 3),
		asm.CallHelper(1),
		asm.Mov64Imm(asm.R0, 0),
		asm.Return(),
	}, "must be a pointer")
	// Uninitialised argument.
	wantErr(t, asm.Instructions{
		asm.LoadMapPtr(asm.R1, "m"),
		asm.CallHelper(1),
		asm.Mov64Imm(asm.R0, 0),
		asm.Return(),
	}, "uninitialised")
}

func TestScratchRegistersAfterCall(t *testing.T) {
	// r1-r5 are clobbered by calls; using r1 afterwards must fail.
	wantErr(t, asm.Instructions{
		asm.CallHelper(5),
		asm.Mov64Reg(asm.R0, asm.R1),
		asm.Return(),
	}, "uninitialised")
	// Callee-saved registers survive.
	wantOK(t, asm.Instructions{
		asm.Mov64Imm(asm.R6, 1),
		asm.CallHelper(5),
		asm.Mov64Reg(asm.R0, asm.R6),
		asm.Return(),
	})
}

func TestJumpIntoLddw(t *testing.T) {
	insns := asm.Instructions{
		asm.Instruction{OpCode: asm.MkJump(asm.ClassJump, asm.Ja, asm.ImmSource), Offset: 1},
		asm.LoadImm64(asm.R0, 1),
		asm.Return(),
	}
	if err := Verify(insns, testConfig()); err == nil ||
		!strings.Contains(err.Error(), "splits an lddw") {
		t.Fatalf("got %v", err)
	}
}

func TestBranchMergeKeepsBothPaths(t *testing.T) {
	// A register that is a pointer on one path and scalar on another
	// must be rejected when dereferenced after the merge.
	wantErr(t, asm.Instructions{
		asm.Mov64Imm(asm.R0, 0),
		asm.Mov64Imm(asm.R2, 8),
		asm.JumpImm(asm.JEq, asm.R0, 0, "mkptr"),
		asm.JumpTo("use"),
		asm.Mov64Reg(asm.R2, asm.RFP).WithSymbol("mkptr"),
		asm.ALU64Imm(asm.Add, asm.R2, -8),
		asm.LoadMem(asm.R3, asm.R2, 0, asm.DWord).WithSymbol("use"),
		asm.Return(),
	}, "dereference of scalar")
}

func TestRejectBadSwapWidth(t *testing.T) {
	ins := asm.HostToBE(asm.R1, 24)
	wantErr(t, asm.Instructions{
		asm.Mov64Imm(asm.R1, 5),
		ins,
		asm.Mov64Imm(asm.R0, 0),
		asm.Return(),
	}, "swap width")
}

func TestLeakPointerToCtxRejected(t *testing.T) {
	cfg := testConfig()
	cfg.CtxWritable = true
	prog, _ := asm.Instructions{
		asm.StoreMem(asm.R1, 8, asm.R10, asm.DWord),
		asm.Mov64Imm(asm.R0, 0),
		asm.Return(),
	}.Assemble()
	if err := Verify(prog, cfg); err == nil ||
		!strings.Contains(err.Error(), "leaking pointer") {
		t.Fatalf("got %v", err)
	}
}

func TestDiamondCFGAccepted(t *testing.T) {
	// Branch and re-merge with consistent types.
	wantOK(t, asm.Instructions{
		asm.LoadMem(asm.R2, asm.R1, 0, asm.Word),
		asm.Mov64Imm(asm.R0, 1),
		asm.JumpImm(asm.JGT, asm.R2, 100, "big"),
		asm.Mov64Imm(asm.R0, 2),
		asm.JumpTo("out"),
		asm.Mov64Imm(asm.R0, 3).WithSymbol("big"),
		asm.Return().WithSymbol("out"),
	})
}

// TestStatePruningOnDiamondChains: a chain of N diamonds has 2^N
// paths; with state pruning the verifier must finish quickly (the
// exploration budget would trip otherwise).
func TestStatePruningOnDiamondChains(t *testing.T) {
	var prog asm.Instructions
	prog = append(prog, asm.Mov64Imm(asm.R0, 0))
	const diamonds = 64
	for i := 0; i < diamonds; i++ {
		skip := "d" + string(rune('A'+i%26)) + string(rune('0'+i/26))
		prog = append(prog,
			asm.JumpImm(asm.JEq, asm.R0, int32(i), skip),
			asm.ALU64Imm(asm.Add, asm.R0, 1),
			asm.Mov64Imm(asm.R2, 0).WithSymbol(skip),
		)
	}
	prog = append(prog, asm.Return())
	asmd, err := prog.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(asmd, testConfig()); err != nil {
		t.Fatalf("diamond chain rejected: %v", err)
	}
}

// TestStateExplosionBudget: states that never merge (distinct register
// kinds per path) blow past the exploration budget and must be
// rejected with ErrStateExplosion rather than hanging.
func TestStateExplosionBudget(t *testing.T) {
	// Build diamonds where each branch leaves a DIFFERENT register
	// with a different kind, defeating pruning: one side makes rI a
	// stack pointer, the other a scalar.
	var prog asm.Instructions
	prog = append(prog, asm.Mov64Imm(asm.R0, 0))
	const diamonds = 20
	for i := 0; i < diamonds; i++ {
		reg := asm.Register(2 + i%8)
		skip := "x" + string(rune('A'+i%26)) + string(rune('0'+i/26))
		out := "y" + string(rune('A'+i%26)) + string(rune('0'+i/26))
		prog = append(prog,
			asm.JumpImm(asm.JEq, asm.R0, int32(i), skip),
			asm.Mov64Reg(reg, asm.RFP),
			asm.ALU64Imm(asm.Add, reg, int32(-8*(i%60+1))),
			asm.JumpTo(out),
			asm.Mov64Imm(reg, int32(i)).WithSymbol(skip),
			asm.Mov64Imm(asm.R1, 0).WithSymbol(out),
		)
	}
	prog = append(prog, asm.Return())
	asmd, err := prog.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	err = Verify(asmd, testConfig())
	// Either outcome is allowed: rejection via the explosion budget,
	// or successful verification if pruning handles it — but it must
	// not hang. (With per-path stack offsets the states differ, so in
	// practice the budget trips.)
	if err != nil && !errors.Is(err, ErrStateExplosion) {
		t.Fatalf("unexpected error kind: %v", err)
	}
}
