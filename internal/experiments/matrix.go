package experiments

// The behaviour matrix: three committed end-to-end scenarios that
// exercise the registry-driven SRv6 behaviour set (RFC 8986) on
// nontrivial topologies, each run under all three simulation engines
// (sequential, conservative 2-shard, optimistic 2-shard). A scenario
// passes when the three runs produce bit-identical counter
// fingerprints and full delivery — the same property the shard
// equivalence fuzzer checks, pinned here on curated control-plane
// configurations instead of random ones:
//
//   - l3vpn-fattree: multi-tenant L3VPN over a k=4 fat-tree. Two
//     tenants with overlapping IPv4 address plans ride End.DT4
//     SIDs into per-tenant tables, a third tenant's IPv6 traffic is
//     steered with reduced encapsulation (H.Encaps.Red) through a
//     mid-point End SID into End.DT6, and a fourth carries mixed
//     IPv4+IPv6 over a single End.DT46 SID.
//   - sfc-proxy: a service chain through two legacy, SR-unaware VNFs
//     using the static proxies — End.AS (full de/re-encapsulation)
//     then End.AM (masquerading) — with the proxy return paths bound
//     to the VNF-facing interfaces.
//   - tilfa-bsid: a binding SID (End.B6.Encaps with reduced encap)
//     fronting a protected route whose TI-LFA backup steers around a
//     failed link via an intermediate End+PSP repair segment; the
//     link is cut mid-run and delivery must resume on the backup.

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"sort"

	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/netsim/topo"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
	"srv6bpf/internal/trafgen"
)

// MatrixRun is one engine's outcome for a scenario.
type MatrixRun struct {
	Engine      string
	Fingerprint string
	Delivered   uint64
}

// MatrixRow is one scenario's cross-engine comparison.
type MatrixRow struct {
	Scenario  string
	Delivered uint64 // packets delivered in the sequential reference run
	Match     bool   // all engines produced identical fingerprints
	Runs      []MatrixRun
}

// matrixScenario builds and runs one scenario under the given engine
// configuration and returns a deterministic fingerprint plus the
// delivered packet count. shards <= 1 means the sequential engine.
type matrixScenario struct {
	name string
	run  func(shards int, eng netsim.Engine, burst int) (string, uint64, error)
}

func matrixScenarios() []matrixScenario {
	return []matrixScenario{
		{"l3vpn-fattree", matrixL3VPN},
		{"sfc-proxy", matrixSFC},
		{"tilfa-bsid", matrixTILFA},
	}
}

// MatrixScan runs every committed scenario under the sequential,
// conservative and optimistic engines and compares fingerprints. It
// is the engine-equivalence gate of `srv6bench -matrix` and the
// matrix-smoke CI target.
func MatrixScan() ([]MatrixRow, error) {
	const burst = 4
	configs := []struct {
		label  string
		shards int
		eng    netsim.Engine
	}{
		{"sequential", 1, netsim.EngineConservative},
		{"conservative-2", 2, netsim.EngineConservative},
		{"optimistic-2", 2, netsim.EngineOptimistic},
	}
	var rows []MatrixRow
	for _, sc := range matrixScenarios() {
		row := MatrixRow{Scenario: sc.name, Match: true}
		for i, cfg := range configs {
			fp, delivered, err := sc.run(cfg.shards, cfg.eng, burst)
			if err != nil {
				return rows, fmt.Errorf("%s/%s: %w", sc.name, cfg.label, err)
			}
			row.Runs = append(row.Runs, MatrixRun{Engine: cfg.label, Fingerprint: fp, Delivered: delivered})
			if i == 0 {
				row.Delivered = delivered
			} else if fp != row.Runs[0].Fingerprint {
				row.Match = false
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// matrixSetShards applies the engine configuration; the sequential
// reference never calls SetShards at all.
func matrixSetShards(sim *netsim.Sim, shards int, eng netsim.Engine) error {
	if shards <= 1 {
		return nil
	}
	return sim.SetShards(shards, eng)
}

// matrixFingerprint hashes every node's sorted counter set plus any
// scenario-specific extra lines into a short hex digest. Counters are
// rollback-aware (the optimistic engine restores them on straggler
// re-execution), so identical digests mean identical executions.
func matrixFingerprint(sim *netsim.Sim, extra ...string) string {
	h := fnv.New64a()
	for _, n := range sim.Nodes() {
		cs := n.Counters()
		keys := make([]string, 0, len(cs))
		for k := range cs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(h, "node %s\n", n.Name)
		for _, k := range keys {
			fmt.Fprintf(h, "%s=%d\n", k, cs[k])
		}
	}
	for _, e := range extra {
		fmt.Fprintf(h, "%s\n", e)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func mustAddRoute(n *netsim.Node, r *netsim.Route) error {
	if err := n.AddRoute(r); err != nil {
		return fmt.Errorf("%s: %w", n.Name, err)
	}
	return nil
}

// matrixL3VPN is the multi-tenant L3VPN scenario: four tenants over a
// k=4 fat-tree between two PE hosts, each CE pair attached by 10G
// access links. Tenants A and B use the *same* overlapping IPv4 plan
// (10.1.0.1 -> 10.9.0.1) and stay isolated because each CE-facing
// interface is bound to its own ingress table and each tenant SID
// decapsulates into its own egress table (End.DT4). Tenant C is IPv6
// through a 2-segment reduced encapsulation via a mid-point End SID
// (End.DT6 at the egress); tenant D sends IPv4 and IPv6 over one
// End.DT46 SID.
func matrixL3VPN(shards int, eng netsim.Engine, burst int) (string, uint64, error) {
	sim := netsim.New(9101)
	sim.SetBurst(burst)
	nw, err := topo.FatTree(sim, 4, topo.Opts{})
	if err != nil {
		return "", 0, err
	}
	pe1, pe2, mid := nw.Hosts[0], nw.Hosts[1], nw.Hosts[2]
	access := netem.Config{RateBps: 10_000_000_000, DelayNs: 5 * netsim.Microsecond}
	hostCost := netsim.HostCostModel()

	// Egress SIDs live inside PE2's /48 (2001:db8:1::/48) so the fat-
	// tree's ECMP routes deliver them; the mid-point End SID likewise
	// sits inside Hosts[2]'s /48.
	sidA := netip.MustParseAddr("2001:db8:1::a4")
	sidB := netip.MustParseAddr("2001:db8:1::b4")
	sidC := netip.MustParseAddr("2001:db8:1::c6")
	sidD := netip.MustParseAddr("2001:db8:1::46")
	midSID := netip.MustParseAddr("2001:db8:2::e1")

	v4Src := netip.MustParseAddr("10.1.0.1")
	v4Dst := netip.MustParseAddr("10.9.0.1")
	v4Net := netip.MustParsePrefix("10.9.0.0/24")
	c1 := netip.MustParseAddr("fd00:c1::1")
	c9 := netip.MustParseAddr("fd00:c9::1")
	cNet := netip.MustParsePrefix("fd00:c9::/48")
	d1 := netip.MustParseAddr("fd00:d1::1")
	d9 := netip.MustParseAddr("fd00:d9::1")
	dNet := netip.MustParsePrefix("fd00:d9::/48")

	// attach creates a CE on pe with default routes pointing back and
	// returns the PE-side interface (the one the tenant table binds
	// to).
	attach := func(name string, pe *netsim.Node, addrs ...netip.Addr) (*netsim.Node, *netsim.Iface, error) {
		ce := sim.AddNode(name, hostCost)
		for _, a := range addrs {
			ce.AddAddress(a)
		}
		ceIf, peIf := netsim.ConnectSymmetric(ce, pe, access)
		for _, def := range []string{"::/0", "0.0.0.0/0"} {
			if err := mustAddRoute(ce, &netsim.Route{
				Prefix:   netip.MustParsePrefix(def),
				Kind:     netsim.RouteForward,
				Nexthops: []netsim.Nexthop{{Iface: ceIf}},
			}); err != nil {
				return nil, nil, err
			}
		}
		return ce, peIf, nil
	}

	type tenant struct {
		name            string
		ingress, egress int // table IDs
		sid             netip.Addr
		action          seg6.Action
		port            uint16
	}
	tenants := []tenant{
		{"A", 201, 111, sidA, seg6.ActionEndDT4, 9001},
		{"B", 202, 112, sidB, seg6.ActionEndDT4, 9002},
		{"C", 203, 113, sidC, seg6.ActionEndDT6, 9003},
		{"D", 204, 114, sidD, seg6.ActionEndDT46, 9004},
	}

	sinks := make([]*trafgen.Sink, len(tenants))
	var gens []interface{ Sent() uint64 }
	for ti := range tenants {
		tn := &tenants[ti]
		var inAddrs, outAddrs []netip.Addr
		switch tn.name {
		case "A", "B":
			inAddrs, outAddrs = []netip.Addr{v4Src}, []netip.Addr{v4Dst}
		case "C":
			inAddrs, outAddrs = []netip.Addr{c1}, []netip.Addr{c9}
		case "D":
			inAddrs, outAddrs = []netip.Addr{d1, v4Src}, []netip.Addr{d9, v4Dst}
		}
		ceIn, peInIf, err := attach("ce"+tn.name+"1", pe1, inAddrs...)
		if err != nil {
			return "", 0, err
		}
		ceOut, _, err := attach("ce"+tn.name+"2", pe2, outAddrs...)
		if err != nil {
			return "", 0, err
		}

		// Ingress: bind the CE-facing interface to the tenant VRF and
		// steer the tenant's prefixes onto the SID.
		if err := pe1.BindIfaceTable(peInIf, tn.ingress); err != nil {
			return "", 0, err
		}
		srh := packet.NewSRH([]netip.Addr{tn.sid})
		mode := netsim.EncapModeEncap
		if tn.name == "C" {
			// Tenant C travels a 2-segment list in reduced form: the
			// first segment rides only in the outer destination.
			srh = packet.NewSRH([]netip.Addr{midSID, tn.sid})
			mode = netsim.EncapModeEncapRed
		}
		ingressTable := pe1.Table(tn.ingress)
		egressTable := pe2.Table(tn.egress)
		// The PE2-side interface of the egress CE link is the last
		// interface added to pe2 (attach connected it just above).
		peOutIf := lastIface(pe2)
		switch tn.name {
		case "A", "B":
			ingressTable.Add(&netsim.Route{Prefix: v4Net, Kind: netsim.RouteSeg6Encap, SRH: srh, Mode: mode})
			egressTable.Add(&netsim.Route{Prefix: v4Net, Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: peOutIf}}})
		case "C":
			ingressTable.Add(&netsim.Route{Prefix: cNet, Kind: netsim.RouteSeg6Encap, SRH: srh, Mode: mode})
			egressTable.Add(&netsim.Route{Prefix: cNet, Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: peOutIf}}})
		case "D":
			ingressTable.Add(&netsim.Route{Prefix: dNet, Kind: netsim.RouteSeg6Encap, SRH: srh, Mode: mode})
			ingressTable.Add(&netsim.Route{Prefix: v4Net, Kind: netsim.RouteSeg6Encap, SRH: srh, Mode: mode})
			egressTable.Add(&netsim.Route{Prefix: dNet, Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: peOutIf}}})
			egressTable.Add(&netsim.Route{Prefix: v4Net, Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: peOutIf}}})
		}

		// Egress: the tenant SID decapsulates into the tenant table.
		if err := mustAddRoute(pe2, &netsim.Route{
			Prefix:    netip.PrefixFrom(tn.sid, 128),
			Kind:      netsim.RouteSeg6Local,
			Behaviour: &seg6.Behaviour{Action: tn.action, Table: tn.egress},
		}); err != nil {
			return "", 0, err
		}

		sinks[ti] = trafgen.NewSink(ceOut, tn.port)

		const rate = 100_000
		const until = 1 * netsim.Millisecond
		switch tn.name {
		case "A", "B":
			tmpl, err := packet.BuildIPv4UDP(v4Src, v4Dst, 40000, tn.port, make([]byte, 64), 64)
			if err != nil {
				return "", 0, err
			}
			g := &trafgen.RawGen{Node: ceIn, Template: tmpl, RatePPS: rate}
			g.Start(until)
			gens = append(gens, g)
		case "C":
			g := &trafgen.UDPGen{Node: ceIn, Src: c1, Dst: c9, SrcPort: 40000, DstPort: tn.port, PayloadLen: 64, RatePPS: rate}
			if err := g.Start(until); err != nil {
				return "", 0, err
			}
			gens = append(gens, g)
		case "D":
			g6 := &trafgen.UDPGen{Node: ceIn, Src: d1, Dst: d9, SrcPort: 40000, DstPort: tn.port, PayloadLen: 64, RatePPS: rate / 2}
			if err := g6.Start(until); err != nil {
				return "", 0, err
			}
			tmpl, err := packet.BuildIPv4UDP(v4Src, v4Dst, 40001, tn.port, make([]byte, 64), 64)
			if err != nil {
				return "", 0, err
			}
			g4 := &trafgen.RawGen{Node: ceIn, Template: tmpl, RatePPS: rate / 2}
			g4.Start(until)
			gens = append(gens, g6, g4)
		}
	}

	// The mid-point End SID for tenant C's reduced 2-segment list.
	if err := mustAddRoute(mid, &netsim.Route{
		Prefix:    netip.PrefixFrom(midSID, 128),
		Kind:      netsim.RouteSeg6Local,
		Behaviour: &seg6.Behaviour{Action: seg6.ActionEnd},
	}); err != nil {
		return "", 0, err
	}

	if err := matrixSetShards(sim, shards, eng); err != nil {
		return "", 0, err
	}
	sim.Run()

	var sent, delivered uint64
	for _, g := range gens {
		sent += g.Sent()
	}
	extra := make([]string, 0, len(sinks))
	for i, s := range sinks {
		delivered += s.Packets
		extra = append(extra, fmt.Sprintf("tenant%s=%d", tenants[i].name, s.Packets))
	}
	if delivered != sent {
		return "", 0, fmt.Errorf("l3vpn: delivered %d of %d offered", delivered, sent)
	}
	// Isolation: each tenant's sink saw exactly its own offered load.
	// Overlapping tenants leaking across VRFs would skew both counts.
	if sinks[0].Packets != gens[0].Sent() || sinks[1].Packets != gens[1].Sent() {
		return "", 0, fmt.Errorf("l3vpn: tenant isolation broken: A=%d/%d B=%d/%d",
			sinks[0].Packets, gens[0].Sent(), sinks[1].Packets, gens[1].Sent())
	}
	return matrixFingerprint(sim, extra...), delivered, nil
}

// lastIface returns the interface most recently added to n — the
// scenario builders connect one access link at a time, so this is the
// link just created.
func lastIface(n *netsim.Node) *netsim.Iface {
	ifs := n.Ifaces()
	if len(ifs) == 0 {
		return nil
	}
	return ifs[len(ifs)-1]
}

// matrixSFC is the service-chaining scenario: traffic from S to D is
// steered through two SR-unaware VNFs by static proxies. P1 runs
// End.AS (decapsulate toward the VNF, re-encapsulate with the
// configured segment list on return); P2 runs End.AM (masquerade the
// destination address toward the VNF, restore it from the SRH on
// return). The VNFs are plain forwarders with a default route back —
// they never see an SRH.
func matrixSFC(shards int, eng netsim.Engine, burst int) (string, uint64, error) {
	sim := netsim.New(9102)
	sim.SetBurst(burst)
	host := netsim.HostCostModel()
	server := netsim.ServerCostModel()

	s := sim.AddNode("sfc-src", host)
	p1 := sim.AddNode("sfc-p1", server)
	p2 := sim.AddNode("sfc-p2", server)
	d := sim.AddNode("sfc-dst", host)
	vnf1 := sim.AddNode("sfc-vnf1", host)
	vnf2 := sim.AddNode("sfc-vnf2", host)

	sAddr := netip.MustParseAddr("fd00:1::1")
	p1Addr := netip.MustParseAddr("fc00:a1::1")
	p2Addr := netip.MustParseAddr("fc00:b1::1")
	dAddr := netip.MustParseAddr("fd00:2::1")
	asSID := netip.MustParseAddr("fc00:a1::a5")
	amSID := netip.MustParseAddr("fc00:b1::a6")
	decapSID := netip.MustParseAddr("fd00:2::d6")
	s.AddAddress(sAddr)
	p1.AddAddress(p1Addr)
	p2.AddAddress(p2Addr)
	d.AddAddress(dAddr)
	vnf1.AddAddress(netip.MustParseAddr("fd00:a1:f::1"))
	vnf2.AddAddress(netip.MustParseAddr("fd00:b1:f::1"))

	link := netem.Config{RateBps: 10_000_000_000, DelayNs: 5 * netsim.Microsecond}
	sIf, p1sIf := netsim.ConnectSymmetric(s, p1, link)
	_ = p1sIf
	p1p2If, p2p1If := netsim.ConnectSymmetric(p1, p2, link)
	_ = p2p1If
	p2dIf, dIf := netsim.ConnectSymmetric(p2, d, link)
	_ = dIf
	vnf1If, p1vIf := netsim.ConnectSymmetric(vnf1, p1, link)
	vnf2If, p2vIf := netsim.ConnectSymmetric(vnf2, p2, link)

	def := netip.MustParsePrefix("::/0")
	dsts := netip.MustParsePrefix("fd00:2::/48")
	p2net := netip.MustParsePrefix("fc00:b1::/48")

	// S steers fd00:2::/48 onto the chain <AS, AM, decap>.
	chain := packet.NewSRH([]netip.Addr{asSID, amSID, decapSID})
	if err := mustAddRoute(s, &netsim.Route{Prefix: dsts, Kind: netsim.RouteSeg6Encap, SRH: chain}); err != nil {
		return "", 0, err
	}
	if err := mustAddRoute(s, &netsim.Route{Prefix: def, Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: sIf}}}); err != nil {
		return "", 0, err
	}

	// P1: End.AS toward VNF1, rebuilding <AM, decap> on return.
	asB := &seg6.Behaviour{
		Action: seg6.ActionEndAS,
		SRH:    packet.NewSRH([]netip.Addr{amSID, decapSID}),
		Src:    p1Addr,
		OIF:    p1vIf,
	}
	if err := mustAddRoute(p1, &netsim.Route{Prefix: netip.PrefixFrom(asSID, 128), Kind: netsim.RouteSeg6Local, Behaviour: asB}); err != nil {
		return "", 0, err
	}
	if err := p1.BindProxyReturn(p1vIf, asB); err != nil {
		return "", 0, err
	}
	for _, pfx := range []netip.Prefix{p2net, dsts} {
		if err := mustAddRoute(p1, &netsim.Route{Prefix: pfx, Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: p1p2If}}}); err != nil {
			return "", 0, err
		}
	}

	// P2: End.AM toward VNF2 (masquerade/demasquerade).
	amB := &seg6.Behaviour{Action: seg6.ActionEndAM, OIF: p2vIf}
	if err := mustAddRoute(p2, &netsim.Route{Prefix: netip.PrefixFrom(amSID, 128), Kind: netsim.RouteSeg6Local, Behaviour: amB}); err != nil {
		return "", 0, err
	}
	if err := p2.BindProxyReturn(p2vIf, amB); err != nil {
		return "", 0, err
	}
	if err := mustAddRoute(p2, &netsim.Route{Prefix: dsts, Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: p2dIf}}}); err != nil {
		return "", 0, err
	}

	// The VNFs bounce everything back over their uplink.
	if err := mustAddRoute(vnf1, &netsim.Route{Prefix: def, Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: vnf1If}}}); err != nil {
		return "", 0, err
	}
	if err := mustAddRoute(vnf2, &netsim.Route{Prefix: def, Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: vnf2If}}}); err != nil {
		return "", 0, err
	}

	// D: the chain's last SID decapsulates into the main table.
	if err := mustAddRoute(d, &netsim.Route{
		Prefix:    netip.PrefixFrom(decapSID, 128),
		Kind:      netsim.RouteSeg6Local,
		Behaviour: &seg6.Behaviour{Action: seg6.ActionEndDT6},
	}); err != nil {
		return "", 0, err
	}

	sink := trafgen.NewSink(d, 9999)
	gen := &trafgen.UDPGen{Node: s, Src: sAddr, Dst: dAddr, SrcPort: 40000, DstPort: 9999, PayloadLen: 64, RatePPS: 200_000}
	if err := gen.Start(1 * netsim.Millisecond); err != nil {
		return "", 0, err
	}

	if err := matrixSetShards(sim, shards, eng); err != nil {
		return "", 0, err
	}
	sim.Run()

	// Full delivery is the chain proof: the only route to D traverses
	// both proxies, and either proxy failing drops the packet.
	if sink.Packets != gen.Sent() || gen.Sent() == 0 {
		return "", 0, fmt.Errorf("sfc: delivered %d of %d through the chain", sink.Packets, gen.Sent())
	}
	return matrixFingerprint(sim, fmt.Sprintf("sink=%d", sink.Packets)), sink.Packets, nil
}

// matrixTILFA is the protection scenario: an ingress steers traffic
// onto a binding SID at A (End.B6.Encaps, reduced) whose expansion
// crosses the protected link A-B. The route for that expansion
// carries a TI-LFA backup — a repair segment list through C (End with
// the PSP flavor) — and the A-B link is cut mid-run: the second half
// of the traffic must arrive via the backup, with A's backup_tx
// counter recording the switch.
func matrixTILFA(shards int, eng netsim.Engine, burst int) (string, uint64, error) {
	sim := netsim.New(9103)
	sim.SetBurst(burst)
	host := netsim.HostCostModel()
	server := netsim.ServerCostModel()

	in := sim.AddNode("tilfa-in", host)
	a := sim.AddNode("tilfa-a", server)
	b := sim.AddNode("tilfa-b", server)
	c := sim.AddNode("tilfa-c", server)
	dst := sim.AddNode("tilfa-dst", host)

	inAddr := netip.MustParseAddr("fd00:10::1")
	aAddr := netip.MustParseAddr("fc00:aa::1")
	bAddr := netip.MustParseAddr("fc00:bb::1")
	cAddr := netip.MustParseAddr("fc00:cc::1")
	dstAddr := netip.MustParseAddr("fd00:63::1")
	bsid := netip.MustParseAddr("fc00:aa::b6")
	d6 := netip.MustParseAddr("fc00:bb::d6")
	d7 := netip.MustParseAddr("fc00:bb::d7")
	cSID := netip.MustParseAddr("fc00:cc::e9")
	in.AddAddress(inAddr)
	a.AddAddress(aAddr)
	b.AddAddress(bAddr)
	c.AddAddress(cAddr)
	dst.AddAddress(dstAddr)

	link := netem.Config{RateBps: 10_000_000_000, DelayNs: 5 * netsim.Microsecond}
	inIf, _ := netsim.ConnectSymmetric(in, a, link)
	abIf, _ := netsim.ConnectSymmetric(a, b, link)
	acIf, _ := netsim.ConnectSymmetric(a, c, link)
	cbIf, _ := netsim.ConnectSymmetric(c, b, link)
	bdIf, _ := netsim.ConnectSymmetric(b, dst, link)

	def := netip.MustParsePrefix("::/0")
	dstNet := netip.MustParsePrefix("fd00:63::/48")
	bNet := netip.MustParsePrefix("fc00:bb::/48")

	// Ingress: destination traffic rides the binding SID, then the
	// egress SID d6.
	if err := mustAddRoute(in, &netsim.Route{Prefix: dstNet, Kind: netsim.RouteSeg6Encap, SRH: packet.NewSRH([]netip.Addr{bsid, d6})}); err != nil {
		return "", 0, err
	}
	if err := mustAddRoute(in, &netsim.Route{Prefix: def, Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: inIf}}}); err != nil {
		return "", 0, err
	}

	// A: the binding SID expands (reduced) to <d7>, and the route
	// toward B carries the TI-LFA backup through C.
	if err := mustAddRoute(a, &netsim.Route{
		Prefix: netip.PrefixFrom(bsid, 128),
		Kind:   netsim.RouteSeg6Local,
		Behaviour: &seg6.Behaviour{
			Action:  seg6.ActionEndB6Encap,
			SRH:     packet.NewSRH([]netip.Addr{d7}),
			Src:     aAddr,
			Reduced: true,
		},
	}); err != nil {
		return "", 0, err
	}
	if err := mustAddRoute(a, &netsim.Route{
		Prefix:   bNet,
		Kind:     netsim.RouteForward,
		Nexthops: []netsim.Nexthop{{Iface: abIf}},
		Backup: &netsim.Backup{
			Nexthops: []netsim.Nexthop{{Iface: acIf}},
			SRH:      packet.NewSRH([]netip.Addr{cSID, d7}),
		},
	}); err != nil {
		return "", 0, err
	}

	// C: the repair segment — plain End with PSP so the repair SRH is
	// popped before the packet re-enters B.
	if err := mustAddRoute(c, &netsim.Route{
		Prefix:    netip.PrefixFrom(cSID, 128),
		Kind:      netsim.RouteSeg6Local,
		Behaviour: &seg6.Behaviour{Action: seg6.ActionEnd, Flavors: seg6.FlavorPSP},
	}); err != nil {
		return "", 0, err
	}
	if err := mustAddRoute(c, &netsim.Route{Prefix: bNet, Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: cbIf}}}); err != nil {
		return "", 0, err
	}

	// B: both egress SIDs decapsulate to the main table; the inner
	// destination then forwards to the attached host.
	for _, sid := range []netip.Addr{d6, d7} {
		if err := mustAddRoute(b, &netsim.Route{
			Prefix:    netip.PrefixFrom(sid, 128),
			Kind:      netsim.RouteSeg6Local,
			Behaviour: &seg6.Behaviour{Action: seg6.ActionEndDT6},
		}); err != nil {
			return "", 0, err
		}
	}
	if err := mustAddRoute(b, &netsim.Route{Prefix: dstNet, Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: bdIf}}}); err != nil {
		return "", 0, err
	}

	// Phase 1 on port 9999, then the A-B link dies and phase 2 runs on
	// port 9998 — everything scheduled up front so the run is one
	// deterministic event sequence under every engine.
	sink1 := trafgen.NewSink(dst, 9999)
	sink2 := trafgen.NewSink(dst, 9998)
	gen1 := &trafgen.UDPGen{Node: in, Src: inAddr, Dst: dstAddr, SrcPort: 40000, DstPort: 9999, PayloadLen: 64, RatePPS: 200_000}
	gen2 := &trafgen.UDPGen{Node: in, Src: inAddr, Dst: dstAddr, SrcPort: 40000, DstPort: 9998, PayloadLen: 64, RatePPS: 200_000}
	if err := gen1.Start(300 * netsim.Microsecond); err != nil {
		return "", 0, err
	}
	sim.FailLink(400*netsim.Microsecond, abIf)
	var genErr error
	in.Schedule(500*netsim.Microsecond, func() {
		genErr = gen2.Start(800 * netsim.Microsecond)
	})

	if err := matrixSetShards(sim, shards, eng); err != nil {
		return "", 0, err
	}
	sim.Run()
	if genErr != nil {
		return "", 0, genErr
	}

	if sink1.Packets != gen1.Sent() || gen1.Sent() == 0 {
		return "", 0, fmt.Errorf("tilfa: pre-failure delivered %d of %d", sink1.Packets, gen1.Sent())
	}
	if sink2.Packets != gen2.Sent() || gen2.Sent() == 0 {
		return "", 0, fmt.Errorf("tilfa: post-failure delivered %d of %d", sink2.Packets, gen2.Sent())
	}
	if a.Counters()["backup_tx"] == 0 {
		return "", 0, fmt.Errorf("tilfa: protection never fired")
	}
	delivered := sink1.Packets + sink2.Packets
	return matrixFingerprint(sim,
		fmt.Sprintf("pre=%d post=%d backup=%d", sink1.Packets, sink2.Packets, a.Counters()["backup_tx"]),
	), delivered, nil
}
