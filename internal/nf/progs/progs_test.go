package progs

import (
	"net/netip"
	"testing"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/asm"
	"srv6bpf/internal/bpf/maps"
	"srv6bpf/internal/core"
	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/packet"
)

var (
	srcA = netip.MustParseAddr("2001:db8:a::1")
	dstB = netip.MustParseAddr("2001:db8:b::1")
	sid  = netip.MustParseAddr("fc00:1::bf")
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// fixture is an A --- R --- B line with an End.BPF SID on R.
type fixture struct {
	sim     *netsim.Sim
	a, r, b *netsim.Node
}

func newFixture(t *testing.T, spec *bpf.ProgramSpec, jit bool) *fixture {
	t.Helper()
	s := netsim.New(1)
	f := &fixture{
		sim: s,
		a:   s.AddNode("A", netsim.HostCostModel()),
		r:   s.AddNode("R", netsim.ServerCostModel()),
		b:   s.AddNode("B", netsim.HostCostModel()),
	}
	f.a.AddAddress(srcA)
	f.b.AddAddress(dstB)
	f.r.AddAddress(netip.MustParseAddr("2001:db8:aa::1"))

	fast := netem.Config{RateBps: 10_000_000_000, DelayNs: 10 * netsim.Microsecond}
	aIf, raIf := netsim.ConnectSymmetric(f.a, f.r, fast)
	rbIf, bIf := netsim.ConnectSymmetric(f.r, f.b, fast)
	f.a.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: aIf}}})
	f.b.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: bIf}}})
	f.r.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:a::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: raIf}}})
	f.r.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:b::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: rbIf}}})

	if spec != nil {
		prog, err := bpf.LoadProgram(spec, core.Seg6LocalHook(), nil, bpf.LoadOptions{JIT: &jit})
		if err != nil {
			t.Fatalf("LoadProgram: %v", err)
		}
		end, err := core.AttachEndBPF(prog)
		if err != nil {
			t.Fatalf("AttachEndBPF: %v", err)
		}
		f.r.AddRoute(&netsim.Route{
			Prefix:    netip.PrefixFrom(sid, 128),
			Kind:      netsim.RouteSeg6Local,
			Behaviour: end.Behaviour(),
		})
	}
	return f
}

// sendProbe emits one SRv6 packet A -> [sid, B] and returns what B
// received (nil if dropped).
func (f *fixture) sendProbe(t *testing.T) *packet.Packet {
	t.Helper()
	var got *packet.Packet
	f.b.HandleUDP(9999, func(n *netsim.Node, p *packet.Packet, meta *netsim.PacketMeta) {
		got = p
	})
	srh := packet.NewSRH([]netip.Addr{sid, dstB})
	srh.Tag = 41
	raw, err := packet.BuildPacket(srcA, sid, packet.WithSRH(srh),
		packet.WithUDP(1000, 9999), packet.WithPayload(make([]byte, 64)))
	if err != nil {
		t.Fatal(err)
	}
	f.a.Output(raw)
	f.sim.Run()
	return got
}

func TestEndBPFEmptyProgram(t *testing.T) {
	for _, jit := range []bool{true, false} {
		f := newFixture(t, EndSpec(), jit)
		got := f.sendProbe(t)
		if got == nil {
			t.Fatalf("jit=%v: packet dropped; R counters: %v", jit, f.r.Counters())
		}
		if got.IPv6.Dst != dstB || got.SRH.SegmentsLeft != 0 {
			t.Errorf("jit=%v: dst=%v sl=%d", jit, got.IPv6.Dst, got.SRH.SegmentsLeft)
		}
	}
}

func TestEndBPFRequiresSegmentsLeft(t *testing.T) {
	f := newFixture(t, EndSpec(), true)
	var delivered bool
	f.b.HandleUDP(9999, func(*netsim.Node, *packet.Packet, *netsim.PacketMeta) { delivered = true })
	// SL=0 packet addressed straight at the SID: must be dropped.
	srh := packet.NewSRH([]netip.Addr{sid})
	srh.SegmentsLeft = 0
	raw, err := packet.BuildPacket(srcA, sid, packet.WithSRH(srh), packet.WithUDP(1, 9999))
	if err != nil {
		t.Fatal(err)
	}
	f.a.Output(raw)
	f.sim.Run()
	if delivered {
		t.Fatal("SL=0 packet passed End.BPF")
	}
	if f.r.Counters()["drop_seg6local_error"] == 0 {
		t.Errorf("counters: %v", f.r.Counters())
	}
}

func TestEndBPFNonSRv6Dropped(t *testing.T) {
	f := newFixture(t, EndSpec(), true)
	raw, _ := packet.BuildPacket(srcA, sid, packet.WithUDP(1, 9999))
	f.a.Output(raw)
	f.sim.Run()
	if f.r.Counters()["drop_seg6local_error"] == 0 {
		t.Errorf("plain IPv6 packet not rejected by End.BPF: %v", f.r.Counters())
	}
}

func TestEndTBPF(t *testing.T) {
	f := newFixture(t, EndTSpec(7), true)
	// Table 7 routes B's prefix via the same egress as main.
	rbIf := f.r.Ifaces()[1]
	f.r.Table(7).Add(&netsim.Route{
		Prefix: pfx("2001:db8:b::/48"), Kind: netsim.RouteForward,
		Nexthops: []netsim.Nexthop{{Iface: rbIf}},
	})
	got := f.sendProbe(t)
	if got == nil {
		t.Fatalf("dropped; R: %v", f.r.Counters())
	}
	if got.IPv6.Dst != dstB {
		t.Errorf("dst = %v", got.IPv6.Dst)
	}
}

func TestEndTBPFMissingTableDrops(t *testing.T) {
	f := newFixture(t, EndTSpec(7), true)
	// No table 7: the redirect lookup fails and the packet dies.
	if got := f.sendProbe(t); got != nil {
		t.Fatal("packet survived a redirect into a missing table")
	}
}

func TestTagIncrement(t *testing.T) {
	for _, jit := range []bool{true, false} {
		f := newFixture(t, TagIncrementSpec(), jit)
		got := f.sendProbe(t)
		if got == nil {
			t.Fatalf("jit=%v: dropped; R: %v", jit, f.r.Counters())
		}
		if got.SRH.Tag != 42 {
			t.Errorf("jit=%v: tag = %d, want 42", jit, got.SRH.Tag)
		}
	}
}

func TestAddTLV(t *testing.T) {
	f := newFixture(t, AddTLVSpec(), true)
	got := f.sendProbe(t)
	if got == nil {
		t.Fatalf("dropped; R: %v", f.r.Counters())
	}
	found := false
	for _, tlv := range got.SRH.TLVs {
		if o, ok := tlv.(packet.OpaqueTLV); ok && o.Type == AddTLVTLVType && len(o.Data) == 6 {
			found = true
		}
	}
	if !found {
		t.Errorf("added TLV missing: %s", got.SRH.Summary())
	}
	// The SRH grew by exactly 8 bytes and stayed valid end-to-end
	// (it passed R's revalidation and B's parser).
	if got.SRH.WireLen()%8 != 0 {
		t.Errorf("SRH len %d", got.SRH.WireLen())
	}
}

// TestAdjustWithZeroFillSurvives documents a subtlety matching kernel
// semantics: space grown by adjust_srh and left zeroed decodes as a
// run of Pad1 TLVs, which *is* structurally valid, so the packet
// passes revalidation.
func TestAdjustWithZeroFillSurvives(t *testing.T) {
	spec := AddTLVSpec()
	// Truncate the program right after adjust_srh: keep prologue (6) +
	// parse (2) + compute end (4) + call setup (3) + call (1) + check
	// (1), then jump out.
	insns := spec.Instructions[:17]
	insns = append(insns, epilogue(core.BPFOK)...)
	spec.Instructions = insns
	spec.Name = "adjust_no_fill"

	f := newFixture(t, spec, true)
	if got := f.sendProbe(t); got == nil {
		t.Fatalf("zero-filled (all-Pad1) growth was dropped; R: %v", f.r.Counters())
	}
}

// TestCorruptTLVDropped injects the failure mode §3.1 calls out: a
// program that grows the SRH and fills it with a TLV whose length
// claims bytes beyond the header must have its packet dropped at
// revalidation.
func TestCorruptTLVDropped(t *testing.T) {
	spec := AddTLVSpec()
	// Patch the TLV the program writes: type 0x99, length 200 — far
	// beyond the 6 bytes that actually follow.
	insns := append(asm.Instructions(nil), spec.Instructions...)
	patched := false
	for i, ins := range insns {
		if ins.OpCode == asm.StoreImm(asm.RFP, 0, 0, asm.Byte).OpCode &&
			ins.Offset == -7 && ins.Constant == 6 {
			insns[i] = asm.StoreImm(asm.RFP, -7, 200, asm.Byte)
			patched = true
		}
	}
	if !patched {
		t.Fatal("could not find the TLV length store to patch")
	}
	spec.Instructions = insns
	spec.Name = "corrupt_tlv"

	f := newFixture(t, spec, true)
	if got := f.sendProbe(t); got != nil {
		t.Fatalf("packet with corrupt TLV survived: %s", got.SRH.Summary())
	}
	if f.r.Counters()["drop_seg6local_error"] == 0 {
		t.Errorf("expected revalidation drop, counters: %v", f.r.Counters())
	}
}

// TestStoreBytesCannotTouchSegments verifies the §3.1 write
// restriction: a program trying to overwrite a segment address gets
// -EPERM/-EINVAL and the packet is unchanged.
func TestStoreBytesCannotTouchSegments(t *testing.T) {
	spec := forbiddenWriteSpec()
	f := newFixture(t, spec, true)
	got := f.sendProbe(t)
	if got == nil {
		t.Fatalf("dropped; R: %v", f.r.Counters())
	}
	// Segment list untouched: final segment is still B.
	if got.SRH.Segments[0] != dstB {
		t.Errorf("segment overwritten: %v", got.SRH.Segments)
	}
}

func TestCostChargedForBPF(t *testing.T) {
	f := newFixture(t, TagIncrementSpec(), true)
	if got := f.sendProbe(t); got == nil {
		t.Fatal("dropped")
	}
	// A second fixture with the empty program must take less virtual
	// time per packet; compare by running many packets and comparing
	// completion times under CPU saturation in the Figure 2 bench
	// instead — here just assert the instruction accounting moved.
	// (The detailed throughput relationships are asserted in
	// bench_test.go and EXPERIMENTS.md.)
	if f.r.Counters()["drop_seg6local_error"] != 0 {
		t.Errorf("unexpected drops: %v", f.r.Counters())
	}
}

// TestAllBundledProgramsVerify loads every network function shipped
// with the repository against its hook, with both engines.
func TestAllBundledProgramsVerify(t *testing.T) {
	seg6local := core.Seg6LocalHook()
	lwt := core.LWTOutHook()
	cases := []struct {
		spec *bpf.ProgramSpec
		hook string
	}{
		{EndSpec(), "seg6local"},
		{EndTSpec(7), "seg6local"},
		{TagIncrementSpec(), "seg6local"},
		{AddTLVSpec(), "seg6local"},
		{EndDMSpec(), "seg6local"},
		{OAMPSpec(), "seg6local"},
		{DMEncapSpec(), "lwt"},
		{WRRSpec(), "lwt"},
	}
	for _, tc := range cases {
		hook := seg6local
		if tc.hook == "lwt" {
			hook = lwt
		}
		avail := testMapsFor(t, tc.spec)
		for _, jit := range []bool{true, false} {
			jit := jit
			if _, err := bpf.LoadProgram(tc.spec, hook, avail, bpf.LoadOptions{JIT: &jit}); err != nil {
				t.Errorf("%s (jit=%v): %v", tc.spec.Name, jit, err)
			}
		}
	}
}

// testMapsFor creates whatever maps a bundled program references.
func testMapsFor(t *testing.T, spec *bpf.ProgramSpec) map[string]*maps.Map {
	t.Helper()
	out := make(map[string]*maps.Map)
	for _, ins := range spec.Instructions {
		if !ins.IsLoadFromMap() {
			continue
		}
		if _, ok := out[ins.MapName]; ok {
			continue
		}
		switch ins.MapName {
		case DMConfMap:
			out[ins.MapName] = maps.MustNew(maps.Spec{Name: ins.MapName, Type: maps.Array, KeySize: 4, ValueSize: DMConfSize, MaxEntries: 1})
		case DMEventsMap:
			out[ins.MapName] = maps.MustNew(maps.Spec{Name: ins.MapName, Type: maps.PerfEventArray, MaxEntries: 1})
		case WRRConfMap:
			out[ins.MapName] = maps.MustNew(maps.Spec{Name: ins.MapName, Type: maps.Array, KeySize: 4, ValueSize: WRRConfSize, MaxEntries: 1})
		case WRRStateMap:
			out[ins.MapName] = maps.MustNew(maps.Spec{Name: ins.MapName, Type: maps.Array, KeySize: 4, ValueSize: WRRStateSize, MaxEntries: 1})
		default:
			t.Fatalf("unknown map %q in %s", ins.MapName, spec.Name)
		}
	}
	return out
}

// TestServiceFunctionChaining exercises the paper's SFC motivation:
// one SRH steers a packet through TWO different End.BPF functions on
// two routers — Tag++ at the first segment, Add TLV at the second —
// before delivery.
func TestServiceFunctionChaining(t *testing.T) {
	s := netsim.New(1)
	a := s.AddNode("A", netsim.HostCostModel())
	r1 := s.AddNode("R1", netsim.ServerCostModel())
	r2 := s.AddNode("R2", netsim.ServerCostModel())
	b := s.AddNode("B", netsim.HostCostModel())
	a.AddAddress(srcA)
	b.AddAddress(dstB)
	r1.AddAddress(netip.MustParseAddr("2001:db8:aa::1"))
	r2.AddAddress(netip.MustParseAddr("2001:db8:ab::1"))

	fast := netem.Config{RateBps: 10_000_000_000, DelayNs: 10 * netsim.Microsecond}
	aIf, r1aIf := netsim.ConnectSymmetric(a, r1, fast)
	r12If, r21If := netsim.ConnectSymmetric(r1, r2, fast)
	r2bIf, bIf := netsim.ConnectSymmetric(r2, b, fast)

	sid1 := netip.MustParseAddr("fc00:1::f1")
	sid2 := netip.MustParseAddr("fc00:2::f2")

	a.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: aIf}}})
	b.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: bIf}}})
	r1.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:a::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: r1aIf}}})
	r1.AddRoute(&netsim.Route{Prefix: pfx("fc00:2::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: r12If}}})
	r1.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:b::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: r12If}}})
	r2.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:b::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: r2bIf}}})
	r2.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:a::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: r21If}}})

	attach := func(node *netsim.Node, s6 netip.Addr, spec *bpf.ProgramSpec) {
		prog, err := bpf.LoadProgram(spec, core.Seg6LocalHook(), nil, bpf.LoadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		end, err := core.AttachEndBPF(prog)
		if err != nil {
			t.Fatal(err)
		}
		node.AddRoute(&netsim.Route{Prefix: netip.PrefixFrom(s6, 128), Kind: netsim.RouteSeg6Local, Behaviour: end.Behaviour()})
	}
	attach(r1, sid1, TagIncrementSpec())
	attach(r2, sid2, AddTLVSpec())

	var got *packet.Packet
	b.HandleUDP(9, func(n *netsim.Node, p *packet.Packet, meta *netsim.PacketMeta) { got = p })

	srh := packet.NewSRH([]netip.Addr{sid1, sid2, dstB})
	srh.Tag = 1
	raw, err := packet.BuildPacket(srcA, sid1, packet.WithSRH(srh), packet.WithUDP(1, 9))
	if err != nil {
		t.Fatal(err)
	}
	a.Output(raw)
	s.Run()

	if got == nil {
		t.Fatalf("chained packet lost; R1=%v R2=%v", r1.Counters(), r2.Counters())
	}
	if got.SRH.Tag != 2 {
		t.Errorf("Tag++ did not run: tag=%d", got.SRH.Tag)
	}
	foundTLV := false
	for _, tlv := range got.SRH.TLVs {
		if o, ok := tlv.(packet.OpaqueTLV); ok && o.Type == AddTLVTLVType {
			foundTLV = true
		}
	}
	if !foundTLV {
		t.Errorf("Add TLV did not run: %s", got.SRH.Summary())
	}
	if got.SRH.SegmentsLeft != 0 || got.IPv6.Dst != dstB {
		t.Errorf("chain did not complete: %s", got.Summary())
	}
}

// TestBundledProgramListingsRoundTrip dumps every bundled program as
// a text listing, re-parses it with the text assembler, and requires
// the identical wire image — the sebpf dump/asm pipeline.
func TestBundledProgramListingsRoundTrip(t *testing.T) {
	for _, spec := range []*bpf.ProgramSpec{
		EndSpec(), EndTSpec(7), TagIncrementSpec(), AddTLVSpec(),
		DMEncapSpec(), EndDMSpec(), WRRSpec(), OAMPSpec(),
	} {
		listing := spec.Instructions.String()
		back, err := asm.Parse(listing)
		if err != nil {
			t.Errorf("%s: parse of own listing: %v", spec.Name, err)
			continue
		}
		a, err := spec.Instructions.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Assemble()
		if err != nil {
			t.Errorf("%s: reassemble: %v", spec.Name, err)
			continue
		}
		wa, _ := a.Bytes()
		wb, _ := b.Bytes()
		if string(wa) != string(wb) {
			t.Errorf("%s: wire image changed across text round trip", spec.Name)
		}
	}
}
