package topo

import (
	"fmt"
	"testing"

	"srv6bpf/internal/netsim"
	"srv6bpf/internal/packet"
)

// sendBetween pushes one UDP packet from a to b and reports whether
// it arrived.
func sendBetween(t *testing.T, nw *Network, a, b *netsim.Node) bool {
	t.Helper()
	got := 0
	b.HandleUDP(7, func(n *netsim.Node, p *packet.Packet, meta *netsim.PacketMeta) { got++ })
	raw, err := packet.BuildPacket(nw.HostAddr(a), nw.HostAddr(b),
		packet.WithUDP(1000, 7), packet.WithPayload([]byte("ping")))
	if err != nil {
		t.Fatal(err)
	}
	a.Output(raw)
	nw.Sim.Run()
	return got == 1
}

func TestLineConnectivity(t *testing.T) {
	sim := netsim.New(1)
	nw, err := Line(sim, 8, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Nodes) != 8 || len(nw.Hosts) != 8 {
		t.Fatalf("nodes=%d hosts=%d", len(nw.Nodes), len(nw.Hosts))
	}
	if !sendBetween(t, nw, nw.Hosts[0], nw.Hosts[7]) {
		t.Fatal("end-to-end delivery failed on the line")
	}
}

func TestRingBothDirections(t *testing.T) {
	sim := netsim.New(1)
	nw, err := Ring(sim, 6, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	// Antipodal nodes have two equal-cost directions: the route must
	// carry 2 nexthops.
	r := nw.Hosts[0].Lookup(nw.HostAddr(nw.Hosts[3]), netsim.MainTable)
	if r == nil || len(r.Nexthops) != 2 {
		t.Fatalf("antipodal route = %+v, want 2 ECMP nexthops", r)
	}
	if !sendBetween(t, nw, nw.Hosts[1], nw.Hosts[4]) {
		t.Fatal("ring delivery failed")
	}
}

func TestFatTreeShape(t *testing.T) {
	sim := netsim.New(1)
	nw, err := FatTree(sim, 4, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(nw.Hosts), 16; got != want {
		t.Fatalf("hosts = %d, want %d", got, want)
	}
	if got, want := len(nw.Nodes), 36; got != want {
		t.Fatalf("nodes = %d, want %d (16 hosts + 20 switches)", got, want)
	}
	// Cross-pod traffic must see ECMP at the edge uplink: k/2 = 2
	// aggregation choices.
	src, dst := nw.Hosts[0], nw.Hosts[len(nw.Hosts)-1]
	edge := src.Ifaces()[0].Peer().Node
	r := edge.Lookup(nw.HostAddr(dst), netsim.MainTable)
	if r == nil || len(r.Nexthops) != 2 {
		t.Fatalf("edge uplink route = %+v, want 2 ECMP nexthops", r)
	}
	if !sendBetween(t, nw, src, dst) {
		t.Fatal("cross-pod delivery failed")
	}
}

func TestFatTreeAllPairsSample(t *testing.T) {
	sim := netsim.New(1)
	nw, err := FatTree(sim, 4, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	want := 0
	for _, h := range nw.Hosts {
		h := h
		h.HandleUDP(9, func(n *netsim.Node, p *packet.Packet, meta *netsim.PacketMeta) { delivered++ })
	}
	for i, a := range nw.Hosts {
		b := nw.Hosts[(i+5)%len(nw.Hosts)]
		if a == b {
			continue
		}
		raw, err := packet.BuildPacket(nw.HostAddr(a), nw.HostAddr(b),
			packet.WithUDP(1000, 9), packet.WithPayload([]byte(fmt.Sprintf("m%d", i))))
		if err != nil {
			t.Fatal(err)
		}
		a.Output(raw)
		want++
	}
	nw.Sim.Run()
	if delivered != want {
		t.Fatalf("delivered %d/%d", delivered, want)
	}
}

func TestWaxmanConnectedAndReproducible(t *testing.T) {
	build := func() (*Network, string) {
		sim := netsim.New(1)
		nw, err := Waxman(sim, 40, WaxmanParams{Alpha: 0.4, Beta: 0.3, Seed: 11}, Opts{})
		if err != nil {
			t.Fatal(err)
		}
		shape := ""
		for _, n := range nw.Nodes {
			shape += fmt.Sprintf("%s:%d ", n.Name, len(n.Ifaces()))
		}
		return nw, shape
	}
	nw1, s1 := build()
	_, s2 := build()
	if s1 != s2 {
		t.Fatal("same parameters produced different Waxman graphs")
	}
	// Connectivity: corner-to-corner delivery must work regardless of
	// which random component stitching happened.
	if !sendBetween(t, nw1, nw1.Hosts[0], nw1.Hosts[39]) {
		t.Fatal("waxman delivery failed")
	}
	for _, n := range nw1.Nodes {
		if len(n.Ifaces()) == 0 {
			t.Fatalf("%s is isolated", n.Name)
		}
	}
}

func TestPermutationPairs(t *testing.T) {
	sim := netsim.New(1)
	nw, err := Ring(sim, 9, Opts{})
	if err != nil {
		t.Fatal(err)
	}
	pairs := nw.PermutationPairs(3)
	if len(pairs) != 9 {
		t.Fatalf("pairs = %d", len(pairs))
	}
	seenDst := map[*netsim.Node]bool{}
	for _, p := range pairs {
		if p[0] == p[1] {
			t.Fatal("host paired with itself")
		}
		if seenDst[p[1]] {
			t.Fatal("host receives twice")
		}
		seenDst[p[1]] = true
	}
}
