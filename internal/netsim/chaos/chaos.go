// Package chaos is a deterministic, seedable fault-injection layer
// for the network simulator: it schedules fault campaigns — node
// crash/restart cycles, link flapping with configurable duty cycles,
// one-way link degradation, and netem-level packet impairments
// (corruption, duplication, reordering) — against a simulation before
// it runs.
//
// Determinism is the design constraint everything else follows from.
// The fault timeline is computed at plan time from the engine's own
// seeded RNG, so the same seed yields the same faults regardless of
// topology iteration order at runtime; every fault lands in the
// simulation as an ordinary keyed event (Node.Schedule,
// Sim.FailLink/RestoreLink, Sim.CrashNode/RestartNode), so under the
// sharded engines faults order exactly as they would sequentially,
// checkpoint with the shard heaps, and survive optimistic rollback
// and annihilation untouched; and per-packet impairment draws come
// from the transmitting node's private RNG stream, gated on the knob
// being nonzero, so a chaos-free run consumes bit-identical random
// streams whether or not this package is linked in. The equivalence
// fuzz matrix (netsim's TestShardEquivalenceFuzz chaos arm) locks all
// of this down: one seed, one fingerprint, every engine.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"srv6bpf/internal/netsim"
)

// FaultKind enumerates the fault classes the engine injects.
type FaultKind int

// Fault classes.
const (
	FaultCrash FaultKind = iota
	FaultFlap
	FaultDegrade
	FaultImpair
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultFlap:
		return "flap"
	case FaultDegrade:
		return "degrade"
	case FaultImpair:
		return "impair"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Fault is one planned fault: what, where, and for which window.
type Fault struct {
	Kind  FaultKind
	Start int64
	End   int64
	// Node is set for crashes, Link for link-level faults.
	Node *netsim.Node
	Link *netsim.Iface
	// Cycles is the number of down/up cycles of a flap.
	Cycles int
}

func (f Fault) String() string {
	target := ""
	switch {
	case f.Node != nil:
		target = f.Node.Name
	case f.Link != nil:
		target = f.Link.String()
	}
	if f.Kind == FaultFlap {
		return fmt.Sprintf("%v %s [%d,%d) x%d", f.Kind, target, f.Start, f.End, f.Cycles)
	}
	return fmt.Sprintf("%v %s [%d,%d)", f.Kind, target, f.Start, f.End)
}

// Impairment is a set of netem-level packet impairments applied to
// one link direction for a bounded window.
type Impairment struct {
	// Corrupt, Duplicate and Reorder are per-packet probabilities
	// (see netem.Config).
	Corrupt   float64
	Duplicate float64
	Reorder   float64
	// Loss, when nonzero, overrides the direction's loss probability
	// for the window (1.0 = one-way blackhole).
	Loss float64
}

// Engine plans and schedules fault campaigns against one simulation.
// Create it, inject faults (directly or via a Campaign), then run the
// simulation; all scheduling happens at plan time, from quiescent
// driver code.
type Engine struct {
	sim *netsim.Sim
	rng *rand.Rand

	faults []Fault
}

// New creates a chaos engine for s. The seed is independent of the
// simulation's: the same fault campaign can be replayed against
// different traffic seeds and vice versa.
func New(s *netsim.Sim, seed int64) *Engine {
	return &Engine{sim: s, rng: rand.New(rand.NewSource(seed))}
}

// Plan returns the planned fault timeline, ordered by start time.
func (e *Engine) Plan() []Fault {
	out := append([]Fault(nil), e.faults...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// String renders the planned timeline.
func (e *Engine) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos plan (%d faults):\n", len(e.faults))
	for _, f := range e.Plan() {
		fmt.Fprintf(&b, "  %v\n", f)
	}
	return b.String()
}

// CrashNode schedules a crash of n at start and its restart at end.
func (e *Engine) CrashNode(n *netsim.Node, start, end int64) {
	e.faults = append(e.faults, Fault{Kind: FaultCrash, Start: start, End: end, Node: n})
	e.sim.CrashNode(start, n)
	e.sim.RestartNode(end, n)
}

// FlapLink schedules cycles down/up flips of i's link starting at
// start: down for downNs, up for upNs, repeated. Both ends flip (a
// flapping cable, not an interface).
func (e *Engine) FlapLink(i *netsim.Iface, start, downNs, upNs int64, cycles int) {
	at := start
	for c := 0; c < cycles; c++ {
		e.sim.FailLink(at, i)
		e.sim.RestoreLink(at+downNs, i)
		at += downNs + upNs
	}
	e.faults = append(e.faults, Fault{
		Kind: FaultFlap, Start: start, End: at - upNs, Link: i, Cycles: cycles,
	})
}

// ImpairLink applies imp to the i -> peer direction for [start, end):
// the transmitting node's qdisc gets the impairment knobs at start
// and its previous configuration back at end. Degradation is one-way
// by construction — impair both directions explicitly if needed.
func (e *Engine) ImpairLink(i *netsim.Iface, start, end int64, imp Impairment) {
	kind := FaultImpair
	if imp.Loss > 0 {
		kind = FaultDegrade
	}
	e.faults = append(e.faults, Fault{Kind: kind, Start: start, End: end, Link: i})
	q := i.Qdisc()
	baseLoss := q.Config().Loss
	n := i.Node
	n.Schedule(start, func() {
		q.SetImpairments(imp.Corrupt, imp.Duplicate, imp.Reorder)
		if imp.Loss > 0 {
			q.SetLoss(imp.Loss)
		}
	})
	n.Schedule(end, func() {
		q.SetImpairments(0, 0, 0)
		q.SetLoss(baseLoss)
	})
}

// Campaign describes a randomized fault campaign over a topology
// window. All counts are totals over the window; the engine draws
// targets and instants from its own RNG at plan time.
type Campaign struct {
	// Start and End bound the campaign window. Crash/flap/impair
	// windows are drawn inside it; restores never extend past End.
	Start, End int64

	// Crashes is the number of crash/restart cycles to inject.
	Crashes int
	// CrashDown bounds the downtime of each crash [min, max).
	CrashDown [2]int64

	// Flaps is the number of flap bursts.
	Flaps int
	// FlapPeriod bounds one down+up cycle length [min, max); the duty
	// cycle is drawn uniformly in [0.25, 0.75].
	FlapPeriod [2]int64
	// FlapCycles bounds the cycles per burst [min, max).
	FlapCycles [2]int

	// Impairments is the number of impairment windows.
	Impairments int
	// ImpairLen bounds each window's length [min, max).
	ImpairLen [2]int64
	// Impair is the impairment applied during each window. Zero-value
	// fields stay off.
	Impair Impairment
}

// Apply plans a randomized campaign: targets and instants are drawn
// from the engine's RNG over the given candidate nodes and links.
// Crash targets are drawn without overlapping in time on one node, so
// a crash/restart pair never interleaves with another on the same
// node; flap and impairment targets avoid double-booking a link the
// same way. Candidates may be nil to mean all of the sim's nodes /
// all distinct links between them.
func (e *Engine) Apply(c Campaign, nodes []*netsim.Node, links []*netsim.Iface) {
	if nodes == nil {
		nodes = e.sim.Nodes()
	}
	if links == nil {
		links = allLinks(e.sim)
	}
	window := c.End - c.Start
	if window <= 0 {
		return
	}
	nodeBusy := make(map[*netsim.Node][][2]int64)
	linkBusy := make(map[*netsim.Iface][][2]int64)

	for i := 0; i < c.Crashes && len(nodes) > 0; i++ {
		n := nodes[e.rng.Intn(len(nodes))]
		down := drawIn(e.rng, c.CrashDown)
		if down <= 0 || down >= window {
			continue
		}
		start := c.Start + e.rng.Int63n(window-down)
		if overlaps(nodeBusy[n], start, start+down) {
			continue
		}
		nodeBusy[n] = append(nodeBusy[n], [2]int64{start, start + down})
		e.CrashNode(n, start, start+down)
	}

	for i := 0; i < c.Flaps && len(links) > 0; i++ {
		l := links[e.rng.Intn(len(links))]
		period := drawIn(e.rng, c.FlapPeriod)
		cycles := drawIntIn(e.rng, c.FlapCycles)
		if period <= 0 || cycles <= 0 {
			continue
		}
		duty := 0.25 + 0.5*e.rng.Float64()
		downNs := int64(float64(period) * duty)
		upNs := period - downNs
		if downNs <= 0 || upNs <= 0 {
			continue
		}
		total := int64(cycles) * period
		if total >= window {
			continue
		}
		start := c.Start + e.rng.Int63n(window-total)
		if overlaps(linkBusy[l], start, start+total) ||
			overlaps(nodeBusy[l.Node], start, start+total) ||
			overlaps(nodeBusy[l.Peer().Node], start, start+total) {
			continue
		}
		linkBusy[l] = append(linkBusy[l], [2]int64{start, start + total})
		e.FlapLink(l, start, downNs, upNs, cycles)
	}

	for i := 0; i < c.Impairments && len(links) > 0; i++ {
		l := links[e.rng.Intn(len(links))]
		length := drawIn(e.rng, c.ImpairLen)
		if length <= 0 || length >= window {
			continue
		}
		start := c.Start + e.rng.Int63n(window-length)
		if overlaps(linkBusy[l], start, start+length) {
			continue
		}
		linkBusy[l] = append(linkBusy[l], [2]int64{start, start + length})
		e.ImpairLink(l, start, start+length, c.Impair)
	}
}

// allLinks enumerates each link once (by its lower-indexed end) in
// deterministic node/iface order.
func allLinks(s *netsim.Sim) []*netsim.Iface {
	seen := make(map[*netsim.Iface]bool)
	var out []*netsim.Iface
	for _, n := range s.Nodes() {
		for _, i := range n.Ifaces() {
			if i.Peer() == nil || seen[i] || seen[i.Peer()] {
				continue
			}
			seen[i] = true
			out = append(out, i)
		}
	}
	return out
}

// drawIn draws uniformly in [b[0], b[1]); a degenerate bound returns
// b[0].
func drawIn(rng *rand.Rand, b [2]int64) int64 {
	if b[1] <= b[0] {
		return b[0]
	}
	return b[0] + rng.Int63n(b[1]-b[0])
}

func drawIntIn(rng *rand.Rand, b [2]int) int {
	if b[1] <= b[0] {
		return b[0]
	}
	return b[0] + rng.Intn(b[1]-b[0])
}

// overlaps reports whether [start, end) intersects any busy interval.
func overlaps(busy [][2]int64, start, end int64) bool {
	for _, iv := range busy {
		if start < iv[1] && iv[0] < end {
			return true
		}
	}
	return false
}
