package netsim

import (
	"fmt"
	"math"
	"sync"

	"srv6bpf/internal/stats"
)

// shard owns a disjoint set of nodes: their event heap, their clock
// and their outgoing cross-shard message buffers. During a window all
// shards execute concurrently; a shard touches only its own state
// (and, read-only, immutable topology such as peer addresses), so no
// locks guard the hot path.
type shard struct {
	id  int
	sim *Sim

	// now is the shard's virtual clock: the timestamp of the event
	// being executed, or the last barrier the shard was synced to.
	now int64

	heap eventHeap

	// out[d] buffers packet deliveries destined for shard d during a
	// window; the coordinator drains them at the barrier. Only this
	// shard's worker appends, only the quiescent coordinator drains.
	out [][]xmsg

	// winEnd is the exclusive end of the window currently executing,
	// set by the coordinator before workers start. Cross-shard events
	// must land at or after it — the conservative invariant — and
	// scheduleFor enforces that at message creation.
	winEnd int64

	// panicked carries an event panic from the worker goroutine back
	// to the coordinator, which re-raises it on the Run caller — the
	// same propagation a sequential run gives.
	panicked any

	// nodes lists the nodes this shard owns (set by SetShards); the
	// optimistic engine snapshots them at checkpoint boundaries.
	nodes []*Node

	// execTo is the exclusive execution frontier: every event with
	// at < execTo has been executed (possibly speculatively). A
	// cross-shard message below it is a straggler.
	execTo int64

	// Optimistic-engine history, owned by the quiescent coordinator:
	// retained checkpoints (oldest first, times non-decreasing), the
	// cross-shard inputs received since the oldest checkpoint, the
	// delivered cross-shard sends a rollback would have to reconcile,
	// and the tentative list — delivered sends whose emitting interval
	// was rolled back, awaiting reproduction (suppress) or staleness
	// (anti-message).
	ckpts     []*checkpoint
	inLog     []inputRec
	sentLog   []sentRec
	tentative []sentRec

	// tentMin caches the minimum emission time (schedAt) across the
	// tentative list; tentMinStale marks it for lazy recomputation
	// after a removal hit the cached minimum. The cache turns the
	// per-barrier GVT contribution (and the stale-sweep skip test)
	// from an O(tentative) scan per shard into O(1) reads — the
	// O(shards·tentative) bill that dominated barriers at 16+ shards.
	// Meaningful only while len(tentative) > 0; mutate tentative only
	// through tentAppend/tentRemoved or recompute the cache in place.
	tentMin      int64
	tentMinStale bool

	// lastCkptRound is the round of this shard's newest checkpoint;
	// the coordinator's checkpoint stride (see horizonCtl) decides how
	// many rounds may pass before the next one. forceCkpt makes the
	// next active round checkpoint unconditionally — set after a
	// rollback so a repeat straggler cannot force the same deep
	// re-execution twice.
	lastCkptRound uint64
	forceCkpt     bool

	// ckptSeq counts checkpoints taken by this shard. Packet buffers
	// stamp it when their delivery event is created: if no checkpoint
	// intervened by the time the buffer is processed, no retained
	// snapshot can reference it and the datapath may mutate it in
	// place instead of copying it per hop (see Node.drain).
	ckptSeq uint64
}

func newShard(s *Sim, id int) *shard {
	return &shard{id: id, sim: s, now: 0}
}

// push inserts a fully-keyed event into this shard's heap. Callers
// run either on this shard's worker or on the quiescent coordinator.
func (sh *shard) push(e event) { sh.heap.push(e) }

// sendCross routes a packet delivery produced by this shard to the
// shard owning the receiving link end. The event key travels with the
// message, so the destination orders it exactly as a sequential run
// would. Outside a parallel window (driver code calling Node.Output,
// setup traffic) only one goroutine is live, so the event goes
// straight into the destination heap — outboxes exist for the
// concurrent case only.
func (sh *shard) sendCross(m xmsg) {
	sh.sim.engMsgs.Inc(sh.id)
	dst := m.peer.Node.shard
	if !sh.sim.running {
		dst.heap.push(m.event())
		return
	}
	if sh.sim.engine != EngineOptimistic && m.at < sh.winEnd {
		// The destination shard may already have executed past m.at
		// within this window; delivering late would silently break the
		// sequential-equivalence guarantee. This only happens when a
		// cross-shard link's effective delay dropped below the
		// lookahead after SetShards validated it (Qdisc.SetDelay, a
		// negative ExtraDelayNs). The optimistic engine has no such
		// invariant: a message below the destination's frontier simply
		// rolls it back at the barrier.
		panic(fmt.Sprintf(
			"netsim: cross-shard event at t=%d inside the current window (end %d): a cross-shard link's delay was lowered below the lookahead (%d ns) after SetShards",
			m.at, sh.winEnd, sh.sim.lookahead))
	}
	sh.out[dst.id] = append(sh.out[dst.id], m)
}

// runTo executes this shard's events with at < end in key order. The
// execution frontier advances to just past the last executed event —
// not to end — so idle virtual time is never claimed as speculated,
// which keeps optimistic straggler detection (and therefore rollback
// frequency) minimal.
func (sh *shard) runTo(end int64) {
	ev := &sh.sim.engEvents
	nodes := sh.sim.nodes
	// Dirty bits feed only the optimistic engine's incremental
	// checkpoints; don't tax the conservative hot loop for them.
	mark := sh.sim.engine == EngineOptimistic
	for len(sh.heap) > 0 && sh.heap[0].at < end {
		e := sh.heap.pop()
		sh.now = e.at
		if e.at >= sh.execTo {
			sh.execTo = e.at + 1
		}
		// Dirty-tracking for incremental checkpoints: a node event
		// mutates (at most) its scheduling node's state plus receive-side
		// state, which deliver/setOneEnd/xmsg mark themselves. A
		// cross-shard delivery carries the *sender's* index as src —
		// a node this shard does not own — so only mark shard-owned
		// sources; the delivery closure marks its receiver itself. A
		// driver event (src < 0) is an arbitrary closure, so
		// over-approximate: everything this shard owns may have been
		// touched.
		if mark {
			if e.src >= 0 {
				if n := nodes[e.src]; n.shard == sh {
					n.dirty = true
				}
			} else {
				for _, n := range sh.nodes {
					n.dirty = true
				}
			}
		}
		ev.Inc(sh.id)
		sh.sim.exec(&e)
	}
}

// SetShards partitions the simulation's nodes into n shards for
// parallel execution. n == 1 restores the sequential engine. The
// partition is deterministic (contiguous blocks of node creation
// order), so a given topology always shards the same way; topologies
// whose creation order carries no locality (random graphs) should
// hand SetShardsPartitioned a topology-aware assignment instead (see
// internal/netsim/partition).
//
// The optional engine argument selects the synchronisation protocol
// (default EngineConservative). Under the conservative engine every
// link whose two ends land in different shards must carry a nonzero,
// jitter-free propagation delay: the minimum such delay becomes the
// engine's lookahead — the window length shards may run ahead of each
// other without synchronising — and SetShards returns an error naming
// the offending link otherwise. EngineOptimistic accepts any
// cross-shard link (zero-delay and jittered included): shards
// speculate through a horizon (see SetHorizon) and roll back to
// checkpoints when a straggler message proves them wrong.
//
// Call SetShards after the topology is built and while the sim is
// quiescent (not from inside an event). Events already scheduled are
// re-routed to the shard of the node that scheduled them.
func (s *Sim) SetShards(n int, engine ...Engine) error {
	return s.SetShardsPartitioned(n, nil, engine...)
}

// SetShardsPartitioned is SetShards with an explicit node→shard
// assignment: assign[i] names the shard owning the i-th node in
// creation order (Sim.Nodes order). A nil assign falls back to the
// contiguous block partition. Every shard must own at least one node.
// The assignment only relocates state ownership — the committed
// schedule, every counter and every delivery trace stay bit-identical
// to a sequential run under any assignment (the equivalence fuzzer
// runs arms with both partitioners).
func (s *Sim) SetShardsPartitioned(n int, assign []int, engine ...Engine) error {
	if s.running {
		return fmt.Errorf("netsim: SetShards while a parallel window is running")
	}
	if n < 1 {
		return fmt.Errorf("netsim: shard count %d < 1", n)
	}
	if n > len(s.nodes) && n > 1 {
		return fmt.Errorf("netsim: %d shards for %d nodes", n, len(s.nodes))
	}
	if assign != nil && len(assign) != len(s.nodes) {
		return fmt.Errorf("netsim: partition assigns %d nodes, sim has %d", len(assign), len(s.nodes))
	}
	eng := EngineConservative
	switch len(engine) {
	case 0:
	case 1:
		eng = engine[0]
		if eng != EngineConservative && eng != EngineOptimistic {
			return fmt.Errorf("netsim: unknown engine %v", eng)
		}
	default:
		return fmt.Errorf("netsim: SetShards takes at most one engine")
	}

	// Capture the previous node→shard pointers so a failed validation
	// can restore them exactly, whatever partition produced them.
	old := s.shards
	oldAssign := make([]*shard, len(s.nodes))
	for i, node := range s.nodes {
		oldAssign[i] = node.shard
	}
	shards := make([]*shard, n)
	now := s.Now()
	for i := range shards {
		shards[i] = newShard(s, i)
		shards[i].now = now
		shards[i].execTo = now
		shards[i].out = make([][]xmsg, n)
	}
	for i, node := range s.nodes {
		sid := i * n / len(s.nodes) // contiguous creation-order blocks
		if assign != nil {
			sid = assign[i]
			if sid < 0 || sid >= n {
				s.resetShardAssignment(oldAssign)
				return fmt.Errorf("netsim: partition assigns node %d to shard %d of %d", i, sid, n)
			}
		}
		node.shard = shards[sid]
		node.shard.nodes = append(node.shard.nodes, node)
	}
	for _, sh := range shards {
		if len(sh.nodes) == 0 {
			s.resetShardAssignment(oldAssign)
			return fmt.Errorf("netsim: partition leaves shard %d empty", sh.id)
		}
	}

	// Validate cross-shard links (conservative engine only), derive
	// the lookahead — the minimum positive cross-shard delay, which
	// also seeds the optimistic engine's default horizon — and count
	// the cut (cross-shard links, each unordered pair once).
	lookahead := int64(math.MaxInt64 / 2)
	cutLinks := 0
	if n > 1 {
		for _, node := range s.nodes {
			for _, ifc := range node.ifaces {
				if ifc.peer == nil || ifc.peer.Node.shard == node.shard {
					continue
				}
				if node.idx < ifc.peer.Node.idx {
					cutLinks++
				}
				cfg := ifc.q.Config()
				if eng == EngineConservative {
					if cfg.DelayNs <= 0 {
						s.resetShardAssignment(oldAssign)
						return fmt.Errorf("netsim: link %s has zero propagation delay but crosses shards %d/%d (use EngineOptimistic)",
							ifc, node.shard.id, ifc.peer.Node.shard.id)
					}
					if cfg.JitterNs > 0 {
						s.resetShardAssignment(oldAssign)
						return fmt.Errorf("netsim: link %s has delay jitter but crosses shards %d/%d (jitter can undercut the lookahead; use EngineOptimistic)",
							ifc, node.shard.id, ifc.peer.Node.shard.id)
					}
				}
				if cfg.DelayNs > 0 && cfg.DelayNs < lookahead {
					lookahead = cfg.DelayNs
				}
			}
		}
	}

	// Re-route events already scheduled: the key's src field names the
	// scheduling node, whose shard also owns the state the callback
	// touches (driver-level events, src -1, run on shard 0) — except a
	// delivery event, which mutates the *receiving* end's state and
	// must follow the receiver.
	for _, sh := range old {
		for _, e := range sh.heap {
			if e.kind == evClosure && e.fn == nil {
				continue
			}
			dst := shards[0]
			switch {
			case e.kind == evDeliver:
				dst = e.peer.Node.shard
			case e.src >= 0:
				dst = s.nodes[e.src].shard
			}
			dst.heap.push(e)
		}
	}

	s.shards = shards
	s.engine = eng
	s.lookahead = lookahead
	s.cutLinks = cutLinks
	s.horizon = s.deriveHorizon(lookahead)
	s.round = 0
	s.rollbacks = 0
	s.antiMsgs = 0
	s.gvt = now
	s.engEvents = *stats.NewSharded(n)
	s.engMsgs = *stats.NewSharded(n)
	s.engWindows = *stats.NewSharded(n)
	s.engCkpts = *stats.NewSharded(n)
	s.engCkptCopied = *stats.NewSharded(n)
	s.engCkptAliased = *stats.NewSharded(n)
	s.engCkptBytes = *stats.NewSharded(n)
	s.hc = nil
	s.hcMsgsSeen = 0
	if eng == EngineOptimistic && s.horizonReq == 0 {
		s.hc = newHorizonCtl(s.horizon)
	}
	if s.obs != nil {
		// Histogram cells are per shard; re-partitioning resets them
		// the same way it resets the engine's Sharded counters.
		s.obs.sizeCells(n)
	}
	s.now = now
	return nil
}

// defaultHorizonNs is the optimistic speculation window used when no
// positive cross-shard delay exists to derive one from (pure
// zero-delay partitions).
const defaultHorizonNs = 50 * Microsecond

// deriveHorizon picks the optimistic speculation window: an explicit
// SetHorizon wins; otherwise a few conservative lookaheads (deep
// enough to amortise the checkpoint per round, shallow enough to keep
// rollbacks cheap), or a fixed default when every cross-shard delay
// is zero.
func (s *Sim) deriveHorizon(lookahead int64) int64 {
	if s.horizonReq > 0 {
		return s.horizonReq
	}
	if lookahead > 0 && lookahead < math.MaxInt64/8 {
		return 4 * lookahead
	}
	return defaultHorizonNs
}

// SetHorizon fixes the optimistic engine's speculation window in
// nanoseconds, disabling the adaptive horizon controller; 0 restores
// the derived default and re-enables adaptation. Correctness is
// horizon-independent — only checkpoint frequency and rollback depth
// change. Call while quiescent.
func (s *Sim) SetHorizon(ns int64) {
	if ns < 0 {
		ns = 0
	}
	s.horizonReq = ns
	s.horizon = s.deriveHorizon(s.lookahead)
	s.hc = nil
	s.hcMsgsSeen = s.engMsgs.Total()
	if ns == 0 && s.engine == EngineOptimistic && len(s.shards) > 1 {
		s.hc = newHorizonCtl(s.horizon)
	}
}

// Horizon reports the optimistic speculation window.
func (s *Sim) Horizon() int64 { return s.horizon }

// Engine reports the synchronisation protocol selected by SetShards.
func (s *Sim) Engine() Engine { return s.engine }

// resetShardAssignment restores the captured node->shard pointers
// after a failed SetShards so the sim keeps running on its previous
// partition — whatever assignment produced it.
func (s *Sim) resetShardAssignment(oldAssign []*shard) {
	for i, node := range s.nodes {
		node.shard = oldAssign[i]
	}
}

// ShardCount reports the current number of shards.
func (s *Sim) ShardCount() int { return len(s.shards) }

// Lookahead reports the conservative window length in nanoseconds
// (meaningful only with more than one shard).
func (s *Sim) Lookahead() int64 { return s.lookahead }

// EngineStats is the parallel engine's own accounting, accumulated
// per shard and merged deterministically.
type EngineStats struct {
	Engine    Engine
	Shards    int
	Lookahead int64
	// CutLinks counts the links whose two ends landed in different
	// shards (each unordered pair once) — the static cut the partition
	// chose; Messages is the dynamic price actually paid for it.
	CutLinks int
	// Horizon is the optimistic speculation window (meaningful only
	// under EngineOptimistic).
	Horizon int64
	// Windows counts barrier-to-barrier rounds executed.
	Windows uint64
	// Events counts events executed across all shards. Under the
	// optimistic engine this is gross work: events re-executed after a
	// rollback count again.
	Events uint64
	// Messages counts cross-shard packet/control transfers.
	Messages uint64
	// Checkpoints counts per-shard state snapshots taken; Rollbacks
	// counts straggler-triggered restores; AntiMessages counts
	// speculative sends cancelled. All zero under the conservative
	// engine.
	Checkpoints  uint64
	Rollbacks    uint64
	AntiMessages uint64
	// CkptNodesCopied and CkptNodesAliased split checkpointed node
	// entries into deep copies (dirty since the last snapshot) and
	// aliases of the previous round's snapshot; CkptBytes estimates
	// the bytes actually copied into checkpoints (heap + dirty nodes).
	CkptNodesCopied  uint64
	CkptNodesAliased uint64
	CkptBytes        uint64
	// HorizonAdaptive reports whether the horizon controller is
	// active; HorizonAdjusts counts the horizon changes it made.
	HorizonAdaptive bool
	HorizonAdjusts  uint64
	// GVT is the last committed global virtual time the optimistic
	// engine computed (no rollback can ever reach below it).
	GVT int64
}

// EngineStats merges the per-shard accounting cells (in shard order,
// so the result is deterministic).
func (s *Sim) EngineStats() EngineStats {
	st := EngineStats{
		Engine:           s.engine,
		Shards:           len(s.shards),
		Lookahead:        s.lookahead,
		CutLinks:         s.cutLinks,
		Horizon:          s.horizon,
		Windows:          s.engWindows.Total(),
		Events:           s.engEvents.Total(),
		Messages:         s.engMsgs.Total(),
		Checkpoints:      s.engCkpts.Total(),
		Rollbacks:        s.rollbacks,
		AntiMessages:     s.antiMsgs,
		CkptNodesCopied:  s.engCkptCopied.Total(),
		CkptNodesAliased: s.engCkptAliased.Total(),
		CkptBytes:        s.engCkptBytes.Total(),
		GVT:              s.gvt,
	}
	if s.hc != nil {
		st.HorizonAdaptive = true
		st.HorizonAdjusts = s.hc.adjusts
	}
	return st
}

// minNextAt returns the earliest pending event timestamp across all
// shards, or MaxInt64 when every heap is empty. Callers run at a
// barrier, so outboxes are empty and heaps are complete.
func (s *Sim) minNextAt() int64 {
	next := int64(math.MaxInt64)
	for _, sh := range s.shards {
		if len(sh.heap) > 0 && sh.heap[0].at < next {
			next = sh.heap[0].at
		}
	}
	return next
}

// runWindows drives the conservative parallel loop: find the global
// next event time, let every shard execute the window
// [next, next+lookahead) concurrently, exchange cross-shard messages
// at the barrier, repeat. Events with at <= limit are executed.
func (s *Sim) runWindows(limit int64) {
	var wg sync.WaitGroup
	for {
		next := s.minNextAt()
		if next > limit || next == math.MaxInt64 {
			return
		}
		end := next + s.lookahead
		if end < next { // overflow
			end = math.MaxInt64
		}
		if limit < math.MaxInt64 && end > limit+1 {
			end = limit + 1 // include events at exactly limit
		}

		s.running = true
		for _, sh := range s.shards {
			sh.winEnd = end
		}
		for _, sh := range s.shards {
			sh := sh
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { sh.panicked = recover() }()
				s.obsDo(sh, func() { sh.runTo(end) })
			}()
		}
		wg.Wait()
		s.running = false
		for _, sh := range s.shards {
			if sh.panicked != nil {
				p := sh.panicked
				sh.panicked = nil
				panic(p)
			}
		}
		s.engWindows.Inc(0)
		s.flushOutboxes()
		if s.obs != nil {
			s.obs.pushEnginePoint(s, int64(s.engWindows.Total()), next)
		}
	}
}

// flushOutboxes moves every cross-shard message produced during the
// last window into the destination shard's heap (the conservative
// barrier — no straggler is possible). The events carry their full
// deterministic keys, so a plain heap push lands them in exactly the
// order a sequential run would have executed them.
func (s *Sim) flushOutboxes() {
	for _, src := range s.shards {
		for d, msgs := range src.out {
			if len(msgs) == 0 {
				continue
			}
			dst := s.shards[d]
			for i := range msgs {
				dst.heap.push(msgs[i].event())
			}
			src.out[d] = src.out[d][:0]
		}
	}
}

// maxShardNow returns the furthest shard clock: shard clocks stop on
// the last event each shard executed, so after a drain this is the
// global last-event time — the value a sequential Run leaves in
// Sim.Now(). (s.now seeds the max so clocks never move backwards
// across RunUntil/Run sequences.)
func (s *Sim) maxShardNow() int64 {
	max := s.now
	for _, sh := range s.shards {
		if sh.now > max {
			max = sh.now
		}
	}
	return max
}

// syncClocks advances every shard clock (and the committed global
// clock) to t; clocks never move backwards.
func (s *Sim) syncClocks(t int64) {
	for _, sh := range s.shards {
		if sh.now < t {
			sh.now = t
		}
	}
	if s.now < t {
		s.now = t
	}
}
