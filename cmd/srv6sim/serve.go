package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"net/netip"
	"os"
	"path/filepath"
	"sync"
	"time"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/core"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/nf/progs"
	"srv6bpf/internal/obs"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/tcpsim"
)

// serveLab is the continuously-running scenario behind the live stats
// endpoint: the line topology with a Tag++ End.BPF SID on R, a steady
// UDP flow through the SID and a TCP transfer alongside it, with the
// flight recorder sampling 1 in 2^shift flows.
type serveLab struct {
	sim *netsim.Sim
	a   *netsim.Node
	b   *netsim.Node
	end *core.EndBPF
	reg *obs.Registry

	// mu serialises simulation advances against handlers that read
	// mutable simulation state directly (the trace buffers); metric
	// handlers read the registry's immutable snapshots and do not
	// need it.
	mu sync.Mutex
}

func newServeLab(engine string, shards int, sampleShift uint) (*serveLab, error) {
	sim, a, r, b := line(false)
	l := &serveLab{sim: sim, a: a, b: b}

	prog, err := bpf.LoadProgram(progs.TagIncrementSpec(), core.Seg6LocalHook(), nil, bpf.LoadOptions{})
	if err != nil {
		return nil, err
	}
	l.end, err = core.AttachEndBPF(prog)
	if err != nil {
		return nil, err
	}
	r.AddRoute(&netsim.Route{Prefix: netip.PrefixFrom(sid, 128), Kind: netsim.RouteSeg6Local, Behaviour: l.end.Behaviour()})
	b.HandleUDP(7, func(*netsim.Node, *packet.Packet, *netsim.PacketMeta) {})

	// Observability on before any traffic, so every node gets a trace
	// buffer and the per-shard cells exist.
	l.reg = sim.EnableObs(netsim.ObsOptions{Trace: true, SampleShift: sampleShift, PprofLabels: true})
	l.reg.AddJSON("prog_stats", func() any {
		return []core.ProgStats{l.end.ProgStats()}
	})
	l.reg.AddJSON("engine_series", func() any {
		return l.sim.EngineSeries()
	})

	// A TCP transfer rides along so the congestion collectors have a
	// live flow to report.
	sndStack, rcvStack := tcpsim.NewStack(a), tcpsim.NewStack(b)
	snd, rcv, err := tcpsim.NewTransfer(sndStack, rcvStack, srcAddr, dstAddr, 40000, 9000, tcpsim.Config{})
	if err != nil {
		return nil, err
	}
	snd.PublishObs(l.reg, "tcp-40000-9000")
	rcv.PublishObs(l.reg, "tcp-40000-9000")
	snd.Start()

	if shards > 1 {
		switch engine {
		case "optimistic":
			err = sim.SetShards(shards, netsim.EngineOptimistic)
		case "conservative", "":
			err = sim.SetShards(shards)
		default:
			err = fmt.Errorf("unknown engine %q (conservative|optimistic)", engine)
		}
		if err != nil {
			return nil, err
		}
	}
	return l, nil
}

// advance runs one virtual-time chunk, keeps the UDP flow topped up
// and publishes a fresh snapshot.
func (l *serveLab) advance(chunkNs int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	until := l.sim.Now() + chunkNs
	for t := l.sim.Now(); t < until; t += 50 * netsim.Microsecond {
		seq := uint64(t / (50 * netsim.Microsecond))
		l.sim.Schedule(t, func() {
			srh := packet.NewSRH([]netip.Addr{sid, dstAddr})
			raw, err := packet.BuildPacket(srcAddr, sid, packet.WithSRH(srh),
				packet.WithUDP(1, 7), packet.WithPayload(make([]byte, 64)),
				packet.WithFlowLabel(uint32(seq%64)))
			if err == nil {
				l.a.Output(raw)
			}
		})
	}
	l.sim.RunUntil(until)
	l.reg.Publish(l.sim.Now())
}

// handler builds the HTTP mux: Prometheus text, the JSON snapshot
// (including ProgStats and the engine time series), and the Chrome
// trace_event dump of the flight recorder. net/http/pprof hangs off
// the default mux, which the server also serves.
func (l *serveLab) handler() http.Handler {
	mux := http.DefaultServeMux
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		snap := l.reg.Last()
		if snap == nil {
			http.Error(w, "no snapshot yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		snap.WritePrometheus(w)
	})
	mux.HandleFunc("/stats.json", func(w http.ResponseWriter, _ *http.Request) {
		snap := l.reg.Last()
		if snap == nil {
			http.Error(w, "no snapshot yet", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(snap)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		l.mu.Lock()
		defer l.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		obs.WriteTraceEvents(w, l.sim.TraceBufs())
	})
	return mux
}

// runServe drives the lab forever (or until durationNs of virtual
// time with -obs-dump), pacing virtual chunks against the wall clock
// so the endpoint shows a live, slowly-evolving system.
func runServe(httpAddr, engine string, shards int, dump string) {
	l, err := newServeLab(engine, shards, 2)
	if err != nil {
		fatal(err)
	}

	if dump != "" {
		// Batch mode: advance a fixed horizon, then write the three
		// artifacts (Prometheus text, JSON snapshot, trace_event dump)
		// and exit. CI smoke uses this path.
		for i := 0; i < 10; i++ {
			l.advance(10 * netsim.Millisecond)
		}
		if err := l.writeDump(dump); err != nil {
			fatal(err)
		}
		fmt.Printf("observability artifacts written to %s\n", dump)
		return
	}

	go func() {
		fmt.Printf("serving on http://%s — /metrics /stats.json /trace /debug/pprof/\n", httpAddr)
		if err := http.ListenAndServe(httpAddr, l.handler()); err != nil {
			fatal(err)
		}
	}()
	for {
		l.advance(10 * netsim.Millisecond)
		time.Sleep(100 * time.Millisecond)
	}
}

// writeDump renders the current snapshot to metrics.prom, stats.json
// and trace.json inside dir.
func (l *serveLab) writeDump(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	snap := l.reg.Last()
	if snap == nil {
		return fmt.Errorf("no snapshot published")
	}
	prom, err := os.Create(filepath.Join(dir, "metrics.prom"))
	if err != nil {
		return err
	}
	if err := snap.WritePrometheus(prom); err != nil {
		prom.Close()
		return err
	}
	if err := prom.Close(); err != nil {
		return err
	}
	js, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "stats.json"), append(js, '\n'), 0o644); err != nil {
		return err
	}
	tr, err := os.Create(filepath.Join(dir, "trace.json"))
	if err != nil {
		return err
	}
	if err := obs.WriteTraceEvents(tr, l.sim.TraceBufs()); err != nil {
		tr.Close()
		return err
	}
	return tr.Close()
}
