package chaos_test

import (
	"bytes"
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/netsim/chaos"
	"srv6bpf/internal/obs"
	"srv6bpf/internal/packet"
)

// ringTopo builds an n-node ring with addresses 2001:db8:N::1 and
// default routes clockwise.
func ringTopo(s *netsim.Sim, n int) []*netsim.Node {
	nodes := make([]*netsim.Node, n)
	for i := range nodes {
		nodes[i] = s.AddNode(fmt.Sprintf("n%d", i), netsim.ServerCostModel())
		nodes[i].AddAddress(netip.MustParseAddr(fmt.Sprintf("2001:db8:%d::1", i)))
	}
	for i := range nodes {
		a, b := nodes[i], nodes[(i+1)%n]
		aIf, _ := netsim.ConnectSymmetric(a, b, netem.Config{
			RateBps: 10_000_000_000, DelayNs: 20 * netsim.Microsecond,
		})
		a.AddRoute(&netsim.Route{
			Prefix: netip.MustParsePrefix("::/0"), Kind: netsim.RouteForward,
			Nexthops: []netsim.Nexthop{{Iface: aIf}},
		})
	}
	return nodes
}

func campaign(dur int64) chaos.Campaign {
	return chaos.Campaign{
		Start: dur / 8, End: dur * 7 / 8,
		Crashes:   3,
		CrashDown: [2]int64{100 * netsim.Microsecond, dur / 4},
		Flaps:     3,
		FlapPeriod: [2]int64{
			50 * netsim.Microsecond, 300 * netsim.Microsecond,
		},
		FlapCycles:  [2]int{2, 5},
		Impairments: 3,
		ImpairLen:   [2]int64{dur / 10, dur / 3},
		Impair:      chaos.Impairment{Corrupt: 0.1, Duplicate: 0.1, Reorder: 0.3},
	}
}

// planOf builds a fresh ring, applies the campaign with the given
// seed, and renders the planned timeline.
func planOf(t *testing.T, seed int64) string {
	t.Helper()
	s := netsim.New(1)
	ringTopo(s, 6)
	e := chaos.New(s, seed)
	e.Apply(campaign(20*netsim.Millisecond), nil, nil)
	if len(e.Plan()) == 0 {
		t.Fatal("campaign planned no faults")
	}
	return e.String()
}

func TestPlanIsDeterministicPerSeed(t *testing.T) {
	a, b := planOf(t, 42), planOf(t, 42)
	if a != b {
		t.Errorf("same seed, different plans:\n%s\nvs\n%s", a, b)
	}
	if c := planOf(t, 43); c == a {
		t.Errorf("different seeds produced an identical plan:\n%s", a)
	}
}

func TestCampaignAvoidsOverlappingWindows(t *testing.T) {
	s := netsim.New(1)
	ringTopo(s, 4)
	e := chaos.New(s, 7)
	// Oversubscribed on purpose: far more faults than the window and
	// the 4-node ring can host without double-booking.
	c := campaign(10 * netsim.Millisecond)
	c.Crashes, c.Flaps, c.Impairments = 20, 20, 20
	e.Apply(c, nil, nil)

	nodeWin := map[*netsim.Node][][2]int64{}
	linkWin := map[*netsim.Iface][][2]int64{}
	for _, f := range e.Plan() {
		switch {
		case f.Node != nil:
			for _, iv := range nodeWin[f.Node] {
				if f.Start < iv[1] && iv[0] < f.End {
					t.Errorf("overlapping faults on node %s: [%d,%d) vs [%d,%d)",
						f.Node.Name, f.Start, f.End, iv[0], iv[1])
				}
			}
			nodeWin[f.Node] = append(nodeWin[f.Node], [2]int64{f.Start, f.End})
		case f.Link != nil:
			for _, iv := range linkWin[f.Link] {
				if f.Start < iv[1] && iv[0] < f.End {
					t.Errorf("overlapping faults on link %v: [%d,%d) vs [%d,%d)",
						f.Link, f.Start, f.End, iv[0], iv[1])
				}
			}
			linkWin[f.Link] = append(linkWin[f.Link], [2]int64{f.Start, f.End})
		}
	}
}

func TestFlapLinkCyclesBothEnds(t *testing.T) {
	s := netsim.New(1)
	nodes := ringTopo(s, 3)
	link := nodes[0].Ifaces()[0]

	downs, ups := 0, 0
	link.OnStateChange = func(i *netsim.Iface, up bool) {
		if up {
			ups++
		} else {
			downs++
		}
	}
	peerDowns := 0
	link.Peer().OnStateChange = func(i *netsim.Iface, up bool) {
		if !up {
			peerDowns++
		}
	}

	e := chaos.New(s, 1)
	e.FlapLink(link, netsim.Millisecond, 100*netsim.Microsecond, 100*netsim.Microsecond, 3)
	s.Run()

	if downs != 3 || ups != 3 {
		t.Errorf("flap transitions = %d down / %d up, want 3/3", downs, ups)
	}
	if peerDowns != 3 {
		t.Errorf("peer end saw %d downs, want 3 (both ends must flap)", peerDowns)
	}
	if !link.Up() || !link.Peer().Up() {
		t.Errorf("link should end restored")
	}
}

func TestCrashNodeFaultRunsAndRestores(t *testing.T) {
	s := netsim.New(1)
	nodes := ringTopo(s, 3)
	e := chaos.New(s, 1)
	e.CrashNode(nodes[1], netsim.Millisecond, 3*netsim.Millisecond)
	s.Run()

	c := nodes[1].Counters()
	if c["node_crash"] != 1 || c["node_restart"] != 1 {
		t.Errorf("crash/restart = %d/%d, want 1/1", c["node_crash"], c["node_restart"])
	}
	if nodes[1].Crashed() {
		t.Errorf("node should be restarted")
	}
}

func TestImpairLinkWindowIsBounded(t *testing.T) {
	s := netsim.New(99)
	nodes := ringTopo(s, 3)
	src, dst := nodes[0], nodes[1]
	link := src.Ifaces()[0]

	e := chaos.New(s, 5)
	e.ImpairLink(link, 2*netsim.Millisecond, 4*netsim.Millisecond,
		chaos.Impairment{Corrupt: 1.0})

	// One packet before, one inside, one after the window: only the
	// middle one is corrupted.
	dstAddr := netip.MustParseAddr("2001:db8:1::1")
	for _, at := range []int64{netsim.Millisecond, 3 * netsim.Millisecond, 5 * netsim.Millisecond} {
		at := at
		src.Schedule(at, func() {
			raw, err := packet.BuildPacket(
				netip.MustParseAddr("2001:db8:0::1"), dstAddr,
				packet.WithUDP(1, 7777), packet.WithPayload([]byte("probe")))
			if err != nil {
				t.Error(err)
				return
			}
			src.Output(raw)
		})
	}
	_ = dst
	// Before the window opens: clean.
	s.RunUntil(2 * netsim.Millisecond)
	if got := src.Counters()["tx_corrupted"]; got != 0 {
		t.Errorf("tx_corrupted = %d before the window opened", got)
	}
	// Inside: the 3ms packet is corrupted (a mangled destination may
	// loop it around the ring and re-corrupt it — that is fine, it is
	// still inside the window).
	s.RunUntil(4*netsim.Millisecond + 1)
	during := src.Counters()["tx_corrupted"]
	if during == 0 {
		t.Errorf("no corruption inside the window")
	}
	// After: the knob is restored and the count freezes.
	s.Run()
	if got := src.Counters()["tx_corrupted"]; got != during {
		t.Errorf("corruption continued after the window: %d -> %d", during, got)
	}
	if link.Qdisc().Config().Corrupt != 0 {
		t.Errorf("corruption knob not restored after the window")
	}
}

// TestCampaignEquivalenceSmoke replays one campaign under the
// sequential and both sharded engines and demands identical counters —
// a cheap inline version of netsim's chaos-armed fuzz matrix.
func TestCampaignEquivalenceSmoke(t *testing.T) {
	run := func(shards int, engine netsim.Engine) map[string]uint64 {
		s := netsim.New(12345)
		nodes := ringTopo(s, 6)
		if shards > 1 {
			if err := s.SetShards(shards, engine); err != nil {
				t.Fatal(err)
			}
		}
		e := chaos.New(s, 777)
		e.Apply(campaign(20*netsim.Millisecond), nil, nil)
		// Background traffic around the ring for the whole window.
		for i, n := range nodes {
			n := n
			dst := netip.MustParseAddr(fmt.Sprintf("2001:db8:%d::1", (i+3)%6))
			src := netip.MustParseAddr(fmt.Sprintf("2001:db8:%d::1", i))
			for p := 0; p < 40; p++ {
				at := int64(p+1) * 500 * netsim.Microsecond
				n.Schedule(at, func() {
					raw, err := packet.BuildPacket(src, dst, packet.WithUDP(9, 7777))
					if err == nil {
						n.Output(raw)
					}
				})
			}
		}
		s.RunUntil(25 * netsim.Millisecond)
		s.Run()
		sum := map[string]uint64{}
		for _, n := range nodes {
			for k, v := range n.Counters() {
				sum[n.Name+"/"+k] = v
			}
		}
		return sum
	}

	base := run(1, netsim.EngineConservative)
	for _, arm := range []struct {
		name   string
		shards int
		engine netsim.Engine
	}{
		{"conservative-2", 2, netsim.EngineConservative},
		{"optimistic-3", 3, netsim.EngineOptimistic},
	} {
		got := run(arm.shards, arm.engine)
		if len(got) != len(base) {
			t.Errorf("%s: %d counters vs %d sequential", arm.name, len(got), len(base))
		}
		for k, v := range base {
			if got[k] != v {
				t.Errorf("%s: counter %s = %d, want %d", arm.name, k, got[k], v)
			}
		}
	}
}

// TestPublishObs: the engine's planned-fault gauge reaches a registry
// snapshot broken down by fault kind, matching the plan.
func TestPublishObs(t *testing.T) {
	s := netsim.New(1)
	ringTopo(s, 6)
	e := chaos.New(s, 42)
	e.Apply(campaign(20*netsim.Millisecond), nil, nil)

	counts := make(map[string]int)
	for _, f := range e.Plan() {
		counts[f.Kind.String()]++
	}
	if len(counts) == 0 {
		t.Fatal("campaign planned no faults")
	}

	reg := obs.New()
	e.PublishObs(reg)
	var buf bytes.Buffer
	if err := reg.Publish(0).WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for kind, n := range counts {
		want := fmt.Sprintf("srv6sim_chaos_faults_planned{kind=%q} %d", kind, n)
		if !strings.Contains(text, want) {
			t.Errorf("snapshot missing %q:\n%s", want, text)
		}
	}
}
