package netsim

import (
	"fmt"
	"strings"
	"testing"

	"srv6bpf/internal/netem"
	"srv6bpf/internal/packet"
)

// shardPairTopo builds A --- B with the given link config and a
// default route each way.
func shardPairTopo(t *testing.T, cfg netem.Config) (*Sim, *Node, *Node, *Iface) {
	t.Helper()
	s := New(1)
	a, b, aIf := twoHosts(s, cfg)
	return s, a, b, aIf
}

func TestSetShardsValidation(t *testing.T) {
	s, _, _, _ := shardPairTopo(t, netem.Config{RateBps: 1e10, DelayNs: Millisecond})
	if err := s.SetShards(0); err == nil {
		t.Error("SetShards(0) accepted")
	}
	if err := s.SetShards(3); err == nil {
		t.Error("3 shards for 2 nodes accepted")
	}
	if err := s.SetShards(2); err != nil {
		t.Errorf("valid 2-shard split rejected: %v", err)
	}
	if got := s.ShardCount(); got != 2 {
		t.Errorf("ShardCount = %d", got)
	}
	if got := s.Lookahead(); got != Millisecond {
		t.Errorf("lookahead = %d, want %d", got, Millisecond)
	}
	if err := s.SetShards(1); err != nil {
		t.Errorf("back to sequential rejected: %v", err)
	}
}

func TestSetShardsRejectsZeroDelayCrossLink(t *testing.T) {
	s, _, _, _ := shardPairTopo(t, netem.Config{RateBps: 1e10})
	err := s.SetShards(2)
	if err == nil || !strings.Contains(err.Error(), "zero propagation delay") {
		t.Fatalf("err = %v, want zero-delay rejection", err)
	}
	// The failed call must leave the sim runnable on one shard.
	if got := s.ShardCount(); got != 1 {
		t.Fatalf("ShardCount after failed SetShards = %d", got)
	}
}

func TestSetShardsRejectsJitteredCrossLink(t *testing.T) {
	s, _, _, _ := shardPairTopo(t, netem.Config{RateBps: 1e10, DelayNs: Millisecond, JitterNs: Microsecond})
	err := s.SetShards(2)
	if err == nil || !strings.Contains(err.Error(), "jitter") {
		t.Fatalf("err = %v, want jitter rejection", err)
	}
}

// TestCrossShardInFlightFailure re-runs the in-flight-kill scenario
// with the two link ends on different shards: the packet dies, the
// sender's DownDrops accounting survives the cross-shard handoff, and
// the outcome matches the sequential run.
func TestCrossShardInFlightFailure(t *testing.T) {
	run := func(shards int) (int, uint64, uint64) {
		s, a, b, aIf := shardPairTopo(t, netem.Config{RateBps: 1e10, DelayNs: 10 * Millisecond})
		got := 0
		b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) { got++ })
		if err := s.SetShards(shards); err != nil {
			t.Fatal(err)
		}
		a.Output(udpTo(t, bAddr, 7, "doomed"))
		s.FailLink(5*Millisecond, aIf)
		s.RestoreLink(8*Millisecond, aIf)
		s.Run()
		a.Schedule(s.Now(), func() { a.Output(udpTo(t, bAddr, 7, "alive")) })
		s.Run()
		return got, aIf.DownDrops(), aIf.TxPackets
	}
	seqGot, seqDown, seqTx := run(1)
	parGot, parDown, parTx := run(2)
	if seqGot != 1 || seqDown != 1 || seqTx != 2 {
		t.Fatalf("sequential run: got=%d down=%d tx=%d, want 1/1/2", seqGot, seqDown, seqTx)
	}
	if parGot != seqGot || parDown != seqDown || parTx != seqTx {
		t.Fatalf("2-shard run diverges: got=%d down=%d tx=%d, want %d/%d/%d",
			parGot, parDown, parTx, seqGot, seqDown, seqTx)
	}
}

// TestShardedStepDrainsInOrder: Step on a sharded sim executes the
// globally-earliest event and keeps cross-shard messages flowing.
func TestShardedStepDrainsInOrder(t *testing.T) {
	s, a, b, _ := shardPairTopo(t, netem.Config{RateBps: 1e10, DelayNs: Millisecond})
	got := 0
	b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) { got++ })
	if err := s.SetShards(2); err != nil {
		t.Fatal(err)
	}
	a.Output(udpTo(t, bAddr, 7, "stepped"))
	steps := 0
	for s.Step() {
		steps++
		if steps > 1000 {
			t.Fatal("Step never drained")
		}
	}
	if got != 1 {
		t.Fatalf("delivered = %d after %d steps", got, steps)
	}
}

// TestReshardCarriesPendingEvents: events scheduled before SetShards
// are re-routed to the shard of the node that scheduled them.
func TestReshardCarriesPendingEvents(t *testing.T) {
	s, a, b, _ := shardPairTopo(t, netem.Config{RateBps: 1e10, DelayNs: Millisecond})
	got := 0
	b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) { got++ })
	a.Schedule(3*Millisecond, func() { a.Output(udpTo(t, bAddr, 7, "early-sched")) })
	fired := false
	s.Schedule(Millisecond, func() { fired = true }) // driver event -> shard 0
	if err := s.SetShards(2); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !fired || got != 1 {
		t.Fatalf("fired=%v got=%d after reshard", fired, got)
	}
}

// TestRunUntilAdvancesAllShardClocks: after RunUntil(t) every node
// reports Now() == t, so driver-side pacing logic behaves identically
// in sequential and sharded runs.
func TestRunUntilAdvancesAllShardClocks(t *testing.T) {
	s, a, b, _ := shardPairTopo(t, netem.Config{RateBps: 1e10, DelayNs: Millisecond})
	if err := s.SetShards(2); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(7 * Millisecond)
	if s.Now() != 7*Millisecond {
		t.Errorf("Sim.Now = %d", s.Now())
	}
	if a.Now() != 7*Millisecond || b.Now() != 7*Millisecond {
		t.Errorf("node clocks = %d/%d, want %d", a.Now(), b.Now(), 7*Millisecond)
	}
}

// TestRunClockMatchesSequential: after a draining Run(), Sim.Now()
// and the node clocks must land on the last executed event time —
// not on a window barrier — so driver code that schedules relative
// to Now() after Run() behaves identically for any shard count.
func TestRunClockMatchesSequential(t *testing.T) {
	run := func(shards int) (int64, int64) {
		s, a, b, _ := shardPairTopo(t, netem.Config{RateBps: 1e10, DelayNs: 10 * Millisecond})
		b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) {})
		if err := s.SetShards(shards); err != nil {
			t.Fatal(err)
		}
		a.Output(udpTo(t, bAddr, 7, "tick"))
		s.Run()
		return s.Now(), a.Now()
	}
	seqNow, seqA := run(1)
	parNow, parA := run(2)
	if parNow != seqNow || parA != seqA {
		t.Fatalf("post-Run clocks diverge: sharded (%d, %d) vs sequential (%d, %d)",
			parNow, parA, seqNow, seqA)
	}
}

// TestRuntimeDelayBelowLookaheadPanics: lowering a cross-shard link's
// delay under the lookahead after SetShards must fail loudly, not
// silently desynchronise the schedule.
func TestRuntimeDelayBelowLookaheadPanics(t *testing.T) {
	s, a, b, aIf := shardPairTopo(t, netem.Config{RateBps: 1e10, DelayNs: Millisecond})
	b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) {})
	if err := s.SetShards(2); err != nil {
		t.Fatal(err)
	}
	aIf.Qdisc().SetDelay(Microsecond) // undercut the validated lookahead
	// Keep both shards busy so transmissions happen inside a window.
	for i := 0; i < 20; i++ {
		at := int64(i) * 100 * Microsecond
		a.Schedule(at, func() { a.Output(udpTo(t, bAddr, 7, "x")) })
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("lookahead violation went unnoticed")
		}
		if !strings.Contains(fmt.Sprint(r), "lookahead") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	s.Run()
}

// TestEngineStatsAccounting: the per-shard cells add up and report
// through the deterministic merge.
func TestEngineStatsAccounting(t *testing.T) {
	s, a, b, _ := shardPairTopo(t, netem.Config{RateBps: 1e10, DelayNs: Millisecond})
	got := 0
	b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) { got++ })
	if err := s.SetShards(2); err != nil {
		t.Fatal(err)
	}
	a.Output(udpTo(t, bAddr, 7, "x"))
	s.Run()
	st := s.EngineStats()
	if st.Shards != 2 || st.Events == 0 || st.Messages == 0 || st.Windows == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if got != 1 {
		t.Fatalf("delivered = %d", got)
	}
}
