package experiments

import "testing"

// TestMatrixScan is the engine-equivalence gate for the committed
// behaviour-matrix scenarios: every scenario must deliver its full
// offered load and produce bit-identical counter fingerprints under
// the sequential, conservative and optimistic engines.
func TestMatrixScan(t *testing.T) {
	rows, err := MatrixScan()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 scenarios, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Delivered == 0 {
			t.Errorf("%s: delivered no packets", r.Scenario)
		}
		if !r.Match {
			t.Errorf("%s: engines disagree: %+v", r.Scenario, r.Runs)
		}
		for _, run := range r.Runs {
			t.Logf("%s/%s: %s delivered=%d", r.Scenario, run.Engine, run.Fingerprint, run.Delivered)
		}
	}
}
