package progs

import (
	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/asm"
	"srv6bpf/internal/core"
	"srv6bpf/internal/packet"
)

// §4.3 — querying ECMP nexthops.
//
// End.OAMP is an End.BPF function that, when triggered by a probe,
// performs a FIB lookup for a target address carried in a TLV and
// writes the ECMP nexthop set into a second (reply) TLV. The probe's
// segment list routes it back to the prober, which reads the answer
// from the returned packet — 60 SLOC of eBPF C in the paper, plus a
// 50-SLOC kernel helper (here bpf.HelperSeg6ECMPNexthops).
//
// Probe layout after the outer IPv6 header (offset 40):
//
//	40: SRH fixed header (8)   2 segments: [End.OAMP SID, prober]
//	48: segment list (32)
//	80: OAMP query TLV (20)    type 0x83, len 18, target, 2 pad
//	100: nexthops TLV (68)     type 0x82, len 66, count, pad, 4 addrs
//
// Total SRH: 128 bytes (hdr ext len 15).
const (
	OAMPQueryTLVOff  = 80
	OAMPTargetOff    = 82
	OAMPReplyTLVOff  = 100
	OAMPCountOff     = 102
	OAMPNexthopsOff  = 104
	oampProbeMinimum = 168
)

// OAMPSpec builds the End.OAMP program.
func OAMPSpec() *bpf.ProgramSpec {
	insns := prologue(oampProbeMinimum)
	insns = append(insns,
		// Validate the probe shape.
		asm.LoadMem(asm.R2, asm.R7, offNextHeader, asm.Byte),
		asm.JumpImm(asm.JNE, asm.R2, packet.ProtoRouting, "drop"),
		asm.LoadMem(asm.R2, asm.R7, OAMPQueryTLVOff, asm.Byte),
		asm.JumpImm(asm.JNE, asm.R2, packet.TLVTypeOAMPQuery, "drop"),
		asm.LoadMem(asm.R2, asm.R7, OAMPReplyTLVOff, asm.Byte),
		asm.JumpImm(asm.JNE, asm.R2, packet.TLVTypeNexthops, "drop"),

		// Copy the target address to the stack (fp-96..fp-80).
		asm.LoadMem(asm.R2, asm.R7, OAMPTargetOff, asm.DWord),
		asm.StoreMem(asm.RFP, -96, asm.R2, asm.DWord),
		asm.LoadMem(asm.R2, asm.R7, OAMPTargetOff+8, asm.DWord),
		asm.StoreMem(asm.RFP, -88, asm.R2, asm.DWord),

		// Zero the 64-byte output buffer (fp-80..fp-16) so unused
		// slots read as :: in the reply.
		asm.Mov64Imm(asm.R2, 0),
		asm.StoreMem(asm.RFP, -80, asm.R2, asm.DWord),
		asm.StoreMem(asm.RFP, -72, asm.R2, asm.DWord),
		asm.StoreMem(asm.RFP, -64, asm.R2, asm.DWord),
		asm.StoreMem(asm.RFP, -56, asm.R2, asm.DWord),
		asm.StoreMem(asm.RFP, -48, asm.R2, asm.DWord),
		asm.StoreMem(asm.RFP, -40, asm.R2, asm.DWord),
		asm.StoreMem(asm.RFP, -32, asm.R2, asm.DWord),
		asm.StoreMem(asm.RFP, -24, asm.R2, asm.DWord),

		// count = seg6_ecmp_nexthops(ctx, &target, out, 64)
		asm.Mov64Reg(asm.R1, asm.R6),
		asm.Mov64Reg(asm.R2, asm.RFP),
		asm.ALU64Imm(asm.Add, asm.R2, -96),
		asm.Mov64Reg(asm.R3, asm.RFP),
		asm.ALU64Imm(asm.Add, asm.R3, -80),
		asm.Mov64Imm(asm.R4, 64),
		asm.CallHelper(bpf.HelperSeg6ECMPNexthops),
		asm.JumpImm(asm.JSLT, asm.R0, 0, "drop"),
		asm.StoreMem(asm.RFP, -8, asm.R0, asm.Byte),

		// Fill the reply TLV through the checked write helper:
		// first the count, then the nexthop addresses.
		asm.Mov64Reg(asm.R1, asm.R6),
		asm.Mov64Imm(asm.R2, OAMPCountOff),
		asm.Mov64Reg(asm.R3, asm.RFP),
		asm.ALU64Imm(asm.Add, asm.R3, -8),
		asm.Mov64Imm(asm.R4, 1),
		asm.CallHelper(bpf.HelperLWTSeg6StoreByte),
		asm.JumpImm(asm.JNE, asm.R0, 0, "drop"),

		asm.Mov64Reg(asm.R1, asm.R6),
		asm.Mov64Imm(asm.R2, OAMPNexthopsOff),
		asm.Mov64Reg(asm.R3, asm.RFP),
		asm.ALU64Imm(asm.Add, asm.R3, -80),
		asm.Mov64Imm(asm.R4, 64),
		asm.CallHelper(bpf.HelperLWTSeg6StoreByte),
		asm.JumpImm(asm.JNE, asm.R0, 0, "drop"),

		// The SRH was already advanced towards the prober: a plain
		// FIB forward returns the answer.
		asm.JumpTo("out"),
	)
	insns = append(insns, epilogue(core.BPFOK)...)
	return &bpf.ProgramSpec{
		Name:         "end_oamp",
		Instructions: insns,
		License:      "Dual MIT/GPL",
	}
}
