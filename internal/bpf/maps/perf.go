package maps

import (
	"errors"
	"sync"
)

// defaultRingCapacity is the number of samples one perf ring buffers
// before new samples are counted as lost, mirroring a fixed-size
// mmap'd perf ring.
const defaultRingCapacity = 4096

// ErrRingClosed is returned by Reader operations after Close.
var ErrRingClosed = errors.New("maps: perf ring closed")

// Sample is one record pushed by bpf_perf_event_output.
type Sample struct {
	// CPU is the index (map key) the program targeted.
	CPU int
	// Data is the raw bytes the program emitted.
	Data []byte
}

// perfRing is a bounded FIFO of samples with lost-sample accounting.
type perfRing struct {
	mu       sync.Mutex
	buf      []Sample
	capacity int
	lost     uint64
}

func newPerfRing(capacity int) *perfRing {
	return &perfRing{capacity: capacity}
}

func (r *perfRing) push(s Sample) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) >= r.capacity {
		r.lost++
		return false
	}
	r.buf = append(r.buf, s)
	return true
}

func (r *perfRing) pop() (Sample, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) == 0 {
		return Sample{}, false
	}
	s := r.buf[0]
	r.buf = r.buf[1:]
	return s, true
}

// Output pushes a sample into ring cpu. It reports false when the
// sample was dropped (ring full or bad index); drops increment the
// lost-sample counter, which user space can observe via LostSamples.
func (m *Map) Output(cpu int, data []byte) bool {
	if m.spec.Type != PerfEventArray {
		return false
	}
	if cpu < 0 || cpu >= len(m.rings) {
		return false
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	ok := m.rings[cpu].push(Sample{CPU: cpu, Data: cp})
	if ok {
		m.notifyReaders()
	}
	return ok
}

func (m *Map) notifyReaders() {
	m.mu.RLock()
	subs := m.subscribers
	m.mu.RUnlock()
	for _, ch := range subs {
		select {
		case ch <- struct{}{}:
		default: // Reader already has a pending wakeup.
		}
	}
}

// DrainSamples synchronously pops up to max buffered samples across
// all rings (max <= 0 means all). Virtual-time daemons in the
// simulator use this instead of the goroutine-based Reader so that
// sample consumption happens at deterministic simulation times.
func (m *Map) DrainSamples(max int) []Sample {
	if m.spec.Type != PerfEventArray {
		return nil
	}
	var out []Sample
	for _, r := range m.rings {
		for max <= 0 || len(out) < max {
			s, ok := r.pop()
			if !ok {
				break
			}
			out = append(out, s)
		}
	}
	return out
}

// LostSamples returns the total number of samples dropped across all
// rings because a ring was full.
func (m *Map) LostSamples() uint64 {
	if m.spec.Type != PerfEventArray {
		return 0
	}
	var total uint64
	for _, r := range m.rings {
		r.mu.Lock()
		total += r.lost
		r.mu.Unlock()
	}
	return total
}

// Reader drains samples from a PerfEventArray, in the style of
// cilium/ebpf's perf.Reader. It multiplexes all rings into one
// channel.
type Reader struct {
	m      *Map
	ch     chan Sample
	notify chan struct{}
	stop   chan struct{}
	once   sync.Once
}

// NewReader attaches a reader to a PerfEventArray map. A pump
// goroutine forwards samples to C() as they are produced.
func NewReader(m *Map) (*Reader, error) {
	if m.spec.Type != PerfEventArray {
		return nil, ErrNotSupported
	}
	r := &Reader{
		m:      m,
		ch:     make(chan Sample, 256),
		notify: make(chan struct{}, 1),
		stop:   make(chan struct{}),
	}
	m.mu.Lock()
	m.subscribers = append(m.subscribers, r.notify)
	m.mu.Unlock()
	go r.pump()
	return r, nil
}

func (r *Reader) pump() {
	defer close(r.ch)
	for {
		drained := false
		for _, ring := range r.m.rings {
			for {
				s, ok := ring.pop()
				if !ok {
					break
				}
				drained = true
				select {
				case r.ch <- s:
				case <-r.stop:
					return
				}
			}
		}
		if drained {
			continue
		}
		select {
		case <-r.notify:
		case <-r.stop:
			return
		}
	}
}

// C returns the sample channel. It is closed when the reader closes.
func (r *Reader) C() <-chan Sample { return r.ch }

// Close stops the reader. Pending samples may be discarded.
func (r *Reader) Close() error {
	r.once.Do(func() {
		r.m.mu.Lock()
		subs := r.m.subscribers
		for i, ch := range subs {
			if ch == r.notify {
				r.m.subscribers = append(subs[:i:i], subs[i+1:]...)
				break
			}
		}
		r.m.mu.Unlock()
		close(r.stop)
	})
	return nil
}
