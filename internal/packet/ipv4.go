package packet

// Minimal IPv4 support for the decap family End.DX4 / End.DT4 /
// End.DT46: the simulator only ever sees IPv4 as the inner packet of
// an SRv6 tunnel (or on the PE–CE access legs of an L3VPN scenario),
// so this is a deliberately small codec — fixed 20-byte headers on
// the build side, arbitrary IHL on the decode side, and the
// header-checksum discipline the TTL rewrite needs.

import (
	"fmt"
	"net/netip"
)

// IPv4HeaderLen is the option-less IPv4 header size (IHL=5).
const IPv4HeaderLen = 20

// IPv4 is the decoded IPv4 header.
type IPv4 struct {
	TOS      uint8
	TotalLen uint16
	ID       uint16
	TTL      uint8
	Protocol uint8
	Checksum uint16
	Src, Dst netip.Addr
	// HdrLen is the decoded header length in bytes (IHL * 4).
	HdrLen int
}

// DecodeIPv4 parses the IPv4 header from b.
func DecodeIPv4(b []byte) (IPv4, error) {
	var h IPv4
	if len(b) < IPv4HeaderLen {
		return h, fmt.Errorf("%w: IPv4 header needs 20 bytes, have %d", ErrTruncated, len(b))
	}
	if b[0]>>4 != 4 {
		return h, fmt.Errorf("%w: version %d", ErrBadVersion, b[0]>>4)
	}
	h.HdrLen = int(b[0]&0x0f) * 4
	if h.HdrLen < IPv4HeaderLen || len(b) < h.HdrLen {
		return h, fmt.Errorf("%w: IPv4 IHL %d bytes, have %d", ErrTruncated, h.HdrLen, len(b))
	}
	h.TOS = b[1]
	h.TotalLen = uint16(b[2])<<8 | uint16(b[3])
	h.ID = uint16(b[4])<<8 | uint16(b[5])
	h.TTL = b[8]
	h.Protocol = b[9]
	h.Checksum = uint16(b[10])<<8 | uint16(b[11])
	h.Src = netip.AddrFrom4([4]byte(b[12:16]))
	h.Dst = netip.AddrFrom4([4]byte(b[16:20]))
	return h, nil
}

// ipv4HeaderChecksum computes the ones-complement header checksum of
// hdr with its checksum field treated as zero.
func ipv4HeaderChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // the checksum field itself
		}
		sum += uint32(hdr[i])<<8 | uint32(hdr[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// SetIPv4TTL rewrites the TTL of the IPv4 packet in b and recomputes
// the header checksum.
func SetIPv4TTL(b []byte, ttl uint8) error {
	h, err := DecodeIPv4(b)
	if err != nil {
		return err
	}
	b[8] = ttl
	ck := ipv4HeaderChecksum(b[:h.HdrLen])
	b[10], b[11] = uint8(ck>>8), uint8(ck)
	return nil
}

// BuildIPv4UDP assembles a UDP-in-IPv4 packet with an option-less
// header. The UDP checksum is left zero (legal over IPv4).
func BuildIPv4UDP(src, dst netip.Addr, srcPort, dstPort uint16, payload []byte, ttl uint8) ([]byte, error) {
	if !src.Is4() || !dst.Is4() {
		return nil, fmt.Errorf("%w: BuildIPv4UDP needs IPv4 addresses", ErrBadVersion)
	}
	total := IPv4HeaderLen + UDPHeaderLen + len(payload)
	if total > 0xffff {
		return nil, fmt.Errorf("packet: IPv4 total length %d overflows", total)
	}
	out := make([]byte, 0, total)
	var hdr [IPv4HeaderLen]byte
	hdr[0] = 4<<4 | 5
	hdr[2], hdr[3] = uint8(total>>8), uint8(total)
	hdr[8] = ttl
	hdr[9] = ProtoUDP
	s, d := src.As4(), dst.As4()
	copy(hdr[12:16], s[:])
	copy(hdr[16:20], d[:])
	ck := ipv4HeaderChecksum(hdr[:])
	hdr[10], hdr[11] = uint8(ck>>8), uint8(ck)
	out = append(out, hdr[:]...)
	udp := UDP{SrcPort: srcPort, DstPort: dstPort, Length: uint16(UDPHeaderLen + len(payload))}
	out = udp.Encode(out)
	return append(out, payload...), nil
}

// IPVersion reports the IP version nibble of b (0 when empty).
func IPVersion(b []byte) int {
	if len(b) == 0 {
		return 0
	}
	return int(b[0] >> 4)
}

// DstAddr reads the destination address of an IPv4 or IPv6 packet.
func DstAddr(b []byte) (netip.Addr, error) {
	switch IPVersion(b) {
	case 6:
		return IPv6Dst(b)
	case 4:
		if len(b) < IPv4HeaderLen {
			return netip.Addr{}, ErrTruncated
		}
		return netip.AddrFrom4([4]byte(b[16:20])), nil
	}
	return netip.Addr{}, ErrBadVersion
}

// SrcAddr reads the source address of an IPv4 or IPv6 packet.
func SrcAddr(b []byte) (netip.Addr, error) {
	switch IPVersion(b) {
	case 6:
		return IPv6Src(b)
	case 4:
		if len(b) < IPv4HeaderLen {
			return netip.Addr{}, ErrTruncated
		}
		return netip.AddrFrom4([4]byte(b[12:16])), nil
	}
	return netip.Addr{}, ErrBadVersion
}

// HopLimit reads the IPv6 hop limit or IPv4 TTL of b.
func HopLimit(b []byte) (uint8, error) {
	switch IPVersion(b) {
	case 6:
		if len(b) < IPv6HeaderLen {
			return 0, ErrTruncated
		}
		return b[7], nil
	case 4:
		if len(b) < IPv4HeaderLen {
			return 0, ErrTruncated
		}
		return b[8], nil
	}
	return 0, ErrBadVersion
}

// SetHopLimit rewrites the IPv6 hop limit or IPv4 TTL of b (fixing
// the IPv4 header checksum).
func SetHopLimit(b []byte, hl uint8) error {
	switch IPVersion(b) {
	case 6:
		return SetIPv6HopLimit(b, hl)
	case 4:
		return SetIPv4TTL(b, hl)
	}
	return ErrBadVersion
}
