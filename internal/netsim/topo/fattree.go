package topo

import (
	"fmt"

	"srv6bpf/internal/netsim"
)

// FatTree builds a k-ary fat-tree (Al-Fares et al.): k pods, each
// with k/2 edge and k/2 aggregation switches, k/2 hosts per edge
// switch, and (k/2)^2 core switches — k^3/4 hosts and 5k^2/4
// switches in total (k=8: 128 hosts, 80 switches, 208 nodes).
//
// Nodes are created pod by pod (edges, aggregations, then the pod's
// hosts) with the cores last, so netsim's contiguous block partition
// keeps pods shard-local and only pod-to-core links cross shards.
// Routing is shortest-path with full ECMP (installRoutes), matching
// the classic two-level fat-tree routing: up over all uplinks, down
// along the unique path.
func FatTree(sim *netsim.Sim, k int, opts Opts) (*Network, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("topo: fat-tree arity must be even and >= 2, got %d", k)
	}
	opts.fill()
	b := newBuilder(sim)
	half := k / 2

	edges := make([][]*netsim.Node, k)
	aggs := make([][]*netsim.Node, k)
	for p := 0; p < k; p++ {
		edges[p] = make([]*netsim.Node, half)
		aggs[p] = make([]*netsim.Node, half)
		for e := 0; e < half; e++ {
			edges[p][e] = b.addSwitch(fmt.Sprintf("p%d-e%d", p, e), opts.SwitchCost())
		}
		for a := 0; a < half; a++ {
			aggs[p][a] = b.addSwitch(fmt.Sprintf("p%d-a%d", p, a), opts.SwitchCost())
		}
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				b.connect(edges[p][e], aggs[p][a], opts.PodLink)
			}
		}
		for e := 0; e < half; e++ {
			for h := 0; h < half; h++ {
				host := b.addHost(fmt.Sprintf("p%d-e%d-h%d", p, e, h), opts.HostCost())
				b.connect(host, edges[p][e], opts.HostLink)
			}
		}
	}
	for c := 0; c < half*half; c++ {
		core := b.addSwitch(fmt.Sprintf("c%d", c), opts.SwitchCost())
		// Core c links to aggregation switch c/half of every pod.
		a := c / half
		for p := 0; p < k; p++ {
			b.connect(core, aggs[p][a], opts.Link)
		}
	}
	return b.installRoutes(), nil
}
