// Hybrid access networks (§4.2 of the paper): a per-packet eBPF WRR
// scheduler aggregates a 50 Mbps link (RTT 30±5 ms) and a 30 Mbps
// link (RTT 5±2 ms). The example reproduces the paper's finding: UDP
// aggregates fine, TCP collapses under the reordering the delay skew
// causes, and the TWD measurement daemon's netem compensation on the
// fast link restores most of the aggregate.
//
// Run with: go run ./examples/hybrid-access
package main

import (
	"fmt"
	"log"

	"srv6bpf/internal/netsim"
	"srv6bpf/internal/nf/hybrid"
	"srv6bpf/internal/tcpsim"
	"srv6bpf/internal/trafgen"
)

func params() hybrid.Params {
	return hybrid.Params{
		Link0: hybrid.LinkSpec{RateBps: 50_000_000, OneWayDelay: 15 * netsim.Millisecond, OneWayJitter: 2_500_000, QueueLimit: 300},
		Link1: hybrid.LinkSpec{RateBps: 30_000_000, OneWayDelay: 2_500_000, OneWayJitter: 1_000_000, QueueLimit: 300},
	}
}

func main() {
	udp := runUDP()
	fmt.Printf("UDP through the WRR scheduler:        %6.1f Mbps of 80 available\n", udp/1e6)

	tcpRaw := runTCP(false)
	fmt.Printf("TCP, no compensation (paper: 3.8):    %6.1f Mbps\n", tcpRaw/1e6)

	tcpComp := runTCP(true)
	fmt.Printf("TCP + TWD compensation (paper: 68):   %6.1f Mbps\n", tcpComp/1e6)

	fmt.Println("\nPer-packet striping over links with a 25 ms RTT skew makes")
	fmt.Println("TCP's loss detector misread reordering as loss; measuring the")
	fmt.Println("skew with SRv6 TWD probes and delaying the fast link fixes it.")
}

// runUDP pushes 80 Mbps of UDP downstream and reports the delivered
// goodput.
func runUDP() float64 {
	sim := netsim.New(21)
	tb, err := hybrid.NewTestbed(sim, params())
	if err != nil {
		log.Fatal(err)
	}
	if err := tb.EnableWRRDownstream(); err != nil {
		log.Fatal(err)
	}
	sink := trafgen.NewSink(tb.S2, 9999)
	gen := &trafgen.UDPGen{
		Node: tb.S1, Src: hybrid.S1Addr, Dst: hybrid.S2Addr,
		SrcPort: 1, DstPort: 9999,
		PayloadLen: 1400,
		RatePPS:    80e6 / (1448 * 8), // 80 Mbps on the wire
	}
	if err := gen.Start(sim.Now() + 10*netsim.Second); err != nil {
		log.Fatal(err)
	}
	sim.RunUntil(11 * netsim.Second)
	return sink.GoodputBps()
}

// runTCP runs one bulk transfer for 60 virtual seconds.
func runTCP(compensate bool) float64 {
	sim := netsim.New(22)
	tb, err := hybrid.NewTestbed(sim, params())
	if err != nil {
		log.Fatal(err)
	}
	if err := tb.EnableWRRDownstream(); err != nil {
		log.Fatal(err)
	}
	if err := tb.EnableWRRUpstream(); err != nil {
		log.Fatal(err)
	}
	var comp *hybrid.Compensator
	if compensate {
		if err := tb.DeployEndDM(true); err != nil {
			log.Fatal(err)
		}
		comp = tb.StartCompensator(100 * netsim.Millisecond)
		sim.RunUntil(2 * netsim.Second) // let the daemon converge
	}

	s1 := tcpsim.NewStack(tb.S1)
	s2 := tcpsim.NewStack(tb.S2)
	snd, rcv, err := tcpsim.NewTransfer(s1, s2, hybrid.S1Addr, hybrid.S2Addr, 41000, 5001, tcpsim.Config{FlowLabel: 7})
	if err != nil {
		log.Fatal(err)
	}
	snd.Start()
	sim.RunUntil(sim.Now() + 60*netsim.Second)
	snd.Stop()
	if comp != nil {
		comp.Stop()
	}
	sim.RunUntil(sim.Now() + netsim.Second)
	return rcv.GoodputBps()
}
