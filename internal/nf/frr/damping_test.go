package frr

import (
	"testing"

	"srv6bpf/internal/netsim"
)

// flapStorm drives the protected link through `cycles` down/up cycles
// (downNs/upNs each) starting at startNs and returns the testbed after
// the run settles.
func flapStorm(t *testing.T, cfg Config, startNs, downNs, upNs int64, cycles int) *testbed {
	tb := newTestbedCfg(t, cfg)
	tb.frr.Start()
	at := startNs
	for c := 0; c < cycles; c++ {
		tb.sim.FailLink(at, tb.pdIf)
		tb.sim.RestoreLink(at+downNs, tb.pdIf)
		at += downNs + upNs
	}
	tb.sim.RunUntil(at + 200*netsim.Millisecond)
	tb.frr.Stop()
	tb.sim.Run()
	return tb
}

// TestFlapDampingBoundsChurn is the flap-storm comparison: a link
// flapping at roughly the detection timescale makes the undamped
// detector oscillate once per cycle, while the damped detector pays
// its exponentially-growing hold-down and settles on the backup path —
// an order of magnitude fewer route flips for the same storm.
func TestFlapDampingBoundsChurn(t *testing.T) {
	const (
		interval = netsim.Millisecond
		k        = 2
		cycles   = 20
		down     = 4 * netsim.Millisecond
		up       = 4 * netsim.Millisecond
	)
	start := 5 * netsim.Millisecond

	undamped := flapStorm(t, Config{ProbeInterval: interval, Misses: k},
		start, down, up, cycles)
	damped := flapStorm(t, Config{ProbeInterval: interval, Misses: k, Damping: true},
		start, down, up, cycles)

	u, d := len(undamped.frr.Transitions), len(damped.frr.Transitions)
	t.Logf("transitions: undamped=%d damped=%d", u, d)

	// The undamped detector tracks the flap frequency: one down and one
	// up decision per cycle, give or take phase effects.
	if u < cycles {
		t.Errorf("undamped detector logged %d transitions over %d cycles — storm too tame", u, cycles)
	}
	// Damping must cut churn by well over 3x.
	if d*3 >= u {
		t.Errorf("damping did not bound churn: %d vs %d undamped", d, u)
	}
	// Both detectors must re-converge once the link goes quiet.
	if undamped.frr.Down(1) || damped.frr.Down(1) {
		t.Errorf("detector stuck down after the storm: undamped=%v damped=%v",
			undamped.frr.Down(1), damped.frr.Down(1))
	}
}

// TestDampedCleanFailureKeepsRecoveryBound: damping gates only the UP
// transition, so a clean single failure is detected in exactly
// K probes and the blackout still fits K·interval + one probe RTT.
func TestDampedCleanFailureKeepsRecoveryBound(t *testing.T) {
	const k = 3
	interval := netsim.Millisecond
	tb := newTestbedCfg(t, Config{ProbeInterval: interval, Misses: k, Damping: true})
	tb.frr.Start()

	gap := 20 * netsim.Microsecond
	n := int(60 * netsim.Millisecond / gap)
	for i := 0; i < n; i++ {
		seq := i
		tb.sim.Schedule(int64(i)*gap, func() { tb.send(t, seq) })
	}

	failAt := 10*netsim.Millisecond - 50*netsim.Microsecond
	tb.sim.FailLink(failAt, tb.pdIf)
	restoreAt := 25 * netsim.Millisecond
	tb.sim.RestoreLink(restoreAt, tb.pdIf)

	tb.sim.RunUntil(60 * netsim.Millisecond)
	tb.frr.Stop()
	tb.sim.Run()

	if len(tb.frr.Transitions) != 2 {
		t.Fatalf("transitions = %+v, want down then up", tb.frr.Transitions)
	}
	downTr, upTr := tb.frr.Transitions[0], tb.frr.Transitions[1]

	// Detection is not slowed by damping.
	wantDetect := 10*netsim.Millisecond + int64(k)*interval
	if downTr.At != wantDetect {
		t.Errorf("down at %d, want %d (damping must not delay detection)", downTr.At, wantDetect)
	}

	// Blackout bound unchanged: failure to first backup delivery.
	var firstAfter int64 = -1
	for _, at := range tb.delivered {
		if at > failAt {
			firstAfter = at
			break
		}
	}
	if firstAfter < 0 {
		t.Fatal("no packet arrived after the failure")
	}
	recovery := firstAfter - failAt
	rtt := 2 * (100*netsim.Microsecond + 20*netsim.Microsecond)
	budget := int64(k)*interval + rtt
	if recovery >= budget {
		t.Errorf("recovery %.3f ms, budget %.3f ms", float64(recovery)/1e6, float64(budget)/1e6)
	}

	// The up transition waits out the hold-down (default 4·interval
	// from the down decision) plus the good-round hysteresis — later
	// than an undamped detector, but it must happen.
	if !upTr.Up || upTr.At <= restoreAt {
		t.Errorf("up at %d, want after restore %d", upTr.At, restoreAt)
	}
	if tb.frr.Down(1) {
		t.Error("neighbour still down at the end")
	}
}

// TestEscalateHoldBackoffAndForgiveness drives the penalty state
// machine directly: exponential growth to the cap, then a long quiet
// period resets the penalty to the minimum.
func TestEscalateHoldBackoffAndForgiveness(t *testing.T) {
	f := &FRR{cfg: Config{Damping: true, DampingMinHold: 4, DampingMaxHold: 32}}
	st := &neighborState{}

	var now int64 = 1000
	want := []int64{4, 8, 16, 32, 32}
	for i, w := range want {
		f.escalateHold(st, now)
		if st.holdNs != w {
			t.Errorf("flap %d: holdNs = %d, want %d", i+1, st.holdNs, w)
		}
		if st.holdUntil != now+w {
			t.Errorf("flap %d: holdUntil = %d, want %d", i+1, st.holdUntil, now+w)
		}
		now += 10 // rapid re-flapping: no forgiveness
	}

	// Quiet for 2 × MaxHold: the next flap starts over at MinHold.
	now += 2 * f.cfg.DampingMaxHold
	f.escalateHold(st, now)
	if st.holdNs != 4 {
		t.Errorf("after forgiveness window: holdNs = %d, want 4", st.holdNs)
	}
}

// TestDampingStateSurvivesCrashReset: a node crash wipes the damping
// penalty along with the detector state (fresh daemon), but keeps the
// observer-side transition log.
func TestDampingStateSurvivesCrashReset(t *testing.T) {
	const interval = netsim.Millisecond
	tb := newTestbedCfg(t, Config{ProbeInterval: interval, Misses: 2, Damping: true})
	tb.frr.Start()

	// Force one down transition so a hold-down is pending.
	tb.sim.FailLink(5*netsim.Millisecond, tb.pdIf)
	tb.sim.RunUntil(10 * netsim.Millisecond)
	if !tb.frr.Down(1) {
		t.Fatal("setup: neighbour should be down")
	}
	logged := len(tb.frr.Transitions)

	tb.sim.RestoreLink(tb.sim.Now(), tb.pdIf)
	tb.sim.CrashNode(tb.sim.Now()+netsim.Millisecond, tb.p)
	tb.sim.RestartNode(tb.sim.Now()+2*netsim.Millisecond, tb.p)
	tb.sim.RunUntil(tb.sim.Now() + 3*netsim.Millisecond)

	// Fresh daemon: neighbour assumed up, no hold pending.
	if tb.frr.Down(1) {
		t.Error("crash reset should re-assume neighbours up")
	}
	st := tb.frr.neighbors[0]
	if st.holdNs != 0 || st.holdUntil != 0 || st.lastDownAt != 0 {
		t.Errorf("damping penalty survived the crash: %+v", st)
	}
	if len(tb.frr.Transitions) < logged {
		t.Errorf("transition log truncated by crash: %d -> %d", logged, len(tb.frr.Transitions))
	}
	tb.frr.Stop()
	tb.sim.Run()
}
