package obs

import (
	"encoding/json"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// Every value must land in a bucket whose [lower, upper] range
// contains it, and the bucket layout must tile the value space with
// no gaps or overlaps.
func TestHistogramBucketBoundaries(t *testing.T) {
	for _, v := range []uint64{0, 1, 15, 16, 17, 31, 32, 63, 64, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, 1 << 62} {
		i := bucketIndex(v)
		if lo, hi := BucketLower(i), BucketUpper(i); v < lo || v > hi {
			t.Errorf("value %d → bucket %d [%d,%d] does not contain it", v, i, lo, hi)
		}
	}
	// Tiling: bucket i+1 starts exactly one past bucket i's end.
	for i := 0; i < histBuckets-1; i++ {
		if BucketLower(i+1) != BucketUpper(i)+1 {
			t.Fatalf("gap/overlap at bucket %d: upper=%d next lower=%d", i, BucketUpper(i), BucketLower(i+1))
		}
	}
	// Sub-histSub values are exact (width-1 buckets).
	for v := uint64(0); v < histSub; v++ {
		if BucketLower(int(v)) != v || BucketUpper(int(v)) != v {
			t.Fatalf("small bucket %d not exact", v)
		}
	}
	// Relative bucket width above the linear region is ≤ 1/histSub.
	for _, v := range []uint64{100, 5000, 1 << 33} {
		i := bucketIndex(v)
		width := BucketUpper(i) - BucketLower(i) + 1
		if float64(width)/float64(BucketLower(i)) > 1.0/histSub+1e-9 {
			t.Errorf("bucket %d width %d too wide for lower %d", i, width, BucketLower(i))
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	for _, tc := range []struct{ q, want float64 }{{0.5, 500}, {0.9, 900}, {0.99, 990}, {1, 1000}} {
		got := float64(h.Quantile(tc.q))
		if got < tc.want || got > tc.want*(1+2.0/histSub) {
			t.Errorf("q%.2f = %v, want within [%v, %v]", tc.q, got, tc.want, tc.want*(1+2.0/histSub))
		}
	}
	if h.Quantile(0) == 0 {
		t.Error("q0 of 1..1000 must be ≥ 1")
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
}

// Merging shard-local histograms must be exactly equivalent to
// observing everything into a single histogram.
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var whole Histogram
	parts := make([]Histogram, 4)
	for i := 0; i < 10000; i++ {
		v := rng.Int63n(1 << uint(1+rng.Intn(40)))
		whole.Observe(v)
		parts[rng.Intn(len(parts))].Observe(v)
	}
	var merged Histogram
	for i := range parts {
		merged.Merge(&parts[i])
	}
	if merged != whole {
		t.Fatal("merged shard histograms differ from the single-histogram ground truth")
	}
	// Merging an empty histogram is a no-op.
	before := merged
	merged.Merge(&Histogram{})
	merged.Merge(nil)
	if merged != before {
		t.Fatal("merging empty/nil changed the histogram")
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Count() != 1 || h.Max() != 0 || h.Sum() != 0 {
		t.Fatalf("negative observation not clamped: %+v", h)
	}
}

// TraceBuf must behave exactly like netsim.Journal under the
// ShardState contract: snapshot = length, restore = truncate.
func TestTraceBufSnapshotRestore(t *testing.T) {
	b := NewTraceBuf("r1")
	b.Start(Span{Flow: 1, At: 10})
	b.Start(Span{Flow: 2, At: 20})
	snap := b.SnapshotState()
	i := b.Start(Span{Flow: 3, At: 30})
	b.At(i).Verdict = "drop"
	if b.Len() != 3 {
		t.Fatalf("len = %d", b.Len())
	}
	b.RestoreState(snap)
	if b.Len() != 2 {
		t.Fatalf("after restore len = %d", b.Len())
	}
	// Re-execution after rollback must reproduce the same journal.
	j := b.Start(Span{Flow: 3, At: 30})
	b.At(j).Verdict = "forward"
	lines := b.Lines()
	if len(lines) != 3 || !strings.Contains(lines[2], "forward") {
		t.Fatalf("re-executed span wrong: %v", lines)
	}
}

func TestSampledDeterministicAndDistributed(t *testing.T) {
	for flow := uint32(0); flow < 100; flow++ {
		if Sampled(flow, 2) != Sampled(flow, 2) {
			t.Fatal("sampling decision not deterministic")
		}
		if !Sampled(flow, 0) {
			t.Fatal("shift 0 must sample everything")
		}
	}
	// 1-in-2^shift holds roughly over many flows.
	n := 0
	for flow := uint32(0); flow < 4096; flow++ {
		if Sampled(flow, 3) {
			n++
		}
	}
	if n < 4096/8/2 || n > 4096/8*2 {
		t.Fatalf("shift 3 sampled %d of 4096, want ≈ %d", n, 4096/8)
	}
}

func TestRegistryPublishAndRender(t *testing.T) {
	r := New()
	var h Histogram
	h.Observe(3)
	h.Observe(300)
	r.Collect(func(e *Emitter) {
		e.Counter("srv6_events_total", "", 42)
		e.Gauge("srv6_horizon_ns", `engine="optimistic"`, 1500)
		e.Hist("srv6_queue_delay_ns", "", &h)
	})
	r.AddJSON("progs", func() any { return []string{"end_bpf"} })

	if r.Last() != nil {
		t.Fatal("Last before Publish must be nil")
	}
	s := r.Publish(123)
	if r.Last() != s {
		t.Fatal("Last must return the published snapshot")
	}

	var sb strings.Builder
	if err := s.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	prom := sb.String()
	for _, want := range []string{
		"# TYPE srv6_events_total counter",
		"srv6_events_total 42",
		`srv6_horizon_ns{engine="optimistic"} 1500`,
		"# TYPE srv6_queue_delay_ns histogram",
		`srv6_queue_delay_ns_bucket{le="+Inf"} 2`,
		"srv6_queue_delay_ns_sum 303",
		"srv6_queue_delay_ns_count 2",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, prom)
		}
	}

	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got["at"].(float64) != 123 {
		t.Errorf("at = %v", got["at"])
	}
	if _, ok := got["progs"]; !ok {
		t.Errorf("extra JSON key missing: %s", raw)
	}
	hists := got["hists"].([]any)
	if len(hists) != 1 {
		t.Fatalf("hists = %v", hists)
	}
	if c := hists[0].(map[string]any)["count"].(float64); c != 2 {
		t.Errorf("hist count = %v", c)
	}
}

// Mutating the live histogram after Publish must not alter the
// published snapshot (Emitter.Hist copies).
func TestSnapshotImmutable(t *testing.T) {
	r := New()
	var h Histogram
	h.Observe(7)
	r.Collect(func(e *Emitter) { e.Hist("h", "", &h) })
	s := r.Publish(0)
	h.Observe(9)
	if s.Hists[0].H.Count() != 1 {
		t.Fatal("published snapshot changed after the fact")
	}
}

func TestTraceEventsJSON(t *testing.T) {
	b := NewTraceBuf("rtr0")
	i := b.Start(Span{Flow: 5, At: 1000, QueueNs: 20, DurNs: 75, SegLeft: 1})
	b.At(i).Behavior = "End.BPF"
	b.At(i).Route = "seg6local"
	b.At(i).Verdict = "forward"
	var sb strings.Builder
	if err := WriteTraceEvents(&sb, []*TraceBuf{b}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace_event output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.TraceEvents) != 2 { // thread_name metadata + 1 span
		t.Fatalf("events = %d", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[1]
	if ev["name"] != "End.BPF" || ev["ph"] != "X" {
		t.Errorf("span event wrong: %v", ev)
	}
	if args := ev["args"].(map[string]any); args["flow"].(float64) != 5 || args["verdict"] != "forward" {
		t.Errorf("span args wrong: %v", ev)
	}
}

func TestSeriesRing(t *testing.T) {
	s := NewSeries(4)
	for i := int64(1); i <= 6; i++ {
		s.Push(EnginePoint{Round: i})
	}
	pts := s.Points()
	if s.Len() != 4 || len(pts) != 4 {
		t.Fatalf("len = %d/%d", s.Len(), len(pts))
	}
	rounds := make([]int, 0, 4)
	for _, p := range pts {
		rounds = append(rounds, int(p.Round))
	}
	if !sort.IntsAreSorted(rounds) || rounds[0] != 3 || rounds[3] != 6 {
		t.Fatalf("ring order wrong: %v", rounds)
	}
}
