# Tier-1 verification and benchmark entry points.
#
#   make check   — build + vet + full test suite + sharded-engine
#                  race smoke (the tier-1 gate)
#   make race    — full test suite under the race detector (CI job;
#                  the parallel simulation engine must be race-clean)
#   make bench   — wall-clock datapath + figure benchmarks (-benchmem)
#   make bench-json [BENCH_JSON=path] — machine-readable perf report
#   make fmt     — gofmt the tree

GO ?= go
BENCH_JSON ?= BENCH.json
BENCH_WINDOW ?= 50ms

.PHONY: check build vet test race race-smoke bench bench-json fmt

check: build vet test race-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The quick 2-shard sequential-vs-parallel equivalence gate, run under
# the race detector: determinism and race-cleanliness of the sharded
# engine in one short pass.
race-smoke:
	$(GO) test -race -run 'TestShardEquivalenceSmoke|TestCrossShardInFlightFailure' ./internal/netsim

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench BenchmarkDatapath -benchmem .

bench-json:
	$(GO) run ./cmd/srv6bench -bench-json $(BENCH_JSON) -duration $(BENCH_WINDOW)

fmt:
	gofmt -w .
