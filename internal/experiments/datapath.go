package experiments

import (
	"fmt"
	"net/netip"
	"testing"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/core"
	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/nf/progs"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
)

// DatapathRow is one wall-clock measurement of this library's own
// End.BPF datapath (real time, not simulated): the engineering
// numbers behind the simulator's cost model. AllocsPerOp is the
// -benchmem figure the zero-allocation work of the datapath is
// tracked by.
type DatapathRow struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Burst is the datapath burst setting the row was measured under
	// (0 for rows the knob cannot affect). The SimUDP-burst pair
	// publishes the same workload at burst 1 and the report's -burst
	// setting; NsPerOp for those rows is per packet, not per batch.
	Burst int `json:"burst,omitempty"`
}

// DatapathBench measures the per-packet cost of the static End
// behaviour and the End.BPF hook running the Figure 2 programs, each
// with JIT and interpreter. It is the programmatic equivalent of
// `go test -bench BenchmarkDatapath -benchmem`, exposed so srv6bench
// can emit the numbers into the machine-readable benchmark trajectory.
// burst sets the batched-datapath knob for the SimUDP-burst row pair
// (srv6bench -burst); values below 2 fall back to the default 32 so
// every report carries a burst=1 vs burst=N comparison.
func DatapathBench(burst int) ([]DatapathRow, error) {
	sid := netip.MustParseAddr("fc00:1::b")
	dst := netip.MustParseAddr("2001:db8:2::1")
	src := netip.MustParseAddr("2001:db8:1::1")

	srh := packet.NewSRH([]netip.Addr{sid, dst})
	tmpl, err := packet.BuildPacket(src, sid, packet.WithSRH(srh),
		packet.WithUDP(1, 2), packet.WithPayload(make([]byte, 64)))
	if err != nil {
		return nil, err
	}

	sim := netsim.New(1)
	node := sim.AddNode("R", netsim.ServerCostModel())
	peer := sim.AddNode("P", netsim.HostCostModel())
	peer.AddAddress(dst)
	netsim.ConnectSymmetric(node, peer, netem.Config{RateBps: 1e12})

	var rows []DatapathRow

	staticRes := testing.Benchmark(func(b *testing.B) {
		work := packet.Clone(tmpl)
		behaviour := &seg6.Behaviour{Action: seg6.ActionEnd}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(work, tmpl)
			if _, err := seg6.ApplyStatic(behaviour, work); err != nil {
				b.Fatal(err)
			}
		}
	})
	rows = append(rows, DatapathRow{
		Name:        "End-static-go",
		NsPerOp:     float64(staticRes.NsPerOp()),
		AllocsPerOp: staticRes.AllocsPerOp(),
		BytesPerOp:  staticRes.AllocedBytesPerOp(),
	})

	type benchProg struct {
		name string
		spec *bpf.ProgramSpec
		jit  bool
	}
	for _, bp := range []benchProg{
		{"EndBPF-jit", progs.EndSpec(), true},
		{"EndBPF-interp", progs.EndSpec(), false},
		{"TagInc-jit", progs.TagIncrementSpec(), true},
		{"TagInc-interp", progs.TagIncrementSpec(), false},
		{"AddTLV-jit", progs.AddTLVSpec(), true},
		{"AddTLV-interp", progs.AddTLVSpec(), false},
	} {
		prog, err := bpf.LoadProgram(bp.spec, core.Seg6LocalHook(), nil, bpf.LoadOptions{JIT: &bp.jit})
		if err != nil {
			return nil, err
		}
		end, err := core.AttachEndBPF(prog)
		if err != nil {
			return nil, err
		}
		res := testing.Benchmark(func(b *testing.B) {
			work := packet.Clone(tmpl)
			meta := &netsim.PacketMeta{}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(work, tmpl)
				work = work[:len(tmpl)]
				res, _, err := end.RunSeg6Local(node, work, meta)
				if err != nil {
					b.Fatal(err)
				}
				if res.Verdict == seg6.VerdictDrop {
					b.Fatal("unexpected drop")
				}
				// Add TLV grows the packet: recover the template size.
				if len(res.Pkt) != len(tmpl) {
					work = packet.Clone(tmpl)
				}
			}
		})
		rows = append(rows, DatapathRow{
			Name:        bp.name,
			NsPerOp:     float64(res.NsPerOp()),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}
	for _, on := range []bool{false, true} {
		row, err := simUDPRow(on)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	if burst < 2 {
		burst = 32
	}
	// Same batch size for both rows: the burst=1 row is the same
	// workload with the epoch caches disabled, so the pair isolates
	// exactly what batching buys.
	batch := burst
	if batch < 32 {
		batch = 32
	}
	for _, b := range []int{1, burst} {
		row, err := simUDPBurstRow(b, batch)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// simUDPRow measures one SRv6 packet traversing the full simulated
// datapath — source output, links, the router's End behaviour,
// delivery — with the observability plane off vs on (flight recorder
// sampling every flow: the worst case). The direct RunSeg6Local rows
// above bypass the node's drain loop and so never see the obs hooks;
// this pair is what the trajectory test compares to bound the
// tracing-off overhead.
func simUDPRow(obsOn bool) (DatapathRow, error) {
	src := netip.MustParseAddr("2001:db8:1::1")
	dst := netip.MustParseAddr("2001:db8:2::1")
	sid := netip.MustParseAddr("fc00:1::b")

	sim := netsim.New(1)
	a := sim.AddNode("A", netsim.HostCostModel())
	r := sim.AddNode("R", netsim.ServerCostModel())
	c := sim.AddNode("C", netsim.HostCostModel())
	a.AddAddress(src)
	c.AddAddress(dst)
	fast := netem.Config{RateBps: 1e12}
	aIf, _ := netsim.ConnectSymmetric(a, r, fast)
	rcIf, cIf := netsim.ConnectSymmetric(r, c, fast)
	a.AddRoute(&netsim.Route{Prefix: netip.MustParsePrefix("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: aIf}}})
	c.AddRoute(&netsim.Route{Prefix: netip.MustParsePrefix("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: cIf}}})
	r.AddRoute(&netsim.Route{Prefix: netip.PrefixFrom(sid, 128), Kind: netsim.RouteSeg6Local, Behaviour: &seg6.Behaviour{Action: seg6.ActionEnd}})
	r.AddRoute(&netsim.Route{Prefix: netip.MustParsePrefix("2001:db8:2::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: rcIf}}})
	c.HandleUDP(2, func(*netsim.Node, *packet.Packet, *netsim.PacketMeta) {})

	name := "SimUDP-obs-off"
	if obsOn {
		name = "SimUDP-obs-on"
		sim.EnableObs(netsim.ObsOptions{Trace: true, SampleShift: 0})
	}

	srh := packet.NewSRH([]netip.Addr{sid, dst})
	tmpl, err := packet.BuildPacket(src, sid, packet.WithSRH(srh),
		packet.WithUDP(1, 2), packet.WithPayload(make([]byte, 64)))
	if err != nil {
		return DatapathRow{}, err
	}

	work := packet.Clone(tmpl)
	bufs := sim.TraceBufs()
	// Warm the event pools so the loop measures steady state.
	for i := 0; i < 64; i++ {
		copy(work, tmpl)
		a.Output(work)
		sim.Run()
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(work, tmpl)
			a.Output(work)
			sim.Run()
			// Truncate the journals so the recorder's ring cannot grow
			// without bound across iterations (same mechanism a rollback
			// uses; a cheap slice-length reset).
			for _, tb := range bufs {
				tb.RestoreState(0)
			}
		}
	})
	return DatapathRow{
		Name:        name,
		NsPerOp:     float64(res.NsPerOp()),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	}, nil
}

// simUDPBurstRow is the batched-datapath variant of simUDPRow: the
// same A — R(End) — C lab, but each benchmark iteration offers a whole
// batch of packets before running the simulator, so the router's rx
// ring backs up and its drain loop processes them back-to-back — the
// regime where the per-burst flow cache, route memo and bind-skip
// engage. NsPerOp is divided by the batch size (a per-packet figure);
// AllocsPerOp/BytesPerOp are left per batch, which only sharpens the
// zero-allocation requirement on the row.
func simUDPBurstRow(burst, batch int) (DatapathRow, error) {
	src := netip.MustParseAddr("2001:db8:1::1")
	dst := netip.MustParseAddr("2001:db8:2::1")
	sid := netip.MustParseAddr("fc00:1::b")

	sim := netsim.New(1)
	a := sim.AddNode("A", netsim.HostCostModel())
	r := sim.AddNode("R", netsim.ServerCostModel())
	c := sim.AddNode("C", netsim.HostCostModel())
	a.AddAddress(src)
	c.AddAddress(dst)
	fast := netem.Config{RateBps: 1e12}
	aIf, _ := netsim.ConnectSymmetric(a, r, fast)
	rcIf, cIf := netsim.ConnectSymmetric(r, c, fast)
	a.AddRoute(&netsim.Route{Prefix: netip.MustParsePrefix("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: aIf}}})
	c.AddRoute(&netsim.Route{Prefix: netip.MustParsePrefix("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: cIf}}})
	r.AddRoute(&netsim.Route{Prefix: netip.PrefixFrom(sid, 128), Kind: netsim.RouteSeg6Local, Behaviour: &seg6.Behaviour{Action: seg6.ActionEnd}})
	r.AddRoute(&netsim.Route{Prefix: netip.MustParsePrefix("2001:db8:2::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: rcIf}}})
	c.HandleUDP(2, func(*netsim.Node, *packet.Packet, *netsim.PacketMeta) {})
	sim.SetBurst(burst)

	srh := packet.NewSRH([]netip.Addr{sid, dst})
	tmpl, err := packet.BuildPacket(src, sid, packet.WithSRH(srh),
		packet.WithUDP(1, 2), packet.WithPayload(make([]byte, 64)))
	if err != nil {
		return DatapathRow{}, err
	}

	works := make([][]byte, batch)
	for i := range works {
		works[i] = packet.Clone(tmpl)
	}
	offer := func() {
		for _, w := range works {
			copy(w, tmpl)
			a.Output(w)
		}
		sim.Run()
	}
	// Warm the event pools and the router's rx ring growth.
	for i := 0; i < 8; i++ {
		offer()
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			offer()
		}
	})
	return DatapathRow{
		Name:        fmt.Sprintf("SimUDP-burst%d", burst),
		NsPerOp:     float64(res.NsPerOp()) / float64(batch),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
		Burst:       burst,
	}, nil
}
