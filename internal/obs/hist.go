package obs

// Log-linear histogram in the HdrHistogram family: values below
// histSub land in exact width-1 buckets; above that, each power of two
// is split into histSub linear sub-buckets, bounding the relative
// quantile error at 1/histSub (6.25%). The bucket layout is a pure
// function of the value, so two histograms recorded independently
// (e.g. one per shard) merge exactly by adding counts — the property
// the per-shard datapath cells rely on.

import "math/bits"

const (
	histSub    = 16 // linear sub-buckets per power of two
	histSubLog = 4  // log2(histSub)

	// Largest index: values up to 1<<63 shift by 64-histSubLog-1.
	histBuckets = histSub * (64 - histSubLog) // 960
)

// Histogram counts int64 observations (negative values clamp to 0).
// It is not safe for concurrent use; keep one per shard and Merge at
// scrape time.
type Histogram struct {
	counts   [histBuckets]uint64
	count    uint64
	sum      uint64
	min, max uint64
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v uint64) int {
	if v < histSub {
		return int(v)
	}
	shift := bits.Len64(v) - histSubLog - 1
	return histSub*shift + int(v>>uint(shift))
}

// BucketLower returns the smallest value mapping to bucket i.
func BucketLower(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	shift := i/histSub - 1
	return uint64(i-histSub*shift) << uint(shift)
}

// BucketUpper returns the largest value mapping to bucket i.
func BucketUpper(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	shift := i/histSub - 1
	return BucketLower(i) + (1<<uint(shift) - 1)
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	u := uint64(0)
	if v > 0 {
		u = uint64(v)
	}
	h.counts[bucketIndex(u)]++
	h.count++
	h.sum += u
	if h.count == 1 || u < h.min {
		h.min = u
	}
	if u > h.max {
		h.max = u
	}
}

// Merge adds o's observations into h. Exact: the shared bucket layout
// means merging then querying equals observing everything into one
// histogram.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1),
// exact for values < histSub and within 1/histSub relatively above.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q*float64(h.count) + 0.5)
	if target < 1 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			u := BucketUpper(i)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.max
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed values (after clamping).
func (h *Histogram) Sum() uint64 { return h.sum }

// Min returns the smallest observed value (0 when empty).
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Reset forgets all observations.
func (h *Histogram) Reset() { *h = Histogram{} }

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	c := *h
	return &c
}

// Buckets calls fn for every non-empty bucket in ascending value
// order with the bucket's inclusive upper bound and its count.
func (h *Histogram) Buckets(fn func(upper uint64, count uint64)) {
	for i, c := range h.counts {
		if c != 0 {
			fn(BucketUpper(i), c)
		}
	}
}
