package progs

import (
	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/asm"
	"srv6bpf/internal/core"
)

// forbiddenWriteSpec tries to overwrite the first segment address in
// the SRH (offset 48) through bpf_lwt_seg6_store_bytes. The helper
// must refuse (§3.1 allows only flags, tag and TLVs); the program
// then returns BPF_OK so the unchanged packet travels on.
func forbiddenWriteSpec() *bpf.ProgramSpec {
	return &bpf.ProgramSpec{
		Name: "forbidden_write",
		Instructions: asm.Instructions{
			asm.Mov64Reg(asm.R6, asm.R1),
			// 16 bytes of 0xff on the stack.
			asm.LoadImm64(asm.R2, -1),
			asm.StoreMem(asm.RFP, -16, asm.R2, asm.DWord),
			asm.StoreMem(asm.RFP, -8, asm.R2, asm.DWord),
			// store_bytes(ctx, 48 /* first segment */, fp-16, 16)
			asm.Mov64Reg(asm.R1, asm.R6),
			asm.Mov64Imm(asm.R2, 48),
			asm.Mov64Reg(asm.R3, asm.RFP),
			asm.ALU64Imm(asm.Add, asm.R3, -16),
			asm.Mov64Imm(asm.R4, 16),
			asm.CallHelper(bpf.HelperLWTSeg6StoreByte),
			// The helper must have failed; require a non-zero return
			// or drop the packet to make the test fail loudly.
			asm.JumpImm(asm.JEq, asm.R0, 0, "bad"),
			asm.Mov64Imm(asm.R0, core.BPFOK),
			asm.Return(),
			asm.Mov64Imm(asm.R0, core.BPFDrop).WithSymbol("bad"),
			asm.Return(),
		},
		License: "Dual MIT/GPL",
	}
}
