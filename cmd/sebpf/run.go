package main

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/maps"
	"srv6bpf/internal/core"
	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/nf/progs"
	"srv6bpf/internal/packet"
)

// runProgram executes a bundled program on a synthetic probe inside a
// two-node rig and prints what happened to the packet.
func runProgram(name string, e entry) error {
	src := netip.MustParseAddr("2001:db8:1::1")
	dst := netip.MustParseAddr("2001:db8:2::1")
	sid := netip.MustParseAddr("fc00:10::1")

	sim := netsim.New(1)
	rtr := sim.AddNode("rtr", netsim.ServerCostModel())
	peer := sim.AddNode("peer", netsim.HostCostModel())
	rtr.AddAddress(netip.MustParseAddr("2001:db8:10::1"))
	peer.AddAddress(dst)
	peer.AddAddress(src)
	rIf, pIf := netsim.ConnectSymmetric(rtr, peer, netem.Config{RateBps: 1e10})
	rtr.AddRoute(&netsim.Route{Prefix: netip.MustParsePrefix("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: rIf}}})
	peer.AddRoute(&netsim.Route{Prefix: netip.MustParsePrefix("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: pIf}}})

	avail := demoMaps(name)
	prog, err := bpf.LoadProgram(e.spec, e.hook, avail, bpf.LoadOptions{})
	if err != nil {
		return err
	}

	raw, err := demoPacket(name, src, dst, sid)
	if err != nil {
		return err
	}
	before, err := packet.Parse(raw)
	if err != nil {
		return err
	}
	fmt.Printf("in:  %s\n", before.Summary())

	meta := &netsim.PacketMeta{RxTimestamp: sim.Now()}
	switch e.hook.Name {
	case "lwt_seg6local":
		end, err := core.AttachEndBPF(prog)
		if err != nil {
			return err
		}
		res, cost, err := end.RunSeg6Local(rtr, raw, meta)
		if err != nil {
			return err
		}
		fmt.Printf("verdict: %v (modelled cost %d ns)\n", res.Verdict, cost)
		if res.Pkt != nil {
			if after, perr := packet.Parse(res.Pkt); perr == nil {
				fmt.Printf("out: %s\n", after.Summary())
			}
		}
	case "lwt_out":
		lwt, err := core.AttachLWT(prog)
		if err != nil {
			return err
		}
		out, verdict, cost, err := lwt.RunLWTOut(rtr, raw, meta)
		if err != nil {
			return err
		}
		fmt.Printf("verdict: %d (modelled cost %d ns)\n", verdict, cost)
		if out != nil {
			if after, perr := packet.Parse(out); perr == nil {
				fmt.Printf("out: %s\n", after.Summary())
			}
		}
	default:
		return fmt.Errorf("hook %s not runnable", e.hook.Name)
	}
	drainPerf(avail)
	return nil
}

// demoPacket builds an input matching each program's expectations.
func demoPacket(name string, src, dst, sid netip.Addr) ([]byte, error) {
	switch name {
	case "end_dm":
		inner, err := packet.BuildPacket(src, dst, packet.WithUDP(1, 2), packet.WithPayload([]byte("in")))
		if err != nil {
			return nil, err
		}
		srh := packet.NewSRH([]netip.Addr{sid, dst},
			packet.DMTLV{TxTimestampNS: 12345},
			packet.ControllerTLV{Addr: dst, Port: 7788})
		return packet.BuildPacket(src, sid, packet.WithSRH(srh), packet.WithInnerPacket(inner))
	case "end_oamp":
		srh := packet.NewSRH([]netip.Addr{sid, src},
			packet.OAMPQueryTLV{Target: dst},
			packet.NexthopsTLV{})
		return packet.BuildPacket(src, sid, packet.WithSRH(srh), packet.WithUDP(1, 2), packet.WithPayload([]byte{1}))
	case "dm_encap", "wrr":
		return packet.BuildPacket(src, dst, packet.WithUDP(1, 2), packet.WithPayload([]byte("plain")))
	default:
		srh := packet.NewSRH([]netip.Addr{sid, dst})
		srh.Tag = 41
		return packet.BuildPacket(src, sid, packet.WithSRH(srh), packet.WithUDP(1, 2), packet.WithPayload([]byte("demo")))
	}
}

// demoMaps provisions configured maps for the programs that need them.
func demoMaps(name string) map[string]*maps.Map {
	out := make(map[string]*maps.Map)
	dst := netip.MustParseAddr("2001:db8:2::1")
	sid := netip.MustParseAddr("fc00:10::1")
	switch name {
	case "dm_encap", "end_dm":
		conf := maps.MustNew(maps.Spec{Name: progs.DMConfMap, Type: maps.Array, KeySize: 4, ValueSize: progs.DMConfSize, MaxEntries: 1})
		v := make([]byte, progs.DMConfSize)
		binary.LittleEndian.PutUint32(v[0:], 1) // sample everything
		binary.BigEndian.PutUint16(v[4:], 7788)
		a := dst.As16()
		copy(v[8:24], a[:])
		b := sid.As16()
		copy(v[24:40], b[:])
		conf.Update(bpf.PutUint32(0), v, maps.UpdateAny)
		out[progs.DMConfMap] = conf
		out[progs.DMEventsMap] = maps.MustNew(maps.Spec{Name: progs.DMEventsMap, Type: maps.PerfEventArray, MaxEntries: 1})
	case "wrr":
		conf := maps.MustNew(maps.Spec{Name: progs.WRRConfMap, Type: maps.Array, KeySize: 4, ValueSize: progs.WRRConfSize, MaxEntries: 1})
		v := make([]byte, progs.WRRConfSize)
		binary.LittleEndian.PutUint32(v[0:], 5)
		binary.LittleEndian.PutUint32(v[4:], 3)
		a := sid.As16()
		copy(v[8:24], a[:])
		copy(v[24:40], a[:])
		conf.Update(bpf.PutUint32(0), v, maps.UpdateAny)
		out[progs.WRRConfMap] = conf
		out[progs.WRRStateMap] = maps.MustNew(maps.Spec{Name: progs.WRRStateMap, Type: maps.Array, KeySize: 4, ValueSize: progs.WRRStateSize, MaxEntries: 1})
	}
	return out
}

// drainPerf prints any perf samples the run produced.
func drainPerf(avail map[string]*maps.Map) {
	m, ok := avail[progs.DMEventsMap]
	if !ok {
		return
	}
	for _, s := range m.DrainSamples(0) {
		fmt.Printf("perf event (%d bytes): % x\n", len(s.Data), s.Data)
	}
}
