package experiments

import (
	"fmt"
	"net/netip"

	"srv6bpf/internal/netsim"
	"srv6bpf/internal/netsim/chaos"
	"srv6bpf/internal/nf/frr"
)

// FlapStormRow is one arm of the flap-storm experiment.
type FlapStormRow struct {
	Mode         string  `json:"mode"` // "undamped" or "damped"
	FlapPeriodMs float64 `json:"flap_period_ms"`
	Cycles       int     `json:"cycles"`
	Transitions  int     `json:"transitions"`   // detector decisions (route churn)
	DeliveredPct float64 `json:"delivered_pct"` // of offered packets
	PacketsLost  int     `json:"packets_lost"`
}

// FRRFlapStorm measures what flap damping buys under a pathological
// link: the protected link flaps at roughly the detection timescale
// for `cycles` periods while protected traffic runs at 50 kpps. The
// undamped detector chases the flap frequency — one route flip per
// cycle, each down decision paying the K-probe blackout again. The
// damped detector pays its exponentially-growing hold-down, converges
// onto the backup path and stays there, so churn collapses while
// delivery stays in the same band (the detour keeps carrying traffic
// through the storm). A clean single failure keeps its
// K × interval + RTT recovery bound with damping on —
// TestDampedCleanFailureKeepsRecoveryBound locks that separately.
func FRRFlapStorm() ([]FlapStormRow, error) {
	const (
		k        = 2
		interval = netsim.Millisecond
		gap      = 20 * netsim.Microsecond // 50 kpps
		cycles   = 20
		downNs   = 4 * netsim.Millisecond
		upNs     = 4 * netsim.Millisecond
	)
	stormStart := int64(10 * netsim.Millisecond)
	stormEnd := stormStart + int64(cycles)*(downNs+upNs)
	until := stormEnd + 100*netsim.Millisecond // quiet tail: both arms re-converge

	var rows []FlapStormRow
	for _, damping := range []bool{false, true} {
		l := newFRRLab(7)
		f, err := frr.New(l.p, frr.Config{
			TrackSID:      frrTrack,
			ProbeInterval: interval,
			Misses:        k,
			JIT:           true,
			Damping:       damping,
		})
		if err != nil {
			return nil, err
		}
		if err := f.AddNeighbor(frr.Neighbor{ID: 1, ProbeAddr: frrProbeTo, SID: frrNbrSID, Iface: l.pdIf}); err != nil {
			return nil, err
		}
		if err := f.Protect(frr.Protection{
			Prefix:     pfx("2001:db8:2::/48"),
			NeighborID: 1,
			PrimarySID: frrPrim,
			Backup:     []netip.Addr{frrDetour, frrBkDecap},
		}); err != nil {
			return nil, err
		}
		f.Start()

		offered := l.offer(gap, until)
		ch := chaos.New(l.sim, 7)
		ch.FlapLink(l.pdIf, stormStart, downNs, upNs, cycles)

		l.sim.RunUntil(until)
		f.Stop()
		l.sim.Run()

		lost := offered - len(l.delivered)
		mode := "undamped"
		if damping {
			mode = "damped"
		}
		rows = append(rows, FlapStormRow{
			Mode:         mode,
			FlapPeriodMs: float64(downNs+upNs) / 1e6,
			Cycles:       cycles,
			Transitions:  len(f.Transitions),
			DeliveredPct: 100 * float64(offered-lost) / float64(offered),
			PacketsLost:  lost,
		})
		if f.Down(1) {
			return nil, fmt.Errorf("experiments: %s detector stuck down after the storm", mode)
		}
	}

	// The experiment's claim, enforced like FRRRecovery enforces its
	// budget: damping must cut route churn by well over 3x.
	if rows[1].Transitions*3 >= rows[0].Transitions {
		return nil, fmt.Errorf("experiments: damping did not bound churn (%d vs %d undamped)",
			rows[1].Transitions, rows[0].Transitions)
	}
	return rows, nil
}
