// Package oamp implements the paper's third use case (§4.3): an
// enhanced, ECMP-aware traceroute built on the End.OAMP eBPF function.
//
// For each hop, the tracer first locates the router with a classic
// hop-limit-limited probe (ICMPv6 time exceeded). If the operator has
// published an End.OAMP SID for that router, the tracer then sends an
// SRv6 query whose segment list visits the SID and returns to the
// prober; End.OAMP fills a TLV with the router's ECMP nexthops for
// the traced destination. Routers without the function silently fall
// back to the legacy ICMP behaviour, exactly as the paper describes.
package oamp

import (
	"fmt"
	"net/netip"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/core"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/nf/progs"
	"srv6bpf/internal/packet"
)

// Deploy loads End.OAMP and installs it at sid on node.
func Deploy(node *netsim.Node, sid netip.Addr, jit bool) error {
	prog, err := bpf.LoadProgram(progs.OAMPSpec(), core.Seg6LocalHook(), nil, bpf.LoadOptions{JIT: &jit})
	if err != nil {
		return fmt.Errorf("oamp: loading End.OAMP: %w", err)
	}
	end, err := core.AttachEndBPF(prog)
	if err != nil {
		return err
	}
	node.AddRoute(&netsim.Route{
		Prefix:    netip.PrefixFrom(sid, 128),
		Kind:      netsim.RouteSeg6Local,
		Behaviour: end.Behaviour(),
	})
	return nil
}

// Hop is the result for one TTL.
type Hop struct {
	TTL  int
	Addr netip.Addr // responding router, or invalid on timeout
	// Nexthops is the ECMP set End.OAMP reported (nil when the hop
	// answered only with ICMP).
	Nexthops []netip.Addr
	ViaOAMP  bool
	Timeout  bool
	// Reached marks the final hop (destination responded).
	Reached bool
}

// Options tune a trace.
type Options struct {
	MaxTTL    int
	TimeoutNs int64
	FlowLabel uint32
	// SIDs maps a router address to its End.OAMP SID. Routers absent
	// from the map use the ICMP fallback.
	SIDs map[netip.Addr]netip.Addr
	// BasePort is the UDP destination port of the first probe
	// (incremented per TTL, traceroute-style).
	BasePort uint16
}

func (o *Options) setDefaults() {
	if o.MaxTTL == 0 {
		o.MaxTTL = 16
	}
	if o.TimeoutNs == 0 {
		o.TimeoutNs = 500 * netsim.Millisecond
	}
	if o.BasePort == 0 {
		o.BasePort = 33434
	}
}

// replyPort receives OAMP answers.
const replyPort = 33400

// Tracer runs one traceroute as an event-driven state machine inside
// the simulation.
type Tracer struct {
	node   *netsim.Node
	src    netip.Addr
	target netip.Addr
	opts   Options

	ttl     int
	seq     int // guards against stale timeouts
	hopAddr netip.Addr
	hops    []Hop
	done    func([]Hop)
	dead    bool
}

// Trace starts a traceroute from node towards target; done receives
// the hops when the trace completes. The node's ICMP handler and the
// reply UDP port are owned by the tracer for the duration.
func Trace(node *netsim.Node, target netip.Addr, opts Options, done func([]Hop)) *Tracer {
	opts.setDefaults()
	t := &Tracer{
		node:   node,
		src:    node.PrimaryAddress(),
		target: target,
		opts:   opts,
		done:   done,
	}
	node.HandleICMP(t.onICMP)
	node.HandleUDP(replyPort, t.onOAMPReply)
	t.ttl = 1
	t.probe()
	return t
}

// probe sends the hop-limited UDP probe for the current TTL.
func (t *Tracer) probe() {
	if t.dead {
		return
	}
	raw, err := packet.BuildPacket(t.src, t.target,
		packet.WithUDP(uint16(40000+t.ttl), t.opts.BasePort+uint16(t.ttl)),
		packet.WithHopLimit(uint8(t.ttl)),
		packet.WithFlowLabel(t.opts.FlowLabel),
		packet.WithPayload([]byte("oamp-traceroute")))
	if err != nil {
		t.finish()
		return
	}
	t.node.Output(raw)
	t.armTimeout()
}

func (t *Tracer) armTimeout() {
	t.seq++
	seq := t.seq
	t.node.After(t.opts.TimeoutNs, func() {
		if t.dead || seq != t.seq {
			return
		}
		t.hops = append(t.hops, Hop{TTL: t.ttl, Timeout: true})
		t.next()
	})
}

// onICMP classifies time-exceeded and port-unreachable answers.
func (t *Tracer) onICMP(n *netsim.Node, p *packet.Packet, meta *netsim.PacketMeta) {
	if t.dead {
		return
	}
	m, err := packet.DecodeICMPv6(p.Raw[p.L4Off:])
	if err != nil || len(m.Body) < 4+packet.IPv6HeaderLen+packet.UDPHeaderLen {
		return
	}
	// The body quotes the invoking packet; match it to our probe by
	// the UDP destination port.
	quoted := m.Body[4:]
	qp, err := packet.Parse(quoted)
	if err != nil || qp.L4Proto != packet.ProtoUDP {
		return
	}
	udp, err := packet.DecodeUDP(quoted[qp.L4Off:])
	if err != nil || udp.DstPort != t.opts.BasePort+uint16(t.ttl) {
		return
	}

	switch {
	case m.Type == packet.ICMPv6TimeExceeded:
		t.hopAddr = p.IPv6.Src
		if sid, ok := t.opts.SIDs[t.hopAddr]; ok {
			t.queryOAMP(sid)
			return
		}
		t.hops = append(t.hops, Hop{TTL: t.ttl, Addr: t.hopAddr})
		t.next()
	case m.Type == packet.ICMPv6DstUnreachable && m.Code == 4:
		// Port unreachable from the destination: trace complete.
		t.hops = append(t.hops, Hop{TTL: t.ttl, Addr: p.IPv6.Src, Reached: true})
		t.finish()
	}
}

// queryOAMP sends the End.OAMP query to the discovered hop.
func (t *Tracer) queryOAMP(sid netip.Addr) {
	srh := packet.NewSRH(
		[]netip.Addr{sid, t.src},
		packet.OAMPQueryTLV{Target: t.target},
		packet.NexthopsTLV{},
	)
	raw, err := packet.BuildPacket(t.src, sid,
		packet.WithSRH(srh),
		packet.WithUDP(replyPort, replyPort),
		packet.WithPayload([]byte{byte(t.ttl)}))
	if err != nil {
		t.hops = append(t.hops, Hop{TTL: t.ttl, Addr: t.hopAddr})
		t.next()
		return
	}
	t.node.Output(raw)
	t.armTimeout()
}

// onOAMPReply digests the returned query packet.
func (t *Tracer) onOAMPReply(n *netsim.Node, p *packet.Packet, meta *netsim.PacketMeta) {
	if t.dead || p.SRH == nil {
		return
	}
	payload := p.Raw[p.L4Off+packet.UDPHeaderLen:]
	if len(payload) < 1 || int(payload[0]) != t.ttl {
		return
	}
	var nhs []netip.Addr
	for _, tlv := range p.SRH.TLVs {
		if v, ok := tlv.(packet.NexthopsTLV); ok {
			for i := 0; i < int(v.Count) && i < 4; i++ {
				nhs = append(nhs, v.Nexthops[i])
			}
		}
	}
	t.hops = append(t.hops, Hop{
		TTL:      t.ttl,
		Addr:     t.hopAddr,
		Nexthops: nhs,
		ViaOAMP:  true,
	})
	t.next()
}

func (t *Tracer) next() {
	t.ttl++
	if t.ttl > t.opts.MaxTTL {
		t.finish()
		return
	}
	t.probe()
}

func (t *Tracer) finish() {
	if t.dead {
		return
	}
	t.dead = true
	t.seq++
	if t.done != nil {
		t.done(t.hops)
	}
}

// Format renders hops like the traceroute CLI.
func Format(hops []Hop) string {
	out := ""
	for _, h := range hops {
		switch {
		case h.Timeout:
			out += fmt.Sprintf("%2d  *\n", h.TTL)
		case h.ViaOAMP:
			out += fmt.Sprintf("%2d  %s  [OAMP ecmp=%d: %v]\n", h.TTL, h.Addr, len(h.Nexthops), h.Nexthops)
		case h.Reached:
			out += fmt.Sprintf("%2d  %s  (destination)\n", h.TTL, h.Addr)
		default:
			out += fmt.Sprintf("%2d  %s  [icmp]\n", h.TTL, h.Addr)
		}
	}
	return out
}
