package vm

import (
	"fmt"

	"srv6bpf/internal/bpf/asm"
)

// The JIT engine pre-compiles every wire slot into a closure that
// performs the operation directly and returns the next pc. All
// operand decoding, sign extension and jump-target arithmetic happens
// once, at compile time; execution is a tight trampoline loop.
//
// Sentinel pcs returned by compiled ops:
//
//	pcExit — clean program exit, result in r0
//	pcTrap — runtime fault, error in m.trap

const (
	pcExit = -1
	pcTrap = -2
)

type compiledOp func(m *Machine) int

// compile translates decoded slots into closures. It validates static
// jump targets so the trampoline never range-checks.
func compile(slots []slot) ([]compiledOp, error) {
	code := make([]compiledOp, len(slots))

	checkTarget := func(pc, target int) error {
		if target < 0 || target >= len(slots) {
			return fmt.Errorf("vm: jit: jump from %d to %d out of range", pc, target)
		}
		if slots[target].pad {
			return fmt.Errorf("vm: jit: jump from %d into lddw pad at %d", pc, target)
		}
		return nil
	}

	for pc := range slots {
		s := &slots[pc]
		if s.pad {
			// Never executed; trap defensively if reached.
			code[pc] = func(m *Machine) int {
				m.trap = ErrBadJumpTarget
				return pcTrap
			}
			continue
		}
		next := pc + 1
		op := s.op
		class := op.Class()

		switch class {
		case asm.ClassALU64, asm.ClassALU:
			c, err := compileALU(s, class, next)
			if err != nil {
				return nil, fmt.Errorf("vm: jit: pc %d: %w", pc, err)
			}
			code[pc] = c

		case asm.ClassJump, asm.ClassJump32:
			c, err := compileJump(s, class, pc, next, checkTarget)
			if err != nil {
				return nil, fmt.Errorf("vm: jit: pc %d: %w", pc, err)
			}
			code[pc] = c

		case asm.ClassLdX:
			dst, src, off := s.dst, s.src, int64(s.off)
			size := op.Size().Bytes()
			code[pc] = func(m *Machine) int {
				v, err := m.Mem.Load(m.Regs[src]+uint64(off), size)
				if err != nil {
					m.trap = err
					return pcTrap
				}
				m.Regs[dst] = v
				return next
			}

		case asm.ClassStX:
			dst, src, off := s.dst, s.src, int64(s.off)
			size := op.Size().Bytes()
			if op.Mode() == asm.ModeXadd {
				if size != 4 && size != 8 {
					return nil, fmt.Errorf("vm: jit: pc %d: atomic add size %d", pc, size)
				}
				code[pc] = func(m *Machine) int {
					addr := m.Regs[dst] + uint64(off)
					cur, err := m.Mem.Load(addr, size)
					if err != nil {
						m.trap = err
						return pcTrap
					}
					if err := m.Mem.Store(addr, size, cur+m.Regs[src]); err != nil {
						m.trap = err
						return pcTrap
					}
					return next
				}
			} else {
				code[pc] = func(m *Machine) int {
					if err := m.Mem.Store(m.Regs[dst]+uint64(off), size, m.Regs[src]); err != nil {
						m.trap = err
						return pcTrap
					}
					return next
				}
			}

		case asm.ClassSt:
			dst, off := s.dst, int64(s.off)
			size := op.Size().Bytes()
			val := uint64(int64(int32(s.imm)))
			code[pc] = func(m *Machine) int {
				if err := m.Mem.Store(m.Regs[dst]+uint64(off), size, val); err != nil {
					m.trap = err
					return pcTrap
				}
				return next
			}

		case asm.ClassLd:
			if op != asm.LoadImm64(0, 0).OpCode {
				return nil, fmt.Errorf("vm: jit: pc %d: %w: %#02x", pc, ErrBadOpcode, uint8(op))
			}
			dst, imm := s.dst, uint64(s.imm)
			skip := pc + 2
			code[pc] = func(m *Machine) int {
				m.Regs[dst] = imm
				return skip
			}

		default:
			return nil, fmt.Errorf("vm: jit: pc %d: %w: %#02x", pc, ErrBadOpcode, uint8(op))
		}
	}
	return code, nil
}

func compileALU(s *slot, class asm.Class, next int) (compiledOp, error) {
	op := s.op
	dst := s.dst
	wide := class == asm.ClassALU64

	switch op.ALUOp() {
	case asm.Neg:
		if wide {
			return func(m *Machine) int { m.Regs[dst] = -m.Regs[dst]; return next }, nil
		}
		return func(m *Machine) int { m.Regs[dst] = uint64(-uint32(m.Regs[dst])); return next }, nil

	case asm.Swap:
		bits := s.imm
		if bits != 16 && bits != 32 && bits != 64 {
			return nil, fmt.Errorf("swap width %d", bits)
		}
		toBE := op.Source() == asm.RegSource
		return func(m *Machine) int {
			m.Regs[dst] = swapBytes(m.Regs[dst], bits, toBE)
			return next
		}, nil

	case asm.Mov:
		// Mov is the most common op; specialize fully.
		if op.Source() == asm.RegSource {
			src := s.src
			if wide {
				return func(m *Machine) int { m.Regs[dst] = m.Regs[src]; return next }, nil
			}
			return func(m *Machine) int { m.Regs[dst] = uint64(uint32(m.Regs[src])); return next }, nil
		}
		imm := uint64(int64(int32(s.imm)))
		if !wide {
			imm = uint64(uint32(imm))
		}
		return func(m *Machine) int { m.Regs[dst] = imm; return next }, nil

	case asm.Add:
		if op.Source() == asm.RegSource {
			src := s.src
			if wide {
				return func(m *Machine) int { m.Regs[dst] += m.Regs[src]; return next }, nil
			}
			return func(m *Machine) int {
				m.Regs[dst] = uint64(uint32(m.Regs[dst]) + uint32(m.Regs[src]))
				return next
			}, nil
		}
		imm := uint64(int64(int32(s.imm)))
		if wide {
			return func(m *Machine) int { m.Regs[dst] += imm; return next }, nil
		}
		return func(m *Machine) int {
			m.Regs[dst] = uint64(uint32(m.Regs[dst]) + uint32(imm))
			return next
		}, nil
	}

	// Remaining ops share a pre-selected operation function.
	aop := op.ALUOp()
	switch aop {
	case asm.Sub, asm.Mul, asm.Div, asm.Or, asm.And, asm.LSh, asm.RSh, asm.Mod, asm.Xor, asm.ArSh:
	default:
		return nil, fmt.Errorf("%w: alu op %v", ErrBadOpcode, aop)
	}
	if op.Source() == asm.RegSource {
		src := s.src
		if wide {
			return func(m *Machine) int {
				m.Regs[dst] = alu64(aop, m.Regs[dst], m.Regs[src])
				return next
			}, nil
		}
		return func(m *Machine) int {
			m.Regs[dst] = alu32(aop, m.Regs[dst], m.Regs[src])
			return next
		}, nil
	}
	imm := uint64(int64(int32(s.imm)))
	if wide {
		return func(m *Machine) int {
			m.Regs[dst] = alu64(aop, m.Regs[dst], imm)
			return next
		}, nil
	}
	return func(m *Machine) int {
		m.Regs[dst] = alu32(aop, m.Regs[dst], imm)
		return next
	}, nil
}

func compileJump(s *slot, class asm.Class, pc, next int, checkTarget func(int, int) error) (compiledOp, error) {
	op := s.op
	jop := op.JumpOp()

	switch jop {
	case asm.Exit:
		return func(m *Machine) int { return pcExit }, nil

	case asm.Call:
		id := s.imm
		return func(m *Machine) int {
			if err := m.callHelper(id); err != nil {
				m.trap = err
				return pcTrap
			}
			return next
		}, nil

	case asm.Ja:
		target := pc + 1 + int(s.off)
		if err := checkTarget(pc, target); err != nil {
			return nil, err
		}
		return func(m *Machine) int { return target }, nil
	}

	target := pc + 1 + int(s.off)
	if err := checkTarget(pc, target); err != nil {
		return nil, err
	}
	wide := class == asm.ClassJump
	dst := s.dst

	switch jop {
	case asm.JEq, asm.JNE, asm.JGT, asm.JGE, asm.JLT, asm.JLE,
		asm.JSet, asm.JSGT, asm.JSGE, asm.JSLT, asm.JSLE:
	default:
		return nil, fmt.Errorf("%w: jump op %v", ErrBadOpcode, jop)
	}

	if op.Source() == asm.RegSource {
		src := s.src
		// Specialize the hottest comparison.
		if jop == asm.JEq && wide {
			return func(m *Machine) int {
				if m.Regs[dst] == m.Regs[src] {
					return target
				}
				return next
			}, nil
		}
		return func(m *Machine) int {
			if jumpTaken(jop, m.Regs[dst], m.Regs[src], wide) {
				return target
			}
			return next
		}, nil
	}

	imm := uint64(int64(int32(s.imm)))
	if jop == asm.JEq && wide {
		return func(m *Machine) int {
			if m.Regs[dst] == imm {
				return target
			}
			return next
		}, nil
	}
	return func(m *Machine) int {
		if jumpTaken(jop, m.Regs[dst], imm, wide) {
			return target
		}
		return next
	}, nil
}

// runJIT drives the compiled code through a trampoline loop.
func (m *Machine) runJIT(ex *Executable) (uint64, error) {
	code := ex.code
	budget := m.budget()
	var steps uint64
	pc := 0
	for {
		steps++
		if steps > budget {
			m.Executed += steps
			return 0, ErrMaxInstructions
		}
		pc = code[pc](m)
		if pc < 0 {
			m.Executed += steps
			if pc == pcExit {
				return m.Regs[0], nil
			}
			err := m.trap
			m.trap = nil
			return 0, err
		}
	}
}
