// Package netsim is the discrete-event network simulator that stands
// in for the paper's physical lab (three Xeon servers with 10 Gbps
// NICs, a Turris Omnia CPE, and tc-netem-shaped links; Figure 1 of
// the paper).
//
// Everything runs in virtual time: links serialise and delay packets
// through netem qdiscs, and each node charges per-packet CPU time
// from a calibrated cost model, reproducing the receive-limited
// behaviour the paper measures (a single core pinned to the NIC
// interrupt, 610 kpps of raw IPv6 forwarding). Determinism is total:
// the same seed yields the same packet-by-packet schedule.
//
// # Sharded parallel execution
//
// By default the simulation runs on one event heap on the calling
// goroutine, exactly as it always has. Sim.SetShards(n) partitions
// the nodes into n shards, each with its own event heap, clock and
// counters, synchronised by one of two engines.
//
// The conservative engine (the default) lock-steps shards in windows
// of
//
//	lookahead = min cross-shard link delay
//
// so it never executes an event out of order — but it requires every
// cross-shard link to carry a nonzero, jitter-free delay, and it
// barriers once per lookahead. The optimistic engine
// (SetShards(n, EngineOptimistic)) speculates past the lookahead
// Time-Warp style: shards take periodic incremental checkpoints
// (dirty nodes only; cadence and speculation horizon driven by an
// adaptive controller fed with the observed rollback rate — see
// horizon.go), and when a cross-shard message arrives below a
// shard's execution frontier the shard rolls back to a checkpoint,
// re-delivers its logged inputs and reconciles the cross-shard sends
// of the undone interval (identical re-emissions are suppressed;
// disowned deliveries are annihilated with anti-messages). GVT — the
// minimum over pending events and unacked speculative sends — bounds
// checkpoint retention and rollback depth.
// Components that keep packet-driven state outside the netsim core
// register it through Node.RegisterState so rollback rewinds them
// too; delivery traces recorded from handlers use Journal.
//
// Determinism survives sharding — under both engines — because event
// ordering does not depend on a global sequence counter: every event
// is keyed by (at, schedAt, src, k) — its execution time, the virtual
// time at which it was scheduled, the index of the node that
// scheduled it, and that node's private schedule counter. The key is
// computable locally by the scheduling shard yet totally ordered
// globally, so the committed parallel schedule is the sequential
// schedule: the same seed yields identical per-node counters and
// delivery traces for any shard count and engine (locked by
// TestShardEquivalence* and the randomized TestShardEquivalenceFuzz).
package netsim

import (
	"math"
	"math/rand"

	"srv6bpf/internal/stats"
)

// eventKind discriminates the event payload. The two hot event types
// of the packet path — a link delivery and a node's drain continuation
// — are stored in data form instead of closures, so the steady-state
// schedule/execute cycle allocates nothing at all.
type eventKind uint8

const (
	// evClosure runs fn; the general-purpose event (driver schedules,
	// timers, NF callbacks).
	evClosure eventKind = iota
	// evDeliver delivers raw to peer (the materialised form of what
	// used to be xmsg.buildEvent's closure).
	evDeliver
	// evDrainCont is a node's drain continuation: commit the pending
	// packet side effects, then pop the next packet. epoch carries the
	// node's crash epoch at scheduling time, so a continuation that
	// outlives a crash/restart cycle dies instead of draining a fresh
	// ring.
	evDrainCont
)

// event is one scheduled callback. Events are stored by value in the
// heap slice: scheduling one packet hop costs no heap object beyond
// the callback closure itself (and amortised slice growth) — and the
// packet-path kinds (evDeliver, evDrainCont) not even that.
//
// The (at, schedAt, src, k) tuple is the event's deterministic
// ordering key. schedAt is the virtual time of the Schedule call, src
// the index of the scheduling node (-1 for driver-level schedules),
// and k the per-source schedule counter. Unlike a global sequence
// number, the key does not depend on how shards interleave, so it
// orders events identically whether the simulation runs on one heap
// or sixteen.
type event struct {
	at      int64
	schedAt int64
	k       uint64
	// epoch is the iface fail epoch (evDeliver) or the node crash
	// epoch (evDrainCont).
	epoch uint64
	// ckptSeq is the privatisation era of raw for same-shard
	// deliveries (evDeliver with cross == false).
	ckptSeq uint64
	fn      func()
	peer    *Iface // evDeliver: receiving link end
	raw     []byte // evDeliver: packet bytes
	src     int32
	kind    eventKind
	cross   bool // evDeliver: crossed a shard boundary
}

// exec dispatches one popped event.
func (s *Sim) exec(e *event) {
	switch e.kind {
	case evDeliver:
		peer := e.peer
		// The event key's src is the sender; the state it mutates
		// belongs to the receiving end, so mark that node dirty
		// explicitly for the incremental checkpoints.
		peer.Node.dirty = true
		if peer.failEpoch != e.epoch {
			peer.inFlightKills++
			return
		}
		peer.Node.deliver(e.raw, peer, e.cross, e.ckptSeq)
	case evDrainCont:
		s.nodes[e.src].drainCont(e.epoch)
	default:
		e.fn()
	}
}

// before reports the deterministic execution order between events.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.schedAt != o.schedAt {
		return e.schedAt < o.schedAt
	}
	if e.src != o.src {
		return e.src < o.src
	}
	return e.k < o.k
}

// eventHeap is a hand-rolled binary min-heap over event values,
// ordered by the event key. Avoiding container/heap avoids both the
// per-push allocation of the boxed element and the interface-method
// dispatch per sift step.
type eventHeap []event

func (h eventHeap) less(i, j int) bool { return h[i].before(&h[j]) }

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the callback for GC
	s = s[:n]
	*h = s

	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// Sim is the simulation kernel: a virtual clock, one event queue per
// shard (one shard unless SetShards is called) and a seeded random
// source. Stochastic per-node components (netem jitter, loss, BPF
// get_prandom) draw from per-node streams split from the same seed,
// so their draws are independent of shard count and node interleave.
type Sim struct {
	seed int64
	rng  *rand.Rand

	// shards always holds at least one shard; len(shards) == 1 is the
	// sequential mode every existing scenario runs in.
	shards    []*shard
	lookahead int64
	// cutLinks is the cross-shard link count of the current partition
	// (each unordered pair once), set by SetShardsPartitioned.
	cutLinks int

	// engine selects the parallel synchronisation protocol set by
	// SetShards; irrelevant while len(shards) == 1.
	engine Engine
	// horizon is the optimistic speculation window; horizonReq
	// remembers an explicit SetHorizon across SetShards calls.
	horizon    int64
	horizonReq int64

	// Optimistic-engine bookkeeping, touched only by the quiescent
	// coordinator (barriers and trims are single-threaded).
	round     uint64
	rollbacks uint64
	antiMsgs  uint64
	gvt       int64
	pending   []pendingMsg
	antiq     []sentRec
	// onBarrier, when set (tests), observes GVT after each barrier's
	// repair fixpoint.
	onBarrier func(gvt int64)

	// now is the committed global clock: in sequential mode it tracks
	// the executing event, in sharded mode the last barrier. Inside
	// events use Node.Now(), which is exact in both modes.
	now int64

	// simK numbers driver-level Schedule calls (src = -1).
	simK uint64

	// running is true while shard workers execute a window; guards
	// against driver-level mutations from inside parallel events.
	running bool

	// Engine accounting: one cell per shard, merged deterministically
	// by EngineStats.
	engEvents      stats.Sharded
	engMsgs        stats.Sharded
	engWindows     stats.Sharded
	engCkpts       stats.Sharded
	engCkptCopied  stats.Sharded
	engCkptAliased stats.Sharded
	engCkptBytes   stats.Sharded

	// hc is the adaptive horizon controller driving s.horizon from the
	// observed rollback rate; nil when a SetHorizon override is active
	// or the engine is conservative. hcMsgsSeen is the cross-shard
	// message total already fed to it.
	hc         *horizonCtl
	hcMsgsSeen uint64

	// obs is the observability plane attached by EnableObs; nil (the
	// default) keeps every hook to a single pointer compare.
	obs *simObs

	// burst is the packet-burst knob set by SetBurst: the maximum
	// number of back-to-back packets a node's drain loop treats as one
	// batch for cache purposes. It never changes the event schedule —
	// each drain still charges and commits exactly one packet — so any
	// burst value is bit-identical to burst == 1.
	burst int

	nodes []*Node
}

// driverSrc keys events scheduled from outside any node (test
// drivers, experiment harnesses). They sort before node events with
// the same (at, schedAt).
const driverSrc int32 = -1

// New creates a simulation with the given random seed.
func New(seed int64) *Sim {
	s := &Sim{seed: seed, rng: rand.New(rand.NewSource(seed)), burst: 1}
	s.shards = []*shard{newShard(s, 0)}
	s.shards[0].out = make([][]xmsg, 1)
	s.lookahead = math.MaxInt64 / 2
	s.engEvents = *stats.NewSharded(1)
	s.engMsgs = *stats.NewSharded(1)
	s.engWindows = *stats.NewSharded(1)
	s.engCkpts = *stats.NewSharded(1)
	s.engCkptCopied = *stats.NewSharded(1)
	s.engCkptAliased = *stats.NewSharded(1)
	s.engCkptBytes = *stats.NewSharded(1)
	return s
}

// Seed returns the seed the simulation was created with.
func (s *Sim) Seed() int64 { return s.seed }

// SetBurst sets the packet-burst size b (clamped to >= 1): how many
// back-to-back packets a node may process as one batch, amortising
// FIB lookups, header parsing and attachment binding across the
// burst. Burst processing is purely a caching regime — the event
// schedule, every counter and every delivery is bit-identical to
// per-packet processing (b == 1, the default) under all engines; the
// equivalence fuzzer locks this with a randomized burst arm.
func (s *Sim) SetBurst(b int) {
	if b < 1 {
		b = 1
	}
	s.burst = b
	for _, n := range s.nodes {
		n.burst = b
	}
}

// Burst returns the current packet-burst size.
func (s *Sim) Burst() int { return s.burst }

// Now returns the current virtual time in nanoseconds. In sharded
// mode this is the last committed barrier; code running inside an
// event should use Node.Now() for the executing shard's exact clock.
func (s *Sim) Now() int64 {
	if len(s.shards) == 1 {
		return s.shards[0].now
	}
	return s.now
}

// Rand returns the simulation's driver-level random source. It is
// not used by any per-packet path (those draw from Node.Rand()
// streams); use it only from driver code, never from inside events
// of a sharded run.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Schedule runs fn at absolute virtual time at (clamped to now).
//
// Calls from driver code (between Run/RunUntil calls) land on shard
// 0; from inside an event of a sequential run they land on the only
// shard. In a sharded run, events must be scheduled through the node
// that owns the state they touch — Node.Schedule / Node.After — so
// the engine can route them to the owning shard; a raw Sim.Schedule
// from inside a parallel window panics.
func (s *Sim) Schedule(at int64, fn func()) {
	if s.running {
		panic("netsim: Sim.Schedule from inside a sharded run; use Node.Schedule/Node.After")
	}
	sh := s.shards[0]
	now := s.Now()
	if at < now {
		at = now
	}
	s.simK++
	sh.heap.push(event{at: at, schedAt: now, src: driverSrc, k: s.simK, fn: fn})
}

// After runs fn d nanoseconds from now.
func (s *Sim) After(d int64, fn func()) { s.Schedule(s.Now()+d, fn) }

// Step executes the next event in deterministic order; it reports
// false when none remain. In sharded mode Step runs the engine
// sequentially (one event at a time, messages flushed immediately);
// Run and RunUntil are the parallel paths.
func (s *Sim) Step() bool {
	if len(s.shards) == 1 {
		sh := s.shards[0]
		if len(sh.heap) == 0 {
			return false
		}
		e := sh.heap.pop()
		sh.now = e.at
		if e.at >= sh.execTo {
			sh.execTo = e.at + 1
		}
		s.engEvents.Inc(0)
		s.exec(&e)
		return true
	}
	best := -1
	for i, sh := range s.shards {
		if len(sh.heap) == 0 {
			continue
		}
		if best < 0 || sh.heap[0].before(&s.shards[best].heap[0]) {
			best = i
		}
	}
	if best < 0 {
		return false
	}
	sh := s.shards[best]
	e := sh.heap.pop()
	sh.now = e.at
	if e.at >= sh.execTo {
		sh.execTo = e.at + 1
	}
	s.engEvents.Inc(sh.id)
	s.exec(&e)
	s.flushOutboxes()
	if e.at > s.now {
		s.now = e.at
	}
	return true
}

// Run executes events until every queue drains.
func (s *Sim) Run() {
	if len(s.shards) == 1 {
		for s.Step() {
		}
		return
	}
	if s.engine == EngineOptimistic {
		s.runOptimistic(math.MaxInt64)
	} else {
		s.runWindows(math.MaxInt64)
	}
	s.syncClocks(s.maxShardNow())
}

// RunUntil executes events with timestamps <= t, then advances the
// clock to t.
func (s *Sim) RunUntil(t int64) {
	if len(s.shards) == 1 {
		sh := s.shards[0]
		for len(sh.heap) > 0 && sh.heap[0].at <= t {
			s.Step()
		}
		if sh.now < t {
			sh.now = t
		}
		return
	}
	if s.engine == EngineOptimistic {
		s.runOptimistic(t)
	} else {
		s.runWindows(t)
	}
	s.syncClocks(t)
}

// Nodes returns all nodes added to the simulation.
func (s *Sim) Nodes() []*Node { return s.nodes }

// FailLink schedules a link failure at absolute virtual time at: both
// ends of i's link go down and packets on the wire are lost (see
// Iface.Fail). Each end flips in its own shard, at the same virtual
// instant, so the call is safe for links that cross shards.
func (s *Sim) FailLink(at int64, i *Iface) { s.scheduleLinkState(at, i, false) }

// RestoreLink schedules the link coming back up at absolute virtual
// time at.
func (s *Sim) RestoreLink(at int64, i *Iface) { s.scheduleLinkState(at, i, true) }

// scheduleLinkState schedules one flip event per link end, each on
// the shard owning that end. The invoked end is scheduled first, so
// its OnStateChange fires first when both ends share a shard —
// preserving the sequential callback order.
func (s *Sim) scheduleLinkState(at int64, i *Iface, up bool) {
	if s.running {
		panic("netsim: FailLink/RestoreLink from inside a sharded run")
	}
	now := s.Now()
	if at < now {
		at = now
	}
	for _, end := range [2]*Iface{i, i.peer} {
		if end == nil {
			continue
		}
		end := end
		s.simK++
		end.Node.shard.heap.push(event{
			at: at, schedAt: now, src: driverSrc, k: s.simK,
			fn: func() { end.setOneEnd(up) },
		})
	}
}

// CrashNode schedules a node crash at absolute virtual time at: the
// node's CPU halts, its receive ring is lost, every attached link
// goes down (both ends, packets on the wire included) and registered
// CrashResettable NF state is reset — counters survive. Like
// FailLink, each affected link end flips in its own shard at the same
// virtual instant, so the call is safe under any engine.
func (s *Sim) CrashNode(at int64, n *Node) { s.scheduleNodeState(at, n, false) }

// RestartNode schedules a crashed node coming back at absolute
// virtual time at: links re-establish and the node resumes with an
// empty receive ring and freshly-reset NF state.
func (s *Sim) RestartNode(at int64, n *Node) { s.scheduleNodeState(at, n, true) }

// scheduleNodeState schedules the crash/restart event on the node's
// shard plus one link-state flip per peer end on the shard owning it.
// The node's own ends flip inside crashNow/restartNow, so their
// OnStateChange callbacks observe the node's post-transition state.
func (s *Sim) scheduleNodeState(at int64, n *Node, up bool) {
	if s.running {
		panic("netsim: CrashNode/RestartNode from inside a sharded run")
	}
	now := s.Now()
	if at < now {
		at = now
	}
	s.simK++
	n.shard.heap.push(event{
		at: at, schedAt: now, src: driverSrc, k: s.simK,
		fn: func() {
			if up {
				n.restartNow()
			} else {
				n.crashNow()
			}
		},
	})
	for _, ifc := range n.ifaces {
		peer := ifc.peer
		if peer == nil {
			continue
		}
		s.simK++
		peer.Node.shard.heap.push(event{
			at: at, schedAt: now, src: driverSrc, k: s.simK,
			fn: func() { peer.setOneEnd(up) },
		})
	}
}

// Millisecond and friends make topology code readable.
const (
	Microsecond int64 = 1_000
	Millisecond int64 = 1_000_000
	Second      int64 = 1_000_000_000
)
