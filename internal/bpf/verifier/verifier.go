// Package verifier statically checks eBPF programs before they are
// allowed to run, mirroring the safety model the paper relies on
// (§2.1: "a verifier first ensures that it cannot threaten the
// stability and security of the kernel").
//
// The checks implemented here match the pre-5.3 kernel the paper
// targets (Linux 4.18):
//
//   - structural: program size limit, valid opcodes, jump targets that
//     land on instruction boundaries, no fall-through past the end,
//     no unreachable instructions;
//   - termination: the control-flow graph must be acyclic (loops are
//     rejected; bounded loops must be unrolled at build time, exactly
//     as contemporary eBPF C did with #pragma unroll);
//   - type safety: path-sensitive tracking of register contents
//     (uninitialised, scalar, pointers to stack/context/packet/map
//     values, map handles), rejecting reads of uninitialised
//     registers, writes to the frame pointer, dereferences of
//     scalars, and stack/context accesses out of bounds;
//   - map-value null checking: the value returned by map_lookup_elem
//     is pointer-or-null and must be compared against zero before it
//     may be dereferenced;
//   - helper discipline: only helpers white-listed for the hook may
//     be called, and argument registers must carry the kinds the
//     helper signature declares.
//
// The VM performs dynamic bounds checks as a second line of defence,
// so the verifier's job is to reject structurally unsafe programs and
// enforce the kernel's programming model rather than to prove every
// access in-range.
package verifier

import (
	"errors"
	"fmt"

	"srv6bpf/internal/bpf/asm"
)

// DefaultMaxInstructions matches the classic 4096-instruction kernel
// limit for unprivileged programs.
const DefaultMaxInstructions = 4096

// maxStatesExplored caps the path-sensitive exploration.
const maxStatesExplored = 65536

// RegKind classifies what a register holds on some execution path.
type RegKind uint8

// Register content kinds.
const (
	KindUninit RegKind = iota
	KindScalar
	KindPtrStack
	KindPtrCtx
	KindPtrPacket
	KindPtrMapValue
	KindMapValueOrNull
	KindMapHandle
)

func (k RegKind) String() string {
	switch k {
	case KindUninit:
		return "uninit"
	case KindScalar:
		return "scalar"
	case KindPtrStack:
		return "fp"
	case KindPtrCtx:
		return "ctx"
	case KindPtrPacket:
		return "pkt"
	case KindPtrMapValue:
		return "map_value"
	case KindMapValueOrNull:
		return "map_value_or_null"
	case KindMapHandle:
		return "map_handle"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

func (k RegKind) isPointer() bool {
	switch k {
	case KindPtrStack, KindPtrCtx, KindPtrPacket, KindPtrMapValue:
		return true
	default:
		return false
	}
}

// ArgKind constrains one helper argument.
type ArgKind uint8

// Helper argument kinds.
const (
	ArgAny       ArgKind = iota // unchecked (but must be initialised)
	ArgScalar                   // plain number
	ArgPtr                      // any dereferenceable pointer
	ArgPtrToMem                 // pointer to stack/map/packet memory
	ArgCtx                      // the context pointer
	ArgMapHandle                // a map reference
)

// RetKind describes a helper's return value.
type RetKind uint8

// Helper return kinds.
const (
	RetScalar RetKind = iota
	RetMapValueOrNull
	RetVoid // returns 0; treated as scalar
)

// HelperSig declares the contract of one helper for verification.
type HelperSig struct {
	Name string
	Args []ArgKind
	Ret  RetKind
}

// Config parameterises verification for a given hook.
type Config struct {
	// MaxInstructions limits program size in wire slots.
	// 0 means DefaultMaxInstructions.
	MaxInstructions int
	// Helpers whitelists callable helpers by ID.
	Helpers map[int32]HelperSig
	// CtxSize is the size of the context structure; context loads and
	// stores must stay within it. 0 forbids context access.
	CtxSize int
	// CtxWritable permits stores through the context pointer.
	CtxWritable bool
	// CtxPointerFields types 8-byte context loads at specific offsets
	// as pointers rather than scalars — how the kernel types
	// __sk_buff's data and data_end fields.
	CtxPointerFields map[int]RegKind
	// StackSize overrides the 512-byte stack bound (tests only).
	StackSize int
}

func (c Config) stackSize() int {
	if c.StackSize != 0 {
		return c.StackSize
	}
	return 512
}

func (c Config) maxInsns() int {
	if c.MaxInstructions != 0 {
		return c.MaxInstructions
	}
	return DefaultMaxInstructions
}

// Error is a verification failure tied to an instruction.
type Error struct {
	PC     int // wire slot index
	Detail string
}

func (e *Error) Error() string {
	return fmt.Sprintf("verifier: pc %d: %s", e.PC, e.Detail)
}

var (
	// ErrLoop is wrapped by errors for back edges in the CFG.
	ErrLoop = errors.New("back-edge (loop) detected")
	// ErrTooLarge is wrapped when the program exceeds the size limit.
	ErrTooLarge = errors.New("program too large")
	// ErrStateExplosion is wrapped when exploration exceeds its budget.
	ErrStateExplosion = errors.New("too many states to explore")
)

func errAt(pc int, format string, args ...any) error {
	return &Error{PC: pc, Detail: fmt.Sprintf(format, args...)}
}

// slotView is the decoded wire image used for verification.
type slotView struct {
	ins asm.Instruction
	pad bool // second half of lddw
}

// Verify checks the assembled program against cfg.
func Verify(insns asm.Instructions, cfg Config) error {
	slots, err := toSlots(insns)
	if err != nil {
		return err
	}
	if len(slots) == 0 {
		return errAt(0, "empty program")
	}
	if len(slots) > cfg.maxInsns() {
		return fmt.Errorf("verifier: %w: %d slots > %d", ErrTooLarge, len(slots), cfg.maxInsns())
	}
	if err := checkStructure(slots); err != nil {
		return err
	}
	if err := checkAcyclic(slots); err != nil {
		return err
	}
	if err := checkReachability(slots); err != nil {
		return err
	}
	return exploreTypes(slots, cfg)
}

func toSlots(insns asm.Instructions) ([]slotView, error) {
	out := make([]slotView, 0, len(insns))
	for i, ins := range insns {
		if ins.Reference != "" {
			return nil, errAt(i, "unresolved reference %q (assemble first)", ins.Reference)
		}
		out = append(out, slotView{ins: ins})
		if ins.OpCode == asm.LoadImm64(0, 0).OpCode {
			out = append(out, slotView{pad: true})
		}
	}
	return out, nil
}

// successors lists the wire slots control may reach from pc.
func successors(slots []slotView, pc int) []int {
	s := slots[pc].ins
	op := s.OpCode
	class := op.Class()
	if !isJumpClass(class) {
		if op == asm.LoadImm64(0, 0).OpCode {
			return []int{pc + 2}
		}
		return []int{pc + 1}
	}
	switch op.JumpOp() {
	case asm.Exit:
		return nil
	case asm.Call:
		return []int{pc + 1}
	case asm.Ja:
		return []int{pc + 1 + int(s.Offset)}
	default:
		return []int{pc + 1, pc + 1 + int(s.Offset)}
	}
}

// checkStructure validates opcodes and jump targets.
func checkStructure(slots []slotView) error {
	for pc := range slots {
		if slots[pc].pad {
			continue
		}
		ins := slots[pc].ins
		op := ins.OpCode
		class := op.Class()
		switch class {
		case asm.ClassALU, asm.ClassALU64:
			switch op.ALUOp() {
			case asm.Add, asm.Sub, asm.Mul, asm.Div, asm.Or, asm.And, asm.LSh,
				asm.RSh, asm.Neg, asm.Mod, asm.Xor, asm.Mov, asm.ArSh:
			case asm.Swap:
				if class != asm.ClassALU {
					return errAt(pc, "byte swap must use the 32-bit ALU class")
				}
				if c := ins.Constant; c != 16 && c != 32 && c != 64 {
					return errAt(pc, "byte swap width %d", c)
				}
			default:
				return errAt(pc, "invalid ALU op %#x", uint8(op.ALUOp()))
			}
			if !ins.Dst.Valid() || !ins.Src.Valid() {
				return errAt(pc, "invalid register")
			}
		case asm.ClassJump, asm.ClassJump32:
			jop := op.JumpOp()
			switch jop {
			case asm.Ja, asm.JEq, asm.JGT, asm.JGE, asm.JSet, asm.JNE, asm.JSGT,
				asm.JSGE, asm.JLT, asm.JLE, asm.JSLT, asm.JSLE:
				target := pc + 1 + int(ins.Offset)
				if target < 0 || target >= len(slots) {
					return errAt(pc, "jump target %d out of range", target)
				}
				if slots[target].pad {
					return errAt(pc, "jump target %d splits an lddw", target)
				}
				if class == asm.ClassJump32 && jop == asm.Ja {
					return errAt(pc, "ja is not valid in the jmp32 class")
				}
			case asm.Call:
				if class != asm.ClassJump {
					return errAt(pc, "call must use the 64-bit jump class")
				}
			case asm.Exit:
				if class != asm.ClassJump {
					return errAt(pc, "exit must use the 64-bit jump class")
				}
			default:
				return errAt(pc, "invalid jump op %#x", uint8(jop))
			}
		case asm.ClassLdX, asm.ClassSt, asm.ClassStX:
			if op.Mode() != asm.ModeMem && !(class == asm.ClassStX && op.Mode() == asm.ModeXadd) {
				return errAt(pc, "unsupported addressing mode %#x", uint8(op.Mode()))
			}
			if op.Mode() == asm.ModeXadd {
				if sz := op.Size(); sz != asm.Word && sz != asm.DWord {
					return errAt(pc, "atomic add requires word or dword size")
				}
			}
			if !ins.Dst.Valid() || !ins.Src.Valid() {
				return errAt(pc, "invalid register")
			}
		case asm.ClassLd:
			if op != asm.LoadImm64(0, 0).OpCode {
				return errAt(pc, "legacy load opcode %#x unsupported", uint8(op))
			}
			if pc+1 >= len(slots) {
				return errAt(pc, "lddw truncated")
			}
		default:
			return errAt(pc, "invalid opcode %#x", uint8(op))
		}
	}
	// The last slot must not fall through.
	last := len(slots) - 1
	for last >= 0 && slots[last].pad {
		last--
	}
	ins := slots[last].ins
	if !(ins.OpCode.Class() == asm.ClassJump && (ins.OpCode.JumpOp() == asm.Exit || ins.OpCode.JumpOp() == asm.Ja)) {
		return errAt(last, "program may fall off the end (last reachable instruction is not exit or ja)")
	}
	return nil
}

// checkAcyclic rejects any cycle in the CFG with an iterative
// three-colour DFS.
func checkAcyclic(slots []slotView) error {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]uint8, len(slots))
	type frame struct {
		pc   int
		next int // successor index to process next
	}
	stack := []frame{{pc: 0}}
	color[0] = grey
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succ := successors(slots, f.pc)
		if f.next >= len(succ) {
			color[f.pc] = black
			stack = stack[:len(stack)-1]
			continue
		}
		next := succ[f.next]
		f.next++
		if next < 0 || next >= len(slots) {
			return errAt(f.pc, "control flows out of the program")
		}
		switch color[next] {
		case grey:
			return fmt.Errorf("verifier: pc %d: %w (to pc %d)", f.pc, ErrLoop, next)
		case white:
			color[next] = grey
			stack = append(stack, frame{pc: next})
		}
	}
	return nil
}

// checkReachability requires every non-pad instruction to be
// reachable from entry, as the kernel does.
func checkReachability(slots []slotView) error {
	seen := make([]bool, len(slots))
	queue := []int{0}
	seen[0] = true
	for len(queue) > 0 {
		pc := queue[0]
		queue = queue[1:]
		if slots[pc].ins.OpCode == asm.LoadImm64(0, 0).OpCode {
			seen[pc+1] = true // pad slot belongs to the lddw
		}
		for _, next := range successors(slots, pc) {
			if next >= 0 && next < len(slots) && !seen[next] {
				seen[next] = true
				queue = append(queue, next)
			}
		}
	}
	for pc, ok := range seen {
		if !ok && !slots[pc].pad {
			return errAt(pc, "unreachable instruction")
		}
	}
	return nil
}
