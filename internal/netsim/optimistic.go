package netsim

// optimistic.go is the Time-Warp style optimistic shard engine. The
// conservative engine (shard.go) lock-steps shards in windows of the
// minimum cross-shard link delay, which collapses when that delay is
// tiny, jittered or zero. The optimistic engine lets every shard
// speculate through a fixed horizon instead and repairs mis-ordered
// history when it is caught out:
//
//   - periodically (every round while speculation thrashes, up to 64
//     rounds apart while it is clean — the checkpoint stride is set
//     by the adaptive controller in horizon.go) each shard with
//     runnable work takes a checkpoint — a value copy of its event
//     heap plus, incrementally, the state of every node dirtied
//     since its last snapshot (receive rings, counters, interface
//     and qdisc state, FIB round-robin cursors, per-node RNG
//     streams, registered ShardState hooks); clean nodes alias the
//     previous checkpoint's immutable snapshot;
//   - shards then execute the window [GVT, GVT+horizon) concurrently
//     (the horizon adapts to the observed rollback rate unless
//     SetHorizon pinned it), buffering cross-shard packets in
//     outboxes exactly like the conservative engine;
//   - at the barrier the coordinator exchanges the buffered messages.
//     A message timestamped before a shard's execution frontier is a
//     straggler: the shard rolls back to its latest checkpoint at or
//     before the straggler, re-delivers the inputs it had received
//     since (kept in a per-shard input log), and cancels every
//     cross-shard message it sent from the rolled-back rounds by
//     emitting anti-messages, which annihilate their positives in the
//     receivers' heaps, logs and snapshots — recursively rolling
//     receivers back when the positive already executed;
//   - GVT (global virtual time), the minimum pending event time once
//     all messages are in heaps, bounds rollback depth: checkpoints
//     and log entries older than the newest checkpoint at or below
//     GVT are discarded.
//
// Because every event carries the deterministic (at, schedAt, src, k)
// key, committed execution replays the sequential schedule exactly:
// the same seed yields bit-identical counters and delivery traces
// whether a topology runs on one heap, conservatively sharded, or
// optimistically sharded (locked by TestShardEquivalence* and the
// randomized TestShardEquivalenceFuzz).

import (
	"fmt"
	"math"
	"sync"

	"srv6bpf/internal/netem"
)

// Engine selects the synchronisation protocol of a sharded run.
type Engine int

const (
	// EngineConservative lock-steps shards in lookahead windows; it
	// requires every cross-shard link to carry a nonzero, jitter-free
	// delay and never executes an event out of order.
	EngineConservative Engine = iota
	// EngineOptimistic speculates past the lookahead and rolls back on
	// stragglers. It accepts any cross-shard link — zero-delay and
	// jittered included — at the cost of checkpointing and occasional
	// re-execution.
	EngineOptimistic
)

func (e Engine) String() string {
	switch e {
	case EngineConservative:
		return "conservative"
	case EngineOptimistic:
		return "optimistic"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// ShardState is implemented by components that keep mutable
// simulation state outside the netsim core — traffic generators,
// network-function control loops, test observers. Registering the
// component with Node.RegisterState makes that state part of the
// owning node's checkpoints, so optimistic rollback rewinds it
// together with the node.
//
// SnapshotState must return a value that shares no mutable memory
// with the component; RestoreState must leave the component exactly
// as it was when the snapshot was taken, and must keep the snapshot
// reusable (one checkpoint can be restored several times).
type ShardState interface {
	SnapshotState() any
	RestoreState(any)
}

// Journal is a rollback-aware append-only record of per-node
// observations (delivery traces, handler logs). Appends from
// speculative events are discarded with the rollback, so the final
// content matches a sequential run under any engine. Append only from
// events executing on the owning node's shard.
type Journal struct {
	lines []string
}

// NewJournal creates a journal bound to n's checkpoint machinery.
func NewJournal(n *Node) *Journal {
	j := &Journal{}
	n.RegisterState(j)
	return j
}

// Addf appends one formatted line.
func (j *Journal) Addf(format string, args ...any) {
	j.lines = append(j.lines, fmt.Sprintf(format, args...))
}

// Add appends one line.
func (j *Journal) Add(line string) { j.lines = append(j.lines, line) }

// Lines returns the committed lines. Read it only while the sim is
// quiescent.
func (j *Journal) Lines() []string { return j.lines }

// SnapshotState implements ShardState (the journal is append-only, so
// its snapshot is just a length).
func (j *Journal) SnapshotState() any { return len(j.lines) }

// RestoreState implements ShardState.
func (j *Journal) RestoreState(s any) { j.lines = j.lines[:s.(int)] }

// randSource is a splitmix64 rand.Source64. Its entire state is one
// word, so node checkpoints capture and restore the stream exactly —
// something math/rand's default source cannot offer.
type randSource struct{ state uint64 }

func (s *randSource) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *randSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *randSource) Seed(seed int64) { s.state = uint64(seed) }

// msgKey is an event's globally unique deterministic identity: the
// same tuple that orders the heap. Anti-messages carry it to name the
// positive they annihilate.
type msgKey struct {
	at, schedAt int64
	src         int32
	k           uint64
}

// inputRec is one cross-shard message this shard received, retained
// (tagged with the barrier it arrived at) so a rollback can
// re-deliver it.
type inputRec struct {
	round uint64
	m     xmsg
}

// sentRec is one delivered cross-shard message this shard sent. A
// rollback moves the records of the undone interval into the
// tentative list: if re-execution reproduces a message identically it
// is suppressed and the original delivery stands (lazy cancellation);
// records the re-execution passes without reproducing — or reproduces
// with different content — become anti-messages.
type sentRec struct {
	dst int
	m   xmsg
}

// ifaceSnap is the checkpointed state of one link end (owned by the
// node's shard) plus its egress qdisc.
type ifaceSnap struct {
	down          bool
	failEpoch     uint64
	txPackets     uint64
	txBytes       uint64
	txDrops       uint64
	downTxDrops   uint64
	inFlightKills uint64
	q             netem.Snapshot
}

// nodeSnap is the checkpointed state of one node. Snapshots are
// immutable once taken: incremental checkpoints alias the previous
// round's nodeSnap for nodes that have not been touched since, so one
// snapshot may back several checkpoints.
type nodeSnap struct {
	schedK     uint64
	rng        uint64
	busy       bool
	crashed    bool
	crashEpoch uint64
	// pending is the node's in-flight packet commit (a value copy
	// sharing the raw bytes, which the pktEra machinery keeps safe): a
	// checkpoint can land between a drain and its continuation, and a
	// rollback must re-apply exactly the commit that was pending. The
	// burst caches are deliberately NOT captured — they are pure, and
	// restore bumps the burst epoch to retire them.
	pending pendingCommit
	rxq     []rxItem
	// cvals holds the counter values in intern order (parallel to
	// Node.counterCells). A flat value copy instead of a map rebuild:
	// the per-checkpoint cost of a counter set is one slice copy.
	cvals  []uint64
	ifaces []ifaceSnap
	rr     []uint64
	hooks  []any
}

// Approximate in-memory sizes for checkpoint-byte accounting (Go
// struct layouts; exactness is not required, stability across rounds
// is).
const (
	eventBytes    = 96  // event value in the heap slice
	rxItemBytes   = 48  // rxItem excluding the packet bytes
	nodeSnapBytes = 176 // nodeSnap header: scalars + pendingCommit + slice headers
	ifaceSnapHdr  = 64  // ifaceSnap excluding the qdisc snapshot
)

// sizeBytes estimates the deep memory footprint of the snapshot.
func (s *nodeSnap) sizeBytes() uint64 {
	b := uint64(nodeSnapBytes)
	b += uint64(len(s.pending.raw))
	for i := range s.rxq {
		b += rxItemBytes + uint64(len(s.rxq[i].raw))
	}
	b += 8 * uint64(len(s.cvals)+len(s.rr))
	for i := range s.ifaces {
		b += ifaceSnapHdr + uint64(s.ifaces[i].q.SizeBytes())
	}
	b += 16 * uint64(len(s.hooks))
	return b
}

// checkpoint is one shard's state at the start of a round: everything
// needed to re-execute speculation from scratch.
type checkpoint struct {
	round uint64
	time  int64 // execution frontier (execTo) when taken
	now   int64 // shard clock when taken
	heap  eventHeap
	nodes []nodeSnap
}

// snapshot captures the node's full mutable state. It runs on the
// node's own shard; everything it reads is shard-owned.
func (n *Node) snapshot() nodeSnap {
	snap := nodeSnap{
		schedK:     n.schedK,
		rng:        n.rngSrc.state,
		busy:       n.busy,
		crashed:    n.crashed,
		crashEpoch: n.crashEpoch,
		pending:    n.pending,
	}
	if n.rxCount > 0 {
		snap.rxq = make([]rxItem, n.rxCount)
		mask := len(n.rxq) - 1
		for i := 0; i < n.rxCount; i++ {
			snap.rxq[i] = n.rxq[(n.rxHead+i)&mask]
		}
	}
	snap.cvals = make([]uint64, len(n.counterCells))
	for i, c := range n.counterCells {
		snap.cvals[i] = *c
	}
	if len(n.ifaces) > 0 {
		snap.ifaces = make([]ifaceSnap, len(n.ifaces))
		for i, ifc := range n.ifaces {
			snap.ifaces[i] = ifaceSnap{
				down:          ifc.down,
				failEpoch:     ifc.failEpoch,
				txPackets:     ifc.TxPackets,
				txBytes:       ifc.TxBytes,
				txDrops:       ifc.TxDrops,
				downTxDrops:   ifc.downTxDrops,
				inFlightKills: ifc.inFlightKills,
				q:             ifc.q.Snapshot(),
			}
		}
	}
	snap.rr = n.routeCounters()
	if len(n.stateHooks) > 0 {
		snap.hooks = make([]any, len(n.stateHooks))
		for i, h := range n.stateHooks {
			snap.hooks[i] = h.s.SnapshotState()
		}
	}
	return snap
}

// restore rewinds the node to snap. The snapshot stays valid for
// further restores.
func (n *Node) restore(snap nodeSnap) {
	n.schedK = snap.schedK
	n.rngSrc.state = snap.rng
	n.busy = snap.busy
	n.crashed = snap.crashed
	n.crashEpoch = snap.crashEpoch
	n.pending = snap.pending
	// Retire the burst caches: rollback can rewind state (FIB
	// round-robin cursors, stateHook registrations) the epoch-gated
	// caches and bind-skips were computed against. The caches are pure
	// so a bump is all it takes — they refill on the next burst.
	n.burstSeq++
	n.burstLeft = 0
	if len(snap.rxq) > len(n.rxq) {
		// Ring capacity must stay a power of two (push/pop index with a
		// mask).
		newCap := 64
		for newCap < len(snap.rxq) {
			newCap *= 2
		}
		n.rxq = make([]rxItem, newCap)
	}
	for i := range n.rxq {
		n.rxq[i] = rxItem{}
	}
	copy(n.rxq, snap.rxq)
	n.rxHead = 0
	n.rxCount = len(snap.rxq)
	for i, c := range n.counterCells {
		if i < len(snap.cvals) {
			*c = snap.cvals[i]
		} else {
			// Interned during speculation; forget it so the committed
			// counter set matches the sequential run. (Interning is
			// append-only, so everything beyond the snapshot's length is
			// newer than the snapshot.)
			delete(n.counters, n.counterNames[i])
		}
	}
	if len(n.counterCells) > len(snap.cvals) {
		n.counterCells = n.counterCells[:len(snap.cvals)]
		n.counterNames = n.counterNames[:len(snap.cvals)]
	}
	for i, ifc := range n.ifaces {
		is := &snap.ifaces[i]
		ifc.down = is.down
		ifc.failEpoch = is.failEpoch
		ifc.TxPackets = is.txPackets
		ifc.TxBytes = is.txBytes
		ifc.TxDrops = is.txDrops
		ifc.downTxDrops = is.downTxDrops
		ifc.inFlightKills = is.inFlightKills
		ifc.q.Restore(is.q)
	}
	n.restoreRouteCounters(snap.rr)
	for i, h := range n.stateHooks {
		if i < len(snap.hooks) {
			h.s.RestoreState(snap.hooks[i])
		} else {
			// Registered during the rolled-back speculation: rewind the
			// component to its pre-registration state and unhook it; a
			// re-executed registration re-adds it.
			h.s.RestoreState(h.reg)
		}
	}
	if len(n.stateHooks) > len(snap.hooks) {
		n.stateHooks = n.stateHooks[:len(snap.hooks)]
	}
}

// routeCounters collects every route's round-robin cursor in
// deterministic table/route order (tableOrder is maintained sorted),
// sized exactly in one allocation.
func (n *Node) routeCounters() []uint64 {
	total := 0
	for _, id := range n.tableOrder {
		total += len(n.tables[id].routes)
	}
	dst := make([]uint64, 0, total)
	for _, id := range n.tableOrder {
		for _, r := range n.tables[id].routes {
			dst = append(dst, r.rrCounter)
		}
	}
	return dst
}

func (n *Node) restoreRouteCounters(vals []uint64) {
	i := 0
	for _, id := range n.tableOrder {
		for _, r := range n.tables[id].routes {
			if i >= len(vals) {
				panic("netsim: FIB routes added during optimistic speculation; install routes before Run, or from driver code between runs")
			}
			r.rrCounter = vals[i]
			i++
		}
	}
}

// takeCheckpoint snapshots the shard at its current frontier. Runs on
// the shard's worker goroutine at the start of a round.
//
// Checkpoints are incremental: only nodes whose dirty bit is set since
// their last fresh snapshot are deep-copied; a clean node's entry
// aliases the previous checkpoint's (immutable) snapshot, so an idle
// region of the shard costs one struct copy per round instead of a
// deep state copy. The first checkpoint after a commit (no retained
// predecessor) snapshots everything, which is what makes driver-time
// and Step-time mutations — which are not dirty-tracked — safe.
func (sh *shard) takeCheckpoint(round uint64) {
	sh.ckptSeq++
	c := &checkpoint{round: round, time: sh.execTo, now: sh.now}
	c.heap = append(eventHeap(nil), sh.heap...)
	c.nodes = make([]nodeSnap, len(sh.nodes))
	var prev *checkpoint
	if len(sh.ckpts) > 0 {
		prev = sh.ckpts[len(sh.ckpts)-1]
	}
	var copied, aliased, bytes uint64
	bytes += eventBytes * uint64(len(c.heap))
	for i, n := range sh.nodes {
		if prev != nil && !n.dirty {
			c.nodes[i] = prev.nodes[i]
			aliased++
			continue
		}
		c.nodes[i] = n.snapshot()
		n.dirty = false
		copied++
		bytes += c.nodes[i].sizeBytes()
	}
	sh.ckpts = append(sh.ckpts, c)
	sh.lastCkptRound = round
	sh.forceCkpt = false
	s := sh.sim
	s.engCkpts.Inc(sh.id)
	s.engCkptCopied.Add(sh.id, copied)
	s.engCkptAliased.Add(sh.id, aliased)
	s.engCkptBytes.Add(sh.id, bytes)
}

// restoreCheckpoint rewinds the shard to c; c stays reusable. Every
// node's live state now equals its checkpointed snapshot, so dirty
// bits clear: the next checkpoint may alias these snapshots again.
func (sh *shard) restoreCheckpoint(c *checkpoint) {
	sh.heap = append(sh.heap[:0], c.heap...)
	for i, n := range sh.nodes {
		n.restore(c.nodes[i])
		n.dirty = false
	}
	sh.execTo = c.time
	sh.now = c.now
}

// removeKey deletes the event with the given key from the heap,
// reporting whether it was present.
func (h *eventHeap) removeKey(key msgKey) bool {
	s := *h
	for i := range s {
		if s[i].at == key.at && s[i].schedAt == key.schedAt &&
			s[i].src == key.src && s[i].k == key.k {
			n := len(s) - 1
			s[i] = s[n]
			s[n] = event{}
			*h = s[:n]
			if i < n {
				h.fix(i)
			}
			return true
		}
	}
	return false
}

// fix restores the heap invariant around index i after its element
// was replaced.
func (h *eventHeap) fix(i int) {
	s := *h
	j := i
	for j > 0 {
		p := (j - 1) / 2
		if !s.less(j, p) {
			break
		}
		s[j], s[p] = s[p], s[j]
		j = p
	}
	if j != i {
		return
	}
	n := len(s)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
}

// pendingMsg is one cross-shard message in flight at a barrier.
type pendingMsg struct {
	src, dst int
	m        xmsg
	dead     bool // cancelled or suppressed before delivery
}

// runOptimistic drives the Time-Warp loop: speculate a round, repair
// at the barrier, trim committed history, repeat. Events with
// at <= limit are executed; speculation never crosses limit, so the
// state visible to the caller on return is fully committed.
func (s *Sim) runOptimistic(limit int64) {
	// Run entry is a commit boundary: everything executed so far is
	// final, exactly like a sequential run that returned to the
	// driver. Frontiers left over from the previous run must not
	// classify newly scheduled work as stragglers — a driver may
	// legitimately schedule events at the committed time (Schedule
	// clamps to now), and over a zero-delay link their deliveries land
	// at that same instant, below a stale execTo with no checkpoint to
	// roll back to. Clamping every frontier to the global pending
	// floor restores the sequential boundary semantics: whatever is
	// pending now executes now, after the committed history.
	if floor := s.minNextAt(); floor != math.MaxInt64 {
		for _, sh := range s.shards {
			if sh.execTo > floor {
				sh.execTo = floor
			}
		}
	}
	var wg sync.WaitGroup
	for {
		gvt := s.minNextAt()
		s.gvt = gvt
		if gvt > limit || gvt == math.MaxInt64 {
			s.commitAll()
			return
		}
		end := gvt + s.horizon
		if end <= gvt { // overflow
			end = math.MaxInt64
		}
		if limit < math.MaxInt64-1 && end > limit+1 {
			end = limit + 1 // include events at exactly limit
		}
		s.round++
		round := s.round
		stride := uint64(1)
		if s.hc != nil {
			stride = s.hc.stride()
		}
		s.running = true
		for _, sh := range s.shards {
			sh := sh
			if len(sh.heap) == 0 || sh.heap[0].at >= end {
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { sh.panicked = recover() }()
				// Checkpoints are periodic, not per-round: while
				// speculation is clean the controller stretches the
				// stride and a straggler simply rolls back through the
				// older checkpoint, re-delivering the inputs logged
				// since. A shard with no retained checkpoint must take
				// one before speculating — there would be nothing to
				// roll back to.
				s.obsDo(sh, func() {
					if len(sh.ckpts) == 0 || sh.forceCkpt || round >= sh.lastCkptRound+stride {
						sh.takeCheckpoint(round)
					}
					sh.runTo(end)
				})
			}()
		}
		wg.Wait()
		s.running = false
		for _, sh := range s.shards {
			if sh.panicked != nil {
				p := sh.panicked
				sh.panicked = nil
				panic(p)
			}
		}
		s.engWindows.Inc(0)
		prevRollbacks, prevAntis := s.rollbacks, s.antiMsgs
		s.exchangeOptimistic()
		if s.onBarrier != nil {
			s.onBarrier(s.minNextAt())
		}
		s.trimCommitted()
		if s.obs != nil {
			s.obs.pushEnginePoint(s, int64(round), s.gvt)
		}
		if s.hc != nil {
			// Feed this barrier's repair cost to the adaptive horizon
			// controller; the next round speculates with its verdict.
			msgs := s.engMsgs.Total()
			s.horizon = s.hc.observe(s.rollbacks-prevRollbacks, s.antiMsgs-prevAntis, msgs-s.hcMsgsSeen)
			s.hcMsgsSeen = msgs
		}
	}
}

// exchangeOptimistic is the barrier: collect every outbox, then
// deliver message by message, rolling destinations back on
// stragglers, suppressing re-emissions that reproduce an earlier
// delivery (lazy cancellation) and annihilating deliveries the
// re-execution disowned, until the system is consistent again. Runs
// single-threaded on the coordinator, so no locks are needed anywhere
// in the repair path.
func (s *Sim) exchangeOptimistic() {
	for si, src := range s.shards {
		for d, msgs := range src.out {
			for i := range msgs {
				s.pending = append(s.pending, pendingMsg{src: si, dst: d, m: msgs[i]})
			}
			src.out[d] = src.out[d][:0]
		}
	}
	i := 0
	for {
		for len(s.antiq) > 0 {
			a := s.antiq[0]
			s.antiq = s.antiq[1:]
			s.annihilate(a)
		}
		if i < len(s.pending) {
			pm := &s.pending[i]
			if pm.dead {
				i++
				continue
			}
			sender := s.shards[pm.src]
			if j := sender.findTentative(pm.m.key()); j >= 0 {
				t := sender.tentative[j]
				sender.tentative = append(sender.tentative[:j], sender.tentative[j+1:]...)
				sender.tentRemoved(t.m.schedAt)
				if t.m.same(&pm.m) {
					// Reproduced identically: the original delivery (and
					// whatever the receiver already did with it) stands.
					sender.sentLog = append(sender.sentLog, t)
					pm.dead = true
					i++
					continue
				}
				// Reproduced with different content: cancel the stale
				// original first, then deliver the new message.
				s.antiq = append(s.antiq, t)
				continue
			}
			dst := s.shards[pm.dst]
			if pm.m.at < dst.execTo {
				// Straggler: the destination speculated past it.
				s.rollbackShard(dst, pm.m.at)
				continue // drain fresh anti-messages, then re-examine pm
			}
			dst.heap.push(pm.m.event())
			dst.inLog = append(dst.inLog, inputRec{round: s.round, m: pm.m})
			sender.sentLog = append(sender.sentLog, sentRec{dst: pm.dst, m: pm.m})
			i++
			continue
		}
		// Every message processed: sweep tentative entries their
		// senders can no longer reproduce — the frontier re-executed
		// past the emission time without matching them, or no event at
		// or below the emission time remains in the sender's heap (the
		// emitter chain itself was annihilated). Those deliveries never
		// happen in the repaired history. Sweeping a send a later
		// fresh execution re-emits after all is sound: the re-emission
		// finds no tentative record and simply delivers anew.
		stale := false
		for _, sh := range s.shards {
			if len(sh.tentative) == 0 {
				continue
			}
			// Skip the scan when no entry can be stale: every emission
			// time is ≥ the cached minimum, so if the frontier has not
			// passed the minimum and the heap still holds an event at
			// or below it, all three staleness conditions fail for
			// every entry.
			if tm := sh.tentMinSchedAt(); sh.execTo <= tm &&
				len(sh.heap) > 0 && sh.heap[0].at <= tm {
				continue
			}
			keep := sh.tentative[:0]
			newMin := int64(math.MaxInt64)
			for _, t := range sh.tentative {
				if t.m.schedAt < sh.execTo || len(sh.heap) == 0 || sh.heap[0].at > t.m.schedAt {
					s.antiq = append(s.antiq, t)
					stale = true
				} else {
					keep = append(keep, t)
					if t.m.schedAt < newMin {
						newMin = t.m.schedAt
					}
				}
			}
			sh.tentative = keep
			sh.tentMin, sh.tentMinStale = newMin, false
		}
		if !stale && len(s.antiq) == 0 {
			break
		}
	}
	s.pending = s.pending[:0]
}

// tentAppend adds one record to the tentative list, keeping the
// cached minimum emission time current.
func (sh *shard) tentAppend(r sentRec) {
	if len(sh.tentative) == 0 {
		sh.tentMin, sh.tentMinStale = r.m.schedAt, false
	} else if !sh.tentMinStale && r.m.schedAt < sh.tentMin {
		sh.tentMin = r.m.schedAt
	}
	sh.tentative = append(sh.tentative, r)
}

// tentRemoved records that an entry with the given emission time left
// the tentative list: if it carried the cached minimum, the cache
// recomputes lazily on the next read.
func (sh *shard) tentRemoved(schedAt int64) {
	if !sh.tentMinStale && schedAt == sh.tentMin {
		sh.tentMinStale = true
	}
}

// tentMinSchedAt returns the minimum emission time across the
// tentative list (MaxInt64 when empty), recomputing the cache only
// when a removal invalidated it.
func (sh *shard) tentMinSchedAt() int64 {
	if len(sh.tentative) == 0 {
		return math.MaxInt64
	}
	if sh.tentMinStale {
		min := int64(math.MaxInt64)
		for i := range sh.tentative {
			if sh.tentative[i].m.schedAt < min {
				min = sh.tentative[i].m.schedAt
			}
		}
		sh.tentMin, sh.tentMinStale = min, false
	}
	return sh.tentMin
}

// findTentative locates a tentative record by message key.
func (sh *shard) findTentative(key msgKey) int {
	for i := range sh.tentative {
		if sh.tentative[i].m.key() == key {
			return i
		}
	}
	return -1
}

// annihilate removes the delivered positive message named by a from
// its destination, wherever it is: queued in the live heap, logged as
// an input, or captured inside retained checkpoint snapshots. If the
// destination already executed it, the destination rolls back first.
func (s *Sim) annihilate(a sentRec) {
	s.antiMsgs++
	key := a.m.key()
	sh := s.shards[a.dst]
	for i := range sh.inLog {
		if sh.inLog[i].m.key() == key {
			sh.inLog = append(sh.inLog[:i], sh.inLog[i+1:]...)
			break
		}
	}
	if key.at < sh.execTo {
		s.rollbackShard(sh, key.at)
	}
	sh.heap.removeKey(key)
	for _, c := range sh.ckpts {
		c.heap.removeKey(key)
	}
	// Cascade: tentative sends the destination emitted while executing
	// the annihilated event can never be reproduced — their emitter
	// just vanished from its heap, so the stale sweep (which watches
	// the execution frontier) would miss them and the GVT floor would
	// lose track of them. Emissions carry their emitter's execution
	// time as schedAt; cancelling every tentative send at that instant
	// over-approximates (a co-timed surviving event re-emits its sends
	// afresh, which the receiver simply re-receives) but is always
	// sound.
	keep := sh.tentative[:0]
	newMin := int64(math.MaxInt64)
	for _, t := range sh.tentative {
		if t.m.schedAt == key.at {
			s.antiq = append(s.antiq, t)
		} else {
			keep = append(keep, t)
			if t.m.schedAt < newMin {
				newMin = t.m.schedAt
			}
		}
	}
	sh.tentative = keep
	sh.tentMin, sh.tentMinStale = newMin, false
}

// rollbackShard rewinds sh to its latest checkpoint at or before t
// and re-delivers the inputs received since. Cross-shard sends from
// the undone interval are not cancelled eagerly: delivered ones move
// to the tentative list (re-execution usually reproduces them and the
// receiver never notices), and still-pending ones die in place.
func (s *Sim) rollbackShard(sh *shard, t int64) {
	if s.obs != nil {
		// Rollback depth = speculated virtual time undone. Runs on the
		// single-threaded coordinator, so the histogram needs no cell.
		s.obs.rollbackDepth.Observe(sh.execTo - t)
	}
	i := len(sh.ckpts) - 1
	for i >= 0 && sh.ckpts[i].time > t {
		i--
	}
	if i < 0 {
		panic(fmt.Sprintf(
			"netsim: optimistic rollback to t=%d below shard %d's oldest retained checkpoint (GVT invariant violated)",
			t, sh.id))
	}
	c := sh.ckpts[i]
	// Newer checkpoints captured invalid speculation; clear the
	// dropped tail so their snapshots and packet buffers free now
	// rather than when the slots are eventually overwritten.
	clear(sh.ckpts[i+1:])
	sh.ckpts = sh.ckpts[:i+1]
	sh.forceCkpt = true // re-anchor before the next speculation round
	sh.restoreCheckpoint(c)
	for _, in := range sh.inLog {
		if in.round >= c.round {
			if in.m.at < c.time {
				panic("netsim: optimistic input log entry below its restored checkpoint")
			}
			sh.heap.push(in.m.event())
		}
	}
	keep := sh.sentLog[:0]
	for _, sr := range sh.sentLog {
		if sr.m.schedAt >= c.time {
			sh.tentAppend(sr)
		} else {
			keep = append(keep, sr)
		}
	}
	sh.sentLog = keep
	for j := range s.pending {
		pm := &s.pending[j]
		if !pm.dead && pm.src == sh.id && pm.m.schedAt >= c.time {
			pm.dead = true
		}
	}
	s.rollbacks++
}

// trimCommitted advances GVT and discards history no rollback can
// reach: everything older than the newest checkpoint at or below GVT.
// GVT is the minimum over pending event times and unacknowledged
// (tentative) send emission times: a tentative send can still turn
// into an anti-message that rolls its receiver back to the send's
// timestamp, so no checkpoint at or below it may be discarded.
func (s *Sim) trimCommitted() {
	gvt := s.minNextAt()
	for _, sh := range s.shards {
		// O(1) per shard: the incrementally maintained tentative
		// minimum replaces the per-entry scan that made every barrier
		// cost O(shards·tentative).
		if m := sh.tentMinSchedAt(); m < gvt {
			gvt = m
		}
	}
	s.gvt = gvt
	for _, sh := range s.shards {
		if len(sh.ckpts) == 0 {
			// Never speculated since the last commit: nothing can roll
			// back, so nothing needs retaining.
			sh.inLog = sh.inLog[:0]
			sh.sentLog = sh.sentLog[:0]
			continue
		}
		cut := 0
		for i, c := range sh.ckpts {
			if c.time <= gvt {
				cut = i
			} else {
				break // checkpoint times are non-decreasing
			}
		}
		if cut == 0 {
			// Rollback floor unchanged: the retention filters below
			// would keep everything, so skip the per-round scan (the
			// logs can hold thousands of entries when the checkpoint
			// stride is stretched).
			continue
		}
		clear(sh.ckpts[:cut]) // release the committed snapshots now
		sh.ckpts = sh.ckpts[cut:]
		floor := sh.ckpts[0]
		inKeep := sh.inLog[:0]
		for _, in := range sh.inLog {
			if in.round >= floor.round {
				inKeep = append(inKeep, in)
			}
		}
		clear(sh.inLog[len(inKeep):])
		sh.inLog = inKeep
		// A send can only join the tentative list if a rollback reaches
		// its emission time; emissions below the oldest retained
		// checkpoint are unreachable, hence committed.
		sentKeep := sh.sentLog[:0]
		for _, sr := range sh.sentLog {
			if sr.m.schedAt >= floor.time {
				sentKeep = append(sentKeep, sr)
			}
		}
		clear(sh.sentLog[len(sentKeep):])
		sh.sentLog = sentKeep
	}
}

// commitAll drops all speculation history; called when the engine
// drains (every event at or below the run limit executed, no pending
// messages) and the whole state is committed. The history slices keep
// their capacity — a driver loop alternating RunUntil and quiescent
// work would otherwise regrow them from scratch every chunk — but
// their elements are cleared so committed packet buffers and
// snapshots are released to the GC.
func (s *Sim) commitAll() {
	for _, sh := range s.shards {
		if len(sh.tentative) != 0 {
			panic("netsim: optimistic engine drained with unacked tentative messages")
		}
		clear(sh.ckpts)
		sh.ckpts = sh.ckpts[:0]
		clear(sh.inLog)
		sh.inLog = sh.inLog[:0]
		clear(sh.sentLog)
		sh.sentLog = sh.sentLog[:0]
	}
	s.pending = s.pending[:0]
	s.antiq = s.antiq[:0]
}
