package asm

// A text assembler: the inverse of Instructions.String. It accepts
// the same listing syntax the disassembler emits, so programs can be
// dumped, edited and re-assembled with the sebpf tool — no Go
// toolchain required to author a network function.
//
// Grammar (one instruction per line; ';' and '//' start comments):
//
//	label:                          ; jump target
//	rD = IMM                        ; mov64 (also: rD = IMM ll)
//	rD = rS                         ; mov64 reg
//	rD += IMM      rD += rS         ; +,-,*,/,%,&,|,^,<<,>>,s>>
//	rD = -rD                        ; neg
//	rD = be16 rD / be32 / be64      ; byte swaps (le16/le32/le64)
//	rD = *(u8 *)(rS + OFF)          ; loads (u8/u16/u32/u64)
//	*(u8 *)(rD + OFF) = rS          ; stores
//	*(u8 *)(rD + OFF) = IMM         ; store immediate
//	lock *(u32 *)(rD + OFF) += rS   ; atomic add (u32/u64)
//	rD = map[NAME]                  ; map pseudo-load
//	call ID                         ; helper call
//	goto LABEL                      ; unconditional jump
//	if rD == IMM goto LABEL         ; ==,!=,<,<=,>,>=,&,s<,s<=,s>,s>=
//	if rD == rS goto LABEL
//	exit

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Text string
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("asm: line %d: %s (in %q)", e.Line, e.Msg, e.Text)
}

// Parse assembles a text listing into instructions. Jump references
// remain symbolic; run Assemble (or load the program) to resolve them.
func Parse(src string) (Instructions, error) {
	var out Instructions
	pendingLabels := []string{}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(msg string) (Instructions, error) {
			return nil, &ParseError{Line: lineNo + 1, Text: strings.TrimSpace(raw), Msg: msg}
		}

		// Leading "N:" listing offsets from the disassembler are noise.
		if i := strings.IndexByte(line, ':'); i >= 0 && isUint(strings.TrimSpace(line[:i])) {
			line = strings.TrimSpace(line[i+1:])
			if line == "" {
				continue
			}
		}

		// Label definition.
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSpace(strings.TrimSuffix(line, ":"))
			if name == "" || strings.ContainsAny(name, " \t") {
				return fail("bad label")
			}
			pendingLabels = append(pendingLabels, name)
			continue
		}

		ins, err := parseInstruction(line)
		if err != nil {
			return fail(err.Error())
		}
		for _, l := range pendingLabels {
			ins = ins.WithSymbol(l) // last wins; duplicates caught below
			if len(pendingLabels) > 1 {
				return fail("multiple labels on one instruction are not supported")
			}
		}
		pendingLabels = pendingLabels[:0]
		out = append(out, ins)
	}
	if len(pendingLabels) > 0 {
		return nil, &ParseError{Line: 0, Text: pendingLabels[0] + ":", Msg: "label at end of program"}
	}
	return out, nil
}

func stripComment(s string) string {
	if i := strings.Index(s, ";"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return s
}

func isUint(s string) bool {
	if s == "" {
		return false
	}
	_, err := strconv.ParseUint(s, 10, 32)
	return err == nil
}

func parseInstruction(line string) (Instruction, error) {
	switch {
	case line == "exit":
		return Return(), nil
	case strings.HasPrefix(line, "call "):
		return parseCall(line)
	case strings.HasPrefix(line, "goto "):
		return mkJump(Ja, 0, 0, false, strings.TrimSpace(line[5:]))
	case strings.HasPrefix(line, "if "):
		return parseCond(line)
	case strings.HasPrefix(line, "lock "):
		return parseAtomic(line)
	case strings.HasPrefix(line, "*("):
		return parseStore(line)
	default:
		return parseALUOrLoad(line)
	}
}

func parseCall(line string) (Instruction, error) {
	arg := strings.TrimSpace(line[5:])
	arg = strings.TrimPrefix(arg, "#")
	id, err := strconv.ParseInt(arg, 0, 32)
	if err != nil {
		return Instruction{}, fmt.Errorf("bad helper id %q", arg)
	}
	return CallHelper(int32(id)), nil
}

var condOps = []struct {
	sym string
	op  JumpOp
}{
	// Longest symbols first so ">=" wins over ">".
	{"s>=", JSGE}, {"s<=", JSLE}, {"s>", JSGT}, {"s<", JSLT},
	{"==", JEq}, {"!=", JNE}, {">=", JGE}, {"<=", JLE},
	{">", JGT}, {"<", JLT}, {"&", JSet},
}

func parseCond(line string) (Instruction, error) {
	// if rD <op> OPERAND goto LABEL
	rest := strings.TrimSpace(line[3:])
	gotoIdx := strings.Index(rest, " goto ")
	if gotoIdx < 0 {
		return Instruction{}, fmt.Errorf("missing goto")
	}
	label := strings.TrimSpace(rest[gotoIdx+6:])
	cond := strings.TrimSpace(rest[:gotoIdx])

	fields := strings.Fields(cond)
	if len(fields) != 3 {
		return Instruction{}, fmt.Errorf("bad condition %q", cond)
	}
	dst, err := parseReg(fields[0])
	if err != nil {
		return Instruction{}, err
	}
	var jop JumpOp
	found := false
	for _, c := range condOps {
		if fields[1] == c.sym {
			jop, found = c.op, true
			break
		}
	}
	if !found {
		return Instruction{}, fmt.Errorf("unknown comparison %q", fields[1])
	}
	if src, err := parseReg(fields[2]); err == nil {
		ins, err := mkJump(jop, dst, 0, false, label)
		ins.OpCode = MkJump(ClassJump, jop, RegSource)
		ins.Src = src
		return ins, err
	}
	imm, err := parseImm32(fields[2])
	if err != nil {
		return Instruction{}, err
	}
	return mkJump(jop, dst, imm, true, label)
}

// mkJump builds a jump towards either a symbolic label or a numeric
// relative target ("+3"/"-2"), as disassembled listings print them.
func mkJump(jop JumpOp, dst Register, imm int32, immSrc bool, target string) (Instruction, error) {
	ins := Instruction{OpCode: MkJump(ClassJump, jop, ImmSource), Dst: dst}
	if immSrc || jop == Ja {
		ins.Constant = int64(imm)
	}
	if strings.HasPrefix(target, "+") || strings.HasPrefix(target, "-") {
		off, err := strconv.ParseInt(target, 10, 16)
		if err != nil {
			return Instruction{}, fmt.Errorf("bad jump target %q", target)
		}
		ins.Offset = int16(off)
		return ins, nil
	}
	ins.Reference = target
	return ins, nil
}

func parseAtomic(line string) (Instruction, error) {
	// lock *(u32 *)(rD + OFF) += rS
	rest := strings.TrimSpace(line[5:])
	size, base, off, rhs, isStore, err := parseMemExpr(rest)
	if err != nil {
		return Instruction{}, err
	}
	if !isStore || !strings.HasPrefix(rhs, "+=") {
		return Instruction{}, fmt.Errorf("atomic form is `lock *(uN *)(rD + OFF) += rS`")
	}
	src, err := parseReg(strings.TrimSpace(strings.TrimPrefix(rhs, "+=")))
	if err != nil {
		return Instruction{}, err
	}
	if size != Word && size != DWord {
		return Instruction{}, fmt.Errorf("atomic add needs u32 or u64")
	}
	return AtomicAdd(base, off, src, size), nil
}

func parseStore(line string) (Instruction, error) {
	size, base, off, rhs, isStore, err := parseMemExpr(line)
	if err != nil {
		return Instruction{}, err
	}
	if !isStore || !strings.HasPrefix(rhs, "=") {
		return Instruction{}, fmt.Errorf("bad store")
	}
	val := strings.TrimSpace(strings.TrimPrefix(rhs, "="))
	if src, err := parseReg(val); err == nil {
		return StoreMem(base, off, src, size), nil
	}
	imm, err := parseImm32(val)
	if err != nil {
		return Instruction{}, err
	}
	return StoreImm(base, off, imm, size), nil
}

// parseMemExpr handles `*(uN *)(rX + OFF)` plus whatever follows.
func parseMemExpr(s string) (size Size, base Register, off int16, rest string, isStore bool, err error) {
	if !strings.HasPrefix(s, "*(") {
		return 0, 0, 0, "", false, fmt.Errorf("expected memory operand")
	}
	closeTy := strings.Index(s, "*)")
	if closeTy < 0 {
		return 0, 0, 0, "", false, fmt.Errorf("bad access type")
	}
	switch strings.TrimSpace(s[2:closeTy]) {
	case "u8", "b":
		size = Byte
	case "u16", "h":
		size = Half
	case "u32", "w":
		size = Word
	case "u64", "dw":
		size = DWord
	default:
		return 0, 0, 0, "", false, fmt.Errorf("bad access width %q", s[2:closeTy])
	}
	s = strings.TrimSpace(s[closeTy+2:])
	if !strings.HasPrefix(s, "(") {
		return 0, 0, 0, "", false, fmt.Errorf("expected (reg + off)")
	}
	closeAddr := strings.Index(s, ")")
	if closeAddr < 0 {
		return 0, 0, 0, "", false, fmt.Errorf("unterminated address")
	}
	addr := s[1:closeAddr]
	rest = strings.TrimSpace(s[closeAddr+1:])

	// rX, rX + N, rX - N (also the disassembler's "rX +N" form).
	addr = strings.ReplaceAll(addr, "+", " + ")
	addr = strings.ReplaceAll(addr, "-", " - ")
	f := strings.Fields(addr)
	if len(f) == 0 {
		return 0, 0, 0, "", false, fmt.Errorf("empty address")
	}
	base, err = parseReg(f[0])
	if err != nil {
		return 0, 0, 0, "", false, err
	}
	switch len(f) {
	case 1:
	case 3:
		n, perr := strconv.ParseInt(f[2], 0, 16)
		if perr != nil {
			return 0, 0, 0, "", false, fmt.Errorf("bad offset %q", f[2])
		}
		if f[1] == "-" {
			n = -n
		}
		off = int16(n)
	default:
		return 0, 0, 0, "", false, fmt.Errorf("bad address %q", addr)
	}
	return size, base, off, rest, rest != "" && (rest[0] == '=' || strings.HasPrefix(rest, "+=")), nil
}

var aluSyms = []struct {
	sym string
	op  ALUOp
}{
	{"s>>=", ArSh}, {"<<=", LSh}, {">>=", RSh},
	{"+=", Add}, {"-=", Sub}, {"*=", Mul}, {"/=", Div},
	{"%=", Mod}, {"&=", And}, {"|=", Or}, {"^=", Xor},
}

func parseALUOrLoad(line string) (Instruction, error) {
	// First token must be a register.
	sp := strings.IndexAny(line, " \t")
	if sp < 0 {
		return Instruction{}, fmt.Errorf("unrecognised instruction")
	}
	dst, err := parseReg(line[:sp])
	if err != nil {
		return Instruction{}, err
	}
	rest := strings.TrimSpace(line[sp:])

	for _, a := range aluSyms {
		if strings.HasPrefix(rest, a.sym) {
			operand := strings.TrimSpace(rest[len(a.sym):])
			if src, rerr := parseReg(operand); rerr == nil {
				return ALU64Reg(a.op, dst, src), nil
			}
			imm, ierr := parseImm32(operand)
			if ierr != nil {
				return Instruction{}, ierr
			}
			return ALU64Imm(a.op, dst, imm), nil
		}
	}

	if !strings.HasPrefix(rest, "=") {
		return Instruction{}, fmt.Errorf("unrecognised instruction")
	}
	rhs := strings.TrimSpace(rest[1:])
	switch {
	case rhs == "-"+line[:sp]:
		return Neg64(dst), nil
	case strings.HasPrefix(rhs, "map["):
		if !strings.HasSuffix(rhs, "]") {
			return Instruction{}, fmt.Errorf("bad map reference")
		}
		return LoadMapPtr(dst, rhs[4:len(rhs)-1]), nil
	case strings.HasPrefix(rhs, "*("):
		size, base, off, tail, _, merr := parseMemExpr(rhs)
		if merr != nil {
			return Instruction{}, merr
		}
		if tail != "" {
			return Instruction{}, fmt.Errorf("trailing %q after load", tail)
		}
		return LoadMem(dst, base, off, size), nil
	case strings.HasPrefix(rhs, "be16 "), strings.HasPrefix(rhs, "be32 "), strings.HasPrefix(rhs, "be64 "):
		bits, _ := strconv.Atoi(rhs[2:4])
		return HostToBE(dst, bits), nil
	case strings.HasPrefix(rhs, "le16 "), strings.HasPrefix(rhs, "le32 "), strings.HasPrefix(rhs, "le64 "):
		bits, _ := strconv.Atoi(rhs[2:4])
		return HostToLE(dst, bits), nil
	}
	if src, rerr := parseReg(rhs); rerr == nil {
		return Mov64Reg(dst, src), nil
	}
	// `rD = IMM` or `rD = IMM ll` (64-bit immediate).
	wide := false
	if strings.HasSuffix(rhs, " ll") {
		wide = true
		rhs = strings.TrimSpace(strings.TrimSuffix(rhs, " ll"))
	}
	v, verr := strconv.ParseInt(rhs, 0, 64)
	if verr != nil {
		// Allow large unsigned hex constants.
		u, uerr := strconv.ParseUint(rhs, 0, 64)
		if uerr != nil {
			return Instruction{}, fmt.Errorf("bad operand %q", rhs)
		}
		v = int64(u)
		wide = true
	}
	if wide || v > 0x7fffffff || v < -0x80000000 {
		return LoadImm64(dst, v), nil
	}
	return Mov64Imm(dst, int32(v)), nil
}

func parseReg(s string) (Register, error) {
	s = strings.TrimSpace(s)
	if s == "rfp" || s == "r10" || s == "fp" {
		return RFP, nil
	}
	if len(s) >= 2 && s[0] == 'r' {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n <= 10 {
			return Register(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm32(s string) (int32, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v > 0xffffffff || v < -0x80000000 {
		return 0, fmt.Errorf("immediate %q exceeds 32 bits", s)
	}
	return int32(v), nil
}
