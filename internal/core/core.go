// Package core implements the paper's contribution: the SRv6 eBPF
// interface of "Leveraging eBPF for programmable network functions
// with IPv6 Segment Routing" (CoNEXT'18), released in Linux 4.18.
//
// Two attachment points are provided, mirroring §3:
//
//   - End.BPF, a seg6local action bound to an eBPF program. It accepts
//     only SRv6 packets whose current segment is the local SID,
//     advances the SRH to the next segment, and runs the program. The
//     program's return value decides further processing: BPF_OK (a
//     regular FIB lookup on the next segment), BPF_DROP, or
//     BPF_REDIRECT (use the destination already set in the packet
//     metadata by a previous bpf_lwt_seg6_action call).
//
//   - The BPF LWT transit hook (lwt_out), which runs a program for
//     every packet matching a route, typically to push SRv6
//     encapsulation with bpf_lwt_push_encap.
//
// Design principles from the paper (§3): (i) eBPF code cannot
// compromise the stability of the kernel — programs get read-only
// packet access and can modify only the SRH's flags, tag and TLVs,
// through checked helpers, with the SRH revalidated after any
// modification; (ii) eBPF code can leverage the full SRv6 data plane
// through bpf_lwt_seg6_action.
package core

import (
	"encoding/binary"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/verifier"
	"srv6bpf/internal/bpf/vm"
)

// Program return codes (Linux UAPI: BPF_OK, BPF_DROP, BPF_REDIRECT).
const (
	BPFOK       = 0
	BPFDrop     = 2
	BPFRedirect = 7
)

// Encap modes for bpf_lwt_push_encap (BPF_LWT_ENCAP_*).
const (
	EncapSeg6       = 0 // outer IPv6 header + SRH
	EncapSeg6Inline = 1 // SRH spliced into the existing packet
)

// Context layout. This is the simulator's __sk_buff analogue: the
// flat structure programs receive in R1. Offsets are part of the
// program ABI.
//
//	off  size  field
//	  0     4  len        packet length in bytes
//	  4     4  protocol   0x86dd (IPv6)
//	  8     4  mark
//	 12     4  hash       flow hash (IPv6 flow label)
//	 16     8  data       pointer to the first byte of the packet
//	 24     8  data_end   pointer one past the last byte
//	 32    32  cb         scratch (zeroed per invocation)
const (
	CtxOffLen      = 0
	CtxOffProtocol = 4
	CtxOffMark     = 8
	CtxOffHash     = 12
	CtxOffData     = 16
	CtxOffDataEnd  = 24
	CtxOffCB       = 32
	CtxSize        = 64
)

// EtherTypeIPv6 is the protocol value in the context.
const EtherTypeIPv6 = 0x86dd

// fillCtx writes the context structure for a packet.
func fillCtx(ctx []byte, pktLen int, flowHash uint32) {
	for i := range ctx {
		ctx[i] = 0
	}
	binary.LittleEndian.PutUint32(ctx[CtxOffLen:], uint32(pktLen))
	binary.LittleEndian.PutUint32(ctx[CtxOffProtocol:], EtherTypeIPv6)
	binary.LittleEndian.PutUint32(ctx[CtxOffHash:], flowHash)
	binary.LittleEndian.PutUint64(ctx[CtxOffData:], vm.Pointer(vm.RegionPacket, 0))
	binary.LittleEndian.PutUint64(ctx[CtxOffDataEnd:], vm.Pointer(vm.RegionPacket, uint64(pktLen)))
}

// Seg6LocalHook returns the hook definition for End.BPF programs:
// generic helpers plus the three SRv6 helpers, the hardware timestamp
// helper (§4.1) and the ECMP nexthop query helper (§4.3).
func Seg6LocalHook() *bpf.Hook {
	sigs := bpf.GenericHelperSigs()
	sigs[bpf.HelperLWTSeg6StoreByte] = verifier.HelperSig{
		Name: "lwt_seg6_store_bytes",
		Args: []verifier.ArgKind{verifier.ArgCtx, verifier.ArgScalar, verifier.ArgPtr, verifier.ArgScalar},
		Ret:  verifier.RetScalar,
	}
	sigs[bpf.HelperLWTSeg6AdjustSRH] = verifier.HelperSig{
		Name: "lwt_seg6_adjust_srh",
		Args: []verifier.ArgKind{verifier.ArgCtx, verifier.ArgScalar, verifier.ArgScalar},
		Ret:  verifier.RetScalar,
	}
	sigs[bpf.HelperLWTSeg6Action] = verifier.HelperSig{
		Name: "lwt_seg6_action",
		Args: []verifier.ArgKind{verifier.ArgCtx, verifier.ArgScalar, verifier.ArgPtr, verifier.ArgScalar},
		Ret:  verifier.RetScalar,
	}
	sigs[bpf.HelperSeg6ECMPNexthops] = verifier.HelperSig{
		Name: "seg6_ecmp_nexthops",
		Args: []verifier.ArgKind{verifier.ArgCtx, verifier.ArgPtr, verifier.ArgPtr, verifier.ArgScalar},
		Ret:  verifier.RetScalar,
	}

	var table vm.HelperTable
	bpf.InstallGenericHelpers(&table, packetBytes)
	table[bpf.HelperLWTSeg6StoreByte] = helperSeg6StoreBytes
	table[bpf.HelperLWTSeg6AdjustSRH] = helperSeg6AdjustSRH
	table[bpf.HelperLWTSeg6Action] = helperSeg6Action
	table[bpf.HelperSeg6ECMPNexthops] = helperSeg6ECMPNexthops
	// For seg6local programs the timestamp helper returns the RX
	// software timestamp — "the time the packet left the NIC driver
	// and entered the kernel" that End.DM reads (§4.1) — not the
	// current clock, which is later by the CPU queueing delay.
	table[bpf.HelperHWTimestamp] = func(m *vm.Machine, _, _, _, _, _ uint64) (uint64, error) {
		e, err := env(m)
		if err != nil {
			return 0, err
		}
		if e.meta != nil {
			return uint64(e.meta.RxTimestamp), nil
		}
		return uint64(e.Now()), nil
	}

	return &bpf.Hook{
		Name: "lwt_seg6local",
		Verifier: verifier.Config{
			CtxSize: CtxSize,
			Helpers: sigs,
			CtxPointerFields: map[int]verifier.RegKind{
				CtxOffData:    verifier.KindPtrPacket,
				CtxOffDataEnd: verifier.KindPtrPacket,
			},
		},
		Helpers: &table,
	}
}

// LWTOutHook returns the hook definition for transit programs:
// generic helpers plus bpf_lwt_push_encap.
func LWTOutHook() *bpf.Hook {
	sigs := bpf.GenericHelperSigs()
	sigs[bpf.HelperLWTPushEncap] = verifier.HelperSig{
		Name: "lwt_push_encap",
		Args: []verifier.ArgKind{verifier.ArgCtx, verifier.ArgScalar, verifier.ArgPtr, verifier.ArgScalar},
		Ret:  verifier.RetScalar,
	}

	var table vm.HelperTable
	bpf.InstallGenericHelpers(&table, packetBytes)
	table[bpf.HelperLWTPushEncap] = helperLWTPushEncap

	return &bpf.Hook{
		Name: "lwt_out",
		Verifier: verifier.Config{
			CtxSize: CtxSize,
			Helpers: sigs,
			CtxPointerFields: map[int]verifier.RegKind{
				CtxOffData:    verifier.KindPtrPacket,
				CtxOffDataEnd: verifier.KindPtrPacket,
			},
		},
		Helpers: &table,
	}
}

// packetBytes lets bpf_skb_load_bytes find the current packet.
func packetBytes(m *vm.Machine) []byte {
	if env, ok := m.HelperContext.(*execEnv); ok {
		return env.pkt
	}
	return nil
}
