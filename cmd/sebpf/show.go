package main

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/core"
	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
)

// progShow implements `sebpf prog show [program] [runs]`: it executes
// each bundled program against its synthetic probe a number of times
// and prints the bpftool-style statistics the attachment layer keeps —
// run_cnt, retired instructions, helper-call histogram, verdict
// breakdown and quarantine state.
func progShow(reg map[string]entry, sel string, runs int) error {
	names := make([]string, 0, len(reg))
	for n := range reg {
		if sel != "" && n != sel {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return fmt.Errorf("unknown program %q (try `sebpf list`)", sel)
	}
	sort.Strings(names)

	for i, name := range names {
		stats, err := execForStats(name, reg[name], runs)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		printProgStats(i, stats)
	}
	return nil
}

// execForStats loads and attaches one bundled program, drives runs
// synthetic probes through it, and returns its statistics.
func execForStats(name string, e entry, runs int) (core.ProgStats, error) {
	src := netip.MustParseAddr("2001:db8:1::1")
	dst := netip.MustParseAddr("2001:db8:2::1")
	sid := netip.MustParseAddr("fc00:10::1")

	sim := netsim.New(1)
	rtr := sim.AddNode("rtr", netsim.ServerCostModel())
	rtr.AddAddress(netip.MustParseAddr("2001:db8:10::1"))
	rIf, _ := netsim.ConnectSymmetric(rtr, sim.AddNode("peer", netsim.HostCostModel()), netem.Config{RateBps: 1e10})
	rtr.AddRoute(&netsim.Route{Prefix: netip.MustParsePrefix("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: rIf}}})

	avail := demoMaps(name)
	prog, err := bpf.LoadProgram(e.spec, e.hook, avail, bpf.LoadOptions{})
	if err != nil {
		return core.ProgStats{}, err
	}

	meta := &netsim.PacketMeta{RxTimestamp: sim.Now()}
	switch e.hook.Name {
	case "lwt_seg6local":
		end, err := core.AttachEndBPF(prog)
		if err != nil {
			return core.ProgStats{}, err
		}
		for i := 0; i < runs; i++ {
			// Programs rewrite the packet in place; each run gets a
			// fresh probe, like distinct packets hitting the SID.
			raw, err := demoPacket(name, src, dst, sid)
			if err != nil {
				return core.ProgStats{}, err
			}
			end.RunSeg6Local(rtr, raw, meta)
		}
		return end.ProgStats(), nil
	case "lwt_out":
		lwt, err := core.AttachLWT(prog)
		if err != nil {
			return core.ProgStats{}, err
		}
		for i := 0; i < runs; i++ {
			raw, err := demoPacket(name, src, dst, sid)
			if err != nil {
				return core.ProgStats{}, err
			}
			lwt.RunLWTOut(rtr, raw, meta)
		}
		return lwt.ProgStats(), nil
	default:
		return core.ProgStats{}, fmt.Errorf("hook %s not runnable", e.hook.Name)
	}
}

// printProgStats renders one attachment in the layout of
// `bpftool prog show` with the kernel's BPF_ENABLE_STATS counters.
func printProgStats(id int, s core.ProgStats) {
	mode := "interpreted"
	if s.JIT {
		mode = "jited"
	}
	quar := ""
	if s.Quarantined {
		quar = "  QUARANTINED"
	}
	fmt.Printf("%d: %s  name %s  %s%s\n", id, s.Hook, s.Name, mode, quar)
	fmt.Printf("\tinsns %d  run_cnt %d  insn_executed %d  mean_insns %.1f  helper_calls %d  faults %d\n",
		s.Insns, s.RunCnt, s.InsnExecuted, s.MeanInsns(), s.HelperCalls, s.Faults)
	if len(s.Helpers) > 0 {
		fmt.Printf("\thelpers:")
		for _, name := range s.HelperNames() {
			fmt.Printf(" %s=%d", name, s.Helpers[name])
		}
		fmt.Println()
	}
	if len(s.Verdicts) > 0 {
		names := make([]string, 0, len(s.Verdicts))
		for n := range s.Verdicts {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Printf("\tverdicts:")
		for _, n := range names {
			fmt.Printf(" %s=%d", n, s.Verdicts[n])
		}
		fmt.Println()
	}
}

// parseRuns reads the optional trailing run-count argument.
func parseRuns(args []string) (string, int, error) {
	sel, runs := "", 10
	for _, a := range args {
		if n, err := strconv.Atoi(a); err == nil {
			if n <= 0 {
				return "", 0, fmt.Errorf("run count must be positive, got %d", n)
			}
			runs = n
			continue
		}
		sel = a
	}
	return sel, runs, nil
}
