package tcpsim

import (
	"fmt"

	"srv6bpf/internal/obs"
)

// PublishObs registers collectors exposing this sender's congestion
// state in reg, labelled by flow. Values are read at Publish time,
// which runs between simulation runs.
func (s *Sender) PublishObs(reg *obs.Registry, flow string) {
	labels := fmt.Sprintf("flow=%q", flow)
	reg.Collect(func(e *obs.Emitter) {
		e.Gauge("srv6sim_tcp_srtt_ns", labels, float64(s.SRTT()))
		e.Gauge("srv6sim_tcp_cwnd_segments", labels, s.Cwnd())
		e.Gauge("srv6sim_tcp_inflight_bytes", labels, float64(s.inflight()))
	})
}

// PublishObs registers a collector exposing this receiver's goodput.
func (r *Receiver) PublishObs(reg *obs.Registry, flow string) {
	labels := fmt.Sprintf("flow=%q", flow)
	reg.Collect(func(e *obs.Emitter) {
		e.Gauge("srv6sim_tcp_goodput_bps", labels, r.GoodputBps())
	})
}
