package experiments

import (
	"fmt"
	"net/netip"

	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/nf/frr"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
)

// The fast-reroute evaluation extends the paper's use cases with the
// follow-up work's scenario ("Flexible failure detection and fast
// reroute using eBPF and SRv6"): a protected link is cut under
// constant load and we measure how long traffic blacks out before the
// eBPF detector flips it onto the precomputed backup segment list —
// as a function of the probe interval — and how many packets die in
// the gap. The netsim-native FIB backup (link-state driven, the
// TI-LFA ideal with oracle detection) is included as the floor.

// FRR lab addresses.
var (
	frrSrc     = netip.MustParseAddr("2001:db8:1::1")
	frrP       = netip.MustParseAddr("2001:db8:10::1")
	frrD       = netip.MustParseAddr("2001:db8:20::1")
	frrB       = netip.MustParseAddr("2001:db8:30::1")
	frrDst     = netip.MustParseAddr("2001:db8:2::1")
	frrNbrSID  = netip.MustParseAddr("fc00:20::ee")
	frrPrim    = netip.MustParseAddr("fc00:20::d6")
	frrDetour  = netip.MustParseAddr("fc00:30::e")
	frrBkDecap = netip.MustParseAddr("fc00:21::d6")
	frrTrack   = netip.MustParseAddr("fc00:10::7a")
	frrProbeTo = netip.MustParseAddr("fc00:f0::1")
)

// FRRRow is one measurement of the recovery experiment.
type FRRRow struct {
	Mode            string  `json:"mode"`              // "eBPF FRR" or "FIB backup"
	ProbeIntervalMs float64 `json:"probe_interval_ms"` // 0 for FIB backup
	Misses          int     `json:"misses"`            // K (0 for FIB backup)
	RecoveryMs      float64 `json:"recovery_ms"`       // failure -> first backup delivery
	BudgetMs        float64 `json:"budget_ms"`         // K x interval + probe RTT
	PacketsLost     int     `json:"packets_lost"`
}

// frrLab is the protection triangle: S - P =(primary)= D - T with a
// detour through B. The primary link carries 100 us of propagation
// delay, so a probe RTT is ~240 us including serialisation slack.
type frrLab struct {
	sim        *netsim.Sim
	s, p, d, b *netsim.Node
	t          *netsim.Node
	pdIf       *netsim.Iface
	pbIf       *netsim.Iface
	psIf       *netsim.Iface
	delivered  []int64
	// firstBackupTx is when the first data packet left P on the
	// backup egress (-1 until it happens). Recovery is measured
	// against deliveries at or after this instant, so a pre-failure
	// packet still in flight on the primary cannot masquerade as a
	// recovered one.
	firstBackupTx int64
}

// frrProbeRTTNs is the budget's RTT term: two crossings of the
// primary link plus scheduling/serialisation slack.
const frrProbeRTTNs = 2 * (100*netsim.Microsecond + 20*netsim.Microsecond)

func newFRRLab(seed int64) *frrLab {
	sim := netsim.New(seed)
	l := &frrLab{
		sim: sim,
		s:   sim.AddNode("S", netsim.HostCostModel()),
		p:   sim.AddNode("P", netsim.ServerCostModel()),
		d:   sim.AddNode("D", netsim.ServerCostModel()),
		b:   sim.AddNode("B", netsim.ServerCostModel()),
		t:   sim.AddNode("T", netsim.HostCostModel()),
	}
	l.s.AddAddress(frrSrc)
	l.p.AddAddress(frrP)
	l.d.AddAddress(frrD)
	l.b.AddAddress(frrB)
	l.t.AddAddress(frrDst)

	edge := netem.Config{RateBps: 1e10, DelayNs: 10 * netsim.Microsecond}
	primary := netem.Config{RateBps: 1e10, DelayNs: 100 * netsim.Microsecond}
	detour := netem.Config{RateBps: 1e10, DelayNs: 60 * netsim.Microsecond}

	sIf, psIf := netsim.ConnectSymmetric(l.s, l.p, edge)
	pdIf, dpIf := netsim.ConnectSymmetric(l.p, l.d, primary)
	pbIf, _ := netsim.ConnectSymmetric(l.p, l.b, detour)
	bdIf, _ := netsim.ConnectSymmetric(l.b, l.d, detour)
	dtIf, tIf := netsim.ConnectSymmetric(l.d, l.t, edge)
	l.pdIf, l.pbIf, l.psIf = pdIf, pbIf, psIf

	l.s.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: sIf}}})
	l.t.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tIf}}})

	l.p.AddRoute(&netsim.Route{Prefix: pfx("fc00:20::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: pdIf}}})
	l.p.AddRoute(&netsim.Route{Prefix: pfx("fc00:30::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: pbIf}}})
	l.p.AddRoute(&netsim.Route{Prefix: pfx("fc00:21::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: pbIf}}})
	l.p.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:1::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: psIf}}})

	l.b.AddRoute(&netsim.Route{
		Prefix:    netip.PrefixFrom(frrDetour, 128),
		Kind:      netsim.RouteSeg6Local,
		Behaviour: &seg6.Behaviour{Action: seg6.ActionEnd},
	})
	l.b.AddRoute(&netsim.Route{Prefix: pfx("fc00:21::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: bdIf}}})

	l.d.AddRoute(&netsim.Route{
		Prefix:    netip.PrefixFrom(frrNbrSID, 128),
		Kind:      netsim.RouteSeg6Local,
		Behaviour: &seg6.Behaviour{Action: seg6.ActionEnd},
	})
	for _, sid := range []netip.Addr{frrPrim, frrBkDecap} {
		l.d.AddRoute(&netsim.Route{
			Prefix:    netip.PrefixFrom(sid, 128),
			Kind:      netsim.RouteSeg6Local,
			Behaviour: &seg6.Behaviour{Action: seg6.ActionEndDT6, Table: netsim.MainTable},
		})
	}
	l.d.AddRoute(&netsim.Route{Prefix: pfx("fc00:10::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: dpIf}}})
	l.d.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:2::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: dtIf}}})

	l.t.HandleUDP(9999, func(n *netsim.Node, p *packet.Packet, meta *netsim.PacketMeta) {
		l.delivered = append(l.delivered, meta.RxTimestamp)
	})
	// Only protected data traffic ever uses the P->B egress (probes
	// are pinned to the primary), so its first transmission marks the
	// moment protection engaged.
	l.firstBackupTx = -1
	l.pbIf.Tap = func([]byte) {
		if l.firstBackupTx < 0 {
			l.firstBackupTx = l.sim.Now()
		}
	}
	return l
}

// offer schedules constant-rate UDP traffic S -> T and returns the
// packet count.
func (l *frrLab) offer(gapNs, untilNs int64) int {
	n := int(untilNs / gapNs)
	for i := 0; i < n; i++ {
		at := int64(i) * gapNs
		l.sim.Schedule(at, func() {
			raw, err := packet.BuildPacket(frrSrc, frrDst,
				packet.WithUDP(5000, 9999),
				packet.WithPayload(make([]byte, 64)))
			if err != nil {
				panic(err)
			}
			l.s.Output(raw)
		})
	}
	return n
}

// results extracts (recovery, lost) once the simulation has fully
// drained, so end-of-window in-flight packets don't count as losses.
// Recovery is the failure-to-first-backup-delivery gap: a delivery
// counts only if it left P on the backup egress (at or after
// firstBackupTx), so pre-failure packets still in flight on the
// primary cannot fake an instant recovery.
func (l *frrLab) results(failAt int64, offered int) (recoveryNs int64, lost int) {
	lost = offered - len(l.delivered)
	if l.firstBackupTx < 0 {
		return -1, lost
	}
	for _, at := range l.delivered {
		if at > failAt && at >= l.firstBackupTx {
			return at - failAt, lost
		}
	}
	return -1, lost
}

// FRRRecovery measures recovery time and loss vs probe interval for
// K=3 misses, plus the link-state FIB backup floor. Traffic runs at
// 50 kpps; the failure is injected just before a probe transmission
// (the phase that realises the K x interval bound).
func FRRRecovery() ([]FRRRow, error) {
	const k = 3
	const gap = 20 * netsim.Microsecond // 50 kpps
	var rows []FRRRow

	for _, intervalMs := range []int64{1, 2, 5, 10} {
		interval := intervalMs * netsim.Millisecond
		l := newFRRLab(100 + intervalMs)

		f, err := frr.New(l.p, frr.Config{
			TrackSID:      frrTrack,
			ProbeInterval: interval,
			Misses:        k,
			JIT:           true,
		})
		if err != nil {
			return nil, err
		}
		if err := f.AddNeighbor(frr.Neighbor{ID: 1, ProbeAddr: frrProbeTo, SID: frrNbrSID, Iface: l.pdIf}); err != nil {
			return nil, err
		}
		if err := f.Protect(frr.Protection{
			Prefix:     pfx("2001:db8:2::/48"),
			NeighborID: 1,
			PrimarySID: frrPrim,
			Backup:     []netip.Addr{frrDetour, frrBkDecap},
		}); err != nil {
			return nil, err
		}
		f.Start()

		// Fail just before the probe tick at 10 intervals; run long
		// enough for detection plus margin.
		failAt := 10*interval - 50*netsim.Microsecond
		until := failAt + int64(k+2)*interval + 5*netsim.Millisecond
		offered := l.offer(gap, until)
		l.sim.FailLink(failAt, l.pdIf)
		l.sim.RunUntil(until)
		f.Stop()
		l.sim.Run()
		recovery, lost := l.results(failAt, offered)

		budget := int64(k)*interval + frrProbeRTTNs
		if recovery < 0 || recovery >= budget {
			return nil, fmt.Errorf("experiments: FRR recovery %.3f ms exceeds budget %.3f ms at interval %d ms",
				float64(recovery)/1e6, float64(budget)/1e6, intervalMs)
		}
		rows = append(rows, FRRRow{
			Mode:            "eBPF FRR",
			ProbeIntervalMs: float64(intervalMs),
			Misses:          k,
			RecoveryMs:      float64(recovery) / 1e6,
			BudgetMs:        float64(budget) / 1e6,
			PacketsLost:     lost,
		})
	}

	// Floor: netsim's FIB backup with oracle (link-state) detection.
	l := newFRRLab(99)
	l.p.AddRoute(&netsim.Route{
		Prefix:   pfx("2001:db8:2::/48"),
		Kind:     netsim.RouteForward,
		Nexthops: []netsim.Nexthop{{Iface: l.pdIf}},
		Backup: &netsim.Backup{
			Nexthops: []netsim.Nexthop{{Iface: l.pbIf}},
			SRH:      packet.NewSRH([]netip.Addr{frrBkDecap}),
		},
	})
	failAt := 10 * netsim.Millisecond
	until := failAt + 10*netsim.Millisecond
	offered := l.offer(gap, until)
	l.sim.FailLink(failAt, l.pdIf)
	l.sim.Run()
	recovery, lost := l.results(failAt, offered)
	rows = append(rows, FRRRow{
		Mode:        "FIB backup",
		RecoveryMs:  float64(recovery) / 1e6,
		BudgetMs:    0,
		PacketsLost: lost,
	})
	return rows, nil
}
