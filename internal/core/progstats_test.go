package core_test

import (
	"net/netip"
	"testing"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/asm"
	"srv6bpf/internal/core"
	"srv6bpf/internal/netsim"
)

// ktimeSpec calls bpf_ktime_get_ns twice and returns BPF_OK, so the
// helper histogram has something to count.
func ktimeSpec() *bpf.ProgramSpec {
	return &bpf.ProgramSpec{
		Name: "ktime_ok",
		Instructions: asm.Instructions{
			asm.CallHelper(bpf.HelperKtimeGetNS),
			asm.CallHelper(bpf.HelperKtimeGetNS),
			asm.Mov64Imm(asm.R0, core.BPFOK),
			asm.Return(),
		},
		License: "GPL",
	}
}

// TestProgStatsCountsRuns: the bpftool-style counters account every
// program execution — run_cnt, retired instructions, helper calls by
// name and the verdict breakdown.
func TestProgStatsCountsRuns(t *testing.T) {
	end := attachEnd(t, ktimeSpec())
	g := newRig(t, nil)
	g.r.AddRoute(&netsim.Route{
		Prefix:    netip.PrefixFrom(sid, 128),
		Kind:      netsim.RouteSeg6Local,
		Behaviour: end.Behaviour(),
	})

	const packets = 5
	for i := 0; i < packets; i++ {
		g.send(t, dstB)
	}

	s := end.ProgStats()
	if s.Name != "ktime_ok" || s.Hook != "lwt_seg6local" {
		t.Errorf("identity = %q/%q", s.Name, s.Hook)
	}
	if s.Insns != 4 {
		t.Errorf("static insns = %d, want 4", s.Insns)
	}
	if s.RunCnt != packets {
		t.Errorf("run_cnt = %d, want %d", s.RunCnt, packets)
	}
	if s.InsnExecuted != packets*4 {
		t.Errorf("insn_executed = %d, want %d", s.InsnExecuted, packets*4)
	}
	if s.HelperCalls != packets*2 {
		t.Errorf("helper_calls = %d, want %d", s.HelperCalls, packets*2)
	}
	if s.Helpers["ktime_get_ns"] != packets*2 {
		t.Errorf("helpers[ktime_get_ns] = %d, want %d", s.Helpers["ktime_get_ns"], packets*2)
	}
	if s.Verdicts["ok"] != packets || len(s.Verdicts) != 1 {
		t.Errorf("verdicts = %v, want ok=%d only", s.Verdicts, packets)
	}
	if s.MeanInsns() != 4 {
		t.Errorf("mean insns = %v, want 4", s.MeanInsns())
	}
	if names := s.HelperNames(); len(names) != 1 || names[0] != "ktime_get_ns" {
		t.Errorf("helper names = %v", names)
	}
}

// TestProgStatsVerdictsAndQuarantine: faulting runs count as "error"
// verdicts, and quarantined drops do not inflate run_cnt — the
// program never executed.
func TestProgStatsVerdictsAndQuarantine(t *testing.T) {
	end := attachEnd(t, wildReadSpec())
	g := newRig(t, nil)
	g.r.AddRoute(&netsim.Route{
		Prefix:    netip.PrefixFrom(sid, 128),
		Kind:      netsim.RouteSeg6Local,
		Behaviour: end.Behaviour(),
	})
	const packets = core.DefaultMaxFaults + 4
	for i := 0; i < packets; i++ {
		g.send(t, dstB)
	}
	s := end.ProgStats()
	if s.RunCnt != core.DefaultMaxFaults {
		t.Errorf("run_cnt = %d, want %d (quarantined drops must not count)",
			s.RunCnt, core.DefaultMaxFaults)
	}
	if s.Verdicts["error"] != core.DefaultMaxFaults {
		t.Errorf("verdicts[error] = %d, want %d", s.Verdicts["error"], core.DefaultMaxFaults)
	}
	if !s.Quarantined || s.Faults != core.DefaultMaxFaults {
		t.Errorf("fault state not reflected: quarantined=%v faults=%d", s.Quarantined, s.Faults)
	}
}

// TestProgStatsRollback: the counters are ShardState — restoring a
// snapshot rewinds speculative runs, keeping committed stats exact
// under the optimistic engine.
func TestProgStatsRollback(t *testing.T) {
	end := attachEnd(t, ktimeSpec())
	g := newRig(t, nil)
	g.r.AddRoute(&netsim.Route{
		Prefix:    netip.PrefixFrom(sid, 128),
		Kind:      netsim.RouteSeg6Local,
		Behaviour: end.Behaviour(),
	})
	g.send(t, dstB)
	st := end.StatsState()
	snap := st.SnapshotState()
	g.send(t, dstB)
	g.send(t, dstB)
	if end.ProgStats().RunCnt != 3 {
		t.Fatalf("setup: run_cnt = %d", end.ProgStats().RunCnt)
	}
	st.RestoreState(snap)
	s := end.ProgStats()
	if s.RunCnt != 1 || s.HelperCalls != 2 || s.Verdicts["ok"] != 1 {
		t.Errorf("restore did not rewind stats: run_cnt=%d helpers=%d verdicts=%v",
			s.RunCnt, s.HelperCalls, s.Verdicts)
	}
}

// TestHelperNameFallback: IDs outside the installed set render as
// helper_<id> instead of being dropped.
func TestHelperNameFallback(t *testing.T) {
	if got := core.HelperName(bpf.HelperLWTSeg6Action); got != "lwt_seg6_action" {
		t.Errorf("HelperName(76) = %q", got)
	}
	if got := core.HelperName(123); got != "helper_123" {
		t.Errorf("HelperName(123) = %q", got)
	}
}
