// ECMP-aware traceroute (§4.3 of the paper): End.OAMP, deployed as an
// End.BPF function, answers probes with the ECMP nexthop set for a
// destination. The example builds a two-stage ECMP fabric, runs the
// enhanced traceroute against a router that publishes the function
// and against one that does not (legacy ICMP fallback), and prints
// both traces.
//
// Run with: go run ./examples/ecmp-traceroute
package main

import (
	"fmt"
	"log"
	"net/netip"

	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/nf/oamp"
)

var (
	proberAddr = netip.MustParseAddr("2001:db8:0::1")
	r1Addr     = netip.MustParseAddr("2001:db8:101::1")
	r2aAddr    = netip.MustParseAddr("2001:db8:102::1")
	r2bAddr    = netip.MustParseAddr("2001:db8:103::1")
	r2cAddr    = netip.MustParseAddr("2001:db8:104::1")
	targetAddr = netip.MustParseAddr("2001:db8:fff::1")

	r1SID  = netip.MustParseAddr("fc00:101::aa")
	r2aSID = netip.MustParseAddr("fc00:102::aa")
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func main() {
	sim := netsim.New(33)
	prober := sim.AddNode("prober", netsim.HostCostModel())
	r1 := sim.AddNode("r1", netsim.ServerCostModel())
	r2a := sim.AddNode("r2a", netsim.ServerCostModel())
	r2b := sim.AddNode("r2b", netsim.ServerCostModel())
	r2c := sim.AddNode("r2c", netsim.ServerCostModel())
	target := sim.AddNode("target", netsim.HostCostModel())

	for n, a := range map[*netsim.Node]netip.Addr{
		prober: proberAddr, r1: r1Addr, r2a: r2aAddr,
		r2b: r2bAddr, r2c: r2cAddr, target: targetAddr,
	} {
		n.AddAddress(a)
	}

	link := netem.Config{RateBps: 10_000_000_000, DelayNs: 200 * netsim.Microsecond}
	pIf, r1pIf := netsim.ConnectSymmetric(prober, r1, link)
	r1a, ar1 := netsim.ConnectSymmetric(r1, r2a, link)
	r1b, br1 := netsim.ConnectSymmetric(r1, r2b, link)
	r1c, cr1 := netsim.ConnectSymmetric(r1, r2c, link)
	at, taIf := netsim.ConnectSymmetric(r2a, target, link)
	bt, tbIf := netsim.ConnectSymmetric(r2b, target, link)
	ct, tcIf := netsim.ConnectSymmetric(r2c, target, link)

	prober.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: pIf}}})
	target.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward,
		Nexthops: []netsim.Nexthop{{Iface: taIf}, {Iface: tbIf}, {Iface: tcIf}}})

	// r1 fans out over three equal-cost paths.
	r1.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:fff::/48"), Kind: netsim.RouteForward,
		Nexthops: []netsim.Nexthop{{Iface: r1a}, {Iface: r1b}, {Iface: r1c}}})
	r1.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:0::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: r1pIf}}})
	// r2a's OAMP SID is reachable through r1 (the IGP would carry it).
	r1.AddRoute(&netsim.Route{Prefix: pfx("fc00:102::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: r1a}}})

	for _, hop := range []struct {
		n        *netsim.Node
		down, up *netsim.Iface
	}{{r2a, at, ar1}, {r2b, bt, br1}, {r2c, ct, cr1}} {
		hop.n.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:fff::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: hop.down}}})
		hop.n.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: hop.up}}})
	}

	// The operator publishes End.OAMP on r1 and r2a only.
	if err := oamp.Deploy(r1, r1SID, true); err != nil {
		log.Fatal(err)
	}
	if err := oamp.Deploy(r2a, r2aSID, true); err != nil {
		log.Fatal(err)
	}
	sids := map[netip.Addr]netip.Addr{r1Addr: r1SID, r2aAddr: r2aSID}

	fmt.Println("ECMP-aware traceroute to", targetAddr)
	fmt.Println("(r1 and r2a publish End.OAMP; r2b/r2c answer with legacy ICMP)")
	fmt.Println()

	for _, fl := range []uint32{1, 2, 5} {
		done := false
		oamp.Trace(prober, targetAddr, oamp.Options{SIDs: sids, FlowLabel: fl},
			func(hops []oamp.Hop) {
				fmt.Printf("flow label %d:\n%s\n", fl, oamp.Format(hops))
				done = true
			})
		sim.RunUntil(sim.Now() + 30*netsim.Second)
		if !done {
			fmt.Println("trace did not finish")
		}
	}
	fmt.Println("End.OAMP reveals the full ECMP fan-out at hop 1 in a single")
	fmt.Println("query; varying the flow label explores the individual paths.")
}
