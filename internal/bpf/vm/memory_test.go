package vm

import (
	"errors"
	"testing"
)

// TestDynamicSegmentFaults exercises the array/slice split of Memory:
// dynamic regions allocated by AddSegment must keep faulting exactly
// like the old map-backed layout — out-of-bounds offsets, reads past
// the last dynamic region, holes between the well-known array and the
// dynamic base, and opaque handle segments.
func TestDynamicSegmentFaults(t *testing.T) {
	mem := NewMemory()
	first := mem.AddSegment(&Segment{Data: make([]byte, 16), Writable: true})
	second := mem.AddSegment(&Segment{Data: make([]byte, 8)})
	handle := mem.AddSegment(&Segment{Object: "opaque"})

	if first != RegionDynamicBase || second != RegionDynamicBase+1 || handle != RegionDynamicBase+2 {
		t.Fatalf("dynamic IDs = %d,%d,%d; want consecutive from %d",
			first, second, handle, RegionDynamicBase)
	}

	assertFault := func(name string, err error) {
		t.Helper()
		var f *Fault
		if !errors.As(err, &f) {
			t.Errorf("%s: want *Fault, got %v", name, err)
		}
	}

	// In-bounds accesses work.
	if err := mem.Store(Pointer(first, 8), 8, 0x1122334455667788); err != nil {
		t.Fatalf("in-bounds store: %v", err)
	}
	if v, err := mem.Load(Pointer(first, 8), 8); err != nil || v != 0x1122334455667788 {
		t.Fatalf("in-bounds load = %#x, %v", v, err)
	}

	// Out of bounds within a dynamic segment.
	if _, err := mem.Load(Pointer(first, 9), 8); err == nil {
		t.Error("load past end of dynamic segment succeeded")
	} else {
		assertFault("oob load", err)
	}
	if _, err := mem.Load(Pointer(second, 8), 1); err == nil {
		t.Error("load at len(Data) succeeded")
	} else {
		assertFault("oob at len", err)
	}

	// Offsets that wrap the 48-bit offset space must not panic or leak.
	if _, err := mem.Load(Pointer(first, (1<<48)-4), 8); err == nil {
		t.Error("load near offset-space end succeeded")
	}

	// Write to a read-only dynamic segment.
	if err := mem.Store(Pointer(second, 0), 1, 1); err == nil {
		t.Error("store to read-only dynamic segment succeeded")
	} else {
		var f *Fault
		if !errors.As(err, &f) || !f.Write {
			t.Errorf("want write fault, got %v", err)
		}
	}

	// Region past the last dynamic segment.
	if _, err := mem.Load(Pointer(handle+1, 0), 1); err == nil {
		t.Error("load from nonexistent dynamic region succeeded")
	} else {
		assertFault("no such region", err)
	}

	// Well-known regions that were never installed.
	if _, err := mem.Load(Pointer(RegionPacket, 0), 1); err == nil {
		t.Error("load from uninstalled well-known region succeeded")
	}

	// A region in the gap between well-known and dynamic base.
	if _, err := mem.Load(Pointer(RegionDynamicBase-1, 0), 1); err == nil {
		t.Error("load from gap region succeeded")
	}

	// Opaque handle segments cannot be dereferenced.
	if _, err := mem.Load(Pointer(handle, 0), 1); err == nil {
		t.Error("load through opaque handle succeeded")
	} else {
		assertFault("opaque handle", err)
	}

	// Segment() agrees with the access paths.
	if mem.Segment(first) == nil || mem.Segment(handle) == nil {
		t.Error("Segment() lost an installed dynamic region")
	}
	if mem.Segment(handle+1) != nil || mem.Segment(RegionDynamicBase-1) != nil {
		t.Error("Segment() invented a region")
	}
	if mem.Segment(RegionScalar) != nil {
		t.Error("Segment(RegionScalar) is not nil")
	}
}

// TestSegmentDataRebind verifies the per-packet fast path: rebinding
// an installed segment's Data in place changes what programs see
// without reinstalling the segment.
func TestSegmentDataRebind(t *testing.T) {
	mem := NewMemory()
	seg := &Segment{Data: []byte{1, 2, 3, 4}}
	mem.SetSegment(RegionPacket, seg)

	if v, err := mem.Load(Pointer(RegionPacket, 0), 1); err != nil || v != 1 {
		t.Fatalf("initial load = %d, %v", v, err)
	}

	seg.Data = []byte{9, 8}
	if v, err := mem.Load(Pointer(RegionPacket, 0), 1); err != nil || v != 9 {
		t.Fatalf("rebound load = %d, %v", v, err)
	}
	// The old length no longer applies.
	if _, err := mem.Load(Pointer(RegionPacket, 2), 1); err == nil {
		t.Error("load past rebound Data succeeded")
	}
}

// TestSetSegmentRange documents that SetSegment is reserved for the
// well-known array; dynamic IDs must come from AddSegment.
func TestSetSegmentRange(t *testing.T) {
	mem := NewMemory()
	for _, id := range []RegionID{RegionScalar, RegionDynamicBase, RegionDynamicBase + 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetSegment(%d) did not panic", id)
				}
			}()
			mem.SetSegment(id, &Segment{Data: make([]byte, 1)})
		}()
	}
}
