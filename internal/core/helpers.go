package core

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/vm"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
)

// env extracts the execution environment, failing the program run on
// misuse (a harness bug, not a program bug).
func env(m *vm.Machine) (*execEnv, error) {
	e, ok := m.HelperContext.(*execEnv)
	if !ok {
		return nil, fmt.Errorf("core: helper context is %T, not *execEnv", m.HelperContext)
	}
	return e, nil
}

// helperSeg6StoreBytes implements bpf_lwt_seg6_store_bytes: an
// indirect write into the SRH limited to the flags, tag and TLV
// fields (§3.1). Violations return -EPERM to the program; the packet
// is untouched.
func helperSeg6StoreBytes(m *vm.Machine, r1, r2, r3, r4, _ uint64) (uint64, error) {
	e, err := env(m)
	if err != nil {
		return 0, err
	}
	off, n := int(int64(r2)), int(int64(r4))
	if n <= 0 || n > packet.IPv6HeaderLen+4096 {
		return bpf.Errno(bpf.EINVAL), nil
	}
	if err := e.checkWritable(off, n); err != nil {
		return bpf.Errno(bpf.EINVAL), nil
	}
	data, err := m.Mem.Bytes(r3, n)
	if err != nil {
		return 0, err // invalid program memory: abort the program
	}
	copy(e.pkt[off:off+n], data)
	e.srhModified = true
	return 0, nil
}

// helperSeg6AdjustSRH implements bpf_lwt_seg6_adjust_srh: grow or
// shrink the TLV area by delta bytes at offset. The SRH length field
// and the IPv6 payload length are maintained here, as the kernel
// does; the program must then fill grown space with valid TLVs or the
// post-run validation drops the packet.
func helperSeg6AdjustSRH(m *vm.Machine, r1, r2, r3, _, _ uint64) (uint64, error) {
	e, err := env(m)
	if err != nil {
		return 0, err
	}
	off := int(int64(r2))
	delta := int(int32(uint32(r3)))
	if delta == 0 {
		return 0, nil
	}
	if delta%8 != 0 {
		// The SRH length is counted in 8-byte units.
		return bpf.Errno(bpf.EINVAL), nil
	}
	start, end, err := e.srhBounds()
	if err != nil {
		return bpf.Errno(bpf.EINVAL), nil
	}
	tlv, err := e.tlvAreaStart()
	if err != nil {
		return bpf.Errno(bpf.EINVAL), nil
	}
	if off < tlv || off > end {
		return bpf.Errno(bpf.EINVAL), nil
	}
	hdrLen := int(e.pkt[start+packet.SRHOffHdrExtLen])
	newHdrLen := hdrLen + delta/8
	if newHdrLen < 0 || newHdrLen > 255 {
		return bpf.Errno(bpf.EINVAL), nil
	}

	var out []byte
	if delta > 0 {
		out = make([]byte, 0, len(e.pkt)+delta)
		out = append(out, e.pkt[:off]...)
		out = append(out, make([]byte, delta)...)
		out = append(out, e.pkt[off:]...)
	} else {
		if off-delta > end {
			return bpf.Errno(bpf.EINVAL), nil
		}
		out = make([]byte, 0, len(e.pkt)+delta)
		out = append(out, e.pkt[:off]...)
		out = append(out, e.pkt[off-delta:]...)
	}
	out[start+packet.SRHOffHdrExtLen] = uint8(newHdrLen)
	if err := packet.SetIPv6PayloadLen(out, len(out)-packet.IPv6HeaderLen); err != nil {
		return bpf.Errno(bpf.EINVAL), nil
	}
	e.srhModified = true
	if err := e.setPacket(out); err != nil {
		return 0, err
	}
	return 0, nil
}

// helperSeg6Action implements bpf_lwt_seg6_action: apply a static
// SRv6 behaviour from inside the program (§3.1: End.X, End.T, End.B6,
// End.B6.Encaps, End.DT6). Behaviours that decide the next hop store
// their result as the pending redirect; the program should return
// BPF_REDIRECT so the default lookup does not overwrite it.
func helperSeg6Action(m *vm.Machine, r1, r2, r3, r4, _ uint64) (uint64, error) {
	e, err := env(m)
	if err != nil {
		return 0, err
	}
	action := seg6.Action(r2)
	plen := int(int64(r4))
	if plen < 0 || plen > 4096 {
		return bpf.Errno(bpf.EINVAL), nil
	}
	param, err := m.Mem.Bytes(r3, plen)
	if err != nil {
		return 0, err
	}

	switch action {
	case seg6.ActionEndX:
		if plen != 16 {
			return bpf.Errno(bpf.EINVAL), nil
		}
		nh := netip.AddrFrom16([16]byte(param))
		e.pending = &seg6.Result{Verdict: seg6.VerdictForwardNexthop, Nexthop: nh}
		return 0, nil

	case seg6.ActionEndT:
		if plen != 4 {
			return bpf.Errno(bpf.EINVAL), nil
		}
		table := int(binary.LittleEndian.Uint32(param))
		e.pending = &seg6.Result{Verdict: seg6.VerdictForwardTable, Table: table}
		return 0, nil

	case seg6.ActionEndB6:
		srh, n, err := packet.DecodeSRH(param)
		if err != nil || n != plen {
			return bpf.Errno(bpf.EINVAL), nil
		}
		out, err := seg6.InsertSRH(e.pkt, &srh)
		if err != nil {
			return bpf.Errno(bpf.EINVAL), nil
		}
		if err := e.setPacket(out); err != nil {
			return 0, err
		}
		e.pending = &seg6.Result{Verdict: seg6.VerdictForward}
		return 0, nil

	case seg6.ActionEndB6Encap:
		srh, n, err := packet.DecodeSRH(param)
		if err != nil || n != plen {
			return bpf.Errno(bpf.EINVAL), nil
		}
		// The SRH was already advanced by End.BPF; encapsulate the
		// updated packet.
		out, err := seg6.Encap(e.pkt, e.node.PrimaryAddress(), &srh)
		if err != nil {
			return bpf.Errno(bpf.EINVAL), nil
		}
		if err := e.setPacket(out); err != nil {
			return 0, err
		}
		e.pending = &seg6.Result{Verdict: seg6.VerdictForward}
		return 0, nil

	case seg6.ActionEndDT6:
		if plen != 4 {
			return bpf.Errno(bpf.EINVAL), nil
		}
		table := int(binary.LittleEndian.Uint32(param))
		inner, err := seg6.DecapInner(e.pkt)
		if err != nil {
			return bpf.Errno(bpf.EINVAL), nil
		}
		if err := e.setPacket(inner); err != nil {
			return 0, err
		}
		e.pending = &seg6.Result{Verdict: seg6.VerdictForwardTable, Table: table}
		return 0, nil

	default:
		return bpf.Errno(bpf.EINVAL), nil
	}
}

// helperLWTPushEncap implements bpf_lwt_push_encap for the transit
// hook: the program builds an SRH in its own memory and the helper
// encapsulates (or inlines) it onto the packet.
func helperLWTPushEncap(m *vm.Machine, r1, r2, r3, r4, _ uint64) (uint64, error) {
	e, err := env(m)
	if err != nil {
		return 0, err
	}
	mode := uint32(r2)
	n := int(int64(r4))
	if n <= 0 || n > 4096 {
		return bpf.Errno(bpf.EINVAL), nil
	}
	hdr, err := m.Mem.Bytes(r3, n)
	if err != nil {
		return 0, err
	}
	srh, decoded, err := packet.DecodeSRH(hdr)
	if err != nil || decoded != n {
		return bpf.Errno(bpf.EINVAL), nil
	}

	var out []byte
	switch mode {
	case EncapSeg6:
		out, err = seg6.Encap(e.pkt, e.node.PrimaryAddress(), &srh)
	case EncapSeg6Inline:
		out, err = seg6.InsertSRH(e.pkt, &srh)
	default:
		return bpf.Errno(bpf.EINVAL), nil
	}
	if err != nil {
		return bpf.Errno(bpf.EINVAL), nil
	}
	if err := e.setPacket(out); err != nil {
		return 0, err
	}
	return 0, nil
}

// helperSeg6ECMPNexthops implements the custom helper of §4.3: query
// the FIB for the ECMP nexthops of a destination address ("our custom
// helper returning the ECMP nexthops for a given address required
// only 50 SLOC in the kernel"). r2 points at the 16-byte destination,
// r3/r4 at an output buffer; the return value is the nexthop count.
func helperSeg6ECMPNexthops(m *vm.Machine, r1, r2, r3, r4, _ uint64) (uint64, error) {
	e, err := env(m)
	if err != nil {
		return 0, err
	}
	daddr, err := m.Mem.Bytes(r2, 16)
	if err != nil {
		return 0, err
	}
	outLen := int(int64(r4))
	if outLen < 16 {
		return bpf.Errno(bpf.EINVAL), nil
	}
	max := outLen / 16
	nhs := e.resolveECMPNexthops(netip.AddrFrom16([16]byte(daddr)), max)
	buf := make([]byte, 16*len(nhs))
	for i, nh := range nhs {
		a := nh.As16()
		copy(buf[16*i:], a[:])
	}
	if len(buf) > 0 {
		if err := m.Mem.WriteBytes(r3, buf); err != nil {
			return 0, err
		}
	}
	return uint64(len(nhs)), nil
}

// Compile-time assertion that execEnv satisfies the generic helper
// environment.
var _ bpf.ExecContext = (*execEnv)(nil)

// Compile-time assertions for the attachment interfaces.
var (
	_ netsim.Seg6LocalProgram = (*EndBPF)(nil)
	_ netsim.LWTProgram       = (*LWT)(nil)
)
