package tcpsim

import (
	"fmt"
	"net/netip"
	"testing"

	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
)

var (
	sndAddr = netip.MustParseAddr("2001:db8:1::1")
	rcvAddr = netip.MustParseAddr("2001:db8:2::1")
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// pipeTopo builds sender --- receiver over one configurable link.
func pipeTopo(cfg netem.Config) (*netsim.Sim, *netsim.Node, *netsim.Node) {
	return pipeTopoSeed(cfg, 42)
}

func pipeTopoSeed(cfg netem.Config, seed int64) (*netsim.Sim, *netsim.Node, *netsim.Node) {
	s := netsim.New(seed)
	a := s.AddNode("snd", netsim.HostCostModel())
	b := s.AddNode("rcv", netsim.HostCostModel())
	a.AddAddress(sndAddr)
	b.AddAddress(rcvAddr)
	aIf, bIf := netsim.ConnectSymmetric(a, b, cfg)
	a.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: aIf}}})
	b.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: bIf}}})
	return s, a, b
}

func runTransfer(t *testing.T, link netem.Config, duration int64) (*Sender, *Receiver) {
	return runTransferSeed(t, link, duration, 42)
}

func runTransferSeed(t *testing.T, link netem.Config, duration int64, seed int64) (*Sender, *Receiver) {
	t.Helper()
	sim, a, b := pipeTopoSeed(link, seed)
	snd, rcv, err := NewTransfer(NewStack(a), NewStack(b), sndAddr, rcvAddr, 40000, 5001, Config{})
	if err != nil {
		t.Fatal(err)
	}
	snd.Start()
	sim.RunUntil(duration)
	snd.Stop()
	sim.RunUntil(duration + netsim.Second)
	return snd, rcv
}

func TestBulkTransferSaturatesLink(t *testing.T) {
	// 50 Mbps, 10 ms one-way: TCP should reach ≥85% of line rate.
	link := netem.Config{RateBps: 50_000_000, DelayNs: 10 * netsim.Millisecond}
	snd, rcv := runTransfer(t, link, 10*netsim.Second)
	got := rcv.GoodputBps()
	if got < 0.85*50e6 {
		t.Fatalf("goodput = %.1f Mbps, want ≥42.5 (sent=%d rtx=%d to=%d)",
			got/1e6, snd.SegmentsSent, snd.Retransmits, snd.Timeouts)
	}
	if got > 50e6 {
		t.Fatalf("goodput %.1f Mbps exceeds link rate", got/1e6)
	}
}

func TestInOrderPathNoSpuriousRecovery(t *testing.T) {
	link := netem.Config{RateBps: 30_000_000, DelayNs: 5 * netsim.Millisecond, QueueLimit: 2000}
	snd, rcv := runTransfer(t, link, 5*netsim.Second)
	if rcv.OutOfOrderSegs != 0 {
		t.Errorf("out-of-order segments on a FIFO path: %d", rcv.OutOfOrderSegs)
	}
	// Queue-overflow losses can trigger genuine recoveries; with a
	// deep queue there should be none.
	if snd.FastRecoveries > 2 {
		t.Errorf("unexpected fast recoveries: %d", snd.FastRecoveries)
	}
}

func TestLossRecovery(t *testing.T) {
	// 1% random loss: the transfer must survive and make progress.
	// The seed picks a representative loss pattern: loss draws come
	// from the sender node's private stream (they used to come from a
	// sim-wide one), and patterns whose losses cluster inside the
	// first RTO leave Reno in backoff for most of the window — real
	// behaviour, but not what this test is probing.
	link := netem.Config{RateBps: 20_000_000, DelayNs: 5 * netsim.Millisecond, Loss: 0.01}
	snd, rcv := runTransferSeed(t, link, 10*netsim.Second, 46)
	if rcv.GoodputBytes == 0 {
		t.Fatal("no progress under loss")
	}
	if snd.Retransmits == 0 {
		t.Error("loss but no retransmissions?")
	}
	// Reno under 1% loss at this BDP lands well under line rate but
	// should still achieve several Mbps.
	if got := rcv.GoodputBps(); got < 2e6 {
		t.Errorf("goodput %.2f Mbps under 1%% loss", got/1e6)
	}
}

func TestRTTEstimate(t *testing.T) {
	link := netem.Config{RateBps: 50_000_000, DelayNs: 15 * netsim.Millisecond}
	snd, _ := runTransfer(t, link, 3*netsim.Second)
	// RTT = 30 ms + queueing; SRTT must be in a sane band.
	if snd.SRTT() < 30*netsim.Millisecond || snd.SRTT() > 300*netsim.Millisecond {
		t.Errorf("srtt = %.1f ms", float64(snd.SRTT())/1e6)
	}
}

func TestSlowStartGrowth(t *testing.T) {
	link := netem.Config{RateBps: 100_000_000, DelayNs: 20 * netsim.Millisecond, QueueLimit: 4000}
	sim, a, b := pipeTopo(link)
	snd, _, err := NewTransfer(NewStack(a), NewStack(b), sndAddr, rcvAddr, 40000, 5001, Config{})
	if err != nil {
		t.Fatal(err)
	}
	start := snd.Cwnd()
	snd.Start()
	sim.RunUntil(500 * netsim.Millisecond)
	if snd.Cwnd() <= start*4 {
		t.Errorf("cwnd grew %0.f -> %.0f in 500ms; slow start broken?", start, snd.Cwnd())
	}
	snd.Stop()
}

func TestDuplicatePortRejected(t *testing.T) {
	sim, a, b := pipeTopo(netem.Config{RateBps: 1e9})
	_ = sim
	sa, sb := NewStack(a), NewStack(b)
	if _, _, err := NewTransfer(sa, sb, sndAddr, rcvAddr, 1, 2, Config{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewTransfer(sa, sb, sndAddr, rcvAddr, 1, 3, Config{}); err == nil {
		t.Fatal("duplicate sender port accepted")
	}
	if _, _, err := NewTransfer(sa, sb, sndAddr, rcvAddr, 4, 2, Config{}); err == nil {
		t.Fatal("duplicate receiver port accepted")
	}
}

// TestReorderingCollapse is the core §4.2 dynamic in isolation: the
// same aggregate capacity delivered over two same-speed paths with
// a large delay skew collapses Reno throughput.
func TestReorderingCollapse(t *testing.T) {
	s := netsim.New(7)
	a := s.AddNode("snd", netsim.HostCostModel())
	r := s.AddNode("mid", netsim.HostCostModel())
	b := s.AddNode("rcv", netsim.HostCostModel())
	a.AddAddress(sndAddr)
	b.AddAddress(rcvAddr)

	// Two 25 Mbps paths with 15 ms vs 2.5 ms one-way delay; the
	// middle node stripes packets across them round-robin by hand
	// (the full BPF WRR version lives in nf/hybrid).
	aIf, raIf := netsim.ConnectSymmetric(a, r, netem.Config{RateBps: 1e9})
	slow, _ := netsim.Connect(r, b, netem.Config{RateBps: 25_000_000, DelayNs: 15 * netsim.Millisecond},
		netem.Config{RateBps: 1e9})
	fast, bIf := netsim.Connect(r, b, netem.Config{RateBps: 25_000_000, DelayNs: 2_500_000},
		netem.Config{RateBps: 1e9})

	a.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: aIf}}})
	b.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: bIf}}})
	r.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:1::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: raIf}}})

	// Per-packet round-robin striping across the two paths — the
	// naive load balancing that makes the delay skew visible to TCP.
	r.AddRoute(&netsim.Route{
		Prefix:      pfx("2001:db8:2::/48"),
		Kind:        netsim.RouteForward,
		Nexthops:    []netsim.Nexthop{{Iface: slow}, {Iface: fast}},
		PerPacketRR: true,
	})

	snd, rcv, err := NewTransfer(NewStack(a), NewStack(b), sndAddr, rcvAddr, 40000, 5001, Config{})
	if err != nil {
		t.Fatal(err)
	}
	snd.Start()
	s.RunUntil(10 * netsim.Second)
	snd.Stop()
	s.RunUntil(11 * netsim.Second)

	got := rcv.GoodputBps()
	if got > 15e6 {
		t.Errorf("goodput %.1f Mbps despite heavy reordering; expected collapse well below aggregate 50 Mbps", got/1e6)
	}
	if rcv.OutOfOrderSegs == 0 {
		t.Error("no reordering observed; test is not exercising the collapse")
	}
	if snd.FastRecoveries == 0 {
		t.Error("no spurious fast recoveries under reordering")
	}
}

// TestShardStateRoundTrip locks the ShardState surface: sender,
// receiver and stack snapshots must restore the exact transfer state
// and stay reusable across further mutation (the optimistic engine
// restores one checkpoint several times under repeated stragglers).
func TestShardStateRoundTrip(t *testing.T) {
	link := netem.Config{RateBps: 50_000_000, DelayNs: 5 * netsim.Millisecond, Loss: 0.02}
	sim, a, b := pipeTopo(link)
	sa, sb := NewStack(a), NewStack(b)
	snd, rcv, err := NewTransfer(sa, sb, sndAddr, rcvAddr, 40000, 5001, Config{})
	if err != nil {
		t.Fatal(err)
	}
	snd.Start()
	sim.RunUntil(2 * netsim.Second)

	fingerprint := func() string {
		return fmt.Sprintf("snd{nxt=%d una=%d cwnd=%.1f ss=%.1f rto=%d sent=%d rtx=%d fr=%d to=%d times=%d} rcv{nxt=%d good=%d ooo=%d dup=%d oooq=%d}",
			snd.sndNxt, snd.sndUna, snd.cwnd, snd.ssthresh, snd.rto,
			snd.SegmentsSent, snd.Retransmits, snd.FastRecoveries, snd.Timeouts, len(snd.sendTimes),
			rcv.rcvNxt, rcv.GoodputBytes, rcv.OutOfOrderSegs, rcv.DupSegs, len(rcv.ooo))
	}
	sndSnap, rcvSnap, stackSnap := snd.SnapshotState(), rcv.SnapshotState(), sa.SnapshotState()
	want := fingerprint()

	// Mutate heavily, then rewind.
	sim.RunUntil(4 * netsim.Second)
	if fingerprint() == want {
		t.Fatal("transfer state did not change; round-trip test is vacuous")
	}
	snd.RestoreState(sndSnap)
	rcv.RestoreState(rcvSnap)
	sa.RestoreState(stackSnap)
	if got := fingerprint(); got != want {
		t.Fatalf("state did not round-trip:\n  want %s\n  got  %s", want, got)
	}
	// The snapshot must survive a second restore after more mutation.
	sim.RunUntil(6 * netsim.Second)
	snd.RestoreState(sndSnap)
	rcv.RestoreState(rcvSnap)
	if got := fingerprint(); got != want {
		t.Fatalf("snapshot not reusable:\n  want %s\n  got  %s", want, got)
	}
}

// TestOptimisticTransferEquivalence runs the same bulk transfer
// sequentially and under the optimistic 2-shard engine — the
// sender/receiver pair split across shards, a configuration the
// conservative engine also supports (nonzero delay) but that forces
// the optimistic engine to checkpoint and occasionally roll back TCP
// state — and requires bit-identical transfer statistics.
func TestOptimisticTransferEquivalence(t *testing.T) {
	link := netem.Config{RateBps: 100_000_000, DelayNs: 500 * netsim.Microsecond, Loss: 0.01}
	run := func(shards int, engine netsim.Engine) string {
		sim, a, b := pipeTopo(link)
		snd, rcv, err := NewTransfer(NewStack(a), NewStack(b), sndAddr, rcvAddr, 40000, 5001,
			Config{MinRTO: 10 * netsim.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if shards > 1 {
			if err := sim.SetShards(shards, engine); err != nil {
				t.Fatal(err)
			}
		}
		snd.Start()
		sim.RunUntil(2 * netsim.Second)
		snd.Stop()
		sim.RunUntil(3 * netsim.Second)
		return fmt.Sprintf("sent=%d rtx=%d fr=%d to=%d dsack=%d good=%d ooo=%d dup=%d aC=%v bC=%v",
			snd.SegmentsSent, snd.Retransmits, snd.FastRecoveries, snd.Timeouts, snd.DSACKs,
			rcv.GoodputBytes, rcv.OutOfOrderSegs, rcv.DupSegs, a.Counters(), b.Counters())
	}
	seq := run(1, netsim.EngineConservative)
	if cons := run(2, netsim.EngineConservative); cons != seq {
		t.Errorf("conservative 2-shard transfer diverged:\n  seq: %s\n  par: %s", seq, cons)
	}
	if opt := run(2, netsim.EngineOptimistic); opt != seq {
		t.Errorf("optimistic 2-shard transfer diverged:\n  seq: %s\n  par: %s", seq, opt)
	}
}
