package asm

// This file provides typed constructors for every instruction form the
// dialect supports. Programs in this repository (the paper's network
// functions) are written by composing these, in the style of
// cilium/ebpf's asm package.

// Mov64Imm emits dst = imm (sign-extended to 64 bits).
func Mov64Imm(dst Register, imm int32) Instruction {
	return Instruction{OpCode: MkALU(ClassALU64, Mov, ImmSource), Dst: dst, Constant: int64(imm)}
}

// Mov64Reg emits dst = src.
func Mov64Reg(dst, src Register) Instruction {
	return Instruction{OpCode: MkALU(ClassALU64, Mov, RegSource), Dst: dst, Src: src}
}

// Mov32Imm emits dst = imm with the upper 32 bits zeroed.
func Mov32Imm(dst Register, imm int32) Instruction {
	return Instruction{OpCode: MkALU(ClassALU, Mov, ImmSource), Dst: dst, Constant: int64(imm)}
}

// Mov32Reg emits dst = src with the upper 32 bits zeroed.
func Mov32Reg(dst, src Register) Instruction {
	return Instruction{OpCode: MkALU(ClassALU, Mov, RegSource), Dst: dst, Src: src}
}

// ALU64Imm emits dst = dst <op> imm in 64-bit arithmetic.
func ALU64Imm(op ALUOp, dst Register, imm int32) Instruction {
	return Instruction{OpCode: MkALU(ClassALU64, op, ImmSource), Dst: dst, Constant: int64(imm)}
}

// ALU64Reg emits dst = dst <op> src in 64-bit arithmetic.
func ALU64Reg(op ALUOp, dst, src Register) Instruction {
	return Instruction{OpCode: MkALU(ClassALU64, op, RegSource), Dst: dst, Src: src}
}

// ALU32Imm emits dst = dst <op> imm in 32-bit arithmetic.
func ALU32Imm(op ALUOp, dst Register, imm int32) Instruction {
	return Instruction{OpCode: MkALU(ClassALU, op, ImmSource), Dst: dst, Constant: int64(imm)}
}

// ALU32Reg emits dst = dst <op> src in 32-bit arithmetic.
func ALU32Reg(op ALUOp, dst, src Register) Instruction {
	return Instruction{OpCode: MkALU(ClassALU, op, RegSource), Dst: dst, Src: src}
}

// Add64Imm emits dst += imm.
func Add64Imm(dst Register, imm int32) Instruction { return ALU64Imm(Add, dst, imm) }

// Add64Reg emits dst += src.
func Add64Reg(dst, src Register) Instruction { return ALU64Reg(Add, dst, src) }

// Neg64 emits dst = -dst.
func Neg64(dst Register) Instruction {
	return Instruction{OpCode: MkALU(ClassALU64, Neg, ImmSource), Dst: dst}
}

// HostToBE emits a byte swap of dst to big-endian with the given
// width in bits (16, 32 or 64). On a little-endian host this swaps;
// widths below 64 also truncate.
func HostToBE(dst Register, bits int) Instruction {
	return Instruction{OpCode: MkALU(ClassALU, Swap, RegSource), Dst: dst, Constant: int64(bits)}
}

// HostToLE emits a byte swap of dst to little-endian with the given
// width in bits (16, 32 or 64). On a little-endian host this
// truncates only.
func HostToLE(dst Register, bits int) Instruction {
	return Instruction{OpCode: MkALU(ClassALU, Swap, ImmSource), Dst: dst, Constant: int64(bits)}
}

// LoadImm64 emits the 16-byte dst = imm64.
func LoadImm64(dst Register, imm int64) Instruction {
	return Instruction{OpCode: opLdImm64, Dst: dst, Constant: imm}
}

// LoadMapPtr emits an LD_IMM64 map pseudo-load of the named map.
// The loader resolves the name against the program's map collection.
func LoadMapPtr(dst Register, name string) Instruction {
	return Instruction{OpCode: opLdImm64, Dst: dst, Src: PseudoMapFD, MapName: name}
}

// LoadMem emits dst = *(size*)(src + offset).
func LoadMem(dst, src Register, offset int16, size Size) Instruction {
	return Instruction{OpCode: MkMem(ClassLdX, size), Dst: dst, Src: src, Offset: offset}
}

// StoreMem emits *(size*)(dst + offset) = src.
func StoreMem(dst Register, offset int16, src Register, size Size) Instruction {
	return Instruction{OpCode: MkMem(ClassStX, size), Dst: dst, Src: src, Offset: offset}
}

// StoreImm emits *(size*)(dst + offset) = imm.
func StoreImm(dst Register, offset int16, imm int32, size Size) Instruction {
	return Instruction{OpCode: MkMem(ClassSt, size), Dst: dst, Offset: offset, Constant: int64(imm)}
}

// AtomicAdd emits lock *(size*)(dst + offset) += src for Word or
// DWord sizes.
func AtomicAdd(dst Register, offset int16, src Register, size Size) Instruction {
	return Instruction{
		OpCode: OpCode(uint8(ClassStX) | uint8(size) | uint8(ModeXadd)),
		Dst:    dst, Src: src, Offset: offset,
	}
}

// JumpTo emits an unconditional jump to the named label.
func JumpTo(label string) Instruction {
	return Instruction{OpCode: MkJump(ClassJump, Ja, ImmSource), Reference: label}
}

// JumpImm emits if dst <op> imm goto label, comparing 64 bits.
func JumpImm(op JumpOp, dst Register, imm int32, label string) Instruction {
	return Instruction{OpCode: MkJump(ClassJump, op, ImmSource), Dst: dst, Constant: int64(imm), Reference: label}
}

// JumpReg emits if dst <op> src goto label, comparing 64 bits.
func JumpReg(op JumpOp, dst, src Register, label string) Instruction {
	return Instruction{OpCode: MkJump(ClassJump, op, RegSource), Dst: dst, Src: src, Reference: label}
}

// Jump32Imm emits if dst <op> imm goto label, comparing 32 bits.
func Jump32Imm(op JumpOp, dst Register, imm int32, label string) Instruction {
	return Instruction{OpCode: MkJump(ClassJump32, op, ImmSource), Dst: dst, Constant: int64(imm), Reference: label}
}

// Jump32Reg emits if dst <op> src goto label, comparing 32 bits.
func Jump32Reg(op JumpOp, dst, src Register, label string) Instruction {
	return Instruction{OpCode: MkJump(ClassJump32, op, RegSource), Dst: dst, Src: src, Reference: label}
}

// CallHelper emits a call to the helper with the given ID.
func CallHelper(id int32) Instruction {
	return Instruction{OpCode: MkJump(ClassJump, Call, ImmSource), Constant: int64(id)}
}

// Return emits exit.
func Return() Instruction {
	return Instruction{OpCode: MkJump(ClassJump, Exit, ImmSource)}
}

// Label returns a no-op marker instruction carrying only a symbol.
// Prefer WithSymbol on a real instruction; Label exists for places
// where the target instruction is generated elsewhere. It assembles
// to a jump of offset 0 (a no-op).
func Label(sym string) Instruction {
	return Instruction{OpCode: MkJump(ClassJump, Ja, ImmSource), Offset: 0, Symbol: sym}
}
