package asm

import "fmt"

// Class is the instruction class, stored in the three least
// significant bits of an opcode.
type Class uint8

// Instruction classes.
const (
	ClassLd     Class = 0x00 // non-standard loads (LD_IMM64, legacy ABS/IND)
	ClassLdX    Class = 0x01 // memory load into register
	ClassSt     Class = 0x02 // memory store from immediate
	ClassStX    Class = 0x03 // memory store from register
	ClassALU    Class = 0x04 // 32-bit arithmetic
	ClassJump   Class = 0x05 // 64-bit comparisons and control flow
	ClassJump32 Class = 0x06 // 32-bit comparisons
	ClassALU64  Class = 0x07 // 64-bit arithmetic
)

func (c Class) String() string {
	switch c {
	case ClassLd:
		return "ld"
	case ClassLdX:
		return "ldx"
	case ClassSt:
		return "st"
	case ClassStX:
		return "stx"
	case ClassALU:
		return "alu32"
	case ClassJump:
		return "jmp"
	case ClassJump32:
		return "jmp32"
	case ClassALU64:
		return "alu64"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// isALU reports whether the class performs arithmetic.
func (c Class) isALU() bool { return c == ClassALU || c == ClassALU64 }

// isJump reports whether the class performs control flow.
func (c Class) isJump() bool { return c == ClassJump || c == ClassJump32 }

// isLoadStore reports whether the class accesses memory.
func (c Class) isLoadStore() bool {
	return c == ClassLdX || c == ClassSt || c == ClassStX
}

// Size is the width of a memory access.
type Size uint8

// Memory access widths.
const (
	Word     Size = 0x00 // 4 bytes
	Half     Size = 0x08 // 2 bytes
	Byte     Size = 0x10 // 1 byte
	DWord    Size = 0x18 // 8 bytes
	sizeMask      = 0x18
)

// Bytes returns the number of bytes the size covers.
func (s Size) Bytes() int {
	switch s {
	case Byte:
		return 1
	case Half:
		return 2
	case Word:
		return 4
	case DWord:
		return 8
	default:
		return 0
	}
}

func (s Size) String() string {
	switch s {
	case Byte:
		return "b"
	case Half:
		return "h"
	case Word:
		return "w"
	case DWord:
		return "dw"
	default:
		return fmt.Sprintf("size(%d)", uint8(s))
	}
}

// Mode is the addressing mode of a load/store opcode.
type Mode uint8

// Addressing modes.
const (
	ModeImm  Mode = 0x00 // 64-bit immediate (LD_IMM64)
	ModeAbs  Mode = 0x20 // legacy packet access, unsupported
	ModeInd  Mode = 0x40 // legacy packet access, unsupported
	ModeMem  Mode = 0x60 // register + offset
	ModeXadd Mode = 0xc0 // atomic add
	modeMask      = 0xe0
)

// ALUOp is an arithmetic operation.
type ALUOp uint8

// Arithmetic operations, stored in the upper four bits of an opcode.
const (
	Add  ALUOp = 0x00
	Sub  ALUOp = 0x10
	Mul  ALUOp = 0x20
	Div  ALUOp = 0x30
	Or   ALUOp = 0x40
	And  ALUOp = 0x50
	LSh  ALUOp = 0x60
	RSh  ALUOp = 0x70
	Neg  ALUOp = 0x80
	Mod  ALUOp = 0x90
	Xor  ALUOp = 0xa0
	Mov  ALUOp = 0xb0
	ArSh ALUOp = 0xc0
	// Swap encodes the byte-swap instructions. The source bit selects
	// to-little-endian (0) or to-big-endian (1); the immediate selects
	// the width (16, 32 or 64).
	Swap ALUOp = 0xd0

	aluOpMask = 0xf0
)

func (op ALUOp) String() string {
	switch op {
	case Add:
		return "add"
	case Sub:
		return "sub"
	case Mul:
		return "mul"
	case Div:
		return "div"
	case Or:
		return "or"
	case And:
		return "and"
	case LSh:
		return "lsh"
	case RSh:
		return "rsh"
	case Neg:
		return "neg"
	case Mod:
		return "mod"
	case Xor:
		return "xor"
	case Mov:
		return "mov"
	case ArSh:
		return "arsh"
	case Swap:
		return "swap"
	default:
		return fmt.Sprintf("aluop(%#x)", uint8(op))
	}
}

// JumpOp is a control-flow operation.
type JumpOp uint8

// Control-flow operations, stored in the upper four bits of an opcode.
const (
	Ja   JumpOp = 0x00
	JEq  JumpOp = 0x10
	JGT  JumpOp = 0x20
	JGE  JumpOp = 0x30
	JSet JumpOp = 0x40
	JNE  JumpOp = 0x50
	JSGT JumpOp = 0x60
	JSGE JumpOp = 0x70
	Call JumpOp = 0x80
	Exit JumpOp = 0x90
	JLT  JumpOp = 0xa0
	JLE  JumpOp = 0xb0
	JSLT JumpOp = 0xc0
	JSLE JumpOp = 0xd0

	jumpOpMask = 0xf0
)

func (op JumpOp) String() string {
	switch op {
	case Ja:
		return "ja"
	case JEq:
		return "jeq"
	case JGT:
		return "jgt"
	case JGE:
		return "jge"
	case JSet:
		return "jset"
	case JNE:
		return "jne"
	case JSGT:
		return "jsgt"
	case JSGE:
		return "jsge"
	case Call:
		return "call"
	case Exit:
		return "exit"
	case JLT:
		return "jlt"
	case JLE:
		return "jle"
	case JSLT:
		return "jslt"
	case JSLE:
		return "jsle"
	default:
		return fmt.Sprintf("jumpop(%#x)", uint8(op))
	}
}

// Source selects the second operand of ALU and jump instructions:
// either the 32-bit immediate (K) or a source register (X).
type Source uint8

// Operand sources.
const (
	ImmSource  Source = 0x00
	RegSource  Source = 0x08
	sourceMask        = 0x08
)

// OpCode is a single-byte eBPF opcode. The zero value is invalid
// (it would decode as a legacy LD with immediate mode and word size,
// which this dialect rejects).
type OpCode uint8

// Class extracts the instruction class.
func (op OpCode) Class() Class { return Class(op & 0x07) }

// Size extracts the access width of a load/store opcode.
func (op OpCode) Size() Size { return Size(op & sizeMask) }

// Mode extracts the addressing mode of a load/store opcode.
func (op OpCode) Mode() Mode { return Mode(op & modeMask) }

// ALUOp extracts the arithmetic operation of an ALU opcode.
func (op OpCode) ALUOp() ALUOp { return ALUOp(op & aluOpMask) }

// JumpOp extracts the control-flow operation of a jump opcode.
func (op OpCode) JumpOp() JumpOp { return JumpOp(op & jumpOpMask) }

// Source extracts the operand source of an ALU or jump opcode.
func (op OpCode) Source() Source { return Source(op & sourceMask) }

// MkALU builds an ALU opcode.
func MkALU(class Class, aluOp ALUOp, src Source) OpCode {
	return OpCode(uint8(class) | uint8(aluOp) | uint8(src))
}

// MkJump builds a jump opcode.
func MkJump(class Class, jumpOp JumpOp, src Source) OpCode {
	return OpCode(uint8(class) | uint8(jumpOp) | uint8(src))
}

// MkMem builds a load/store opcode with register+offset addressing.
func MkMem(class Class, size Size) OpCode {
	return OpCode(uint8(class) | uint8(size) | uint8(ModeMem))
}

// opLdImm64 is the first byte of a 16-byte LD_IMM64 instruction.
const opLdImm64 = OpCode(uint8(ClassLd) | uint8(DWord) | uint8(ModeImm))

func (op OpCode) String() string {
	class := op.Class()
	switch {
	case class.isALU():
		bits := "64"
		if class == ClassALU {
			bits = "32"
		}
		s := "imm"
		if op.Source() == RegSource {
			s = "reg"
		}
		if op.ALUOp() == Swap {
			return "swap"
		}
		return fmt.Sprintf("%s%s %s", op.ALUOp(), bits, s)
	case class.isJump():
		j := op.JumpOp()
		if j == Call || j == Exit || j == Ja {
			return j.String()
		}
		s := "imm"
		if op.Source() == RegSource {
			s = "reg"
		}
		suffix := ""
		if class == ClassJump32 {
			suffix = "32"
		}
		return fmt.Sprintf("%s%s %s", j, suffix, s)
	case class.isLoadStore():
		return fmt.Sprintf("%s%s", class, op.Size())
	case op == opLdImm64:
		return "lddw"
	default:
		return fmt.Sprintf("op(%#02x)", uint8(op))
	}
}
