package netsim_test

// Sequential-vs-parallel equivalence: the acceptance surface of the
// sharded engine. The same seed must produce bit-identical per-node
// counters and delivery traces whether the simulation runs on one
// event heap or is partitioned across 2 or 4 shards — on both a
// control-plane-heavy scenario (FRR failover: link failures, probe
// timers, map updates) and a 200+ node generated fat-tree running an
// ECMP-spread permutation traffic mix.

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"testing"

	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/netsim/topo"
	"srv6bpf/internal/nf/frr"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
	"srv6bpf/internal/trafgen"
)

func endBehaviour() *seg6.Behaviour { return &seg6.Behaviour{Action: seg6.ActionEnd} }

func endDT6Behaviour() *seg6.Behaviour {
	return &seg6.Behaviour{Action: seg6.ActionEndDT6, Table: netsim.MainTable}
}

// fingerprint renders every node's counters (sorted, via the
// zero-alloc CountersInto into one reused map) plus any extra lines
// into one comparable string.
func fingerprint(sim *netsim.Sim, extra []string) string {
	var b strings.Builder
	scratch := make(map[string]uint64, 32)
	keys := make([]string, 0, 32)
	for _, n := range sim.Nodes() {
		for k := range scratch {
			delete(scratch, k)
		}
		n.CountersInto(scratch)
		keys = keys[:0]
		for k := range scratch {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "%s{", n.Name)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%d ", k, scratch[k])
		}
		b.WriteString("}\n")
	}
	for _, line := range extra {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// fatTreeRun executes the 208-node fat-tree traffic mix under the
// given shard count and engine and returns its fingerprint.
func fatTreeRun(t *testing.T, shards int, eng netsim.Engine) (string, netsim.EngineStats) {
	t.Helper()
	sim := netsim.New(7)
	nw, err := topo.FatTree(sim, 8, topo.Opts{
		Link: topo.LinkSpec{RateBps: 10_000_000_000, DelayNs: 25 * netsim.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Nodes) != 208 {
		t.Fatalf("fat-tree k=8 has %d nodes, want 208", len(nw.Nodes))
	}

	// Per-host delivery traces: (rx time, source, flow label) of every
	// arrival, recorded on the receiving shard in rollback-aware
	// journals so speculative deliveries never leak into the record.
	journals := make([]*netsim.Journal, len(nw.Hosts))
	for i, h := range nw.Hosts {
		j := netsim.NewJournal(h)
		journals[i] = j
		h.HandleUDP(9, func(n *netsim.Node, p *packet.Packet, meta *netsim.PacketMeta) {
			j.Addf("%d:%s:%d", meta.RxTimestamp, p.IPv6.Src, p.IPv6.FlowLabel)
		})
	}

	pairs := nw.PermutationPairs(99)
	gens := make([]*trafgen.UDPGen, len(pairs))
	for i, pr := range pairs {
		gens[i] = &trafgen.UDPGen{
			Node: pr[0], Src: nw.HostAddr(pr[0]), Dst: nw.HostAddr(pr[1]),
			SrcPort: 1000, DstPort: 9, PayloadLen: 64,
			// Vary the flow label so packets ECMP-spread across the
			// aggregation and core layers.
			FlowLabel: func(k uint64) uint32 { return uint32(k % 16) },
			RatePPS:   20_000,
		}
	}

	if err := sim.SetShards(shards, eng); err != nil {
		t.Fatal(err)
	}
	const until = 4 * netsim.Millisecond
	for i, g := range gens {
		g := g
		// Staggered starts, scheduled on each source's own shard.
		g.Node.Schedule(int64(i)*netsim.Microsecond, func() {
			if err := g.Start(until); err != nil {
				panic(err)
			}
		})
	}
	sim.RunUntil(until)
	for _, g := range gens {
		g.Stop()
	}
	sim.Run()

	extra := make([]string, 0, len(journals)+1)
	for i, j := range journals {
		extra = append(extra, fmt.Sprintf("trace[%s]=%s", nw.Hosts[i].Name, strings.Join(j.Lines(), ",")))
	}
	st := sim.EngineStats()
	return fingerprint(sim, extra), st
}

func TestShardEquivalenceFatTree(t *testing.T) {
	base, st1 := fatTreeRun(t, 1, netsim.EngineConservative)
	if st1.Events == 0 {
		t.Fatal("no events executed")
	}
	// Sanity: traffic actually flowed to every host.
	for _, line := range strings.Split(base, "\n") {
		if strings.HasSuffix(line, "]=") {
			t.Fatalf("no deliveries at %s", line)
		}
	}
	type arm struct {
		shards int
		eng    netsim.Engine
	}
	arms := []arm{
		{2, netsim.EngineConservative},
		{4, netsim.EngineConservative},
		{2, netsim.EngineOptimistic},
		{4, netsim.EngineOptimistic},
		{8, netsim.EngineOptimistic},
	}
	for _, a := range arms {
		got, st := fatTreeRun(t, a.shards, a.eng)
		if got != base {
			diffReport(t, base, got, a.shards)
		}
		if st.Shards != a.shards {
			t.Errorf("engine ran with %d shards, want %d", st.Shards, a.shards)
		}
		if st.Messages == 0 {
			t.Errorf("%d shards exchanged no cross-shard messages — partition degenerate?", a.shards)
		}
		if a.eng == netsim.EngineOptimistic && st.Checkpoints == 0 {
			t.Errorf("optimistic %d-shard run took no checkpoints", a.shards)
		}
		t.Logf("%s shards=%d events=%d windows=%d msgs=%d ckpts=%d rollbacks=%d antis=%d",
			a.eng, st.Shards, st.Events, st.Windows, st.Messages, st.Checkpoints, st.Rollbacks, st.AntiMessages)
	}
}

// diffReport points at the first differing line so a determinism
// regression is debuggable.
func diffReport(t *testing.T, base, got string, shards int) {
	t.Helper()
	bl := strings.Split(base, "\n")
	gl := strings.Split(got, "\n")
	for i := 0; i < len(bl) && i < len(gl); i++ {
		if bl[i] != gl[i] {
			t.Fatalf("%d-shard run diverges from sequential at line %d:\n  seq: %.200s\n  par: %.200s",
				shards, i, bl[i], gl[i])
		}
	}
	t.Fatalf("%d-shard run diverges from sequential (length %d vs %d lines)", shards, len(bl), len(gl))
}

// frrRun executes the FRR failover scenario (the protection triangle
// of internal/experiments) under the given shard count and engine.
func frrRun(t *testing.T, shards int, eng netsim.Engine) string {
	t.Helper()
	var (
		src     = netip.MustParseAddr("2001:db8:1::1")
		pAddr   = netip.MustParseAddr("2001:db8:10::1")
		dAddr   = netip.MustParseAddr("2001:db8:20::1")
		bAddr   = netip.MustParseAddr("2001:db8:30::1")
		dst     = netip.MustParseAddr("2001:db8:2::1")
		nbrSID  = netip.MustParseAddr("fc00:20::ee")
		primSID = netip.MustParseAddr("fc00:20::d6")
		detour  = netip.MustParseAddr("fc00:30::e")
		bkDecap = netip.MustParseAddr("fc00:21::d6")
		track   = netip.MustParseAddr("fc00:10::7a")
		probeTo = netip.MustParseAddr("fc00:f0::1")
	)
	pfx := netip.MustParsePrefix

	sim := netsim.New(11)
	s := sim.AddNode("S", netsim.HostCostModel())
	p := sim.AddNode("P", netsim.ServerCostModel())
	d := sim.AddNode("D", netsim.ServerCostModel())
	bb := sim.AddNode("B", netsim.ServerCostModel())
	tt := sim.AddNode("T", netsim.HostCostModel())
	s.AddAddress(src)
	p.AddAddress(pAddr)
	d.AddAddress(dAddr)
	bb.AddAddress(bAddr)
	tt.AddAddress(dst)

	edge := netem.Config{RateBps: 1e10, DelayNs: 10 * netsim.Microsecond}
	primary := netem.Config{RateBps: 1e10, DelayNs: 100 * netsim.Microsecond}
	detourCfg := netem.Config{RateBps: 1e10, DelayNs: 60 * netsim.Microsecond}

	sIf, psIf := netsim.ConnectSymmetric(s, p, edge)
	pdIf, dpIf := netsim.ConnectSymmetric(p, d, primary)
	pbIf, _ := netsim.ConnectSymmetric(p, bb, detourCfg)
	bdIf, _ := netsim.ConnectSymmetric(bb, d, detourCfg)
	dtIf, tIf := netsim.ConnectSymmetric(d, tt, edge)

	s.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: sIf}}})
	tt.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tIf}}})
	p.AddRoute(&netsim.Route{Prefix: pfx("fc00:20::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: pdIf}}})
	p.AddRoute(&netsim.Route{Prefix: pfx("fc00:30::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: pbIf}}})
	p.AddRoute(&netsim.Route{Prefix: pfx("fc00:21::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: pbIf}}})
	p.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:1::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: psIf}}})
	bb.AddRoute(&netsim.Route{Prefix: netip.PrefixFrom(detour, 128), Kind: netsim.RouteSeg6Local,
		Behaviour: endBehaviour()})
	bb.AddRoute(&netsim.Route{Prefix: pfx("fc00:21::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: bdIf}}})
	d.AddRoute(&netsim.Route{Prefix: netip.PrefixFrom(nbrSID, 128), Kind: netsim.RouteSeg6Local,
		Behaviour: endBehaviour()})
	for _, sid := range []netip.Addr{primSID, bkDecap} {
		d.AddRoute(&netsim.Route{Prefix: netip.PrefixFrom(sid, 128), Kind: netsim.RouteSeg6Local,
			Behaviour: endDT6Behaviour()})
	}
	d.AddRoute(&netsim.Route{Prefix: pfx("fc00:10::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: dpIf}}})
	d.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:2::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: dtIf}}})

	delivered := netsim.NewJournal(tt)
	tt.HandleUDP(9999, func(n *netsim.Node, pk *packet.Packet, meta *netsim.PacketMeta) {
		delivered.Addf("%d", meta.RxTimestamp)
	})

	f, err := frr.New(p, frr.Config{TrackSID: track, ProbeInterval: 2 * netsim.Millisecond, Misses: 3, JIT: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.AddNeighbor(frr.Neighbor{ID: 1, ProbeAddr: probeTo, SID: nbrSID, Iface: pdIf}); err != nil {
		t.Fatal(err)
	}
	if err := f.Protect(frr.Protection{
		Prefix: pfx("2001:db8:2::/48"), NeighborID: 1,
		PrimarySID: primSID, Backup: []netip.Addr{detour, bkDecap},
	}); err != nil {
		t.Fatal(err)
	}

	if err := sim.SetShards(shards, eng); err != nil {
		t.Fatal(err)
	}
	f.Start()
	// Constant-rate traffic S -> T, scheduled on S's shard.
	const gap = 20 * netsim.Microsecond
	const until = 25 * netsim.Millisecond
	for i := 0; i < int(until/gap); i++ {
		s.Schedule(int64(i)*gap, func() {
			raw, err := packet.BuildPacket(src, dst,
				packet.WithUDP(5000, 9999), packet.WithPayload(make([]byte, 64)))
			if err != nil {
				panic(err)
			}
			s.Output(raw)
		})
	}
	sim.FailLink(10*netsim.Millisecond-50*netsim.Microsecond, pdIf)
	sim.RunUntil(until)
	f.Stop()
	sim.Run()

	extra := []string{
		fmt.Sprintf("delivered=%v", delivered.Lines()),
		fmt.Sprintf("probes=%d transitions=%v", f.ProbesSent, f.Transitions),
		fmt.Sprintf("pd.tx=%d pd.downdrops=%d pb.tx=%d", pdIf.TxPackets, pdIf.DownDrops(), pbIf.TxPackets),
	}
	return fingerprint(sim, extra)
}

func TestShardEquivalenceFRR(t *testing.T) {
	base := frrRun(t, 1, netsim.EngineConservative)
	if !strings.Contains(base, "transitions=[{1 false") {
		t.Fatalf("FRR scenario never detected the failure:\n%s", base)
	}
	// The topology has 5 nodes, so the optimistic arms stop at 4
	// shards; the 8-shard optimistic arm runs on the 208-node
	// fat-tree above.
	for _, shards := range []int{2, 4} {
		if got := frrRun(t, shards, netsim.EngineConservative); got != base {
			diffReport(t, base, got, shards)
		}
		if got := frrRun(t, shards, netsim.EngineOptimistic); got != base {
			diffReport(t, base, got, shards)
		}
	}
}

// TestShardEquivalenceSmoke is the quick 2-shard determinism gate
// that `make check` runs under the race detector: a trimmed fat-tree
// (k=4, 36 nodes) against the sequential schedule.
func TestShardEquivalenceSmoke(t *testing.T) {
	run := func(shards int, eng netsim.Engine) string {
		sim := netsim.New(3)
		nw, err := topo.FatTree(sim, 4, topo.Opts{
			Link: topo.LinkSpec{RateBps: 10_000_000_000, DelayNs: 25 * netsim.Microsecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Per-host traces: each journal is appended only by its
		// owner's shard and rewinds with rollbacks.
		journals := make([]*netsim.Journal, len(nw.Hosts))
		for i, h := range nw.Hosts {
			j := netsim.NewJournal(h)
			journals[i] = j
			name := h.Name
			h.HandleUDP(9, func(n *netsim.Node, p *packet.Packet, meta *netsim.PacketMeta) {
				j.Addf("%s<-%s@%d", name, p.IPv6.Src, meta.RxTimestamp)
			})
		}
		pairs := nw.PermutationPairs(5)
		gens := make([]*trafgen.UDPGen, len(pairs))
		for i, pr := range pairs {
			gens[i] = &trafgen.UDPGen{
				Node: pr[0], Src: nw.HostAddr(pr[0]), Dst: nw.HostAddr(pr[1]),
				SrcPort: 1000, DstPort: 9, PayloadLen: 64,
				FlowLabel: func(k uint64) uint32 { return uint32(k % 8) },
				RatePPS:   50_000,
			}
		}
		if err := sim.SetShards(shards, eng); err != nil {
			t.Fatal(err)
		}
		const until = netsim.Millisecond
		for i, g := range gens {
			g := g
			g.Node.Schedule(int64(i)*netsim.Microsecond, func() {
				if err := g.Start(until); err != nil {
					panic(err)
				}
			})
		}
		sim.RunUntil(until)
		for _, g := range gens {
			g.Stop()
		}
		sim.Run()
		var order []string
		for _, j := range journals {
			order = append(order, j.Lines()...)
		}
		return fingerprint(sim, order)
	}
	base := run(1, netsim.EngineConservative)
	if got := run(2, netsim.EngineConservative); got != base {
		diffReport(t, base, got, 2)
	}
	if got := run(2, netsim.EngineOptimistic); got != base {
		diffReport(t, base, got, 2)
	}
}
