package maps

import (
	"testing"
	"time"
)

func TestPerfOutputAndRead(t *testing.T) {
	m := MustNew(Spec{Name: "events", Type: PerfEventArray, MaxEntries: 2})
	r, err := NewReader(m)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if !m.Output(0, []byte("hello")) {
		t.Fatal("Output failed")
	}
	if !m.Output(1, []byte("world")) {
		t.Fatal("Output to cpu 1 failed")
	}

	got := map[string]int{}
	for i := 0; i < 2; i++ {
		select {
		case s := <-r.C():
			got[string(s.Data)] = s.CPU
		case <-time.After(2 * time.Second):
			t.Fatal("timed out waiting for samples")
		}
	}
	if got["hello"] != 0 || got["world"] != 1 {
		t.Errorf("samples = %v", got)
	}
}

func TestPerfOutputCopiesData(t *testing.T) {
	m := MustNew(Spec{Name: "events", Type: PerfEventArray, MaxEntries: 1})
	r, err := NewReader(m)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	buf := []byte{1, 2, 3}
	m.Output(0, buf)
	buf[0] = 9 // mutate after output
	select {
	case s := <-r.C():
		if s.Data[0] != 1 {
			t.Error("sample aliases caller buffer")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
}

func TestPerfBadIndex(t *testing.T) {
	m := MustNew(Spec{Name: "events", Type: PerfEventArray, MaxEntries: 1})
	if m.Output(5, []byte("x")) {
		t.Error("Output to bad index succeeded")
	}
	if m.Output(-1, []byte("x")) {
		t.Error("Output to negative index succeeded")
	}
}

func TestPerfLostSamples(t *testing.T) {
	m := MustNew(Spec{Name: "events", Type: PerfEventArray, MaxEntries: 1})
	// No reader: fill the ring to capacity, then overflow.
	for i := 0; i < defaultRingCapacity; i++ {
		if !m.Output(0, []byte{byte(i)}) {
			t.Fatalf("ring filled early at %d", i)
		}
	}
	if m.Output(0, []byte("overflow")) {
		t.Error("overflow push succeeded")
	}
	if m.LostSamples() != 1 {
		t.Errorf("LostSamples = %d, want 1", m.LostSamples())
	}
}

func TestPerfReaderClose(t *testing.T) {
	m := MustNew(Spec{Name: "events", Type: PerfEventArray, MaxEntries: 1})
	r, err := NewReader(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Channel must eventually close.
	select {
	case _, ok := <-r.C():
		if ok {
			// Drain anything buffered; the close must follow.
			for range r.C() {
			}
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader channel did not close")
	}
	// Double close is fine.
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPerfReaderOnWrongType(t *testing.T) {
	m := MustNew(Spec{Name: "arr", Type: Array, KeySize: 4, ValueSize: 4, MaxEntries: 1})
	if _, err := NewReader(m); err == nil {
		t.Error("NewReader on array succeeded")
	}
	if m.Output(0, []byte("x")) {
		t.Error("Output on array succeeded")
	}
	if m.LostSamples() != 0 {
		t.Error("LostSamples on array non-zero")
	}
}
