package netsim

import (
	"fmt"
	"math"
	"net/netip"
	"testing"

	"srv6bpf/internal/netem"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
	"srv6bpf/internal/stats"
)

var (
	aAddr = netip.MustParseAddr("2001:db8:a::1")
	bAddr = netip.MustParseAddr("2001:db8:b::1")
	rSID  = netip.MustParseAddr("fc00:1::e")
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// lineTopo builds A --- R --- B with fast links and returns the trio.
func lineTopo(s *Sim) (a, r, b *Node) {
	a = s.AddNode("A", HostCostModel())
	r = s.AddNode("R", ServerCostModel())
	b = s.AddNode("B", HostCostModel())
	a.AddAddress(aAddr)
	b.AddAddress(bAddr)
	r.AddAddress(netip.MustParseAddr("2001:db8:aa::1"))

	aIf, raIf := ConnectSymmetric(a, r, netem.Config{RateBps: 10_000_000_000, DelayNs: 10 * Microsecond})
	rbIf, bIf := ConnectSymmetric(r, b, netem.Config{RateBps: 10_000_000_000, DelayNs: 10 * Microsecond})

	a.AddRoute(&Route{Prefix: pfx("::/0"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: aIf}}})
	b.AddRoute(&Route{Prefix: pfx("::/0"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: bIf}}})
	r.AddRoute(&Route{Prefix: pfx("2001:db8:a::/48"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: raIf}}})
	r.AddRoute(&Route{Prefix: pfx("2001:db8:b::/48"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: rbIf}}})
	return a, r, b
}

func TestEndToEndUDPDelivery(t *testing.T) {
	s := New(1)
	a, _, b := lineTopo(s)

	var got []byte
	b.HandleUDP(7777, func(n *Node, p *packet.Packet, meta *PacketMeta) {
		got = p.Raw[p.L4Off+packet.UDPHeaderLen:]
	})
	raw, err := packet.BuildPacket(aAddr, bAddr, packet.WithUDP(1000, 7777), packet.WithPayload([]byte("ping")))
	if err != nil {
		t.Fatal(err)
	}
	a.Output(raw)
	s.Run()
	if string(got) != "ping" {
		t.Fatalf("payload = %q", got)
	}
	if b.Counters()["udp_delivered"] != 1 {
		t.Errorf("delivered counter = %d", b.Counters()["udp_delivered"])
	}
}

func TestHopLimitDecrementedPerHop(t *testing.T) {
	s := New(1)
	a, _, b := lineTopo(s)
	var gotHL uint8
	b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) { gotHL = p.IPv6.HopLimit })
	raw, _ := packet.BuildPacket(aAddr, bAddr, packet.WithUDP(1, 7), packet.WithHopLimit(64))
	a.Output(raw)
	s.Run()
	// A originates (no decrement), R forwards (decrement once).
	if gotHL != 63 {
		t.Errorf("hop limit at B = %d, want 63", gotHL)
	}
}

func TestHopLimitExceededGeneratesICMP(t *testing.T) {
	s := New(1)
	a, r, b := lineTopo(s)
	var icmpType uint8
	var icmpFrom netip.Addr
	a.HandleICMP(func(n *Node, p *packet.Packet, meta *PacketMeta) {
		m, err := packet.DecodeICMPv6(p.Raw[p.L4Off:])
		if err == nil {
			icmpType = m.Type
			icmpFrom = p.IPv6.Src
		}
	})
	_ = b
	raw, _ := packet.BuildPacket(aAddr, bAddr, packet.WithUDP(1, 7), packet.WithHopLimit(1))
	a.Output(raw)
	s.Run()
	if icmpType != packet.ICMPv6TimeExceeded {
		t.Fatalf("no time-exceeded received (type=%d)", icmpType)
	}
	if icmpFrom != r.PrimaryAddress() {
		t.Errorf("ICMP source = %v, want router %v", icmpFrom, r.PrimaryAddress())
	}
	if r.Counters()["drop_hop_limit"] != 1 {
		t.Errorf("drop counter = %d", r.Counters()["drop_hop_limit"])
	}
}

func TestNoRouteGeneratesUnreachable(t *testing.T) {
	s := New(1)
	a, r, _ := lineTopo(s)
	var gotType uint8
	a.HandleICMP(func(n *Node, p *packet.Packet, meta *PacketMeta) {
		if m, err := packet.DecodeICMPv6(p.Raw[p.L4Off:]); err == nil {
			gotType = m.Type
		}
	})
	raw, _ := packet.BuildPacket(aAddr, netip.MustParseAddr("2001:db8:dead::1"), packet.WithUDP(1, 7))
	a.Output(raw)
	s.Run()
	if gotType != packet.ICMPv6DstUnreachable {
		t.Errorf("icmp type = %d", gotType)
	}
	if r.Counters()["drop_no_route"] != 1 {
		t.Errorf("counters = %v", r.Counters())
	}
}

func TestECMPSpreadsFlowsButPinsEachFlow(t *testing.T) {
	s := New(1)
	a := s.AddNode("A", HostCostModel())
	r := s.AddNode("R", ServerCostModel())
	b1 := s.AddNode("B1", HostCostModel())
	b2 := s.AddNode("B2", HostCostModel())
	a.AddAddress(aAddr)
	fast := netem.Config{RateBps: 10_000_000_000}
	aIf, _ := ConnectSymmetric(a, r, fast)
	r1, _ := ConnectSymmetric(r, b1, fast)
	r2, _ := ConnectSymmetric(r, b2, fast)
	a.AddRoute(&Route{Prefix: pfx("::/0"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: aIf}}})
	r.AddRoute(&Route{
		Prefix: pfx("2001:db8:b::/48"),
		Kind:   RouteForward,
		Nexthops: []Nexthop{
			{Iface: r1}, {Iface: r2},
		},
	})

	// Many flows (distinct flow labels): both paths used.
	perPath := map[string]int{}
	r1.Tap = func([]byte) { perPath["p1"]++ }
	r2.Tap = func([]byte) { perPath["p2"]++ }
	for fl := uint32(0); fl < 64; fl++ {
		raw, _ := packet.BuildPacket(aAddr, bAddr, packet.WithUDP(1, 2), packet.WithFlowLabel(fl))
		a.Output(raw)
	}
	s.Run()
	if perPath["p1"] == 0 || perPath["p2"] == 0 {
		t.Fatalf("ECMP did not spread: %v", perPath)
	}
	if perPath["p1"]+perPath["p2"] != 64 {
		t.Fatalf("lost packets: %v", perPath)
	}

	// One flow always takes one path.
	perPath = map[string]int{}
	for i := 0; i < 32; i++ {
		raw, _ := packet.BuildPacket(aAddr, bAddr, packet.WithUDP(1, 2), packet.WithFlowLabel(0x42))
		a.Output(raw)
	}
	s.Run()
	if perPath["p1"] != 0 && perPath["p2"] != 0 {
		t.Fatalf("single flow split across paths: %v", perPath)
	}
}

func TestSeg6LocalEndOnRouter(t *testing.T) {
	s := New(1)
	a, r, b := lineTopo(s)
	r.AddRoute(&Route{
		Prefix:    netip.PrefixFrom(rSID, 128),
		Kind:      RouteSeg6Local,
		Behaviour: &seg6.Behaviour{Action: seg6.ActionEnd},
	})

	var gotDst netip.Addr
	var gotSL uint8
	b.HandleUDP(9, func(n *Node, p *packet.Packet, meta *PacketMeta) {
		gotDst = p.IPv6.Dst
		gotSL = p.SRH.SegmentsLeft
	})

	srh := packet.NewSRH([]netip.Addr{rSID, bAddr})
	raw, err := packet.BuildPacket(aAddr, rSID, packet.WithSRH(srh), packet.WithUDP(1, 9))
	if err != nil {
		t.Fatal(err)
	}
	a.Output(raw)
	s.Run()
	if gotDst != bAddr || gotSL != 0 {
		t.Fatalf("after End: dst=%v sl=%d (counters R=%v B=%v)", gotDst, gotSL, r.Counters(), b.Counters())
	}
}

func TestSeg6EncapTransitRoute(t *testing.T) {
	s := New(1)
	a, r, b := lineTopo(s)
	// R encapsulates everything towards B inside an SRH. Like the
	// kernel's `ip -6 route add ... encap seg6 ... dev`, the transit
	// route carries its own egress so the encapsulated packet does not
	// re-match the same prefix.
	rbIf := r.Ifaces()[1]
	r.AddRoute(&Route{
		Prefix:   pfx("2001:db8:b::/48"),
		Kind:     RouteSeg6Encap,
		SRH:      packet.NewSRH([]netip.Addr{bAddr}),
		Nexthops: []Nexthop{{Iface: rbIf}},
	})
	// B decapsulates with End.DT6 (it owns bAddr as SID too).
	b.AddRoute(&Route{
		Prefix:    netip.PrefixFrom(bAddr, 128),
		Kind:      RouteSeg6Local,
		Behaviour: &seg6.Behaviour{Action: seg6.ActionEndDT6, Table: MainTable},
	})
	inner2 := netip.MustParseAddr("2001:db8:b::2")
	b.AddAddress(inner2)

	var got string
	b.HandleUDP(5, func(n *Node, p *packet.Packet, meta *PacketMeta) {
		got = string(p.Raw[p.L4Off+packet.UDPHeaderLen:])
	})
	raw, _ := packet.BuildPacket(aAddr, inner2, packet.WithUDP(1, 5), packet.WithPayload([]byte("thru-tunnel")))
	a.Output(raw)
	s.Run()
	if got != "thru-tunnel" {
		t.Fatalf("payload = %q; R=%v B=%v", got, r.Counters(), b.Counters())
	}
}

// TestReceiveLivelock reproduces the paper's load pattern: offer far
// more packets than the router can process; throughput caps at the
// CPU rate and the ring drops the rest.
func TestReceiveLivelock(t *testing.T) {
	s := New(1)
	a, r, b := lineTopo(s)
	delivered := 0
	b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) { delivered++ })

	// 152-byte packets, offered at 3 Mpps for 50 ms = 150k packets.
	payload := make([]byte, 64)
	srh := packet.NewSRH([]netip.Addr{bAddr})
	const offered = 150_000
	const gapNs = 333 // 3 Mpps
	for i := 0; i < offered; i++ {
		i := i
		s.Schedule(int64(i)*gapNs, func() {
			raw, _ := packet.BuildPacket(aAddr, bAddr, packet.WithSRH(srh), packet.WithUDP(1, 7), packet.WithPayload(payload))
			a.Output(raw)
		})
	}
	s.Run()
	window := int64(offered) * gapNs
	rate := stats.Rate(uint64(delivered), window)

	// The server model forwards ~600 kpps for this packet size; the
	// generator offers 3 Mpps. Expect roughly 590-630 kpps delivered.
	if rate < 550_000 || rate > 650_000 {
		t.Fatalf("delivered %.0f pps, want ≈610k (delivered=%d, drops=%d)",
			rate, delivered, r.Counters()["rx_ring_full"])
	}
	if r.Counters()["rx_ring_full"] == 0 {
		t.Error("no ring drops despite 5x overload")
	}
}

func TestRouteReplacement(t *testing.T) {
	var tbl Table
	r1 := &Route{Prefix: pfx("2001:db8::/32"), Kind: RouteForward}
	r2 := &Route{Prefix: pfx("2001:db8::/32"), Kind: RouteLocal}
	tbl.Add(r1)
	tbl.Add(r2)
	if len(tbl.Routes()) != 1 || tbl.Routes()[0].Kind != RouteLocal {
		t.Fatalf("replacement failed: %+v", tbl.Routes())
	}
}

func TestLongestPrefixWins(t *testing.T) {
	var tbl Table
	tbl.Add(&Route{Prefix: pfx("::/0"), Kind: RouteForward})
	tbl.Add(&Route{Prefix: pfx("2001:db8::/32"), Kind: RouteLocal})
	tbl.Add(&Route{Prefix: pfx("2001:db8:1::/48"), Kind: RouteSeg6Local})
	if r := tbl.Lookup(netip.MustParseAddr("2001:db8:1::5")); r.Kind != RouteSeg6Local {
		t.Errorf("got %v", r.Kind)
	}
	if r := tbl.Lookup(netip.MustParseAddr("2001:db8:2::5")); r.Kind != RouteLocal {
		t.Errorf("got %v", r.Kind)
	}
	if r := tbl.Lookup(netip.MustParseAddr("2002::1")); r.Kind != RouteForward {
		t.Errorf("got %v", r.Kind)
	}
}

func TestLinkDelayAndBandwidth(t *testing.T) {
	s := New(1)
	a := s.AddNode("A", HostCostModel())
	b := s.AddNode("B", HostCostModel())
	a.AddAddress(aAddr)
	b.AddAddress(bAddr)
	// 8 Mbps, 5 ms delay: a 1000-byte packet takes 1 ms + 5 ms.
	aIf, _ := ConnectSymmetric(a, b, netem.Config{RateBps: 8_000_000, DelayNs: 5 * Millisecond})
	a.AddRoute(&Route{Prefix: pfx("::/0"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: aIf}}})

	var deliveredAt int64
	b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) { deliveredAt = meta.RxTimestamp })
	raw, _ := packet.BuildPacket(aAddr, bAddr, packet.WithUDP(1, 7), packet.WithPayload(make([]byte, 1000-packet.IPv6HeaderLen-packet.UDPHeaderLen)))
	if len(raw) != 1000 {
		t.Fatalf("packet size = %d", len(raw))
	}
	a.Output(raw)
	s.Run()
	want := 6 * Millisecond
	if math.Abs(float64(deliveredAt-want)) > float64(Microsecond) {
		t.Errorf("delivered at %d, want ≈%d", deliveredAt, want)
	}
}

func TestSimScheduleOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.Schedule(100, func() { order = append(order, 2) })
	s.Schedule(50, func() { order = append(order, 1) })
	s.Schedule(100, func() { order = append(order, 3) }) // same time: FIFO by seq
	s.Run()
	if fmt.Sprint(order) != "[1 2 3]" {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 100 {
		t.Errorf("now = %d", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	fired := 0
	s.Schedule(10, func() { fired++ })
	s.Schedule(20, func() { fired++ })
	s.RunUntil(15)
	if fired != 1 || s.Now() != 15 {
		t.Errorf("fired=%d now=%d", fired, s.Now())
	}
	s.Run()
	if fired != 2 {
		t.Errorf("fired=%d", fired)
	}
}

func TestPerPacketRoundRobinRoute(t *testing.T) {
	s := New(1)
	a := s.AddNode("A", HostCostModel())
	r := s.AddNode("R", ServerCostModel())
	b1 := s.AddNode("B1", HostCostModel())
	b2 := s.AddNode("B2", HostCostModel())
	a.AddAddress(aAddr)
	fast := netem.Config{RateBps: 10_000_000_000}
	aIf, _ := ConnectSymmetric(a, r, fast)
	r1, _ := ConnectSymmetric(r, b1, fast)
	r2, _ := ConnectSymmetric(r, b2, fast)
	a.AddRoute(&Route{Prefix: pfx("::/0"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: aIf}}})
	r.AddRoute(&Route{
		Prefix:      pfx("2001:db8:b::/48"),
		Kind:        RouteForward,
		Nexthops:    []Nexthop{{Iface: r1}, {Iface: r2}},
		PerPacketRR: true,
	})

	var n1, n2 int
	r1.Tap = func([]byte) { n1++ }
	r2.Tap = func([]byte) { n2++ }
	// A single flow (constant label): RR must still alternate.
	for i := 0; i < 40; i++ {
		raw, _ := packet.BuildPacket(aAddr, bAddr, packet.WithUDP(1, 2), packet.WithFlowLabel(7))
		a.Output(raw)
	}
	s.Run()
	if n1 != 20 || n2 != 20 {
		t.Fatalf("round robin split = %d/%d, want 20/20", n1, n2)
	}
}

func TestICMPErrorsNotGeneratedForICMPErrors(t *testing.T) {
	s := New(1)
	a, r, _ := lineTopo(s)
	// An ICMP error packet whose own hop limit expires at R must die
	// silently (no error about an error).
	body := make([]byte, 8)
	raw, _ := packet.BuildPacket(aAddr, bAddr,
		packet.WithICMPv6(packet.ICMPv6{Type: packet.ICMPv6TimeExceeded, Body: body}),
		packet.WithHopLimit(1))
	got := 0
	a.HandleICMP(func(n *Node, p *packet.Packet, meta *PacketMeta) { got++ })
	a.Output(raw)
	s.Run()
	if got != 0 {
		t.Fatalf("received %d ICMP errors about an ICMP error", got)
	}
	if r.Counters()["drop_hop_limit"] != 1 {
		t.Errorf("counters: %v", r.Counters())
	}
}
