package topo

import (
	"fmt"
	"math"
	"math/rand"

	"srv6bpf/internal/netsim"
)

// WaxmanParams parameterises the classic Waxman random graph: nodes
// are placed uniformly in the unit square and each pair (i, j) is
// linked with probability Alpha * exp(-d(i,j) / (Beta * sqrt(2))).
type WaxmanParams struct {
	// Alpha scales overall edge density (0, 1].
	Alpha float64
	// Beta controls how sharply probability decays with distance
	// (0, 1].
	Beta float64
	// Seed drives placement and edge selection. The graph depends
	// only on (n, Alpha, Beta, Seed) — never on the simulation's RNG —
	// so the same parameters reproduce the same topology.
	Seed int64
}

// Waxman builds an n-node Waxman random graph of hosts (every node
// terminates traffic and forwards). Isolated components are stitched
// to the main component through their nearest already-connected
// node, so the graph is always connected; link delays scale with
// Euclidean distance between DelayNs/2 and DelayNs, keeping every
// link's delay positive for cross-shard eligibility.
func Waxman(sim *netsim.Sim, n int, p WaxmanParams, opts Opts) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: waxman needs >= 2 nodes, got %d", n)
	}
	if p.Alpha <= 0 || p.Alpha > 1 || p.Beta <= 0 || p.Beta > 1 {
		return nil, fmt.Errorf("topo: waxman alpha/beta must be in (0,1], got %g/%g", p.Alpha, p.Beta)
	}
	opts.fill()
	rng := rand.New(rand.NewSource(p.Seed))

	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}
	dist := func(i, j int) float64 {
		return math.Hypot(xs[i]-xs[j], ys[i]-ys[j])
	}

	b := newBuilder(sim)
	for i := 0; i < n; i++ {
		b.addHost(fmt.Sprintf("w%d", i), opts.HostCost())
	}

	// linkSpec scales delay with distance; the floor of DelayNs/2
	// keeps even the shortest link parallel-eligible.
	maxD := math.Sqrt2
	linkSpec := func(d float64) LinkSpec {
		l := opts.Link
		l.DelayNs = l.DelayNs/2 + int64(float64(l.DelayNs/2)*(d/maxD))
		if l.DelayNs < 1 {
			l.DelayNs = 1
		}
		return l
	}

	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, c int) { parent[find(a)] = find(c) }

	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := dist(i, j)
			if rng.Float64() < p.Alpha*math.Exp(-d/(p.Beta*maxD)) {
				b.connect(b.nw.Nodes[i], b.nw.Nodes[j], linkSpec(d))
				union(i, j)
			}
		}
	}

	// Stitch stray components onto node 0's component via the nearest
	// cross-component pair, in deterministic node order.
	for i := 1; i < n; i++ {
		if find(i) == find(0) {
			continue
		}
		best, bestD := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if find(j) != find(0) {
				continue
			}
			if d := dist(i, j); d < bestD {
				best, bestD = j, d
			}
		}
		b.connect(b.nw.Nodes[i], b.nw.Nodes[best], linkSpec(bestD))
		union(i, best)
	}
	return b.installRoutes(), nil
}
