package asm

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) Instructions {
	t.Helper()
	insns, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return insns
}

func TestParseBasicForms(t *testing.T) {
	src := `
		; a comment
		r0 = 0              // trailing comment
		r1 = r0
		r2 = 0x1122334455667788 ll
		r3 = -5
		r0 += 7
		r0 -= r1
		r0 <<= 4
		r0 s>>= 1
		r4 = *(u16 *)(r1 + 6)
		*(u8 *)(rfp - 2) = 9
		*(u64 *)(rfp - 8) = r4
		lock *(u64 *)(rfp - 8) += r0
		r5 = map[counters]
		call 5
		r0 = be16 r0
		exit
	`
	insns := mustParse(t, src)
	if len(insns) != 16 {
		t.Fatalf("parsed %d instructions:\n%s", len(insns), insns)
	}
	if !insns[12].IsLoadFromMap() || insns[12].MapName != "counters" {
		t.Errorf("map load: %+v", insns[12])
	}
	if insns[2].Constant != 0x1122334455667788 {
		t.Errorf("lddw constant = %#x", insns[2].Constant)
	}
	if insns[13].Constant != 5 {
		t.Errorf("call id = %d", insns[13].Constant)
	}
}

func TestParseLabelsAndJumps(t *testing.T) {
	src := `
		r0 = 0
		if r0 == 0 goto out
		r0 = 1
	out:
		exit
	`
	insns := mustParse(t, src)
	if insns[1].Reference != "out" {
		t.Fatalf("reference = %q", insns[1].Reference)
	}
	if insns[3].Symbol != "out" {
		t.Fatalf("symbol = %q", insns[3].Symbol)
	}
	if _, err := insns.Assemble(); err != nil {
		t.Fatalf("assemble: %v", err)
	}
}

func TestParseConditionVariants(t *testing.T) {
	src := `
		r0 = 0
		if r0 != 1 goto a
	a:
		if r0 > r1 goto b
	b:
		if r0 s< -3 goto c
	c:
		if r0 & 0x10 goto d
	d:
		exit
	`
	// r1 is uninitialised but parsing doesn't care (the verifier does).
	insns := mustParse(t, src)
	ops := []JumpOp{JNE, JGT, JSLT, JSet}
	idx := 0
	for _, ins := range insns {
		if ins.OpCode.Class().isJump() && ins.OpCode.JumpOp() != Exit {
			if ins.OpCode.JumpOp() != ops[idx] {
				t.Errorf("jump %d: got %v, want %v", idx, ins.OpCode.JumpOp(), ops[idx])
			}
			idx++
		}
	}
	if idx != len(ops) {
		t.Fatalf("found %d jumps", idx)
	}
}

// TestParseRoundTripsDisassembly feeds every bundled program's
// listing back through the parser and requires semantic equality.
func TestParseRoundTripsDisassembly(t *testing.T) {
	progs := []Instructions{
		{
			Mov64Imm(R0, 0),
			Return(),
		},
		{
			Mov64Reg(R6, R1),
			LoadMem(R7, R6, 16, DWord),
			LoadMem(R8, R6, 24, DWord),
			Mov64Reg(R2, R7),
			ALU64Imm(Add, R2, 48),
			JumpReg(JGT, R2, R8, "drop"),
			LoadMem(R3, R7, 46, Half),
			HostToBE(R3, 16),
			ALU64Imm(Add, R3, 1),
			StoreMem(RFP, -2, R3, Half),
			LoadMapPtr(R1, "m"),
			Mov64Imm(R4, 2),
			CallHelper(74),
			JumpImm(JNE, R0, 0, "drop"),
			Mov64Imm(R0, 0),
			Return(),
			Mov64Imm(R0, 2).WithSymbol("drop"),
			Return(),
		},
	}
	for pi, prog := range progs {
		listing := prog.String()
		back, err := Parse(listing)
		if err != nil {
			t.Fatalf("program %d: parse of own listing failed: %v\n%s", pi, err, listing)
		}
		if len(back) != len(prog) {
			t.Fatalf("program %d: %d -> %d instructions\n%s", pi, len(prog), len(back), listing)
		}
		a, err := prog.Assemble()
		if err != nil {
			t.Fatal(err)
		}
		b, err := back.Assemble()
		if err != nil {
			t.Fatalf("program %d: reassemble: %v", pi, err)
		}
		wa, _ := a.Bytes()
		wb, _ := b.Bytes()
		if string(wa) != string(wb) {
			t.Fatalf("program %d: wire images differ after text round trip\noriginal:\n%s\nreparsed:\n%s",
				pi, a, b)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"bogus", "unrecognised"},
		{"r99 = 1", "bad register"},
		{"r0 = 1\nif r0 == 1 jump x", "missing goto"},
		{"call nine", "bad helper id"},
		{"*(u24 *)(r1 + 0) = 1", "bad access width"},
		{"lock *(u8 *)(r1 + 0) += r2", "atomic add needs"},
		{"r0 = map[oops", "bad map reference"},
		{"end:", "label at end"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("%q: no error", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%q: error %q does not mention %q", tc.src, err, tc.want)
		}
	}
}

func TestParseListingOffsetsIgnored(t *testing.T) {
	// The disassembler prefixes wire offsets; the parser strips them.
	src := "   0: r0 = 7\n   1: exit\n"
	insns := mustParse(t, src)
	if len(insns) != 2 || insns[0].Constant != 7 {
		t.Fatalf("parsed: %v", insns)
	}
}
