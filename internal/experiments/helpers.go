package experiments

import (
	"encoding/binary"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/maps"
	"srv6bpf/internal/nf/progs"
)

// mustDMConf builds the dm_conf map for the Figure 3 encapsulation
// program: probe one packet in ratio, End.DM SID on S2, collector on
// the router itself.
func mustDMConf(ratio uint32) *maps.Map {
	conf := maps.MustNew(maps.Spec{
		Name: progs.DMConfMap, Type: maps.Array,
		KeySize: 4, ValueSize: progs.DMConfSize, MaxEntries: 1,
	})
	v := make([]byte, progs.DMConfSize)
	binary.LittleEndian.PutUint32(v[0:], ratio)
	binary.BigEndian.PutUint16(v[4:], 7788)
	ctrl := rAddr.As16()
	copy(v[8:24], ctrl[:])
	sid := dmSID.As16()
	copy(v[24:40], sid[:])
	if err := conf.Update(bpf.PutUint32(0), v, maps.UpdateAny); err != nil {
		panic(err)
	}
	return conf
}

// mustDMEvents builds the perf event array End.DM reports into.
func mustDMEvents() *maps.Map {
	return maps.MustNew(maps.Spec{
		Name: progs.DMEventsMap, Type: maps.PerfEventArray, MaxEntries: 1,
	})
}

// mapsOf assembles the availability set for program loading.
func mapsOf(conf, events *maps.Map) map[string]*maps.Map {
	m := make(map[string]*maps.Map)
	if conf != nil {
		m[progs.DMConfMap] = conf
	}
	if events != nil {
		m[progs.DMEventsMap] = events
	}
	return m
}
