package progs

import (
	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/asm"
	"srv6bpf/internal/core"
	"srv6bpf/internal/packet"
)

// §4.2 — hybrid access networks.
//
// The aggregation box and the CPE run the same LWT transit program:
// a per-packet Weighted Round-Robin scheduler that encapsulates each
// packet with a single-segment SRH steering it over one of the two
// access links (xDSL or LTE). Weights match the link capacities; the
// scheduler state (current link, remaining credit) lives in a map, as
// the paper describes ("We use maps to store the scheduler state,
// i.e. the weights and the last chosen path"). 120 SLOC of C in the
// paper.

// Map names for the WRR scheduler.
const (
	WRRConfMap  = "wrr_conf"  // array[1]: weights and SIDs
	WRRStateMap = "wrr_state" // array[1]: current link and credit
)

// WRRConf value layout (40 bytes):
//
//	off  size  field
//	  0     4  weight0 (packets per round on link 0)
//	  4     4  weight1
//	  8    16  sid0    (decap SID reachable over link 0, wire order)
//	 24    16  sid1    (decap SID reachable over link 1)
const (
	wrrConfOffW0   = 0
	wrrConfOffW1   = 4
	wrrConfOffSID0 = 8
	WRRConfSize    = 40
)

// WRRState value layout (8 bytes): u32 current link index, u32
// remaining credit on that link.
const (
	wrrStateOffIdx    = 0
	wrrStateOffCredit = 4
	WRRStateSize      = 8
)

// wrrSRHSize is the single-segment SRH the scheduler pushes.
const wrrSRHSize = 24

// WRRSpec builds the scheduler program.
func WRRSpec() *bpf.ProgramSpec {
	insns := asm.Instructions{
		asm.Mov64Reg(asm.R6, asm.R1),

		// r9 = &wrr_conf[0]
		asm.StoreImm(asm.RFP, -4, 0, asm.Word),
		asm.LoadMapPtr(asm.R1, WRRConfMap),
		asm.Mov64Reg(asm.R2, asm.RFP),
		asm.ALU64Imm(asm.Add, asm.R2, -4),
		asm.CallHelper(bpf.HelperMapLookupElem),
		asm.JumpImm(asm.JEq, asm.R0, 0, "out"), // unconfigured: pass
		asm.Mov64Reg(asm.R9, asm.R0),

		// r8 = &wrr_state[0]
		asm.StoreImm(asm.RFP, -4, 0, asm.Word),
		asm.LoadMapPtr(asm.R1, WRRStateMap),
		asm.Mov64Reg(asm.R2, asm.RFP),
		asm.ALU64Imm(asm.Add, asm.R2, -4),
		asm.CallHelper(bpf.HelperMapLookupElem),
		asm.JumpImm(asm.JEq, asm.R0, 0, "out"),
		asm.Mov64Reg(asm.R8, asm.R0),

		// r2 = idx, r3 = credit
		asm.LoadMem(asm.R2, asm.R8, wrrStateOffIdx, asm.Word),
		asm.LoadMem(asm.R3, asm.R8, wrrStateOffCredit, asm.Word),

		// if credit == 0 { idx ^= 1; credit = weight[idx] }
		asm.JumpImm(asm.JNE, asm.R3, 0, "have-credit"),
		asm.ALU64Imm(asm.Xor, asm.R2, 1),
		asm.ALU64Imm(asm.And, asm.R2, 1),
		// credit = conf->weight[idx]  (weights at offsets 0 and 4)
		asm.Mov64Reg(asm.R4, asm.R2),
		asm.ALU64Imm(asm.LSh, asm.R4, 2),
		asm.Mov64Reg(asm.R5, asm.R9),
		asm.ALU64Reg(asm.Add, asm.R5, asm.R4),
		asm.LoadMem(asm.R3, asm.R5, wrrConfOffW0, asm.Word),
		asm.JumpImm(asm.JNE, asm.R3, 0, "have-credit"),
		// Degenerate zero weight: force one packet so we never loop.
		asm.Mov64Imm(asm.R3, 1),

		// credit--; writeback state (direct map-value stores).
		asm.ALU64Imm(asm.Sub, asm.R3, 1).WithSymbol("have-credit"),
		asm.StoreMem(asm.R8, wrrStateOffIdx, asm.R2, asm.Word),
		asm.StoreMem(asm.R8, wrrStateOffCredit, asm.R3, asm.Word),

		// --- Single-segment SRH on the stack ---
		asm.StoreImm(asm.RFP, -24, 0, asm.Byte),                     // next header
		asm.StoreImm(asm.RFP, -23, wrrSRHSize/8-1, asm.Byte),        // hdr ext len = 2
		asm.StoreImm(asm.RFP, -22, packet.SRHRoutingType, asm.Byte), // type 4
		asm.StoreImm(asm.RFP, -21, 0, asm.Byte),                     // segments left
		asm.StoreImm(asm.RFP, -20, 0, asm.Byte),                     // last entry
		asm.StoreImm(asm.RFP, -19, 0, asm.Byte),                     // flags
		asm.StoreImm(asm.RFP, -18, 0, asm.Half),                     // tag

		// segment[0] = conf->sid[idx]: sid0 at +8, sid1 at +24.
		asm.ALU64Imm(asm.LSh, asm.R2, 4), // idx * 16
		asm.ALU64Imm(asm.Add, asm.R2, wrrConfOffSID0),
		asm.Mov64Reg(asm.R5, asm.R9),
		asm.ALU64Reg(asm.Add, asm.R5, asm.R2),
		asm.LoadMem(asm.R4, asm.R5, 0, asm.DWord),
		asm.StoreMem(asm.RFP, -16, asm.R4, asm.DWord),
		asm.LoadMem(asm.R4, asm.R5, 8, asm.DWord),
		asm.StoreMem(asm.RFP, -8, asm.R4, asm.DWord),

		// bpf_lwt_push_encap(ctx, BPF_LWT_ENCAP_SEG6, fp-24, 24)
		asm.Mov64Reg(asm.R1, asm.R6),
		asm.Mov64Imm(asm.R2, core.EncapSeg6),
		asm.Mov64Reg(asm.R3, asm.RFP),
		asm.ALU64Imm(asm.Add, asm.R3, -wrrSRHSize),
		asm.Mov64Imm(asm.R4, wrrSRHSize),
		asm.CallHelper(bpf.HelperLWTPushEncap),
		asm.JumpImm(asm.JNE, asm.R0, 0, "drop"),
		asm.JumpTo("out"),
	}
	insns = append(insns, epilogue(core.BPFOK)...)
	return &bpf.ProgramSpec{
		Name:         "wrr_sched",
		Instructions: insns,
		License:      "Dual MIT/GPL",
	}
}
