package netsim

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net/netip"
	"sort"

	"srv6bpf/internal/obs"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
)

// PacketMeta travels with a packet through one node.
type PacketMeta struct {
	// RxTimestamp is when the packet arrived at the node (the "RX
	// software timestamp" End.DM reads, §4.1).
	RxTimestamp int64
	// InIface is the receiving interface (nil for local output).
	InIface *Iface
	// Local marks locally-originated packets, which are exempt from
	// hop-limit decrement.
	Local bool
}

// Seg6LocalProgram is implemented by internal/core's End.BPF
// attachment. It runs the program against raw and reports the
// resulting seg6 verdict plus the virtual CPU cost of the BPF
// execution.
type Seg6LocalProgram interface {
	RunSeg6Local(n *Node, raw []byte, meta *PacketMeta) (seg6.Result, int64, error)
}

// LWTVerdict is the outcome of a transit (BPF LWT) program.
type LWTVerdict int

// LWT program verdicts (subset of BPF_OK/BPF_DROP relevant to the
// lwt_out hook; redirect semantics only exist for seg6local).
const (
	LWTOK LWTVerdict = iota
	LWTDrop
)

// LWTProgram is implemented by internal/core's LWT BPF attachment
// (the transit hook used for encapsulation, §2.1/§4.1/§4.2). It may
// return a rewritten packet.
type LWTProgram interface {
	RunLWTOut(n *Node, raw []byte, meta *PacketMeta) ([]byte, LWTVerdict, int64, error)
}

// UDPHandler receives locally-delivered UDP packets.
type UDPHandler func(n *Node, p *packet.Packet, meta *PacketMeta)

// commitOp selects the deferred effect of a processed packet. The
// routing functions fill a pendingCommit instead of returning a
// closure: the commit lives in a node field (checkpointed with the
// node), so the steady-state packet path allocates nothing.
type commitOp uint8

const (
	commitNone commitOp = iota
	// commitTransmit sends raw out of iface, decrementing the hop
	// limit first for transit packets.
	commitTransmit
	// commitLocal delivers raw to the node's local transport layer.
	commitLocal
	// commitFn runs fn (cold paths: ICMP error generation).
	commitFn
)

// pendingCommit is the deferred effect of one routed packet plus the
// packet's metadata. Node.pending carries it from a drain event to
// the drain continuation and is checkpointed with the node — the raw
// bytes it may share with heap events are guarded by the same pktEra
// machinery that guards the events themselves. Node.outPending is the
// intra-event twin for the Output path (routed and committed inside
// one event, so never checkpointed).
type pendingCommit struct {
	op       commitOp
	decHop   bool
	hopLimit uint8
	iface    *Iface
	raw      []byte
	era      uint64
	meta     PacketMeta
	fn       func()
}

// flowEntry caches one parsed flow inside a burst epoch. Validity is
// proven per lookup — same epoch, same length, byte-equal headers up
// to the L4 offset — so the cache is pure: Info is a function of the
// compared bytes, and a stale or rolled-back entry can only miss,
// never lie.
type flowEntry struct {
	rawLen int
	hdr    []byte // copy of raw[:info.L4Off] at fill time
	info   packet.Info
	src    netip.Addr
	dst    netip.Addr
	// r memoises the main-table lookup for dst, valid while rVer still
	// equals the table's version (routes cannot change during
	// speculation, so a version match is also rollback-safe). Fills
	// reset rVer to the sentinel so a recycled entry can never leak the
	// previous flow's route.
	r    *Route
	rVer uint64
}

// flowRouteInvalid marks a flowEntry's route memo as unfilled; table
// versions count up from zero and cannot reach it.
const flowRouteInvalid = ^uint64(0)

// routeMemoEntry caches one main-table FIB walk; valid while the
// table version still matches. Versions only ever increase (routes
// cannot change during speculation, so rollback cannot rewind one),
// making (version, dst) → route a pure function.
type routeMemoEntry struct {
	dst netip.Addr
	r   *Route
	ver uint64
}

// rxItem is one packet waiting in the receive ring.
type rxItem struct {
	raw  []byte
	meta PacketMeta
	// cross marks a cross-shard delivery: its bytes are shared with
	// the optimistic engine's input log, so processing must not
	// mutate them in place. ckptSeq is the owning shard's checkpoint
	// count when the delivery event was created: if it still matches
	// at processing time, no retained checkpoint references the
	// buffer (see Node.drain).
	cross   bool
	ckptSeq uint64
}

// Counter is a pre-resolved handle to one named counter cell. The
// forwarding fast path increments through handles resolved once at
// node creation instead of hashing a string key per packet; the
// Counters() map remains the read-side view over the same cells.
type Counter struct{ cell *uint64 }

// Inc bumps the counter.
func (c Counter) Inc() { *c.cell++ }

// Add bumps the counter by d.
func (c Counter) Add(d uint64) { *c.cell += d }

// Value reads the counter.
func (c Counter) Value() uint64 { return *c.cell }

// hotCounters are the handles the per-packet paths touch.
type hotCounters struct {
	rxRingFull         Counter
	dropMalformed      Counter
	dropNoRoute        Counter
	dropRouteLoop      Counter
	dropHopLimit       Counter
	dropNoNexthop      Counter
	dropSeg6Local      Counter
	dropSeg6LocalError Counter
	dropLWTBPF         Counter
	dropLWTBPFError    Counter
	dropMalformedLocal Counter
	dropLinkDown       Counter
	backupTx           Counter
	udpDelivered       Counter
	tcpDelivered       Counter
	icmpDelivered      Counter
}

// maxRouteDepth bounds recursive route resolution (behaviour chains,
// encapsulation re-lookups).
const maxRouteDepth = 6

// Node is a simulated host or router: interfaces, routing tables, a
// single-core CPU with a receive ring, and a local transport layer.
type Node struct {
	Name string
	Sim  *Sim
	Cost CostModel

	// idx is the node's global creation index: the src half of every
	// event key this node schedules.
	idx int32
	// shard owns this node's events; in an unsharded sim it is the
	// sim's only shard.
	shard *shard
	// rng is the node's private random stream, derived from the sim
	// seed and the node name: draws are independent of other nodes'
	// activity, so ECMP tie-breaking and netem jitter stay
	// deterministic under any shard count. It draws from rngSrc, a
	// single-word splitmix64 source, so checkpoints capture and
	// restore the stream exactly.
	rng    *rand.Rand
	rngSrc randSource
	// schedK numbers this node's Schedule calls (the k half of the
	// event key).
	schedK uint64

	ifaces []*Iface
	tables map[int]*Table
	// mainTbl hoists tables[MainTable] out of the per-packet map
	// access. Table objects are created once and never replaced
	// (Table() only ever inserts), so the pointer stays valid for the
	// node's lifetime — including across optimistic rollbacks, which
	// restore table *contents* in place.
	mainTbl *Table
	// tableOrder lists the table ids in sorted order (maintained on
	// table creation), so checkpoint snapshots iterate the FIB
	// deterministically without sorting per snapshot.
	tableOrder []int
	local      map[netip.Addr]bool
	// primary is the address used as source for generated ICMP.
	primary netip.Addr

	udpHandlers map[uint16]UDPHandler
	tcpHandler  func(n *Node, p *packet.Packet, meta *PacketMeta)
	icmpHandler func(n *Node, p *packet.Packet, meta *PacketMeta)
	// l2Handler receives Ethernet frames decapsulated by End.DX2.
	l2Handler func(n *Node, frame []byte, meta *PacketMeta)

	// ifaceInputs binds an interface to the return leg of an SR proxy
	// (End.AS / End.AM): packets arriving on it run the behaviour's
	// Inbound step instead of a FIB lookup. ifaceTables binds an
	// interface to a routing table (VRF-style per-tenant lookup for
	// the End.DT* scenarios). Both are configuration, like
	// udpHandlers: set at topology-build time, not checkpointed.
	ifaceInputs map[*Iface]*seg6.Behaviour
	ifaceTables map[*Iface]int

	// rxq is a ring buffer: rxCount items starting at rxHead. It
	// grows geometrically up to Cost.RxRingPackets, so draining one
	// packet is two index updates, not a slice reallocation.
	rxq     []rxItem
	rxHead  int
	rxCount int
	busy    bool

	// counters holds the interned counter cells; Counter handles
	// point into it. Counters() materialises the read-side map.
	// counterNames/counterCells repeat the interning in order, so a
	// checkpoint snapshots the whole set as one flat value copy and a
	// rollback can forget cells interned during undone speculation.
	counters     map[string]*uint64
	counterNames []string
	counterCells []*uint64
	hot          hotCounters

	// crashed marks the node as down: the CPU halts, the receive ring
	// is lost and all local link ends are failed until restart.
	// crashEpoch counts crashes; CPU continuations capture it when
	// scheduled and become no-ops if a crash intervened, so work from a
	// previous incarnation never leaks past a restart.
	crashed    bool
	crashEpoch uint64

	// dirty marks the node as mutated since its last fresh checkpoint
	// snapshot: event execution, packet receive, interface flips and
	// counter interning all set it. The optimistic engine's
	// incremental checkpoints copy only dirty nodes; a clean node's
	// entry aliases the previous checkpoint's snapshot.
	dirty bool
	// pktEra is the shard's checkpoint count when the packet this
	// node is currently processing last became private (copied or
	// freshly built). Transmit stamps it into same-shard delivery
	// events instead of the current count: a checkpoint taken while
	// the packet sits in a pending commit closure makes its buffer
	// rollback-reachable, and the stale stamp is what tells the
	// receiving drain to copy before mutating (see Node.drain).
	pktEra uint64

	// pending is the deferred effect of the packet currently being
	// processed by the drain chain: filled at routing time, applied by
	// the drain continuation at processing-completion time. It is part
	// of the node's checkpointed state — a checkpoint taken between a
	// drain and its continuation captures it by value (sharing the raw
	// bytes, which the pktEra machinery already guards). outPending is
	// the same storage for the Output path, which routes and commits
	// inside one event and therefore never needs checkpointing.
	pending    pendingCommit
	outPending pendingCommit

	// burst is the sim's packet-burst knob (Sim.SetBurst); 1 disables
	// all burst caching. burstSeq is the current burst-cache epoch:
	// bumped whenever a new burst starts and on every crash or
	// rollback restore, it gates attachment bind-skipping (the one
	// burst cache that is not self-validating). burstLeft counts
	// packets remaining in the current epoch; burstNextAt is when
	// processing of the last packet completes — the epoch extends only
	// while the next drain lands exactly there (back-to-back CPU work
	// at one virtual instant per the same-timestamp eligibility rule).
	burst       int
	burstLeft   int
	burstNextAt int64
	burstSeq    uint64

	// flows is the burst-mode parse cache (two entries: SRH advance at
	// an endpoint alternates pre/post-advance byte patterns), and
	// routeMemo the FIB memo for the main table. Both are pure caches:
	// validity is proven per lookup against a private header copy
	// (byte equality + length) or the table version, both functions of
	// nothing but the probed input. They therefore need no epoch
	// gating and no snapshot — rollback cannot make a matching entry
	// wrong, only unused — and survive idle gaps in the drain cadence
	// (a sink whose packets arrive slower than it drains them still
	// hits the cache).
	flows     [2]flowEntry
	flowClock uint8
	routeMemo [4]routeMemoEntry
	memoClock uint8

	// scratchPkt/scratchSRH back deliverLocal's allocation-free parse.
	// The *packet.Packet handed to local handlers aliases them and is
	// valid only for the duration of the handler call.
	scratchPkt packet.Packet
	scratchSRH packet.SRH
	// scratchHdr/scratchRawLen validate reusing scratchPkt without
	// reparsing: every Packet field except Raw is a function of
	// raw[:L4Off] (transport ports and payload are read from Raw by
	// the handlers), so when a later same-length packet matches those
	// bytes exactly, the previous parse is the correct parse and only
	// Raw needs rebinding. scratchHdr is a private copy, so the check
	// is pure — no epoch gating needed (see the flows comment). An
	// empty scratchHdr means no valid parse is cached.
	scratchHdr    []byte
	scratchRawLen int

	// stateHooks are the ShardState components checkpointed with this
	// node (traffic generators, NF control loops, journals).
	stateHooks []stateHook

	// obs points at the sim's observability plane; nil keeps the hot
	// path to a single pointer compare per hop. traceBuf is this
	// node's flight-recorder journal (nil unless the recorder is on);
	// spanIdx indexes the span of the hop currently being processed,
	// -1 between hops and for unsampled packets — the datapath's
	// verdict hooks test it, making them free when recording is off.
	obs      *simObs
	traceBuf *obs.TraceBuf
	spanIdx  int

	// Trace, when set, receives a line per interesting event.
	Trace func(format string, args ...any)
}

// AddNode creates a node in s with the given cost model. Add every
// node before calling Sim.SetShards: the shard partition is computed
// over the node set.
func (s *Sim) AddNode(name string, cost CostModel) *Node {
	if len(s.shards) > 1 {
		panic("netsim: AddNode after SetShards; build the topology first")
	}
	n := &Node{
		Name:        name,
		Sim:         s,
		Cost:        cost,
		idx:         int32(len(s.nodes)),
		shard:       s.shards[0],
		rngSrc:      randSource{state: uint64(nodeSeed(s.seed, name))},
		tables:      map[int]*Table{MainTable: {}},
		tableOrder:  []int{MainTable},
		local:       make(map[netip.Addr]bool),
		udpHandlers: make(map[uint16]UDPHandler),
		counters:    make(map[string]*uint64),
		spanIdx:     -1,
		burst:       s.burst,
	}
	n.rng = rand.New(&n.rngSrc)
	if s.obs != nil {
		s.obs.attachNode(n)
	}
	n.hot = hotCounters{
		rxRingFull:         n.CounterHandle("rx_ring_full"),
		dropMalformed:      n.CounterHandle("drop_malformed"),
		dropNoRoute:        n.CounterHandle("drop_no_route"),
		dropRouteLoop:      n.CounterHandle("drop_route_loop"),
		dropHopLimit:       n.CounterHandle("drop_hop_limit"),
		dropNoNexthop:      n.CounterHandle("drop_no_nexthop"),
		dropSeg6Local:      n.CounterHandle("drop_seg6local"),
		dropSeg6LocalError: n.CounterHandle("drop_seg6local_error"),
		dropLWTBPF:         n.CounterHandle("drop_lwt_bpf"),
		dropLWTBPFError:    n.CounterHandle("drop_lwt_bpf_error"),
		dropMalformedLocal: n.CounterHandle("drop_malformed_local"),
		dropLinkDown:       n.CounterHandle("drop_link_down"),
		backupTx:           n.CounterHandle("backup_tx"),
		udpDelivered:       n.CounterHandle("udp_delivered"),
		tcpDelivered:       n.CounterHandle("tcp_delivered"),
		icmpDelivered:      n.CounterHandle("icmp_delivered"),
	}
	s.nodes = append(s.nodes, n)
	return n
}

// nodeSeed splits a per-node stream from the sim seed: FNV-1a over
// the node name, folded into the seed. Depends only on (seed, name),
// never on creation interleaving or shard layout.
func nodeSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// Now returns the virtual time of this node's shard — exact inside
// events in both sequential and sharded runs. Code executing on
// behalf of a node should prefer it over Sim.Now.
func (n *Node) Now() int64 { return n.shard.now }

// Rand returns the node's private random stream (netem jitter/loss on
// the node's egress links, BPF get_prandom on this node).
func (n *Node) Rand() *rand.Rand { return n.rng }

// CrashResettable is implemented by registered ShardState components
// whose runtime state lives in the node's memory and therefore does
// not survive a node crash (NF daemons, detectors, caches). On crash
// the component is reset in place — distinct from RestoreState, which
// rewinds to a snapshot: a restarted daemon comes up empty, not at
// its pre-crash state. Durable state (configuration, counters kept by
// the test harness) is the component's own concern.
type CrashResettable interface {
	CrashReset()
}

// Crashed reports whether the node is currently down.
func (n *Node) Crashed() bool { return n.crashed }

// crashNow takes the node down at the current virtual instant: the
// receive ring is flushed (counted as crash_rx_lost), every local
// link end fails (in-flight packets towards the node die), and
// registered NF state implementing CrashResettable is reset. Counters
// survive — they model the observer, not the node's RAM. Runs on the
// node's shard; peers' link ends flip in their own shards (see
// Sim.CrashNode). Crashing a crashed node is a no-op.
func (n *Node) crashNow() {
	if n.crashed {
		return
	}
	n.dirty = true
	n.crashed = true
	n.crashEpoch++
	n.Count("node_crash")
	if n.rxCount > 0 {
		*n.internCounter("crash_rx_lost") += uint64(n.rxCount)
		for n.rxCount > 0 {
			n.rxPop()
		}
	}
	n.busy = false
	// The packet being processed dies with the box; any cached burst
	// state belongs to the previous incarnation.
	n.pending = pendingCommit{}
	n.burstSeq++
	n.burstLeft = 0
	for _, i := range n.ifaces {
		i.setOneEnd(false)
	}
	for _, h := range n.stateHooks {
		if cr, ok := h.s.(CrashResettable); ok {
			cr.CrashReset()
		}
	}
	if n.Trace != nil {
		n.Trace("%s: crashed", n.Name)
	}
}

// restartNow brings a crashed node back: local link ends come up and
// the (empty) CPU is ready to receive. Restarting a running node is a
// no-op.
func (n *Node) restartNow() {
	if !n.crashed {
		return
	}
	n.dirty = true
	n.crashed = false
	n.Count("node_restart")
	for _, i := range n.ifaces {
		i.setOneEnd(true)
	}
	if n.Trace != nil {
		n.Trace("%s: restarted", n.Name)
	}
}

// stateHook pairs a registered ShardState with its state at
// registration time, so a rollback that crosses the registration
// point can rewind the component and unhook it again.
type stateHook struct {
	s   ShardState
	reg any
}

// RegisterState attaches a component's mutable state to this node's
// checkpoint/rollback machinery: under the optimistic engine the
// component is snapshotted with the node and rewound on rollback.
// Components whose state is mutated from events (traffic generators,
// NF control loops, test observers) must register, or speculative
// execution would leak into their committed state.
//
// Call it from setup code or from an event running on this node's
// shard. Registering the same value twice is a no-op; the value must
// be of a comparable type (implementations are pointers in practice).
func (n *Node) RegisterState(s ShardState) {
	for _, h := range n.stateHooks {
		if h.s == s {
			return
		}
	}
	n.dirty = true
	n.stateHooks = append(n.stateHooks, stateHook{s: s, reg: s.SnapshotState()})
}

// Schedule runs fn at absolute virtual time at (clamped to now) on
// this node's shard. Use it — not Sim.Schedule — for any event that
// touches this node's state; in a sharded run that routing is what
// keeps the event on the owning shard's goroutine.
func (n *Node) Schedule(at int64, fn func()) {
	sh := n.shard
	if at < sh.now {
		at = sh.now
	}
	n.dirty = true
	n.schedK++
	sh.push(event{at: at, schedAt: sh.now, src: n.idx, k: n.schedK, fn: fn})
}

// After runs fn d nanoseconds from the node's now on its shard.
func (n *Node) After(d int64, fn func()) { n.Schedule(n.shard.now+d, fn) }

// CounterHandle interns name and returns its pre-resolved handle.
// Resolve once, increment per packet.
func (n *Node) CounterHandle(name string) Counter {
	return Counter{cell: n.internCounter(name)}
}

// internCounter returns (creating if needed) the cell for name,
// recording creation order so checkpoints snapshot the set as a flat
// slice and rollback can forget speculatively interned cells.
func (n *Node) internCounter(name string) *uint64 {
	c := n.counters[name]
	if c == nil {
		c = new(uint64)
		n.dirty = true
		n.counters[name] = c
		n.counterNames = append(n.counterNames, name)
		n.counterCells = append(n.counterCells, c)
	}
	return c
}

// Count bumps a named counter. Cold paths use it directly; per-packet
// paths go through pre-resolved handles instead.
func (n *Node) Count(what string) {
	*n.internCounter(what)++
}

// Counters returns the read-side view of all counters: free-form
// event accounting ("drop_no_route", "rx_ring_full", ...). Read it in
// tests and reports; the snapshot is freshly built per call. Polling
// loops should reuse a map through CountersInto instead.
func (n *Node) Counters() map[string]uint64 {
	out := make(map[string]uint64, len(n.counters))
	n.CountersInto(out)
	return out
}

// CountersInto writes the current counter values into m without
// allocating: the zero-alloc read side for hot polling loops that
// sample hundreds of nodes per virtual tick. Keys absent from the
// node's counter set are left untouched, so clear or reuse m
// deliberately.
func (n *Node) CountersInto(m map[string]uint64) {
	for k, v := range n.counters {
		m[k] = *v
	}
}

// Ifaces returns the node's interfaces.
func (n *Node) Ifaces() []*Iface { return n.ifaces }

// AddAddress assigns a local address: the node delivers packets for
// it locally.
func (n *Node) AddAddress(addr netip.Addr) {
	n.local[addr] = true
	if !n.primary.IsValid() {
		n.primary = addr
	}
	n.Table(MainTable).Add(&Route{
		Prefix: netip.PrefixFrom(addr, addr.BitLen()),
		Kind:   RouteLocal,
	})
}

// PrimaryAddress returns the node's first assigned address.
func (n *Node) PrimaryAddress() netip.Addr { return n.primary }

// IsLocal reports whether addr is assigned to this node.
func (n *Node) IsLocal(addr netip.Addr) bool { return n.local[addr] }

// Table returns (creating if needed) the routing table with id.
func (n *Node) Table(id int) *Table {
	t, ok := n.tables[id]
	if !ok {
		t = &Table{}
		n.dirty = true
		n.tables[id] = t
		n.tableOrder = append(n.tableOrder, id)
		sort.Ints(n.tableOrder)
	}
	return t
}

// AddRoute validates r and inserts it into the main table. Like the
// kernel's build_state for lightweight tunnels, behaviour parameters
// are checked at install time: a seg6local route whose behaviour the
// registry rejects (missing nexthop, unsupported flavor, no SRH) never
// makes it into the FIB, instead of silently eating packets later.
func (n *Node) AddRoute(r *Route) error {
	if err := validateRoute(r); err != nil {
		return err
	}
	n.Table(MainTable).Add(r)
	return nil
}

// validateRoute applies the install-time checks of AddRoute.
func validateRoute(r *Route) error {
	switch r.Kind {
	case RouteSeg6Local:
		if r.Behaviour == nil {
			return fmt.Errorf("netsim: seg6local route %s has no behaviour", r.Prefix)
		}
		return seg6.Validate(r.Behaviour)
	case RouteSeg6Encap:
		if r.SRH == nil {
			return fmt.Errorf("netsim: seg6 encap route %s has no SRH", r.Prefix)
		}
		if _, err := r.SRH.ActiveSegment(); err != nil {
			return fmt.Errorf("netsim: seg6 encap route %s: %w", r.Prefix, err)
		}
	}
	return nil
}

// Lookup performs a FIB lookup in the given table.
func (n *Node) Lookup(dst netip.Addr, table int) *Route {
	return n.tables[table].Lookup(dst)
}

// HandleUDP registers a UDP listener on port.
func (n *Node) HandleUDP(port uint16, h UDPHandler) { n.udpHandlers[port] = h }

// HandleTCP registers the node's TCP input (internal/tcpsim).
func (n *Node) HandleTCP(h func(n *Node, p *packet.Packet, meta *PacketMeta)) {
	n.tcpHandler = h
}

// HandleICMP registers the node's ICMPv6 input (traceroute clients).
func (n *Node) HandleICMP(h func(n *Node, p *packet.Packet, meta *PacketMeta)) {
	n.icmpHandler = h
}

// HandleL2 registers the node's Ethernet input: End.DX2 without an
// OIF hands decapsulated frames here.
func (n *Node) HandleL2(h func(n *Node, frame []byte, meta *PacketMeta)) {
	n.l2Handler = h
}

// BindProxyReturn wires the return leg of an SR proxy: packets
// arriving on in run b's Inbound step (End.AS re-encapsulation,
// End.AM de-masquerading) instead of a FIB lookup. b is normally the
// same Behaviour installed under the proxy's SID.
func (n *Node) BindProxyReturn(in *Iface, b *seg6.Behaviour) error {
	if in == nil || in.Node != n {
		return fmt.Errorf("netsim: BindProxyReturn: interface does not belong to %s", n.Name)
	}
	sp := seg6.Lookup(b.Action)
	if sp == nil || sp.Inbound == nil {
		return fmt.Errorf("netsim: BindProxyReturn: %v has no inbound step", b.Action)
	}
	if err := seg6.Validate(b); err != nil {
		return err
	}
	if n.ifaceInputs == nil {
		n.ifaceInputs = make(map[*Iface]*seg6.Behaviour)
	}
	n.ifaceInputs[in] = b
	return nil
}

// BindIfaceTable routes packets arriving on in through table instead
// of the main table — the VRF binding of an L3VPN PE's CE-facing
// interface (ip route ... vrf / table semantics).
func (n *Node) BindIfaceTable(in *Iface, table int) error {
	if in == nil || in.Node != n {
		return fmt.Errorf("netsim: BindIfaceTable: interface does not belong to %s", n.Name)
	}
	if n.ifaceTables == nil {
		n.ifaceTables = make(map[*Iface]int)
	}
	n.ifaceTables[in] = table
	return nil
}

// deliver is called by the link layer when a packet arrives. It
// models the NIC ring: if the CPU is still busy and the ring is full,
// the packet is dropped — this is how offered load beyond the node's
// packet rate disappears, exactly like the paper's router receiving 3
// Mpps but forwarding 610 kpps.
func (n *Node) deliver(raw []byte, in *Iface, cross bool, ckptSeq uint64) {
	n.dirty = true
	if n.crashed {
		// The links go down with the node, so normally nothing arrives
		// here; this guards same-instant races around the crash event.
		n.Count("crash_rx_lost")
		return
	}
	if !n.rxPush(rxItem{
		raw:     raw,
		meta:    PacketMeta{RxTimestamp: n.Now(), InIface: in},
		cross:   cross,
		ckptSeq: ckptSeq,
	}) {
		n.hot.rxRingFull.Inc()
		return
	}
	if !n.busy {
		n.busy = true
		// Same event key Schedule(now, n.drain) would assign, but pure
		// data: the continuation starts the CPU loop with no pending
		// commit to apply.
		n.scheduleDrainCont(0)
	}
}

// rxPush appends to the receive ring, growing it geometrically up to
// the NIC ring size. It reports false when the ring is full. Ring
// capacity is always a power of two so push/pop index with a mask;
// occupancy is still capped at exactly Cost.RxRingPackets, which need
// not be a power of two itself.
func (n *Node) rxPush(item rxItem) bool {
	if n.rxCount >= n.Cost.RxRingPackets {
		return false
	}
	if n.rxCount == len(n.rxq) {
		newCap := 2 * len(n.rxq)
		if newCap < 64 {
			newCap = 64
		}
		buf := make([]rxItem, newCap)
		mask := len(n.rxq) - 1
		for i := 0; i < n.rxCount; i++ {
			buf[i] = n.rxq[(n.rxHead+i)&mask]
		}
		n.rxq = buf
		n.rxHead = 0
	}
	n.rxq[(n.rxHead+n.rxCount)&(len(n.rxq)-1)] = item
	n.rxCount++
	return true
}

// rxPop removes the oldest ring entry, releasing its packet bytes.
func (n *Node) rxPop() rxItem {
	item := n.rxq[n.rxHead]
	n.rxq[n.rxHead] = rxItem{}
	n.rxHead = (n.rxHead + 1) & (len(n.rxq) - 1)
	n.rxCount--
	return item
}

// drain is the CPU loop: take one packet, process it (computing its
// cost), apply its effects at completion time, continue.
func (n *Node) drain() {
	if n.rxCount == 0 {
		n.busy = false
		return
	}
	item := n.rxPop()
	if n.Sim.engine == EngineOptimistic && len(n.Sim.shards) > 1 &&
		(item.cross || item.ckptSeq != n.shard.ckptSeq) {
		// Processing mutates packet bytes in place (SRH advance, hop
		// limit). Under speculation the bytes may be shared with
		// rollback state — a checkpoint snapshot (heap closure or ring
		// item) when a checkpoint intervened since the buffer last
		// became private, or the cross-shard input log — so such hops
		// work on a private copy and the shared original stays
		// pristine for re-execution. A same-shard hop inside one
		// checkpoint era (the common case once the controller
		// stretches the checkpoint stride) mutates in place: nothing
		// retained can reference it.
		item.raw = append([]byte(nil), item.raw...)
	}
	// This hop's buffer is private as of the current era: either it
	// was just copied, or the stamp proved no checkpoint has seen it.
	n.pktEra = n.shard.ckptSeq

	// Burst accounting: a burst epoch covers the packets this CPU
	// processes back to back — it extends exactly while the drain
	// continuation lands at the instant processing of the previous
	// packet finished (the CPU never went idle in between). Epochs
	// gate attachment bind-skipping and nothing else (the flow and
	// route caches self-validate): costs, the event schedule and
	// every counter are identical at any burst size.
	if n.burst > 1 {
		if n.burstLeft <= 0 || n.shard.now != n.burstNextAt {
			n.burstSeq++
			n.burstLeft = n.burst
		}
		n.burstLeft--
	}

	cost := n.Cost.PacketCost(len(item.raw))
	pc := &n.pending
	*pc = pendingCommit{meta: item.meta}
	if n.obs != nil {
		n.obsBeginHop(item.raw, n.Now()-pc.meta.RxTimestamp)
	}
	cost += n.routePacket(item.raw, pc, 0)
	if n.obs != nil {
		n.obsEndHop(cost)
	}
	if n.burst > 1 {
		n.burstNextAt = n.shard.now + cost
	}

	// A crash between now and processing completion discards the
	// packet mid-flight and halts the CPU loop: the continuation
	// belongs to this incarnation only (it carries the crash epoch).
	n.scheduleDrainCont(cost)
}

// scheduleDrainCont schedules the drain continuation d ns from now:
// the event that applies the pending packet effects and pops the next
// packet. Same event key a Node.After closure would get, but pure
// data — no allocation per processed packet.
func (n *Node) scheduleDrainCont(d int64) {
	sh := n.shard
	n.dirty = true
	n.schedK++
	sh.push(event{
		at: sh.now + d, schedAt: sh.now, src: n.idx, k: n.schedK,
		kind: evDrainCont, epoch: n.crashEpoch,
	})
}

// drainCont is the drain continuation: apply the previous packet's
// deferred effects, then continue the CPU loop. A continuation
// scheduled by a previous crash incarnation is dead.
func (n *Node) drainCont(epoch uint64) {
	if n.crashEpoch != epoch {
		return
	}
	if n.pending.op != commitNone {
		n.runCommit(&n.pending)
	}
	n.pending = pendingCommit{}
	n.drain()
}

// runCommit applies a filled pendingCommit. Payload fields are copied
// to locals and cleared before dispatch: commits can re-enter the
// routing path (handlers calling Output), which reuses the same
// storage.
func (n *Node) runCommit(pc *pendingCommit) {
	op := pc.op
	pc.op = commitNone
	switch op {
	case commitTransmit:
		raw, iface := pc.raw, pc.iface
		pc.raw, pc.iface = nil, nil
		if pc.decHop {
			packet.SetHopLimit(raw, pc.hopLimit-1)
		}
		n.pktEra = pc.era
		iface.Transmit(raw)
	case commitLocal:
		raw := pc.raw
		pc.raw = nil
		n.deliverLocal(raw, &pc.meta)
	case commitFn:
		fn := pc.fn
		pc.fn = nil
		fn()
	}
}

// Output injects a locally-generated packet into the routing path.
// Generation cost is the caller's concern (traffic generators pace
// themselves), so no CPU time is charged here.
func (n *Node) Output(raw []byte) {
	// A locally-built packet is private as of now; routing and its
	// commit run inside this event, so no checkpoint can intervene
	// before the transmit stamps the era.
	n.outputFrom(n.shard.ckptSeq, raw)
}

// outputFrom is Output for a packet whose bytes became private in an
// earlier checkpoint era — a buffer built at drain time but emitted
// from a deferred commit closure (icmpError). Stamping the buffer's
// own era keeps the copy-elision honest: if a checkpoint captured the
// pending closure, receivers must copy before mutating.
func (n *Node) outputFrom(era uint64, raw []byte) {
	if n.crashed {
		// Application timers keep firing through a crash (the process
		// schedule outlives the box in this model), but nothing leaves
		// a dead node.
		n.Count("crash_tx_lost")
		return
	}
	n.pktEra = era
	pc := &n.outPending
	*pc = pendingCommit{meta: PacketMeta{RxTimestamp: n.Now(), Local: true}}
	if n.obs != nil {
		n.obsBeginHop(raw, 0)
	}
	n.routePacket(raw, pc, 0)
	if n.obs != nil {
		n.obsEndHop(0)
	}
	if pc.op != commitNone {
		n.runCommit(pc)
	}
}

// routePacket resolves raw against the main table, writing the effect
// to apply at processing-completion time into pc and returning any
// extra cost beyond the base packet cost.
func (n *Node) routePacket(raw []byte, pc *pendingCommit, depth int) int64 {
	// Interface-bound dispatch runs before the FIB: the return leg of
	// an SR proxy and VRF table bindings key on the arrival interface.
	// Unconfigured nodes pay two nil compares.
	if depth == 0 && pc.meta.InIface != nil &&
		(n.ifaceInputs != nil || n.ifaceTables != nil) {
		if b, ok := n.ifaceInputs[pc.meta.InIface]; ok {
			return n.proxyReturn(b, raw, pc, depth)
		}
		if t, ok := n.ifaceTables[pc.meta.InIface]; ok {
			dst, err := packet.DstAddr(raw)
			if err != nil {
				n.hot.dropMalformed.Inc()
				return 0
			}
			return n.applyRoute(n.Lookup(dst, t), raw, pc, nil, depth)
		}
	}
	fe := n.flowLookup(raw)
	var r *Route
	if fe != nil {
		// Flow hit: serve the route straight from the flow entry when
		// the main table hasn't changed since it was cached — one
		// version compare instead of the route-memo probe loop.
		if t := n.mainTable(); fe.rVer == t.version {
			r = fe.r
		} else {
			r = t.Lookup(fe.dst)
			fe.r, fe.rVer = r, t.version
		}
	} else {
		// DstAddr is version-dispatching: a decapsulated IPv4 packet
		// (End.DT4/DT46) routes through the same tables.
		dst, err := packet.DstAddr(raw)
		if err != nil {
			n.hot.dropMalformed.Inc()
			return 0
		}
		r = n.lookupMain(dst)
	}
	return n.applyRoute(r, raw, pc, fe, depth)
}

// applyRoute dispatches on the route kind. fe is the packet's flow
// cache entry when routePacket had one for these exact bytes (nil
// otherwise, and always nil for rewritten packets).
func (n *Node) applyRoute(r *Route, raw []byte, pc *pendingCommit, fe *flowEntry, depth int) int64 {
	if depth > maxRouteDepth {
		n.hot.dropRouteLoop.Inc()
		if n.spanIdx >= 0 {
			n.obsVerdict("drop")
		}
		return 0
	}
	if r == nil {
		n.hot.dropNoRoute.Inc()
		if n.spanIdx >= 0 {
			n.obsVerdict("drop")
		}
		if fn := n.icmpError(raw, &pc.meta, packet.ICMPv6DstUnreachable, 0); fn != nil {
			pc.op, pc.fn = commitFn, fn
		}
		return n.Cost.ICMPGenNs
	}

	switch r.Kind {
	case RouteLocal:
		if n.spanIdx >= 0 {
			n.obsRoute("local")
			n.obsVerdict("local")
		}
		pc.op, pc.raw = commitLocal, raw
		return n.Cost.LocalDeliverNs

	case RouteForward:
		if n.spanIdx >= 0 {
			n.obsRoute("forward")
		}
		return n.forward(r, raw, pc, fe)

	case RouteSeg6Local:
		if n.spanIdx >= 0 {
			n.obsRoute("seg6local")
		}
		return n.applySeg6Local(r, raw, pc, fe, depth)

	case RouteSeg6Encap:
		if n.spanIdx >= 0 {
			n.obsRoute("seg6encap")
		}
		return n.applySeg6Encap(r, raw, pc, depth)

	case RouteLWTBPF:
		if n.spanIdx >= 0 {
			n.obsRoute("lwt_bpf")
			n.obsBehavior("LWT.BPF")
		}
		prog, ok := r.BPF.(LWTProgram)
		if !ok {
			n.Count("drop_bad_lwt_attachment")
			if n.spanIdx >= 0 {
				n.obsVerdict("drop")
			}
			return 0
		}
		out, verdict, cost, err := prog.RunLWTOut(n, raw, &pc.meta)
		if err != nil {
			n.hot.dropLWTBPFError.Inc()
			if n.Trace != nil {
				n.Trace("%s: lwt bpf error: %v", n.Name, err)
			}
			if n.spanIdx >= 0 {
				n.obsVerdict("error")
			}
			return cost
		}
		if verdict == LWTDrop {
			n.hot.dropLWTBPF.Inc()
			if n.spanIdx >= 0 {
				n.obsVerdict("drop")
			}
			return cost
		}
		if len(r.Nexthops) > 0 {
			// The route supplies the egress directly.
			return cost + n.forward(r, out, pc, nil)
		}
		// Otherwise the (possibly re-encapsulated) packet is routed
		// again, e.g. towards the SID the program steered it to.
		return cost + n.routePacket(out, pc, depth+1)

	default:
		n.Count("drop_bad_route")
		if n.spanIdx >= 0 {
			n.obsVerdict("drop")
		}
		return 0
	}
}

// forward handles hop limit, ECMP and backup-route protection,
// committing the transmission.
func (n *Node) forward(r *Route, raw []byte, pc *pendingCommit, fe *flowEntry) int64 {
	var src, dst netip.Addr
	var hopLimit uint8
	var flowLabel uint32
	if fe != nil {
		// The flow cache proved these bytes already: reuse the parsed
		// header fields without touching the packet again.
		src, dst = fe.src, fe.dst
		hopLimit, flowLabel = fe.info.HopLimit, fe.info.FlowLabel
	} else if packet.IPVersion(raw) == 4 {
		// Decapsulated IPv4 (End.DT4/DT46 towards a CE): same ECMP and
		// TTL handling, no flow label.
		hdr, err := packet.DecodeIPv4(raw)
		if err != nil {
			n.hot.dropMalformed.Inc()
			if n.spanIdx >= 0 {
				n.obsVerdict("drop")
			}
			return 0
		}
		src, dst = hdr.Src, hdr.Dst
		hopLimit, flowLabel = hdr.TTL, 0
	} else {
		hdr, err := packet.DecodeIPv6(raw)
		if err != nil {
			n.hot.dropMalformed.Inc()
			if n.spanIdx >= 0 {
				n.obsVerdict("drop")
			}
			return 0
		}
		src, _ = packet.IPv6Src(raw)
		dst, _ = packet.IPv6Dst(raw)
		hopLimit, flowLabel = hdr.HopLimit, hdr.FlowLabel
	}
	if !pc.meta.Local {
		if hopLimit <= 1 {
			n.hot.dropHopLimit.Inc()
			if n.spanIdx >= 0 {
				n.obsVerdict("drop")
			}
			if fn := n.icmpError(raw, &pc.meta, packet.ICMPv6TimeExceeded, 0); fn != nil {
				pc.op, pc.fn = commitFn, fn
			}
			return n.Cost.ICMPGenNs
		}
	}
	nh, viaBackup := r.SelectPath(src, dst, flowLabel)
	if nh == nil || nh.Iface == nil {
		// Distinguish a failure (interfaces exist but are down, and no
		// usable backup protects the route) from a route that was
		// never forwardable (no nexthops, or none with an interface).
		configured := false
		for i := range r.Nexthops {
			if r.Nexthops[i].Iface != nil {
				configured = true
				break
			}
		}
		if configured {
			n.hot.dropLinkDown.Inc()
		} else {
			n.hot.dropNoNexthop.Inc()
		}
		if n.spanIdx >= 0 {
			n.obsVerdict("drop")
		}
		return 0
	}
	out := raw
	var extra int64
	if viaBackup {
		n.hot.backupTx.Inc()
		if r.Backup.SRH != nil {
			if !pc.meta.Local {
				// Forwarding decrements before the tunnel ingress
				// (ip6_forward runs before the lwtunnel output), the
				// outer header copies the decremented value, and the
				// encapsulated packet leaves as local output — no second
				// decrement at transmit.
				packet.SetHopLimit(raw, hopLimit-1)
				pc.meta.Local = true
			}
			enc, err := seg6.Encap(raw, n.primary, r.Backup.SRH)
			if err != nil {
				n.Count("drop_backup_encap_error")
				if n.spanIdx >= 0 {
					n.obsVerdict("drop")
				}
				return n.Cost.EncapNs
			}
			out = enc
			extra = n.Cost.EncapNs
		}
	}
	if n.spanIdx >= 0 {
		n.obsVerdict("forward")
	}
	// The commit may run one event later (the drain continuation);
	// other events on this node (probe ticks, generator Outputs) can
	// process other packets in between and move pktEra. Capture this
	// packet's era now; runCommit reinstates it for the transmit-time
	// stamp.
	pc.op = commitTransmit
	pc.decHop = !pc.meta.Local
	pc.hopLimit = hopLimit
	pc.iface = nh.Iface
	pc.raw = out
	pc.era = n.pktEra
	return extra
}

// applySeg6Local runs a seg6local behaviour (static or End.BPF)
// through the dispatch registry and acts on its verdict.
func (n *Node) applySeg6Local(r *Route, raw []byte, pc *pendingCommit, fe *flowEntry, depth int) int64 {
	b := r.Behaviour
	if b == nil {
		n.Count("drop_bad_route")
		if n.spanIdx >= 0 {
			n.obsVerdict("drop")
		}
		return 0
	}
	sp := seg6.Lookup(b.Action)
	if sp == nil {
		n.Count("drop_bad_route")
		if n.spanIdx >= 0 {
			n.obsVerdict("drop")
		}
		return 0
	}

	var res seg6.Result
	var cost int64
	var err error

	switch {
	case sp.Prog:
		prog, ok := b.BPF.(Seg6LocalProgram)
		if !ok {
			n.Count("drop_bad_seg6local_attachment")
			if n.spanIdx >= 0 {
				n.obsVerdict("drop")
			}
			return 0
		}
		res, cost, err = prog.RunSeg6Local(n, raw, &pc.meta)
		cost += n.Cost.Behaviour[seg6.ActionEnd] // the endpoint part of End.BPF
	case sp.Advancing && b.Flavors == 0 && fe != nil &&
		(b.Action != seg6.ActionEndX || b.Nexthop.IsValid()):
		// Burst fast path: the flow cache already walked these exact
		// bytes, so an unflavored advancing endpoint (End, End.X,
		// End.T) reduces to the bounds-revalidated in-place advance
		// plus the spec's verdict — no reparse, no allocation.
		if !fe.info.HasSRH() {
			err = seg6.ErrNoSRH
		} else {
			err = seg6.AdvanceAt(raw, fe.info.SRHOff)
		}
		res = seg6.Result{Verdict: sp.Verdict, Pkt: raw, Nexthop: b.Nexthop, Table: b.Table}
		cost = n.Cost.Behaviour[b.Action]
	default:
		if sp.Encapsulates && !n.tunnelHopLimit(raw, pc) {
			if n.spanIdx >= 0 {
				n.obsBehavior(sp.Name)
			}
			return n.Cost.ICMPGenNs
		}
		res, err = seg6.Apply(b, raw)
		cost = n.Cost.Behaviour[b.Action]
	}
	if n.obs != nil {
		n.obs.cells[n.shard.id].behavior[b.Action].Observe(cost)
		if n.spanIdx >= 0 {
			n.obsBehavior(sp.Name)
		}
	}
	if err != nil {
		n.hot.dropSeg6LocalError.Inc()
		if n.Trace != nil {
			n.Trace("%s: seg6local %v error: %v", n.Name, b.Action, err)
		}
		if n.spanIdx >= 0 {
			n.obsVerdict("error")
		}
		return cost
	}
	return n.seg6Act(b, res, cost, pc, depth)
}

// tunnelHopLimit performs the forwarding-plane hop-limit step at a
// tunnel ingress for transit packets: the kernel's ip6_forward
// decrements BEFORE the lwtunnel output builds the outer header, so
// the inner hop limit is decremented here, the outer copies the
// decremented value, and the encapsulated packet continues as local
// output (no second decrement at transmit). Reports false when the
// packet's hop limit is exhausted (dropped, ICMP queued).
func (n *Node) tunnelHopLimit(raw []byte, pc *pendingCommit) bool {
	if pc.meta.Local {
		return true
	}
	hl, err := packet.HopLimit(raw)
	if err != nil {
		n.hot.dropMalformed.Inc()
		if n.spanIdx >= 0 {
			n.obsVerdict("drop")
		}
		return false
	}
	if hl <= 1 {
		n.hot.dropHopLimit.Inc()
		if n.spanIdx >= 0 {
			n.obsVerdict("drop")
		}
		if fn := n.icmpError(raw, &pc.meta, packet.ICMPv6TimeExceeded, 0); fn != nil {
			pc.op, pc.fn = commitFn, fn
		}
		return false
	}
	packet.SetHopLimit(raw, hl-1)
	pc.meta.Local = true
	return true
}

// proxyReturn runs the inbound half of an SR proxy for a packet
// arriving on a bound interface (see BindProxyReturn).
func (n *Node) proxyReturn(b *seg6.Behaviour, raw []byte, pc *pendingCommit, depth int) int64 {
	sp := seg6.Lookup(b.Action)
	if sp == nil || sp.Inbound == nil {
		n.Count("drop_bad_proxy_return")
		if n.spanIdx >= 0 {
			n.obsVerdict("drop")
		}
		return 0
	}
	res, err := sp.Inbound(b, raw)
	cost := n.Cost.Behaviour[b.Action]
	if n.obs != nil {
		n.obs.cells[n.shard.id].behavior[b.Action].Observe(cost)
		if n.spanIdx >= 0 {
			n.obsBehavior(sp.Name + "-in")
		}
	}
	if err != nil {
		n.hot.dropSeg6LocalError.Inc()
		if n.Trace != nil {
			n.Trace("%s: proxy return %v error: %v", n.Name, b.Action, err)
		}
		if n.spanIdx >= 0 {
			n.obsVerdict("error")
		}
		return cost
	}
	return n.seg6Act(b, res, cost, pc, depth)
}

// seg6Act acts on a behaviour's verdict: the shared tail of
// applySeg6Local and proxyReturn.
func (n *Node) seg6Act(b *seg6.Behaviour, res seg6.Result, cost int64, pc *pendingCommit, depth int) int64 {
	switch res.Verdict {
	case seg6.VerdictDrop:
		n.hot.dropSeg6Local.Inc()
		if n.spanIdx >= 0 {
			n.obsVerdict("drop")
		}
		return cost

	case seg6.VerdictForward:
		return cost + n.routePacket(res.Pkt, pc, depth+1)

	case seg6.VerdictForwardTable:
		dst, err := packet.DstAddr(res.Pkt)
		if err != nil {
			n.hot.dropMalformed.Inc()
			if n.spanIdx >= 0 {
				n.obsVerdict("drop")
			}
			return cost
		}
		route := n.Lookup(dst, res.Table)
		return cost + n.applyRoute(route, res.Pkt, pc, nil, depth+1)

	case seg6.VerdictForwardNexthop:
		iface := n.ResolveNexthop(res.Nexthop)
		if iface == nil {
			n.hot.dropNoNexthop.Inc()
			if n.spanIdx >= 0 {
				n.obsVerdict("drop")
			}
			return cost
		}
		return cost + n.transmitVerdict(res.Pkt, iface, pc)

	case seg6.VerdictForwardOIF:
		iface, ok := b.OIF.(*Iface)
		if !ok || iface == nil || iface.Node != n {
			n.Count("drop_bad_oif")
			if n.spanIdx >= 0 {
				n.obsVerdict("drop")
			}
			return cost
		}
		if !iface.Up() {
			n.hot.dropLinkDown.Inc()
			if n.spanIdx >= 0 {
				n.obsVerdict("drop")
			}
			return cost
		}
		return cost + n.transmitVerdict(res.Pkt, iface, pc)

	case seg6.VerdictDeliverL2:
		if n.l2Handler == nil {
			n.Count("l2_no_handler")
			if n.spanIdx >= 0 {
				n.obsVerdict("drop")
			}
			return cost
		}
		n.Count("l2_delivered")
		if n.spanIdx >= 0 {
			n.obsVerdict("local")
		}
		frame, h, meta := res.Pkt, n.l2Handler, pc.meta
		pc.op = commitFn
		pc.fn = func() { h(n, frame, &meta) }
		return cost + n.Cost.LocalDeliverNs

	default:
		n.Count("drop_bad_verdict")
		if n.spanIdx >= 0 {
			n.obsVerdict("drop")
		}
		return cost
	}
}

// transmitVerdict commits transmission of out on iface with the
// forwarding plane's hop-limit contract; Ethernet frames (End.DX2
// cross-connect) carry no hop limit and leave untouched.
func (n *Node) transmitVerdict(out []byte, iface *Iface, pc *pendingCommit) int64 {
	ver := packet.IPVersion(out)
	var hopLimit uint8
	decHop := false
	if ver == 4 || ver == 6 {
		hl, err := packet.HopLimit(out)
		if err != nil {
			n.hot.dropMalformed.Inc()
			if n.spanIdx >= 0 {
				n.obsVerdict("drop")
			}
			return 0
		}
		if !pc.meta.Local && hl <= 1 {
			n.hot.dropHopLimit.Inc()
			if n.spanIdx >= 0 {
				n.obsVerdict("drop")
			}
			if fn := n.icmpError(out, &pc.meta, packet.ICMPv6TimeExceeded, 0); fn != nil {
				pc.op, pc.fn = commitFn, fn
			}
			return n.Cost.ICMPGenNs
		}
		hopLimit = hl
		decHop = !pc.meta.Local
	}
	if n.spanIdx >= 0 {
		n.obsVerdict("forward")
	}
	// See forward: the commit runs after interleaved events.
	pc.op = commitTransmit
	pc.decHop = decHop
	pc.hopLimit = hopLimit
	pc.iface = iface
	pc.raw = out
	pc.era = n.pktEra
	return 0
}

// applySeg6Encap performs the static transit behaviours.
func (n *Node) applySeg6Encap(r *Route, raw []byte, pc *pendingCommit, depth int) int64 {
	if r.SRH == nil {
		n.Count("drop_bad_route")
		if n.spanIdx >= 0 {
			n.obsVerdict("drop")
		}
		return 0
	}
	var out []byte
	var err error
	switch r.Mode {
	case EncapModeInline:
		// Inline insertion adds no outer header: the packet stays a
		// transit packet and the transmit-time decrement applies.
		out, err = seg6.InsertSRH(raw, r.SRH)
		if n.spanIdx >= 0 {
			n.obsBehavior("T.Insert")
		}
	case EncapModeEncapRed:
		if !n.tunnelHopLimit(raw, pc) {
			return n.Cost.ICMPGenNs
		}
		out, err = seg6.EncapRed(raw, n.primary, r.SRH)
		if n.spanIdx >= 0 {
			n.obsBehavior("H.Encaps.Red")
		}
	default:
		if !n.tunnelHopLimit(raw, pc) {
			return n.Cost.ICMPGenNs
		}
		out, err = seg6.Encap(raw, n.primary, r.SRH)
		if n.spanIdx >= 0 {
			n.obsBehavior("T.Encaps")
		}
	}
	if err != nil {
		n.Count("drop_encap_error")
		if n.spanIdx >= 0 {
			n.obsVerdict("drop")
		}
		return n.Cost.EncapNs
	}
	if len(r.Nexthops) > 0 {
		return n.Cost.EncapNs + n.forward(r, out, pc, nil)
	}
	return n.Cost.EncapNs + n.routePacket(out, pc, depth+1)
}

// ResolveNexthop finds the interface whose peer owns addr (the
// simulator's stand-in for neighbour discovery on point-to-point
// links).
func (n *Node) ResolveNexthop(addr netip.Addr) *Iface {
	for _, i := range n.ifaces {
		if i.peer != nil && i.peer.Node.IsLocal(addr) {
			return i
		}
	}
	return nil
}

// flowLookup returns the flow cache entry for these exact bytes, or
// nil when burst caching is off, the packet doesn't parse (callers
// fall back to the legacy per-field path so malformed packets route
// identically at any burst size), or on a plain miss that was just
// filled (the freshly filled entry is returned).
func (n *Node) flowLookup(raw []byte) *flowEntry {
	if n.burst <= 1 {
		return nil
	}
	for i := range n.flows {
		e := &n.flows[i]
		if len(e.hdr) > 0 && e.rawLen == len(raw) &&
			len(e.hdr) <= len(raw) && bytes.Equal(e.hdr, raw[:len(e.hdr)]) {
			return e
		}
	}
	info, err := packet.ParseInfo(raw)
	if err != nil {
		// ParseInfo is stricter than the per-field decoders (it
		// validates the SRH chain); a packet it rejects must still take
		// the exact legacy path, which may route it by destination.
		return nil
	}
	e := &n.flows[n.flowClock&1]
	n.flowClock++
	e.rawLen = len(raw)
	e.hdr = append(e.hdr[:0], raw[:info.L4Off]...)
	e.info = info
	e.src, _ = packet.IPv6Src(raw)
	e.dst, _ = packet.IPv6Dst(raw)
	e.r, e.rVer = nil, flowRouteInvalid
	return e
}

// mainTable returns the main routing table, caching the pointer so
// the per-packet path skips the tables map access. A nil result (no
// main table yet) is never cached, so a table created later is still
// picked up.
func (n *Node) mainTable() *Table {
	if n.mainTbl == nil {
		n.mainTbl = n.tables[MainTable]
	}
	return n.mainTbl
}

// lookupMain is the main-table FIB lookup, memoised per (burst epoch,
// table version, destination). SelectPath is never memoised — ECMP
// round-robin mutates per-route state.
func (n *Node) lookupMain(dst netip.Addr) *Route {
	t := n.mainTable()
	if n.burst <= 1 {
		return t.Lookup(dst)
	}
	for i := range n.routeMemo {
		e := &n.routeMemo[i]
		if e.dst == dst && e.ver == t.version && e.r != nil {
			return e.r
		}
	}
	r := t.Lookup(dst)
	e := &n.routeMemo[n.memoClock&3]
	n.memoClock++
	*e = routeMemoEntry{dst: dst, r: r, ver: t.version}
	return r
}

// ParseInfoCached is packet.ParseInfo served from the node's burst
// flow cache when the bytes were already proven this epoch.
// Attachment layers (internal/core) call it on their datapath entry.
func (n *Node) ParseInfoCached(raw []byte) (packet.Info, error) {
	if fe := n.flowLookup(raw); fe != nil {
		return fe.info, nil
	}
	return packet.ParseInfo(raw)
}

// BurstCache reports the node's current burst-cache epoch and whether
// burst caching is active. Attachment layers use it to skip re-binding
// per-packet state within one epoch; epochs advance on every new
// burst, crash and rollback restore, so a matching epoch guarantees
// nothing relevant changed since the last bind.
func (n *Node) BurstCache() (uint64, bool) { return n.burstSeq, n.burst > 1 }

// deliverLocal dispatches a packet addressed to this node. The parsed
// view handed to handlers is backed by node-owned scratch storage:
// valid only for the duration of the handler call.
func (n *Node) deliverLocal(raw []byte, meta *PacketMeta) {
	if packet.IPVersion(raw) == 4 {
		n.deliverLocal4(raw, meta)
		return
	}
	p := &n.scratchPkt
	if n.burst > 1 &&
		len(n.scratchHdr) > 0 && n.scratchRawLen == len(raw) &&
		len(n.scratchHdr) <= len(raw) && bytes.Equal(n.scratchHdr, raw[:len(n.scratchHdr)]) {
		p.Raw = raw
	} else {
		p.SRH = &n.scratchSRH
		if err := packet.ParseInto(p, raw); err != nil {
			n.scratchHdr = n.scratchHdr[:0]
			n.hot.dropMalformedLocal.Inc()
			return
		}
		if n.burst > 1 {
			n.scratchHdr = append(n.scratchHdr[:0], raw[:p.L4Off]...)
			n.scratchRawLen = len(raw)
		}
	}
	switch p.L4Proto {
	case packet.ProtoUDP:
		udp, err := packet.DecodeUDP(raw[p.L4Off:])
		if err != nil {
			n.hot.dropMalformedLocal.Inc()
			return
		}
		if h, ok := n.udpHandlers[udp.DstPort]; ok {
			n.hot.udpDelivered.Inc()
			h(n, p, meta)
			return
		}
		n.Count("udp_no_listener")
		// Port unreachable (RFC 4443 type 1 code 4) — what traceroute
		// uses to detect arrival at the destination.
		if commit := n.icmpError(raw, meta, packet.ICMPv6DstUnreachable, 4); commit != nil {
			commit()
		}
	case packet.ProtoTCP:
		if n.tcpHandler != nil {
			n.hot.tcpDelivered.Inc()
			n.tcpHandler(n, p, meta)
			return
		}
		n.Count("tcp_no_listener")
	case packet.ProtoICMPv6:
		if n.icmpHandler != nil {
			n.hot.icmpDelivered.Inc()
			n.icmpHandler(n, p, meta)
			return
		}
		n.Count("icmp_unhandled")
	default:
		n.Count("local_unknown_proto")
	}
}

// deliverLocal4 dispatches an IPv4 packet addressed to this node
// (traffic decapsulated by End.DT4/DT46 at a tenant's egress). Only
// UDP listeners are modeled; the handler sees a minimal Packet view
// (Raw, L4Proto, L4Off) — enough for sinks and port demultiplexing.
func (n *Node) deliverLocal4(raw []byte, meta *PacketMeta) {
	h, err := packet.DecodeIPv4(raw)
	if err != nil {
		n.hot.dropMalformedLocal.Inc()
		return
	}
	if h.Protocol != packet.ProtoUDP {
		n.Count("local_unknown_proto")
		return
	}
	if len(raw) < h.HdrLen {
		n.hot.dropMalformedLocal.Inc()
		return
	}
	udp, err := packet.DecodeUDP(raw[h.HdrLen:])
	if err != nil {
		n.hot.dropMalformedLocal.Inc()
		return
	}
	handler, ok := n.udpHandlers[udp.DstPort]
	if !ok {
		n.Count("udp_no_listener")
		return
	}
	n.hot.udpDelivered.Inc()
	var p packet.Packet
	p.Raw = raw
	p.L4Proto = h.Protocol
	p.L4Off = h.HdrLen
	handler(n, &p, meta)
}

// icmpError builds the commit that sends an ICMPv6 error about raw
// back to its source. Errors about ICMPv6 errors are suppressed
// (RFC 4443 §2.4) to avoid storms.
func (n *Node) icmpError(raw []byte, meta *PacketMeta, icmpType, code uint8) func() {
	if meta.Local {
		return nil // local senders learn through counters
	}
	if packet.IPVersion(raw) != 6 {
		return nil // ICMPv4 generation is not modeled
	}
	if p, err := packet.Parse(raw); err == nil && p.L4Proto == packet.ProtoICMPv6 {
		if m, err := packet.DecodeICMPv6(raw[p.L4Off:]); err == nil && m.Type < 128 {
			return nil
		}
	}
	src, err := packet.IPv6Src(raw)
	if err != nil || !n.primary.IsValid() {
		return nil
	}
	// Quote as much of the invoking packet as fits in 1232 bytes.
	quote := raw
	if len(quote) > 1232 {
		quote = quote[:1232]
	}
	body := make([]byte, 4+len(quote)) // 4 unused bytes, then the packet
	copy(body[4:], quote)
	reply, err := packet.BuildPacket(n.primary, src,
		packet.WithICMPv6(packet.ICMPv6{Type: icmpType, Code: code, Body: body}))
	if err != nil {
		return nil
	}
	n.Count(fmt.Sprintf("icmp_sent_type%d", icmpType))
	// The reply buffer is private as of now; the commit that emits it
	// may run an event later, past a checkpoint that captured this
	// closure, so the emission must carry today's era (see outputFrom).
	era := n.shard.ckptSeq
	return func() { n.outputFrom(era, reply) }
}
