// Package progs contains the eBPF programs of the paper, written in
// this repository's assembler dialect — the moral equivalent of the
// eBPF C sources the authors released (github.com/Zashas/Thesis-SRv6-BPF),
// compiled by hand instead of by clang.
//
// Figure 2 programs (§3.2):
//
//	End        — the empty endpoint function (1 SLOC in C)
//	End.T      — bpf_lwt_seg6_action(End.T) + BPF_REDIRECT (4 SLOC)
//	Tag++      — fetch the SRH tag, increment it via
//	             bpf_lwt_seg6_store_bytes (50 SLOC)
//	Add TLV    — bpf_lwt_seg6_adjust_srh + store_bytes (60 SLOC)
//
// Use-case programs (§4): the DM encapsulation transit program and
// End.DM (§4.1), the WRR scheduler (§4.2) and End.OAMP (§4.3) live in
// their own files of this package.
package progs

import (
	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/asm"
	"srv6bpf/internal/core"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
)

// Offsets shared by programs that parse the packet directly. After
// End.BPF advanced the SRH, the outermost headers of every packet in
// the experiments are IPv6 (40 bytes) followed by the SRH.
const (
	offNextHeader = 6 // IPv6 next header
	offSRH        = packet.IPv6HeaderLen
	offSRHLen     = offSRH + packet.SRHOffHdrExtLen
	offSRHType    = offSRH + packet.SRHOffRoutingType
	offSRHTag     = offSRH + packet.SRHOffTag
)

// prologue loads the context into r6 and the packet pointers into
// r7 (data) and r8 (data_end), then bounds-checks that at least n
// bytes of packet are readable, branching to "drop" otherwise.
//
// The explicit data_end comparison mirrors what the kernel verifier
// forces real programs to do before direct packet access.
func prologue(n int32) asm.Instructions {
	return asm.Instructions{
		asm.Mov64Reg(asm.R6, asm.R1),
		asm.LoadMem(asm.R7, asm.R6, core.CtxOffData, asm.DWord),
		asm.LoadMem(asm.R8, asm.R6, core.CtxOffDataEnd, asm.DWord),
		asm.Mov64Reg(asm.R2, asm.R7),
		asm.ALU64Imm(asm.Add, asm.R2, n),
		asm.JumpReg(asm.JGT, asm.R2, asm.R8, "drop"),
	}
}

// epilogue emits the shared exit paths: "out" returns code okCode,
// "drop" returns BPF_DROP.
func epilogue(okCode int32) asm.Instructions {
	return asm.Instructions{
		asm.Mov64Imm(asm.R0, okCode).WithSymbol("out"),
		asm.Return(),
		asm.Mov64Imm(asm.R0, core.BPFDrop).WithSymbol("drop"),
		asm.Return(),
	}
}

// EndSpec is the BPF counterpart of the static End behaviour: the
// endpoint processing already happened in the hook, so the program
// does nothing ("1 source line of code in its body").
func EndSpec() *bpf.ProgramSpec {
	return &bpf.ProgramSpec{
		Name: "end_bpf",
		Instructions: asm.Instructions{
			asm.Mov64Imm(asm.R0, core.BPFOK),
			asm.Return(),
		},
		License: "Dual MIT/GPL",
	}
}

// EndTSpec is the BPF counterpart of End.T: delegate to the static
// behaviour through bpf_lwt_seg6_action, then BPF_REDIRECT so the
// default lookup does not overwrite the action's FIB result (§3.1).
// Four source lines in the paper's C.
func EndTSpec(table int32) *bpf.ProgramSpec {
	return &bpf.ProgramSpec{
		Name: "end_t_bpf",
		Instructions: asm.Instructions{
			// u32 table on the stack; r1 = ctx, r2 = action,
			// r3 = &table, r4 = sizeof(table).
			asm.StoreImm(asm.RFP, -4, table, asm.Word),
			asm.Mov64Imm(asm.R2, int32(seg6.ActionEndT)),
			asm.Mov64Reg(asm.R3, asm.RFP),
			asm.ALU64Imm(asm.Add, asm.R3, -4),
			asm.Mov64Imm(asm.R4, 4),
			asm.CallHelper(bpf.HelperLWTSeg6Action),
			asm.JumpImm(asm.JNE, asm.R0, 0, "drop"),
			asm.Mov64Imm(asm.R0, core.BPFRedirect),
			asm.Return(),
			asm.Mov64Imm(asm.R0, core.BPFDrop).WithSymbol("drop"),
			asm.Return(),
		},
		License: "Dual MIT/GPL",
	}
}

// TagIncrementSpec is the paper's Tag++ program (50 SLOC): read the
// SRH tag, increment it, and write it back through
// bpf_lwt_seg6_store_bytes — the indirect-write discipline of §3.1.
func TagIncrementSpec() *bpf.ProgramSpec {
	insns := prologue(offSRH + packet.SRHFixedLen)
	insns = append(insns,
		// Confirm the next header chains to a type-4 routing header,
		// as the C source does before touching SRH fields.
		asm.LoadMem(asm.R2, asm.R7, offNextHeader, asm.Byte),
		asm.JumpImm(asm.JNE, asm.R2, packet.ProtoRouting, "drop"),
		asm.LoadMem(asm.R2, asm.R7, offSRHType, asm.Byte),
		asm.JumpImm(asm.JNE, asm.R2, packet.SRHRoutingType, "drop"),

		// tag is big-endian on the wire: load, swap, increment, swap.
		asm.LoadMem(asm.R3, asm.R7, offSRHTag, asm.Half),
		asm.HostToBE(asm.R3, 16), // wire -> host
		asm.ALU64Imm(asm.Add, asm.R3, 1),
		asm.ALU64Imm(asm.And, asm.R3, 0xffff),
		asm.HostToBE(asm.R3, 16), // host -> wire
		asm.StoreMem(asm.RFP, -2, asm.R3, asm.Half),

		// bpf_lwt_seg6_store_bytes(ctx, offSRHTag, fp-2, 2)
		asm.Mov64Reg(asm.R1, asm.R6),
		asm.Mov64Imm(asm.R2, offSRHTag),
		asm.Mov64Reg(asm.R3, asm.RFP),
		asm.ALU64Imm(asm.Add, asm.R3, -2),
		asm.Mov64Imm(asm.R4, 2),
		asm.CallHelper(bpf.HelperLWTSeg6StoreByte),
		asm.JumpImm(asm.JNE, asm.R0, 0, "drop"),
		asm.JumpTo("out"),
	)
	insns = append(insns, epilogue(core.BPFOK)...)
	return &bpf.ProgramSpec{
		Name:         "tag_inc",
		Instructions: insns,
		License:      "Dual MIT/GPL",
	}
}

// AddTLVTLVType is the experimental TLV the Add TLV program appends.
const AddTLVTLVType = 0x42

// AddTLVSpec is the paper's Add TLV program (60 SLOC): grow the TLV
// area by 8 bytes with bpf_lwt_seg6_adjust_srh, then fill the new
// space with one 8-byte TLV via bpf_lwt_seg6_store_bytes. Leaving the
// space unfilled would fail the post-run SRH validation.
func AddTLVSpec() *bpf.ProgramSpec {
	insns := prologue(offSRH + packet.SRHFixedLen)
	insns = append(insns,
		asm.LoadMem(asm.R2, asm.R7, offNextHeader, asm.Byte),
		asm.JumpImm(asm.JNE, asm.R2, packet.ProtoRouting, "drop"),

		// r9 = byte offset one past the SRH = 40 + (hdrlen+1)*8.
		asm.LoadMem(asm.R9, asm.R7, offSRHLen, asm.Byte),
		asm.ALU64Imm(asm.Add, asm.R9, 1),
		asm.ALU64Imm(asm.LSh, asm.R9, 3),
		asm.ALU64Imm(asm.Add, asm.R9, offSRH),

		// bpf_lwt_seg6_adjust_srh(ctx, end, +8)
		asm.Mov64Reg(asm.R1, asm.R6),
		asm.Mov64Reg(asm.R2, asm.R9),
		asm.Mov64Imm(asm.R3, 8),
		asm.CallHelper(bpf.HelperLWTSeg6AdjustSRH),
		asm.JumpImm(asm.JNE, asm.R0, 0, "drop"),

		// TLV on the stack: type 0x42, length 6, six bytes of zeros.
		asm.StoreImm(asm.RFP, -8, AddTLVTLVType, asm.Byte),
		asm.StoreImm(asm.RFP, -7, 6, asm.Byte),
		asm.StoreImm(asm.RFP, -6, 0, asm.Half),
		asm.StoreImm(asm.RFP, -4, 0, asm.Word),

		// bpf_lwt_seg6_store_bytes(ctx, end, fp-8, 8)
		asm.Mov64Reg(asm.R1, asm.R6),
		asm.Mov64Reg(asm.R2, asm.R9),
		asm.Mov64Reg(asm.R3, asm.RFP),
		asm.ALU64Imm(asm.Add, asm.R3, -8),
		asm.Mov64Imm(asm.R4, 8),
		asm.CallHelper(bpf.HelperLWTSeg6StoreByte),
		asm.JumpImm(asm.JNE, asm.R0, 0, "drop"),
		asm.JumpTo("out"),
	)
	insns = append(insns, epilogue(core.BPFOK)...)
	return &bpf.ProgramSpec{
		Name:         "add_tlv",
		Instructions: insns,
		License:      "Dual MIT/GPL",
	}
}
