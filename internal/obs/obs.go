// Package obs is the metrics-and-tracing plane of the simulator: a
// pull-model metrics registry (counters, gauges, log-linear
// histograms), a ring-buffered engine-stats time series, and a
// rollback-aware packet flight recorder, with Prometheus-text, JSON
// and Chrome trace_event export. See OBSERVABILITY.md at the repo
// root for the full tour.
//
// The package is a leaf: it imports only the standard library, so
// every layer of the stack (netsim, core, nf/frr, tcpsim, chaos) can
// publish into it without import cycles. Rollback-awareness works
// structurally — TraceBuf satisfies netsim's ShardState interface
// without naming it.
//
// Concurrency model: collectors read simulator state, so
// Registry.Publish must only be called while the simulation is
// paused (between Run/RunUntil calls). The published Snapshot is
// immutable and swapped in atomically, so HTTP handlers may read
// Last() from any goroutine at any time.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind distinguishes Prometheus metric types.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
)

// Sample is one scalar metric in a Snapshot.
type Sample struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"` // `k="v",k2="v2"` form, no braces
	Value  float64 `json:"value"`
	Kind   Kind    `json:"-"`
}

// HistSample is one histogram in a Snapshot (an independent copy).
type HistSample struct {
	Name   string
	Labels string
	H      *Histogram
}

// Snapshot is an immutable point-in-time view of every registered
// collector's output.
type Snapshot struct {
	At      int64 // virtual time (ns) at publish
	Samples []Sample
	Hists   []HistSample
	extra   map[string]any
}

// Emitter is handed to collectors during Publish; collectors push
// their current values through it.
type Emitter struct {
	s *Snapshot
}

// Counter emits a monotonically increasing scalar.
func (e *Emitter) Counter(name, labels string, v float64) {
	e.s.Samples = append(e.s.Samples, Sample{Name: name, Labels: labels, Value: v, Kind: KindCounter})
}

// Gauge emits an instantaneous scalar.
func (e *Emitter) Gauge(name, labels string, v float64) {
	e.s.Samples = append(e.s.Samples, Sample{Name: name, Labels: labels, Value: v, Kind: KindGauge})
}

// Hist emits a histogram; h is copied, so the caller may keep
// mutating its instance afterwards.
func (e *Emitter) Hist(name, labels string, h *Histogram) {
	if h == nil || h.Count() == 0 {
		return
	}
	e.s.Hists = append(e.s.Hists, HistSample{Name: name, Labels: labels, H: h.Clone()})
}

// Collector is a pull hook: called at Publish time with an Emitter.
type Collector func(*Emitter)

// Registry holds collectors and the latest published Snapshot.
// The zero value is not usable; call New.
type Registry struct {
	mu         sync.Mutex
	collectors []Collector
	jsonFns    map[string]func() any
	last       atomic.Pointer[Snapshot]
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{jsonFns: map[string]func() any{}}
}

// Collect registers a pull collector. Collectors run in registration
// order at every Publish.
func (r *Registry) Collect(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// AddJSON attaches a named object to every published JSON snapshot
// (e.g. "progs" → the ProgStats list). fn runs at Publish time.
func (r *Registry) AddJSON(key string, fn func() any) {
	r.mu.Lock()
	r.jsonFns[key] = fn
	r.mu.Unlock()
}

// Publish runs every collector, swaps in the new Snapshot and
// returns it. Must not race with simulation execution (collectors
// read live sim state).
func (r *Registry) Publish(nowNs int64) *Snapshot {
	r.mu.Lock()
	cs := r.collectors
	fns := make(map[string]func() any, len(r.jsonFns))
	for k, f := range r.jsonFns {
		fns[k] = f
	}
	r.mu.Unlock()

	s := &Snapshot{At: nowNs, extra: map[string]any{}}
	em := &Emitter{s: s}
	for _, c := range cs {
		c(em)
	}
	for k, f := range fns {
		s.extra[k] = f()
	}
	r.last.Store(s)
	return s
}

// Last returns the most recently published Snapshot, or nil.
func (r *Registry) Last() *Snapshot { return r.last.Load() }

func promEscape(name string) string {
	var b strings.Builder
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	typed := map[string]bool{}
	for _, sm := range s.Samples {
		name := promEscape(sm.Name)
		if !typed[name] {
			typed[name] = true
			t := "counter"
			if sm.Kind == KindGauge {
				t = "gauge"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, t); err != nil {
				return err
			}
		}
		var err error
		if sm.Labels != "" {
			_, err = fmt.Fprintf(w, "%s{%s} %s\n", name, sm.Labels, fmtF(sm.Value))
		} else {
			_, err = fmt.Fprintf(w, "%s %s\n", name, fmtF(sm.Value))
		}
		if err != nil {
			return err
		}
	}
	for _, hs := range s.Hists {
		name := promEscape(hs.Name)
		if !typed[name] {
			typed[name] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
		}
		sep := ""
		if hs.Labels != "" {
			sep = ","
		}
		var cum uint64
		var werr error
		hs.H.Buckets(func(upper, count uint64) {
			if werr != nil {
				return
			}
			cum += count
			_, werr = fmt.Fprintf(w, "%s_bucket{%s%sle=\"%d\"} %d\n", name, hs.Labels, sep, upper, cum)
		})
		if werr != nil {
			return werr
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, hs.Labels, sep, hs.H.Count()); err != nil {
			return err
		}
		if hs.Labels != "" {
			_, werr = fmt.Fprintf(w, "%s_sum{%s} %d\n%s_count{%s} %d\n",
				name, hs.Labels, hs.H.Sum(), name, hs.Labels, hs.H.Count())
		} else {
			_, werr = fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, hs.H.Sum(), name, hs.H.Count())
		}
		if werr != nil {
			return werr
		}
	}
	return nil
}

// HistJSON is the JSON rendering of one histogram: summary
// quantiles, not raw buckets.
type HistJSON struct {
	Name   string  `json:"name"`
	Labels string  `json:"labels,omitempty"`
	Count  uint64  `json:"count"`
	Sum    uint64  `json:"sum"`
	Min    uint64  `json:"min"`
	Max    uint64  `json:"max"`
	Mean   float64 `json:"mean"`
	P50    uint64  `json:"p50"`
	P90    uint64  `json:"p90"`
	P99    uint64  `json:"p99"`
}

// HistSummary summarises a histogram for JSON output.
func HistSummary(name, labels string, h *Histogram) HistJSON {
	return HistJSON{
		Name: name, Labels: labels,
		Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(), Mean: h.Mean(),
		P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
	}
}

// MarshalJSON renders the snapshot as a single JSON object:
// {"at":…, "metrics":[…], "hists":[…], <extra keys>…}.
func (s *Snapshot) MarshalJSON() ([]byte, error) {
	m := map[string]any{
		"at":      s.At,
		"metrics": s.Samples,
	}
	hs := make([]HistJSON, 0, len(s.Hists))
	for _, h := range s.Hists {
		hs = append(hs, HistSummary(h.Name, h.Labels, h.H))
	}
	m["hists"] = hs
	keys := make([]string, 0, len(s.extra))
	for k := range s.extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if k != "at" && k != "metrics" && k != "hists" {
			m[k] = s.extra[k]
		}
	}
	return json.Marshal(m)
}
