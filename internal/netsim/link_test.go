package netsim

import (
	"fmt"
	"net/netip"
	"testing"

	"srv6bpf/internal/netem"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
)

// twoHosts builds A --- B over one configurable link and returns the
// nodes plus A's interface.
func twoHosts(s *Sim, cfg netem.Config) (a, b *Node, aIf *Iface) {
	a = s.AddNode("A", HostCostModel())
	b = s.AddNode("B", HostCostModel())
	a.AddAddress(aAddr)
	b.AddAddress(bAddr)
	aIf, bIf := ConnectSymmetric(a, b, cfg)
	a.AddRoute(&Route{Prefix: pfx("::/0"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: aIf}}})
	b.AddRoute(&Route{Prefix: pfx("::/0"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: bIf}}})
	return a, b, aIf
}

func udpTo(t *testing.T, dst netip.Addr, port uint16, payload string) []byte {
	t.Helper()
	raw, err := packet.BuildPacket(aAddr, dst, packet.WithUDP(1000, port), packet.WithPayload([]byte(payload)))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestInFlightPacketDroppedOnFailure cuts the link while a packet is
// on the wire: the packet must be lost even though the failure
// happened after transmission — and even if the link is restored
// before the packet's scheduled arrival.
func TestInFlightPacketDroppedOnFailure(t *testing.T) {
	s := New(1)
	a, b, aIf := twoHosts(s, netem.Config{RateBps: 1e10, DelayNs: 10 * Millisecond})
	got := 0
	b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) { got++ })

	a.Output(udpTo(t, bAddr, 7, "doomed")) // delivery due at ~10ms
	s.FailLink(5*Millisecond, aIf)
	s.RestoreLink(8*Millisecond, aIf) // back up before the arrival time
	s.Run()

	if got != 0 {
		t.Fatalf("packet survived a mid-flight link failure")
	}
	if aIf.DownDrops() != 1 {
		t.Errorf("DownDrops = %d, want 1", aIf.DownDrops())
	}
	if aIf.TxPackets != 1 {
		t.Errorf("TxPackets = %d, want 1 (it did leave A)", aIf.TxPackets)
	}

	// After the restore, new traffic flows.
	s.Schedule(s.Now(), func() { a.Output(udpTo(t, bAddr, 7, "alive")) })
	s.Run()
	if got != 1 {
		t.Fatalf("post-restore packet not delivered (got=%d)", got)
	}
}

// TestTransmitWhileDownDrops verifies the simplest failure modes: the
// routing layer refuses a route whose only nexthop is down (counted
// as drop_link_down), and a raw transmission forced onto a down link
// is dropped at the interface.
func TestTransmitWhileDownDrops(t *testing.T) {
	s := New(1)
	a, b, aIf := twoHosts(s, netem.Config{RateBps: 1e10, DelayNs: Millisecond})
	got := 0
	b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) { got++ })

	aIf.Fail()
	a.Output(udpTo(t, bAddr, 7, "void"))
	s.Run()
	if got != 0 || a.Counters()["drop_link_down"] != 1 {
		t.Fatalf("got=%d drop_link_down=%d, want 0/1", got, a.Counters()["drop_link_down"])
	}
	// Bypassing the FIB: the link layer itself refuses.
	aIf.Transmit(udpTo(t, bAddr, 7, "forced"))
	s.Run()
	if got != 0 || aIf.TxDrops != 1 || aIf.DownDrops() != 1 {
		t.Fatalf("got=%d TxDrops=%d DownDrops=%d, want 0/1/1", got, aIf.TxDrops, aIf.DownDrops())
	}
	if a.Counters()["link_down"] != 1 || b.Counters()["link_down"] != 1 {
		t.Errorf("link_down counters: A=%d B=%d, want 1/1 (both ends fail together)",
			a.Counters()["link_down"], b.Counters()["link_down"])
	}
}

// TestFailureWithNonEmptyRxq: packets already accepted into a node's
// receive ring before the failure are NIC-buffered — they must still
// be processed and forwarded out the surviving link.
func TestFailureWithNonEmptyRxq(t *testing.T) {
	s := New(1)
	a := s.AddNode("A", HostCostModel())
	r := s.AddNode("R", ServerCostModel())
	b := s.AddNode("B", HostCostModel())
	a.AddAddress(aAddr)
	b.AddAddress(bAddr)
	r.AddAddress(netip.MustParseAddr("2001:db8:aa::1"))
	aIf, _ := ConnectSymmetric(a, r, netem.Config{RateBps: 1e10, DelayNs: 15 * Microsecond})
	_, bIf := ConnectSymmetric(r, b, netem.Config{RateBps: 1e10})
	rbIf := r.Ifaces()[1]
	a.AddRoute(&Route{Prefix: pfx("::/0"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: aIf}}})
	b.AddRoute(&Route{Prefix: pfx("::/0"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: bIf}}})
	r.AddRoute(&Route{Prefix: pfx("2001:db8:b::/48"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: rbIf}}})

	delivered := 0
	b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) { delivered++ })

	// Burst 50 packets back-to-back: they serialise over ~5µs and,
	// with the 15µs propagation delay, arrive at R over 15..20µs.
	// Cut the A-R link at 17µs: some have arrived (and sit in R's
	// ring, since R's CPU is slower than the arrival rate), the rest
	// are mid-wire and must be lost.
	const n = 50
	for i := 0; i < n; i++ {
		a.Output(udpTo(t, bAddr, 7, fmt.Sprintf("pkt-%02d", i)))
	}
	var ringAtFailure int
	s.Schedule(17*Microsecond, func() {
		ringAtFailure = r.rxCount
		aIf.Fail()
	})
	s.Run()

	if ringAtFailure == 0 {
		t.Fatalf("test setup: R's ring was empty at failure time")
	}
	if aIf.DownDrops() == 0 {
		t.Fatalf("expected some in-flight losses in a 50-packet burst")
	}
	// Every packet that reached R before the cut — including the ones
	// still ring-buffered at failure time — must come out at B; the
	// rest died on the A-R wire.
	wantDelivered := n - int(aIf.DownDrops())
	if delivered != wantDelivered {
		t.Fatalf("delivered=%d, want %d (ring at failure=%d, down drops=%d)",
			delivered, wantDelivered, ringAtFailure, aIf.DownDrops())
	}
}

// TestRestoreThenImmediateRefail: a packet transmitted in the brief
// up-window between a restore and an immediate re-failure is lost if
// still in flight at the re-failure, while one transmitted in the
// same window on a zero-latency link survives.
func TestRestoreThenImmediateRefail(t *testing.T) {
	s := New(1)
	a, b, aIf := twoHosts(s, netem.Config{RateBps: 1e10, DelayNs: 2 * Millisecond})
	got := 0
	b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) { got++ })

	s.FailLink(1*Millisecond, aIf)
	s.RestoreLink(2*Millisecond, aIf)
	// Transmitted during the up-window; in flight until ~4ms.
	s.Schedule(2*Millisecond, func() { a.Output(udpTo(t, bAddr, 7, "window")) })
	// Re-failure at 3ms kills it mid-flight.
	s.FailLink(3*Millisecond, aIf)
	s.Run()

	if got != 0 {
		t.Fatalf("packet survived restore-then-refail (epochs not advancing?)")
	}
	if aIf.DownDrops() != 1 {
		t.Errorf("DownDrops = %d, want 1", aIf.DownDrops())
	}
	if !aIf.Up() {
		// Still down after the refail: restore once more and confirm
		// the link carries traffic again (state machine not stuck).
		aIf.Restore()
	}
	a.Output(udpTo(t, bAddr, 7, "after"))
	s.Run()
	if got != 1 {
		t.Fatalf("link dead after refail+restore (got=%d)", got)
	}
}

// TestLinkStateChangeCallbacks: both ends observe every transition,
// in order.
func TestLinkStateChangeCallbacks(t *testing.T) {
	s := New(1)
	_, _, aIf := twoHosts(s, netem.Config{RateBps: 1e10})
	var events []string
	hook := func(i *Iface, up bool) {
		events = append(events, fmt.Sprintf("%s:%v@%d", i, up, s.Now()))
	}
	aIf.OnStateChange = hook
	aIf.Peer().OnStateChange = hook

	s.FailLink(10, aIf)
	s.FailLink(15, aIf) // already down: no events
	s.RestoreLink(20, aIf.Peer())
	s.Run()

	// The invoked end flips first: the restore was issued on B's side.
	want := "[A/eth0:false@10 B/eth0:false@10 B/eth0:true@20 A/eth0:true@20]"
	if fmt.Sprint(events) != want {
		t.Fatalf("events = %v, want %s", events, want)
	}
}

// TestBackupRouteActivatesAndDeactivates: a protected route flips to
// its backup nexthop the instant the primary link dies and returns to
// the primary on restore.
func TestBackupRouteActivatesAndDeactivates(t *testing.T) {
	s := New(1)
	a := s.AddNode("A", HostCostModel())
	r := s.AddNode("R", ServerCostModel())
	b := s.AddNode("B", HostCostModel())
	a.AddAddress(aAddr)
	b.AddAddress(bAddr)
	r.AddAddress(netip.MustParseAddr("2001:db8:aa::1"))
	fast := netem.Config{RateBps: 1e10}
	aIf, _ := ConnectSymmetric(a, r, fast)
	primary, bP := ConnectSymmetric(r, b, fast)
	backup, bB := ConnectSymmetric(r, b, fast)
	a.AddRoute(&Route{Prefix: pfx("::/0"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: aIf}}})
	b.AddRoute(&Route{Prefix: pfx("::/0"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: bP}}})
	_ = bB
	r.AddRoute(&Route{
		Prefix:   pfx("2001:db8:b::/48"),
		Kind:     RouteForward,
		Nexthops: []Nexthop{{Iface: primary}},
		Backup:   &Backup{Nexthops: []Nexthop{{Iface: backup}}},
	})

	got := 0
	b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) { got++ })
	send := func() { a.Output(udpTo(t, bAddr, 7, "x")) }

	send()
	s.Run()
	primary.Fail()
	send()
	s.Run()
	primary.Restore()
	send()
	s.Run()

	if got != 3 {
		t.Fatalf("delivered %d/3 (backup_tx=%d)", got, r.Counters()["backup_tx"])
	}
	if primary.TxPackets != 2 {
		t.Errorf("primary TxPackets = %d, want 2 (before failure + after restore)", primary.TxPackets)
	}
	if backup.TxPackets != 1 {
		t.Errorf("backup TxPackets = %d, want 1 (during failure)", backup.TxPackets)
	}
	if r.Counters()["backup_tx"] != 1 {
		t.Errorf("backup_tx counter = %d, want 1", r.Counters()["backup_tx"])
	}
}

// TestBackupRouteSRHEncap: a backup with a segment list encapsulates
// the packet onto the backup path; the detour router's End SID and
// the tail's End.DT6 bring the original packet to its destination.
func TestBackupRouteSRHEncap(t *testing.T) {
	detourSID := netip.MustParseAddr("fc00:30::e")
	decapSID := netip.MustParseAddr("fc00:21::d6")

	s := New(1)
	a := s.AddNode("A", HostCostModel())
	p := s.AddNode("P", ServerCostModel())
	d := s.AddNode("D", ServerCostModel())
	det := s.AddNode("B", ServerCostModel())
	tHost := s.AddNode("T", HostCostModel())
	a.AddAddress(aAddr)
	p.AddAddress(netip.MustParseAddr("2001:db8:10::1"))
	d.AddAddress(netip.MustParseAddr("2001:db8:20::1"))
	det.AddAddress(netip.MustParseAddr("2001:db8:30::1"))
	tHost.AddAddress(bAddr)

	fast := netem.Config{RateBps: 1e10}
	aIf, _ := ConnectSymmetric(a, p, fast)
	pdIf, _ := ConnectSymmetric(p, d, fast) // primary
	pbIf, _ := ConnectSymmetric(p, det, fast)
	bdIf, _ := ConnectSymmetric(det, d, fast)
	dtIf, tIf := ConnectSymmetric(d, tHost, fast)

	a.AddRoute(&Route{Prefix: pfx("::/0"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: aIf}}})
	tHost.AddRoute(&Route{Prefix: pfx("::/0"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: tIf}}})
	det.AddRoute(&Route{Prefix: pfx("fc00:21::/32"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: bdIf}}})
	det.AddRoute(&Route{
		Prefix:    netip.PrefixFrom(detourSID, 128),
		Kind:      RouteSeg6Local,
		Behaviour: &seg6.Behaviour{Action: seg6.ActionEnd},
	})
	d.AddRoute(&Route{Prefix: pfx("2001:db8:b::/48"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: dtIf}}})
	d.AddRoute(&Route{
		Prefix:    netip.PrefixFrom(decapSID, 128),
		Kind:      RouteSeg6Local,
		Behaviour: &seg6.Behaviour{Action: seg6.ActionEndDT6, Table: MainTable},
	})
	p.AddRoute(&Route{
		Prefix:   pfx("2001:db8:b::/48"),
		Kind:     RouteForward,
		Nexthops: []Nexthop{{Iface: pdIf}},
		Backup: &Backup{
			Nexthops: []Nexthop{{Iface: pbIf}},
			SRH:      packet.NewSRH([]netip.Addr{detourSID, decapSID}),
		},
	})

	var payloads []string
	var hopLimit uint8
	tHost.HandleUDP(7, func(n *Node, pkt *packet.Packet, meta *PacketMeta) {
		payloads = append(payloads, string(pkt.Raw[pkt.L4Off+packet.UDPHeaderLen:]))
		hopLimit = pkt.IPv6.HopLimit
	})

	a.Output(udpTo(t, bAddr, 7, "via-primary"))
	s.Run()
	pdIf.Fail()
	a.Output(udpTo(t, bAddr, 7, "via-backup"))
	s.Run()

	if fmt.Sprint(payloads) != "[via-primary via-backup]" {
		t.Fatalf("payloads = %v (P=%v B=%v D=%v)", payloads, p.Counters(), det.Counters(), d.Counters())
	}
	if p.Counters()["backup_tx"] != 1 {
		t.Errorf("backup_tx = %d, want 1", p.Counters()["backup_tx"])
	}
	_ = hopLimit
}

// TestWeightedBackupSelection: flows spread over weighted backup
// members roughly proportionally, and zero-weight members are never
// used.
func TestWeightedBackupSelection(t *testing.T) {
	s := New(1)
	a := s.AddNode("A", HostCostModel())
	r := s.AddNode("R", ServerCostModel())
	b1 := s.AddNode("B1", HostCostModel())
	b2 := s.AddNode("B2", HostCostModel())
	b3 := s.AddNode("B3", HostCostModel())
	a.AddAddress(aAddr)
	fast := netem.Config{RateBps: 1e10}
	aIf, _ := ConnectSymmetric(a, r, fast)
	primary, _ := ConnectSymmetric(r, b1, fast)
	w1, _ := ConnectSymmetric(r, b2, fast)
	w2, _ := ConnectSymmetric(r, b3, fast)
	a.AddRoute(&Route{Prefix: pfx("::/0"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: aIf}}})
	r.AddRoute(&Route{
		Prefix:   pfx("2001:db8:b::/48"),
		Kind:     RouteForward,
		Nexthops: []Nexthop{{Iface: primary}},
		Backup: &Backup{
			Nexthops: []Nexthop{{Iface: w1}, {Iface: w2}, {Iface: primary}},
			Weights:  []uint32{3, 1, 0},
		},
	})
	primary.Fail()

	var n1, n2 int
	w1.Tap = func([]byte) { n1++ }
	w2.Tap = func([]byte) { n2++ }
	for fl := uint32(0); fl < 400; fl++ {
		raw, _ := packet.BuildPacket(aAddr, bAddr, packet.WithUDP(1, 2), packet.WithFlowLabel(fl))
		a.Output(raw)
	}
	s.Run()
	if n1+n2 != 400 {
		t.Fatalf("lost packets: %d+%d != 400", n1, n2)
	}
	// 3:1 weighting: expect ~300/100 with flow-hash noise.
	if n1 < 250 || n2 > 150 || n2 == 0 {
		t.Errorf("weighted split %d/%d, want ≈300/100", n1, n2)
	}
}

// TestEmptyWeightsMeansEqual: a non-nil but empty Weights slice must
// behave like nil (equal weights), not silently disable the backup.
func TestEmptyWeightsMeansEqual(t *testing.T) {
	s := New(1)
	a := s.AddNode("A", HostCostModel())
	r := s.AddNode("R", ServerCostModel())
	b := s.AddNode("B", HostCostModel())
	a.AddAddress(aAddr)
	fast := netem.Config{RateBps: 1e10}
	aIf, _ := ConnectSymmetric(a, r, fast)
	primary, _ := ConnectSymmetric(r, b, fast)
	backup, _ := ConnectSymmetric(r, b, fast)
	a.AddRoute(&Route{Prefix: pfx("::/0"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: aIf}}})
	r.AddRoute(&Route{
		Prefix:   pfx("2001:db8:b::/48"),
		Kind:     RouteForward,
		Nexthops: []Nexthop{{Iface: primary}},
		Backup:   &Backup{Nexthops: []Nexthop{{Iface: backup}}, Weights: []uint32{}},
	})
	primary.Fail()
	sent := 0
	backup.Tap = func([]byte) { sent++ }
	raw, _ := packet.BuildPacket(aAddr, bAddr, packet.WithUDP(1, 2))
	a.Output(raw)
	s.Run()
	if sent != 1 {
		t.Fatalf("backup with empty weights not used (sent=%d, drop_link_down=%d)",
			sent, r.Counters()["drop_link_down"])
	}
}

// TestNilIfaceNexthopCountsAsNoNexthop: a route whose nexthops never
// had an interface is a configuration error (drop_no_nexthop), not a
// link failure (drop_link_down).
func TestNilIfaceNexthopCountsAsNoNexthop(t *testing.T) {
	s := New(1)
	a, _, _ := twoHosts(s, netem.Config{RateBps: 1e10})
	a.AddRoute(&Route{Prefix: pfx("2001:db8:dead::/48"), Kind: RouteForward, Nexthops: []Nexthop{{}}})
	raw, _ := packet.BuildPacket(aAddr, netip.MustParseAddr("2001:db8:dead::1"), packet.WithUDP(1, 2))
	a.Output(raw)
	s.Run()
	c := a.Counters()
	if c["drop_no_nexthop"] != 1 || c["drop_link_down"] != 0 {
		t.Fatalf("counters drop_no_nexthop=%d drop_link_down=%d, want 1/0",
			c["drop_no_nexthop"], c["drop_link_down"])
	}
}

// TestDeterministicReplayUnderFailures: the same seed must reproduce
// the same packet-by-packet outcome through a failure/restore cycle
// on a jittery, lossy link.
func TestDeterministicReplayUnderFailures(t *testing.T) {
	run := func(seed int64) (string, map[string]uint64) {
		s := New(seed)
		a, b, aIf := twoHosts(s, netem.Config{
			RateBps: 50_000_000, DelayNs: Millisecond,
			JitterNs: 200 * Microsecond, Loss: 0.05,
		})
		var arrivals []int64
		b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) {
			arrivals = append(arrivals, meta.RxTimestamp)
		})
		for i := 0; i < 200; i++ {
			i := i
			s.Schedule(int64(i)*100*Microsecond, func() {
				a.Output(udpTo(t, bAddr, 7, fmt.Sprintf("%03d", i)))
			})
		}
		s.FailLink(5*Millisecond, aIf)
		s.RestoreLink(9*Millisecond, aIf)
		s.FailLink(15*Millisecond, aIf)
		s.RestoreLink(16*Millisecond, aIf)
		s.Run()
		return fmt.Sprint(arrivals), b.Counters()
	}

	t1, c1 := run(7)
	t2, c2 := run(7)
	if t1 != t2 {
		t.Fatalf("same seed, different arrival schedule")
	}
	if fmt.Sprint(c1) != fmt.Sprint(c2) {
		t.Fatalf("same seed, different counters: %v vs %v", c1, c2)
	}
	t3, _ := run(8)
	if t1 == t3 {
		t.Errorf("different seeds produced identical jittered schedules (suspicious)")
	}
}
