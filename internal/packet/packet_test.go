package packet

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
)

var (
	addrA = netip.MustParseAddr("2001:db8::1")
	addrB = netip.MustParseAddr("2001:db8::2")
	sidR  = netip.MustParseAddr("fc00:a::bbbb")
)

func TestIPv6RoundTrip(t *testing.T) {
	h := IPv6{
		TrafficClass: 0xa5,
		FlowLabel:    0xbeef7,
		PayloadLen:   1234,
		NextHeader:   ProtoUDP,
		HopLimit:     63,
		Src:          addrA,
		Dst:          addrB,
	}
	enc := h.Encode(nil)
	if len(enc) != IPv6HeaderLen {
		t.Fatalf("encoded %d bytes", len(enc))
	}
	back, err := DecodeIPv6(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("round trip: got %+v, want %+v", back, h)
	}
}

func TestIPv6FieldPatching(t *testing.T) {
	h := IPv6{Src: addrA, Dst: addrB, HopLimit: 64, PayloadLen: 10}
	b := h.Encode(nil)
	if err := SetIPv6Dst(b, sidR); err != nil {
		t.Fatal(err)
	}
	if err := SetIPv6HopLimit(b, 9); err != nil {
		t.Fatal(err)
	}
	if err := SetIPv6PayloadLen(b, 99); err != nil {
		t.Fatal(err)
	}
	back, _ := DecodeIPv6(b)
	if back.Dst != sidR || back.HopLimit != 9 || back.PayloadLen != 99 {
		t.Fatalf("patched: %+v", back)
	}
	if d, _ := IPv6Dst(b); d != sidR {
		t.Error("IPv6Dst mismatch")
	}
	if s, _ := IPv6Src(b); s != addrA {
		t.Error("IPv6Src mismatch")
	}
}

func TestDecodeIPv6Errors(t *testing.T) {
	if _, err := DecodeIPv6(make([]byte, 39)); err == nil {
		t.Error("short buffer accepted")
	}
	b := IPv6{Src: addrA, Dst: addrB}.Encode(nil)
	b[0] = 4 << 4
	if _, err := DecodeIPv6(b); err == nil {
		t.Error("IPv4 version accepted")
	}
}

func TestSRHRoundTrip(t *testing.T) {
	srh := NewSRH(
		[]netip.Addr{sidR, addrB},
		DMTLV{TxTimestampNS: 0x1122334455667788},
		ControllerTLV{Addr: addrA, Port: 9999},
	)
	srh.Tag = 42
	enc, err := srh.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc)%8 != 0 {
		t.Fatalf("SRH length %d not 8-aligned", len(enc))
	}
	back, n, err := DecodeSRH(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Errorf("decoded length %d != %d", n, len(enc))
	}
	if back.SegmentsLeft != 1 || back.LastEntry != 1 || back.Tag != 42 {
		t.Errorf("fields: %+v", back)
	}
	// Wire order is reversed: Segments[0] is the final segment.
	if back.Segments[0] != addrB || back.Segments[1] != sidR {
		t.Errorf("segments: %v", back.Segments)
	}
	active, err := back.ActiveSegment()
	if err != nil || active != sidR {
		t.Errorf("active = %v, %v; want %v", active, err, sidR)
	}
	var gotDM, gotCtrl bool
	for _, tlv := range back.TLVs {
		switch v := tlv.(type) {
		case DMTLV:
			gotDM = v.TxTimestampNS == 0x1122334455667788
		case ControllerTLV:
			gotCtrl = v.Addr == addrA && v.Port == 9999
		}
	}
	if !gotDM || !gotCtrl {
		t.Errorf("TLVs not preserved: %+v", back.TLVs)
	}
}

func TestSRHValidation(t *testing.T) {
	srh := NewSRH([]netip.Addr{sidR, addrB})
	enc, _ := srh.Encode(nil)

	t.Run("valid", func(t *testing.T) {
		if err := ValidateSRHBytes(enc); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("bad routing type", func(t *testing.T) {
		bad := Clone(enc)
		bad[SRHOffRoutingType] = 3
		if err := ValidateSRHBytes(bad); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("segments_left beyond last_entry", func(t *testing.T) {
		bad := Clone(enc)
		bad[SRHOffSegmentsLeft] = 5
		if err := ValidateSRHBytes(bad); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if err := ValidateSRHBytes(enc[:len(enc)-8]); err == nil {
			t.Error("accepted")
		}
	})
	t.Run("garbage TLV area", func(t *testing.T) {
		srh := NewSRH([]netip.Addr{sidR}, PadN{N: 4})
		enc, _ := srh.Encode(nil)
		// First TLV starts right after the single segment; make its
		// length claim more bytes than the SRH holds.
		tlvOff := SRHFixedLen + 16
		enc[tlvOff] = 0x99
		enc[tlvOff+1] = 200
		if err := ValidateSRHBytes(enc); err == nil {
			t.Error("accepted")
		}
	})
}

func TestFindTLV(t *testing.T) {
	srh := NewSRH([]netip.Addr{sidR, addrB},
		DMTLV{TxTimestampNS: 7},
		ControllerTLV{Addr: addrA, Port: 53},
	)
	enc, _ := srh.Encode(nil)
	off, ok := FindTLV(enc, TLVTypeDM)
	if !ok {
		t.Fatal("DM TLV not found")
	}
	if enc[off] != TLVTypeDM {
		t.Errorf("offset %d does not point at DM TLV", off)
	}
	if ts := binary.BigEndian.Uint64(enc[off+2:]); ts != 7 {
		t.Errorf("timestamp at offset = %d", ts)
	}
	if _, ok := FindTLV(enc, 0x55); ok {
		t.Error("found nonexistent TLV")
	}
	offC, ok := FindTLV(enc, TLVTypeController)
	if !ok || offC <= off {
		t.Errorf("controller TLV at %d, ok=%v", offC, ok)
	}
}

func TestUDPBuildAndChecksum(t *testing.T) {
	payload := []byte("measurement")
	raw, err := BuildPacket(addrA, addrB, WithUDP(4000, 5000), WithPayload(payload))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.L4Proto != ProtoUDP {
		t.Fatalf("proto = %d", p.L4Proto)
	}
	udp, err := DecodeUDP(raw[p.L4Off:])
	if err != nil {
		t.Fatal(err)
	}
	if udp.SrcPort != 4000 || udp.DstPort != 5000 {
		t.Errorf("ports: %+v", udp)
	}
	if int(udp.Length) != UDPHeaderLen+len(payload) {
		t.Errorf("length = %d", udp.Length)
	}
	// Verify checksum: recomputing over the segment with the checksum
	// field zeroed must reproduce it.
	seg := Clone(raw[p.L4Off:])
	binary.BigEndian.PutUint16(seg[6:], 0)
	want := Checksum(addrA, addrB, ProtoUDP, seg)
	if udp.Checksum != want {
		t.Errorf("checksum = %#x, want %#x", udp.Checksum, want)
	}
	if !bytes.Equal(raw[p.L4Off+UDPHeaderLen:], payload) {
		t.Error("payload corrupted")
	}
}

func TestBuildWithSRH(t *testing.T) {
	srh := NewSRH([]netip.Addr{sidR, addrB})
	raw, err := BuildPacket(addrA, sidR, WithSRH(srh), WithUDP(1, 2), WithPayload([]byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if p.SRH == nil {
		t.Fatal("no SRH")
	}
	if p.SRH.NextHeader != ProtoUDP {
		t.Errorf("SRH next header = %d", p.SRH.NextHeader)
	}
	if p.IPv6.NextHeader != ProtoRouting {
		t.Errorf("IPv6 next header = %d", p.IPv6.NextHeader)
	}
	if p.L4Proto != ProtoUDP {
		t.Errorf("L4 proto = %d", p.L4Proto)
	}
	if int(p.IPv6.PayloadLen) != len(raw)-IPv6HeaderLen {
		t.Errorf("payload len = %d, total = %d", p.IPv6.PayloadLen, len(raw))
	}
	if !strings.Contains(p.Summary(), "SRH") {
		t.Errorf("summary: %s", p.Summary())
	}
}

func TestBuildEncapsulated(t *testing.T) {
	inner, err := BuildPacket(addrA, addrB, WithUDP(10, 20), WithPayload([]byte("inner")))
	if err != nil {
		t.Fatal(err)
	}
	srh := NewSRH([]netip.Addr{sidR, addrB})
	outer, err := BuildPacket(addrA, sidR, WithSRH(srh), WithInnerPacket(inner))
	if err != nil {
		t.Fatal(err)
	}
	p, err := Parse(outer)
	if err != nil {
		t.Fatal(err)
	}
	if p.SRH == nil || p.L4Proto != ProtoIPv6 || p.InnerOff == 0 {
		t.Fatalf("parse: %+v", p)
	}
	ip, err := Parse(outer[p.InnerOff:])
	if err != nil {
		t.Fatal(err)
	}
	if ip.IPv6.Dst != addrB || ip.L4Proto != ProtoUDP {
		t.Errorf("inner: %+v", ip.IPv6)
	}
}

func TestTCPRoundTrip(t *testing.T) {
	hdr := TCP{SrcPort: 80, DstPort: 1024, Seq: 1e9, Ack: 77, Flags: TCPFlagACK | TCPFlagPSH, Window: 65535}
	raw, err := BuildPacket(addrA, addrB, WithTCP(hdr), WithPayload([]byte("data")))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := Parse(raw)
	back, err := DecodeTCP(raw[p.L4Off:])
	if err != nil {
		t.Fatal(err)
	}
	if back.Seq != 1e9 || back.Ack != 77 || back.Flags != TCPFlagACK|TCPFlagPSH || back.Window != 65535 {
		t.Errorf("round trip: %+v", back)
	}
	seg := Clone(raw[p.L4Off:])
	binary.BigEndian.PutUint16(seg[16:], 0)
	if want := Checksum(addrA, addrB, ProtoTCP, seg); back.Checksum != want {
		t.Errorf("checksum = %#x want %#x", back.Checksum, want)
	}
}

func TestICMPv6RoundTrip(t *testing.T) {
	m := ICMPv6{Type: ICMPv6TimeExceeded, Code: 0, Body: []byte{0, 0, 0, 0, 1, 2, 3}}
	raw, err := BuildPacket(addrA, addrB, WithICMPv6(m))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := Parse(raw)
	if p.L4Proto != ProtoICMPv6 {
		t.Fatalf("proto = %d", p.L4Proto)
	}
	back, err := DecodeICMPv6(raw[p.L4Off:])
	if err != nil {
		t.Fatal(err)
	}
	if back.Type != ICMPv6TimeExceeded || !bytes.Equal(back.Body, m.Body) {
		t.Errorf("round trip: %+v", back)
	}
}

func TestChecksumProperties(t *testing.T) {
	// RFC 1071: checksumming a datagram that embeds its own correct
	// checksum yields zero (after the final inversion).
	for _, payload := range [][]byte{
		[]byte(""), []byte("x"), []byte("even"), []byte("the quick brown fox"),
	} {
		u := UDP{SrcPort: 9, DstPort: 10, Length: uint16(UDPHeaderLen + len(payload))}
		raw := u.Encode(nil)
		raw = append(raw, payload...)
		ck := Checksum(addrA, addrB, ProtoUDP, raw)
		binary.BigEndian.PutUint16(raw[6:], ck)
		if got := Checksum(addrA, addrB, ProtoUDP, raw); got != 0 {
			t.Errorf("payload %q: verification checksum = %#x, want 0", payload, got)
		}
	}
}

// TestSRHQuickRoundTrip round-trips random SRHs.
func TestSRHQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nSegs := 1 + r.Intn(6)
		var path []netip.Addr
		for i := 0; i < nSegs; i++ {
			var a [16]byte
			r.Read(a[:])
			a[0] = 0xfc
			path = append(path, netip.AddrFrom16(a))
		}
		var tlvs []TLV
		if r.Intn(2) == 0 {
			tlvs = append(tlvs, DMTLV{TxTimestampNS: r.Uint64()})
		}
		if r.Intn(2) == 0 {
			var a [16]byte
			r.Read(a[:])
			tlvs = append(tlvs, ControllerTLV{Addr: netip.AddrFrom16(a), Port: uint16(r.Uint32())})
		}
		srh := NewSRH(path, tlvs...)
		srh.Tag = uint16(r.Uint32())
		enc, err := srh.Encode(nil)
		if err != nil {
			return false
		}
		back, n, err := DecodeSRH(enc)
		if err != nil || n != len(enc) {
			return false
		}
		if back.Tag != srh.Tag || back.SegmentsLeft != srh.SegmentsLeft {
			return false
		}
		if len(back.Segments) != len(srh.Segments) {
			return false
		}
		for i := range back.Segments {
			if back.Segments[i] != srh.Segments[i] {
				return false
			}
		}
		// Re-encoding the decoded SRH must be byte-identical.
		enc2, err := back.Encode(nil)
		if err != nil {
			return false
		}
		return bytes.Equal(enc, enc2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte{1, 2, 3}); err == nil {
		t.Error("short packet parsed")
	}
	// IPv6 claiming an SRH but providing none.
	h := IPv6{Src: addrA, Dst: addrB, NextHeader: ProtoRouting, PayloadLen: 0}
	if _, err := Parse(h.Encode(nil)); err == nil {
		t.Error("missing SRH parsed")
	}
}

func TestNexthopsTLV(t *testing.T) {
	n := NexthopsTLV{Count: 2}
	n.Nexthops[0] = addrA
	n.Nexthops[1] = addrB
	srh := NewSRH([]netip.Addr{sidR}, n)
	enc, err := srh.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := DecodeSRH(enc)
	if err != nil {
		t.Fatal(err)
	}
	var got *NexthopsTLV
	for _, tlv := range back.TLVs {
		if v, ok := tlv.(NexthopsTLV); ok {
			got = &v
		}
	}
	if got == nil || got.Count != 2 || got.Nexthops[0] != addrA || got.Nexthops[1] != addrB {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestOpaqueTLVPreserved(t *testing.T) {
	srh := NewSRH([]netip.Addr{sidR}, OpaqueTLV{Type: 0x42, Data: []byte{9, 9}})
	enc, _ := srh.Encode(nil)
	back, _, err := DecodeSRH(enc)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tlv := range back.TLVs {
		if o, ok := tlv.(OpaqueTLV); ok && o.Type == 0x42 && bytes.Equal(o.Data, []byte{9, 9}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("opaque TLV lost: %+v", back.TLVs)
	}
}
