package netsim

import (
	"fmt"

	"srv6bpf/internal/netem"
)

// Iface is one end of a point-to-point link.
type Iface struct {
	Name string
	Node *Node
	peer *Iface
	q    *netem.Qdisc

	// Tap, when set, observes every packet accepted for transmission
	// (tests and tcpdump-style tracing).
	Tap func(raw []byte)

	TxPackets uint64
	TxBytes   uint64
	TxDrops   uint64
}

// Peer returns the interface at the other end.
func (i *Iface) Peer() *Iface { return i.peer }

// Qdisc exposes the shaping discipline (the TWD daemon adjusts
// ExtraDelayNs through it).
func (i *Iface) Qdisc() *netem.Qdisc { return i.q }

// Transmit serialises raw onto the link; the peer node receives it
// after serialisation, delay and jitter. Drops (queue overflow, loss)
// are counted on the interface.
func (i *Iface) Transmit(raw []byte) {
	sim := i.Node.Sim
	deliverAt, ok := i.q.Admit(sim.Now(), len(raw), sim.Rand())
	if !ok {
		i.TxDrops++
		return
	}
	i.TxPackets++
	i.TxBytes += uint64(len(raw))
	if i.Tap != nil {
		i.Tap(raw)
	}
	peer := i.peer
	sim.Schedule(deliverAt, func() {
		peer.Node.deliver(raw, peer)
	})
}

func (i *Iface) String() string {
	return fmt.Sprintf("%s/%s", i.Node.Name, i.Name)
}

// Connect joins two nodes with a bidirectional link; each direction
// gets its own qdisc built from its config. It returns a's and b's
// interfaces.
func Connect(a, b *Node, ab, ba netem.Config) (*Iface, *Iface) {
	ia := &Iface{
		Name: fmt.Sprintf("eth%d", len(a.ifaces)),
		Node: a,
		q:    netem.New(ab),
	}
	ib := &Iface{
		Name: fmt.Sprintf("eth%d", len(b.ifaces)),
		Node: b,
		q:    netem.New(ba),
	}
	ia.peer, ib.peer = ib, ia
	a.ifaces = append(a.ifaces, ia)
	b.ifaces = append(b.ifaces, ib)
	return ia, ib
}

// ConnectSymmetric joins two nodes with the same shaping in both
// directions.
func ConnectSymmetric(a, b *Node, cfg netem.Config) (*Iface, *Iface) {
	return Connect(a, b, cfg, cfg)
}
