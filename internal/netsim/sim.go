// Package netsim is the discrete-event network simulator that stands
// in for the paper's physical lab (three Xeon servers with 10 Gbps
// NICs, a Turris Omnia CPE, and tc-netem-shaped links; Figure 1 of
// the paper).
//
// Everything runs in virtual time: links serialise and delay packets
// through netem qdiscs, and each node charges per-packet CPU time
// from a calibrated cost model, reproducing the receive-limited
// behaviour the paper measures (a single core pinned to the NIC
// interrupt, 610 kpps of raw IPv6 forwarding). Determinism is total:
// the same seed yields the same packet-by-packet schedule.
package netsim

import (
	"math/rand"
)

// Event is one scheduled callback. Events are stored by value in the
// heap slice: scheduling one packet hop costs no heap object beyond
// the callback closure itself (and amortised slice growth), where the
// previous container/heap implementation boxed a *event per call.
type event struct {
	at  int64
	seq uint64 // tie-breaker preserving schedule order
	fn  func()
}

// eventHeap is a hand-rolled binary min-heap over event values,
// ordered by (at, seq). Avoiding container/heap avoids both the
// per-push allocation of the boxed element and the interface-method
// dispatch per sift step.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the callback for GC
	s = s[:n]
	*h = s

	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

// Sim is the simulation kernel: a virtual clock, an event queue and a
// seeded random source shared by every stochastic component (jitter,
// loss, sampling, ECMP tie-breaking in tests).
type Sim struct {
	now  int64
	heap eventHeap
	seq  uint64
	rng  *rand.Rand

	nodes []*Node
}

// New creates a simulation with the given random seed.
func New(seed int64) *Sim {
	return &Sim{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in nanoseconds.
func (s *Sim) Now() int64 { return s.now }

// Rand returns the simulation's random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Schedule runs fn at absolute virtual time at (clamped to now).
func (s *Sim) Schedule(at int64, fn func()) {
	if at < s.now {
		at = s.now
	}
	s.seq++
	s.heap.push(event{at: at, seq: s.seq, fn: fn})
}

// After runs fn d nanoseconds from now.
func (s *Sim) After(d int64, fn func()) { s.Schedule(s.now+d, fn) }

// Step executes the next event; it reports false when none remain.
func (s *Sim) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := s.heap.pop()
	s.now = e.at
	e.fn()
	return true
}

// Run executes events until the queue drains.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the
// clock to t.
func (s *Sim) RunUntil(t int64) {
	for len(s.heap) > 0 && s.heap[0].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Nodes returns all nodes added to the simulation.
func (s *Sim) Nodes() []*Node { return s.nodes }

// FailLink schedules a link failure at absolute virtual time at: both
// ends of i's link go down and packets on the wire are lost (see
// Iface.Fail).
func (s *Sim) FailLink(at int64, i *Iface) {
	s.Schedule(at, func() { i.Fail() })
}

// RestoreLink schedules the link coming back up at absolute virtual
// time at.
func (s *Sim) RestoreLink(at int64, i *Iface) {
	s.Schedule(at, func() { i.Restore() })
}

// Millisecond and friends make topology code readable.
const (
	Microsecond int64 = 1_000
	Millisecond int64 = 1_000_000
	Second      int64 = 1_000_000_000
)
