package experiments

// The observability profile: instead of measuring forwarding rate, it
// runs instrumented workloads and reports what the metrics plane saw —
// per-behavior execution-cost quantiles and queue delay from the §3.2
// lab, and the rollback-depth distribution of the optimistic engine
// under a sharded fat-tree mix. srv6bench -obs prints these rows and
// writeBenchJSON embeds them in the report.

import (
	"net/netip"
	"sort"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/core"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/netsim/topo"
	"srv6bpf/internal/nf/progs"
	"srv6bpf/internal/obs"
	"srv6bpf/internal/trafgen"
)

// ObsRow summarises one histogram of the observability profile. All
// values are virtual nanoseconds.
type ObsRow struct {
	Name  string  `json:"name"`
	Count uint64  `json:"count"`
	P50   uint64  `json:"p50_ns"`
	P90   uint64  `json:"p90_ns"`
	P99   uint64  `json:"p99_ns"`
	Max   uint64  `json:"max_ns"`
	Mean  float64 `json:"mean_ns"`
}

func obsRow(name string, h *obs.Histogram) ObsRow {
	return ObsRow{
		Name:  name,
		Count: h.Count(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
		Mean:  h.Mean(),
	}
}

// ObsProfile runs the two instrumented scenarios and returns their
// histogram rows: behavior:<name> and queue_delay from the lab run,
// rollback_depth from the optimistic fat-tree run.
func ObsProfile(durationNs int64) ([]ObsRow, error) {
	l := newLab1(1)
	l.sim.EnableObs(netsim.ObsOptions{Trace: true, SampleShift: 4})
	jit := true
	prog, err := bpf.LoadProgram(progs.TagIncrementSpec(), core.Seg6LocalHook(), nil, bpf.LoadOptions{JIT: &jit})
	if err != nil {
		return nil, err
	}
	end, err := core.AttachEndBPF(prog)
	if err != nil {
		return nil, err
	}
	l.r.AddRoute(&netsim.Route{Prefix: netip.PrefixFrom(rSID, 128), Kind: netsim.RouteSeg6Local, Behaviour: end.Behaviour()})
	l.offer(rSID, durationNs)

	hists := l.sim.BehaviorHists()
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	var rows []ObsRow
	for _, name := range names {
		rows = append(rows, obsRow("behavior:"+name, hists[name]))
	}
	rows = append(rows, obsRow("queue_delay", l.sim.QueueDelayHist()))

	rb, err := rollbackDepthRow(durationNs)
	if err != nil {
		return nil, err
	}
	rows = append(rows, rb)
	return rows, nil
}

// rollbackDepthRow replays the shard-scaling mix on a k=4 fat-tree
// under the optimistic engine with metrics on and reports how much
// virtual time each rollback undid.
func rollbackDepthRow(durationNs int64) (ObsRow, error) {
	sim := netsim.New(shardScalingSeed)
	nw, err := topo.FatTree(sim, 4, topo.Opts{
		Link: topo.LinkSpec{RateBps: 10_000_000_000, DelayNs: 25 * netsim.Microsecond},
	})
	if err != nil {
		return ObsRow{}, err
	}
	for _, h := range nw.Hosts {
		trafgen.NewSink(h, 9)
	}
	sim.EnableObs(netsim.ObsOptions{})
	pairs := nw.PermutationPairs(99)
	gens := make([]*trafgen.UDPGen, len(pairs))
	for i, pr := range pairs {
		gens[i] = &trafgen.UDPGen{
			Node: pr[0], Src: nw.HostAddr(pr[0]), Dst: nw.HostAddr(pr[1]),
			SrcPort: 1000, DstPort: 9, PayloadLen: 64,
			FlowLabel: func(n uint64) uint32 { return uint32(n % 16) },
			RatePPS:   20_000,
		}
	}
	if err := sim.SetShards(4, netsim.EngineOptimistic); err != nil {
		return ObsRow{}, err
	}
	for i, g := range gens {
		g := g
		g.Node.Schedule(int64(i)*netsim.Microsecond, func() {
			if err := g.Start(durationNs); err != nil {
				panic(err)
			}
		})
	}
	sim.RunUntil(durationNs)
	for _, g := range gens {
		g.Stop()
	}
	sim.Run()
	return obsRow("rollback_depth", sim.RollbackDepthHist()), nil
}
