// Delay monitoring (§4.1 of the paper): a BPF LWT program at the head
// of a path encapsulates a fraction of the traffic with an SRH
// carrying a delay-measurement TLV; End.DM at the tail reports both
// timestamps to a collector through a perf event and a relay daemon,
// then decapsulates. The example monitors a 25 ms path at two probing
// ratios and prints the measured one-way delay distribution.
//
// Run with: go run ./examples/delay-monitoring
package main

import (
	"fmt"
	"log"
	"net/netip"

	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/nf/delaymon"
	"srv6bpf/internal/packet"
)

var (
	srcAddr  = netip.MustParseAddr("2001:db8:1::1")
	headAddr = netip.MustParseAddr("2001:db8:10::1")
	tailAddr = netip.MustParseAddr("2001:db8:20::1")
	dstAddr  = netip.MustParseAddr("2001:db8:2::1")
	ctrlAddr = netip.MustParseAddr("2001:db8:99::1")
	dmSID    = netip.MustParseAddr("fc00:20::dd")
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func main() {
	for _, ratio := range []uint32{100, 10} {
		owd, reports := run(ratio)
		fmt.Printf("probing 1:%-5d  %d reports; one-way delay %s\n",
			ratio, reports, owd)
	}
	fmt.Println("\nThe monitored link is shaped to 25 ms ± 1 ms one-way;")
	fmt.Println("the BPF datapath measures it passively on live traffic.")
}

func run(ratio uint32) (string, uint64) {
	sim := netsim.New(42)
	src := sim.AddNode("src", netsim.HostCostModel())
	head := sim.AddNode("head", netsim.ServerCostModel())
	tail := sim.AddNode("tail", netsim.ServerCostModel())
	dst := sim.AddNode("dst", netsim.HostCostModel())
	ctrl := sim.AddNode("controller", netsim.HostCostModel())

	src.AddAddress(srcAddr)
	head.AddAddress(headAddr)
	tail.AddAddress(tailAddr)
	dst.AddAddress(dstAddr)
	ctrl.AddAddress(ctrlAddr)

	fast := netem.Config{RateBps: 10_000_000_000, DelayNs: 20 * netsim.Microsecond}
	monitored := netem.Config{RateBps: 10_000_000_000, DelayNs: 25 * netsim.Millisecond, JitterNs: netsim.Millisecond}

	srcIf, headSrcIf := netsim.ConnectSymmetric(src, head, fast)
	headTailIf, tailHeadIf := netsim.ConnectSymmetric(head, tail, monitored)
	tailDstIf, dstIf := netsim.ConnectSymmetric(tail, dst, fast)
	tailCtrlIf, ctrlIf := netsim.ConnectSymmetric(tail, ctrl, fast)

	src.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: srcIf}}})
	dst.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: dstIf}}})
	ctrl.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: ctrlIf}}})
	head.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:1::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: headSrcIf}}})
	head.AddRoute(&netsim.Route{Prefix: pfx("fc00:20::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: headTailIf}}})
	tail.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:2::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tailDstIf}}})
	tail.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:99::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tailCtrlIf}}})
	tail.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:1::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tailHeadIf}}})

	mon, err := delaymon.New(delaymon.Config{
		Ratio:          ratio,
		Controller:     ctrlAddr,
		ControllerPort: 7788,
		SID:            dmSID,
	}, true)
	if err != nil {
		log.Fatal(err)
	}
	mon.AttachHead(head, pfx("2001:db8:2::/48"), []netsim.Nexthop{{Iface: headTailIf}})
	mon.AttachTail(tail, dmSID)
	daemon := mon.StartDaemon(tail, netsim.Millisecond)

	collector := &delaymon.Collector{}
	collector.Listen(ctrl, 7788)

	// Live traffic: 10k packets at 20 kpps.
	const n = 10000
	for i := 0; i < n; i++ {
		i := i
		sim.Schedule(int64(i)*50*netsim.Microsecond, func() {
			raw, err := packet.BuildPacket(srcAddr, dstAddr,
				packet.WithUDP(5000, 6000),
				packet.WithPayload(make([]byte, 256)),
				packet.WithFlowLabel(uint32(i)&0xfffff))
			if err != nil {
				log.Fatal(err)
			}
			src.Output(raw)
		})
	}
	sim.RunUntil(2 * netsim.Second)
	daemon.Stop()
	sim.RunUntil(2*netsim.Second + 100*netsim.Millisecond)

	return fmt.Sprintf("%s (in ms: mean %.2f)",
		collector.Delays.Summary("ns"), collector.Delays.Mean()/1e6), collector.Received
}
