package netsim

// Forwarding-engine tests for the registry-driven behaviour dispatch:
// install-time validation through AddRoute, the tunnel-ingress hop
// limit contract at encap nodes, the mid-path decap drop, and the
// per-interface table binding the L3VPN scenario builds on.

import (
	"net/netip"
	"testing"

	"srv6bpf/internal/netem"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
)

// TestAddRouteValidatesBehaviour pins the install-time half of the
// registry contract: a misconfigured behaviour is rejected when the
// route is installed, not discovered packet by packet.
func TestAddRouteValidatesBehaviour(t *testing.T) {
	s := New(1)
	_, r, _ := lineTopo(s)
	before := len(r.Table(MainTable).Routes())

	bad := []*Route{
		// seg6local without a behaviour.
		{Prefix: pfx("fc00:1::/64"), Kind: RouteSeg6Local},
		// End.X without a nexthop.
		{Prefix: pfx("fc00:1::/64"), Kind: RouteSeg6Local,
			Behaviour: &seg6.Behaviour{Action: seg6.ActionEndX}},
		// A decap behaviour with a flavor it does not support.
		{Prefix: pfx("fc00:1::/64"), Kind: RouteSeg6Local,
			Behaviour: &seg6.Behaviour{Action: seg6.ActionEndDT6, Flavors: seg6.FlavorPSP}},
		// End.B6.Encaps without its policy SRH.
		{Prefix: pfx("fc00:1::/64"), Kind: RouteSeg6Local,
			Behaviour: &seg6.Behaviour{Action: seg6.ActionEndB6Encap}},
		// An action number nothing is registered for.
		{Prefix: pfx("fc00:1::/64"), Kind: RouteSeg6Local,
			Behaviour: &seg6.Behaviour{Action: seg6.Action(11)}},
		// seg6 encap without an SRH.
		{Prefix: pfx("fc00:1::/64"), Kind: RouteSeg6Encap},
	}
	for i, route := range bad {
		if err := r.AddRoute(route); err == nil {
			t.Errorf("bad route %d installed without error", i)
		}
	}
	// The route table was not touched by the rejected installs.
	if got := len(r.Table(MainTable).Routes()); got != before {
		t.Errorf("%d routes after rejected installs, want %d", got, before)
	}

	good := []*Route{
		{Prefix: pfx("fc00:1::/128"), Kind: RouteSeg6Local,
			Behaviour: &seg6.Behaviour{Action: seg6.ActionEnd, Flavors: seg6.FlavorPSP}},
		{Prefix: pfx("fc00:2::/128"), Kind: RouteSeg6Local,
			Behaviour: &seg6.Behaviour{Action: seg6.ActionEndDT46, Table: 9, Flavors: seg6.FlavorUSD}},
	}
	for i, route := range good {
		if err := r.AddRoute(route); err != nil {
			t.Errorf("good route %d rejected: %v", i, err)
		}
	}
}

// TestBindProxyReturnValidation: the proxy return-path binding checks
// its interface and that the behaviour has an inbound half.
func TestBindProxyReturnValidation(t *testing.T) {
	s := New(1)
	a, r, _ := lineTopo(s)
	rIf := r.Ifaces()[0]
	aIf := a.Ifaces()[0]

	am := &seg6.Behaviour{Action: seg6.ActionEndAM, OIF: rIf}
	if err := r.BindProxyReturn(rIf, am); err != nil {
		t.Errorf("valid binding rejected: %v", err)
	}
	if err := r.BindProxyReturn(aIf, am); err == nil {
		t.Error("foreign interface accepted")
	}
	// End has no inbound half.
	if err := r.BindProxyReturn(rIf, &seg6.Behaviour{Action: seg6.ActionEnd}); err == nil {
		t.Error("behaviour without a return path accepted")
	}
	if err := r.BindIfaceTable(aIf, 7); err == nil {
		t.Error("foreign interface table binding accepted")
	}
}

// TestEncapHopLimitContract pins the kernel's tunnel-ingress TTL
// behaviour end to end: when a transit node encapsulates, the *inner*
// hop limit is decremented for the forwarding hop and the outer
// inherits the decremented value; the packet then leaves as local
// output with no second decrement. The receiver must see exactly one
// decrement for the encap hop.
func TestEncapHopLimitContract(t *testing.T) {
	s := New(1)
	a, r, b := lineTopo(s)
	// The decap SID lives outside the encapped prefix so the encap
	// route never matches its own output.
	dt6 := netip.MustParseAddr("fc00:b::d6")
	b.AddAddress(dt6)

	// R encapsulates A->B traffic toward B's decap SID.
	if err := r.AddRoute(&Route{Prefix: pfx("2001:db8:b::/48"), Kind: RouteSeg6Encap,
		SRH: packet.NewSRH([]netip.Addr{dt6})}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddRoute(&Route{Prefix: pfx("fc00:b::/48"), Kind: RouteForward,
		Nexthops: []Nexthop{{Iface: r.Ifaces()[1]}}}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRoute(&Route{Prefix: netip.PrefixFrom(dt6, 128), Kind: RouteSeg6Local,
		Behaviour: &seg6.Behaviour{Action: seg6.ActionEndDT6}}); err != nil {
		t.Fatal(err)
	}

	var gotHL uint8
	b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) { gotHL = p.IPv6.HopLimit })
	raw, _ := packet.BuildPacket(aAddr, bAddr, packet.WithUDP(1, 7), packet.WithHopLimit(64))
	a.Output(raw)
	s.Run()
	// A originates (64), R's encap hop decrements the inner once (63),
	// B decapsulates. 64 would mean the decrement leaked onto the
	// discarded outer header; 62 a double decrement.
	if gotHL != 63 {
		t.Errorf("inner hop limit after encap hop = %d, want 63", gotHL)
	}
}

// TestDecapMidPathDrops is the forwarding-engine half of the
// SegmentsLeft regression: a decap SID reached while the SRH still
// has segments to visit counts a seg6local error drop — unless the
// behaviour opts in with USD.
func TestDecapMidPathDrops(t *testing.T) {
	for _, usd := range []bool{false, true} {
		s := New(1)
		a, r, b := lineTopo(s)
		sid := netip.MustParseAddr("2001:db8:aa::d6")
		b2 := &seg6.Behaviour{Action: seg6.ActionEndDT6}
		if usd {
			b2.Flavors = seg6.FlavorUSD
		}
		if err := r.AddRoute(&Route{Prefix: netip.PrefixFrom(sid, 128), Kind: RouteSeg6Local, Behaviour: b2}); err != nil {
			t.Fatal(err)
		}

		delivered := 0
		b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) { delivered++ })

		// A pre-encapsulated packet addressed to R's decap SID with one
		// segment still to visit.
		inner, _ := packet.BuildPacket(aAddr, bAddr, packet.WithUDP(1, 7))
		outer, err := seg6.Encap(inner, aAddr, packet.NewSRH([]netip.Addr{sid, bAddr}))
		if err != nil {
			t.Fatal(err)
		}
		a.Output(outer)
		s.Run()

		if usd {
			if delivered != 1 || r.Counters()["drop_seg6local_error"] != 0 {
				t.Errorf("USD: delivered=%d drops=%d", delivered, r.Counters()["drop_seg6local_error"])
			}
		} else {
			if delivered != 0 || r.Counters()["drop_seg6local_error"] != 1 {
				t.Errorf("mid-path decap: delivered=%d drops=%d, want a counted drop",
					delivered, r.Counters()["drop_seg6local_error"])
			}
		}
	}
}

// TestIfaceTableBinding: traffic entering a bound interface is looked
// up in the bound table instead of main (the L3VPN ingress VRF).
func TestIfaceTableBinding(t *testing.T) {
	s := New(1)
	a, r, b := lineTopo(s)
	cAddr := netip.MustParseAddr("2001:db8:c::1")
	b.AddAddress(cAddr)

	// R's main table has no route for 2001:db8:c::/48; table 50 does.
	raIf := r.Ifaces()[0]
	rbIf := r.Ifaces()[1]
	if err := r.BindIfaceTable(raIf, 50); err != nil {
		t.Fatal(err)
	}
	r.Table(50).Add(&Route{Prefix: pfx("2001:db8:c::/48"), Kind: RouteForward,
		Nexthops: []Nexthop{{Iface: rbIf}}})

	delivered := 0
	b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) { delivered++ })
	raw, _ := packet.BuildPacket(aAddr, cAddr, packet.WithUDP(1, 7))
	a.Output(raw)
	s.Run()
	if delivered != 1 {
		t.Errorf("delivered=%d: bound-table lookup did not fire", delivered)
	}
}

// TestProxyChainEndToEnd drives the End.AS proxy cycle through the
// forwarding engine on a minimal topology: R proxies to a VNF node
// that bounces packets back, and the re-encapsulated traffic reaches
// B's decap SID.
func TestProxyChainEndToEnd(t *testing.T) {
	s := New(1)
	a, r, b := lineTopo(s)
	vnf := s.AddNode("VNF", HostCostModel())
	vnf.AddAddress(netip.MustParseAddr("2001:db8:f::1"))
	vnfIf, rvIf := ConnectSymmetric(vnf, r, netem.Config{RateBps: 10_000_000_000, DelayNs: 10 * Microsecond})
	if err := vnf.AddRoute(&Route{Prefix: pfx("::/0"), Kind: RouteForward, Nexthops: []Nexthop{{Iface: vnfIf}}}); err != nil {
		t.Fatal(err)
	}

	asSID := netip.MustParseAddr("2001:db8:aa::a5")
	dt6 := netip.MustParseAddr("2001:db8:b::d6")
	asB := &seg6.Behaviour{
		Action: seg6.ActionEndAS,
		SRH:    packet.NewSRH([]netip.Addr{dt6}),
		Src:    netip.MustParseAddr("2001:db8:aa::1"),
		OIF:    rvIf,
	}
	if err := r.AddRoute(&Route{Prefix: netip.PrefixFrom(asSID, 128), Kind: RouteSeg6Local, Behaviour: asB}); err != nil {
		t.Fatal(err)
	}
	if err := r.BindProxyReturn(rvIf, asB); err != nil {
		t.Fatal(err)
	}
	if err := b.AddRoute(&Route{Prefix: netip.PrefixFrom(dt6, 128), Kind: RouteSeg6Local,
		Behaviour: &seg6.Behaviour{Action: seg6.ActionEndDT6}}); err != nil {
		t.Fatal(err)
	}
	// A steers B-bound traffic through the proxy SID.
	if err := a.AddRoute(&Route{Prefix: pfx("2001:db8:b::/48"), Kind: RouteSeg6Encap,
		SRH: packet.NewSRH([]netip.Addr{asSID, dt6})}); err != nil {
		t.Fatal(err)
	}

	delivered := 0
	b.HandleUDP(7, func(n *Node, p *packet.Packet, meta *PacketMeta) { delivered++ })
	raw, _ := packet.BuildPacket(aAddr, bAddr, packet.WithUDP(1, 7))
	a.Output(raw)
	s.Run()
	if delivered != 1 {
		t.Fatalf("delivered=%d: proxy chain broken (VNF rx=%v, R drops=%v)",
			delivered, vnf.Counters(), r.Counters())
	}
}
