package vm_test

import (
	"testing"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/vm"
	"srv6bpf/internal/core"
	"srv6bpf/internal/nf/progs"
)

// TestMachineRunZeroAlloc locks in the zero-allocation property of
// the execution engines: once an instance exists, Machine.Run on the
// End.BPF program (the paper's empty endpoint function) must not
// allocate, for both the interpreter and the JIT. The array-backed
// Memory and the pre-decoded dispatch are what make this hold; a
// regression here silently reintroduces per-packet garbage on every
// simulated hop.
func TestMachineRunZeroAlloc(t *testing.T) {
	for _, jit := range []bool{false, true} {
		name := "interp"
		if jit {
			name = "jit"
		}
		t.Run(name, func(t *testing.T) {
			jit := jit
			prog, err := bpf.LoadProgram(progs.EndSpec(), core.Seg6LocalHook(), nil,
				bpf.LoadOptions{JIT: &jit})
			if err != nil {
				t.Fatal(err)
			}
			inst, err := prog.NewInstance()
			if err != nil {
				t.Fatal(err)
			}
			ctx := make([]byte, core.CtxSize)
			inst.BindCtx(ctx)

			// Warm up once so lazy initialisation is out of the way.
			if _, err := inst.Run(vm.Pointer(vm.RegionCtx, 0)); err != nil {
				t.Fatal(err)
			}

			allocs := testing.AllocsPerRun(1000, func() {
				if _, err := inst.Run(vm.Pointer(vm.RegionCtx, 0)); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("Machine.Run(%s) allocates %.1f objects per run, want 0", name, allocs)
			}
		})
	}
}
