package vm

import (
	"fmt"

	"srv6bpf/internal/bpf/asm"
)

// runInterp is the fetch-decode-execute engine. Every step decodes
// the opcode fields again, which is exactly the overhead the JIT
// removes.
func (m *Machine) runInterp(ex *Executable) (uint64, error) {
	slots := ex.slots
	budget := m.budget()
	var steps uint64
	pc := 0

	for {
		if pc < 0 || pc >= len(slots) {
			m.Executed += steps
			return 0, ErrFellOff
		}
		s := &slots[pc]
		if s.pad {
			m.Executed += steps
			return 0, ErrBadJumpTarget
		}
		steps++
		if steps > budget {
			m.Executed += steps
			return 0, ErrMaxInstructions
		}

		op := s.op
		class := op.Class()
		switch class {
		case asm.ClassALU64, asm.ClassALU:
			aop := op.ALUOp()
			switch aop {
			case asm.Neg:
				if class == asm.ClassALU64 {
					m.Regs[s.dst] = -m.Regs[s.dst]
				} else {
					m.Regs[s.dst] = uint64(-uint32(m.Regs[s.dst]))
				}
			case asm.Swap:
				m.Regs[s.dst] = swapBytes(m.Regs[s.dst], s.imm, op.Source() == asm.RegSource)
			default:
				var operand uint64
				if op.Source() == asm.RegSource {
					operand = m.Regs[s.src]
				} else {
					operand = uint64(int64(int32(s.imm))) // sign-extend imm
				}
				if class == asm.ClassALU64 {
					m.Regs[s.dst] = alu64(aop, m.Regs[s.dst], operand)
				} else {
					m.Regs[s.dst] = alu32(aop, m.Regs[s.dst], operand)
				}
			}
			pc++

		case asm.ClassJump, asm.ClassJump32:
			jop := op.JumpOp()
			switch jop {
			case asm.Exit:
				m.Executed += steps
				return m.Regs[0], nil
			case asm.Call:
				if err := m.callHelper(s.imm); err != nil {
					m.Executed += steps
					return 0, err
				}
				pc++
			case asm.Ja:
				pc += 1 + int(s.off)
			default:
				var operand uint64
				if op.Source() == asm.RegSource {
					operand = m.Regs[s.src]
				} else {
					operand = uint64(int64(int32(s.imm)))
				}
				if jumpTaken(jop, m.Regs[s.dst], operand, class == asm.ClassJump) {
					pc += 1 + int(s.off)
				} else {
					pc++
				}
			}

		case asm.ClassLdX:
			v, err := m.Mem.Load(m.Regs[s.src]+uint64(int64(s.off)), op.Size().Bytes())
			if err != nil {
				m.Executed += steps
				return 0, err
			}
			m.Regs[s.dst] = v
			pc++

		case asm.ClassStX:
			addr := m.Regs[s.dst] + uint64(int64(s.off))
			if op.Mode() == asm.ModeXadd {
				sz := op.Size().Bytes()
				if sz != 4 && sz != 8 {
					m.Executed += steps
					return 0, fmt.Errorf("%w: atomic add size %d", ErrBadOpcode, sz)
				}
				cur, err := m.Mem.Load(addr, sz)
				if err != nil {
					m.Executed += steps
					return 0, err
				}
				if err := m.Mem.Store(addr, sz, cur+m.Regs[s.src]); err != nil {
					m.Executed += steps
					return 0, err
				}
			} else {
				if err := m.Mem.Store(addr, op.Size().Bytes(), m.Regs[s.src]); err != nil {
					m.Executed += steps
					return 0, err
				}
			}
			pc++

		case asm.ClassSt:
			addr := m.Regs[s.dst] + uint64(int64(s.off))
			if err := m.Mem.Store(addr, op.Size().Bytes(), uint64(int64(int32(s.imm)))); err != nil {
				m.Executed += steps
				return 0, err
			}
			pc++

		case asm.ClassLd:
			if op != asm.LoadImm64(0, 0).OpCode {
				m.Executed += steps
				return 0, fmt.Errorf("%w: %#02x", ErrBadOpcode, uint8(op))
			}
			m.Regs[s.dst] = uint64(s.imm)
			pc += 2 // skip the pad slot

		default:
			m.Executed += steps
			return 0, fmt.Errorf("%w: %#02x", ErrBadOpcode, uint8(op))
		}
	}
}
