package netsim

import (
	"fmt"
	"sync/atomic"

	"srv6bpf/internal/netem"
)

// Iface is one end of a point-to-point link.
type Iface struct {
	Name string
	Node *Node
	peer *Iface
	q    *netem.Qdisc

	// down marks the link as failed. Both ends of a link fail and
	// recover together (a cut cable, not an administrative shutdown of
	// one side); in a sharded run each end flips in its own shard at
	// the same virtual instant.
	down bool
	// failEpoch counts failures seen by this link end. A packet
	// records the sender end's epoch at transmission; the delivery
	// event compares it against the receiving end's epoch — the two
	// ends advance in virtual lockstep, so a mismatch means the wire
	// was cut under the packet, even if the link was restored in
	// between. Checking the receiving end keeps the delivery event
	// inside its own shard's state.
	failEpoch uint64

	// Tap, when set, observes every packet accepted for transmission
	// (tests and tcpdump-style tracing). It runs on the transmitting
	// node's shard.
	Tap func(raw []byte)

	// OnStateChange, when set, is invoked whenever the link state
	// flips (after the flip; up reports the new state). Both ends'
	// callbacks fire, each on its own node's shard.
	OnStateChange func(i *Iface, up bool)

	TxPackets uint64
	TxBytes   uint64
	TxDrops   uint64
	// DownDrops counts packets lost to link failure: transmissions
	// attempted while down (also counted in TxDrops) plus packets
	// that were in flight when the link went down (already counted in
	// TxPackets — they left this end but never arrived). In-flight
	// losses are detected by the receiving shard, so the field is
	// updated atomically; read it only while the sim is quiescent.
	DownDrops uint64
}

// Peer returns the interface at the other end.
func (i *Iface) Peer() *Iface { return i.peer }

// Qdisc exposes the shaping discipline (the TWD daemon adjusts
// ExtraDelayNs through it). The qdisc belongs to the transmitting
// node: adjust it only from that node's shard (or while quiescent).
func (i *Iface) Qdisc() *netem.Qdisc { return i.q }

// Up reports whether the link is up.
func (i *Iface) Up() bool { return !i.down }

// Fail takes the link down: both ends flip, every packet currently on
// the wire (in either direction) is lost, and further transmissions
// drop until Restore. Failing an already-down link is a no-op.
//
// Fail flips both ends synchronously, so during a sharded run it may
// only be called for links whose two ends share a shard (or from
// quiescent driver code); use Sim.FailLink to cut a cross-shard link
// at a scheduled instant.
func (i *Iface) Fail() { i.setLinkState(false) }

// Restore brings the link back up. Packets that were in flight during
// the outage stay lost; new transmissions flow again.
func (i *Iface) Restore() { i.setLinkState(true) }

// setLinkState flips both ends of the link.
func (i *Iface) setLinkState(up bool) {
	if s := i.Node.Sim; s.running && i.peer != nil && i.peer.Node.shard != i.Node.shard {
		panic("netsim: Iface.Fail/Restore on a cross-shard link inside a parallel run; use Sim.FailLink/RestoreLink")
	}
	for _, end := range [2]*Iface{i, i.peer} {
		if end != nil {
			end.setOneEnd(up)
		}
	}
}

// setOneEnd flips one end of the link: the per-shard half of a
// failure or restore. No-op when the end is already in the target
// state.
func (i *Iface) setOneEnd(up bool) {
	if i.down == !up {
		return
	}
	i.down = !up
	if !up {
		i.failEpoch++
		i.Node.Count("link_down")
	} else {
		i.Node.Count("link_up")
	}
	if i.OnStateChange != nil {
		i.OnStateChange(i, up)
	}
}

// Transmit serialises raw onto the link; the peer node receives it
// after serialisation and delay. Drops (queue overflow, loss, link
// down) are counted on the interface. Transmit runs on the sending
// node's shard; the delivery event is routed to the shard owning the
// peer, carrying the deterministic key the sequential schedule would
// have assigned it.
func (i *Iface) Transmit(raw []byte) {
	if i.down {
		i.TxDrops++
		atomic.AddUint64(&i.DownDrops, 1)
		return
	}
	n := i.Node
	now := n.Now()
	deliverAt, ok := i.q.Admit(now, len(raw), n.rng)
	if !ok {
		i.TxDrops++
		return
	}
	i.TxPackets++
	i.TxBytes += uint64(len(raw))
	if i.Tap != nil {
		i.Tap(raw)
	}
	peer := i.peer
	epoch := i.failEpoch
	n.schedK++
	n.shard.scheduleFor(peer.Node, event{
		at: deliverAt, schedAt: now, src: n.idx, k: n.schedK,
		fn: func() {
			// A failure between transmission and delivery cuts the wire
			// under the packet: it is lost even if the link has since
			// been restored. Both ends' epochs advance at the same
			// virtual instants, so the receiving end's epoch stands in
			// for the sender's.
			if peer.failEpoch != epoch {
				atomic.AddUint64(&i.DownDrops, 1)
				return
			}
			peer.Node.deliver(raw, peer)
		},
	})
}

func (i *Iface) String() string {
	return fmt.Sprintf("%s/%s", i.Node.Name, i.Name)
}

// Connect joins two nodes with a bidirectional link; each direction
// gets its own qdisc built from its config. It returns a's and b's
// interfaces.
func Connect(a, b *Node, ab, ba netem.Config) (*Iface, *Iface) {
	ia := &Iface{
		Name: fmt.Sprintf("eth%d", len(a.ifaces)),
		Node: a,
		q:    netem.New(ab),
	}
	ib := &Iface{
		Name: fmt.Sprintf("eth%d", len(b.ifaces)),
		Node: b,
		q:    netem.New(ba),
	}
	ia.peer, ib.peer = ib, ia
	a.ifaces = append(a.ifaces, ia)
	b.ifaces = append(b.ifaces, ib)
	return ia, ib
}

// ConnectSymmetric joins two nodes with the same shaping in both
// directions.
func ConnectSymmetric(a, b *Node, cfg netem.Config) (*Iface, *Iface) {
	return Connect(a, b, cfg, cfg)
}
