package core_test

import (
	"bytes"
	"errors"
	"net/netip"
	"testing"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/asm"
	"srv6bpf/internal/core"
	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
)

var (
	srcA = netip.MustParseAddr("2001:db8:a::1")
	dstB = netip.MustParseAddr("2001:db8:b::1")
	dstC = netip.MustParseAddr("2001:db8:c::1")
	sid  = netip.MustParseAddr("fc00:1::1")
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// rig is a star topology: A -- R -- B and R -- C, with an End.BPF SID
// on R, so verdict routing (FIB, nexthop, table) can be observed.
type rig struct {
	sim        *netsim.Sim
	a, r, b, c *netsim.Node
	rbIf, rcIf *netsim.Iface
	gotB, gotC *packet.Packet
}

func newRig(t *testing.T, spec *bpf.ProgramSpec) *rig {
	t.Helper()
	sim := netsim.New(1)
	g := &rig{
		sim: sim,
		a:   sim.AddNode("A", netsim.HostCostModel()),
		r:   sim.AddNode("R", netsim.ServerCostModel()),
		b:   sim.AddNode("B", netsim.HostCostModel()),
		c:   sim.AddNode("C", netsim.HostCostModel()),
	}
	g.a.AddAddress(srcA)
	g.b.AddAddress(dstB)
	g.c.AddAddress(dstC)
	g.r.AddAddress(netip.MustParseAddr("2001:db8:10::1"))

	fast := netem.Config{RateBps: 1e10, DelayNs: netsim.Microsecond}
	aIf, raIf := netsim.ConnectSymmetric(g.a, g.r, fast)
	rbIf, bIf := netsim.ConnectSymmetric(g.r, g.b, fast)
	rcIf, cIf := netsim.ConnectSymmetric(g.r, g.c, fast)
	g.rbIf, g.rcIf = rbIf, rcIf

	g.a.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: aIf}}})
	g.b.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: bIf}}})
	g.c.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: cIf}}})
	g.r.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:a::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: raIf}}})
	g.r.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:b::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: rbIf}}})
	g.r.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:c::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: rcIf}}})

	g.b.HandleUDP(9, func(n *netsim.Node, p *packet.Packet, meta *netsim.PacketMeta) { g.gotB = p })
	g.c.HandleUDP(9, func(n *netsim.Node, p *packet.Packet, meta *netsim.PacketMeta) { g.gotC = p })

	if spec != nil {
		prog, err := bpf.LoadProgram(spec, core.Seg6LocalHook(), nil, bpf.LoadOptions{})
		if err != nil {
			t.Fatalf("LoadProgram: %v", err)
		}
		end, err := core.AttachEndBPF(prog)
		if err != nil {
			t.Fatalf("AttachEndBPF: %v", err)
		}
		g.r.AddRoute(&netsim.Route{
			Prefix:    netip.PrefixFrom(sid, 128),
			Kind:      netsim.RouteSeg6Local,
			Behaviour: end.Behaviour(),
		})
	}
	return g
}

// send emits an SRv6 packet through the SID towards finalDst.
func (g *rig) send(t *testing.T, finalDst netip.Addr, tlvs ...packet.TLV) {
	t.Helper()
	srh := packet.NewSRH([]netip.Addr{sid, finalDst}, tlvs...)
	raw, err := packet.BuildPacket(srcA, sid, packet.WithSRH(srh),
		packet.WithUDP(1, 9), packet.WithPayload(make([]byte, 32)))
	if err != nil {
		t.Fatal(err)
	}
	g.a.Output(raw)
	g.sim.Run()
}

// actionSpec builds a program that calls bpf_lwt_seg6_action with the
// given action and parameter bytes, then returns BPF_REDIRECT.
func actionSpec(action seg6.Action, param []byte) *bpf.ProgramSpec {
	insns := asm.Instructions{asm.Mov64Reg(asm.R6, asm.R1)}
	// Write param onto the stack byte by byte.
	off := -int16(len(param))
	for i, b := range param {
		insns = append(insns, asm.StoreImm(asm.RFP, off+int16(i), int32(b), asm.Byte))
	}
	insns = append(insns,
		asm.Mov64Reg(asm.R1, asm.R6),
		asm.Mov64Imm(asm.R2, int32(action)),
		asm.Mov64Reg(asm.R3, asm.RFP),
		asm.ALU64Imm(asm.Add, asm.R3, int32(off)),
		asm.Mov64Imm(asm.R4, int32(len(param))),
		asm.CallHelper(bpf.HelperLWTSeg6Action),
		asm.JumpImm(asm.JNE, asm.R0, 0, "drop"),
		asm.Mov64Imm(asm.R0, core.BPFRedirect),
		asm.Return(),
		asm.Mov64Imm(asm.R0, core.BPFDrop).WithSymbol("drop"),
		asm.Return(),
	)
	return &bpf.ProgramSpec{Name: "action_test", Instructions: insns, License: "GPL"}
}

func TestSeg6ActionEndX(t *testing.T) {
	// End.X towards C's address even though the segment list says B.
	nh := dstC.As16()
	g := newRig(t, actionSpec(seg6.ActionEndX, nh[:]))
	g.send(t, dstB)
	// The packet's IPv6 dst is B (next segment) but it was steered out
	// R's C-facing interface; C's node sees dst=B and... forwards it
	// back per default route. Observe the egress interface instead.
	if g.rcIf.TxPackets == 0 {
		t.Fatalf("End.X did not steer out the C interface (B got %v)", g.gotB)
	}
}

func TestSeg6ActionEndT(t *testing.T) {
	// Table 5 routes B's prefix towards C: proves the lookup happened
	// in the program-selected table.
	g := newRig(t, actionSpec(seg6.ActionEndT, []byte{5, 0, 0, 0}))
	g.r.Table(5).Add(&netsim.Route{
		Prefix: pfx("2001:db8:b::/48"), Kind: netsim.RouteForward,
		Nexthops: []netsim.Nexthop{{Iface: g.rcIf}},
	})
	g.send(t, dstB)
	if g.rcIf.TxPackets == 0 {
		t.Fatal("End.T lookup did not use table 5")
	}
}

func TestSeg6ActionEndB6(t *testing.T) {
	// End.B6 pushes an extra SRH routing via C's SID... via C's addr.
	srh := packet.NewSRH([]netip.Addr{dstC})
	enc, err := srh.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	g := newRig(t, actionSpec(seg6.ActionEndB6, enc))
	g.send(t, dstB)
	if g.rcIf.TxPackets == 0 {
		t.Fatal("End.B6 did not steer towards the inserted SRH's segment")
	}
}

func TestSeg6ActionEndB6Encaps(t *testing.T) {
	srh := packet.NewSRH([]netip.Addr{dstC})
	enc, err := srh.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	g := newRig(t, actionSpec(seg6.ActionEndB6Encap, enc))
	// C terminates the outer tunnel (End.DT6 on its own address).
	g.c.AddRoute(&netsim.Route{
		Prefix:    netip.PrefixFrom(dstC, 128),
		Kind:      netsim.RouteSeg6Local,
		Behaviour: &seg6.Behaviour{Action: seg6.ActionEndDT6, Table: netsim.MainTable},
	})
	g.send(t, dstB)
	// Inner packet continues to B after decap at C.
	if g.gotB == nil {
		t.Fatalf("inner packet never reached B; C counters: %v", g.c.Counters())
	}
	if g.gotB.SRH == nil || g.gotB.SRH.SegmentsLeft != 0 {
		t.Errorf("inner SRH state: %s", g.gotB.Summary())
	}
}

func TestSeg6ActionEndDT6(t *testing.T) {
	// Build an encapsulated packet: outer to the SID, inner to B.
	inner, err := packet.BuildPacket(srcA, dstB, packet.WithUDP(1, 9), packet.WithPayload([]byte("inner")))
	if err != nil {
		t.Fatal(err)
	}
	g := newRig(t, actionSpec(seg6.ActionEndDT6, []byte{0, 0, 0, 0}))
	srh := packet.NewSRH([]netip.Addr{sid, dstB})
	outer, err := packet.BuildPacket(srcA, sid, packet.WithSRH(srh), packet.WithInnerPacket(inner))
	if err != nil {
		t.Fatal(err)
	}
	g.a.Output(outer)
	g.sim.Run()
	if g.gotB == nil {
		t.Fatalf("decapsulated packet missing; R: %v", g.r.Counters())
	}
	if g.gotB.SRH != nil {
		t.Errorf("outer SRH survived decap: %s", g.gotB.Summary())
	}
	if !bytes.HasSuffix(g.gotB.Raw, []byte("inner")) {
		t.Error("inner payload corrupted")
	}
}

func TestRedirectWithoutActionDrops(t *testing.T) {
	spec := &bpf.ProgramSpec{
		Name: "bare_redirect",
		Instructions: asm.Instructions{
			asm.Mov64Imm(asm.R0, core.BPFRedirect),
			asm.Return(),
		},
		License: "GPL",
	}
	g := newRig(t, spec)
	g.send(t, dstB)
	if g.gotB != nil {
		t.Fatal("BPF_REDIRECT without pending state forwarded the packet")
	}
	if g.r.Counters()["drop_seg6local_error"] == 0 {
		t.Errorf("counters: %v", g.r.Counters())
	}
}

func TestUnknownReturnCodeDrops(t *testing.T) {
	spec := &bpf.ProgramSpec{
		Name: "bad_code",
		Instructions: asm.Instructions{
			asm.Mov64Imm(asm.R0, 99),
			asm.Return(),
		},
		License: "GPL",
	}
	g := newRig(t, spec)
	g.send(t, dstB)
	if g.gotB != nil {
		t.Fatal("unknown return code forwarded the packet")
	}
}

func TestCtxFieldsVisibleToProgram(t *testing.T) {
	// The program checks ctx.protocol == 0x86dd and that
	// data + ctx.len == data_end; drops otherwise. (Pointer-minus-
	// pointer is rejected by the verifier, as in the kernel, so the
	// check is phrased as pointer + scalar vs pointer.)
	spec := &bpf.ProgramSpec{
		Name: "ctx_check",
		Instructions: asm.Instructions{
			asm.LoadMem(asm.R2, asm.R1, core.CtxOffProtocol, asm.Word),
			asm.JumpImm(asm.JNE, asm.R2, 0x86dd, "drop"),
			asm.LoadMem(asm.R3, asm.R1, core.CtxOffData, asm.DWord),
			asm.LoadMem(asm.R4, asm.R1, core.CtxOffDataEnd, asm.DWord),
			asm.LoadMem(asm.R5, asm.R1, core.CtxOffLen, asm.Word),
			asm.ALU64Reg(asm.Add, asm.R3, asm.R5),
			asm.JumpReg(asm.JNE, asm.R3, asm.R4, "drop"),
			asm.Mov64Imm(asm.R0, core.BPFOK),
			asm.Return(),
			asm.Mov64Imm(asm.R0, core.BPFDrop).WithSymbol("drop"),
			asm.Return(),
		},
		License: "GPL",
	}
	g := newRig(t, spec)
	g.send(t, dstB)
	if g.gotB == nil {
		t.Fatalf("ctx sanity program dropped the packet; R: %v", g.r.Counters())
	}
}

func TestSkbLoadBytesHelper(t *testing.T) {
	// Copy the IPv6 version byte via bpf_skb_load_bytes and verify.
	spec := &bpf.ProgramSpec{
		Name: "skb_load",
		Instructions: asm.Instructions{
			asm.Mov64Reg(asm.R6, asm.R1),
			asm.Mov64Imm(asm.R2, 0), // offset 0
			asm.Mov64Reg(asm.R3, asm.RFP),
			asm.ALU64Imm(asm.Add, asm.R3, -1),
			asm.Mov64Imm(asm.R4, 1),
			asm.CallHelper(bpf.HelperSkbLoadBytes),
			asm.JumpImm(asm.JNE, asm.R0, 0, "drop"),
			asm.LoadMem(asm.R2, asm.RFP, -1, asm.Byte),
			asm.ALU64Imm(asm.RSh, asm.R2, 4),
			asm.JumpImm(asm.JNE, asm.R2, 6, "drop"), // IPv6 version
			asm.Mov64Imm(asm.R0, core.BPFOK),
			asm.Return(),
			asm.Mov64Imm(asm.R0, core.BPFDrop).WithSymbol("drop"),
			asm.Return(),
		},
		License: "GPL",
	}
	g := newRig(t, spec)
	g.send(t, dstB)
	if g.gotB == nil {
		t.Fatalf("skb_load_bytes program dropped the packet; R: %v", g.r.Counters())
	}
}

func TestAdjustSRHShrink(t *testing.T) {
	// Shrink the SRH by the 8 bytes a pad TLV occupies; the packet
	// must stay valid and arrive smaller.
	spec := &bpf.ProgramSpec{
		Name: "shrink",
		Instructions: asm.Instructions{
			asm.Mov64Reg(asm.R6, asm.R1),
			// end-of-TLV-area offset: 40 + (hdrlen+1)*8.
			asm.LoadMem(asm.R7, asm.R6, core.CtxOffData, asm.DWord),
			asm.LoadMem(asm.R8, asm.R6, core.CtxOffDataEnd, asm.DWord),
			asm.Mov64Reg(asm.R2, asm.R7),
			asm.ALU64Imm(asm.Add, asm.R2, 48),
			asm.JumpReg(asm.JGT, asm.R2, asm.R8, "drop"),
			asm.LoadMem(asm.R9, asm.R7, 41, asm.Byte),
			asm.ALU64Imm(asm.Add, asm.R9, 1),
			asm.ALU64Imm(asm.LSh, asm.R9, 3),
			asm.ALU64Imm(asm.Add, asm.R9, 40),
			asm.ALU64Imm(asm.Sub, asm.R9, 8), // start of the last 8 bytes
			// adjust_srh(ctx, end-8, -8)
			asm.Mov64Reg(asm.R1, asm.R6),
			asm.Mov64Reg(asm.R2, asm.R9),
			asm.Mov64Imm(asm.R3, -8),
			asm.CallHelper(bpf.HelperLWTSeg6AdjustSRH),
			asm.JumpImm(asm.JNE, asm.R0, 0, "drop"),
			asm.Mov64Imm(asm.R0, core.BPFOK),
			asm.Return(),
			asm.Mov64Imm(asm.R0, core.BPFDrop).WithSymbol("drop"),
			asm.Return(),
		},
		License: "GPL",
	}
	g := newRig(t, spec)
	// Send with an 8-byte PadN TLV the program will strip.
	g.send(t, dstB, packet.PadN{N: 6})
	if g.gotB == nil {
		t.Fatalf("shrunk packet dropped; R: %v", g.r.Counters())
	}
	if len(g.gotB.SRH.TLVs) != 0 {
		t.Errorf("TLVs survived the shrink: %s", g.gotB.SRH.Summary())
	}
}

func TestAttachRejectsWrongHook(t *testing.T) {
	spec := &bpf.ProgramSpec{
		Name: "lwt_prog",
		Instructions: asm.Instructions{
			asm.Mov64Imm(asm.R0, core.BPFOK), asm.Return(),
		},
		License: "GPL",
	}
	lwtProg, err := bpf.LoadProgram(spec, core.LWTOutHook(), nil, bpf.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.AttachEndBPF(lwtProg); !errors.Is(err, core.ErrWrongHook) {
		t.Errorf("AttachEndBPF accepted an lwt_out program: %v", err)
	}
	seg6Prog, err := bpf.LoadProgram(spec, core.Seg6LocalHook(), nil, bpf.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.AttachLWT(seg6Prog); !errors.Is(err, core.ErrWrongHook) {
		t.Errorf("AttachLWT accepted a seg6local program: %v", err)
	}
}

func TestLWTDropVerdict(t *testing.T) {
	spec := &bpf.ProgramSpec{
		Name: "lwt_drop",
		Instructions: asm.Instructions{
			asm.Mov64Imm(asm.R0, core.BPFDrop), asm.Return(),
		},
		License: "GPL",
	}
	prog, err := bpf.LoadProgram(spec, core.LWTOutHook(), nil, bpf.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lwt, err := core.AttachLWT(prog)
	if err != nil {
		t.Fatal(err)
	}
	g := newRig(t, nil)
	g.r.AddRoute(&netsim.Route{
		Prefix: pfx("2001:db8:b::/48"), Kind: netsim.RouteLWTBPF, BPF: lwt,
		Nexthops: []netsim.Nexthop{{Iface: g.rbIf}},
	})
	raw, _ := packet.BuildPacket(srcA, dstB, packet.WithUDP(1, 9))
	g.a.Output(raw)
	g.sim.Run()
	if g.gotB != nil {
		t.Fatal("LWT BPF_DROP did not drop")
	}
	if g.r.Counters()["drop_lwt_bpf"] != 1 {
		t.Errorf("counters: %v", g.r.Counters())
	}
}

func TestLWTPushEncapInline(t *testing.T) {
	// Inline mode splices the SRH into the existing packet instead of
	// adding an outer IPv6 header.
	srh := packet.NewSRH([]netip.Addr{dstB})
	enc, err := srh.Encode(nil)
	if err != nil {
		t.Fatal(err)
	}
	insns := asm.Instructions{asm.Mov64Reg(asm.R6, asm.R1)}
	off := -int16(len(enc))
	for i, b := range enc {
		insns = append(insns, asm.StoreImm(asm.RFP, off+int16(i), int32(b), asm.Byte))
	}
	insns = append(insns,
		asm.Mov64Reg(asm.R1, asm.R6),
		asm.Mov64Imm(asm.R2, core.EncapSeg6Inline),
		asm.Mov64Reg(asm.R3, asm.RFP),
		asm.ALU64Imm(asm.Add, asm.R3, int32(off)),
		asm.Mov64Imm(asm.R4, int32(len(enc))),
		asm.CallHelper(bpf.HelperLWTPushEncap),
		asm.JumpImm(asm.JNE, asm.R0, 0, "drop"),
		asm.Mov64Imm(asm.R0, core.BPFOK),
		asm.Return(),
		asm.Mov64Imm(asm.R0, core.BPFDrop).WithSymbol("drop"),
		asm.Return(),
	)
	spec := &bpf.ProgramSpec{Name: "inline_encap", Instructions: insns, License: "GPL"}
	prog, err := bpf.LoadProgram(spec, core.LWTOutHook(), nil, bpf.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lwt, err := core.AttachLWT(prog)
	if err != nil {
		t.Fatal(err)
	}
	g := newRig(t, nil)
	g.r.AddRoute(&netsim.Route{
		Prefix: pfx("2001:db8:b::/48"), Kind: netsim.RouteLWTBPF, BPF: lwt,
		Nexthops: []netsim.Nexthop{{Iface: g.rbIf}},
	})
	raw, _ := packet.BuildPacket(srcA, dstB, packet.WithUDP(1, 9), packet.WithPayload([]byte("pay")))
	g.a.Output(raw)
	g.sim.Run()
	if g.gotB == nil {
		t.Fatalf("inline-encapsulated packet lost; R: %v", g.r.Counters())
	}
	if g.gotB.SRH == nil {
		t.Fatal("no SRH after inline encap")
	}
	// Inline: no inner IPv6; the UDP payload follows the SRH directly.
	if g.gotB.L4Proto != packet.ProtoUDP {
		t.Errorf("l4 = %d after inline encap", g.gotB.L4Proto)
	}
}

func TestTracePrintkReachesNodeTrace(t *testing.T) {
	spec := &bpf.ProgramSpec{
		Name: "printer",
		Instructions: asm.Instructions{
			asm.StoreImm(asm.RFP, -2, 'h', asm.Byte),
			asm.StoreImm(asm.RFP, -1, 'i', asm.Byte),
			asm.Mov64Reg(asm.R1, asm.RFP),
			asm.ALU64Imm(asm.Add, asm.R1, -2),
			asm.Mov64Imm(asm.R2, 2),
			asm.CallHelper(bpf.HelperTracePrintk),
			asm.Mov64Imm(asm.R0, core.BPFOK),
			asm.Return(),
		},
		License: "GPL",
	}
	g := newRig(t, spec)
	var logs []string
	g.r.Trace = func(format string, args ...any) {
		logs = append(logs, format)
	}
	g.send(t, dstB)
	if len(logs) == 0 {
		t.Fatal("trace_printk output did not reach Node.Trace")
	}
}
