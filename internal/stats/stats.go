// Package stats provides the small measurement toolkit the benchmark
// harness uses: counters, rate computation over virtual time, online
// mean/stddev (Welford), and quantile estimation over bounded sample
// reservoirs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counter counts events. The simulator is single-threaded per node,
// so no atomics are needed; keep it a plain integer with methods for
// readability.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Rate converts a count observed over a virtual-time window into a
// per-second rate.
func Rate(count uint64, windowNs int64) float64 {
	if windowNs <= 0 {
		return 0
	}
	return float64(count) * 1e9 / float64(windowNs)
}

// BitsPerSecond converts a byte count over a window to bits/s.
func BitsPerSecond(bytes uint64, windowNs int64) float64 {
	if windowNs <= 0 {
		return 0
	}
	return float64(bytes) * 8 * 1e9 / float64(windowNs)
}

// Welford accumulates mean and variance online.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the (population) variance.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Stddev returns the population standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Variance()) }

// Merge folds another accumulator into w (Chan et al.'s parallel
// variance combination): the merge primitive for shard-local
// measurement accumulators — merging them in a fixed shard order
// yields a deterministic result, the same discipline Sharded.Total
// applies to counters. Experiment harnesses that collect per-shard
// Welford series combine them with this.
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// shardCell is one shard's private counter, padded to a cache line so
// concurrent shards never false-share.
type shardCell struct {
	v uint64
	_ [7]uint64
}

// Sharded is a counter split into per-shard cells: each shard
// increments only its own cell (no atomics, no sharing), and Total
// sums the cells in shard order — a deterministic merge, because
// each cell's final value depends only on its shard's deterministic
// execution. Zero value is unusable; see NewSharded.
type Sharded struct {
	cells []shardCell
}

// NewSharded creates a sharded counter with n cells.
func NewSharded(n int) *Sharded {
	if n < 1 {
		n = 1
	}
	return &Sharded{cells: make([]shardCell, n)}
}

// Inc adds one to shard's cell. Only shard's own goroutine may call
// it for a given index while the simulation runs.
func (s *Sharded) Inc(shard int) { s.cells[shard].v++ }

// Add adds delta to shard's cell.
func (s *Sharded) Add(shard int, delta uint64) { s.cells[shard].v += delta }

// Cell reads one shard's private count.
func (s *Sharded) Cell(shard int) uint64 { return s.cells[shard].v }

// Cells reports the number of cells.
func (s *Sharded) Cells() int { return len(s.cells) }

// Total merges the cells (deterministically: fixed shard order).
// Call it only at a barrier or after the run.
func (s *Sharded) Total() uint64 {
	var t uint64
	for i := range s.cells {
		t += s.cells[i].v
	}
	return t
}

// Reset zeroes every cell.
func (s *Sharded) Reset() {
	for i := range s.cells {
		s.cells[i].v = 0
	}
}

// Reservoir keeps up to Cap samples for quantile estimation. Once
// full it stops admitting (the experiments bound sample counts
// explicitly, so no random replacement is needed; Saturated reports
// whether truncation happened).
type Reservoir struct {
	Cap     int
	samples []float64
	dropped uint64
	sorted  bool
}

// Add records a sample if capacity remains.
func (r *Reservoir) Add(x float64) {
	if r.Cap > 0 && len(r.samples) >= r.Cap {
		r.dropped++
		return
	}
	r.samples = append(r.samples, x)
	r.sorted = false
}

// N returns the number of retained samples.
func (r *Reservoir) N() int { return len(r.samples) }

// Mark returns a rollback mark: the sample and drop counts. Together
// with Rewind it lets rollback-aware collectors (netsim's optimistic
// engine) discard samples recorded by speculative execution. Marks
// are only valid while no Quantile call reorders the samples — i.e.
// across the append-only measurement phase.
func (r *Reservoir) Mark() (n int, dropped uint64) { return len(r.samples), r.dropped }

// Rewind truncates the reservoir back to a previous Mark.
func (r *Reservoir) Rewind(n int, dropped uint64) {
	r.samples = r.samples[:n]
	r.dropped = dropped
	r.sorted = false
}

// Saturated reports whether samples were dropped.
func (r *Reservoir) Saturated() bool { return r.dropped > 0 }

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank over
// retained samples; NaN when empty.
func (r *Reservoir) Quantile(q float64) float64 {
	if len(r.samples) == 0 {
		return math.NaN()
	}
	if !r.sorted {
		sort.Float64s(r.samples)
		r.sorted = true
	}
	idx := int(q*float64(len(r.samples)-1) + 0.5)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(r.samples) {
		idx = len(r.samples) - 1
	}
	return r.samples[idx]
}

// Mean returns the sample mean.
func (r *Reservoir) Mean() float64 {
	if len(r.samples) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range r.samples {
		s += x
	}
	return s / float64(len(r.samples))
}

// Summary formats n, mean and p50/p99 for reports.
func (r *Reservoir) Summary(unit string) string {
	if r.N() == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d mean=%.2f%s p50=%.2f%s p99=%.2f%s",
		r.N(), r.Mean(), unit, r.Quantile(0.5), unit, r.Quantile(0.99), unit)
}
