package obs

import "sync"

// EnginePoint is one sample of the shard engine's vital signs, taken
// once per synchronisation round (GVT round under the optimistic
// engine, lookahead window under the conservative one).
type EnginePoint struct {
	Round        int64  `json:"round"`
	VirtualNs    int64  `json:"virtual_ns"` // GVT / window floor
	Events       uint64 `json:"events"`
	Messages     uint64 `json:"messages"`
	Rollbacks    uint64 `json:"rollbacks"`
	AntiMessages uint64 `json:"anti_messages"`
	Checkpoints  uint64 `json:"checkpoints"`
	CkptBytes    uint64 `json:"ckpt_bytes"`
	HorizonNs    int64  `json:"horizon_ns"`
}

// Series is a fixed-capacity ring buffer of EnginePoints. Push is
// called by the engine coordinator between rounds; Points may be
// read concurrently by export handlers.
type Series struct {
	mu   sync.Mutex
	buf  []EnginePoint
	next int
	full bool
}

// NewSeries returns a ring holding the most recent capacity points.
func NewSeries(capacity int) *Series {
	if capacity < 1 {
		capacity = 1
	}
	return &Series{buf: make([]EnginePoint, capacity)}
}

// Push appends a point, evicting the oldest when full.
func (s *Series) Push(p EnginePoint) {
	s.mu.Lock()
	s.buf[s.next] = p
	s.next++
	if s.next == len(s.buf) {
		s.next = 0
		s.full = true
	}
	s.mu.Unlock()
}

// Len reports how many points are held.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.full {
		return len(s.buf)
	}
	return s.next
}

// Points returns the held points oldest-first as a copy.
func (s *Series) Points() []EnginePoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.full {
		out := make([]EnginePoint, s.next)
		copy(out, s.buf[:s.next])
		return out
	}
	out := make([]EnginePoint, 0, len(s.buf))
	out = append(out, s.buf[s.next:]...)
	out = append(out, s.buf[:s.next]...)
	return out
}
