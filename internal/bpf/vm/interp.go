package vm

import (
	"fmt"
)

// runInterp is the fetch-execute engine. Decoding happened once in
// expand: each slot is a flat micro-op, so one step is a single-byte
// dispatch plus the operation itself. The remaining gap to the JIT is
// the switch itself, which the compiled closures replace with direct
// calls.
func (m *Machine) runInterp(ex *Executable) (uint64, error) {
	slots := ex.slots
	budget := m.budget()
	var steps uint64
	pc := 0

	for {
		if pc < 0 || pc >= len(slots) {
			m.Executed += steps
			return 0, ErrFellOff
		}
		s := &slots[pc]
		steps++
		if steps > budget {
			m.Executed += steps
			return 0, ErrMaxInstructions
		}

		switch s.kind {
		case uALU64Reg:
			m.Regs[s.dst] = alu64(s.aluop, m.Regs[s.dst], m.Regs[s.src])
			pc++
		case uALU64Imm:
			m.Regs[s.dst] = alu64(s.aluop, m.Regs[s.dst], s.operand)
			pc++
		case uALU32Reg:
			m.Regs[s.dst] = alu32(s.aluop, m.Regs[s.dst], m.Regs[s.src])
			pc++
		case uALU32Imm:
			m.Regs[s.dst] = alu32(s.aluop, m.Regs[s.dst], s.operand)
			pc++
		case uNeg64:
			m.Regs[s.dst] = -m.Regs[s.dst]
			pc++
		case uNeg32:
			m.Regs[s.dst] = uint64(-uint32(m.Regs[s.dst]))
			pc++
		case uSwap:
			m.Regs[s.dst] = swapBytes(m.Regs[s.dst], s.imm, s.src != 0)
			pc++

		case uExit:
			m.Executed += steps
			return m.Regs[0], nil
		case uCall:
			if err := m.callHelper(s.imm); err != nil {
				m.Executed += steps
				return 0, err
			}
			pc++
		case uJa:
			pc = int(s.target)
		case uJmpReg:
			if jumpTaken(s.jumpop, m.Regs[s.dst], m.Regs[s.src], true) {
				pc = int(s.target)
			} else {
				pc++
			}
		case uJmpImm:
			if jumpTaken(s.jumpop, m.Regs[s.dst], s.operand, true) {
				pc = int(s.target)
			} else {
				pc++
			}
		case uJmp32Reg:
			if jumpTaken(s.jumpop, m.Regs[s.dst], m.Regs[s.src], false) {
				pc = int(s.target)
			} else {
				pc++
			}
		case uJmp32Imm:
			if jumpTaken(s.jumpop, m.Regs[s.dst], s.operand, false) {
				pc = int(s.target)
			} else {
				pc++
			}

		case uLoad:
			v, err := m.Mem.Load(m.Regs[s.src]+uint64(int64(s.off)), int(s.size))
			if err != nil {
				m.Executed += steps
				return 0, err
			}
			m.Regs[s.dst] = v
			pc++

		case uStoreReg:
			if err := m.Mem.Store(m.Regs[s.dst]+uint64(int64(s.off)), int(s.size), m.Regs[s.src]); err != nil {
				m.Executed += steps
				return 0, err
			}
			pc++

		case uStoreImm:
			if err := m.Mem.Store(m.Regs[s.dst]+uint64(int64(s.off)), int(s.size), s.operand); err != nil {
				m.Executed += steps
				return 0, err
			}
			pc++

		case uXadd:
			if s.size != 4 && s.size != 8 {
				m.Executed += steps
				return 0, fmt.Errorf("%w: atomic add size %d", ErrBadOpcode, s.size)
			}
			addr := m.Regs[s.dst] + uint64(int64(s.off))
			cur, err := m.Mem.Load(addr, int(s.size))
			if err != nil {
				m.Executed += steps
				return 0, err
			}
			if err := m.Mem.Store(addr, int(s.size), cur+m.Regs[s.src]); err != nil {
				m.Executed += steps
				return 0, err
			}
			pc++

		case uLdImm64:
			m.Regs[s.dst] = uint64(s.imm)
			pc = int(s.target)

		case uPad:
			m.Executed += steps
			return 0, ErrBadJumpTarget

		default: // uBad
			m.Executed += steps
			return 0, fmt.Errorf("%w: %#02x", ErrBadOpcode, uint8(s.op))
		}
	}
}
