package srv6bpf

// Regression locks for the zero-allocation End.BPF datapath. The
// numbers behind BenchmarkDatapath are an acceptance surface, not
// just telemetry: the steady-state End.BPF path (ParseInfo walk,
// in-place SRH advance, pooled execEnv, rebound packet segment,
// pre-decoded VM dispatch) must stay allocation-free. Timing is
// machine-dependent and is not asserted; allocation counts are exact
// and are.

import (
	"testing"

	"srv6bpf/internal/experiments"
	"srv6bpf/internal/netsim"
)

// TestDatapathAllocRegression runs the canonical datapath benchmark
// (the same experiments.DatapathBench that srv6bench -bench-json
// publishes, measured via testing.Benchmark — the -benchmem figures)
// and requires 0 allocs/op on every row that must be allocation-free
// in the steady state. Add TLV legitimately allocates: the program
// grows the packet, which cannot be done in place.
func TestDatapathAllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-backed regression test skipped in -short mode")
	}
	rows, err := experiments.DatapathBench()
	if err != nil {
		t.Fatal(err)
	}
	zeroAlloc := map[string]bool{
		"End-static-go": true,
		"EndBPF-jit":    true,
		"EndBPF-interp": true,
		"TagInc-jit":    true,
		"TagInc-interp": true,
	}
	seen := 0
	for _, r := range rows {
		t.Logf("%-15s %6.0f ns/op  %d allocs/op  %d B/op", r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
		if !zeroAlloc[r.Name] {
			continue
		}
		seen++
		if r.AllocsPerOp != 0 {
			t.Errorf("%s: %d allocs/op (%d B/op), want 0", r.Name, r.AllocsPerOp, r.BytesPerOp)
		}
	}
	if seen != len(zeroAlloc) {
		t.Fatalf("datapath bench reported %d of %d zero-alloc rows", seen, len(zeroAlloc))
	}
}

// TestSimSteadyStateAllocs guards the netsim-side pooling: scheduling
// and draining events must not allocate per event beyond the commit
// closure itself (heap entries are stored by value and reused).
func TestSimSteadyStateAllocs(t *testing.T) {
	sim := netsim.New(7)
	sim.AddNode("solo", netsim.HostCostModel())

	// Warm the event heap so slice growth is done.
	for i := 0; i < 64; i++ {
		sim.After(int64(i), func() {})
	}
	sim.Run()

	allocs := testing.AllocsPerRun(1000, func() {
		sim.After(10, func() {})
		sim.Run()
	})
	// One closure per After is expected; the event itself must not be
	// a second heap object (container/heap boxed one per push).
	if allocs > 1 {
		t.Fatalf("sim schedule/drain allocates %.1f objects per event, want <= 1 (the closure)", allocs)
	}
}
