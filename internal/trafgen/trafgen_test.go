package trafgen

import (
	"math"
	"net/netip"
	"testing"

	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/packet"
)

var (
	genAddr  = netip.MustParseAddr("2001:db8:1::1")
	sinkAddr = netip.MustParseAddr("2001:db8:2::1")
)

func pipe() (*netsim.Sim, *netsim.Node, *netsim.Node) {
	s := netsim.New(5)
	a := s.AddNode("gen", netsim.HostCostModel())
	b := s.AddNode("sink", netsim.HostCostModel())
	a.AddAddress(genAddr)
	b.AddAddress(sinkAddr)
	aIf, bIf := netsim.ConnectSymmetric(a, b, netem.Config{RateBps: 10_000_000_000})
	a.AddRoute(&netsim.Route{Prefix: netip.MustParsePrefix("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: aIf}}})
	b.AddRoute(&netsim.Route{Prefix: netip.MustParsePrefix("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: bIf}}})
	return s, a, b
}

func TestGeneratorRateAndSink(t *testing.T) {
	s, a, b := pipe()
	sink := NewSink(b, 9000)
	gen := &UDPGen{
		Node: a, Src: genAddr, Dst: sinkAddr,
		SrcPort: 1, DstPort: 9000,
		PayloadLen: 64,
		RatePPS:    100_000,
	}
	if err := gen.Start(100 * netsim.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.Run()
	// 100 kpps over 100 ms = 10k packets.
	if math.Abs(float64(gen.Sent())-10_000) > 10 {
		t.Errorf("sent %d, want ≈10000", gen.Sent())
	}
	if sink.Packets != gen.Sent() {
		t.Errorf("sink got %d of %d", sink.Packets, gen.Sent())
	}
	if r := sink.RatePPS(); math.Abs(r-100_000)/100_000 > 0.01 {
		t.Errorf("sink rate = %.0f pps", r)
	}
	// Goodput counts payload only: 64 bytes per packet.
	wantBps := 64 * 8 * 100_000.0
	if g := sink.GoodputBps(); math.Abs(g-wantBps)/wantBps > 0.01 {
		t.Errorf("goodput = %.0f bps, want ≈%.0f", g, wantBps)
	}
}

func TestGeneratorWithSRH(t *testing.T) {
	s, a, b := pipe()
	var sawSRH bool
	b.HandleUDP(9001, func(n *netsim.Node, p *packet.Packet, meta *netsim.PacketMeta) {
		sawSRH = p.SRH != nil && p.SRH.SegmentsLeft == 0
	})
	gen := &UDPGen{
		Node: a, Src: genAddr, Dst: sinkAddr,
		SrcPort: 1, DstPort: 9001, PayloadLen: 64,
		SRH:     packet.NewSRH([]netip.Addr{sinkAddr}),
		RatePPS: 1000,
	}
	if err := gen.Start(5 * netsim.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !sawSRH {
		t.Error("SRH missing at sink")
	}
	// 64B payload + UDP 8 + SRH 24 + IPv6 40 = 136.
	if gen.WireSize() != 136 {
		t.Errorf("wire size = %d", gen.WireSize())
	}
}

func TestFlowLabelVariation(t *testing.T) {
	s, a, b := pipe()
	labels := map[uint32]bool{}
	b.HandleUDP(9002, func(n *netsim.Node, p *packet.Packet, meta *netsim.PacketMeta) {
		labels[p.IPv6.FlowLabel] = true
	})
	gen := &UDPGen{
		Node: a, Src: genAddr, Dst: sinkAddr,
		SrcPort: 1, DstPort: 9002, PayloadLen: 16,
		RatePPS:   10_000,
		FlowLabel: func(i uint64) uint32 { return uint32(i % 7) },
	}
	if err := gen.Start(10 * netsim.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(labels) != 7 {
		t.Errorf("distinct labels = %d, want 7", len(labels))
	}
}

func TestSinkReset(t *testing.T) {
	s, a, b := pipe()
	sink := NewSink(b, 9003)
	gen := &UDPGen{Node: a, Src: genAddr, Dst: sinkAddr, SrcPort: 1, DstPort: 9003, PayloadLen: 8, RatePPS: 1000}
	if err := gen.Start(10 * netsim.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if sink.Packets == 0 {
		t.Fatal("no packets")
	}
	sink.Reset()
	if sink.Packets != 0 || sink.Window() != 0 {
		t.Error("reset incomplete")
	}
}
