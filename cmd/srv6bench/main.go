// Command srv6bench regenerates the tables and figures of the paper's
// evaluation and prints them in the same form the paper reports:
// normalized forwarding rates for Figures 2 and 3, the goodput-vs-
// payload series of Figure 4, the §4.2 TCP goodputs, and the §3.2
// JIT factor.
//
// Usage:
//
//	srv6bench [-fig 2|3|4] [-tcp] [-jit] [-obs] [-all] [-duration 200ms]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"srv6bpf/internal/experiments"
	"srv6bpf/internal/netsim"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (2, 3 or 4)")
	tcp := flag.Bool("tcp", false, "run the §4.2 TCP experiment")
	jit := flag.Bool("jit", false, "report the §3.2 JIT-off factor")
	frr := flag.Bool("frr", false, "run the fast-reroute recovery experiment")
	flapstorm := flag.Bool("flapstorm", false, "run the flap-storm damping experiment")
	ablation := flag.Bool("ablation", false, "run the design-choice ablations")
	obsProf := flag.Bool("obs", false, "run the observability profile (behavior-cost and rollback-depth histograms)")
	pr := flag.Int("pr", 0, "PR number to stamp into the bench report's host record")
	shards := flag.Int("shards", 0,
		"run the shard-scaling experiment up to this many shards (1,2,4,...) on a 208-node fat-tree")
	engine := flag.String("engine", "conservative",
		"parallel engine for the shard-scaling experiment: conservative, optimistic or both")
	topoK := flag.Int("topo-k", 8, "fat-tree arity for the shard-scaling experiment")
	topology := flag.String("topo", "fattree",
		"shard-scaling topology: fattree or waxman (the seeded 256-node graph)")
	partitionName := flag.String("partition", "contiguous",
		"shard-scaling node placement: contiguous (creation-order blocks) or mincut (topology-aware)")
	shardDuration := flag.Duration("shard-duration", 20*time.Millisecond,
		"virtual window of the shard-scaling experiment")
	multicoreJSON := flag.String("multicore-json", "",
		"run the multi-core scaling matrix (both engines, 1..8 shards, contiguous vs mincut on the Waxman scenario) at the current GOMAXPROCS, write the report JSON to this path, and exit non-zero if min-cut fails to cut the cross-shard message bill")
	pdr := flag.Bool("pdr", false, "run the SRPerf-style PDR saturation scan (all behaviors)")
	pdrSmoke := flag.Bool("pdr-smoke", false,
		"coarse PDR search (2 bisection steps, End only): the CI smoke gate")
	matrix := flag.Bool("matrix", false,
		"run the behaviour-matrix scenarios under all three engines and compare fingerprints")
	burst := flag.Int("burst", 32,
		"datapath burst setting for the SimUDP-burst bench rows and the PDR scan")
	all := flag.Bool("all", false, "run everything")
	benchJSON := flag.String("bench-json", "",
		"write the figure rows plus the wall-clock datapath ns/op + allocs/op numbers as one JSON object to this path (standalone mode: combining it with -all/-fig recomputes the figures for stdout)")
	duration := flag.Duration("duration", 200*time.Millisecond,
		"virtual measurement window per data point")
	tcpDuration := flag.Duration("tcp-duration", 60*time.Second,
		"virtual duration of each TCP transfer")
	flag.Parse()

	win := duration.Nanoseconds()
	ran := false

	if *benchJSON != "" {
		ran = true
		writeBenchJSON(*benchJSON, win, *pr, *burst)
	}
	if *multicoreJSON != "" {
		ran = true
		runMulticore(*multicoreJSON, *pr, shardDuration.Nanoseconds())
	}
	if *all || *pdr {
		ran = true
		runPDR(experiments.DefaultPDRConfig(*burst))
	}
	if *pdrSmoke {
		ran = true
		runPDR(experiments.PDRSmokeConfig())
	}
	if *all || *matrix {
		ran = true
		runMatrix()
	}
	if *all || *obsProf {
		ran = true
		runObs(win)
	}
	if *all || *fig == 2 {
		ran = true
		runFig2(win)
	}
	if *all || *fig == 3 {
		ran = true
		runFig3(win)
	}
	if *all || *fig == 4 {
		ran = true
		runFig4(win)
	}
	if *all || *tcp {
		ran = true
		runTCP(tcpDuration.Nanoseconds())
	}
	if *all || *jit {
		ran = true
		runJIT(win)
	}
	if *all || *frr {
		ran = true
		runFRR()
	}
	if *all || *flapstorm {
		ran = true
		runFlapStorm()
	}
	if *all || *ablation {
		ran = true
		runAblations(win)
	}
	if *all && *shards == 0 {
		*shards = 4
	}
	if *shards > 0 {
		ran = true
		for _, eng := range enginesFor(*engine) {
			runShards(eng, *shards, *topoK, *topology, *partitionName, shardDuration.Nanoseconds())
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "srv6bench:", err)
	os.Exit(1)
}

func runFig2(win int64) {
	fmt.Println("== Figure 2: packets forwarded per second, normalized (§3.2) ==")
	fmt.Println("   paper: End.BPF -3% vs static End; Tag++ -3% vs End.BPF;")
	fmt.Println("   End.T.BPF -5% vs static End.T; AddTLV -5% vs End.BPF; no-JIT /1.8")
	rows, err := experiments.Figure2(win)
	if err != nil {
		fail(err)
	}
	for _, r := range rows {
		fmt.Printf("  %-16s %9.1f kpps   %5.1f%%\n", r.Name, r.KPPS, r.Normalized*100)
	}
	fmt.Println()
}

func runFig3(win int64) {
	fmt.Println("== Figure 3: delay monitoring overhead, normalized (§4.1) ==")
	fmt.Println("   paper: transit encap ≈ -5%; End.DM ≈ no impact")
	rows, err := experiments.Figure3(win)
	if err != nil {
		fail(err)
	}
	for _, r := range rows {
		fmt.Printf("  %-16s %9.1f kpps   %5.1f%%\n", r.Name, r.KPPS, r.Normalized*100)
	}
	fmt.Println()
}

func runFig4(win int64) {
	fmt.Println("== Figure 4: aggregated UDP goodput through the CPE (§4.2) ==")
	fmt.Println("   paper: decap ≈ -10%; interpreted WRR lowest, near baseline at 1400B")
	pts, err := experiments.Figure4(win)
	if err != nil {
		fail(err)
	}
	fmt.Printf("  %-16s", "payload (B)")
	for _, p := range experiments.Fig4Payloads {
		fmt.Printf(" %6d", p)
	}
	fmt.Println()
	last := ""
	for _, p := range pts {
		if p.Config != last {
			if last != "" {
				fmt.Println()
			}
			fmt.Printf("  %-16s", p.Config)
			last = p.Config
		}
		fmt.Printf(" %6.0f", p.GoodputMbps)
	}
	fmt.Println("   (Mbps)")
	fmt.Println()
}

func runTCP(win int64) {
	fmt.Println("== §4.2 TCP over the hybrid access network ==")
	fmt.Println("   paper: 3.8 Mbps uncompensated; 68 Mbps compensated; 70 Mbps with 4 conns")
	fmt.Printf("   (each transfer runs %s of virtual time)\n", time.Duration(win))
	res, err := experiments.TCPHybrid(win)
	if err != nil {
		fail(err)
	}
	for _, r := range res {
		fmt.Printf("  %-34s %7.1f Mbps\n", r.Name, r.GoodputMbps)
	}
	fmt.Println()
}

func runJIT(win int64) {
	fmt.Println("== §3.2 JIT factor on Add TLV ==")
	f, err := experiments.JITFactor(win)
	if err != nil {
		fail(err)
	}
	fmt.Printf("  whole-router throughput JIT/no-JIT = %.2f (paper: 1.8)\n\n", f)
}

func runFRR() {
	fmt.Println("== Fast reroute: recovery time vs probe interval (K=3 misses) ==")
	fmt.Println("   bound: recovery < K x interval + one probe RTT; FIB backup is the")
	fmt.Println("   link-state (oracle detection) floor")
	rows, err := experiments.FRRRecovery()
	if err != nil {
		fail(err)
	}
	for _, r := range rows {
		if r.Mode == "FIB backup" {
			fmt.Printf("  %-10s %18s  recovery %8.3f ms   lost %4d\n",
				r.Mode, "(link-state)", r.RecoveryMs, r.PacketsLost)
			continue
		}
		fmt.Printf("  %-10s interval %4.0f ms K=%d  recovery %8.3f ms (budget %8.3f)  lost %4d\n",
			r.Mode, r.ProbeIntervalMs, r.Misses, r.RecoveryMs, r.BudgetMs, r.PacketsLost)
	}
	fmt.Println()
}

func runFlapStorm() {
	fmt.Println("== Fast reroute under a flap storm: damping on vs off ==")
	fmt.Println("   the protected link flaps at the detection timescale; damping must")
	fmt.Println("   collapse route churn without trading delivery away")
	rows, err := experiments.FRRFlapStorm()
	if err != nil {
		fail(err)
	}
	for _, r := range rows {
		fmt.Printf("  %-9s period %2.0f ms x%d  route transitions %3d  delivered %6.2f%%  lost %4d\n",
			r.Mode, r.FlapPeriodMs, r.Cycles, r.Transitions, r.DeliveredPct, r.PacketsLost)
	}
	fmt.Println()
}

func runAblations(win int64) {
	fmt.Println("== Ablation: Figure 4 WRR with a working CPE JIT ==")
	fmt.Println("   (the paper's hypothesis: the 1.8x JIT speedup would lift the WRR curve)")
	interp, jit, err := experiments.Fig4JITAblation(win)
	if err != nil {
		fail(err)
	}
	fmt.Printf("  %-16s", "payload (B)")
	for _, p := range experiments.Fig4Payloads {
		fmt.Printf(" %6d", p)
	}
	fmt.Println()
	fmt.Printf("  %-16s", "WRR interp")
	for _, p := range interp {
		fmt.Printf(" %6.0f", p.GoodputMbps)
	}
	fmt.Println()
	fmt.Printf("  %-16s", "WRR JIT")
	for _, p := range jit {
		fmt.Printf(" %6.0f", p.GoodputMbps)
	}
	fmt.Println("   (Mbps)")
	fmt.Println()

	fmt.Println("== Ablation: WRR weights vs link capacities ==")
	rows, err := experiments.WRRWeightAblation(win * 4)
	if err != nil {
		fail(err)
	}
	for _, r := range rows {
		fmt.Printf("  %-22s %6.1f Mbps delivered of 80 offered, %d link drops\n",
			r.Name, r.GoodputMbps, r.LinkDrops)
	}
	fmt.Println()
}

func runPDR(cfg experiments.PDRConfig) {
	fmt.Println("== PDR saturation (SRPerf method): max offered load with drops <= 0.5% ==")
	fmt.Printf("   %d bisection steps, %s window per probe, burst=%d\n",
		cfg.Iterations, time.Duration(cfg.WindowNs), cfg.Burst)
	rows, err := experiments.PDRScan(cfg)
	if err != nil {
		fail(err)
	}
	for _, r := range rows {
		fmt.Printf("  %-16s PDR %9.1f kpps   drop %.3f%% (threshold %.1f%%)  bracket %.0f..%.0f kpps, %d probes\n",
			r.Name, r.PDRKPPS, r.DropRate*100, r.Threshold*100, r.LoKPPS, r.HiKPPS, r.Iterations)
	}
	fmt.Println()
}

func runMatrix() {
	fmt.Println("== Behaviour matrix: committed scenarios x engines (must be bit-identical) ==")
	fmt.Println("   L3VPN (End.DT4/DT6/DT46), SFC proxies (End.AS/End.AM), TI-LFA binding SID")
	rows, err := experiments.MatrixScan()
	if err != nil {
		fail(err)
	}
	bad := false
	for _, r := range rows {
		verdict := "MATCH"
		if !r.Match {
			verdict, bad = "MISMATCH", true
		}
		fmt.Printf("  %-16s delivered %5d  %s\n", r.Scenario, r.Delivered, verdict)
		for _, run := range r.Runs {
			fmt.Printf("    %-16s %s\n", run.Engine, run.Fingerprint)
		}
	}
	fmt.Println()
	if bad {
		fail(fmt.Errorf("behaviour matrix: engines disagree"))
	}
}

func runObs(win int64) {
	fmt.Println("== Observability profile: what the metrics plane saw ==")
	fmt.Println("   behavior cost + queue delay from the §3.2 lab (Tag++ End.BPF),")
	fmt.Println("   rollback depth from a 4-shard optimistic fat-tree (virtual ns)")
	rows, err := experiments.ObsProfile(win)
	if err != nil {
		fail(err)
	}
	fmt.Printf("  %-22s %9s %9s %9s %9s %9s %10s\n",
		"histogram", "count", "p50", "p90", "p99", "max", "mean")
	for _, r := range rows {
		fmt.Printf("  %-22s %9d %9d %9d %9d %9d %10.1f\n",
			r.Name, r.Count, r.P50, r.P90, r.P99, r.Max, r.Mean)
	}
	fmt.Println()
}

// shardCountsUpTo returns 1, 2, 4, ... up to and including max.
func shardCountsUpTo(max int) []int {
	var counts []int
	for n := 1; n < max; n *= 2 {
		counts = append(counts, n)
	}
	return append(counts, max)
}

// enginesFor parses the -engine flag into the engines to measure.
func enginesFor(name string) []netsim.Engine {
	switch name {
	case "conservative":
		return []netsim.Engine{netsim.EngineConservative}
	case "optimistic":
		return []netsim.Engine{netsim.EngineOptimistic}
	case "both":
		return []netsim.Engine{netsim.EngineConservative, netsim.EngineOptimistic}
	default:
		fail(fmt.Errorf("unknown -engine %q (conservative, optimistic or both)", name))
		return nil
	}
}

func runShards(eng netsim.Engine, max, k int, topology, partitionName string, win int64) {
	label := fmt.Sprintf("k=%d fat-tree", k)
	if topology == "waxman" {
		label = fmt.Sprintf("%d-node Waxman", experiments.WaxmanScalingNodes)
	}
	fmt.Printf("== Shard scaling (%s): %s permutation mix, %s partition, %s virtual (GOMAXPROCS=%d) ==\n",
		eng, label, partitionName, time.Duration(win), runtime.GOMAXPROCS(0))
	fmt.Println("   identical per-node counters are re-verified across shard counts")
	rows, err := experiments.ShardScalingRun(experiments.ShardScalingSpec{
		Engine: eng, Shards: shardCountsUpTo(max), Topology: topology, K: k,
		Partition: partitionName, DurationNs: win,
	})
	if err != nil {
		fail(err)
	}
	printShardRows(rows)
	fmt.Println()
}

func printShardRows(rows []experiments.ShardScalingRow) {
	for _, r := range rows {
		fmt.Printf("  shards=%d  %8.1f ms wall  %10.0f events/s  speedup %.2fx  (%d events, %d windows, cut %d links, %d msgs, %d delivered",
			r.Shards, r.WallMs, r.EventsPerSec, r.Speedup, r.Events, r.Windows, r.CutLinks, r.Messages, r.Delivered)
		if r.Engine == "optimistic" {
			fmt.Printf(", %d ckpts, %d rollbacks, %d antis", r.Checkpoints, r.Rollbacks, r.AntiMessages)
			if r.CkptNodesCopied+r.CkptNodesAliased > 0 {
				fmt.Printf(", %d/%d nodes copied, %.1f MB ckpt",
					r.CkptNodesCopied, r.CkptNodesCopied+r.CkptNodesAliased,
					float64(r.CkptBytes)/1e6)
			}
			if r.HorizonNs > 0 {
				fmt.Printf(", horizon %dµs (%d adjusts)", r.HorizonNs/1000, r.HorizonAdjusts)
			}
		}
		fmt.Println(")")
	}
}

// multicoreReport is the bench-multicore CI artifact: both engines,
// shard counts 1..8, contiguous vs min-cut on the seeded Waxman
// scenario, at whatever GOMAXPROCS the runner granted.
type multicoreReport struct {
	Schema     string                        `json:"schema"`
	Host       *benchHost                    `json:"host"`
	Topology   string                        `json:"topology"`
	Nodes      int                           `json:"nodes"`
	DurationNs int64                         `json:"duration_ns"`
	Rows       []experiments.ShardScalingRow `json:"rows"`
}

// runMulticore sweeps the multi-core scaling matrix and writes the
// report. It fails (exit 1) if the min-cut partition does not cut
// cross-shard Messages by >= 30% vs contiguous at 4 shards under the
// conservative engine, or — when the runner actually has >= 4 cores —
// if no multi-shard conservative min-cut row beats the 1-shard
// baseline.
func runMulticore(path string, pr int, win int64) {
	procs := runtime.GOMAXPROCS(0)
	fmt.Printf("== Multi-core shard scaling: %d-node Waxman, %s virtual, GOMAXPROCS=%d ==\n",
		experiments.WaxmanScalingNodes, time.Duration(win), procs)
	rep := multicoreReport{
		Schema: "srv6bpf-multicore/1",
		Host: &benchHost{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GoVersion:  runtime.Version(),
			GOMAXPROCS: procs,
			NumCPU:     runtime.NumCPU(),
			PR:         pr,
		},
		Topology:   "waxman",
		Nodes:      experiments.WaxmanScalingNodes,
		DurationNs: win,
	}
	msgs := map[string]uint64{} // "partition@shards" -> Messages (conservative)
	bestSpeedup := 0.0
	for _, eng := range []netsim.Engine{netsim.EngineConservative, netsim.EngineOptimistic} {
		for _, part := range []string{"contiguous", "mincut"} {
			fmt.Printf("-- engine=%s partition=%s\n", eng, part)
			rows, err := experiments.ShardScalingRun(experiments.ShardScalingSpec{
				Engine: eng, Shards: shardCountsUpTo(8), Topology: "waxman",
				Partition: part, DurationNs: win,
			})
			if err != nil {
				fail(err)
			}
			printShardRows(rows)
			rep.Rows = append(rep.Rows, rows...)
			for _, r := range rows {
				if eng == netsim.EngineConservative {
					msgs[fmt.Sprintf("%s@%d", part, r.Shards)] = r.Messages
					if part == "mincut" && r.Shards > 1 && r.Speedup > bestSpeedup {
						bestSpeedup = r.Speedup
					}
				}
			}
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote multi-core report to %s\n", path)

	cont, minc := msgs["contiguous@4"], msgs["mincut@4"]
	fmt.Printf("gate: conservative Messages at 4 shards: contiguous=%d mincut=%d\n", cont, minc)
	if cont == 0 || 10*minc > 7*cont {
		fail(fmt.Errorf("min-cut did not cut cross-shard messages by >= 30%% at 4 shards (%d vs %d)", minc, cont))
	}
	if procs >= 4 {
		fmt.Printf("gate: best conservative min-cut speedup_vs_1shard = %.2f (GOMAXPROCS=%d)\n", bestSpeedup, procs)
		if bestSpeedup <= 1 {
			fail(fmt.Errorf("no multi-shard speedup on a %d-core runner (best %.2fx)", procs, bestSpeedup))
		}
	} else {
		fmt.Printf("note: GOMAXPROCS=%d < 4, skipping the speedup gate (single-core runner)\n", procs)
	}
}

// benchReport is the machine-readable performance trajectory: the
// simulated figure rows plus the real (wall-clock) datapath numbers,
// in the shape future PRs diff against (BENCH_*.json).
type benchReport struct {
	Schema     string `json:"schema"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Host fingerprints the machine and toolchain that produced the
	// wall-clock numbers; the trajectory test only compares timings
	// between reports whose fingerprints match.
	Host         *benchHost                    `json:"host,omitempty"`
	WindowNs     int64                         `json:"window_ns"`
	Fig2         []experiments.Row             `json:"fig2"`
	Fig3         []experiments.Row             `json:"fig3"`
	Fig4         []experiments.Fig4Point       `json:"fig4"`
	JITFactor    float64                       `json:"jit_factor"`
	FRR          []experiments.FRRRow          `json:"frr"`
	FlapStorm    []experiments.FlapStormRow    `json:"flap_storm"`
	Datapath     []experiments.DatapathRow     `json:"datapath"`
	ShardScaling []experiments.ShardScalingRow `json:"shard_scaling"`
	// ShardScalingOptimistic measures the Time-Warp engine on the same
	// scenario (same seed, counters verified identical to the
	// conservative rows by the experiment itself).
	ShardScalingOptimistic []experiments.ShardScalingRow `json:"shard_scaling_optimistic"`
	// Obs is the observability profile (histogram quantiles, virtual ns).
	Obs []experiments.ObsRow `json:"obs,omitempty"`
	// PDR is the SRPerf-style saturation table (from PR 8 on).
	PDR []experiments.PDRRow `json:"pdr,omitempty"`
}

// benchHost records where a report's wall-clock numbers came from.
type benchHost struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	// Burst is the datapath burst setting the wall-clock rows ran
	// under; it is part of the fingerprint, so reports measured at
	// different burst settings are never timing-compared.
	Burst int `json:"burst,omitempty"`
	// Partition names the shard placement the report's scaling rows
	// used; together with GOMAXPROCS it keeps single-core trajectory
	// reports and multi-core scaling reports in separate timing
	// lineages (empty means contiguous, the pre-PR-10 default).
	Partition string `json:"partition,omitempty"`
	PR        int    `json:"pr,omitempty"`
}

func writeBenchJSON(path string, win int64, pr, burst int) {
	rep := benchReport{
		Schema:     "srv6bpf-bench/1",
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Host: &benchHost{
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			Burst:      burst,
			Partition:  "contiguous",
			PR:         pr,
		},
		WindowNs: win,
	}
	var err error
	if rep.Fig2, err = experiments.Figure2(win); err != nil {
		fail(err)
	}
	if rep.Fig3, err = experiments.Figure3(win); err != nil {
		fail(err)
	}
	if rep.Fig4, err = experiments.Figure4(win); err != nil {
		fail(err)
	}
	if rep.JITFactor, err = experiments.JITFactor(win); err != nil {
		fail(err)
	}
	if rep.FRR, err = experiments.FRRRecovery(); err != nil {
		fail(err)
	}
	if rep.FlapStorm, err = experiments.FRRFlapStorm(); err != nil {
		fail(err)
	}
	if rep.Datapath, err = experiments.DatapathBench(burst); err != nil {
		fail(err)
	}
	if rep.ShardScaling, err = experiments.ShardScaling(netsim.EngineConservative, shardCountsUpTo(4), 8, 20*netsim.Millisecond); err != nil {
		fail(err)
	}
	if rep.ShardScalingOptimistic, err = experiments.ShardScaling(netsim.EngineOptimistic, shardCountsUpTo(4), 8, 20*netsim.Millisecond); err != nil {
		fail(err)
	}
	if rep.Obs, err = experiments.ObsProfile(win); err != nil {
		fail(err)
	}
	if rep.PDR, err = experiments.PDRScan(experiments.DefaultPDRConfig(burst)); err != nil {
		fail(err)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("wrote benchmark report to %s\n", path)
}
