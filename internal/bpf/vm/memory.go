package vm

import (
	"encoding/binary"
	"fmt"
)

// Segment is one addressable memory region.
type Segment struct {
	// Data is the backing storage. A segment with nil Data is an
	// opaque handle (e.g. a map object) that cannot be dereferenced.
	Data []byte
	// Writable permits stores.
	Writable bool
	// Object carries an opaque value for handle segments; helpers
	// type-assert it (for example to *maps.Map).
	Object any
}

// Memory is the address space of one program execution: a table of
// segments indexed by RegionID.
type Memory struct {
	segs map[RegionID]*Segment
	next RegionID
}

// NewMemory returns an empty address space.
func NewMemory() *Memory {
	return &Memory{segs: make(map[RegionID]*Segment), next: RegionDynamicBase}
}

// SetSegment installs seg at a fixed well-known region.
func (m *Memory) SetSegment(id RegionID, seg *Segment) {
	m.segs[id] = seg
}

// AddSegment installs seg at a fresh dynamic region and returns its ID.
func (m *Memory) AddSegment(seg *Segment) RegionID {
	id := m.next
	m.next++
	m.segs[id] = seg
	return id
}

// Segment returns the segment for id, or nil.
func (m *Memory) Segment(id RegionID) *Segment { return m.segs[id] }

// Fault describes an invalid memory access.
type Fault struct {
	Addr  uint64
	Size  int
	Write bool
	Cause string
}

func (f *Fault) Error() string {
	kind := "read"
	if f.Write {
		kind = "write"
	}
	return fmt.Sprintf("vm: invalid %d-byte %s at region %d offset %#x: %s",
		f.Size, kind, Region(f.Addr), Offset(f.Addr), f.Cause)
}

// bytesAt resolves addr to size bytes of backing storage, enforcing
// region validity, bounds and writability.
func (m *Memory) bytesAt(addr uint64, size int, write bool) ([]byte, error) {
	r := Region(addr)
	if r == RegionScalar {
		return nil, &Fault{Addr: addr, Size: size, Write: write, Cause: "not a pointer (NULL dereference?)"}
	}
	seg := m.segs[r]
	if seg == nil {
		return nil, &Fault{Addr: addr, Size: size, Write: write, Cause: "no such region"}
	}
	if seg.Data == nil {
		return nil, &Fault{Addr: addr, Size: size, Write: write, Cause: "opaque handle region"}
	}
	if write && !seg.Writable {
		return nil, &Fault{Addr: addr, Size: size, Write: write, Cause: "region is read-only"}
	}
	off := Offset(addr)
	if off+uint64(size) > uint64(len(seg.Data)) || size <= 0 {
		return nil, &Fault{Addr: addr, Size: size, Write: write, Cause: "out of bounds"}
	}
	return seg.Data[off : off+uint64(size)], nil
}

// Load reads size bytes (1, 2, 4 or 8) at addr, little-endian, and
// zero-extends to 64 bits.
func (m *Memory) Load(addr uint64, size int) (uint64, error) {
	b, err := m.bytesAt(addr, size, false)
	if err != nil {
		return 0, err
	}
	switch size {
	case 1:
		return uint64(b[0]), nil
	case 2:
		return uint64(binary.LittleEndian.Uint16(b)), nil
	case 4:
		return uint64(binary.LittleEndian.Uint32(b)), nil
	case 8:
		return binary.LittleEndian.Uint64(b), nil
	default:
		return 0, &Fault{Addr: addr, Size: size, Cause: "bad access size"}
	}
}

// Store writes the low size bytes of val at addr, little-endian.
func (m *Memory) Store(addr uint64, size int, val uint64) error {
	b, err := m.bytesAt(addr, size, true)
	if err != nil {
		return err
	}
	switch size {
	case 1:
		b[0] = byte(val)
	case 2:
		binary.LittleEndian.PutUint16(b, uint16(val))
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(val))
	case 8:
		binary.LittleEndian.PutUint64(b, val)
	default:
		return &Fault{Addr: addr, Size: size, Write: true, Cause: "bad access size"}
	}
	return nil
}

// ReadBytes copies n bytes starting at addr. Helpers use it to pull
// buffers (keys, values, headers) out of program memory.
func (m *Memory) ReadBytes(addr uint64, n int) ([]byte, error) {
	b, err := m.bytesAt(addr, n, false)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	copy(out, b)
	return out, nil
}

// WriteBytes copies buf into program memory at addr.
func (m *Memory) WriteBytes(addr uint64, buf []byte) error {
	b, err := m.bytesAt(addr, len(buf), true)
	if err != nil {
		return err
	}
	copy(b, buf)
	return nil
}
