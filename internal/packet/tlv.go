package packet

import (
	"encoding/binary"
	"fmt"
	"net/netip"
)

// TLV type codes. Pad1/PadN are standard; the DM (delay measurement)
// TLV models draft-ali-spring-srv6-pm (the paper's §4.1 reference
// [8]); Controller and Nexthops live in the experimental range.
const (
	TLVTypePad1       = 0x00
	TLVTypePadN       = 0x04
	TLVTypeDM         = 0x80 // delay measurement: 64-bit TX timestamp
	TLVTypeController = 0x81 // controller address + UDP port
	TLVTypeNexthops   = 0x82 // ECMP nexthop report (End.OAMP)
	TLVTypeOAMPQuery  = 0x83 // ECMP nexthop query: target address
	TLVTypeFRRProbe   = 0x84 // fast-reroute liveness probe: neighbour id
)

// TLV is one SRH type-length-value option.
type TLV interface {
	TLVType() uint8
	wireLen() int
	encode(dst []byte) []byte
	summary() string
}

// Pad1 is the single-byte padding TLV.
type Pad1 struct{}

// TLVType implements TLV.
func (Pad1) TLVType() uint8           { return TLVTypePad1 }
func (Pad1) wireLen() int             { return 1 }
func (Pad1) encode(dst []byte) []byte { return append(dst, TLVTypePad1) }
func (Pad1) summary() string          { return "pad1" }

// PadN pads with n+2 bytes total (type, length, n zeros).
type PadN struct{ N uint8 }

// TLVType implements TLV.
func (p PadN) TLVType() uint8 { return TLVTypePadN }
func (p PadN) wireLen() int   { return 2 + int(p.N) }
func (p PadN) encode(dst []byte) []byte {
	dst = append(dst, TLVTypePadN, p.N)
	return append(dst, make([]byte, p.N)...)
}
func (p PadN) summary() string { return fmt.Sprintf("padN(%d)", p.N) }

// DMTLV carries the sender-side transmission timestamp for one-way
// delay measurement (§4.1). Its 8-byte payload (10 bytes with
// type+len) plus a PadN keeps the SRH 8-byte aligned; the encap
// program and End.DM both know this layout.
type DMTLV struct {
	TxTimestampNS uint64
}

// DMTLVLen is the wire length of the DM TLV.
const DMTLVLen = 10

// TLVType implements TLV.
func (DMTLV) TLVType() uint8 { return TLVTypeDM }
func (DMTLV) wireLen() int   { return DMTLVLen }
func (d DMTLV) encode(dst []byte) []byte {
	dst = append(dst, TLVTypeDM, 8)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], d.TxTimestampNS)
	return append(dst, b[:]...)
}
func (d DMTLV) summary() string { return fmt.Sprintf("dm(tx=%d)", d.TxTimestampNS) }

// ControllerTLV names the collector that should receive measurement
// reports: an IPv6 address and a UDP port (§4.1).
type ControllerTLV struct {
	Addr netip.Addr
	Port uint16
}

// ControllerTLVLen is the wire length of the controller TLV.
const ControllerTLVLen = 20

// TLVType implements TLV.
func (ControllerTLV) TLVType() uint8 { return TLVTypeController }
func (ControllerTLV) wireLen() int   { return ControllerTLVLen }
func (c ControllerTLV) encode(dst []byte) []byte {
	dst = append(dst, TLVTypeController, 18)
	a := c.Addr.As16()
	dst = append(dst, a[:]...)
	return append(dst, byte(c.Port>>8), byte(c.Port))
}
func (c ControllerTLV) summary() string {
	return fmt.Sprintf("ctrl(%s:%d)", c.Addr, c.Port)
}

// NexthopsTLV carries up to 4 ECMP nexthop addresses plus a count,
// filled in by End.OAMP (§4.3). The prober allocates it zeroed.
type NexthopsTLV struct {
	Count    uint8
	Nexthops [4]netip.Addr
}

// NexthopsTLVLen is the wire length of the nexthops TLV:
// type + len + count + pad + 4*16.
const NexthopsTLVLen = 68

// TLVType implements TLV.
func (NexthopsTLV) TLVType() uint8 { return TLVTypeNexthops }
func (NexthopsTLV) wireLen() int   { return NexthopsTLVLen }
func (n NexthopsTLV) encode(dst []byte) []byte {
	dst = append(dst, TLVTypeNexthops, NexthopsTLVLen-2, n.Count, 0)
	for _, nh := range n.Nexthops {
		var a [16]byte
		if nh.IsValid() {
			a = nh.As16()
		}
		dst = append(dst, a[:]...)
	}
	return dst
}
func (n NexthopsTLV) summary() string {
	return fmt.Sprintf("nexthops(%d)", n.Count)
}

// OAMPQueryTLV carries the destination whose ECMP nexthops the prober
// wants End.OAMP to report (§4.3).
type OAMPQueryTLV struct {
	Target netip.Addr
}

// OAMPQueryTLVLen is the wire length: type + len + target + 2 pad.
const OAMPQueryTLVLen = 20

// TLVType implements TLV.
func (OAMPQueryTLV) TLVType() uint8 { return TLVTypeOAMPQuery }
func (OAMPQueryTLV) wireLen() int   { return OAMPQueryTLVLen }
func (q OAMPQueryTLV) encode(dst []byte) []byte {
	dst = append(dst, TLVTypeOAMPQuery, OAMPQueryTLVLen-2)
	a := q.Target.As16()
	dst = append(dst, a[:]...)
	return append(dst, 0, 0)
}
func (q OAMPQueryTLV) summary() string { return fmt.Sprintf("oamp-query(%s)", q.Target) }

// FRRProbeTLV tags a fast-reroute liveness probe with the prober's
// neighbour id, so the End.BPF tracker at the return SID knows which
// last-seen entry to refresh (internal/nf/frr).
type FRRProbeTLV struct {
	NeighborID uint32
}

// FRRProbeTLVLen is the on-wire size: type, length, 2 pad bytes, then
// the little-endian id (the byte order the eBPF tracker stores and
// loads it with).
const FRRProbeTLVLen = 8

// TLVType implements TLV.
func (FRRProbeTLV) TLVType() uint8 { return TLVTypeFRRProbe }
func (FRRProbeTLV) wireLen() int   { return FRRProbeTLVLen }
func (f FRRProbeTLV) encode(dst []byte) []byte {
	dst = append(dst, TLVTypeFRRProbe, FRRProbeTLVLen-2, 0, 0)
	var id [4]byte
	binary.LittleEndian.PutUint32(id[:], f.NeighborID)
	return append(dst, id[:]...)
}
func (f FRRProbeTLV) summary() string { return fmt.Sprintf("frr-probe(nbr=%d)", f.NeighborID) }

// OpaqueTLV preserves unknown TLVs through decode/encode round trips.
type OpaqueTLV struct {
	Type uint8
	Data []byte
}

// TLVType implements TLV.
func (o OpaqueTLV) TLVType() uint8 { return o.Type }
func (o OpaqueTLV) wireLen() int   { return 2 + len(o.Data) }
func (o OpaqueTLV) encode(dst []byte) []byte {
	dst = append(dst, o.Type, uint8(len(o.Data)))
	return append(dst, o.Data...)
}
func (o OpaqueTLV) summary() string {
	return fmt.Sprintf("tlv(%#x,%d)", o.Type, len(o.Data))
}

// decodeTLVsInto parses the TLV area of an SRH, appending to out
// (pass a reusable slice truncated to zero for allocation-free
// re-decodes; an empty TLV area appends nothing).
func decodeTLVsInto(out []TLV, b []byte) ([]TLV, error) {
	for len(b) > 0 {
		t := b[0]
		if t == TLVTypePad1 {
			out = append(out, Pad1{})
			b = b[1:]
			continue
		}
		if len(b) < 2 {
			return nil, fmt.Errorf("%w: TLV header", ErrTruncated)
		}
		l := int(b[1])
		if len(b) < 2+l {
			return nil, fmt.Errorf("%w: TLV %#x claims %d bytes, have %d", ErrBadTLV, t, l, len(b)-2)
		}
		body := b[2 : 2+l]
		switch t {
		case TLVTypePadN:
			out = append(out, PadN{N: uint8(l)})
		case TLVTypeDM:
			if l != 8 {
				return nil, fmt.Errorf("%w: DM TLV length %d", ErrBadTLV, l)
			}
			out = append(out, DMTLV{TxTimestampNS: binary.BigEndian.Uint64(body)})
		case TLVTypeController:
			if l != 18 {
				return nil, fmt.Errorf("%w: controller TLV length %d", ErrBadTLV, l)
			}
			out = append(out, ControllerTLV{
				Addr: netip.AddrFrom16([16]byte(body[:16])),
				Port: uint16(body[16])<<8 | uint16(body[17]),
			})
		case TLVTypeOAMPQuery:
			if l != OAMPQueryTLVLen-2 {
				return nil, fmt.Errorf("%w: OAMP query TLV length %d", ErrBadTLV, l)
			}
			out = append(out, OAMPQueryTLV{Target: netip.AddrFrom16([16]byte(body[:16]))})
		case TLVTypeFRRProbe:
			if l != FRRProbeTLVLen-2 {
				return nil, fmt.Errorf("%w: FRR probe TLV length %d", ErrBadTLV, l)
			}
			out = append(out, FRRProbeTLV{NeighborID: binary.LittleEndian.Uint32(body[2:6])})
		case TLVTypeNexthops:
			if l != NexthopsTLVLen-2 {
				return nil, fmt.Errorf("%w: nexthops TLV length %d", ErrBadTLV, l)
			}
			n := NexthopsTLV{Count: body[0]}
			if n.Count > 4 {
				return nil, fmt.Errorf("%w: nexthop count %d", ErrBadTLV, n.Count)
			}
			for i := 0; i < 4; i++ {
				n.Nexthops[i] = netip.AddrFrom16([16]byte(body[2+16*i : 2+16*i+16]))
			}
			out = append(out, n)
		default:
			out = append(out, OpaqueTLV{Type: t, Data: append([]byte(nil), body...)})
		}
		b = b[2+l:]
	}
	return out, nil
}

// validateTLVs applies exactly the checks of decodeTLVs without
// materialising TLV values — the allocation-free path behind
// ValidateSRHBytes, which End.BPF runs after every program that
// touched the SRH.
func validateTLVs(b []byte) error {
	for len(b) > 0 {
		t := b[0]
		if t == TLVTypePad1 {
			b = b[1:]
			continue
		}
		if len(b) < 2 {
			return fmt.Errorf("%w: TLV header", ErrTruncated)
		}
		l := int(b[1])
		if len(b) < 2+l {
			return fmt.Errorf("%w: TLV %#x claims %d bytes, have %d", ErrBadTLV, t, l, len(b)-2)
		}
		switch t {
		case TLVTypeDM:
			if l != 8 {
				return fmt.Errorf("%w: DM TLV length %d", ErrBadTLV, l)
			}
		case TLVTypeController:
			if l != 18 {
				return fmt.Errorf("%w: controller TLV length %d", ErrBadTLV, l)
			}
		case TLVTypeOAMPQuery:
			if l != OAMPQueryTLVLen-2 {
				return fmt.Errorf("%w: OAMP query TLV length %d", ErrBadTLV, l)
			}
		case TLVTypeFRRProbe:
			if l != FRRProbeTLVLen-2 {
				return fmt.Errorf("%w: FRR probe TLV length %d", ErrBadTLV, l)
			}
		case TLVTypeNexthops:
			if l != NexthopsTLVLen-2 {
				return fmt.Errorf("%w: nexthops TLV length %d", ErrBadTLV, l)
			}
			if b[2] > 4 {
				return fmt.Errorf("%w: nexthop count %d", ErrBadTLV, b[2])
			}
		}
		b = b[2+l:]
	}
	return nil
}

// FindTLV locates the first TLV with the given type in an encoded
// SRH, returning the byte offset of its type byte relative to the
// SRH start. Used by user-space tooling; BPF programs do the same
// walk in bytecode.
func FindTLV(srh []byte, tlvType uint8) (int, bool) {
	if len(srh) < SRHFixedLen {
		return 0, false
	}
	total := (int(srh[SRHOffHdrExtLen]) + 1) * 8
	if total > len(srh) {
		return 0, false
	}
	nSegs := int(srh[SRHOffLastEntry]) + 1
	off := SRHFixedLen + 16*nSegs
	for off < total {
		t := srh[off]
		if t == tlvType {
			return off, true
		}
		if t == TLVTypePad1 {
			off++
			continue
		}
		if off+1 >= total {
			return 0, false
		}
		off += 2 + int(srh[off+1])
	}
	return 0, false
}
