module srv6bpf

go 1.22
