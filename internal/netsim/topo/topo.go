// Package topo generates parameterized large-scale topologies for
// the simulator: lines, rings, fat-trees and random Waxman graphs,
// with shortest-path (ECMP-aware) routing installed on every node.
//
// The paper's evaluation runs on a three-node lab; SRPerf-style
// credibility at the ROADMAP's production scale needs hundreds of
// nodes, which is what these generators feed to the sharded engine
// (netsim.Sim.SetShards). Every construction step is deterministic
// in its parameters: node creation order, link order and route
// order are identical run to run, so generated scenarios shard and
// replay reproducibly.
//
// Node creation order is locality-first (a fat-tree lays out pod by
// pod, a ring walks the cycle), because netsim's block partition
// assigns contiguous creation ranges to shards: neighbouring nodes
// land on the same shard and most traffic stays shard-internal.
package topo

import (
	"fmt"
	"math/rand"
	"net/netip"

	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
)

// LinkSpec shapes the links a generator creates. Generated links are
// jitter- and loss-free.
type LinkSpec struct {
	// RateBps is the serialisation rate (0 = unlimited).
	RateBps int64
	// DelayNs is the propagation delay. 0 picks the 25 µs default; a
	// negative value requests a true zero-delay link — eligible to
	// cross shard boundaries only under the optimistic engine, since
	// the conservative engine derives its lookahead from positive
	// cross-shard delays.
	DelayNs int64
	// QueueLimit bounds the qdisc FIFO (0 = netem default).
	QueueLimit int
}

func (l LinkSpec) config() netem.Config {
	delay := l.DelayNs
	if delay < 0 {
		delay = 0
	}
	return netem.Config{RateBps: l.RateBps, DelayNs: delay, QueueLimit: l.QueueLimit}
}

// Opts parameterises a generator.
type Opts struct {
	// Link shapes switch-switch (core) links.
	Link LinkSpec
	// HostLink shapes host attachment links; zero value falls back to
	// Link.
	HostLink LinkSpec
	// PodLink shapes a fat-tree's intra-pod (edge–aggregation) links;
	// zero value falls back to Link. A negative PodLink.DelayNs
	// models the back-to-back intra-pod hops of a real fat-tree —
	// zero propagation delay — which only the optimistic engine can
	// split across shards.
	PodLink LinkSpec
	// SwitchCost builds the cost model for forwarding nodes (default
	// netsim.ServerCostModel).
	SwitchCost func() netsim.CostModel
	// HostCost builds the cost model for traffic endpoints (default
	// netsim.HostCostModel).
	HostCost func() netsim.CostModel
}

func (o *Opts) fill() {
	if o.Link.DelayNs == 0 {
		o.Link.DelayNs = 25 * netsim.Microsecond
	}
	if o.Link.RateBps == 0 {
		o.Link.RateBps = 10_000_000_000
	}
	if o.HostLink == (LinkSpec{}) {
		o.HostLink = o.Link
	}
	if o.PodLink == (LinkSpec{}) {
		o.PodLink = o.Link
	}
	if o.SwitchCost == nil {
		o.SwitchCost = netsim.ServerCostModel
	}
	if o.HostCost == nil {
		o.HostCost = netsim.HostCostModel
	}
}

// Network is a generated topology: the sim it was built into, every
// node in creation order, and the subset that terminates traffic.
type Network struct {
	Sim *netsim.Sim
	// Nodes lists every node in creation order (the order netsim's
	// block partition shards by).
	Nodes []*netsim.Node
	// Hosts lists the traffic endpoints (every node, for line/ring/
	// Waxman; the leaves, for a fat-tree).
	Hosts []*netsim.Node

	nbrs map[*netsim.Node][]*netsim.Iface
}

// HostAddr returns the address traffic for host h must use.
func (nw *Network) HostAddr(h *netsim.Node) netip.Addr { return h.PrimaryAddress() }

// PermutationPairs derives a deterministic random permutation traffic
// pattern over the hosts: each host sends to exactly one other host
// and no host receives twice. The dedicated seed keeps the pattern
// independent of the simulation's RNG state.
func (nw *Network) PermutationPairs(seed int64) [][2]*netsim.Node {
	rng := rand.New(rand.NewSource(seed))
	n := len(nw.Hosts)
	perm := rng.Perm(n)
	// Fix the fixed points so nobody talks to itself: rotate each
	// self-mapped index onto the next one's target.
	for i := 0; i < n; i++ {
		if perm[i] == i {
			j := (i + 1) % n
			perm[i], perm[j] = perm[j], perm[i]
		}
	}
	pairs := make([][2]*netsim.Node, 0, n)
	for i, p := range perm {
		pairs = append(pairs, [2]*netsim.Node{nw.Hosts[i], nw.Hosts[p]})
	}
	return pairs
}

// hostAddr16 numbers host i under 2001:db8::/32 with the host index
// in bytes 4-5, so the /48 enclosing prefix is unique per host.
func hostAddr(i int) (netip.Addr, netip.Prefix) {
	var b [16]byte
	b[0], b[1], b[2], b[3] = 0x20, 0x01, 0x0d, 0xb8
	b[4], b[5] = byte(i>>8), byte(i)
	b[15] = 1
	addr := netip.AddrFrom16(b)
	return addr, netip.PrefixFrom(addr, 48)
}

// switchAddr numbers forwarding node i under fc00::/16 (used as the
// source of generated ICMP, never as a traffic destination).
func switchAddr(i int) netip.Addr {
	var b [16]byte
	b[0] = 0xfc
	b[4], b[5] = byte(i>>8), byte(i)
	b[15] = 1
	return netip.AddrFrom16(b)
}

// builder accumulates a topology before routing is installed.
type builder struct {
	nw       *Network
	hostSeq  int
	swSeq    int
	prefixes map[*netsim.Node]netip.Prefix
}

func newBuilder(sim *netsim.Sim) *builder {
	return &builder{
		nw: &Network{
			Sim:  sim,
			nbrs: make(map[*netsim.Node][]*netsim.Iface),
		},
		prefixes: make(map[*netsim.Node]netip.Prefix),
	}
}

// addHost creates a traffic endpoint with its own /48.
func (b *builder) addHost(name string, cost netsim.CostModel) *netsim.Node {
	n := b.nw.Sim.AddNode(name, cost)
	addr, pfx := hostAddr(b.hostSeq)
	b.hostSeq++
	n.AddAddress(addr)
	b.prefixes[n] = pfx
	b.nw.Nodes = append(b.nw.Nodes, n)
	b.nw.Hosts = append(b.nw.Hosts, n)
	return n
}

// addSwitch creates a forwarding node.
func (b *builder) addSwitch(name string, cost netsim.CostModel) *netsim.Node {
	n := b.nw.Sim.AddNode(name, cost)
	n.AddAddress(switchAddr(b.swSeq))
	b.swSeq++
	b.nw.Nodes = append(b.nw.Nodes, n)
	return n
}

// connect links two nodes symmetrically and records adjacency.
func (b *builder) connect(x, y *netsim.Node, l LinkSpec) (*netsim.Iface, *netsim.Iface) {
	ix, iy := netsim.ConnectSymmetric(x, y, l.config())
	b.nw.nbrs[x] = append(b.nw.nbrs[x], ix)
	b.nw.nbrs[y] = append(b.nw.nbrs[y], iy)
	return ix, iy
}

// installRoutes runs a BFS from every host and installs, on every
// other node, an ECMP route for the host's /48 over all shortest
// paths. Neighbour order is link creation order, so the nexthop sets
// — and therefore ECMP hashing — are deterministic.
func (b *builder) installRoutes() *Network {
	nodes := b.nw.Nodes
	index := make(map[*netsim.Node]int, len(nodes))
	for i, n := range nodes {
		index[n] = i
	}
	dist := make([]int, len(nodes))
	queue := make([]*netsim.Node, 0, len(nodes))

	for _, h := range b.nw.Hosts {
		pfx := b.prefixes[h]
		for i := range dist {
			dist[i] = -1
		}
		queue = queue[:0]
		dist[index[h]] = 0
		queue = append(queue, h)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			dv := dist[index[v]]
			for _, ifc := range b.nw.nbrs[v] {
				u := ifc.Peer().Node
				if dist[index[u]] < 0 {
					dist[index[u]] = dv + 1
					queue = append(queue, u)
				}
			}
		}
		for _, v := range nodes {
			if v == h || dist[index[v]] < 0 {
				continue
			}
			var nhs []netsim.Nexthop
			for _, ifc := range b.nw.nbrs[v] {
				u := ifc.Peer().Node
				if dist[index[u]] == dist[index[v]]-1 {
					nhs = append(nhs, netsim.Nexthop{Iface: ifc})
				}
			}
			if len(nhs) == 0 {
				continue
			}
			v.AddRoute(&netsim.Route{Prefix: pfx, Kind: netsim.RouteForward, Nexthops: nhs})
		}
	}
	return b.nw
}

// Line builds a chain of n hosts: H0 - H1 - ... - Hn-1. Every node
// terminates traffic (they model CPE-style devices that also
// forward).
func Line(sim *netsim.Sim, n int, opts Opts) (*Network, error) {
	if n < 2 {
		return nil, fmt.Errorf("topo: line needs >= 2 nodes, got %d", n)
	}
	opts.fill()
	b := newBuilder(sim)
	for i := 0; i < n; i++ {
		b.addHost(fmt.Sprintf("h%d", i), opts.HostCost())
	}
	for i := 0; i+1 < n; i++ {
		b.connect(b.nw.Nodes[i], b.nw.Nodes[i+1], opts.Link)
	}
	return b.installRoutes(), nil
}

// Ring builds a cycle of n hosts; antipodal traffic ECMPs over both
// directions.
func Ring(sim *netsim.Sim, n int, opts Opts) (*Network, error) {
	if n < 3 {
		return nil, fmt.Errorf("topo: ring needs >= 3 nodes, got %d", n)
	}
	opts.fill()
	b := newBuilder(sim)
	for i := 0; i < n; i++ {
		b.addHost(fmt.Sprintf("h%d", i), opts.HostCost())
	}
	for i := 0; i < n; i++ {
		b.connect(b.nw.Nodes[i], b.nw.Nodes[(i+1)%n], opts.Link)
	}
	return b.installRoutes(), nil
}
