package experiments

import (
	"fmt"

	"srv6bpf/internal/netsim"
	"srv6bpf/internal/nf/hybrid"
	"srv6bpf/internal/tcpsim"
	"srv6bpf/internal/trafgen"
)

// Fig4Point is one (payload size, configuration) measurement of
// Figure 4.
type Fig4Point struct {
	Payload     int     `json:"payload"`
	Config      string  `json:"config"`
	GoodputMbps float64 `json:"goodput_mbps"`
}

// fig4Configs are the three curves of Figure 4.
var fig4Configs = []string{"IPv6 forward.", "Kernel decap.", "eBPF WRR"}

// Fig4Payloads is the payload-size sweep of Figure 4.
var Fig4Payloads = []int{200, 400, 600, 800, 1000, 1200, 1400}

// Figure4 reproduces §4.2 Figure 4: aggregated UDP goodput through
// the Turris Omnia CPE for three configurations — plain IPv6
// forwarding, SRv6 encap with native kernel decapsulation on the CPE,
// and the eBPF WRR scheduler running interpreted (the paper's ARM32
// JIT is broken). iperf3-style UDP at 1 Gbps offered, payloads from
// 200 to 1400 bytes.
func Figure4(durationNs int64) ([]Fig4Point, error) {
	var out []Fig4Point
	for _, cfg := range fig4Configs {
		for _, payload := range Fig4Payloads {
			g, err := fig4Run(cfg, payload, durationNs)
			if err != nil {
				return nil, err
			}
			out = append(out, Fig4Point{Payload: payload, Config: cfg, GoodputMbps: g / 1e6})
		}
	}
	return out, nil
}

func fig4Run(cfg string, payload int, durationNs int64) (float64, error) {
	sim := netsim.New(4)
	// Figure 4's lab has no netem shaping: both access links at 1 Gbps.
	tb, err := hybrid.NewTestbed(sim, hybrid.Params{
		Link0: hybrid.LinkSpec{RateBps: 1_000_000_000},
		Link1: hybrid.LinkSpec{RateBps: 1_000_000_000},
	})
	if err != nil {
		return 0, err
	}
	// "IPv6 forward." and "Kernel decap." stress the CPE downstream
	// (S1 -> S2); "eBPF WRR" stresses it upstream (S2 -> S1), where
	// the CPE itself runs the interpreted scheduler — the paper's
	// bottleneck ("the eBPF interpreter ... is the bottleneck").
	src, dst := hybrid.S1Addr, hybrid.S2Addr
	genNode, sinkNode := tb.S1, tb.S2
	switch cfg {
	case "IPv6 forward.":
		// Base topology: downstream rides link 0 unencapsulated.
	case "Kernel decap.":
		tb.EnableStaticEncapDownstream()
	case "eBPF WRR":
		if err := tb.EnableWRRUpstream(); err != nil {
			return 0, err
		}
		src, dst = hybrid.S2Addr, hybrid.S1Addr
		genNode, sinkNode = tb.S2, tb.S1
	default:
		return 0, fmt.Errorf("experiments: unknown Figure 4 config %q", cfg)
	}

	sink := trafgen.NewSink(sinkNode, 9999)
	wire := payload + 8 + 40 // UDP + IPv6
	gen := &trafgen.UDPGen{
		Node: genNode, Src: src, Dst: dst,
		SrcPort: 1000, DstPort: 9999,
		PayloadLen: payload,
		RatePPS:    1e9 / float64(wire*8), // 1 Gbps offered
	}
	if err := gen.Start(sim.Now() + durationNs); err != nil {
		return 0, err
	}
	sim.RunUntil(sim.Now() + durationNs/10)
	sink.Reset()
	sim.RunUntil(sim.Now() + durationNs)
	gen.Stop()
	return sink.GoodputBps(), nil
}

// TCPResult is one row of the §4.2 TCP experiment.
type TCPResult struct {
	Name        string
	GoodputMbps float64
}

// TCPHybrid reproduces the §4.2 TCP results: a single connection over
// the uncompensated per-packet WRR collapses; with the TWD daemon's
// delay compensation one connection and four parallel connections
// approach the 80 Mbps aggregate.
func TCPHybrid(durationNs int64) ([]TCPResult, error) {
	run := func(compensate bool, flows int, seed int64) (float64, error) {
		sim := netsim.New(seed)
		tb, err := hybrid.NewTestbed(sim, hybrid.Params{
			Link0: hybrid.LinkSpec{RateBps: 50_000_000, OneWayDelay: 15 * netsim.Millisecond, OneWayJitter: 2_500_000, QueueLimit: 300},
			Link1: hybrid.LinkSpec{RateBps: 30_000_000, OneWayDelay: 2_500_000, OneWayJitter: 1_000_000, QueueLimit: 300},
		})
		if err != nil {
			return 0, err
		}
		if err := tb.EnableWRRDownstream(); err != nil {
			return 0, err
		}
		if err := tb.EnableWRRUpstream(); err != nil {
			return 0, err
		}
		var comp *hybrid.Compensator
		if compensate {
			if err := tb.DeployEndDM(true); err != nil {
				return 0, err
			}
			comp = tb.StartCompensator(100 * netsim.Millisecond)
			sim.RunUntil(2 * netsim.Second)
		}
		s1 := tcpsim.NewStack(tb.S1)
		s2 := tcpsim.NewStack(tb.S2)
		var snds []*tcpsim.Sender
		var rcvs []*tcpsim.Receiver
		for i := 0; i < flows; i++ {
			snd, rcv, err := tcpsim.NewTransfer(s1, s2, hybrid.S1Addr, hybrid.S2Addr,
				uint16(41000+i), uint16(5001+i), tcpsim.Config{FlowLabel: uint32(100 + i)})
			if err != nil {
				return 0, err
			}
			snds = append(snds, snd)
			rcvs = append(rcvs, rcv)
		}
		for _, snd := range snds {
			snd.Start()
		}
		sim.RunUntil(sim.Now() + durationNs)
		for _, snd := range snds {
			snd.Stop()
		}
		if comp != nil {
			comp.Stop()
		}
		sim.RunUntil(sim.Now() + netsim.Second)
		var total float64
		for _, rcv := range rcvs {
			total += rcv.GoodputBps()
		}
		return total, nil
	}

	var out []TCPResult
	for _, c := range []struct {
		name       string
		compensate bool
		flows      int
		seed       int64
	}{
		{"WRR, no compensation, 1 conn", false, 1, 11},
		{"WRR + TWD compensation, 1 conn", true, 1, 12},
		{"WRR + TWD compensation, 4 conns", true, 4, 13},
	} {
		g, err := run(c.compensate, c.flows, c.seed)
		if err != nil {
			return nil, err
		}
		out = append(out, TCPResult{Name: c.name, GoodputMbps: g / 1e6})
	}
	return out, nil
}

// JITFactor reproduces the §3.2 observation that disabling the JIT
// divides the Add TLV throughput by 1.8: it returns the ratio of
// JIT to interpreter whole-router forwarding rates.
func JITFactor(durationNs int64) (float64, error) {
	rows, err := Figure2(durationNs)
	if err != nil {
		return 0, err
	}
	var jit, nojit float64
	for _, r := range rows {
		switch r.Name {
		case "Add TLV BPF":
			jit = r.KPPS
		case "Add TLV no JIT":
			nojit = r.KPPS
		}
	}
	if nojit == 0 {
		return 0, fmt.Errorf("experiments: missing no-JIT row")
	}
	return jit / nojit, nil
}
