package delaymon

import (
	"math"
	"net/netip"
	"testing"

	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/packet"
)

var (
	s1Addr   = netip.MustParseAddr("2001:db8:1::1")
	s2Addr   = netip.MustParseAddr("2001:db8:2::1")
	headAddr = netip.MustParseAddr("2001:db8:10::1")
	tailAddr = netip.MustParseAddr("2001:db8:20::1")
	ctrlAddr = netip.MustParseAddr("2001:db8:99::1")
	dmSID    = netip.MustParseAddr("fc00:20::dd")
)

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

// testbed: S1 -- H ==(10 ms link)== T -- S2, controller C hanging off
// T. H runs the encap program for S2's prefix; T runs End.DM.
type testbed struct {
	sim               *netsim.Sim
	s1, h, t, s2, c   *netsim.Node
	monitor           *Monitor
	collector         *Collector
	daemon            *Daemon
	deliveredS2       *int
	monitoredDelayNs  int64
	samplesPerDeliver int
}

func newTestbed(t *testing.T, ratio uint32) *testbed {
	t.Helper()
	sim := netsim.New(7)
	tb := &testbed{sim: sim, monitoredDelayNs: 10 * netsim.Millisecond}
	tb.s1 = sim.AddNode("S1", netsim.HostCostModel())
	tb.h = sim.AddNode("H", netsim.ServerCostModel())
	tb.t = sim.AddNode("T", netsim.ServerCostModel())
	tb.s2 = sim.AddNode("S2", netsim.HostCostModel())
	tb.c = sim.AddNode("C", netsim.HostCostModel())

	tb.s1.AddAddress(s1Addr)
	tb.h.AddAddress(headAddr)
	tb.t.AddAddress(tailAddr)
	tb.s2.AddAddress(s2Addr)
	tb.c.AddAddress(ctrlAddr)

	fast := netem.Config{RateBps: 10_000_000_000, DelayNs: 20 * netsim.Microsecond}
	monitored := netem.Config{RateBps: 10_000_000_000, DelayNs: tb.monitoredDelayNs}

	s1If, hs1If := netsim.ConnectSymmetric(tb.s1, tb.h, fast)
	htIf, thIf := netsim.ConnectSymmetric(tb.h, tb.t, monitored)
	tsIf, s2If := netsim.ConnectSymmetric(tb.t, tb.s2, fast)
	tcIf, cIf := netsim.ConnectSymmetric(tb.t, tb.c, fast)

	tb.s1.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: s1If}}})
	tb.s2.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: s2If}}})
	tb.c.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: cIf}}})

	tb.h.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:1::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: hs1If}}})
	// Everything towards T's side goes over the monitored link;
	// the LWT BPF route for S2's prefix is installed below.
	tb.h.AddRoute(&netsim.Route{Prefix: pfx("fc00:20::/32"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: htIf}}})
	tb.h.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:20::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: htIf}}})
	tb.h.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:99::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: htIf}}})

	tb.t.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:2::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tsIf}}})
	tb.t.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:99::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tcIf}}})
	tb.t.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:1::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: thIf}}})

	cfg := Config{
		Ratio:          ratio,
		Controller:     ctrlAddr,
		ControllerPort: 7788,
		SID:            dmSID,
	}
	mon, err := New(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	tb.monitor = mon
	mon.AttachHead(tb.h, pfx("2001:db8:2::/48"), []netsim.Nexthop{{Iface: htIf}})
	mon.AttachTail(tb.t, dmSID)
	tb.daemon = mon.StartDaemon(tb.t, netsim.Millisecond)

	tb.collector = &Collector{}
	tb.collector.Listen(tb.c, 7788)

	delivered := 0
	tb.deliveredS2 = &delivered
	tb.s2.HandleUDP(4242, func(n *netsim.Node, p *packet.Packet, meta *netsim.PacketMeta) {
		delivered++
	})
	return tb
}

func (tb *testbed) sendTraffic(t *testing.T, n int, gapNs int64) {
	t.Helper()
	for i := 0; i < n; i++ {
		i := i
		tb.sim.Schedule(int64(i)*gapNs, func() {
			raw, err := packet.BuildPacket(s1Addr, s2Addr,
				packet.WithUDP(3000, 4242),
				packet.WithPayload(make([]byte, 64)),
				packet.WithFlowLabel(uint32(i)&0xfffff))
			if err != nil {
				t.Fatal(err)
			}
			tb.s1.Output(raw)
		})
	}
}

func TestOWDMeasurementAllPackets(t *testing.T) {
	tb := newTestbed(t, 1) // sample everything
	const n = 200
	tb.sendTraffic(t, n, 100*netsim.Microsecond)
	tb.sim.RunUntil(200 * netsim.Millisecond)
	tb.daemon.Stop()
	tb.sim.RunUntil(210 * netsim.Millisecond)

	if *tb.deliveredS2 != n {
		t.Fatalf("S2 received %d/%d packets (decap broken?) H=%v T=%v",
			*tb.deliveredS2, n, tb.h.Counters(), tb.t.Counters())
	}
	if tb.collector.Received != n {
		t.Fatalf("controller received %d/%d reports (daemon relayed %d, perf lost %d)",
			tb.collector.Received, n, tb.daemon.Relayed, tb.monitor.Events.LostSamples())
	}
	// The measured one-way delay must be dominated by the 10 ms link.
	mean := tb.collector.Delays.Mean()
	if math.Abs(mean-float64(tb.monitoredDelayNs)) > float64(netsim.Millisecond) {
		t.Errorf("mean OWD = %.2f ms, want ≈10 ms", mean/1e6)
	}
	// Delays are one-way: never negative, never wildly large.
	if tb.collector.Delays.Quantile(0) < 0 {
		t.Error("negative delay sample")
	}
}

func TestOWDSamplingRatio(t *testing.T) {
	tb := newTestbed(t, 100)
	const n = 5000
	tb.sendTraffic(t, n, 20*netsim.Microsecond)
	tb.sim.RunUntil(2 * netsim.Second)
	tb.daemon.Stop()
	tb.sim.RunUntil(2*netsim.Second + 50*netsim.Millisecond)

	if *tb.deliveredS2 != n {
		t.Fatalf("S2 received %d/%d packets", *tb.deliveredS2, n)
	}
	got := float64(tb.collector.Received)
	want := float64(n) / 100
	if got < want/2 || got > want*2 {
		t.Errorf("sampled %v reports for ratio 1:100 over %d packets, want ≈%v", got, n, want)
	}
	// Unsampled packets must not carry any SRH at S2 (checked
	// implicitly: they were never encapsulated, or decap removed it).
}

func TestDisabledRatioSendsNothing(t *testing.T) {
	tb := newTestbed(t, 0)
	tb.sendTraffic(t, 100, 50*netsim.Microsecond)
	tb.sim.RunUntil(100 * netsim.Millisecond)
	tb.daemon.Stop()
	tb.sim.RunUntil(110 * netsim.Millisecond)
	if tb.collector.Received != 0 {
		t.Errorf("received %d reports with probing disabled", tb.collector.Received)
	}
	if *tb.deliveredS2 != 100 {
		t.Errorf("S2 received %d/100", *tb.deliveredS2)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	cfg := Config{Ratio: 50, Controller: ctrlAddr, ControllerPort: 9000, SID: dmSID}
	v := cfg.MarshalValue()
	if len(v) != 40 {
		t.Fatalf("value size %d", len(v))
	}
	// Spot-check wire ordering: port is big-endian at offset 4.
	if v[4] != 0x23 || v[5] != 0x28 { // 9000 = 0x2328
		t.Errorf("port bytes = %x %x", v[4], v[5])
	}
	rec := Record{TxNS: 111, RxNS: 222, Controller: ctrlAddr, Port: 9000}
	b := make([]byte, 40)
	for i := range b {
		b[i] = 0
	}
	// Encode by hand the way the BPF program does.
	b[0] = 111
	b[8] = 222
	a := ctrlAddr.As16()
	copy(b[16:32], a[:])
	b[32], b[33] = 0x28, 0x23 // little-endian 9000
	got, err := DecodeRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Errorf("decoded %+v, want %+v", got, rec)
	}
	if _, err := DecodeRecord(b[:10]); err == nil {
		t.Error("short record accepted")
	}
}
