// Package delaymon implements the paper's first use case (§4.1):
// passive monitoring of one-way network delays with SRv6, plus the
// two-way-delay (TWD) extension of §4.2.
//
// The data plane is pure eBPF (internal/nf/progs): a transit program
// at the head of the monitored path probabilistically encapsulates
// traffic with an SRH carrying DM and controller TLVs, and the
// End.DM program at the tail emits both timestamps through a perf
// event, then decapsulates. This package is the user-space half: the
// daemon that relays perf events to the controller as UDP datagrams
// (the paper's 100-SLOC bcc/Python program) and the controller that
// aggregates delay samples.
package delaymon

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/maps"
	"srv6bpf/internal/core"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/nf/progs"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/stats"
)

// Config parameterises one monitored path.
type Config struct {
	// Ratio samples one packet out of Ratio (the paper evaluates
	// 1:10000 and 1:100). Zero disables probing.
	Ratio uint32
	// Controller receives delay reports over UDP.
	Controller     netip.Addr
	ControllerPort uint16
	// SID is the End.DM segment at the tail of the monitored path.
	SID netip.Addr
}

// MarshalValue encodes the config as the dm_conf map value the BPF
// program reads (layout documented in internal/nf/progs).
func (c Config) MarshalValue() []byte {
	v := make([]byte, progs.DMConfSize)
	binary.LittleEndian.PutUint32(v[0:], c.Ratio)
	binary.BigEndian.PutUint16(v[4:], c.ControllerPort) // wire order
	ctrl := c.Controller.As16()
	copy(v[8:24], ctrl[:])
	sid := c.SID.As16()
	copy(v[24:40], sid[:])
	return v
}

// Record is one decoded End.DM perf sample.
type Record struct {
	TxNS, RxNS uint64
	Controller netip.Addr
	Port       uint16
}

// DecodeRecord parses the 40-byte perf sample.
func DecodeRecord(b []byte) (Record, error) {
	if len(b) != progs.DMRecordSize {
		return Record{}, fmt.Errorf("delaymon: record size %d, want %d", len(b), progs.DMRecordSize)
	}
	return Record{
		TxNS:       binary.LittleEndian.Uint64(b[0:]),
		RxNS:       binary.LittleEndian.Uint64(b[8:]),
		Controller: netip.AddrFrom16([16]byte(b[16:32])),
		Port:       binary.LittleEndian.Uint16(b[32:]),
	}, nil
}

// ReportSize is the UDP payload the daemon sends to the controller:
// both timestamps, little-endian.
const ReportSize = 16

// Monitor owns the maps and loaded programs of one deployment.
type Monitor struct {
	Conf   *maps.Map
	Events *maps.Map

	encap *core.LWT
	endDM *core.EndBPF
}

// New loads the two programs and creates their maps. jit selects the
// execution engine for both.
func New(cfg Config, jit bool) (*Monitor, error) {
	conf, err := maps.New(maps.Spec{
		Name: progs.DMConfMap, Type: maps.Array,
		KeySize: 4, ValueSize: progs.DMConfSize, MaxEntries: 1,
	})
	if err != nil {
		return nil, err
	}
	if err := conf.Update(bpf.PutUint32(0), cfg.MarshalValue(), maps.UpdateAny); err != nil {
		return nil, err
	}
	events, err := maps.New(maps.Spec{
		Name: progs.DMEventsMap, Type: maps.PerfEventArray, MaxEntries: 1,
	})
	if err != nil {
		return nil, err
	}

	avail := map[string]*maps.Map{progs.DMConfMap: conf, progs.DMEventsMap: events}
	opts := bpf.LoadOptions{JIT: &jit}

	encapProg, err := bpf.LoadProgram(progs.DMEncapSpec(), core.LWTOutHook(), avail, opts)
	if err != nil {
		return nil, fmt.Errorf("delaymon: loading encap program: %w", err)
	}
	encap, err := core.AttachLWT(encapProg)
	if err != nil {
		return nil, err
	}
	dmProg, err := bpf.LoadProgram(progs.EndDMSpec(), core.Seg6LocalHook(), avail, opts)
	if err != nil {
		return nil, fmt.Errorf("delaymon: loading End.DM: %w", err)
	}
	endDM, err := core.AttachEndBPF(dmProg)
	if err != nil {
		return nil, err
	}

	return &Monitor{Conf: conf, Events: events, encap: encap, endDM: endDM}, nil
}

// AttachHead installs the transit program on node for traffic
// matching prefix, egressing via nexthops.
func (m *Monitor) AttachHead(node *netsim.Node, prefix netip.Prefix, nexthops []netsim.Nexthop) {
	node.AddRoute(&netsim.Route{
		Prefix:   prefix,
		Kind:     netsim.RouteLWTBPF,
		BPF:      m.encap,
		Nexthops: nexthops,
	})
}

// AttachTail installs the End.DM SID on node.
func (m *Monitor) AttachTail(node *netsim.Node, sid netip.Addr) {
	node.AddRoute(&netsim.Route{
		Prefix:    netip.PrefixFrom(sid, 128),
		Kind:      netsim.RouteSeg6Local,
		Behaviour: m.endDM.Behaviour(),
	})
}

// Daemon is the user-space process on the End.DM router: it drains
// perf events and relays each to its controller in a single UDP
// datagram, as the paper's bcc daemon does.
type Daemon struct {
	node     *netsim.Node
	events   *maps.Map
	srcPort  uint16
	interval int64
	stopped  bool

	Relayed uint64
	Errors  uint64
}

// StartDaemon begins draining perf events on node every interval
// nanoseconds.
func (m *Monitor) StartDaemon(node *netsim.Node, interval int64) *Daemon {
	d := &Daemon{
		node:     node,
		events:   m.Events,
		srcPort:  52900,
		interval: interval,
	}
	node.After(interval, d.tick)
	return d
}

// Stop prevents further rescheduling (call before draining the
// simulation to completion).
func (d *Daemon) Stop() { d.stopped = true }

func (d *Daemon) tick() {
	if d.stopped {
		return
	}
	for _, s := range d.events.DrainSamples(0) {
		rec, err := DecodeRecord(s.Data)
		if err != nil {
			d.Errors++
			continue
		}
		payload := make([]byte, ReportSize)
		binary.LittleEndian.PutUint64(payload[0:], rec.TxNS)
		binary.LittleEndian.PutUint64(payload[8:], rec.RxNS)
		raw, err := packet.BuildPacket(d.node.PrimaryAddress(), rec.Controller,
			packet.WithUDP(d.srcPort, rec.Port),
			packet.WithPayload(payload))
		if err != nil {
			d.Errors++
			continue
		}
		d.node.Output(raw)
		d.Relayed++
	}
	d.node.After(d.interval, d.tick)
}

// Collector aggregates one-way delay reports on the controller.
type Collector struct {
	// Delays holds one-way delays in nanoseconds.
	Delays stats.Reservoir
	// Received counts reports.
	Received uint64
}

// Listen registers the collector on node's UDP port.
func (c *Collector) Listen(node *netsim.Node, port uint16) {
	c.Delays.Cap = 1 << 20
	node.HandleUDP(port, func(n *netsim.Node, p *packet.Packet, meta *netsim.PacketMeta) {
		payload := p.Raw[p.L4Off+packet.UDPHeaderLen:]
		if len(payload) != ReportSize {
			return
		}
		tx := binary.LittleEndian.Uint64(payload[0:])
		rx := binary.LittleEndian.Uint64(payload[8:])
		c.Received++
		c.Delays.Add(float64(rx - tx))
	})
}
