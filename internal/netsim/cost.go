package netsim

import "srv6bpf/internal/seg6"

// CostModel charges virtual CPU time per packet. The simulator's
// throughput results come from these numbers, so they are the
// calibration surface of the whole reproduction; see EXPERIMENTS.md
// for the fit.
//
// All figures of the paper are *normalized* to raw IPv6 forwarding,
// so only the ratios matter for the reproduced shapes. Absolute
// values are anchored on the paper's single measured absolute: 610
// kpps of raw IPv6 forwarding on the Xeon X3440 router for 64-byte
// UDP payloads inside a 2-segment SRH (§3.2).
type CostModel struct {
	// ForwardNs is the fixed per-packet cost of the IPv6 receive +
	// FIB lookup + transmit path.
	ForwardNs int64
	// PerByteNs adds size-dependent cost (copies, checksums).
	PerByteNs float64
	// LocalDeliverNs is the local socket delivery cost.
	LocalDeliverNs int64
	// Behaviour is the extra cost of each static seg6local behaviour,
	// on top of ForwardNs.
	Behaviour map[seg6.Action]int64
	// EncapNs is the extra cost of the seg6 transit behaviours
	// (T.Encaps / T.Insert) performed by a route.
	EncapNs int64
	// ICMPGenNs is the cost of generating an ICMPv6 error.
	ICMPGenNs int64

	// BPF execution: a fixed program-call overhead plus per-retired-
	// instruction cost depending on engine, plus a per-helper-call
	// surcharge (helpers run native kernel code).
	BPFSetupNs    int64
	InsnNsJIT     float64
	InsnNsInterp  float64
	HelperNs      int64
	RxRingPackets int // NIC receive ring size (packets)
}

// BPFCost converts retired instruction and helper-call counts into
// nanoseconds.
func (c *CostModel) BPFCost(insns, helperCalls uint64, jit bool) int64 {
	perInsn := c.InsnNsInterp
	if jit {
		perInsn = c.InsnNsJIT
	}
	return c.BPFSetupNs + int64(float64(insns)*perInsn) + int64(helperCalls)*c.HelperNs
}

// PacketCost is the base cost of handling one packet of the given
// size.
func (c *CostModel) PacketCost(size int) int64 {
	return c.ForwardNs + int64(float64(size)*c.PerByteNs)
}

// ServerCostModel models the paper's lab routers (Intel Xeon X3440,
// one core taking all NIC interrupts, Linux 4.18 forwarding path).
//
// Calibration: 64-byte UDP payload + 2-segment SRH is a 152-byte
// packet; 1548 + 0.6*152 ≈ 1639 ns/packet ≈ 610 kpps — the paper's
// measured raw forwarding baseline. Static behaviour costs and the
// BPF constants put each Figure 2 bar at the relationship the paper
// reports (End.BPF −3% vs static End; Tag++ below End.BPF; End.T.BPF
// below static End.T; AddTLV −5% vs End.BPF; JIT off ⇒ ÷1.8 on
// whole-router throughput).
//
// Note on InsnNsInterp: the paper's programs are clang-compiled C
// whose instruction counts are several times larger than the
// hand-written equivalents bundled here (e.g. Add TLV: 60 SLOC of C
// versus ~32 retired instructions in our dialect). The per-
// instruction interpreter cost therefore folds in that footprint
// ratio so that the *whole-router* JIT-off factor lands at the
// paper's ×1.8.
func ServerCostModel() CostModel {
	return CostModel{
		ForwardNs:      1548,
		PerByteNs:      0.6,
		LocalDeliverNs: 500,
		Behaviour: map[seg6.Action]int64{
			seg6.ActionEnd:        50,
			seg6.ActionEndX:       60,
			seg6.ActionEndT:       85,
			seg6.ActionEndDX2:     520,
			seg6.ActionEndDX6:     600,
			seg6.ActionEndDX4:     600,
			seg6.ActionEndDT6:     700,
			seg6.ActionEndDT4:     700,
			seg6.ActionEndDT46:    730,
			seg6.ActionEndB6:      300,
			seg6.ActionEndB6Encap: 800,
			// Proxies: End.AS pays a full decap + later re-encap;
			// End.AM only rewrites the destination address.
			seg6.ActionEndAS: 950,
			seg6.ActionEndAM: 120,
		},
		EncapNs:       260,
		ICMPGenNs:     2000,
		BPFSetupNs:    45,
		InsnNsJIT:     0.5,
		InsnNsInterp:  46,
		HelperNs:      40,
		RxRingPackets: 512,
	}
}

// CPECostModel models the Turris Omnia home router of §4.2 (dual-core
// 1.6 GHz ARMv7; one flow keeps one core busy). It is roughly four
// times slower per packet than the lab servers; its eBPF interpreter
// is proportionally slower still, and — as in the paper — the ARM32
// JIT is unusable, so WRR runs interpreted.
func CPECostModel() CostModel {
	return CostModel{
		ForwardNs:      6000,
		PerByteNs:      1.2,
		LocalDeliverNs: 2000,
		Behaviour: map[seg6.Action]int64{
			seg6.ActionEnd:    200,
			seg6.ActionEndX:   240,
			seg6.ActionEndT:   340,
			seg6.ActionEndDX2: 450,
			seg6.ActionEndDX6: 500,
			seg6.ActionEndDX4: 500,
			// Decap costs ~9% of the CPE's per-packet budget: the
			// "Kernel decap." curve of Figure 4 sits ~10% under plain
			// forwarding at CPU-bound payload sizes.
			seg6.ActionEndDT6:     550,
			seg6.ActionEndDT4:     550,
			seg6.ActionEndDT46:    580,
			seg6.ActionEndB6:      1200,
			seg6.ActionEndB6Encap: 2400,
			seg6.ActionEndAS:      2800,
			seg6.ActionEndAM:      400,
		},
		// Kernel decapsulation of SRv6 traffic costs ~10% of the
		// baseline per-packet time (Figure 4, "Kernel decap.").
		EncapNs:       650,
		ICMPGenNs:     8000,
		BPFSetupNs:    180,
		InsnNsJIT:     2,
		InsnNsInterp:  75,
		HelperNs:      60,
		RxRingPackets: 256,
	}
}

// HostCostModel is for traffic sources and sinks whose CPU must never
// be the bottleneck (trafgen/pktgen saturate from user space in the
// paper's lab, offering 3 Mpps).
func HostCostModel() CostModel {
	return CostModel{
		ForwardNs:      100,
		PerByteNs:      0.01,
		LocalDeliverNs: 50,
		Behaviour:      map[seg6.Action]int64{},
		EncapNs:        50,
		ICMPGenNs:      100,
		BPFSetupNs:     10,
		InsnNsJIT:      0.5,
		InsnNsInterp:   5,
		HelperNs:       5,
		RxRingPackets:  1 << 16,
	}
}
