package core_test

import (
	"net/netip"
	"testing"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/asm"
	"srv6bpf/internal/core"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/packet"
)

// wildReadSpec builds a program that passes the verifier (packet
// bounds are a runtime property) but faults on every small packet: it
// loads the packet pointer from the ctx and reads far past data_end.
func wildReadSpec() *bpf.ProgramSpec {
	return &bpf.ProgramSpec{
		Name: "wild_read",
		Instructions: asm.Instructions{
			asm.LoadMem(asm.R2, asm.R1, core.CtxOffData, asm.DWord),
			asm.LoadMem(asm.R0, asm.R2, 4096, asm.Word),
			asm.Mov64Imm(asm.R0, core.BPFOK),
			asm.Return(),
		},
		License: "GPL",
	}
}

func attachEnd(t *testing.T, spec *bpf.ProgramSpec) *core.EndBPF {
	t.Helper()
	prog, err := bpf.LoadProgram(spec, core.Seg6LocalHook(), nil, bpf.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	end, err := core.AttachEndBPF(prog)
	if err != nil {
		t.Fatal(err)
	}
	return end
}

// TestFaultingProgramQuarantined: a program that keeps faulting is
// detached after DefaultMaxFaults packets — later packets die in a
// cheap counted drop without executing it, like the kernel unloading a
// misbehaving program instead of paying its fault path per packet.
func TestFaultingProgramQuarantined(t *testing.T) {
	end := attachEnd(t, wildReadSpec())
	g := newRig(t, nil)
	g.r.AddRoute(&netsim.Route{
		Prefix:    netip.PrefixFrom(sid, 128),
		Kind:      netsim.RouteSeg6Local,
		Behaviour: end.Behaviour(),
	})

	const packets = core.DefaultMaxFaults + 4
	for i := 0; i < packets; i++ {
		g.send(t, dstB)
	}

	if g.gotB != nil {
		t.Fatal("a faulting program forwarded a packet")
	}
	if !end.Quarantined() {
		t.Fatal("program not quarantined after repeated faults")
	}
	if end.Faults() != core.DefaultMaxFaults {
		t.Errorf("faults = %d, want %d (quarantine must stop the program running)",
			end.Faults(), core.DefaultMaxFaults)
	}
	rc := g.r.Counters()
	if rc["prog_quarantined"] != 1 {
		t.Errorf("prog_quarantined = %d, want 1", rc["prog_quarantined"])
	}
	if rc["drop_prog_quarantined"] != packets-core.DefaultMaxFaults {
		t.Errorf("drop_prog_quarantined = %d, want %d",
			rc["drop_prog_quarantined"], packets-core.DefaultMaxFaults)
	}
}

// TestSetMaxFaultsThreshold: a threshold of 1 quarantines on the first
// fault.
func TestSetMaxFaultsThreshold(t *testing.T) {
	end := attachEnd(t, wildReadSpec())
	end.SetMaxFaults(1)
	g := newRig(t, nil)
	g.r.AddRoute(&netsim.Route{
		Prefix:    netip.PrefixFrom(sid, 128),
		Kind:      netsim.RouteSeg6Local,
		Behaviour: end.Behaviour(),
	})
	g.send(t, dstB)
	if !end.Quarantined() || end.Faults() != 1 {
		t.Errorf("after one fault with threshold 1: quarantined=%v faults=%d",
			end.Quarantined(), end.Faults())
	}
}

// TestCleanDropIsNotAFault: BPF_DROP is a verdict, not a fault — a
// program dropping every packet must never be quarantined.
func TestCleanDropIsNotAFault(t *testing.T) {
	end := attachEnd(t, &bpf.ProgramSpec{
		Name: "dropper",
		Instructions: asm.Instructions{
			asm.Mov64Imm(asm.R0, core.BPFDrop), asm.Return(),
		},
		License: "GPL",
	})
	g := newRig(t, nil)
	g.r.AddRoute(&netsim.Route{
		Prefix:    netip.PrefixFrom(sid, 128),
		Kind:      netsim.RouteSeg6Local,
		Behaviour: end.Behaviour(),
	})
	for i := 0; i < core.DefaultMaxFaults+2; i++ {
		g.send(t, dstB)
	}
	if end.Faults() != 0 || end.Quarantined() {
		t.Errorf("clean drops counted as faults: faults=%d quarantined=%v",
			end.Faults(), end.Quarantined())
	}
}

// TestLWTFaultQuarantine mirrors the End.BPF quarantine on the transit
// hook.
func TestLWTFaultQuarantine(t *testing.T) {
	prog, err := bpf.LoadProgram(wildReadSpec(), core.LWTOutHook(), nil, bpf.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lwt, err := core.AttachLWT(prog)
	if err != nil {
		t.Fatal(err)
	}
	g := newRig(t, nil)
	g.r.AddRoute(&netsim.Route{
		Prefix: pfx("2001:db8:b::/48"), Kind: netsim.RouteLWTBPF, BPF: lwt,
		Nexthops: []netsim.Nexthop{{Iface: g.rbIf}},
	})
	const packets = core.DefaultMaxFaults + 3
	for i := 0; i < packets; i++ {
		raw, _ := packet.BuildPacket(srcA, dstB, packet.WithUDP(1, 9))
		g.a.Output(raw)
		g.sim.Run()
	}
	if g.gotB != nil {
		t.Fatal("a faulting LWT program forwarded a packet")
	}
	if !lwt.Quarantined() || lwt.Faults() != core.DefaultMaxFaults {
		t.Errorf("quarantined=%v faults=%d", lwt.Quarantined(), lwt.Faults())
	}
	rc := g.r.Counters()
	if rc["drop_prog_quarantined"] != packets-core.DefaultMaxFaults {
		t.Errorf("drop_prog_quarantined = %d, want %d",
			rc["drop_prog_quarantined"], packets-core.DefaultMaxFaults)
	}
}

// TestQuarantineStateRollsBack: the fault counter is ShardState — a
// rollback under the optimistic engine must rewind speculative faults
// so every engine quarantines at the same virtual time. Exercised
// end-to-end by the chaos arm of TestShardEquivalenceFuzz; here the
// snapshot contract is checked directly.
func TestQuarantineStateRollsBack(t *testing.T) {
	end := attachEnd(t, wildReadSpec())
	g := newRig(t, nil)
	g.r.AddRoute(&netsim.Route{
		Prefix:    netip.PrefixFrom(sid, 128),
		Kind:      netsim.RouteSeg6Local,
		Behaviour: end.Behaviour(),
	})
	g.send(t, dstB) // one fault in
	if end.Faults() != 1 {
		t.Fatalf("setup: faults = %d", end.Faults())
	}
	st := end.FaultState()
	snap := st.SnapshotState()
	g.send(t, dstB)
	g.send(t, dstB)
	if !end.Quarantined() {
		t.Fatalf("setup: not quarantined at %d faults", end.Faults())
	}
	st.RestoreState(snap)
	if end.Faults() != 1 || end.Quarantined() {
		t.Errorf("restore did not rewind quarantine: faults=%d quarantined=%v",
			end.Faults(), end.Quarantined())
	}
}
