// Package hybrid implements the paper's second use case (§4.2):
// hybrid access networks that aggregate two access links (xDSL and
// LTE in deployments, per TR-349) with SRv6 instead of GRE tunnel
// bonding.
//
// An aggregation box in the ISP network and the CPE both run the same
// eBPF LWT program — a per-packet Weighted Round-Robin scheduler over
// two single-segment SRHs (internal/nf/progs) — and the opposite end
// decapsulates natively with End.DT6. A TWD (two-way delay) daemon on
// the aggregation box measures the per-link delays with End.DM probes
// and compensates the difference with a netem-style extra delay on
// the fastest link, which is what rescues TCP from reordering
// collapse.
package hybrid

import (
	"encoding/binary"
	"fmt"
	"net/netip"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/maps"
	"srv6bpf/internal/core"
	"srv6bpf/internal/netem"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/nf/progs"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
)

// Addresses of the fixed testbed (setup 2 of Figure 1: S1, A, two
// links to M, S2 behind M).
var (
	S1Addr  = netip.MustParseAddr("2001:db8:1::1")
	AggAddr = netip.MustParseAddr("2001:db8:a::1")
	CPEAddr = netip.MustParseAddr("2001:db8:c::1")
	S2Addr  = netip.MustParseAddr("2001:db8:2::1")

	// Decap SIDs on the CPE, one reachable over each link.
	SIDCPELink0 = netip.MustParseAddr("fc00:c::d0")
	SIDCPELink1 = netip.MustParseAddr("fc00:c::d1")
	// Decap SIDs on the aggregation box for upstream traffic.
	SIDAggLink0 = netip.MustParseAddr("fc00:a::d0")
	SIDAggLink1 = netip.MustParseAddr("fc00:a::d1")
	// End.DM SIDs on the CPE for the TWD probes, one per link.
	SIDDMLink0 = netip.MustParseAddr("fc00:c::e0")
	SIDDMLink1 = netip.MustParseAddr("fc00:c::e1")
	// Per-link return addresses on the aggregation box, so a TWD
	// probe's reply rides the same link it probed.
	AggAddrLink0 = netip.MustParseAddr("2001:db8:a::10")
	AggAddrLink1 = netip.MustParseAddr("2001:db8:a::11")
)

// LinkSpec shapes one access link direction-symmetrically.
type LinkSpec struct {
	RateBps      int64
	OneWayDelay  int64
	OneWayJitter int64
	QueueLimit   int
}

// Params configures the testbed.
type Params struct {
	// Link0 and Link1 are the two access links. The paper's TCP
	// experiment: 50 Mbps / RTT 30±5 ms and 30 Mbps / RTT 5±2 ms.
	Link0, Link1 LinkSpec
	// AccessRate shapes the S1—A and M—S2 stub links (default 1 Gbps).
	AccessRate int64
	// CPECost is the CPE's CPU model (default CPECostModel — the
	// Turris Omnia).
	CPECost *netsim.CostModel
	// WRRJIT runs the scheduler with the JIT. The paper's CPE cannot
	// (ARM32 JIT bug), so the default is interpreted.
	WRRJIT bool
	// Weights are the WRR weights for link 0 and 1 (default 5:3,
	// matching 50:30 Mbps).
	Weights [2]uint32
}

func (p *Params) setDefaults() {
	if p.AccessRate == 0 {
		p.AccessRate = 1_000_000_000
	}
	if p.Weights == [2]uint32{} {
		p.Weights = [2]uint32{5, 3}
	}
}

// Testbed is the instantiated topology.
type Testbed struct {
	Sim              *netsim.Sim
	S1, Agg, CPE, S2 *netsim.Node

	// Interfaces, indexed by link (0/1): the aggregation box side and
	// the CPE side of each access link.
	AggLink [2]*netsim.Iface
	CPELink [2]*netsim.Iface

	params Params

	// Maps of the two schedulers (down = on Agg, up = on CPE).
	DownConf, DownState *maps.Map
	UpConf, UpState     *maps.Map
}

// NewTestbed builds the topology with static routing and native
// (End.DT6) decapsulation SIDs at both ends, but no WRR yet.
func NewTestbed(sim *netsim.Sim, params Params) (*Testbed, error) {
	params.setDefaults()
	tb := &Testbed{Sim: sim, params: params}

	tb.S1 = sim.AddNode("S1", netsim.HostCostModel())
	tb.Agg = sim.AddNode("A", netsim.ServerCostModel())
	cpeCost := netsim.CPECostModel()
	if params.CPECost != nil {
		cpeCost = *params.CPECost
	}
	tb.CPE = sim.AddNode("M", cpeCost)
	tb.S2 = sim.AddNode("S2", netsim.HostCostModel())

	tb.S1.AddAddress(S1Addr)
	tb.Agg.AddAddress(AggAddr)
	tb.Agg.AddAddress(AggAddrLink0)
	tb.Agg.AddAddress(AggAddrLink1)
	tb.CPE.AddAddress(CPEAddr)
	tb.S2.AddAddress(S2Addr)

	stub := netem.Config{RateBps: params.AccessRate, DelayNs: 20 * netsim.Microsecond}
	s1If, aggS1If := netsim.ConnectSymmetric(tb.S1, tb.Agg, stub)
	cpeS2If, s2If := netsim.ConnectSymmetric(tb.CPE, tb.S2, stub)

	mk := func(l LinkSpec) netem.Config {
		return netem.Config{
			RateBps:    l.RateBps,
			DelayNs:    l.OneWayDelay,
			JitterNs:   l.OneWayJitter,
			QueueLimit: l.QueueLimit,
		}
	}
	tb.AggLink[0], tb.CPELink[0] = netsim.ConnectSymmetric(tb.Agg, tb.CPE, mk(params.Link0))
	tb.AggLink[1], tb.CPELink[1] = netsim.ConnectSymmetric(tb.Agg, tb.CPE, mk(params.Link1))

	// Hosts default towards their gateways.
	tb.S1.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: s1If}}})
	tb.S2.AddRoute(&netsim.Route{Prefix: pfx("::/0"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: s2If}}})

	// Aggregation box routing.
	tb.Agg.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:1::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: aggS1If}}})
	tb.Agg.AddRoute(&netsim.Route{Prefix: sidPfx(SIDCPELink0), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tb.AggLink[0]}}})
	tb.Agg.AddRoute(&netsim.Route{Prefix: sidPfx(SIDCPELink1), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tb.AggLink[1]}}})
	tb.Agg.AddRoute(&netsim.Route{Prefix: sidPfx(SIDDMLink0), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tb.AggLink[0]}}})
	tb.Agg.AddRoute(&netsim.Route{Prefix: sidPfx(SIDDMLink1), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tb.AggLink[1]}}})
	// Without WRR, downstream takes link 0 only.
	tb.Agg.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:2::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tb.AggLink[0]}}})
	tb.Agg.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:c::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tb.AggLink[0]}}})

	// CPE routing.
	tb.CPE.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:2::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: cpeS2If}}})
	tb.CPE.AddRoute(&netsim.Route{Prefix: sidPfx(SIDAggLink0), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tb.CPELink[0]}}})
	tb.CPE.AddRoute(&netsim.Route{Prefix: sidPfx(SIDAggLink1), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tb.CPELink[1]}}})
	tb.CPE.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:1::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tb.CPELink[0]}}})
	tb.CPE.AddRoute(&netsim.Route{Prefix: pfx("2001:db8:a::/48"), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tb.CPELink[0]}}})
	// TWD probe replies are pinned to the probed link.
	tb.CPE.AddRoute(&netsim.Route{Prefix: sidPfx(AggAddrLink0), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tb.CPELink[0]}}})
	tb.CPE.AddRoute(&netsim.Route{Prefix: sidPfx(AggAddrLink1), Kind: netsim.RouteForward, Nexthops: []netsim.Nexthop{{Iface: tb.CPELink[1]}}})

	// Native decapsulation SIDs (the kernel's static End.DT6): CPE for
	// downstream, aggregation box for upstream.
	for _, sid := range []netip.Addr{SIDCPELink0, SIDCPELink1} {
		tb.CPE.AddRoute(&netsim.Route{
			Prefix:    netip.PrefixFrom(sid, 128),
			Kind:      netsim.RouteSeg6Local,
			Behaviour: &seg6.Behaviour{Action: seg6.ActionEndDT6, Table: netsim.MainTable},
		})
	}
	for _, sid := range []netip.Addr{SIDAggLink0, SIDAggLink1} {
		tb.Agg.AddRoute(&netsim.Route{
			Prefix:    netip.PrefixFrom(sid, 128),
			Kind:      netsim.RouteSeg6Local,
			Behaviour: &seg6.Behaviour{Action: seg6.ActionEndDT6, Table: netsim.MainTable},
		})
	}
	return tb, nil
}

func pfx(s string) netip.Prefix { return netip.MustParsePrefix(s) }

func sidPfx(a netip.Addr) netip.Prefix { return netip.PrefixFrom(a, 128) }

// wrrMaps creates a conf/state map pair initialised with the weights
// and decap SIDs.
func wrrMaps(weights [2]uint32, sid0, sid1 netip.Addr) (conf, state *maps.Map, err error) {
	conf, err = maps.New(maps.Spec{
		Name: progs.WRRConfMap, Type: maps.Array,
		KeySize: 4, ValueSize: progs.WRRConfSize, MaxEntries: 1,
	})
	if err != nil {
		return nil, nil, err
	}
	v := make([]byte, progs.WRRConfSize)
	binary.LittleEndian.PutUint32(v[0:], weights[0])
	binary.LittleEndian.PutUint32(v[4:], weights[1])
	a0, a1 := sid0.As16(), sid1.As16()
	copy(v[8:24], a0[:])
	copy(v[24:40], a1[:])
	if err := conf.Update(bpf.PutUint32(0), v, maps.UpdateAny); err != nil {
		return nil, nil, err
	}
	state, err = maps.New(maps.Spec{
		Name: progs.WRRStateMap, Type: maps.Array,
		KeySize: 4, ValueSize: progs.WRRStateSize, MaxEntries: 1,
	})
	if err != nil {
		return nil, nil, err
	}
	return conf, state, nil
}

// attachWRR loads the scheduler and installs it as an LWT route for
// prefix on node.
func attachWRR(node *netsim.Node, prefix netip.Prefix, conf, state *maps.Map, jit bool) error {
	avail := map[string]*maps.Map{progs.WRRConfMap: conf, progs.WRRStateMap: state}
	prog, err := bpf.LoadProgram(progs.WRRSpec(), core.LWTOutHook(), avail, bpf.LoadOptions{JIT: &jit})
	if err != nil {
		return fmt.Errorf("hybrid: loading WRR: %w", err)
	}
	lwt, err := core.AttachLWT(prog)
	if err != nil {
		return err
	}
	node.AddRoute(&netsim.Route{
		Prefix: prefix,
		Kind:   netsim.RouteLWTBPF,
		BPF:    lwt,
		// No nexthops: the encapsulated packet is re-routed towards
		// the SID the scheduler chose.
	})
	return nil
}

// EnableWRRDownstream installs the scheduler on the aggregation box
// for traffic towards the client LAN.
func (tb *Testbed) EnableWRRDownstream() error {
	conf, state, err := wrrMaps(tb.params.Weights, SIDCPELink0, SIDCPELink1)
	if err != nil {
		return err
	}
	tb.DownConf, tb.DownState = conf, state
	return attachWRR(tb.Agg, pfx("2001:db8:2::/48"), conf, state, tb.params.WRRJIT)
}

// EnableWRRUpstream installs the scheduler on the CPE for traffic
// towards the ISP side.
func (tb *Testbed) EnableWRRUpstream() error {
	conf, state, err := wrrMaps(tb.params.Weights, SIDAggLink0, SIDAggLink1)
	if err != nil {
		return err
	}
	tb.UpConf, tb.UpState = conf, state
	return attachWRR(tb.CPE, pfx("2001:db8:1::/48"), conf, state, tb.params.WRRJIT)
}

// EnableStaticEncapDownstream is the "kernel decap" configuration of
// Figure 4: the aggregation box applies a fixed (non-BPF) T.Encaps
// over link 0 and the CPE decapsulates — measuring pure decap cost.
func (tb *Testbed) EnableStaticEncapDownstream() {
	tb.Agg.AddRoute(&netsim.Route{
		Prefix:   pfx("2001:db8:2::/48"),
		Kind:     netsim.RouteSeg6Encap,
		SRH:      packet.NewSRH([]netip.Addr{SIDCPELink0}),
		Nexthops: []netsim.Nexthop{{Iface: tb.AggLink[0]}},
	})
}
