package frr

import (
	"bytes"
	"strings"
	"testing"

	"srv6bpf/internal/netsim"
	"srv6bpf/internal/obs"
)

// TestPublishObs: after a run with a link cut, the registry snapshot
// carries the detector's probe count, the down→up transition tally
// and the live neighbours-down gauge, and the tracker attachment
// reports bpftool-style run statistics.
func TestPublishObs(t *testing.T) {
	interval := netsim.Millisecond
	tb := newTestbed(t, interval, 3)
	reg := obs.New()
	tb.frr.PublishObs(reg)

	tb.frr.Start()
	tb.sim.RunUntil(5 * interval)
	tb.pdIf.Fail()
	tb.sim.RunUntil(20 * interval)
	tb.frr.Stop()
	tb.sim.Run()

	snap := reg.Publish(tb.sim.Now())
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`srv6sim_frr_probes_sent_total{node="P"}`,
		`srv6sim_frr_transitions_total{node="P"} 1`,
		`srv6sim_frr_neighbors_down{node="P"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("snapshot missing %q:\n%s", want, text)
		}
	}

	st := tb.frr.TrackerStats()
	if st.RunCnt == 0 {
		t.Error("tracker ProgStats reports zero runs after probing")
	}
	if st.InsnExecuted == 0 {
		t.Error("tracker ProgStats reports zero retired instructions")
	}
}
