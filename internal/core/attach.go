package core

import (
	"errors"
	"fmt"

	"srv6bpf/internal/bpf"
	"srv6bpf/internal/bpf/vm"
	"srv6bpf/internal/netsim"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
)

// Attachment errors.
var (
	ErrWrongHook      = errors.New("core: program was loaded for a different hook")
	ErrNoSRH          = errors.New("core: End.BPF requires an SRv6 packet with segments left")
	ErrBadReturn      = errors.New("core: program returned an unknown code")
	ErrNoPendingState = errors.New("core: BPF_REDIRECT without a prior bpf_lwt_seg6_action")
	ErrSRHIntegrity   = errors.New("core: SRH failed revalidation after program writes")
)

// DefaultMaxFaults is the number of program faults an attachment
// tolerates before it is quarantined (see progFaults).
const DefaultMaxFaults = 3

// progFaults is an attachment's fault-quarantine state: a program
// that faults (VM error, not a clean BPF_DROP) maxFaults times on one
// attachment is quarantined — further packets are dropped and counted
// without running it, like the kernel detaching a misbehaving program
// rather than paying its fault path per packet. The state registers
// with the node's checkpoint machinery on first run, so speculative
// faults under the optimistic engine roll back with everything else.
type progFaults struct {
	faults      int
	maxFaults   int // 0 means DefaultMaxFaults
	quarantined bool
}

func (p *progFaults) limit() int {
	if p.maxFaults > 0 {
		return p.maxFaults
	}
	return DefaultMaxFaults
}

// recordFault counts one fault; it reports true when this fault
// crossed the quarantine threshold.
func (p *progFaults) recordFault() bool {
	p.faults++
	if !p.quarantined && p.faults >= p.limit() {
		p.quarantined = true
		return true
	}
	return false
}

// faultSnap is the checkpointed form of progFaults.
type faultSnap struct {
	faults      int
	quarantined bool
}

// SnapshotState implements netsim.ShardState.
func (p *progFaults) SnapshotState() any {
	return faultSnap{faults: p.faults, quarantined: p.quarantined}
}

// RestoreState implements netsim.ShardState.
func (p *progFaults) RestoreState(v any) {
	s := v.(faultSnap)
	p.faults, p.quarantined = s.faults, s.quarantined
}

// EndBPF is a loaded End.BPF attachment: bind it to a SID with a
// RouteSeg6Local whose Behaviour is seg6.ActionEndBPF and BPF set to
// this value. Instances are single-threaded, like one softirq context
// per simulated node — which is what lets the attachment own a single
// execEnv and ctx buffer reused for every packet instead of
// allocating per invocation.
type EndBPF struct {
	inst   *bpf.Instance
	name   string
	ctx    [CtxSize]byte
	env    execEnv
	faults progFaults
	stats  progCounters
	// lastNode/lastSeq memoise the per-packet state registration
	// within one burst-cache epoch (see bindState).
	lastNode *netsim.Node
	lastSeq  uint64
}

// AttachEndBPF instantiates prog (loaded against Seg6LocalHook) as a
// seg6local End.BPF action.
func AttachEndBPF(prog *bpf.Program) (*EndBPF, error) {
	if prog.Hook().Name != "lwt_seg6local" {
		return nil, fmt.Errorf("%w: %q is for hook %q", ErrWrongHook, prog.Name(), prog.Hook().Name)
	}
	inst, err := prog.NewInstance()
	if err != nil {
		return nil, err
	}
	e := &EndBPF{inst: inst, name: prog.Name()}
	e.env.printkPrefix = e.name
	// Bound once: helpers that replace the packet re-enter through
	// this, so the per-packet path never builds a closure.
	e.env.refreshRegions = func(env *execEnv) {
		installPacket(e.inst, e.ctx[:], env.pkt)
	}
	inst.BindCtx(e.ctx[:])
	return e, nil
}

// Behaviour builds the seg6local behaviour entry for this attachment.
func (e *EndBPF) Behaviour() *seg6.Behaviour {
	return &seg6.Behaviour{Action: seg6.ActionEndBPF, BPF: e}
}

// SetMaxFaults overrides the quarantine threshold (0 restores the
// default). Call it at setup time.
func (e *EndBPF) SetMaxFaults(n int) { e.faults.maxFaults = n }

// Quarantined reports whether the attachment has been quarantined.
func (e *EndBPF) Quarantined() bool { return e.faults.quarantined }

// Faults reports the attachment's fault count.
func (e *EndBPF) Faults() int { return e.faults.faults }

// FaultState exposes the quarantine state as the netsim.ShardState the
// datapath registers with the node; tests and tooling checkpoint it
// explicitly through this.
func (e *EndBPF) FaultState() netsim.ShardState { return &e.faults }

// installPacket rebinds the packet region in place and fixes the ctx
// len and data_end after helpers replaced the packet. No allocation:
// the instance's packet segment is reused.
func installPacket(inst *bpf.Instance, ctx []byte, pkt []byte) {
	inst.BindPacket(pkt)
	fillCtxLen(ctx, len(pkt))
}

func fillCtxLen(ctx []byte, pktLen int) {
	ctx[CtxOffLen] = byte(pktLen)
	ctx[CtxOffLen+1] = byte(pktLen >> 8)
	ctx[CtxOffLen+2] = byte(pktLen >> 16)
	ctx[CtxOffLen+3] = byte(pktLen >> 24)
	end := vm.Pointer(vm.RegionPacket, uint64(pktLen))
	for i := 0; i < 8; i++ {
		ctx[CtxOffDataEnd+i] = byte(end >> (8 * i))
	}
}

// RunSeg6Local implements netsim.Seg6LocalProgram: the End.BPF
// datapath of §3. The steady-state path performs zero heap
// allocations: one offset-only header walk, an in-place SRH advance,
// and a reused execution environment.
func (e *EndBPF) RunSeg6Local(n *netsim.Node, raw []byte, meta *netsim.PacketMeta) (seg6.Result, int64, error) {
	// Fault-quarantine and run-statistics state checkpoint with the
	// node (idempotent after the first packet; a rollback past the
	// registration unhooks and re-registers them on re-execution).
	// Within one burst-cache epoch the registration scan is skipped:
	// epochs advance on every crash and rollback restore, so a
	// matching (node, epoch) pair proves the hooks are still in place.
	if seq, ok := n.BurstCache(); !ok || e.lastNode != n || e.lastSeq != seq {
		n.RegisterState(&e.faults)
		n.RegisterState(&e.stats)
		e.lastNode, e.lastSeq = n, seq
	}
	if e.faults.quarantined {
		n.Count("drop_prog_quarantined")
		return seg6.Result{Verdict: seg6.VerdictDrop}, 0, nil
	}
	// End.BPF behaves as an endpoint: it only accepts SRv6 packets
	// with a current segment, and advances the SRH before the program
	// runs (§3). The header walk is served from the node's burst flow
	// cache when the bytes were already proven this epoch.
	info, err := n.ParseInfoCached(raw)
	if err != nil {
		return seg6.Result{Verdict: seg6.VerdictDrop}, 0, err
	}
	if !info.HasSRH() || info.SegmentsLeft == 0 {
		return seg6.Result{Verdict: seg6.VerdictDrop}, 0, ErrNoSRH
	}
	if err := seg6.AdvanceAt(raw, info.SRHOff); err != nil {
		return seg6.Result{Verdict: seg6.VerdictDrop}, 0, err
	}

	env := &e.env
	env.beginRun(n, meta, raw, info.SRHOff)

	machine := e.inst.Machine()
	machine.HelperContext = env
	machine.HelperCounts = &e.stats.helperCnt
	fillCtx(e.ctx[:], len(raw), info.FlowLabel)
	installPacket(e.inst, e.ctx[:], raw)

	startInsns, startHelpers := machine.Executed, machine.HelperCalls
	ret, runErr := e.inst.Run(vm.Pointer(vm.RegionCtx, 0))
	dInsns, dHelpers := machine.Executed-startInsns, machine.HelperCalls-startHelpers
	cost := n.Cost.BPFCost(dInsns, dHelpers, e.inst.JIT())

	if runErr != nil {
		// A faulting program drops the packet, like a kernel-side
		// bpf program error path; repeat offenders are quarantined.
		e.stats.record(dInsns, dHelpers, verdictError)
		if e.faults.recordFault() {
			n.Count("prog_quarantined")
		}
		return seg6.Result{Verdict: seg6.VerdictDrop}, cost, runErr
	}

	// §3.1: if the SRH was altered, a quick verification ensures it
	// is still valid; otherwise the packet is dropped.
	if env.srhModified {
		if err := e.validateSRH(env); err != nil {
			e.stats.record(dInsns, dHelpers, verdictError)
			return seg6.Result{Verdict: seg6.VerdictDrop}, cost, err
		}
	}

	switch ret {
	case BPFOK:
		e.stats.record(dInsns, dHelpers, verdictOK)
		return seg6.Result{Verdict: seg6.VerdictForward, Pkt: env.pkt}, cost, nil
	case BPFDrop:
		e.stats.record(dInsns, dHelpers, verdictDrop)
		return seg6.Result{Verdict: seg6.VerdictDrop}, cost, nil
	case BPFRedirect:
		if env.pending == nil {
			e.stats.record(dInsns, dHelpers, verdictError)
			return seg6.Result{Verdict: seg6.VerdictDrop}, cost, ErrNoPendingState
		}
		e.stats.record(dInsns, dHelpers, verdictRedirect)
		res := *env.pending
		res.Pkt = env.pkt
		return res, cost, nil
	default:
		e.stats.record(dInsns, dHelpers, verdictError)
		return seg6.Result{Verdict: seg6.VerdictDrop}, cost, fmt.Errorf("%w: %d", ErrBadReturn, ret)
	}
}

func (e *EndBPF) validateSRH(env *execEnv) error {
	start, end, err := env.srhBounds()
	if err != nil {
		return fmt.Errorf("%w: %v", ErrSRHIntegrity, err)
	}
	if err := packet.ValidateSRHBytes(env.pkt[start:end]); err != nil {
		return fmt.Errorf("%w: %v", ErrSRHIntegrity, err)
	}
	return nil
}

// LWT is a loaded transit attachment (BPF LWT out hook): bind it to a
// route with Kind RouteLWTBPF.
type LWT struct {
	inst   *bpf.Instance
	name   string
	ctx    [CtxSize]byte
	env    execEnv
	faults progFaults
	stats  progCounters
	// lastNode/lastSeq memoise the per-packet state registration
	// within one burst-cache epoch (see EndBPF.RunSeg6Local).
	lastNode *netsim.Node
	lastSeq  uint64
}

// AttachLWT instantiates prog (loaded against LWTOutHook) as a
// transit program.
func AttachLWT(prog *bpf.Program) (*LWT, error) {
	if prog.Hook().Name != "lwt_out" {
		return nil, fmt.Errorf("%w: %q is for hook %q", ErrWrongHook, prog.Name(), prog.Hook().Name)
	}
	inst, err := prog.NewInstance()
	if err != nil {
		return nil, err
	}
	l := &LWT{inst: inst, name: prog.Name()}
	l.env.printkPrefix = l.name
	l.env.refreshRegions = func(env *execEnv) {
		installPacket(l.inst, l.ctx[:], env.pkt)
	}
	inst.BindCtx(l.ctx[:])
	return l, nil
}

// SetMaxFaults overrides the quarantine threshold (0 restores the
// default). Call it at setup time.
func (l *LWT) SetMaxFaults(n int) { l.faults.maxFaults = n }

// Quarantined reports whether the attachment has been quarantined.
func (l *LWT) Quarantined() bool { return l.faults.quarantined }

// Faults reports the attachment's fault count.
func (l *LWT) Faults() int { return l.faults.faults }

// FaultState exposes the quarantine state as the netsim.ShardState the
// datapath registers with the node.
func (l *LWT) FaultState() netsim.ShardState { return &l.faults }

// RunLWTOut implements netsim.LWTProgram. Like RunSeg6Local, a single
// offset-only walk feeds both the SRH bookkeeping and the flow hash,
// and the execution environment is reused across packets.
func (l *LWT) RunLWTOut(n *netsim.Node, raw []byte, meta *netsim.PacketMeta) ([]byte, netsim.LWTVerdict, int64, error) {
	if seq, ok := n.BurstCache(); !ok || l.lastNode != n || l.lastSeq != seq {
		n.RegisterState(&l.faults)
		n.RegisterState(&l.stats)
		l.lastNode, l.lastSeq = n, seq
	}
	if l.faults.quarantined {
		n.Count("drop_prog_quarantined")
		return nil, netsim.LWTDrop, 0, nil
	}
	env := &l.env
	srhOff := -1
	var flowHash uint32
	if info, err := n.ParseInfoCached(raw); err == nil {
		flowHash = info.FlowLabel
		if info.HasSRH() {
			srhOff = info.SRHOff
		}
	} else if len(raw) >= packet.IPv6HeaderLen && raw[0]>>4 == 6 {
		// A malformed extension chain does not hide the flow label:
		// any packet with a valid fixed header keeps its ctx hash, as
		// when the two were derived by separate walks.
		flowHash = uint32(raw[1]&0x0f)<<16 | uint32(raw[2])<<8 | uint32(raw[3])
	}
	env.beginRun(n, meta, raw, srhOff)

	machine := l.inst.Machine()
	machine.HelperContext = env
	machine.HelperCounts = &l.stats.helperCnt
	fillCtx(l.ctx[:], len(raw), flowHash)
	installPacket(l.inst, l.ctx[:], raw)

	startInsns, startHelpers := machine.Executed, machine.HelperCalls
	ret, runErr := l.inst.Run(vm.Pointer(vm.RegionCtx, 0))
	dInsns, dHelpers := machine.Executed-startInsns, machine.HelperCalls-startHelpers
	cost := n.Cost.BPFCost(dInsns, dHelpers, l.inst.JIT())

	if runErr != nil {
		l.stats.record(dInsns, dHelpers, verdictError)
		if l.faults.recordFault() {
			n.Count("prog_quarantined")
		}
		return nil, netsim.LWTDrop, cost, runErr
	}
	switch ret {
	case BPFOK:
		l.stats.record(dInsns, dHelpers, verdictOK)
		return env.pkt, netsim.LWTOK, cost, nil
	case BPFDrop:
		l.stats.record(dInsns, dHelpers, verdictDrop)
		return nil, netsim.LWTDrop, cost, nil
	default:
		l.stats.record(dInsns, dHelpers, verdictError)
		return nil, netsim.LWTDrop, cost, fmt.Errorf("%w: %d", ErrBadReturn, ret)
	}
}
