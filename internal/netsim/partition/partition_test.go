package partition_test

import (
	"testing"

	"srv6bpf/internal/netsim"
	"srv6bpf/internal/netsim/partition"
	"srv6bpf/internal/netsim/topo"
)

// waxman builds the test topology: a seeded Waxman graph, the
// adversarial case for the contiguous block partition (creation order
// carries no locality).
func waxman(t *testing.T, n int) *netsim.Sim {
	t.Helper()
	sim := netsim.New(1)
	_, err := topo.Waxman(sim, n, topo.WaxmanParams{Alpha: 0.25, Beta: 0.15, Seed: 20},
		topo.Opts{Link: topo.LinkSpec{RateBps: 10_000_000_000, DelayNs: 25 * netsim.Microsecond}})
	if err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestContiguousBlocks(t *testing.T) {
	a := partition.Contiguous(10, 4)
	if len(a) != 10 {
		t.Fatalf("len = %d", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("not monotonic: %v", a)
		}
	}
	if a[0] != 0 || a[9] != 3 {
		t.Fatalf("range not covered: %v", a)
	}
}

// TestMinCutDeterministic rebuilds the graph from scratch twice: the
// same topology, shard count and seed must yield the identical
// assignment (the property the engines' bit-identical replay — and
// cross-report Messages comparisons — stand on).
func TestMinCutDeterministic(t *testing.T) {
	run := func() partition.Assignment {
		g := partition.FromSim(waxman(t, 128))
		a, err := partition.MinCut(g, 4, 7)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("assignments diverge at node %d: %d vs %d", i, a[i], b[i])
		}
	}
	// A different seed may shard differently but must stay valid; the
	// balance/validity invariants are checked by TestMinCutValid.
	if _, err := partition.MinCut(partition.FromSim(waxman(t, 128)), 4, 99); err != nil {
		t.Fatal(err)
	}
}

// TestMinCutValid checks, across shard counts, that every node lands
// in exactly one in-range shard, no shard is empty, and shard sizes
// stay within the 1.2 max/min balance bound.
func TestMinCutValid(t *testing.T) {
	sim := waxman(t, 256)
	g := partition.FromSim(sim)
	for _, k := range []int{2, 3, 4, 8} {
		a, err := partition.MinCut(g, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != g.Len() {
			t.Fatalf("k=%d: %d assignments for %d nodes", k, len(a), g.Len())
		}
		sizes := make([]int, k)
		for i, s := range a {
			if s < 0 || s >= k {
				t.Fatalf("k=%d: node %d assigned to shard %d", k, i, s)
			}
			sizes[s]++
		}
		minSz, maxSz := sizes[0], sizes[0]
		for _, sz := range sizes {
			if sz == 0 {
				t.Fatalf("k=%d: empty shard (sizes %v)", k, sizes)
			}
			if sz < minSz {
				minSz = sz
			}
			if sz > maxSz {
				maxSz = sz
			}
		}
		if float64(maxSz) > 1.2*float64(minSz) {
			t.Errorf("k=%d: imbalance %d/%d > 1.2 (sizes %v)", k, maxSz, minSz, sizes)
		}
		t.Logf("k=%d sizes=%v cut=%d (contiguous %d)",
			k, sizes, partition.CutLinks(g, a), partition.CutLinks(g, partition.Contiguous(g.Len(), k)))
	}
}

// TestMinCutBeatsContiguous is the point of the package: on the seeded
// Waxman graph the topology-aware cut must be strictly smaller than
// the creation-order block cut at every tested shard count.
func TestMinCutBeatsContiguous(t *testing.T) {
	g := partition.FromSim(waxman(t, 256))
	for _, k := range []int{2, 4, 8} {
		a, err := partition.MinCut(g, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		mc, cont := partition.CutLinks(g, a), partition.CutLinks(g, partition.Contiguous(g.Len(), k))
		t.Logf("k=%d: mincut=%d contiguous=%d", k, mc, cont)
		if mc >= cont {
			t.Errorf("k=%d: min-cut %d >= contiguous %d", k, mc, cont)
		}
	}
}

func TestMinCutEdgeCases(t *testing.T) {
	g := partition.FromSim(waxman(t, 16))
	if _, err := partition.MinCut(g, 0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := partition.MinCut(g, 17, 1); err == nil {
		t.Error("k > n accepted")
	}
	one, err := partition.MinCut(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range one {
		if s != 0 {
			t.Fatalf("k=1: node %d in shard %d", i, s)
		}
	}
	ident, err := partition.MinCut(g, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ident {
		if s != i {
			t.Fatalf("k=n: node %d in shard %d", i, s)
		}
	}
}

// TestSetShardsPartitioned applies a min-cut assignment through the
// Sim API and checks the engine reports the same static cut the
// partitioner computed; then exercises the validation paths.
func TestSetShardsPartitioned(t *testing.T) {
	sim := waxman(t, 64)
	g := partition.FromSim(sim)
	a, err := partition.MinCut(g, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.SetShardsPartitioned(4, a); err != nil {
		t.Fatal(err)
	}
	if got, want := sim.EngineStats().CutLinks, partition.CutLinks(g, a); got != want {
		t.Errorf("engine cut %d != partitioner cut %d", got, want)
	}
	if err := sim.SetShardsPartitioned(2, []int{0, 1}); err == nil {
		t.Error("wrong-length assignment accepted")
	}
	bad := make([]int, 64)
	bad[3] = 9
	if err := sim.SetShardsPartitioned(2, bad); err == nil {
		t.Error("out-of-range shard id accepted")
	}
	if err := sim.SetShardsPartitioned(2, make([]int, 64)); err == nil {
		t.Error("empty shard accepted")
	}
	// The sim must still be usable after rejected partitions.
	if err := sim.SetShards(1); err != nil {
		t.Fatal(err)
	}
}
