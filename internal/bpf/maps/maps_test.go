package maps

import (
	"encoding/binary"
	"errors"
	"testing"
)

func u32key(v uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return b
}

func u64val(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"array ok", Spec{Type: Array, KeySize: 4, ValueSize: 8, MaxEntries: 1}, true},
		{"array bad key", Spec{Type: Array, KeySize: 8, ValueSize: 8, MaxEntries: 1}, false},
		{"zero entries", Spec{Type: Array, KeySize: 4, ValueSize: 8}, false},
		{"hash ok", Spec{Type: Hash, KeySize: 16, ValueSize: 4, MaxEntries: 8}, true},
		{"hash no key", Spec{Type: Hash, ValueSize: 4, MaxEntries: 8}, false},
		{"lpm too small", Spec{Type: LPMTrie, KeySize: 4, ValueSize: 4, MaxEntries: 8}, false},
		{"lpm ok", Spec{Type: LPMTrie, KeySize: 20, ValueSize: 4, MaxEntries: 8}, true},
		{"perf ok", Spec{Type: PerfEventArray, MaxEntries: 2}, true},
		{"unknown", Spec{Type: Type(99), KeySize: 4, ValueSize: 4, MaxEntries: 1}, false},
		{"zero value", Spec{Type: Hash, KeySize: 4, MaxEntries: 8}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.spec)
			if (err == nil) != tc.ok {
				t.Fatalf("New(%+v) error = %v, want ok=%v", tc.spec, err, tc.ok)
			}
		})
	}
}

func TestArraySemantics(t *testing.T) {
	m := MustNew(Spec{Name: "arr", Type: Array, KeySize: 4, ValueSize: 8, MaxEntries: 4})

	// Elements pre-exist and read as zero.
	v, err := m.Lookup(u32key(3))
	if err != nil {
		t.Fatalf("Lookup fresh: %v", err)
	}
	if binary.LittleEndian.Uint64(v) != 0 {
		t.Error("fresh array element not zero")
	}

	if err := m.Update(u32key(2), u64val(99), UpdateAny); err != nil {
		t.Fatalf("Update: %v", err)
	}
	got, err := m.LookupUint64(u32key(2))
	if err != nil || got != 99 {
		t.Fatalf("LookupUint64 = %d, %v; want 99", got, err)
	}

	// Out-of-range key.
	if err := m.Update(u32key(4), u64val(1), UpdateAny); !errors.Is(err, ErrKeyNotExist) {
		t.Errorf("out-of-range update error = %v", err)
	}
	if _, err := m.Lookup(u32key(100)); !errors.Is(err, ErrKeyNotExist) {
		t.Errorf("out-of-range lookup error = %v", err)
	}

	// NOEXIST is invalid for arrays.
	if err := m.Update(u32key(0), u64val(1), UpdateNoExist); !errors.Is(err, ErrKeyExist) {
		t.Errorf("NOEXIST on array error = %v", err)
	}
	// Delete unsupported.
	if err := m.Delete(u32key(0)); !errors.Is(err, ErrNotSupported) {
		t.Errorf("array delete error = %v", err)
	}
	if m.Len() != 4 {
		t.Errorf("array Len = %d, want 4", m.Len())
	}
}

func TestHashSemantics(t *testing.T) {
	m := MustNew(Spec{Name: "h", Type: Hash, KeySize: 4, ValueSize: 8, MaxEntries: 2})

	if _, err := m.Lookup(u32key(1)); !errors.Is(err, ErrKeyNotExist) {
		t.Fatalf("lookup missing = %v", err)
	}
	if err := m.Update(u32key(1), u64val(10), UpdateExist); !errors.Is(err, ErrKeyNotExist) {
		t.Fatalf("EXIST on missing = %v", err)
	}
	if err := m.Update(u32key(1), u64val(10), UpdateNoExist); err != nil {
		t.Fatalf("NOEXIST insert: %v", err)
	}
	if err := m.Update(u32key(1), u64val(11), UpdateNoExist); !errors.Is(err, ErrKeyExist) {
		t.Fatalf("NOEXIST on present = %v", err)
	}
	if err := m.Update(u32key(2), u64val(20), UpdateAny); err != nil {
		t.Fatalf("second insert: %v", err)
	}
	if err := m.Update(u32key(3), u64val(30), UpdateAny); !errors.Is(err, ErrFull) {
		t.Fatalf("overflow = %v, want ErrFull", err)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	if err := m.Delete(u32key(1)); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := m.Delete(u32key(1)); !errors.Is(err, ErrKeyNotExist) {
		t.Fatalf("double delete = %v", err)
	}
	// Slot is reusable.
	if err := m.Update(u32key(9), u64val(90), UpdateAny); err != nil {
		t.Fatalf("insert after delete: %v", err)
	}
	got, _ := m.LookupUint64(u32key(9))
	if got != 90 {
		t.Fatalf("value after slot reuse = %d", got)
	}

	// Wrong key size.
	if err := m.Update([]byte{1}, u64val(1), UpdateAny); !errors.Is(err, ErrKeySize) {
		t.Errorf("short key = %v", err)
	}
	if err := m.Update(u32key(9), []byte{1}, UpdateAny); !errors.Is(err, ErrValueSize) {
		t.Errorf("short value = %v", err)
	}
	if err := m.Update(u32key(9), u64val(1), 7); !errors.Is(err, ErrBadFlags) {
		t.Errorf("bad flags = %v", err)
	}
}

func TestLRUEviction(t *testing.T) {
	m := MustNew(Spec{Name: "lru", Type: LRUHash, KeySize: 4, ValueSize: 8, MaxEntries: 3})
	for i := uint32(1); i <= 3; i++ {
		if err := m.Update(u32key(i), u64val(uint64(i)), UpdateAny); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// Touch 1 so 2 becomes LRU.
	if _, err := m.Lookup(u32key(1)); err != nil {
		t.Fatal(err)
	}
	// Insert 4: should evict 2.
	if err := m.Update(u32key(4), u64val(4), UpdateAny); err != nil {
		t.Fatalf("evicting insert: %v", err)
	}
	if _, err := m.Lookup(u32key(2)); !errors.Is(err, ErrKeyNotExist) {
		t.Errorf("key 2 should have been evicted, err = %v", err)
	}
	for _, k := range []uint32{1, 3, 4} {
		if _, err := m.Lookup(u32key(k)); err != nil {
			t.Errorf("key %d unexpectedly gone: %v", k, err)
		}
	}
	if m.Len() != 3 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestLRUUpdateTouches(t *testing.T) {
	m := MustNew(Spec{Name: "lru", Type: LRUHash, KeySize: 4, ValueSize: 8, MaxEntries: 2})
	m.Update(u32key(1), u64val(1), UpdateAny)
	m.Update(u32key(2), u64val(2), UpdateAny)
	// Rewrite 1; now 2 is LRU.
	m.Update(u32key(1), u64val(11), UpdateAny)
	m.Update(u32key(3), u64val(3), UpdateAny)
	if _, err := m.Lookup(u32key(2)); !errors.Is(err, ErrKeyNotExist) {
		t.Errorf("expected 2 evicted, err = %v", err)
	}
	if v, _ := m.LookupUint64(u32key(1)); v != 11 {
		t.Errorf("key 1 = %d", v)
	}
}

func TestLookupSlotStability(t *testing.T) {
	m := MustNew(Spec{Name: "h", Type: Hash, KeySize: 4, ValueSize: 8, MaxEntries: 4})
	m.Update(u32key(7), u64val(70), UpdateAny)
	off1, ok := m.LookupSlot(u32key(7))
	if !ok {
		t.Fatal("LookupSlot missed")
	}
	// Writing through the arena must be visible to Lookup.
	binary.LittleEndian.PutUint64(m.Arena()[off1:off1+8], 71)
	got, _ := m.LookupUint64(u32key(7))
	if got != 71 {
		t.Fatalf("arena write invisible, got %d", got)
	}
	// Slot must be stable across unrelated inserts.
	m.Update(u32key(8), u64val(80), UpdateAny)
	off2, _ := m.LookupSlot(u32key(7))
	if off1 != off2 {
		t.Fatalf("slot moved: %d -> %d", off1, off2)
	}
}

func TestIterate(t *testing.T) {
	m := MustNew(Spec{Name: "h", Type: Hash, KeySize: 4, ValueSize: 8, MaxEntries: 8})
	want := map[uint32]uint64{1: 10, 2: 20, 3: 30}
	for k, v := range want {
		m.Update(u32key(k), u64val(v), UpdateAny)
	}
	got := map[uint32]uint64{}
	m.Iterate(func(k, v []byte) bool {
		got[binary.LittleEndian.Uint32(k)] = binary.LittleEndian.Uint64(v)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("iterated %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("key %d = %d, want %d", k, got[k], v)
		}
	}
	// Early stop.
	n := 0
	m.Iterate(func(k, v []byte) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

func TestPerCPUArrayIsArrayLike(t *testing.T) {
	m := MustNew(Spec{Name: "pc", Type: PerCPUArray, KeySize: 4, ValueSize: 8, MaxEntries: 2})
	if err := m.Update(u32key(1), u64val(5), UpdateAny); err != nil {
		t.Fatal(err)
	}
	v, err := m.LookupUint64(u32key(1))
	if err != nil || v != 5 {
		t.Fatalf("percpu lookup = %d, %v", v, err)
	}
}
