// Package seg6 implements the SRv6 data-plane operations of the Linux
// kernel's seg6 and seg6local lightweight tunnels: advancing the SRH,
// IP-in-IPv6 encapsulation and decapsulation, inline SRH insertion,
// and the RFC 8986 endpoint behaviours (End, End.X, End.T, the
// End.DX2/DX4/DX6 and End.DT4/DT6/DT46 decap families, the binding
// SIDs End.B6 / End.B6.Encaps(.Red), and the SR-proxy pair
// End.AS / End.AM) that the paper's Figure 2 uses as baselines for
// the eBPF variants.
//
// Behaviours are dispatched through a registry (see registry.go): each
// action registers a Spec with an install-time validator and a
// per-packet apply function, and the PSP/USP/USD flavor modifiers are
// applied uniformly by the shared endpoint step.
//
// All operations work on raw packet bytes, exactly as the kernel does
// on skbs; the routing decision that follows a behaviour is expressed
// as a Verdict for the caller (the simulator's forwarding engine) to
// act on, keeping this package independent of FIB internals.
package seg6

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"

	"srv6bpf/internal/packet"
)

// Action enumerates seg6local behaviours. Values match the kernel's
// SEG6_LOCAL_ACTION_* UAPI numbering, which the bpf_lwt_seg6_action
// helper also uses.
type Action int

// seg6local actions.
const (
	ActionUnspec     Action = 0
	ActionEnd        Action = 1
	ActionEndX       Action = 2
	ActionEndT       Action = 3
	ActionEndDX2     Action = 4
	ActionEndDX6     Action = 5
	ActionEndDX4     Action = 6
	ActionEndDT6     Action = 7
	ActionEndDT4     Action = 8
	ActionEndB6      Action = 9
	ActionEndB6Encap Action = 10
	ActionEndAS      Action = 13
	ActionEndAM      Action = 14
	ActionEndBPF     Action = 15
	ActionEndDT46    Action = 16
)

// NumActions bounds the action space (the highest UAPI value plus
// one); per-action tables — the dispatch registry, the observability
// plane's behavior histograms — are sized by it.
const NumActions = int(ActionEndDT46) + 1

func (a Action) String() string {
	if sp := Lookup(a); sp != nil {
		return sp.Name
	}
	return fmt.Sprintf("seg6local(%d)", int(a))
}

// Flavor is a bitmask of the RFC 8986 §4.16 flavor modifiers a
// behaviour is configured with.
type Flavor uint8

// Flavors.
const (
	// FlavorPSP (Penultimate Segment Pop) removes the SRH when the
	// endpoint's advance lands on SegmentsLeft == 0.
	FlavorPSP Flavor = 1 << iota
	// FlavorUSP (Ultimate Segment Pop) removes the exhausted SRH of a
	// packet arriving with SegmentsLeft == 0 and continues processing.
	FlavorUSP
	// FlavorUSD (Ultimate Segment Decapsulation) decapsulates the
	// inner packet on arrival at the last segment; on the decap
	// behaviours it is the explicit opt-in to decap with
	// SegmentsLeft > 0.
	FlavorUSD
)

func (f Flavor) String() string {
	if f == 0 {
		return "none"
	}
	var parts []string
	if f&FlavorPSP != 0 {
		parts = append(parts, "PSP")
	}
	if f&FlavorUSP != 0 {
		parts = append(parts, "USP")
	}
	if f&FlavorUSD != 0 {
		parts = append(parts, "USD")
	}
	return strings.Join(parts, "+")
}

// Verdict tells the forwarding engine what to do after a behaviour.
type Verdict int

// Verdicts.
const (
	// VerdictForward re-runs the FIB lookup on the (possibly updated)
	// destination address in the main table.
	VerdictForward Verdict = iota
	// VerdictForwardNexthop forwards to Result.Nexthop directly.
	VerdictForwardNexthop
	// VerdictForwardTable looks the destination up in Result.Table.
	VerdictForwardTable
	// VerdictDrop discards the packet.
	VerdictDrop
	// VerdictForwardOIF transmits the packet on the behaviour's
	// configured outgoing interface (SR-proxy steering towards a VNF,
	// End.DX2 towards an L2 port).
	VerdictForwardOIF
	// VerdictDeliverL2 hands the decapsulated Ethernet frame to the
	// node's L2 handler (End.DX2 without an OIF).
	VerdictDeliverL2
)

func (v Verdict) String() string {
	switch v {
	case VerdictForward:
		return "forward"
	case VerdictForwardNexthop:
		return "forward-nexthop"
	case VerdictForwardTable:
		return "forward-table"
	case VerdictDrop:
		return "drop"
	case VerdictForwardOIF:
		return "forward-oif"
	case VerdictDeliverL2:
		return "deliver-l2"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// Behaviour is one configured seg6local entry: an action plus its
// parameters (kernel: "End.X requires an IPv6 nexthop, End.T a table",
// and so on). BPF carries the loaded program for End.BPF; it is typed
// any so this package does not depend on the hook layer.
type Behaviour struct {
	Action  Action
	Nexthop netip.Addr  // End.X, End.DX6, End.DX4
	Table   int         // End.T, End.DT4, End.DT6, End.DT46
	SRH     *packet.SRH // End.B6, End.B6.Encaps, End.AS (re-encap)
	BPF     any         // End.BPF: managed by internal/core
	// Src is the outer source address for behaviours that encapsulate
	// (End.B6.Encaps, End.AS re-encapsulation).
	Src netip.Addr
	// Flavors are the PSP/USP/USD modifiers; Register's Spec.Flavors
	// mask limits which ones each action accepts.
	Flavors Flavor
	// Reduced selects the reduced encapsulation of RFC 8986 §5.2 for
	// End.B6.Encaps (End.B6.Encaps.Red): the first policy segment
	// rides only in the outer destination address.
	Reduced bool
	// OIF is the outgoing interface for proxy/cross-connect
	// behaviours (End.AS, End.AM, End.DX2). It is typed any so this
	// package does not depend on the simulator; the forwarding engine
	// asserts its own interface type.
	OIF any
}

// Result of applying a behaviour.
type Result struct {
	Verdict Verdict
	// Pkt is the packet after the behaviour (it may be a new slice
	// after encap/decap/insert).
	Pkt     []byte
	Nexthop netip.Addr
	Table   int
}

// Errors.
var (
	ErrNoSRH           = errors.New("seg6: packet has no SRH")
	ErrZeroSegsLeft    = errors.New("seg6: segments_left is zero")
	ErrSegmentsLeft    = errors.New("seg6: segments_left > 0 at decap (RFC 8986 requires USD)")
	ErrNotEncapsulated = errors.New("seg6: no inner packet to decapsulate")
	ErrBadBehaviour    = errors.New("seg6: invalid behaviour parameters")
)

// drop returns a drop result (the kernel frees the skb and counts the
// error; we surface the cause to the caller's statistics).
func drop() Result { return Result{Verdict: VerdictDrop} }

// Advance implements the core endpoint step shared by End-style
// behaviours: decrement SegmentsLeft and rewrite the IPv6 destination
// to the new active segment, in place. It allocates nothing.
func Advance(raw []byte) error {
	info, err := packet.ParseInfo(raw)
	if err != nil {
		return err
	}
	if !info.HasSRH() {
		return ErrNoSRH
	}
	return AdvanceAt(raw, info.SRHOff)
}

// AdvanceAt is Advance for a caller that already knows the SRH byte
// offset (the End.BPF hot path, which walked the packet once). The
// SRH structure is revalidated against the packet bounds before any
// write; like Advance, it allocates nothing.
func AdvanceAt(raw []byte, srhOff int) error {
	if srhOff < packet.IPv6HeaderLen || srhOff+packet.SRHFixedLen > len(raw) {
		return packet.ErrTruncated
	}
	srh := raw[srhOff:]
	total := (int(srh[packet.SRHOffHdrExtLen]) + 1) * 8
	if total > len(srh) {
		return packet.ErrTruncated
	}
	sl := srh[packet.SRHOffSegmentsLeft]
	if sl == 0 {
		return ErrZeroSegsLeft
	}
	sl--
	segOff := packet.SRHOffSegments + 16*int(sl)
	if segOff+16 > total {
		return packet.ErrBadSRH
	}
	srh[packet.SRHOffSegmentsLeft] = sl
	copy(raw[24:40], srh[segOff:segOff+16]) // IPv6 destination = new active segment
	return nil
}

// DecapInner strips the outer IPv6 header and all its extension
// headers, returning the inner IPv6 packet ("SRv6 decapsulation is
// natively performed by the kernel", §4.2). It is the raw splice; the
// decap behaviours add the RFC 8986 SegmentsLeft gate on top.
func DecapInner(raw []byte) ([]byte, error) {
	p, err := packet.Parse(raw)
	if err != nil {
		return nil, err
	}
	if p.L4Proto != packet.ProtoIPv6 || p.InnerOff == 0 {
		return nil, ErrNotEncapsulated
	}
	inner := packet.Clone(raw[p.InnerOff:])
	if _, err := packet.DecodeIPv6(inner); err != nil {
		return nil, err
	}
	return inner, nil
}

// stripSRH removes the SRH at srhOff from raw, rewiring the next-
// header field of the preceding header — the pop step of the PSP and
// USP flavors.
func stripSRH(raw []byte, srhOff, srhLen int) ([]byte, error) {
	if srhOff < packet.IPv6HeaderLen || srhOff+srhLen > len(raw) {
		return nil, packet.ErrTruncated
	}
	// Find the next-header byte pointing at the SRH: the base header's
	// (offset 6) or, in a chain, the preceding routing header's.
	nhPos := 6
	off := packet.IPv6HeaderLen
	proto := raw[6]
	for off < srhOff {
		if proto != packet.ProtoRouting || off+packet.SRHFixedLen > len(raw) {
			return nil, packet.ErrBadSRH
		}
		nhPos = off + packet.SRHOffNextHeader
		proto = raw[nhPos]
		off += (int(raw[off+packet.SRHOffHdrExtLen]) + 1) * 8
	}
	if off != srhOff || proto != packet.ProtoRouting {
		return nil, packet.ErrBadSRH
	}
	next := raw[srhOff+packet.SRHOffNextHeader]
	out := make([]byte, 0, len(raw)-srhLen)
	out = append(out, raw[:srhOff]...)
	out = append(out, raw[srhOff+srhLen:]...)
	out[nhPos] = next
	if err := packet.SetIPv6PayloadLen(out, len(out)-packet.IPv6HeaderLen); err != nil {
		return nil, err
	}
	return out, nil
}

// InsertSRH splices an SRH between the IPv6 header and the rest of
// the packet (the seg6 "inline" transit behaviour and End.B6). The
// IPv6 destination is rewritten to the SRH's active segment and the
// payload length fixed up.
func InsertSRH(raw []byte, srh *packet.SRH) ([]byte, error) {
	if len(raw) < packet.IPv6HeaderLen {
		return nil, packet.ErrTruncated
	}
	h, err := packet.DecodeIPv6(raw)
	if err != nil {
		return nil, err
	}
	s := *srh
	s.NextHeader = h.NextHeader
	enc, err := s.Encode(nil)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(raw)+len(enc))
	out = append(out, raw[:packet.IPv6HeaderLen]...)
	out = append(out, enc...)
	out = append(out, raw[packet.IPv6HeaderLen:]...)
	out[6] = packet.ProtoRouting // outer next header
	if err := packet.SetIPv6PayloadLen(out, len(out)-packet.IPv6HeaderLen); err != nil {
		return nil, err
	}
	active, err := s.ActiveSegment()
	if err != nil {
		return nil, err
	}
	if err := packet.SetIPv6Dst(out, active); err != nil {
		return nil, err
	}
	return out, nil
}

// innerMeta reads the fields the encapsulators copy from the packet
// being wrapped: the hop limit (IPv4 TTL for an IPv4 inner) and the
// flow label (zero for IPv4).
func innerMeta(raw []byte) (hl uint8, fl uint32, err error) {
	switch packet.IPVersion(raw) {
	case 6:
		h, err := packet.DecodeIPv6(raw)
		if err != nil {
			return 0, 0, err
		}
		return h.HopLimit, h.FlowLabel, nil
	case 4:
		h, err := packet.DecodeIPv4(raw)
		if err != nil {
			return 0, 0, err
		}
		return h.TTL, 0, nil
	}
	return 0, 0, packet.ErrBadVersion
}

// Encap wraps raw (IPv6 or IPv4) in a new outer IPv6 header carrying
// srh (the seg6 "encap" transit behaviour, H.Encaps / T.Encaps). The
// outer destination is the SRH's active segment; the hop limit is
// copied from the inner packet as the kernel does — the forwarding
// engine decrements the inner hop limit before encapsulating a
// transit packet, mirroring ip6_forward running before the lwtunnel
// output.
func Encap(raw []byte, outerSrc netip.Addr, srh *packet.SRH) ([]byte, error) {
	hl, fl, err := innerMeta(raw)
	if err != nil {
		return nil, err
	}
	active, err := srh.ActiveSegment()
	if err != nil {
		return nil, err
	}
	return packet.BuildPacket(outerSrc, active,
		packet.WithSRH(srh),
		packet.WithInnerPacket(raw),
		packet.WithHopLimit(hl),
		packet.WithFlowLabel(fl),
	)
}

// EncapRed is Encap in the reduced form of RFC 8986 §5.2 (H.Encaps.Red
// / End.B6.Encaps.Red): the first segment travels only in the outer
// destination address and is omitted from the SRH, whose SegmentsLeft
// then points one past LastEntry. A single-segment policy degenerates
// to plain IP-in-IPv6 with no SRH at all.
func EncapRed(raw []byte, outerSrc netip.Addr, srh *packet.SRH) ([]byte, error) {
	hl, fl, err := innerMeta(raw)
	if err != nil {
		return nil, err
	}
	first, err := srh.ActiveSegment()
	if err != nil {
		return nil, err
	}
	if len(srh.Segments) <= 1 {
		return packet.BuildPacket(outerSrc, first,
			packet.WithInnerPacket(raw),
			packet.WithHopLimit(hl),
			packet.WithFlowLabel(fl),
		)
	}
	red := *srh
	// Wire order is reversed, so the first-travel segment is the last
	// list entry; dropping 16 bytes keeps the 8-byte TLV alignment.
	red.Segments = srh.Segments[:len(srh.Segments)-1]
	red.LastEntry = uint8(len(red.Segments) - 1)
	return packet.BuildPacket(outerSrc, first,
		packet.WithSRH(&red),
		packet.WithInnerPacket(raw),
		packet.WithHopLimit(hl),
		packet.WithFlowLabel(fl),
	)
}

// EncapL2 wraps an Ethernet frame in an outer IPv6 header carrying
// srh (the H.Encaps.L2 headend); the egress End.DX2 unwraps it.
func EncapL2(frame []byte, outerSrc netip.Addr, srh *packet.SRH) ([]byte, error) {
	if srh == nil {
		return nil, fmt.Errorf("%w: H.Encaps.L2 needs an SRH", ErrBadBehaviour)
	}
	if _, err := packet.DecodeEthernet(frame); err != nil {
		return nil, err
	}
	active, err := srh.ActiveSegment()
	if err != nil {
		return nil, err
	}
	return packet.BuildPacket(outerSrc, active,
		packet.WithSRH(srh),
		packet.WithInnerL2(frame),
	)
}

// ApplyStatic executes a non-BPF behaviour on raw through the dispatch
// registry, validating its parameters first. End.BPF must be handled
// by the hook layer (internal/core); passing it here returns an error.
func ApplyStatic(b *Behaviour, raw []byte) (Result, error) {
	sp := Lookup(b.Action)
	if sp == nil {
		return drop(), fmt.Errorf("%w: %v", ErrBadBehaviour, b.Action)
	}
	if sp.Prog {
		return drop(), fmt.Errorf("%w: %s is handled by the hook layer", ErrBadBehaviour, sp.Name)
	}
	if err := Validate(b); err != nil {
		return drop(), err
	}
	return sp.Apply(b, raw)
}
