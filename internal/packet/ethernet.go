package packet

// Minimal Ethernet framing for the L2 tunnel behaviors (End.DX2 /
// H.Encaps.L2): the simulator treats a frame as opaque bytes behind a
// 14-byte header, enough to carry L2 payloads through an SRv6 tunnel
// and hand them to a node's L2 handler at the egress.

import "fmt"

// EthernetHeaderLen is the untagged Ethernet header size.
const EthernetHeaderLen = 14

// Ethernet is the decoded Ethernet header.
type Ethernet struct {
	Dst, Src  [6]byte
	EtherType uint16
}

// DecodeEthernet parses the header of frame.
func DecodeEthernet(frame []byte) (Ethernet, error) {
	var e Ethernet
	if len(frame) < EthernetHeaderLen {
		return e, fmt.Errorf("%w: Ethernet header needs 14 bytes, have %d", ErrTruncated, len(frame))
	}
	copy(e.Dst[:], frame[0:6])
	copy(e.Src[:], frame[6:12])
	e.EtherType = uint16(frame[12])<<8 | uint16(frame[13])
	return e, nil
}

// BuildEthernet assembles a frame from its header and payload.
func BuildEthernet(dst, src [6]byte, etherType uint16, payload []byte) []byte {
	out := make([]byte, 0, EthernetHeaderLen+len(payload))
	out = append(out, dst[:]...)
	out = append(out, src[:]...)
	out = append(out, uint8(etherType>>8), uint8(etherType))
	return append(out, payload...)
}
