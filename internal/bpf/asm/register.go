// Package asm implements the eBPF instruction set used by this
// repository: instruction encoding and decoding in the 8-byte wire
// format of the Linux kernel, typed constructors for every opcode
// class, a label-resolving assembler, and a disassembler.
//
// The dialect matches the classic (pre-BTF) eBPF ISA that the paper's
// Linux 4.18 target supports: ALU/ALU64, JMP/JMP32, LDX/ST/STX with
// byte/half/word/double-word widths, 16-byte LD_IMM64 (including map
// pseudo-loads), byte-swap instructions, helper calls and EXIT.
package asm

import "fmt"

// Register is one of the eleven eBPF registers.
//
// The calling convention mirrors the kernel's: R0 holds return values,
// R1-R5 hold helper-call arguments and are clobbered by calls, R6-R9
// are callee-saved, and R10 is the read-only frame pointer to the top
// of the 512-byte stack.
type Register uint8

// The eBPF register file.
const (
	R0 Register = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10

	// RFP is an alias for the frame pointer.
	RFP = R10
)

// MaxRegister is the highest valid register number.
const MaxRegister = R10

func (r Register) String() string {
	if r > MaxRegister {
		return fmt.Sprintf("r?(%d)", uint8(r))
	}
	if r == R10 {
		return "rfp"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Valid reports whether r names an architectural register.
func (r Register) Valid() bool { return r <= MaxRegister }
