package srv6bpf_test

import (
	"net/netip"
	"testing"

	"srv6bpf"
)

// TestPublicAPIEndToEnd is the quickstart example as a test: a user
// of the public facade can author a program, load it, build a
// topology, attach the function to a segment and observe its effect —
// without touching any internal package.
func TestPublicAPIEndToEnd(t *testing.T) {
	src := netip.MustParseAddr("2001:db8:1::1")
	dst := netip.MustParseAddr("2001:db8:2::1")
	sid := netip.MustParseAddr("fc00:10::42")

	spec := &srv6bpf.ProgramSpec{
		Name: "stamp_tag",
		Instructions: srv6bpf.Instructions{
			srv6bpf.Mov64Reg(srv6bpf.R6, srv6bpf.R1),
			srv6bpf.StoreImm(srv6bpf.RFP, -2, 0xbe, srv6bpf.Byte),
			srv6bpf.StoreImm(srv6bpf.RFP, -1, 0xef, srv6bpf.Byte),
			srv6bpf.Mov64Reg(srv6bpf.R1, srv6bpf.R6),
			srv6bpf.Mov64Imm(srv6bpf.R2, 46),
			srv6bpf.Mov64Reg(srv6bpf.R3, srv6bpf.RFP),
			srv6bpf.ALU64Imm(srv6bpf.Add, srv6bpf.R3, -2),
			srv6bpf.Mov64Imm(srv6bpf.R4, 2),
			srv6bpf.CallHelper(srv6bpf.HelperLWTSeg6StoreByte),
			srv6bpf.JumpImm(srv6bpf.JNE, srv6bpf.R0, 0, "drop"),
			srv6bpf.Mov64Imm(srv6bpf.R0, srv6bpf.BPFOK),
			srv6bpf.Return(),
			srv6bpf.Mov64Imm(srv6bpf.R0, srv6bpf.BPFDrop).WithSymbol("drop"),
			srv6bpf.Return(),
		},
		License: "Dual MIT/GPL",
	}
	prog, err := srv6bpf.LoadProgram(spec, srv6bpf.Seg6LocalHook(), nil, srv6bpf.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	endBPF, err := srv6bpf.AttachEndBPF(prog)
	if err != nil {
		t.Fatal(err)
	}

	sim := srv6bpf.NewSim(1)
	snd := sim.AddNode("snd", srv6bpf.HostCostModel())
	rtr := sim.AddNode("rtr", srv6bpf.ServerCostModel())
	rcv := sim.AddNode("rcv", srv6bpf.HostCostModel())
	snd.AddAddress(src)
	rtr.AddAddress(netip.MustParseAddr("2001:db8:10::1"))
	rcv.AddAddress(dst)

	link := srv6bpf.LinkConfig{RateBps: 1e10, DelayNs: srv6bpf.Microsecond}
	sndIf, rtrIn := srv6bpf.ConnectSymmetric(snd, rtr, link)
	rtrOut, rcvIf := srv6bpf.ConnectSymmetric(rtr, rcv, link)
	snd.AddRoute(&srv6bpf.Route{Prefix: netip.MustParsePrefix("::/0"), Kind: srv6bpf.RouteForward, Nexthops: []srv6bpf.Nexthop{{Iface: sndIf}}})
	rcv.AddRoute(&srv6bpf.Route{Prefix: netip.MustParsePrefix("::/0"), Kind: srv6bpf.RouteForward, Nexthops: []srv6bpf.Nexthop{{Iface: rcvIf}}})
	rtr.AddRoute(&srv6bpf.Route{Prefix: netip.MustParsePrefix("2001:db8:1::/48"), Kind: srv6bpf.RouteForward, Nexthops: []srv6bpf.Nexthop{{Iface: rtrIn}}})
	rtr.AddRoute(&srv6bpf.Route{Prefix: netip.MustParsePrefix("2001:db8:2::/48"), Kind: srv6bpf.RouteForward, Nexthops: []srv6bpf.Nexthop{{Iface: rtrOut}}})
	rtr.AddRoute(&srv6bpf.Route{
		Prefix:    netip.PrefixFrom(sid, 128),
		Kind:      srv6bpf.RouteSeg6Local,
		Behaviour: endBPF.Behaviour(),
	})

	var gotTag uint16
	rcv.HandleUDP(7777, func(n *srv6bpf.Node, p *srv6bpf.ParsedPacket, meta *srv6bpf.PacketMeta) {
		if p.SRH != nil {
			gotTag = p.SRH.Tag
		}
	})

	srh := srv6bpf.NewSRH([]netip.Addr{sid, dst})
	raw, err := srv6bpf.BuildPacket(src, sid,
		srv6bpf.WithSRH(srh), srv6bpf.WithUDP(1000, 7777),
		srv6bpf.WithPayload([]byte("hello")))
	if err != nil {
		t.Fatal(err)
	}
	snd.Output(raw)
	sim.Run()

	if gotTag != 0xbeef {
		t.Fatalf("tag = %#x, want 0xbeef", gotTag)
	}
}

// TestFacadeLinkFailureAndBackup exercises the fast-reroute surface
// of the facade: a scheduled FailLink flips a protected route onto
// its weighted backup, and RestoreLink brings the primary back.
func TestFacadeLinkFailureAndBackup(t *testing.T) {
	src := netip.MustParseAddr("2001:db8:1::1")
	dst := netip.MustParseAddr("2001:db8:2::1")

	sim := srv6bpf.NewSim(3)
	snd := sim.AddNode("snd", srv6bpf.HostCostModel())
	rtr := sim.AddNode("rtr", srv6bpf.ServerCostModel())
	rcv := sim.AddNode("rcv", srv6bpf.HostCostModel())
	snd.AddAddress(src)
	rtr.AddAddress(netip.MustParseAddr("2001:db8:10::1"))
	rcv.AddAddress(dst)

	link := srv6bpf.LinkConfig{RateBps: 1e10}
	sndIf, rtrIn := srv6bpf.ConnectSymmetric(snd, rtr, link)
	primary, rcvP := srv6bpf.ConnectSymmetric(rtr, rcv, link)
	backup, _ := srv6bpf.ConnectSymmetric(rtr, rcv, link)
	_ = rtrIn
	snd.AddRoute(&srv6bpf.Route{Prefix: netip.MustParsePrefix("::/0"), Kind: srv6bpf.RouteForward, Nexthops: []srv6bpf.Nexthop{{Iface: sndIf}}})
	rcv.AddRoute(&srv6bpf.Route{Prefix: netip.MustParsePrefix("::/0"), Kind: srv6bpf.RouteForward, Nexthops: []srv6bpf.Nexthop{{Iface: rcvP}}})
	rtr.AddRoute(&srv6bpf.Route{
		Prefix:   netip.MustParsePrefix("2001:db8:2::/48"),
		Kind:     srv6bpf.RouteForward,
		Nexthops: []srv6bpf.Nexthop{{Iface: primary}},
		Backup:   &srv6bpf.RouteBackup{Nexthops: []srv6bpf.Nexthop{{Iface: backup}}},
	})

	got := 0
	rcv.HandleUDP(7, func(n *srv6bpf.Node, p *srv6bpf.ParsedPacket, meta *srv6bpf.PacketMeta) { got++ })
	send := func(at int64) {
		sim.Schedule(at, func() {
			raw, err := srv6bpf.BuildPacket(src, dst, srv6bpf.WithUDP(1, 7))
			if err != nil {
				t.Error(err)
				return
			}
			snd.Output(raw)
		})
	}
	send(0)
	sim.FailLink(srv6bpf.Millisecond, primary)
	send(2 * srv6bpf.Millisecond)
	sim.RestoreLink(3*srv6bpf.Millisecond, primary)
	send(4 * srv6bpf.Millisecond)
	sim.Run()

	if got != 3 {
		t.Fatalf("delivered %d/3", got)
	}
	if primary.TxPackets != 2 || backup.TxPackets != 1 {
		t.Fatalf("path split primary=%d backup=%d, want 2/1", primary.TxPackets, backup.TxPackets)
	}
	if !primary.Up() {
		t.Fatal("primary should be up after RestoreLink")
	}
}

// TestFacadeMapAPI exercises the re-exported map types.
func TestFacadeMapAPI(t *testing.T) {
	m, err := srv6bpf.NewMap(srv6bpf.MapSpec{
		Name: "m", Type: srv6bpf.MapTypeHash, KeySize: 4, ValueSize: 8, MaxEntries: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Update([]byte{1, 0, 0, 0}, []byte{9, 0, 0, 0, 0, 0, 0, 0}, 0); err != nil {
		t.Fatal(err)
	}
	v, err := m.LookupUint64([]byte{1, 0, 0, 0})
	if err != nil || v != 9 {
		t.Fatalf("lookup = %d, %v", v, err)
	}
}

// TestFacadeShardedTopology drives the parallel engine through the
// public facade: generate a fat-tree, shard it, run traffic, and
// check the engine's deterministic accounting.
func TestFacadeShardedTopology(t *testing.T) {
	run := func(shards int) (uint64, srv6bpf.EngineStats) {
		sim := srv6bpf.NewSim(5)
		nw, err := srv6bpf.FatTree(sim, 4, srv6bpf.TopoOpts{
			Link: srv6bpf.TopoLink{RateBps: 1e10, DelayNs: 20 * srv6bpf.Microsecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		var delivered uint64
		dst := nw.Hosts[len(nw.Hosts)-1]
		dst.HandleUDP(7, func(n *srv6bpf.Node, p *srv6bpf.ParsedPacket, meta *srv6bpf.PacketMeta) {
			delivered++
		})
		if err := sim.SetShards(shards); err != nil {
			t.Fatal(err)
		}
		src := nw.Hosts[0]
		for i := 0; i < 20; i++ {
			i := i
			src.Schedule(int64(i)*50*srv6bpf.Microsecond, func() {
				raw, err := srv6bpf.BuildPacket(nw.HostAddr(src), nw.HostAddr(dst),
					srv6bpf.WithUDP(1000, 7), srv6bpf.WithFlowLabel(uint32(i)))
				if err != nil {
					panic(err)
				}
				src.Output(raw)
			})
		}
		sim.Run()
		return delivered, sim.EngineStats()
	}
	seqGot, _ := run(1)
	parGot, st := run(4)
	if seqGot != 20 || parGot != 20 {
		t.Fatalf("delivered seq=%d par=%d, want 20/20", seqGot, parGot)
	}
	if st.Shards != 4 || st.Events == 0 {
		t.Fatalf("engine stats = %+v", st)
	}
}
