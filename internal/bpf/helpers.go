package bpf

import (
	"encoding/binary"
	"fmt"

	"srv6bpf/internal/bpf/maps"
	"srv6bpf/internal/bpf/verifier"
	"srv6bpf/internal/bpf/vm"
)

// Helper IDs. Values match the Linux UAPI helper numbering of the
// kernel the paper extended (4.18), so listings of our programs read
// like contemporary eBPF.
const (
	HelperMapLookupElem   = 1
	HelperMapUpdateElem   = 2
	HelperMapDeleteElem   = 3
	HelperKtimeGetNS      = 5
	HelperTracePrintk     = 6
	HelperGetPrandomU32   = 7
	HelperPerfEventOutput = 25
	HelperSkbLoadBytes    = 26

	// LWT / SRv6 helpers (Linux 4.18 additions from the paper, §3.1).
	HelperLWTPushEncap     = 73
	HelperLWTSeg6StoreByte = 74
	HelperLWTSeg6AdjustSRH = 75
	HelperLWTSeg6Action    = 76

	// Helpers this repository adds beyond the UAPI set, in a private
	// range. HelperHWTimestamp is the "generic helper that we added to
	// the Linux kernel" for transmission timestamps (§4.1);
	// HelperSeg6ECMPNexthops is the custom helper of the End.OAMP use
	// case (§4.3, "50 SLOC in the kernel").
	HelperHWTimestamp      = 200
	HelperSeg6ECMPNexthops = 201
)

// BPFFCurrentCPU is the perf_event_output flag selecting the current
// CPU's ring (all simulated nodes are single-core, so ring 0).
const BPFFCurrentCPU = 0xffffffff

// ExecContext is the environment generic helpers run against. The
// hook layer stores an implementation in Machine.HelperContext before
// each program invocation.
type ExecContext interface {
	// Now returns virtual time in nanoseconds.
	Now() int64
	// Random returns a pseudo-random 32-bit value (seeded, for
	// reproducible experiments).
	Random() uint32
	// Printk receives bpf_trace_printk output.
	Printk(msg string)
}

func execContext(m *vm.Machine) (ExecContext, error) {
	ec, ok := m.HelperContext.(ExecContext)
	if !ok {
		return nil, fmt.Errorf("bpf: helper context %T does not implement ExecContext", m.HelperContext)
	}
	return ec, nil
}

// GenericHelperSigs returns verifier signatures for the generic
// helper set shared by all hooks in this repository.
func GenericHelperSigs() map[int32]verifier.HelperSig {
	return map[int32]verifier.HelperSig{
		HelperMapLookupElem: {
			Name: "map_lookup_elem",
			Args: []verifier.ArgKind{verifier.ArgMapHandle, verifier.ArgPtr},
			Ret:  verifier.RetMapValueOrNull,
		},
		HelperMapUpdateElem: {
			Name: "map_update_elem",
			Args: []verifier.ArgKind{verifier.ArgMapHandle, verifier.ArgPtr, verifier.ArgPtr, verifier.ArgScalar},
			Ret:  verifier.RetScalar,
		},
		HelperMapDeleteElem: {
			Name: "map_delete_elem",
			Args: []verifier.ArgKind{verifier.ArgMapHandle, verifier.ArgPtr},
			Ret:  verifier.RetScalar,
		},
		HelperKtimeGetNS:    {Name: "ktime_get_ns", Ret: verifier.RetScalar},
		HelperGetPrandomU32: {Name: "get_prandom_u32", Ret: verifier.RetScalar},
		HelperTracePrintk: {
			Name: "trace_printk",
			Args: []verifier.ArgKind{verifier.ArgPtr, verifier.ArgScalar},
			Ret:  verifier.RetScalar,
		},
		HelperPerfEventOutput: {
			Name: "perf_event_output",
			Args: []verifier.ArgKind{verifier.ArgCtx, verifier.ArgMapHandle, verifier.ArgScalar, verifier.ArgPtr, verifier.ArgScalar},
			Ret:  verifier.RetScalar,
		},
		HelperSkbLoadBytes: {
			Name: "skb_load_bytes",
			Args: []verifier.ArgKind{verifier.ArgCtx, verifier.ArgScalar, verifier.ArgPtr, verifier.ArgScalar},
			Ret:  verifier.RetScalar,
		},
		HelperHWTimestamp: {Name: "hw_timestamp", Ret: verifier.RetScalar},
	}
}

// InstallGenericHelpers fills table with the generic helper
// implementations. skbBytes resolves the raw packet bytes for
// skb_load_bytes; it may be nil for hooks without packet access.
func InstallGenericHelpers(table *vm.HelperTable, skbBytes func(m *vm.Machine) []byte) {
	table[HelperMapLookupElem] = helperMapLookup
	table[HelperMapUpdateElem] = helperMapUpdate
	table[HelperMapDeleteElem] = helperMapDelete

	table[HelperKtimeGetNS] = func(m *vm.Machine, _, _, _, _, _ uint64) (uint64, error) {
		ec, err := execContext(m)
		if err != nil {
			return 0, err
		}
		return uint64(ec.Now()), nil
	}
	// hw_timestamp returns the same clock: in the simulator the NIC
	// timestamp and the kernel clock agree (the paper's helper exposes
	// the driver RX/TX timestamp).
	table[HelperHWTimestamp] = table[HelperKtimeGetNS]

	table[HelperGetPrandomU32] = func(m *vm.Machine, _, _, _, _, _ uint64) (uint64, error) {
		ec, err := execContext(m)
		if err != nil {
			return 0, err
		}
		return uint64(ec.Random()), nil
	}

	table[HelperTracePrintk] = func(m *vm.Machine, r1, r2, _, _, _ uint64) (uint64, error) {
		ec, err := execContext(m)
		if err != nil {
			return 0, err
		}
		n := int(r2)
		if n < 0 || n > 512 {
			return Errno(EINVAL), nil
		}
		msg, err := m.Mem.Bytes(r1, n)
		if err != nil {
			return 0, err
		}
		ec.Printk(string(msg))
		return uint64(n), nil
	}

	table[HelperPerfEventOutput] = func(m *vm.Machine, r1, r2, r3, r4, r5 uint64) (uint64, error) {
		binding, ok := ResolveBinding(m, r2)
		if !ok {
			return Errno(EINVAL), nil
		}
		if binding.Map.Spec().Type != maps.PerfEventArray {
			return Errno(EINVAL), nil
		}
		size := int(r5)
		if size <= 0 || size > 4096 {
			return Errno(E2BIG), nil
		}
		data, err := m.Mem.Bytes(r4, size)
		if err != nil {
			return 0, err
		}
		cpu := int(uint32(r3))
		if uint32(r3) == BPFFCurrentCPU {
			cpu = 0 // single-core nodes
		}
		if !binding.Map.Output(cpu, data) {
			return Errno(ENOENT), nil
		}
		return 0, nil
	}

	if skbBytes != nil {
		table[HelperSkbLoadBytes] = func(m *vm.Machine, r1, r2, r3, r4, r5 uint64) (uint64, error) {
			pkt := skbBytes(m)
			off, n := int(r2), int(r4)
			if pkt == nil || off < 0 || n <= 0 || off+n > len(pkt) {
				return Errno(EINVAL), nil
			}
			if err := m.Mem.WriteBytes(r3, pkt[off:off+n]); err != nil {
				return 0, err
			}
			return 0, nil
		}
	}
}

func helperMapLookup(m *vm.Machine, r1, r2, _, _, _ uint64) (uint64, error) {
	binding, ok := ResolveBinding(m, r1)
	if !ok {
		return 0, fmt.Errorf("bpf: map_lookup_elem: bad map handle %#x", r1)
	}
	spec := binding.Map.Spec()
	key, err := m.Mem.Bytes(r2, int(spec.KeySize))
	if err != nil {
		return 0, err
	}
	off, ok := binding.Map.LookupSlot(key)
	if !ok {
		return 0, nil // NULL
	}
	return vm.Pointer(binding.Arena, uint64(off)), nil
}

func helperMapUpdate(m *vm.Machine, r1, r2, r3, r4, _ uint64) (uint64, error) {
	binding, ok := ResolveBinding(m, r1)
	if !ok {
		return 0, fmt.Errorf("bpf: map_update_elem: bad map handle %#x", r1)
	}
	spec := binding.Map.Spec()
	key, err := m.Mem.Bytes(r2, int(spec.KeySize))
	if err != nil {
		return 0, err
	}
	val, err := m.Mem.Bytes(r3, int(spec.ValueSize))
	if err != nil {
		return 0, err
	}
	switch err := binding.Map.Update(key, val, r4); err {
	case nil:
		return 0, nil
	case maps.ErrKeyExist:
		return Errno(EEXIST), nil
	case maps.ErrKeyNotExist:
		return Errno(ENOENT), nil
	case maps.ErrFull:
		return Errno(E2BIG), nil
	default:
		return Errno(EINVAL), nil
	}
}

func helperMapDelete(m *vm.Machine, r1, r2, _, _, _ uint64) (uint64, error) {
	binding, ok := ResolveBinding(m, r1)
	if !ok {
		return 0, fmt.Errorf("bpf: map_delete_elem: bad map handle %#x", r1)
	}
	spec := binding.Map.Spec()
	key, err := m.Mem.Bytes(r2, int(spec.KeySize))
	if err != nil {
		return 0, err
	}
	switch err := binding.Map.Delete(key); err {
	case nil:
		return 0, nil
	case maps.ErrKeyNotExist:
		return Errno(ENOENT), nil
	default:
		return Errno(EINVAL), nil
	}
}

// PutUint64 and ReadUint64 are small conveniences for building map
// keys/values in user-space code and tests.
func PutUint64(v uint64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, v)
	return b
}

// PutUint32 encodes a little-endian 4-byte key.
func PutUint32(v uint32) []byte {
	b := make([]byte, 4)
	binary.LittleEndian.PutUint32(b, v)
	return b
}
