package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"srv6bpf/internal/netsim"
	"srv6bpf/internal/netsim/topo"
	"srv6bpf/internal/trafgen"
)

// The shard-scaling experiment measures what the paper's lab could
// not: how simulation throughput scales when the event loop is
// partitioned across cores. A k=8 fat-tree (208 nodes — the scale
// SRPerf argues SRv6 evaluations need) carries an all-hosts
// permutation traffic mix; the same seed runs under 1..N shards and
// must produce identical per-node counters (the determinism guarantee
// is re-verified here, in the benchmark itself, not only in tests),
// while wall-clock time and events/second record the scaling.

// ShardScalingRow is one shard-count measurement.
type ShardScalingRow struct {
	Engine       string  `json:"engine"`
	Shards       int     `json:"shards"`
	Nodes        int     `json:"nodes"`
	Hosts        int     `json:"hosts"`
	WallMs       float64 `json:"wall_ms"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Speedup is events/sec relative to the 1-shard row.
	Speedup   float64 `json:"speedup_vs_1shard"`
	Delivered uint64  `json:"delivered_pkts"`
	Windows   uint64  `json:"windows"`
	Messages  uint64  `json:"cross_shard_msgs"`
	// Time-Warp accounting (zero under the conservative engine).
	Checkpoints  uint64 `json:"checkpoints,omitempty"`
	Rollbacks    uint64 `json:"rollbacks,omitempty"`
	AntiMessages uint64 `json:"anti_messages,omitempty"`
	// Incremental-checkpoint accounting: node snapshots deep-copied
	// vs aliased to the previous round, and the bytes actually
	// copied into checkpoints.
	CkptNodesCopied  uint64 `json:"ckpt_nodes_copied,omitempty"`
	CkptNodesAliased uint64 `json:"ckpt_nodes_aliased,omitempty"`
	CkptBytes        uint64 `json:"ckpt_bytes,omitempty"`
	// Adaptive horizon controller: final window and adjustment count.
	HorizonNs      int64  `json:"horizon_ns,omitempty"`
	HorizonAdjusts uint64 `json:"horizon_adjusts,omitempty"`
}

// shardScalingSeed fixes the scenario; every shard count replays it.
const shardScalingSeed = 7

// ShardScaling runs the fat-tree mix once per requested shard count
// under the given engine and reports scaling rows. k is the fat-tree
// arity (k=8 gives 208 nodes); durationNs is the virtual measurement
// window. The determinism check spans engines too: every row's
// counters must match the first row's, whatever synchronisation
// protocol produced them.
func ShardScaling(engine netsim.Engine, shardCounts []int, k int, durationNs int64) ([]ShardScalingRow, error) {
	var rows []ShardScalingRow
	baseline := 0.0
	fingerprint := ""
	for _, n := range shardCounts {
		row, fp, err := shardScalingRun(engine, n, k, durationNs)
		if err != nil {
			return nil, err
		}
		if fingerprint == "" {
			fingerprint = fp
		} else if fp != fingerprint {
			return nil, fmt.Errorf("experiments: %d-shard run diverged from the %d-shard schedule (determinism violation)",
				n, shardCounts[0])
		}
		if row.Shards == 1 {
			baseline = row.EventsPerSec
		}
		if baseline > 0 {
			row.Speedup = row.EventsPerSec / baseline
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func shardScalingRun(engine netsim.Engine, shards, k int, durationNs int64) (ShardScalingRow, string, error) {
	sim := netsim.New(shardScalingSeed)
	nw, err := topo.FatTree(sim, k, topo.Opts{
		Link: topo.LinkSpec{RateBps: 10_000_000_000, DelayNs: 25 * netsim.Microsecond},
	})
	if err != nil {
		return ShardScalingRow{}, "", err
	}
	for _, h := range nw.Hosts {
		trafgen.NewSink(h, 9)
	}
	pairs := nw.PermutationPairs(99)
	gens := make([]*trafgen.UDPGen, len(pairs))
	for i, pr := range pairs {
		gens[i] = &trafgen.UDPGen{
			Node: pr[0], Src: nw.HostAddr(pr[0]), Dst: nw.HostAddr(pr[1]),
			SrcPort: 1000, DstPort: 9, PayloadLen: 64,
			FlowLabel: func(n uint64) uint32 { return uint32(n % 16) },
			RatePPS:   20_000,
		}
	}
	if err := sim.SetShards(shards, engine); err != nil {
		return ShardScalingRow{}, "", err
	}

	start := time.Now()
	for i, g := range gens {
		g := g
		g.Node.Schedule(int64(i)*netsim.Microsecond, func() {
			if err := g.Start(durationNs); err != nil {
				panic(err)
			}
		})
	}
	// Drive the run in 1 ms virtual chunks, sampling every node's
	// counters each chunk through the zero-alloc CountersInto — the
	// monitoring cadence a production harness would use.
	poll := make(map[string]uint64, 32)
	var delivered uint64
	const chunk = netsim.Millisecond
	for now := int64(0); now < durationNs; now += chunk {
		end := now + chunk
		if end > durationNs {
			end = durationNs
		}
		sim.RunUntil(end)
		delivered = 0
		for _, h := range nw.Hosts {
			h.CountersInto(poll)
			delivered += poll["udp_delivered"]
		}
	}
	for _, g := range gens {
		g.Stop()
	}
	sim.Run()
	wall := time.Since(start)

	delivered = 0
	for _, h := range nw.Hosts {
		h.CountersInto(poll)
		delivered += poll["udp_delivered"]
	}
	st := sim.EngineStats()
	row := ShardScalingRow{
		Engine:           engine.String(),
		Shards:           shards,
		Nodes:            len(nw.Nodes),
		Hosts:            len(nw.Hosts),
		WallMs:           float64(wall.Nanoseconds()) / 1e6,
		Events:           st.Events,
		EventsPerSec:     float64(st.Events) / wall.Seconds(),
		Delivered:        delivered,
		Windows:          st.Windows,
		Messages:         st.Messages,
		Checkpoints:      st.Checkpoints,
		Rollbacks:        st.Rollbacks,
		AntiMessages:     st.AntiMessages,
		CkptNodesCopied:  st.CkptNodesCopied,
		CkptNodesAliased: st.CkptNodesAliased,
		CkptBytes:        st.CkptBytes,
	}
	if st.HorizonAdaptive && shards > 1 {
		row.HorizonNs = st.Horizon
		row.HorizonAdjusts = st.HorizonAdjusts
	}
	return row, countersFingerprint(sim), nil
}

// countersFingerprint renders every node's counters into one
// comparable string (sorted keys, creation order over nodes).
func countersFingerprint(sim *netsim.Sim) string {
	var b strings.Builder
	scratch := make(map[string]uint64, 32)
	keys := make([]string, 0, 32)
	for _, n := range sim.Nodes() {
		for k := range scratch {
			delete(scratch, k)
		}
		n.CountersInto(scratch)
		keys = keys[:0]
		for k := range scratch {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString(n.Name)
		b.WriteByte('{')
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%d ", k, scratch[k])
		}
		b.WriteString("}\n")
	}
	return b.String()
}
