package netsim_test

// Randomized equivalence fuzzing: the lock that makes speculative
// execution trustworthy. Each seeded scenario generates a topology
// (Waxman, fat-tree, ring — some with zero-delay links the
// conservative engine must reject), a random UDP traffic mix, TCP
// bulk transfers riding on it (tcpsim state is ShardState and must
// rewind with the nodes) and a random link failure/restore schedule,
// then replays the identical scenario sequentially, conservatively
// sharded and optimistically sharded (half the scenarios pin a
// randomized speculation horizon, half leave the adaptive controller
// in charge) and requires bit-identical per-node counters, delivery
// traces and transfer statistics from every arm.
//
// Depth scales with SRV6BPF_FUZZ_SCENARIOS (the scheduled CI job runs
// the full depth; `make check` runs the default smoke).

import (
	"fmt"
	"math/rand"
	"net/netip"
	"os"
	"strconv"
	"strings"
	"testing"

	"srv6bpf/internal/netsim"
	"srv6bpf/internal/netsim/chaos"
	"srv6bpf/internal/netsim/partition"
	"srv6bpf/internal/netsim/topo"
	"srv6bpf/internal/packet"
	"srv6bpf/internal/seg6"
	"srv6bpf/internal/tcpsim"
	"srv6bpf/internal/trafgen"
)

// fuzzScenario is the deterministic description derived from a seed.
type fuzzScenario struct {
	seed      int64
	kind      string
	zeroDelay bool // cross-shard zero-delay links present
	duration  int64
	horizon   int64 // fixed optimistic speculation window (see adaptive)
	// adaptive leaves the optimistic engine's horizon controller in
	// charge instead of pinning the scenario's fixed horizon, so the
	// fuzz matrix covers both regimes.
	adaptive bool
	rate     float64
	pairs    int64 // PermutationPairs seed
	flowMod  uint64
	fails    int
	// tcp is the number of TCP bulk transfers riding on the scenario
	// (tcpsim state must roll back bit-exactly with the nodes).
	tcp int
	// chaos adds a randomized fault campaign (node crash/restart,
	// link flapping, packet corruption/duplication/reordering windows)
	// on top of the scenario: fault events and impairment draws must
	// replay bit-identically under every engine and shard count.
	chaos bool
	// burst is the packet-burst knob applied to the sharded arms plus
	// one extra sequential arm: burst processing must be bit-identical
	// to per-packet processing under every engine, including rollback
	// of a partially-executed burst.
	burst int
	// srv6 overlays a segment-routed detour on one traffic pair: a
	// reduced encap at the source, a (possibly PSP-flavored) End SID
	// on a transit host and a DT6/DT46 decap SID at the destination,
	// so the registry-dispatched behaviours run under every engine and
	// must survive optimistic rollback like plain forwarding.
	srv6 bool
	// mincut shards the scenario with the topology-aware min-cut
	// partitioner instead of the contiguous block: the bit-identical
	// replay guarantee must hold under any node placement.
	mincut bool
}

func deriveScenario(seed int64) fuzzScenario {
	rng := rand.New(rand.NewSource(seed))
	sc := fuzzScenario{
		seed:     seed,
		duration: (1 + rng.Int63n(2)) * netsim.Millisecond,
		horizon:  (20 + rng.Int63n(180)) * netsim.Microsecond,
		rate:     float64(5000 + rng.Intn(45000)),
		pairs:    rng.Int63n(1 << 30),
		flowMod:  uint64(4 + rng.Intn(12)),
		fails:    rng.Intn(4),
	}
	switch rng.Intn(4) {
	case 0:
		sc.kind = "waxman"
	case 1:
		sc.kind = "fattree"
	case 2:
		sc.kind = "ring"
	case 3:
		sc.kind = "fattree-zerodelay"
		sc.zeroDelay = true
	}
	sc.adaptive = rng.Intn(2) == 0
	sc.tcp = rng.Intn(3)
	// Drawn last so earlier fields derive identically to older seeds
	// (and burst after chaos, for the same reason).
	sc.chaos = rng.Intn(2) == 0
	sc.burst = 1 << uint(rng.Intn(6)) // 1..32
	sc.srv6 = rng.Intn(2) == 0
	sc.mincut = rng.Intn(2) == 0
	return sc
}

// buildFuzzTopo constructs the scenario's network; all construction
// randomness comes from a fresh rng over the scenario seed, so every
// arm builds the identical network.
func buildFuzzTopo(t *testing.T, sim *netsim.Sim, sc fuzzScenario) *topo.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(sc.seed ^ 0x746f706f)) // "topo"
	delay := (5 + rng.Int63n(45)) * netsim.Microsecond
	link := topo.LinkSpec{RateBps: int64(1+rng.Intn(10)) * 1_000_000_000, DelayNs: delay}
	var nw *topo.Network
	var err error
	switch sc.kind {
	case "waxman":
		n := 12 + rng.Intn(16)
		nw, err = topo.Waxman(sim, n, topo.WaxmanParams{
			Alpha: 0.4 + 0.5*rng.Float64(),
			Beta:  0.3 + 0.5*rng.Float64(),
			Seed:  rng.Int63(),
		}, topo.Opts{Link: link})
	case "fattree":
		nw, err = topo.FatTree(sim, 4, topo.Opts{Link: link})
	case "fattree-zerodelay":
		nw, err = topo.FatTree(sim, 4, topo.Opts{
			Link:    link,
			PodLink: topo.LinkSpec{RateBps: link.RateBps, DelayNs: -1}, // true zero delay
		})
	case "ring":
		nw, err = topo.Ring(sim, 8+rng.Intn(12), topo.Opts{Link: link})
	}
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// fuzzRun replays the scenario under one engine arm and fingerprints
// the committed state: every node's counters, every host's delivery
// trace, and the per-link failure accounting.
func fuzzRun(t *testing.T, sc fuzzScenario, shards int, eng netsim.Engine, burst int) string {
	t.Helper()
	sim := netsim.New(sc.seed)
	sim.SetBurst(burst)
	nw := buildFuzzTopo(t, sim, sc)

	// Flight recorder on in every arm, sampling half the flows: the
	// committed span streams join the fingerprint below, so traces
	// must replay bit-identically across engines and shard counts
	// (the recorder is ShardState and rewinds with rollbacks).
	sim.EnableObs(netsim.ObsOptions{Trace: true, SampleShift: 1})

	journals := make([]*netsim.Journal, len(nw.Hosts))
	for i, h := range nw.Hosts {
		j := netsim.NewJournal(h)
		journals[i] = j
		h.HandleUDP(9, func(n *netsim.Node, p *packet.Packet, meta *netsim.PacketMeta) {
			j.Addf("%d:%s:%d", meta.RxTimestamp, p.IPv6.Src, p.IPv6.FlowLabel)
		})
	}
	pairs := nw.PermutationPairs(sc.pairs)
	gens := make([]*trafgen.UDPGen, len(pairs))
	for i, pr := range pairs {
		gens[i] = &trafgen.UDPGen{
			Node: pr[0], Src: nw.HostAddr(pr[0]), Dst: nw.HostAddr(pr[1]),
			SrcPort: 1000, DstPort: 9, PayloadLen: 64,
			FlowLabel: func(k uint64) uint32 { return uint32(k % sc.flowMod) },
			RatePPS:   sc.rate,
		}
	}

	// SRv6 overlay: pick three distinct hosts S, T, D and steer S's
	// generated flow through a segment list. S applies a reduced encap
	// toward an End SID on T (half the scenarios flavor it PSP, so the
	// SRH pops mid-path) and on to a DT6 or DT46 decap SID on D; the
	// flow targets an auxiliary address inside D's /48 so delivery
	// proves the whole behaviour chain ran. Every address lives inside
	// an existing host /48, so the topology's BFS routes carry the
	// detour without extra routing state.
	var srv6Src netip.Addr
	var srv6Dst *netsim.Node
	if sc.srv6 && len(nw.Hosts) >= 3 {
		srng := rand.New(rand.NewSource(sc.seed ^ 0x73727636)) // "srv6"
		perm := srng.Perm(len(nw.Hosts))
		src, transit, dst := nw.Hosts[perm[0]], nw.Hosts[perm[1]], nw.Hosts[perm[2]]
		srv6Src, srv6Dst = nw.HostAddr(src), dst

		sidIn := func(h *netsim.Node, tail byte) netip.Addr {
			b := nw.HostAddr(h).As16()
			b[15] = tail
			return netip.AddrFrom16(b)
		}
		aux := sidIn(dst, 0x02)
		dst.AddAddress(aux)

		endB := &seg6.Behaviour{Action: seg6.ActionEnd}
		if srng.Intn(2) == 0 {
			endB.Flavors = seg6.FlavorPSP
		}
		tSID := sidIn(transit, 0xe5)
		if err := transit.AddRoute(&netsim.Route{Prefix: netip.PrefixFrom(tSID, 128),
			Kind: netsim.RouteSeg6Local, Behaviour: endB}); err != nil {
			t.Fatal(err)
		}

		decapAction := seg6.ActionEndDT6
		if srng.Intn(2) == 0 {
			decapAction = seg6.ActionEndDT46
		}
		dSID := sidIn(dst, 0xd6)
		if err := dst.AddRoute(&netsim.Route{Prefix: netip.PrefixFrom(dSID, 128),
			Kind: netsim.RouteSeg6Local, Behaviour: &seg6.Behaviour{Action: decapAction}}); err != nil {
			t.Fatal(err)
		}

		if err := src.AddRoute(&netsim.Route{Prefix: netip.PrefixFrom(aux, 128),
			Kind: netsim.RouteSeg6Encap, Mode: netsim.EncapModeEncapRed,
			SRH: packet.NewSRH([]netip.Addr{tSID, dSID})}); err != nil {
			t.Fatal(err)
		}
		for _, g := range gens {
			if g.Node == src {
				g.Dst = aux
			}
		}
	}

	// TCP transfers between deterministically drawn host pairs: the
	// tcpsim connection state (congestion window, RTO epoch, send
	// times, reassembly buffer) is ShardState, so it must survive
	// optimistic rollback bit-exactly like the netsim-core state.
	type tcpArm struct {
		snd *tcpsim.Sender
		rcv *tcpsim.Receiver
	}
	var tcps []tcpArm
	if sc.tcp > 0 && len(nw.Hosts) >= 2 {
		trng := rand.New(rand.NewSource(sc.seed ^ 0x746370)) // "tcp"
		stacks := make(map[*netsim.Node]*tcpsim.Stack)
		stackFor := func(n *netsim.Node) *tcpsim.Stack {
			st, ok := stacks[n]
			if !ok {
				st = tcpsim.NewStack(n)
				stacks[n] = st
			}
			return st
		}
		for i := 0; i < sc.tcp; i++ {
			src := nw.Hosts[trng.Intn(len(nw.Hosts))]
			dst := nw.Hosts[trng.Intn(len(nw.Hosts))]
			startAt := trng.Int63n(sc.duration / 2)
			if src == dst {
				continue
			}
			snd, rcv, err := tcpsim.NewTransfer(stackFor(src), stackFor(dst),
				nw.HostAddr(src), nw.HostAddr(dst), uint16(40000+i), uint16(5001+i),
				tcpsim.Config{MSS: 512, MinRTO: 300 * netsim.Microsecond, FlowLabel: uint32(100 + i)})
			if err != nil {
				t.Fatal(err)
			}
			src.Schedule(startAt, snd.Start)
			tcps = append(tcps, tcpArm{snd: snd, rcv: rcv})
		}
	}

	if shards > 1 {
		if sc.mincut {
			assign, err := partition.MinCut(partition.FromSim(sim), shards, sc.seed)
			if err != nil {
				t.Fatalf("MinCut(%d): %v", shards, err)
			}
			if err := sim.SetShardsPartitioned(shards, assign, eng); err != nil {
				t.Fatalf("SetShardsPartitioned(%d, %v): %v", shards, eng, err)
			}
		} else if err := sim.SetShards(shards, eng); err != nil {
			t.Fatalf("SetShards(%d, %v): %v", shards, eng, err)
		}
		if eng == netsim.EngineOptimistic && !sc.adaptive {
			sim.SetHorizon(sc.horizon)
		}
	}

	// Chaos campaign: crash/restart cycles, flap bursts and impairment
	// windows drawn from the campaign's own seed. Planned identically
	// in every arm; the injected events carry deterministic keys, so
	// the committed schedule is engine-independent.
	if sc.chaos {
		ch := chaos.New(sim, sc.seed^0x63686173) // "chas"
		ch.Apply(chaos.Campaign{
			Start:       sc.duration / 8,
			End:         sc.duration * 7 / 8,
			Crashes:     1 + int(sc.seed%2),
			CrashDown:   [2]int64{50 * netsim.Microsecond, sc.duration / 3},
			Flaps:       1 + int(sc.seed%2),
			FlapPeriod:  [2]int64{40 * netsim.Microsecond, 200 * netsim.Microsecond},
			FlapCycles:  [2]int{2, 5},
			Impairments: 2,
			ImpairLen:   [2]int64{sc.duration / 8, sc.duration / 2},
			Impair: chaos.Impairment{
				Corrupt: 0.05, Duplicate: 0.05, Reorder: 0.2,
			},
		}, nil, nil)
	}

	// Random link failure/restore schedule, derived deterministically
	// from the scenario seed. Sim.FailLink splits the flip across
	// shards, so any link — including cross-shard ones — is fair game.
	frng := rand.New(rand.NewSource(sc.seed ^ 0x6661696c)) // "fail"
	for f := 0; f < sc.fails; f++ {
		node := nw.Nodes[frng.Intn(len(nw.Nodes))]
		ifaces := node.Ifaces()
		if len(ifaces) == 0 {
			continue
		}
		ifc := ifaces[frng.Intn(len(ifaces))]
		at := frng.Int63n(sc.duration * 3 / 4)
		sim.FailLink(at, ifc)
		if frng.Intn(2) == 0 {
			sim.RestoreLink(at+frng.Int63n(sc.duration/2)+netsim.Microsecond, ifc)
		}
	}

	for i, g := range gens {
		g := g
		g.Node.Schedule(int64(i)*netsim.Microsecond, func() {
			if err := g.Start(sc.duration); err != nil {
				panic(err)
			}
		})
	}
	sim.RunUntil(sc.duration)
	for _, g := range gens {
		g.Stop()
	}
	for _, a := range tcps {
		a.snd.Stop()
	}
	sim.Run()

	var b strings.Builder
	for i, j := range journals {
		fmt.Fprintf(&b, "trace[%s]=%s\n", nw.Hosts[i].Name, strings.Join(j.Lines(), ","))
	}
	// The srv6-detoured flow's deliveries join the fingerprint by
	// name: a vacuous overlay (broken steering dropping every packet)
	// would still fingerprint identically across engines, so pin the
	// count explicitly. Chaos campaigns and link failures may
	// legitimately push it to zero in some scenarios; the point is
	// every arm must agree on the number.
	if srv6Dst != nil {
		srv6N := 0
		for i, j := range journals {
			if nw.Hosts[i] != srv6Dst {
				continue
			}
			needle := ":" + srv6Src.String() + ":"
			for _, ln := range j.Lines() {
				if strings.Contains(ln, needle) {
					srv6N++
				}
			}
		}
		fmt.Fprintf(&b, "srv6_delivered=%d\n", srv6N)
		t.Logf("srv6 overlay: %d detoured deliveries", srv6N)
	}
	for _, n := range nw.Nodes {
		for _, ifc := range n.Ifaces() {
			fmt.Fprintf(&b, "if[%s] tx=%d txd=%d down=%d\n", ifc, ifc.TxPackets, ifc.TxDrops, ifc.DownDrops())
		}
	}
	for i, a := range tcps {
		fmt.Fprintf(&b, "tcp[%d] sent=%d rtx=%d fr=%d to=%d dsack=%d good=%d ooo=%d dup=%d\n",
			i, a.snd.SegmentsSent, a.snd.Retransmits, a.snd.FastRecoveries, a.snd.Timeouts,
			a.snd.DSACKs, a.rcv.GoodputBytes, a.rcv.OutOfOrderSegs, a.rcv.DupSegs)
	}
	for _, tb := range sim.TraceBufs() {
		if tb.Len() > 0 {
			fmt.Fprintf(&b, "spans[%s]=%s\n", tb.Node(), strings.Join(tb.Lines(), ","))
		}
	}
	return fingerprint(sim, []string{b.String()})
}

// fuzzDepth reports how many seeded scenarios to run: the
// SRV6BPF_FUZZ_SCENARIOS environment variable (scheduled CI runs the
// full depth), a trimmed default under -short, and a moderate default
// otherwise.
func fuzzDepth(t *testing.T) int {
	if v := os.Getenv("SRV6BPF_FUZZ_SCENARIOS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad SRV6BPF_FUZZ_SCENARIOS=%q", v)
		}
		return n
	}
	if testing.Short() {
		return 2
	}
	return 6
}

// TestOptimisticFatTreeZeroDelayIntraPod is the flagship
// configuration the conservative engine cannot touch: a full 208-node
// k=8 fat-tree whose intra-pod (edge–aggregation) hops carry zero
// propagation delay — the back-to-back links of a real pod. The
// partition splits pods across shards, so zero-delay links cross
// shard boundaries; the conservative engine must reject the split and
// the optimistic engine must reproduce the sequential delivery trace
// bit for bit.
func TestOptimisticFatTreeZeroDelayIntraPod(t *testing.T) {
	build := func(sim *netsim.Sim) *topo.Network {
		nw, err := topo.FatTree(sim, 8, topo.Opts{
			Link:    topo.LinkSpec{RateBps: 10_000_000_000, DelayNs: 25 * netsim.Microsecond},
			PodLink: topo.LinkSpec{RateBps: 10_000_000_000, DelayNs: -1}, // true zero delay
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(nw.Nodes) != 208 {
			t.Fatalf("fat-tree k=8 has %d nodes, want 208", len(nw.Nodes))
		}
		return nw
	}
	// The conservative engine must name the offending link. (The
	// 2-shard cut happens to fall between a pod's switches and its
	// hosts; the 4-shard cut splits a pod's edge and aggregation
	// layers, putting zero-delay links across the boundary.)
	rej := netsim.New(7)
	build(rej)
	if err := rej.SetShards(4); err == nil || !strings.Contains(err.Error(), "zero propagation delay") {
		t.Fatalf("conservative SetShards on zero-delay pods: err = %v, want zero-delay rejection", err)
	}

	run := func(shards int) (string, netsim.EngineStats) {
		sim := netsim.New(7)
		nw := build(sim)
		journals := make([]*netsim.Journal, len(nw.Hosts))
		for i, h := range nw.Hosts {
			j := netsim.NewJournal(h)
			journals[i] = j
			h.HandleUDP(9, func(n *netsim.Node, p *packet.Packet, meta *netsim.PacketMeta) {
				j.Addf("%d:%s:%d", meta.RxTimestamp, p.IPv6.Src, p.IPv6.FlowLabel)
			})
		}
		pairs := nw.PermutationPairs(99)
		gens := make([]*trafgen.UDPGen, len(pairs))
		for i, pr := range pairs {
			gens[i] = &trafgen.UDPGen{
				Node: pr[0], Src: nw.HostAddr(pr[0]), Dst: nw.HostAddr(pr[1]),
				SrcPort: 1000, DstPort: 9, PayloadLen: 64,
				FlowLabel: func(k uint64) uint32 { return uint32(k % 16) },
				RatePPS:   20_000,
			}
		}
		if shards > 1 {
			if err := sim.SetShards(shards, netsim.EngineOptimistic); err != nil {
				t.Fatal(err)
			}
		}
		const until = netsim.Millisecond
		for i, g := range gens {
			g := g
			g.Node.Schedule(int64(i)*netsim.Microsecond, func() {
				if err := g.Start(until); err != nil {
					panic(err)
				}
			})
		}
		sim.RunUntil(until)
		for _, g := range gens {
			g.Stop()
		}
		sim.Run()
		extra := make([]string, 0, len(journals))
		for i, j := range journals {
			extra = append(extra, fmt.Sprintf("trace[%s]=%s", nw.Hosts[i].Name, strings.Join(j.Lines(), ",")))
		}
		return fingerprint(sim, extra), sim.EngineStats()
	}
	base, _ := run(1)
	if !strings.Contains(base, "udp_delivered=") {
		t.Fatal("no deliveries in the sequential run")
	}
	for _, shards := range []int{2, 4} {
		got, st := run(shards)
		if got != base {
			diffReport(t, base, got, shards)
		}
		t.Logf("shards=%d events=%d rollbacks=%d antis=%d ckpts=%d msgs=%d",
			shards, st.Events, st.Rollbacks, st.AntiMessages, st.Checkpoints, st.Messages)
	}
}

func TestShardEquivalenceFuzz(t *testing.T) {
	depth := fuzzDepth(t)
	for i := 0; i < depth; i++ {
		sc := deriveScenario(int64(7777 + 131*i))
		name := fmt.Sprintf("s%02d-%s", i, sc.kind)
		if sc.chaos {
			name += "-chaos"
		}
		if sc.srv6 {
			name += "-srv6"
		}
		if sc.mincut {
			name += "-mincut"
		}
		t.Run(name, func(t *testing.T) {
			base := fuzzRun(t, sc, 1, netsim.EngineConservative, 1)
			if !strings.Contains(base, "udp_delivered") {
				t.Fatal("scenario delivered nothing")
			}
			if sc.burst > 1 {
				// Burst arm: the same sequential scenario drained in
				// bursts must fingerprint identically to per-packet.
				if got := fuzzRun(t, sc, 1, netsim.EngineConservative, sc.burst); got != base {
					diffReport(t, base, got, 1)
				}
			}
			// The sharded arms all run at the scenario's burst size, so
			// a match proves both engine equivalence and burst
			// equivalence (including rollback through half-processed
			// bursts under the optimistic engine).
			if sc.zeroDelay {
				// The conservative engine must refuse to split
				// zero-delay links across shards...
				sim := netsim.New(sc.seed)
				buildFuzzTopo(t, sim, sc)
				if err := sim.SetShards(2); err == nil {
					t.Error("conservative engine accepted zero-delay cross-shard links")
				}
			} else {
				// ...and everywhere else the conservative arms must
				// reproduce the sequential schedule.
				for _, shards := range []int{2, 4} {
					if got := fuzzRun(t, sc, shards, netsim.EngineConservative, sc.burst); got != base {
						diffReport(t, base, got, shards)
					}
				}
			}
			for _, shards := range []int{2, 4, 8} {
				got := fuzzRun(t, sc, shards, netsim.EngineOptimistic, sc.burst)
				if got != base {
					diffReport(t, base, got, shards)
				}
			}
		})
	}
}
